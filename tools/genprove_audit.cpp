//===- tools/genprove_audit.cpp - soundness containment audit ---*- C++ -*-===//
//
// Run the Monte-Carlo containment audit (src/audit) over the built-in
// model zoo: sample latent points, push them through the concrete
// round-to-nearest forward pass, and assert every concrete output lies
// inside the abstract output bounds computed with SoundRounding enabled —
// for box, zonotope, DeepZono and hybrid zonotope. Also checks that
// exact-segment probability bounds nest inside relaxed ones, and reports
// the per-layer dilation the directed rounding costs.
//
// Usage:
//   genprove_audit [--samples N] [--seed S] [--no-differential]
//                  [--report-out FILE.json] [--metrics-out FILE.json]
//
// Exit codes: 0 = zero violations and differential nesting holds,
// 1 = at least one containment violation or nesting failure,
// 2 = usage error. docs/SOUNDNESS.md documents the methodology.
//
//===----------------------------------------------------------------------===//

#include "src/audit/audit.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

using namespace genprove;

namespace {

[[noreturn]] void usage(const char *Message) {
  std::fprintf(stderr, "genprove_audit: %s\n", Message);
  std::fprintf(stderr,
               "usage: genprove_audit [--samples N] [--seed S]\n"
               "                      [--no-differential]\n"
               "                      [--report-out FILE.json]\n"
               "                      [--metrics-out FILE.json]\n"
               "\n"
               "exit codes: 0 all concrete samples contained and exact\n"
               "              bounds nest inside relaxed bounds,\n"
               "            1 containment or nesting violation,\n"
               "            2 usage error\n");
  std::exit(2);
}

} // namespace

int main(int Argc, char **Argv) {
  AuditConfig Config;
  std::string ReportOutPath, MetricsOutPath;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value for " + Arg).c_str());
      return Argv[++I];
    };
    if (Arg == "--samples")
      Config.SamplesPerModel = std::stoll(Next());
    else if (Arg == "--seed")
      Config.Seed = std::stoull(Next());
    else if (Arg == "--no-differential")
      Config.Differential = false;
    else if (Arg == "--report-out")
      ReportOutPath = Next();
    else if (Arg == "--metrics-out")
      MetricsOutPath = Next();
    else
      usage(("unknown option: " + Arg).c_str());
  }
  if (Config.SamplesPerModel <= 0)
    usage("--samples must be positive");

  setMetricsEnabled(true); // the dilation metrics are the point
  const AuditReport Report = auditBuiltinZoo(Config);

  for (const ModelAudit &M : Report.Models) {
    for (const DomainAudit &Dom : M.Domains) {
      if (Dom.OutOfMemory)
        std::printf("%-20s %-10s OOM\n", M.Model.c_str(),
                    Dom.Domain.c_str());
      else
        std::printf("%-20s %-10s %lld samples, %lld violations\n",
                    M.Model.c_str(), Dom.Domain.c_str(),
                    static_cast<long long>(Dom.Samples),
                    static_cast<long long>(Dom.Violations));
    }
    if (!M.DifferentialOk)
      std::printf("%-20s differential FAILED: %s\n", M.Model.c_str(),
                  M.DifferentialNote.c_str());
  }
  std::printf("total: %lld samples, %lld violations, max layer dilation "
              "%.3e\n",
              static_cast<long long>(Report.TotalSamples),
              static_cast<long long>(Report.TotalViolations),
              Report.MaxDilationRel);

  if (!ReportOutPath.empty()) {
    const std::string Json = auditReportJson(Report);
    std::string Error;
    if (!validateJson(Json, &Error)) {
      std::fprintf(stderr, "genprove_audit: report JSON invalid: %s\n",
                   Error.c_str());
      return 1;
    }
    std::ofstream Out(ReportOutPath);
    if (!Out || !(Out << Json)) {
      std::fprintf(stderr, "genprove_audit: cannot write report to %s\n",
                   ReportOutPath.c_str());
      return 1;
    }
  }
  if (!MetricsOutPath.empty() &&
      !MetricsRegistry::global().writeJson(MetricsOutPath))
    std::fprintf(stderr, "genprove_audit: cannot write metrics to %s\n",
                 MetricsOutPath.c_str());

  if (!Report.ok()) {
    std::printf("verdict: UNSOUND (see above)\n");
    return 1;
  }
  std::printf("verdict: sound (zero containment violations)\n");
  return 0;
}
