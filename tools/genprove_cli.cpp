//===- tools/genprove_cli.cpp - command-line verifier -----------*- C++ -*-===//
//
// Verify a serialized network pipeline from the command line.
//
// Usage:
//   genprove_cli --net decoder.bin [--net classifier.bin ...]
//                --input-shape 1x8
//                --start start.txt --end end.txt
//                [--start s2.txt --end e2.txt ...]  (batched propagation)
//                --spec argmax:0:10 | sign:3:+:40 | halfspace:0.5:-1
//                [--spec ... more endpoints, bounded concurrently]
//                [--cache-mb N]
//                [--p 0.02] [--k 100] [--threshold 250]
//                [--budget-mb 240] [--deterministic] [--arcsine]
//                [--splits N] [--schedule A|B] [--threads N]
//                [--resilient] [--deadline-ms D]
//                [--shards N] [--shard-retries R] [--shard-deadline-ms D]
//                [--report] [--trace-out FILE.json] [--metrics-out FILE.json]
//                [--log-out FILE.jsonl] [--prom-out FILE.prom] [--run-id ID]
//
// Latent vector files contain whitespace-separated doubles; non-finite
// entries (and non-finite network weights) are rejected up front. Networks
// are the binary format written by saveNetwork() (see src/nn/serialize.h).
//
// Exit codes: 0 = analysis completed, 2 = usage/input error,
// 3 = simulated-device out-of-memory, 4 = sound but degraded (resilience
// ladder or shard supervision fired; the reported interval is valid but
// widened), 5 = interrupted (SIGINT/SIGTERM; partial telemetry flushed).
// README.md and docs/ROBUSTNESS.md document the contract.
//
// With --shards N the region set is partitioned into N disjoint parameter
// sub-ranges, each certified by a supervised worker process (this binary
// re-exec'd with --shard-worker); crashes, hangs and OOM-kills are retried
// with backoff up an escalation ladder and, as a last resort, bounded by a
// sound interval-box fallback — the merged certificate is then DEGRADED
// but never wrong. docs/ROBUSTNESS.md describes the supervision ladder.
//
// Fault-injection flags (--inject-oom-layer, --inject-oom-count,
// --inject-nan-layer, --clock-skew-ms, --inject-worker-fault) drive the
// deterministic harness of src/domains/fault_injection.h and the shard
// smoke job; they exist for CI and for reproducing degradation paths by
// hand (docs/ROBUSTNESS.md).
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/fault_injection.h"
#include "src/domains/prop_cache.h"
#include "src/nn/serialize.h"
#include "src/util/fp.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/process_launcher.h"
#include "src/shard/protocol.h"
#include "src/shard/supervisor.h"
#include "src/util/table.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace genprove;

namespace {

[[noreturn]] void usage(const char *Message) {
  std::fprintf(stderr, "genprove_cli: %s\n", Message);
  std::fprintf(
      stderr,
      "usage: genprove_cli --net NET.bin [--net NET2.bin ...]\n"
      "                    --input-shape 1x8 --start A.txt --end B.txt\n"
      "                    [--start A2.txt --end B2.txt ...]\n"
      "                    --spec argmax:T:N | sign:I:+|-:N | "
      "halfspace:C:g0,g1,...\n"
      "                    [--spec ...]  (repeatable; each segment is\n"
      "                    propagated once, each endpoint is bounded\n"
      "                    against it concurrently)\n"
      "                    [--cache-mb N]\n"
      "                    [--p P] [--k K] [--threshold T] [--budget-mb M]\n"
      "                    [--deterministic] [--arcsine] [--sound]\n"
      "                    [--fuse] [--fast-screen] [--screen-splits N]\n"
      "                    [--splits N]\n"
      "                    [--schedule A|B] [--threads N]\n"
      "                    [--resilient] [--deadline-ms D]\n"
      "                    [--shards N] [--shard-retries R]\n"
      "                    [--shard-deadline-ms D] [--shard-heartbeat-ms T]\n"
      "                    [--report] [--trace-out FILE.json]\n"
      "                    [--metrics-out FILE.json] [--log-out FILE.jsonl]\n"
      "                    [--prom-out FILE.prom] [--run-id ID]\n"
      "\n"
      "parallelism:\n"
      "  --threads N         size of the shared worker pool (default: the\n"
      "                      GENPROVE_THREADS env var, else the hardware\n"
      "                      concurrency; 1 = fully serial). Results are\n"
      "                      bit-identical for every thread count.\n"
      "\n"
      "soundness:\n"
      "  --sound             directed (outward) rounding on every bound\n"
      "                      computation; floating-point-sound intervals at\n"
      "                      a sub-percent width cost (docs/SOUNDNESS.md)\n"
      "\n"
      "kernels (docs/PERFORMANCE.md):\n"
      "  --fuse              stream each affine->ReLU layer pair through\n"
      "                      one fused cache-resident kernel; bounds are\n"
      "                      bit-identical to the unfused path at any\n"
      "                      thread count in both rounding modes. Ignored\n"
      "                      on resilient/fault-injected propagations.\n"
      "  --fast-screen       two-tier precision fast path: a float32\n"
      "                      screen with a sound error cushion classifies\n"
      "                      parameter pieces as inside/outside/borderline\n"
      "                      and only borderline pieces re-run under the\n"
      "                      double-precision sound tier; every reported\n"
      "                      bound comes from sound arithmetic\n"
      "  --screen-splits N   pieces the screen splits the range into\n"
      "                      (default 32)\n"
      "\n"
      "cross-query amortization (docs/PERFORMANCE.md):\n"
      "  --start/--end ...   repeated pairs define several latent segments;\n"
      "                      all of them flow through the network as ONE\n"
      "                      batched abstract state (stacked GEMM rows) and\n"
      "                      the results are split back per pair, bit-\n"
      "                      identical to running each pair alone. Needs\n"
      "                      the single-process path (no --shards).\n"
      "  --cache-mb N        give the propagation cache an N MiB budget:\n"
      "                      repeated or prefix-sharing queries warm-start\n"
      "                      mid-network from memoized per-layer states\n"
      "                      (LRU-evicted, charged against the simulated\n"
      "                      device). 0 (default) disables the cache.\n"
      "\n"
      "resilience:\n"
      "  --resilient         never fail: on OOM roll back to the last layer\n"
      "                      checkpoint and coarsen in place; exhausted\n"
      "                      retries fall back to interval propagation\n"
      "  --deadline-ms D     wall-clock deadline; on expiry the remaining\n"
      "                      layers run as a single interval box (implies\n"
      "                      --resilient)\n"
      "\n"
      "sharding (supervised worker processes; docs/ROBUSTNESS.md):\n"
      "  --shards N            partition the input range into N disjoint\n"
      "                        shards, each certified by a worker process;\n"
      "                        crashes/hangs/OOM-kills are retried with\n"
      "                        backoff and, exhausted, bounded by a sound\n"
      "                        interval fallback (verdict DEGRADED).\n"
      "                        Incompatible with --splits.\n"
      "  --shard-retries R     retries per shard after the first attempt\n"
      "                        (default 3)\n"
      "  --shard-deadline-ms D per-attempt wall clock; a worker outliving\n"
      "                        it is killed and retried (default: none)\n"
      "  --shard-heartbeat-ms T kill a worker silent for T ms (default\n"
      "                        2000)\n"
      "\n"
      "fault injection (deterministic; for tests and CI):\n"
      "  --inject-oom-layer L   force device charges to fail at layer L\n"
      "  --inject-oom-count N   how many charges fail there (default 1)\n"
      "  --inject-nan-layer L   poison the state with NaN after layer L\n"
      "  --clock-skew-ms M      advance an injected clock M ms per layer\n"
      "                         (deadline tests run off this clock)\n"
      "  --inject-worker-fault MODE:SHARD[:ATTEMPTS[:MS]]\n"
      "                         make shard SHARD's first ATTEMPTS worker\n"
      "                         attempts fail: crash (abort), oomkill\n"
      "                         (SIGKILL), hang (silent sleep; the\n"
      "                         supervisor's heartbeat timeout must fire),\n"
      "                         slow (sleep MS while heartbeating)\n"
      "\n"
      "observability:\n"
      "  --report            print a per-layer telemetry table (regions,\n"
      "                      nodes, splits, boxed, charged bytes, seconds,\n"
      "                      degradation rung/rollbacks)\n"
      "  --trace-out FILE    write a Chrome trace-event JSON file (open in\n"
      "                      chrome://tracing or ui.perfetto.dev); on a\n"
      "                      sharded run, one unified timeline with a\n"
      "                      process lane per worker\n"
      "  --metrics-out FILE  write the metrics registry snapshot as JSON;\n"
      "                      on a sharded run, worker snapshots are folded\n"
      "                      in (totals plus a shard=<id> dimension)\n"
      "  --log-out FILE      write the structured JSONL event log (one\n"
      "                      JSON object per supervision/degradation\n"
      "                      event; schema in docs/OBSERVABILITY.md)\n"
      "  --prom-out FILE     write the Prometheus text exposition of the\n"
      "                      merged metrics\n"
      "  --run-id ID         stamp log lines with ID (default: generated)\n"
      "\n"
      "exit codes: 0 analysis completed, 2 usage or input error,\n"
      "            3 simulated-device out of memory,\n"
      "            4 sound but degraded (interval is valid but widened),\n"
      "            5 interrupted (SIGINT/SIGTERM; telemetry flushed)\n");
  std::exit(2);
}

Tensor readVector(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    usage(("cannot open vector file: " + Path).c_str());
  std::vector<double> Values;
  std::string Token;
  // Tokens go through strtod (not operator>>) so the "nan"/"inf"
  // spellings are recognized and rejected instead of silently truncating
  // the vector at the first such entry.
  while (In >> Token) {
    char *TokenEnd = nullptr;
    const double V = std::strtod(Token.c_str(), &TokenEnd);
    if (TokenEnd == Token.c_str() || *TokenEnd != '\0')
      usage(("cannot parse '" + Token + "' in vector file " + Path).c_str());
    if (!std::isfinite(V))
      usage(("non-finite latent endpoint in " + Path +
             " (entry " + std::to_string(Values.size()) +
             "); refusing to certify garbage")
                .c_str());
    Values.push_back(V);
  }
  if (Values.empty())
    usage(("empty vector file: " + Path).c_str());
  const int64_t N = static_cast<int64_t>(Values.size());
  return Tensor({1, N}, std::move(Values));
}

/// Name of the first non-finite parameter tensor, or empty when clean.
std::string findNonFiniteParam(Sequential &Net) {
  for (const Param &P : Net.params()) {
    if (!P.Value)
      continue;
    for (int64_t J = 0; J < P.Value->numel(); ++J)
      if (!std::isfinite((*P.Value)[J]))
        return P.Name;
  }
  return {};
}

Shape parseShape(const std::string &Text) {
  std::vector<int64_t> Dims;
  std::istringstream In(Text);
  std::string Part;
  while (std::getline(In, Part, 'x'))
    Dims.push_back(std::stoll(Part));
  if (Dims.empty())
    usage("bad --input-shape");
  return Shape(Dims);
}

OutputSpec parseSpec(const std::string &Text) {
  OutputSpec Spec;
  std::string Err;
  if (!parseOutputSpecText(Text, Spec, &Err))
    usage(("--spec " + Text + ": " + Err).c_str());
  return Spec;
}

/// The --report table: one row per layer, plus a sum/max footer matching
/// the aggregate stats line.
void printLayerReport(const std::vector<LayerRecord> &Layers) {
  TablePrinter Table({"layer", "kind", "regions", "nodes", "splits", "boxed",
                      "charged", "seconds", "resil"});
  auto Flow = [](int64_t In, int64_t Out) {
    return std::to_string(In) + "->" + std::to_string(Out);
  };
  // The resil column: degradation rung the layer ran at, plus the number
  // of checkpoint rollbacks it took to get the layer through.
  auto Resil = [](const LayerRecord &Rec) -> std::string {
    if (Rec.Rung == DegradeRung::None && Rec.Rollbacks == 0)
      return "-";
    std::string Text = degradeRungName(Rec.Rung);
    if (Rec.Rollbacks > 0)
      Text.append("(").append(std::to_string(Rec.Rollbacks)).append(")");
    return Text;
  };
  int64_t SumSplits = 0, SumBoxed = 0, MaxRegions = 0, MaxNodes = 0;
  int64_t SumRollbacks = 0;
  size_t MaxCharged = 0;
  double SumSeconds = 0.0;
  for (const LayerRecord &Rec : Layers) {
    Table.addRow({std::to_string(Rec.Index), Rec.Kind,
                  Flow(Rec.RegionsIn, Rec.RegionsOut),
                  Flow(Rec.NodesIn, Rec.NodesOut), std::to_string(Rec.Splits),
                  std::to_string(Rec.Boxed), formatBytes(Rec.ChargedBytes),
                  formatSeconds(Rec.Seconds), Resil(Rec)});
    SumSplits += Rec.Splits;
    SumBoxed += Rec.Boxed;
    SumRollbacks += Rec.Rollbacks;
    MaxRegions = std::max(MaxRegions, Rec.RegionsOut);
    MaxNodes = std::max(MaxNodes, Rec.NodesOut);
    MaxCharged = std::max(MaxCharged, Rec.ChargedBytes);
    SumSeconds += Rec.Seconds;
  }
  Table.addRow({"sum/max", "-", std::to_string(MaxRegions),
                std::to_string(MaxNodes), std::to_string(SumSplits),
                std::to_string(SumBoxed), formatBytes(MaxCharged),
                formatSeconds(SumSeconds),
                SumRollbacks > 0 ? std::to_string(SumRollbacks) + " rb" : "-"});
  std::printf("per-layer telemetry:\n%s", Table.render().c_str());
}

//===----------------------------------------------------------------------===//
// Graceful shutdown: SIGINT/SIGTERM kill the worker brood, flush whatever
// telemetry exists (trace, metrics, Prometheus, JSONL log — one shared
// flush point, ObsFlushGuard), and exit with the dedicated code 5 so
// scripts can tell an interrupted run from a failed one.
//===----------------------------------------------------------------------===//

std::atomic<bool> ShuttingDown{false};

void handleShutdownSignal(int) {
  // Re-entrant delivery (e.g. double ^C) must not re-run the flush.
  if (ShuttingDown.exchange(true))
    _exit(5);
  killAllShardChildren(SIGKILL);
  ObsFlushGuard::flushNow();
  _exit(5);
}

/// A reasonably unique run id for log correlation: microseconds since the
/// epoch plus the pid, both hex.
std::string makeRunId() {
  const auto Now = std::chrono::system_clock::now().time_since_epoch();
  const auto Us =
      std::chrono::duration_cast<std::chrono::microseconds>(Now).count();
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%llx-%x",
                static_cast<unsigned long long>(Us),
                static_cast<unsigned>(::getpid()));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Worker-side fault injection (--inject-worker-fault MODE:SHARD[:A[:MS]])
//===----------------------------------------------------------------------===//

struct WorkerFaultPlan {
  std::string Mode;      ///< crash | hang | oomkill | slow
  int64_t Shard = -1;
  int64_t Attempts = 1;  ///< fires while Attempt < Attempts
  double Millis = 600000; ///< hang/slow duration
  bool Active = false;
};

WorkerFaultPlan parseWorkerFault(const std::string &Text) {
  WorkerFaultPlan Plan;
  std::istringstream In(Text);
  std::string Part;
  if (!std::getline(In, Part, ':'))
    usage("bad --inject-worker-fault (want MODE:SHARD[:ATTEMPTS[:MS]])");
  Plan.Mode = Part;
  if (Plan.Mode != "crash" && Plan.Mode != "hang" && Plan.Mode != "oomkill" &&
      Plan.Mode != "slow")
    usage("bad --inject-worker-fault mode (crash|hang|oomkill|slow)");
  if (!std::getline(In, Part, ':'))
    usage("--inject-worker-fault needs a shard index");
  Plan.Shard = std::stoll(Part);
  if (std::getline(In, Part, ':'))
    Plan.Attempts = std::stoll(Part);
  if (std::getline(In, Part, ':'))
    Plan.Millis = std::stod(Part);
  if (Plan.Mode == "slow" && Plan.Millis >= 600000)
    Plan.Millis = 2000; // a kill -9 window, not an eternity
  Plan.Active = true;
  return Plan;
}

/// Fire the injected fault in a worker, if it applies to this attempt.
/// crash/oomkill never return; hang sleeps silently (no heartbeats — the
/// supervisor's timeout must detect it); slow sleeps while the heartbeat
/// thread keeps beating (CI uses the window to kill -9 from outside).
void maybeFireWorkerFault(const WorkerFaultPlan &Plan, int64_t Shard,
                          int64_t Attempt) {
  if (!Plan.Active || Plan.Shard != Shard || Attempt >= Plan.Attempts)
    return;
  if (Plan.Mode == "crash")
    std::abort();
  if (Plan.Mode == "oomkill")
    raise(SIGKILL);
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(Plan.Millis));
}

/// Heartbeat emitter: one protocol line every IntervalMs until stopped.
/// Each beat carries the liveness digest (charged state bytes, current
/// layer) sampled from the RunLiveness atomics the propagation loop
/// refreshes — a hung worker keeps beating with a frozen digest, which is
/// exactly how the supervisor tells "hung but heartbeating" from "slow".
class HeartbeatThread {
public:
  HeartbeatThread(int64_t Shard, double IntervalMs) {
    Worker = std::thread([this, Shard, IntervalMs] {
      int64_t Seq = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        RunLiveness &Live = RunLiveness::global();
        const std::string Line = encodeShardHeartbeat(
            Shard, Seq++,
            Live.StateBytes.load(std::memory_order_relaxed),
            Live.CurrentLayer.load(std::memory_order_relaxed));
        std::fprintf(stdout, "%s\n", Line.c_str());
        std::fflush(stdout);
        // Sleep in small slices so shutdown is prompt.
        double Left = IntervalMs;
        while (Left > 0.0 && !Stop.load(std::memory_order_acquire)) {
          const double Slice = std::min(Left, 10.0);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(Slice));
          Left -= Slice;
        }
      }
    });
  }
  ~HeartbeatThread() {
    Stop.store(true, std::memory_order_release);
    if (Worker.joinable())
      Worker.join();
  }

private:
  std::atomic<bool> Stop{false};
  std::thread Worker;
};

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> NetPaths;
  std::vector<std::string> SpecTexts;
  std::vector<std::string> StartPaths, EndPaths;
  std::string ShapeText;
  std::string TraceOutPath, MetricsOutPath, LogOutPath, PromOutPath;
  std::string RunId;
  std::string ShardTelemetrySpec; ///< internal: coordinator -> worker
  bool Report = false;
  GenProveConfig Config;
  Config.NodeThreshold = 250;
  FaultPlan Faults;
  bool HaveFaults = false;

  // Sharding state.
  int64_t Shards = 0;          ///< 0 = unsharded single-process path
  int64_t ShardWorker = -1;    ///< >= 0: this process IS worker K
  int64_t ShardAttempt = 0;
  int64_t ShardRungFlag = 0;
  int64_t ShardRetries = 3;
  double ShardDeadlineMs = 0.0;
  double ShardHeartbeatMs = 2000.0;
  bool SplitsGiven = false;
  int64_t ThreadsGiven = 0;
  WorkerFaultPlan WorkerFault;

  // Args forwarded verbatim to worker processes. Coordinator-only flags
  // (--shards is re-added explicitly; telemetry, --deterministic, budget
  // and threads are recomputed per worker) stay out.
  std::vector<std::string> WorkerArgs;
  const auto Forward = [&](std::initializer_list<std::string> Parts) {
    for (const std::string &P : Parts)
      WorkerArgs.push_back(P);
  };

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value for " + Arg).c_str());
      return Argv[++I];
    };
    if (Arg == "--net") {
      const std::string V = Next();
      NetPaths.push_back(V);
      Forward({Arg, V});
    } else if (Arg == "--input-shape") {
      ShapeText = Next();
      Forward({Arg, ShapeText});
    } else if (Arg == "--start") {
      StartPaths.push_back(Next());
      Forward({Arg, StartPaths.back()});
    } else if (Arg == "--end") {
      EndPaths.push_back(Next());
      Forward({Arg, EndPaths.back()});
    } else if (Arg == "--cache-mb") {
      // Coordinator/local-only: the cache is per-process, and the sharded
      // paths are excluded from batching anyway.
      PropagationCache::global().configure(
          static_cast<size_t>(std::stoull(Next())) << 20);
    } else if (Arg == "--spec") {
      const std::string V = Next();
      SpecTexts.push_back(V);
      Forward({Arg, V});
    } else if (Arg == "--threads") {
      ThreadsGiven = std::stoll(Next());
      ThreadPool::global().setThreads(ThreadsGiven);
    } else if (Arg == "--p") {
      const std::string V = Next();
      Config.RelaxPercent = std::stod(V);
      Forward({Arg, V});
    } else if (Arg == "--k") {
      const std::string V = Next();
      Config.ClusterK = std::stod(V);
      Forward({Arg, V});
    } else if (Arg == "--threshold") {
      const std::string V = Next();
      Config.NodeThreshold = std::stoll(V);
      Forward({Arg, V});
    } else if (Arg == "--budget-mb") {
      Config.MemoryBudgetBytes =
          static_cast<size_t>(std::stoull(Next())) << 20;
    } else if (Arg == "--budget-bytes") {
      // Byte-granular budget, used when the coordinator forwards each
      // worker its exact per-shard slice.
      Config.MemoryBudgetBytes = static_cast<size_t>(std::stoull(Next()));
    } else if (Arg == "--deterministic") {
      Config.Mode = AnalysisMode::Deterministic;
    } else if (Arg == "--sound") {
      setSoundRounding(true);
      Forward({Arg});
    } else if (Arg == "--fuse") {
      Config.FuseRelu = true;
      Forward({Arg});
    } else if (Arg == "--fast-screen") {
      Config.FastScreen = true;
      Forward({Arg});
    } else if (Arg == "--screen-splits") {
      const std::string V = Next();
      Config.ScreenSplits = std::stoll(V);
      if (Config.ScreenSplits < 1)
        usage("--screen-splits wants N >= 1");
      Forward({Arg, V});
    } else if (Arg == "--arcsine") {
      Config.Distribution = ParamDistribution::Arcsine;
      Forward({Arg});
    } else if (Arg == "--splits") {
      Config.InputSplits = std::stoll(Next());
      SplitsGiven = true;
    } else if (Arg == "--schedule") {
      const std::string V = Next();
      Config.Schedule =
          V == "B" ? RefinementSchedule::B : RefinementSchedule::A;
      Forward({Arg, V});
    } else if (Arg == "--resilient") {
      Config.Resilience.Enabled = true;
      Forward({Arg});
    } else if (Arg == "--deadline-ms") {
      const std::string V = Next();
      Config.Resilience.Enabled = true;
      Config.Resilience.DeadlineSeconds = std::stod(V) / 1000.0;
      Forward({Arg, V});
    } else if (Arg == "--shards") {
      Shards = std::stoll(Next());
      if (Shards < 1)
        usage("--shards wants N >= 1");
    } else if (Arg == "--shard-worker") {
      ShardWorker = std::stoll(Next());
    } else if (Arg == "--shard-attempt") {
      ShardAttempt = std::stoll(Next());
    } else if (Arg == "--shard-rung") {
      ShardRungFlag = std::stoll(Next());
    } else if (Arg == "--shard-retries") {
      ShardRetries = std::stoll(Next());
    } else if (Arg == "--shard-deadline-ms") {
      ShardDeadlineMs = std::stod(Next());
    } else if (Arg == "--shard-heartbeat-ms") {
      const std::string V = Next();
      ShardHeartbeatMs = std::stod(V);
      Forward({Arg, V});
    } else if (Arg == "--inject-oom-layer") {
      const std::string V = Next();
      Faults.OomAtLayer = std::stoll(V);
      HaveFaults = true;
      Forward({Arg, V});
    } else if (Arg == "--inject-oom-count") {
      const std::string V = Next();
      Faults.OomFireCount = std::stoll(V);
      HaveFaults = true;
      Forward({Arg, V});
    } else if (Arg == "--inject-nan-layer") {
      const std::string V = Next();
      Faults.NanAtLayer = std::stoll(V);
      HaveFaults = true;
      Forward({Arg, V});
    } else if (Arg == "--clock-skew-ms") {
      const std::string V = Next();
      Faults.ClockSkewSecondsPerLayer = std::stod(V) / 1000.0;
      HaveFaults = true;
      Forward({Arg, V});
    } else if (Arg == "--inject-worker-fault") {
      const std::string V = Next();
      WorkerFault = parseWorkerFault(V);
      Forward({Arg, V});
    } else if (Arg == "--report") {
      Report = true;
    } else if (Arg == "--trace-out") {
      TraceOutPath = Next();
    } else if (Arg == "--metrics-out") {
      MetricsOutPath = Next();
    } else if (Arg == "--log-out") {
      LogOutPath = Next();
    } else if (Arg == "--prom-out") {
      PromOutPath = Next();
    } else if (Arg == "--run-id") {
      RunId = Next();
    } else if (Arg == "--shard-telemetry") {
      // Internal coordinator->worker flag: which telemetry planes the
      // worker should record and attach to its result message
      // (comma-separated subset of metrics,trace,log).
      ShardTelemetrySpec = Next();
    } else {
      usage(("unknown option: " + Arg).c_str());
    }
  }

  if (NetPaths.empty() || StartPaths.empty() || EndPaths.empty() ||
      ShapeText.empty() || SpecTexts.empty())
    usage("--net, --input-shape, --start, --end and --spec are required");
  if (StartPaths.size() != EndPaths.size())
    usage("--start and --end must come in pairs");
  if (StartPaths.size() > 1 && Shards > 0)
    usage("repeated --start/--end pairs (batched propagation) need the "
          "single-process path; drop --shards or run one pair per "
          "invocation");
  if (Shards > 0 && SplitsGiven)
    usage("--shards and --splits are mutually exclusive (a shard is an "
          "input split that runs in its own process)");
  if (ShardWorker >= 0 && Shards < 1)
    usage("--shard-worker needs --shards N");
  if (ShardWorker >= 0 && ShardWorker >= Shards)
    usage("--shard-worker index out of range");

  const bool IsWorker = ShardWorker >= 0;
  const bool IsCoordinator = !IsWorker && Shards > 0;

  // The fault-injection harness lives for the whole analysis; a skewed
  // clock replaces the wall clock so deadline runs are deterministic.
  FaultInjector Injector(Faults);
  if (HaveFaults) {
    Config.Resilience.Faults = &Injector;
    if (Faults.ClockSkewSecondsPerLayer > 0.0)
      Config.Resilience.Clock = Injector.clock();
  }

  // Observability is opt-in: every plane defaults off. Workers enable
  // planes from the coordinator's --shard-telemetry spec instead of from
  // output paths (they ship data over the result message, never to files).
  const bool TelMetrics =
      ShardTelemetrySpec.find("metrics") != std::string::npos;
  const bool TelTrace = ShardTelemetrySpec.find("trace") != std::string::npos;
  const bool TelLog = ShardTelemetrySpec.find("log") != std::string::npos;
  if (!TraceOutPath.empty() || TelTrace)
    setTraceEnabled(true);
  if (!MetricsOutPath.empty() || !PromOutPath.empty() || Report || TelMetrics)
    setMetricsEnabled(true);
  if (!LogOutPath.empty() || TelLog)
    setLogEnabled(true);
  if (logEnabled()) {
    if (RunId.empty())
      RunId = makeRunId();
    EventLog::global().setRunId(RunId);
    if (IsWorker)
      EventLog::global().setShard(ShardWorker);
  }

  // Graceful shutdown (not in workers: the supervisor owns their
  // lifecycle, and a worker's SIGKILL/SIGTERM semantics must stay raw so
  // exit-status classification works). All exit paths — normal returns,
  // DEGRADED exit 4, SIGINT/SIGTERM exit 5 — flush through the one
  // ObsFlushGuard below; workers configure no paths so the guard is inert.
  if (!IsWorker) {
    ObsFlushGuard::Paths FlushTo;
    FlushTo.Trace = TraceOutPath;
    FlushTo.Metrics = MetricsOutPath;
    FlushTo.Prom = PromOutPath;
    FlushTo.Log = LogOutPath;
    ObsFlushGuard::configure(FlushTo);
    std::signal(SIGINT, handleShutdownSignal);
    std::signal(SIGTERM, handleShutdownSignal);
  }
  ObsFlushGuard FlushOnExit;

  // Load the pipeline.
  std::vector<Sequential> Networks;
  {
    GENPROVE_SPAN("load_networks");
    for (const std::string &Path : NetPaths) {
      auto Net = loadNetwork(Path);
      if (!Net) {
        std::fprintf(stderr, "genprove_cli: cannot load network %s\n",
                     Path.c_str());
        return 2;
      }
      // A NaN/Inf weight would silently poison every bound downstream;
      // refuse it here with a pointer to the offending tensor instead.
      const std::string Bad = findNonFiniteParam(*Net);
      if (!Bad.empty()) {
        std::fprintf(stderr,
                     "genprove_cli: network %s has a non-finite weight in "
                     "parameter '%s'; refusing to certify\n",
                     Path.c_str(), Bad.c_str());
        return 2;
      }
      Networks.push_back(std::move(*Net));
    }
  }
  std::vector<const Layer *> Pipeline;
  for (const Sequential &Net : Networks)
    Pipeline = concatViews(Pipeline, Net.view());

  const Shape InputShape = parseShape(ShapeText);
  std::vector<std::pair<Tensor, Tensor>> Segments;
  for (size_t I = 0; I < StartPaths.size(); ++I) {
    Tensor S = readVector(StartPaths[I]);
    Tensor E = readVector(EndPaths[I]);
    if (S.numel() != E.numel() || S.numel() != InputShape.numel()) {
      std::fprintf(stderr,
                   "genprove_cli: vector dims (%lld, %lld) of pair %zu do "
                   "not match --input-shape %s\n",
                   static_cast<long long>(S.numel()),
                   static_cast<long long>(E.numel()), I,
                   InputShape.toString().c_str());
      return 2;
    }
    Segments.emplace_back(std::move(S), std::move(E));
  }
  // The sharded paths certify exactly one segment (enforced above).
  const Tensor &Start = Segments.front().first;
  const Tensor &End = Segments.front().second;
  std::vector<OutputSpec> Specs;
  for (const std::string &Text : SpecTexts)
    Specs.push_back(parseSpec(Text));

  //===--------------------------------------------------------------------===//
  // Worker mode: certify one shard, speak the wire protocol on stdout.
  //===--------------------------------------------------------------------===//
  if (IsWorker) {
    // crash/oomkill/hang fire before heartbeats start (a hang must be
    // silent for the supervisor's timeout to be what catches it); slow
    // fires inside the heartbeat scope so the worker stays visibly alive
    // through its stall — that is the external-kill window CI uses.
    const bool SlowFault = WorkerFault.Active && WorkerFault.Mode == "slow";
    if (!SlowFault)
      maybeFireWorkerFault(WorkerFault, ShardWorker, ShardAttempt);

    ShardWorkContext Ctx;
    Ctx.Pipeline = Pipeline;
    Ctx.InputShape = InputShape;
    Ctx.Start = Start;
    Ctx.End = End;
    Ctx.Specs = Specs;
    Ctx.Config = Config; // budget already the per-shard slice
    Ctx.NumShards = Shards;

    AttemptPlan Plan;
    Plan.Shard = ShardWorker;
    Plan.Attempt = ShardAttempt;
    Plan.Rung = static_cast<ShardRung>(
        std::clamp<int64_t>(ShardRungFlag, 0, 3));

    ShardResult Result;
    {
      // Heartbeats flow for the whole propagation; the emitter interval
      // stays well under the supervisor's kill timeout.
      const double IntervalMs =
          std::clamp(ShardHeartbeatMs / 4.0, 10.0, 250.0);
      HeartbeatThread Beat(ShardWorker, IntervalMs);
      if (SlowFault)
        maybeFireWorkerFault(WorkerFault, ShardWorker, ShardAttempt);
      Result = runShardAttempt(Ctx, Plan);
    }
    if (Result.OutOfMemory) {
      // No sound partial bounds to report; exit 3 tells the supervisor
      // this attempt is retryable at a higher rung. (The attempt's
      // telemetry dies with it — an accepted loss; the retry's survives.)
      std::fprintf(stderr, "genprove_cli: shard %lld out of memory\n",
                   static_cast<long long>(ShardWorker));
      return 3;
    }
    // Attach the telemetry planes the coordinator asked for to the result
    // line; the supervisor folds metrics into its registry (totals plus a
    // shard=<id> dimension), splices trace events into the unified
    // timeline under pid = shard+1, and splices log records verbatim.
    ShardTelemetry Tel;
    if (TelMetrics) {
      Tel.HasMetrics = true;
      Tel.Metrics = MetricsSnapshot::capture(MetricsRegistry::global());
    }
    if (TelTrace)
      Tel.Trace = TraceSession::global().events();
    if (TelLog)
      Tel.Log = EventLog::global().records();
    const std::string Line =
        encodeShardResult(Result, Tel.empty() ? nullptr : &Tel);
    std::fprintf(stdout, "%s\n", Line.c_str());
    std::fflush(stdout);
    return Result.Degraded ? 4 : 0;
  }

  //===--------------------------------------------------------------------===//
  // Coordinator mode: supervise one worker process per shard and merge.
  //===--------------------------------------------------------------------===//
  if (IsCoordinator) {
    const size_t PerShardBudget =
        Config.MemoryBudgetBytes == 0
            ? 0
            : std::max<size_t>(Config.MemoryBudgetBytes /
                                   static_cast<size_t>(Shards),
                               1);
    Forward({"--shards", std::to_string(Shards)});
    if (PerShardBudget > 0)
      Forward({"--budget-bytes", std::to_string(PerShardBudget)});
    if (ThreadsGiven > 0)
      Forward({"--threads",
               std::to_string(std::max<int64_t>(ThreadsGiven / Shards, 1))});
    // Workers record the same telemetry planes the coordinator has
    // enabled and ship them back on the result message.
    {
      std::string Spec;
      const auto Want = [&](bool On, const char *Name) {
        if (!On)
          return;
        if (!Spec.empty())
          Spec.push_back(',');
        Spec.append(Name);
      };
      Want(metricsEnabled(), "metrics");
      Want(traceEnabled(), "trace");
      Want(logEnabled(), "log");
      if (!Spec.empty())
        Forward({"--shard-telemetry", Spec});
      if (logEnabled())
        Forward({"--run-id", RunId});
    }

    GenProveConfig ShardConfig = Config;
    ShardConfig.MemoryBudgetBytes = PerShardBudget;
    ShardWorkContext Ctx;
    Ctx.Pipeline = Pipeline;
    Ctx.InputShape = InputShape;
    Ctx.Start = Start;
    Ctx.End = End;
    Ctx.Specs = Specs;
    Ctx.Config = ShardConfig;
    Ctx.NumShards = Shards;

    ShardPolicy Policy;
    Policy.NumShards = Shards;
    Policy.MaxRetries = ShardRetries;
    Policy.ShardDeadlineSeconds = ShardDeadlineMs / 1000.0;
    Policy.HeartbeatTimeoutSeconds = ShardHeartbeatMs / 1000.0;

    ProcessShardLauncher Launcher("/proc/self/exe", WorkerArgs);
    // Coordinator-side admission: a Configured-rung worker whose *input*
    // state already busts the per-shard budget is doomed — skip straight
    // to the resilient rung. Uses the same tryCharge the engine uses, so
    // the rejection shows up in the device.* metrics.
    DeviceMemoryModel Admission(PerShardBudget);
    const int64_t Latent = Start.numel();
    const auto Admit = [&](const AttemptPlan &) {
      return Admission.tryChargeState(2, Latent);
    };
    // Last resort for an exhausted shard: the sound interval-box bound,
    // computed in-process (the IntervalBox rung cannot OOM or crash).
    const auto Fallback = [&](int64_t Shard) {
      AttemptPlan Plan;
      Plan.Shard = Shard;
      Plan.Attempt = ShardRetries + 1;
      Plan.Rung = ShardRung::IntervalBox;
      return runShardAttempt(Ctx, Plan);
    };

    ShardSupervisor Supervisor(Policy, Launcher, Fallback, Admit);
    if (logEnabled())
      EventLog::global().emit(LogLevel::Info, "run.start",
                              {{"shards", Shards},
                               {"retries", ShardRetries}});
    const ShardRunSummary Summary = Supervisor.run();
    const int64_t NumSpecs = static_cast<int64_t>(Specs.size());
    MergedCertificate Merged = mergeShardResults(Summary.Results, NumSpecs);
    const bool Degraded = Merged.Degraded || Summary.Degraded;
    if (logEnabled())
      EventLog::global().emit(LogLevel::Info, "run.exit",
                              {{"exit_code", Degraded ? 4 : 0},
                               {"degraded", Degraded},
                               {"restarts", Summary.Restarts},
                               {"fallbacks", Summary.Fallbacks}});

    for (size_t I = 0; I < Specs.size(); ++I) {
      ProbBounds Bounds = Merged.Specs[I];
      Bounds.Degraded = Bounds.Degraded || Degraded;
      // The deterministic collapse happens on the *merged* bounds; a
      // per-shard collapse would destroy the partial masses the merge
      // sums.
      if (Config.Mode == AnalysisMode::Deterministic)
        Bounds = Bounds.deterministic();
      if (Specs.size() > 1)
        std::printf("spec:    %s\n", SpecTexts[I].c_str());
      std::printf("bounds:  [%.6f, %.6f]  width %s\n", Bounds.Lower,
                  Bounds.Upper, formatBound(Bounds.width()).c_str());
      if (Config.Mode == AnalysisMode::Deterministic) {
        const char *Verdict = Bounds.Lower >= 1.0   ? "HOLDS"
                              : Bounds.Upper <= 0.0 ? "NEVER HOLDS"
                                                    : "UNKNOWN";
        std::printf("verdict: %s%s\n", Verdict,
                    Bounds.Degraded ? " (DEGRADED)" : "");
      } else if (Bounds.Degraded) {
        std::printf("verdict: DEGRADED; holds with probability in "
                    "[%.6f, %.6f]\n",
                    Bounds.Lower, Bounds.Upper);
      } else {
        std::printf("verdict: holds with probability in [%.6f, %.6f]\n",
                    Bounds.Lower, Bounds.Upper);
      }
    }
    std::printf("stats:   %.2fs, %lld regions peak, %lld nodes peak, %s "
                "device memory, %lld retries\n",
                Summary.Seconds,
                static_cast<long long>(Merged.MaxRegions),
                static_cast<long long>(Merged.MaxNodes),
                formatBytes(Merged.PeakBytes).c_str(),
                static_cast<long long>(Merged.Retries));
    std::printf("shards:  %lld shards, %lld restarts, %lld fallbacks, "
                "%lld heartbeat misses, %lld oom-kills, %.2fs worker cpu\n",
                static_cast<long long>(Shards),
                static_cast<long long>(Summary.Restarts),
                static_cast<long long>(Summary.Fallbacks),
                static_cast<long long>(Summary.HeartbeatMisses),
                static_cast<long long>(Summary.OomKills),
                Merged.TotalShardSeconds);
    if (Degraded) {
      std::printf("degrade: rung %s, %lld rollbacks, %lld fallback-box "
                  "layers, deadline %s, quarantined mass %.6f\n",
                  degradeRungName(Merged.Rung),
                  static_cast<long long>(Merged.Rollbacks),
                  static_cast<long long>(Merged.FallbackBoxLayers),
                  Merged.DeadlineHit ? "hit" : "met",
                  Merged.QuarantinedMass);
      return 4;
    }
    return 0;
  }

  //===--------------------------------------------------------------------===//
  // Single-process path. One --start/--end pair keeps the original
  // semantics exactly (propagateSegmentsBatch with one segment IS
  // propagateSegment); several pairs flow through the network as one
  // batched abstract state and are split back per pair, bit-identical to
  // running each pair alone (docs/PERFORMANCE.md).
  //===--------------------------------------------------------------------===//

  // The expensive propagation happens once per batch; every (pair, spec)
  // endpoint is then bounded against its shared state concurrently.
  // boundsFor only reads the state, and results land in per-slot
  // positions, so the printed order (and every digit) matches the serial
  // run.
  const GenProve Analyzer(Config);

  if (Config.FastScreen) {
    // Two-tier screened path: classification is per (segment, spec) — the
    // screen's verdicts depend on the constraint functionals — so each
    // pair x spec runs its own screened analysis (the float tier is
    // cheap; borderline pieces share one sound propagation per call).
    GENPROVE_SPAN("analyze_screened");
    bool Degraded = false;
    double Seconds = 0.0;
    size_t PeakBytes = 0;
    int64_t MaxRegions = 0, MaxNodes = 0, Retries = 0;
    int64_t NumInside = 0, NumOutside = 0, NumBorderline = 0;
    for (size_t Pair = 0; Pair < Segments.size(); ++Pair) {
      if (Segments.size() > 1)
        std::printf("segment: %s -> %s\n", StartPaths[Pair].c_str(),
                    EndPaths[Pair].c_str());
      for (size_t I = 0; I < Specs.size(); ++I) {
        const AnalysisResult R = Analyzer.analyzeSegment(
            Pipeline, InputShape, Segments[Pair].first,
            Segments[Pair].second, Specs[I]);
        Seconds += R.Seconds;
        PeakBytes = std::max(PeakBytes, R.PeakBytes);
        MaxRegions = std::max(MaxRegions, R.MaxRegions);
        MaxNodes = std::max(MaxNodes, R.MaxNodes);
        Retries = std::max(Retries, R.Retries);
        NumInside += R.ScreenedInside;
        NumOutside += R.ScreenedOutside;
        NumBorderline += R.ScreenedBorderline;
        Degraded = Degraded || R.Degraded || R.Bounds.Degraded;
        if (Specs.size() > 1)
          std::printf("spec:    %s\n", SpecTexts[I].c_str());
        std::printf("bounds:  [%.6f, %.6f]  width %s\n", R.Bounds.Lower,
                    R.Bounds.Upper, formatBound(R.Bounds.width()).c_str());
        if (Config.Mode == AnalysisMode::Deterministic) {
          const char *Verdict = R.Bounds.Lower >= 1.0   ? "HOLDS"
                                : R.Bounds.Upper <= 0.0 ? "NEVER HOLDS"
                                                        : "UNKNOWN";
          std::printf("verdict: %s%s\n", Verdict,
                      R.Bounds.Degraded ? " (DEGRADED)" : "");
        } else if (R.Bounds.Degraded) {
          std::printf("verdict: DEGRADED; holds with probability in "
                      "[%.6f, %.6f]\n",
                      R.Bounds.Lower, R.Bounds.Upper);
        } else {
          std::printf("verdict: holds with probability in [%.6f, %.6f]\n",
                      R.Bounds.Lower, R.Bounds.Upper);
        }
      }
    }
    std::printf("screen:  %lld inside, %lld outside, %lld borderline\n",
                static_cast<long long>(NumInside),
                static_cast<long long>(NumOutside),
                static_cast<long long>(NumBorderline));
    std::printf("stats:   %.2fs, %lld regions peak, %lld nodes peak, %s "
                "device memory, %lld retries\n",
                Seconds, static_cast<long long>(MaxRegions),
                static_cast<long long>(MaxNodes),
                formatBytes(PeakBytes).c_str(),
                static_cast<long long>(Retries));
    return Degraded ? 4 : 0;
  }

  std::vector<PropagatedState> States;
  {
    GENPROVE_SPAN("analyze");
    States = Analyzer.propagateSegmentsBatch(Pipeline, InputShape, Segments);
  }
  const size_t NumPairs = States.size();
  const size_t NumSpecs = Specs.size();
  std::vector<ProbBounds> AllBounds(NumPairs * NumSpecs);
  {
    GENPROVE_SPAN("bound_specs");
    parallelFor(static_cast<int64_t>(AllBounds.size()), 1,
                [&](int64_t Begin, int64_t End_) {
      for (int64_t I = Begin; I < End_; ++I) {
        const size_t Pair = static_cast<size_t>(I) / NumSpecs;
        const size_t SpecIdx = static_cast<size_t>(I) % NumSpecs;
        if (!States[Pair].OutOfMemory)
          AllBounds[static_cast<size_t>(I)] =
              Analyzer.boundsFor(States[Pair], Specs[SpecIdx]);
      }
    });
  }

  // The observability artifacts are flushed by FlushOnExit on every exit
  // path — including the OOM return below; a failing run is exactly when
  // the per-layer timeline matters. On a batched run the layer timeline
  // describes the shared propagation, so one table covers every pair.
  if (Report && !States.front().Stats.Layers.empty())
    printLayerReport(States.front().Stats.Layers);

  bool AnyOom = false;
  bool Degraded = false;
  for (size_t Pair = 0; Pair < NumPairs; ++Pair) {
    const PropagatedState &State = States[Pair];
    // With several pairs, prefix each block with its segment endpoints.
    if (NumPairs > 1)
      std::printf("segment: %s -> %s\n", StartPaths[Pair].c_str(),
                  EndPaths[Pair].c_str());
    if (State.OutOfMemory) {
      std::printf("result: OUT OF MEMORY (budget %s; try --p, --schedule "
                  "or --splits)\n",
                  formatBytes(Config.MemoryBudgetBytes).c_str());
      if (NumPairs == 1)
        return 3; // single-pair output contract: no stats line after OOM
      AnyOom = true;
      continue;
    }
    Degraded = Degraded || State.Degraded;
    for (size_t I = 0; I < NumSpecs; ++I) {
      const ProbBounds &Bounds = AllBounds[Pair * NumSpecs + I];
      Degraded = Degraded || Bounds.Degraded;
      // With several endpoints, prefix each block with its spec text.
      if (NumSpecs > 1)
        std::printf("spec:    %s\n", SpecTexts[I].c_str());
      std::printf("bounds:  [%.6f, %.6f]  width %s\n", Bounds.Lower,
                  Bounds.Upper, formatBound(Bounds.width()).c_str());
      if (Config.Mode == AnalysisMode::Deterministic) {
        const char *Verdict = Bounds.Lower >= 1.0   ? "HOLDS"
                              : Bounds.Upper <= 0.0 ? "NEVER HOLDS"
                                                    : "UNKNOWN";
        std::printf("verdict: %s%s\n", Verdict,
                    Bounds.Degraded || State.Degraded ? " (DEGRADED)" : "");
      } else if (Bounds.Degraded || State.Degraded) {
        std::printf("verdict: DEGRADED; holds with probability in "
                    "[%.6f, %.6f]\n",
                    Bounds.Lower, Bounds.Upper);
      } else {
        std::printf("verdict: holds with probability in [%.6f, %.6f]\n",
                    Bounds.Lower, Bounds.Upper);
      }
    }
  }
  // On the batched path every state's telemetry describes the shared run,
  // so Seconds comes from one state and the peaks are maxed — identical
  // numbers for one pair, a joint summary for several.
  int64_t MaxRegions = 0, MaxNodes = 0, Retries = 0;
  size_t PeakBytes = 0;
  for (const PropagatedState &State : States) {
    MaxRegions = std::max(MaxRegions, State.Stats.MaxRegions);
    MaxNodes = std::max(MaxNodes, State.Stats.MaxNodes);
    PeakBytes = std::max(PeakBytes, State.PeakBytes);
    Retries = std::max(Retries, State.Retries);
  }
  std::printf("stats:   %.2fs, %lld regions peak, %lld nodes peak, %s "
              "device memory, %lld retries\n",
              States.front().Seconds, static_cast<long long>(MaxRegions),
              static_cast<long long>(MaxNodes),
              formatBytes(PeakBytes).c_str(),
              static_cast<long long>(Retries));
  if (AnyOom)
    return 3;
  if (Degraded) {
    const PropagateStats &Stats = States.front().Stats;
    std::printf("degrade: rung %s, %lld rollbacks, %lld fallback-box layers, "
                "deadline %s, quarantined mass %.6f\n",
                degradeRungName(Stats.Rung),
                static_cast<long long>(Stats.Rollbacks),
                static_cast<long long>(Stats.FallbackBoxLayers),
                Stats.DeadlineHit ? "hit" : "met", Stats.QuarantinedMass);
    return 4; // sound but degraded — distinct from success and from OOM.
  }
  return 0;
}
