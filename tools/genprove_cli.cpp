//===- tools/genprove_cli.cpp - command-line verifier -----------*- C++ -*-===//
//
// Verify a serialized network pipeline from the command line.
//
// Usage:
//   genprove_cli --net decoder.bin [--net classifier.bin ...]
//                --input-shape 1x8
//                --start start.txt --end end.txt
//                --spec argmax:0:10 | sign:3:+:40 | halfspace:0.5:-1
//                [--spec ... more endpoints, bounded concurrently]
//                [--p 0.02] [--k 100] [--threshold 250]
//                [--budget-mb 240] [--deterministic] [--arcsine]
//                [--splits N] [--schedule A|B] [--threads N]
//                [--resilient] [--deadline-ms D]
//                [--report] [--trace-out FILE.json] [--metrics-out FILE.json]
//
// Latent vector files contain whitespace-separated doubles; non-finite
// entries (and non-finite network weights) are rejected up front. Networks
// are the binary format written by saveNetwork() (see src/nn/serialize.h).
//
// Exit codes: 0 = analysis completed, 2 = usage/input error,
// 3 = simulated-device out-of-memory, 4 = sound but degraded (resilience
// ladder fired; the reported interval is valid but widened). README.md
// documents the contract.
//
// Fault-injection flags (--inject-oom-layer, --inject-oom-count,
// --inject-nan-layer, --clock-skew-ms) drive the deterministic harness of
// src/domains/fault_injection.h; they exist for the CI smoke job and for
// reproducing degradation paths by hand (docs/ROBUSTNESS.md).
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/fault_injection.h"
#include "src/nn/serialize.h"
#include "src/util/fp.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"
#include "src/util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace genprove;

namespace {

[[noreturn]] void usage(const char *Message) {
  std::fprintf(stderr, "genprove_cli: %s\n", Message);
  std::fprintf(
      stderr,
      "usage: genprove_cli --net NET.bin [--net NET2.bin ...]\n"
      "                    --input-shape 1x8 --start A.txt --end B.txt\n"
      "                    --spec argmax:T:N | sign:I:+|-:N | "
      "halfspace:C:g0,g1,...\n"
      "                    [--spec ...]  (repeatable; the segment is\n"
      "                    propagated once, each endpoint is bounded\n"
      "                    against it concurrently)\n"
      "                    [--p P] [--k K] [--threshold T] [--budget-mb M]\n"
      "                    [--deterministic] [--arcsine] [--sound]\n"
      "                    [--splits N]\n"
      "                    [--schedule A|B] [--threads N]\n"
      "                    [--resilient] [--deadline-ms D]\n"
      "                    [--report] [--trace-out FILE.json]\n"
      "                    [--metrics-out FILE.json]\n"
      "\n"
      "parallelism:\n"
      "  --threads N         size of the shared worker pool (default: the\n"
      "                      GENPROVE_THREADS env var, else the hardware\n"
      "                      concurrency; 1 = fully serial). Results are\n"
      "                      bit-identical for every thread count.\n"
      "\n"
      "soundness:\n"
      "  --sound             directed (outward) rounding on every bound\n"
      "                      computation; floating-point-sound intervals at\n"
      "                      a sub-percent width cost (docs/SOUNDNESS.md)\n"
      "\n"
      "resilience:\n"
      "  --resilient         never fail: on OOM roll back to the last layer\n"
      "                      checkpoint and coarsen in place; exhausted\n"
      "                      retries fall back to interval propagation\n"
      "  --deadline-ms D     wall-clock deadline; on expiry the remaining\n"
      "                      layers run as a single interval box (implies\n"
      "                      --resilient)\n"
      "\n"
      "fault injection (deterministic; for tests and CI):\n"
      "  --inject-oom-layer L   force device charges to fail at layer L\n"
      "  --inject-oom-count N   how many charges fail there (default 1)\n"
      "  --inject-nan-layer L   poison the state with NaN after layer L\n"
      "  --clock-skew-ms M      advance an injected clock M ms per layer\n"
      "                         (deadline tests run off this clock)\n"
      "\n"
      "observability:\n"
      "  --report            print a per-layer telemetry table (regions,\n"
      "                      nodes, splits, boxed, charged bytes, seconds,\n"
      "                      degradation rung/rollbacks)\n"
      "  --trace-out FILE    write a Chrome trace-event JSON file (open in\n"
      "                      chrome://tracing or ui.perfetto.dev)\n"
      "  --metrics-out FILE  write the metrics registry snapshot as JSON\n"
      "\n"
      "exit codes: 0 analysis completed, 2 usage or input error,\n"
      "            3 simulated-device out of memory,\n"
      "            4 sound but degraded (interval is valid but widened)\n");
  std::exit(2);
}

Tensor readVector(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    usage(("cannot open vector file: " + Path).c_str());
  std::vector<double> Values;
  std::string Token;
  // Tokens go through strtod (not operator>>) so the "nan"/"inf"
  // spellings are recognized and rejected instead of silently truncating
  // the vector at the first such entry.
  while (In >> Token) {
    char *TokenEnd = nullptr;
    const double V = std::strtod(Token.c_str(), &TokenEnd);
    if (TokenEnd == Token.c_str() || *TokenEnd != '\0')
      usage(("cannot parse '" + Token + "' in vector file " + Path).c_str());
    if (!std::isfinite(V))
      usage(("non-finite latent endpoint in " + Path +
             " (entry " + std::to_string(Values.size()) +
             "); refusing to certify garbage")
                .c_str());
    Values.push_back(V);
  }
  if (Values.empty())
    usage(("empty vector file: " + Path).c_str());
  const int64_t N = static_cast<int64_t>(Values.size());
  return Tensor({1, N}, std::move(Values));
}

/// Name of the first non-finite parameter tensor, or empty when clean.
std::string findNonFiniteParam(Sequential &Net) {
  for (const Param &P : Net.params()) {
    if (!P.Value)
      continue;
    for (int64_t J = 0; J < P.Value->numel(); ++J)
      if (!std::isfinite((*P.Value)[J]))
        return P.Name;
  }
  return {};
}

Shape parseShape(const std::string &Text) {
  std::vector<int64_t> Dims;
  std::istringstream In(Text);
  std::string Part;
  while (std::getline(In, Part, 'x'))
    Dims.push_back(std::stoll(Part));
  if (Dims.empty())
    usage("bad --input-shape");
  return Shape(Dims);
}

OutputSpec parseSpec(const std::string &Text) {
  std::istringstream In(Text);
  std::string Kind;
  std::getline(In, Kind, ':');
  if (Kind == "argmax") {
    std::string T, N;
    std::getline(In, T, ':');
    std::getline(In, N, ':');
    return OutputSpec::argmaxWins(std::stoll(T), std::stoll(N));
  }
  if (Kind == "sign") {
    std::string I, S, N;
    std::getline(In, I, ':');
    std::getline(In, S, ':');
    std::getline(In, N, ':');
    return OutputSpec::attributeSign(std::stoll(I), S == "+", std::stoll(N));
  }
  if (Kind == "halfspace") {
    std::string C, Coeffs;
    std::getline(In, C, ':');
    std::getline(In, Coeffs);
    std::vector<double> G;
    std::istringstream Gs(Coeffs);
    std::string Part;
    while (std::getline(Gs, Part, ','))
      G.push_back(std::stod(Part));
    Tensor Normal({1, static_cast<int64_t>(G.size())}, std::move(G));
    return OutputSpec::halfspace(std::move(Normal), std::stod(C));
  }
  usage("unknown spec kind (use argmax / sign / halfspace)");
}

/// The --report table: one row per layer, plus a sum/max footer matching
/// the aggregate stats line.
void printLayerReport(const std::vector<LayerRecord> &Layers) {
  TablePrinter Table({"layer", "kind", "regions", "nodes", "splits", "boxed",
                      "charged", "seconds", "resil"});
  auto Flow = [](int64_t In, int64_t Out) {
    return std::to_string(In) + "->" + std::to_string(Out);
  };
  // The resil column: degradation rung the layer ran at, plus the number
  // of checkpoint rollbacks it took to get the layer through.
  auto Resil = [](const LayerRecord &Rec) -> std::string {
    if (Rec.Rung == DegradeRung::None && Rec.Rollbacks == 0)
      return "-";
    std::string Text = degradeRungName(Rec.Rung);
    if (Rec.Rollbacks > 0)
      Text.append("(").append(std::to_string(Rec.Rollbacks)).append(")");
    return Text;
  };
  int64_t SumSplits = 0, SumBoxed = 0, MaxRegions = 0, MaxNodes = 0;
  int64_t SumRollbacks = 0;
  size_t MaxCharged = 0;
  double SumSeconds = 0.0;
  for (const LayerRecord &Rec : Layers) {
    Table.addRow({std::to_string(Rec.Index), Rec.Kind,
                  Flow(Rec.RegionsIn, Rec.RegionsOut),
                  Flow(Rec.NodesIn, Rec.NodesOut), std::to_string(Rec.Splits),
                  std::to_string(Rec.Boxed), formatBytes(Rec.ChargedBytes),
                  formatSeconds(Rec.Seconds), Resil(Rec)});
    SumSplits += Rec.Splits;
    SumBoxed += Rec.Boxed;
    SumRollbacks += Rec.Rollbacks;
    MaxRegions = std::max(MaxRegions, Rec.RegionsOut);
    MaxNodes = std::max(MaxNodes, Rec.NodesOut);
    MaxCharged = std::max(MaxCharged, Rec.ChargedBytes);
    SumSeconds += Rec.Seconds;
  }
  Table.addRow({"sum/max", "-", std::to_string(MaxRegions),
                std::to_string(MaxNodes), std::to_string(SumSplits),
                std::to_string(SumBoxed), formatBytes(MaxCharged),
                formatSeconds(SumSeconds),
                SumRollbacks > 0 ? std::to_string(SumRollbacks) + " rb" : "-"});
  std::printf("per-layer telemetry:\n%s", Table.render().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> NetPaths;
  std::vector<std::string> SpecTexts;
  std::string StartPath, EndPath, ShapeText;
  std::string TraceOutPath, MetricsOutPath;
  bool Report = false;
  GenProveConfig Config;
  Config.NodeThreshold = 250;
  FaultPlan Faults;
  bool HaveFaults = false;

  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto Next = [&]() -> std::string {
      if (I + 1 >= Argc)
        usage(("missing value for " + Arg).c_str());
      return Argv[++I];
    };
    if (Arg == "--net")
      NetPaths.push_back(Next());
    else if (Arg == "--input-shape")
      ShapeText = Next();
    else if (Arg == "--start")
      StartPath = Next();
    else if (Arg == "--end")
      EndPath = Next();
    else if (Arg == "--spec")
      SpecTexts.push_back(Next());
    else if (Arg == "--threads")
      ThreadPool::global().setThreads(std::stoll(Next()));
    else if (Arg == "--p")
      Config.RelaxPercent = std::stod(Next());
    else if (Arg == "--k")
      Config.ClusterK = std::stod(Next());
    else if (Arg == "--threshold")
      Config.NodeThreshold = std::stoll(Next());
    else if (Arg == "--budget-mb")
      Config.MemoryBudgetBytes =
          static_cast<size_t>(std::stoull(Next())) << 20;
    else if (Arg == "--deterministic")
      Config.Mode = AnalysisMode::Deterministic;
    else if (Arg == "--sound")
      setSoundRounding(true);
    else if (Arg == "--arcsine")
      Config.Distribution = ParamDistribution::Arcsine;
    else if (Arg == "--splits")
      Config.InputSplits = std::stoll(Next());
    else if (Arg == "--schedule")
      Config.Schedule =
          Next() == "B" ? RefinementSchedule::B : RefinementSchedule::A;
    else if (Arg == "--resilient")
      Config.Resilience.Enabled = true;
    else if (Arg == "--deadline-ms") {
      Config.Resilience.Enabled = true;
      Config.Resilience.DeadlineSeconds = std::stod(Next()) / 1000.0;
    } else if (Arg == "--inject-oom-layer") {
      Faults.OomAtLayer = std::stoll(Next());
      HaveFaults = true;
    } else if (Arg == "--inject-oom-count") {
      Faults.OomFireCount = std::stoll(Next());
      HaveFaults = true;
    } else if (Arg == "--inject-nan-layer") {
      Faults.NanAtLayer = std::stoll(Next());
      HaveFaults = true;
    } else if (Arg == "--clock-skew-ms") {
      Faults.ClockSkewSecondsPerLayer = std::stod(Next()) / 1000.0;
      HaveFaults = true;
    } else if (Arg == "--report")
      Report = true;
    else if (Arg == "--trace-out")
      TraceOutPath = Next();
    else if (Arg == "--metrics-out")
      MetricsOutPath = Next();
    else
      usage(("unknown option: " + Arg).c_str());
  }

  if (NetPaths.empty() || StartPath.empty() || EndPath.empty() ||
      ShapeText.empty() || SpecTexts.empty())
    usage("--net, --input-shape, --start, --end and --spec are required");

  // The fault-injection harness lives for the whole analysis; a skewed
  // clock replaces the wall clock so deadline runs are deterministic.
  FaultInjector Injector(Faults);
  if (HaveFaults) {
    Config.Resilience.Faults = &Injector;
    if (Faults.ClockSkewSecondsPerLayer > 0.0)
      Config.Resilience.Clock = Injector.clock();
  }

  // Observability is opt-in: tracing and metrics both default off.
  if (!TraceOutPath.empty())
    setTraceEnabled(true);
  if (!MetricsOutPath.empty() || Report)
    setMetricsEnabled(true);

  // Load the pipeline.
  std::vector<Sequential> Networks;
  {
    GENPROVE_SPAN("load_networks");
    for (const std::string &Path : NetPaths) {
      auto Net = loadNetwork(Path);
      if (!Net) {
        std::fprintf(stderr, "genprove_cli: cannot load network %s\n",
                     Path.c_str());
        return 2;
      }
      // A NaN/Inf weight would silently poison every bound downstream;
      // refuse it here with a pointer to the offending tensor instead.
      const std::string Bad = findNonFiniteParam(*Net);
      if (!Bad.empty()) {
        std::fprintf(stderr,
                     "genprove_cli: network %s has a non-finite weight in "
                     "parameter '%s'; refusing to certify\n",
                     Path.c_str(), Bad.c_str());
        return 2;
      }
      Networks.push_back(std::move(*Net));
    }
  }
  std::vector<const Layer *> Pipeline;
  for (const Sequential &Net : Networks)
    Pipeline = concatViews(Pipeline, Net.view());

  const Shape InputShape = parseShape(ShapeText);
  const Tensor Start = readVector(StartPath);
  const Tensor End = readVector(EndPath);
  if (Start.numel() != End.numel() ||
      Start.numel() != InputShape.numel()) {
    std::fprintf(stderr,
                 "genprove_cli: vector dims (%lld, %lld) do not match "
                 "--input-shape %s\n",
                 static_cast<long long>(Start.numel()),
                 static_cast<long long>(End.numel()),
                 InputShape.toString().c_str());
    return 2;
  }
  std::vector<OutputSpec> Specs;
  for (const std::string &Text : SpecTexts)
    Specs.push_back(parseSpec(Text));

  // The expensive propagation happens once; every --spec endpoint is then
  // bounded against the shared state concurrently. boundsFor only reads
  // the state, and results land in per-spec slots, so the printed order
  // (and every digit) matches the serial run.
  const GenProve Analyzer(Config);
  PropagatedState State;
  {
    GENPROVE_SPAN("analyze");
    State = Analyzer.propagateSegment(Pipeline, InputShape, Start, End);
  }
  const int64_t NumSpecs = static_cast<int64_t>(Specs.size());
  std::vector<ProbBounds> AllBounds(Specs.size());
  {
    GENPROVE_SPAN("bound_specs");
    parallelFor(NumSpecs, 1, [&](int64_t Begin, int64_t End_) {
      for (int64_t I = Begin; I < End_; ++I)
        AllBounds[static_cast<size_t>(I)] =
            Analyzer.boundsFor(State, Specs[static_cast<size_t>(I)]);
    });
  }

  // Emit the observability artifacts even on OOM — a failing run is
  // exactly when the per-layer timeline matters.
  if (Report && !State.Stats.Layers.empty())
    printLayerReport(State.Stats.Layers);
  if (!TraceOutPath.empty() &&
      !TraceSession::global().writeChromeTrace(TraceOutPath))
    std::fprintf(stderr, "genprove_cli: cannot write trace to %s\n",
                 TraceOutPath.c_str());
  if (!MetricsOutPath.empty() &&
      !MetricsRegistry::global().writeJson(MetricsOutPath))
    std::fprintf(stderr, "genprove_cli: cannot write metrics to %s\n",
                 MetricsOutPath.c_str());

  if (State.OutOfMemory) {
    std::printf("result: OUT OF MEMORY (budget %s; try --p, --schedule or "
                "--splits)\n",
                formatBytes(Config.MemoryBudgetBytes).c_str());
    return 3;
  }
  bool Degraded = State.Degraded;
  for (size_t I = 0; I < Specs.size(); ++I) {
    const ProbBounds &Bounds = AllBounds[I];
    Degraded = Degraded || Bounds.Degraded;
    // With several endpoints, prefix each block with its spec text.
    if (Specs.size() > 1)
      std::printf("spec:    %s\n", SpecTexts[I].c_str());
    std::printf("bounds:  [%.6f, %.6f]  width %s\n", Bounds.Lower,
                Bounds.Upper, formatBound(Bounds.width()).c_str());
    if (Config.Mode == AnalysisMode::Deterministic) {
      const char *Verdict = Bounds.Lower >= 1.0   ? "HOLDS"
                            : Bounds.Upper <= 0.0 ? "NEVER HOLDS"
                                                  : "UNKNOWN";
      std::printf("verdict: %s%s\n", Verdict,
                  Bounds.Degraded || State.Degraded ? " (DEGRADED)" : "");
    } else if (Bounds.Degraded || State.Degraded) {
      std::printf("verdict: DEGRADED; holds with probability in "
                  "[%.6f, %.6f]\n",
                  Bounds.Lower, Bounds.Upper);
    } else {
      std::printf("verdict: holds with probability in [%.6f, %.6f]\n",
                  Bounds.Lower, Bounds.Upper);
    }
  }
  std::printf("stats:   %.2fs, %lld regions peak, %lld nodes peak, %s "
              "device memory, %lld retries\n",
              State.Seconds,
              static_cast<long long>(State.Stats.MaxRegions),
              static_cast<long long>(State.Stats.MaxNodes),
              formatBytes(State.PeakBytes).c_str(),
              static_cast<long long>(State.Retries));
  if (Degraded) {
    std::printf("degrade: rung %s, %lld rollbacks, %lld fallback-box layers, "
                "deadline %s, quarantined mass %.6f\n",
                degradeRungName(State.Stats.Rung),
                static_cast<long long>(State.Stats.Rollbacks),
                static_cast<long long>(State.Stats.FallbackBoxLayers),
                State.Stats.DeadlineHit ? "hit" : "met",
                State.Stats.QuarantinedMass);
    return 4; // sound but degraded — distinct from success and from OOM.
  }
  return 0;
}
