//===- tools/genprove_serve.cpp - The verification daemon ------*- C++ -*-===//
///
/// \file
/// Long-running verification daemon (docs/SERVING.md): loads the model
/// zoo once, listens on a Unix-domain socket for newline-JSON verify
/// requests, and serves them concurrently under admission control,
/// per-request QoS degradation, and supervised fault containment.
///
///   genprove_serve --socket /tmp/genprove.sock \
///       --net tiny=decoder.gpn+classifier.gpn --budget-mb 512 \
///       --max-concurrent 8 --log-out serve_log.jsonl
///
/// SIGTERM/SIGINT drain gracefully: the listener closes, queued requests
/// are shed with explicit OVERLOADED responses, in-flight requests finish
/// under --drain-deadline-ms, and every configured telemetry artifact is
/// flushed before exit.
///
/// With --isolate each propagation runs in a fork/exec'd worker process
/// (this binary re-exec'd with --worker-request), so even a propagation
/// that corrupts its own heap cannot take the daemon down.
///
//===----------------------------------------------------------------------===//

#include "src/domains/prop_cache.h"
#include "src/nn/serialize.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/server.h"
#include "src/shard/protocol.h"
#include "src/shard/supervisor.h"
#include "src/util/fp.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace genprove;

namespace {

[[noreturn]] void usage(const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "genprove_serve: %s\n\n", Error);
  std::fprintf(
      stderr,
      "usage: genprove_serve --socket PATH --net NAME=PATH[+PATH2...] "
      "[options]\n"
      "\n"
      "Fault-hardened verification daemon: newline-JSON over a Unix\n"
      "socket (protocol in docs/SERVING.md). Models load once; requests\n"
      "run concurrently under admission control and per-request QoS.\n"
      "\n"
      "required:\n"
      "  --socket PATH         Unix-domain socket to listen on\n"
      "  --net NAME=P[+P2...]  register a model pipeline (repeatable)\n"
      "\n"
      "admission control:\n"
      "  --budget-mb N         daemon-wide simulated-device budget,\n"
      "                        partitioned among admitted requests\n"
      "                        (default: unlimited)\n"
      "  --max-concurrent N    concurrently-running requests (default 4)\n"
      "  --max-queue N         bounded wait queue beyond those (default 16)\n"
      "  --queue-wait-ms T     longest a request may queue before it is\n"
      "                        shed OVERLOADED (default 5000)\n"
      "  --max-connections N   concurrent client connections (default 64)\n"
      "  --max-line-bytes N    request-line frame cap; longer lines get\n"
      "                        a typed 'oversized' error (default 1 MiB)\n"
      "\n"
      "QoS (deadline -> rung ladder; docs/SERVING.md):\n"
      "  --resilient-floor-ms T  below T remaining, start at the Resilient\n"
      "                          rung (default 250)\n"
      "  --box-floor-ms T        below T remaining (incl. 0), answer with\n"
      "                          the sound interval-box bound (default 50)\n"
      "  --default-run-ms T      engine deadline for requests that carry\n"
      "                          none (default 30000)\n"
      "\n"
      "fault containment:\n"
      "  --isolate             run each propagation in a fork/exec worker\n"
      "                        process instead of an in-process thread\n"
      "  --request-retries R   supervised retries per request before the\n"
      "                        interval-box fallback (default 2)\n"
      "  --heartbeat-ms T      kill a worker silent for T ms (default 2000)\n"
      "  --write-timeout-ms T  drop a client whose socket blocks a\n"
      "                        response for T ms (default 5000)\n"
      "  --allow-inject        honor the request \"inject\" field (CI\n"
      "                        fault smoke only)\n"
      "\n"
      "cross-request amortization (docs/SERVING.md):\n"
      "  --coalesce-window-ms T  hold the first compatible verify request\n"
      "                        up to T ms for companions, then answer the\n"
      "                        whole batch from one batched propagation\n"
      "                        (bit-exact per request; default 0 = off;\n"
      "                        ignored with --isolate)\n"
      "  --coalesce-max-batch N  most requests per batch (default 8)\n"
      "  --cache-mb N          propagation-cache budget: memoize per-layer\n"
      "                        abstract states so repeated/prefix-shared\n"
      "                        requests warm-start mid-network (default 0\n"
      "                        = off)\n"
      "\n"
      "lifecycle and observability:\n"
      "  --drain-deadline-ms T SIGTERM waits T ms for in-flight requests\n"
      "                        (default 10000)\n"
      "  --sound               directed rounding for every request\n"
      "  --threads N           engine thread-pool size\n"
      "  --metrics-out PATH / --prom-out PATH / --log-out PATH /\n"
      "  --trace-out PATH      telemetry artifacts, flushed on drain and\n"
      "                        on fatal signals; the JSONL log appends\n"
      "                        incrementally (ring-buffered in memory)\n"
      "  --log-capacity N      in-memory log ring size (default 8192)\n"
      "  --run-id ID           run id stamped on every log line\n");
  std::exit(2);
}

std::string makeRunId() {
  const auto Now = std::chrono::system_clock::now().time_since_epoch();
  const auto Us =
      std::chrono::duration_cast<std::chrono::microseconds>(Now).count();
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%llx-%x",
                static_cast<unsigned long long>(Us),
                static_cast<unsigned>(::getpid()));
  return Buf;
}

//===----------------------------------------------------------------------===//
// Signal handling: one atomic store; the accept loop notices within its
// poll tick and runs the drain sequence on the main thread.
//===----------------------------------------------------------------------===//

std::atomic<Server *> GlobalServer{nullptr};
std::atomic<int> ForcedExits{0};

void handleShutdownSignal(int) {
  // First signal: graceful drain. A second signal while draining means
  // the operator wants out *now* — flush what we have and exit hard.
  if (ForcedExits.fetch_add(1) > 0) {
    ObsFlushGuard::flushNow();
    _exit(5);
  }
  if (Server *S = GlobalServer.load(std::memory_order_acquire))
    S->requestStop();
}

//===----------------------------------------------------------------------===//
// Worker mode (--isolate): run one request's shard attempt in a pristine
// process. Protocol and exit codes match genprove_cli --shard-worker so
// ProcessShardLauncher's classification applies unchanged.
//===----------------------------------------------------------------------===//

/// Heartbeat emitter: one protocol line every IntervalMs until stopped,
/// carrying the liveness digest the propagation loop refreshes.
class HeartbeatThread {
public:
  HeartbeatThread(int64_t Shard, double IntervalMs) {
    Worker = std::thread([this, Shard, IntervalMs] {
      int64_t Seq = 0;
      while (!Stop.load(std::memory_order_acquire)) {
        RunLiveness &Live = RunLiveness::global();
        const std::string Line = encodeShardHeartbeat(
            Shard, Seq++, Live.StateBytes.load(std::memory_order_relaxed),
            Live.CurrentLayer.load(std::memory_order_relaxed));
        std::fprintf(stdout, "%s\n", Line.c_str());
        std::fflush(stdout);
        double Left = IntervalMs;
        while (Left > 0.0 && !Stop.load(std::memory_order_acquire)) {
          const double Slice = std::min(Left, 10.0);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(Slice));
          Left -= Slice;
        }
      }
    });
  }
  ~HeartbeatThread() {
    Stop.store(true, std::memory_order_release);
    if (Worker.joinable())
      Worker.join();
  }

private:
  std::atomic<bool> Stop{false};
  std::thread Worker;
};

int workerMain(const std::string &SpecPath, int64_t Attempt, int64_t Rung) {
  std::ifstream In(SpecPath);
  std::stringstream Text;
  Text << In.rdbuf();
  ServeWorkerSpec Spec;
  std::string Err;
  if (!In || !decodeServeWorkerSpec(Text.str(), Spec, &Err)) {
    std::fprintf(stderr, "genprove_serve worker: bad spec %s: %s\n",
                 SpecPath.c_str(), Err.c_str());
    return 2;
  }
  if (Spec.Sound)
    setSoundRounding(true);

  std::vector<Sequential> Networks;
  for (const std::string &Path : Spec.NetPaths) {
    auto Net = loadNetwork(Path);
    if (!Net) {
      std::fprintf(stderr, "genprove_serve worker: cannot load %s\n",
                   Path.c_str());
      return 2;
    }
    Networks.push_back(std::move(*Net));
  }
  ShardWorkContext Ctx;
  for (const Sequential &Net : Networks)
    Ctx.Pipeline = concatViews(Ctx.Pipeline, Net.view());

  {
    std::vector<int64_t> Dims;
    std::istringstream ShapeIn(Spec.InputShape);
    std::string Part;
    while (std::getline(ShapeIn, Part, 'x'))
      Dims.push_back(std::strtoll(Part.c_str(), nullptr, 10));
    if (Dims.empty()) {
      std::fprintf(stderr, "genprove_serve worker: bad input shape\n");
      return 2;
    }
    Ctx.InputShape = Shape(Dims);
  }
  const int64_t Latent = static_cast<int64_t>(Spec.Start.size());
  Ctx.Start = Tensor({1, Latent}, Spec.Start);
  Ctx.End = Tensor({1, Latent}, Spec.End);
  for (const std::string &SpecText : Spec.Specs) {
    OutputSpec Parsed;
    if (!parseOutputSpecText(SpecText, Parsed, &Err)) {
      std::fprintf(stderr, "genprove_serve worker: bad spec '%s': %s\n",
                   SpecText.c_str(), Err.c_str());
      return 2;
    }
    Ctx.Specs.push_back(Parsed);
  }
  Ctx.NumShards = 1;
  GenProveConfig &Conf = Ctx.Config;
  Conf.RelaxPercent = Spec.RelaxPercent;
  Conf.ClusterK = Spec.ClusterK;
  Conf.NodeThreshold = Spec.NodeThreshold;
  Conf.Distribution =
      Spec.Arcsine ? ParamDistribution::Arcsine : ParamDistribution::Uniform;
  Conf.MemoryBudgetBytes = Spec.BudgetBytes;
  Conf.Resilience.Enabled = true;
  Conf.Resilience.DeadlineSeconds = Spec.DeadlineSeconds;
  Conf.FuseRelu = Spec.Fuse;
  Conf.FastScreen = Spec.FastScreen;

  AttemptPlan Plan;
  Plan.Shard = 0;
  Plan.Attempt = Attempt;
  Plan.Rung = static_cast<ShardRung>(std::clamp<int64_t>(Rung, 0, 3));

  // Injected faults fire on attempt 0 only, so the supervised retry
  // demonstrably recovers. Hang sleeps silently *before* the heartbeat
  // thread exists — the supervisor's heartbeat timeout must catch it.
  if (Attempt == 0 && !Spec.Inject.empty()) {
    if (Spec.Inject == "crash")
      std::abort();
    if (Spec.Inject == "oomkill")
      raise(SIGKILL);
    if (Spec.Inject == "hang")
      std::this_thread::sleep_for(std::chrono::seconds(600));
  }

  ShardResult Result;
  {
    const double IntervalMs = std::clamp(Spec.HeartbeatMs, 10.0, 250.0);
    HeartbeatThread Beat(0, IntervalMs);
    Result = runShardAttempt(Ctx, Plan);
  }
  if (Result.OutOfMemory) {
    std::fprintf(stderr, "genprove_serve worker: out of memory\n");
    return 3;
  }
  const std::string Line = encodeShardResult(Result, nullptr);
  std::fprintf(stdout, "%s\n", Line.c_str());
  std::fflush(stdout);
  return Result.Degraded ? 4 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ServeConfig Cfg;
  std::vector<std::string> NetSpecs;
  std::string MetricsOutPath, PromOutPath, LogOutPath, TraceOutPath, RunId;
  std::string WorkerSpecPath;
  int64_t WorkerAttempt = 0, WorkerRung = 0, LogCapacity = 8192;

  auto NextArg = [&](int &I) -> std::string {
    if (I + 1 >= Argc)
      usage("missing value for option");
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--socket") {
      Cfg.SocketPath = NextArg(I);
    } else if (Arg == "--net") {
      NetSpecs.push_back(NextArg(I));
    } else if (Arg == "--budget-mb") {
      Cfg.Admission.BudgetBytes =
          static_cast<size_t>(std::stoull(NextArg(I))) << 20;
    } else if (Arg == "--max-concurrent") {
      Cfg.Admission.MaxConcurrent = std::stoll(NextArg(I));
    } else if (Arg == "--max-queue") {
      Cfg.Admission.MaxQueue = std::stoll(NextArg(I));
    } else if (Arg == "--queue-wait-ms") {
      Cfg.Admission.MaxQueueWaitSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--max-connections") {
      Cfg.MaxConnections = std::stoll(NextArg(I));
    } else if (Arg == "--max-line-bytes") {
      Cfg.MaxLineBytes = static_cast<size_t>(std::stoull(NextArg(I)));
    } else if (Arg == "--resilient-floor-ms") {
      Cfg.Qos.ResilientFloorSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--box-floor-ms") {
      Cfg.Qos.BoxFloorSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--default-run-ms") {
      Cfg.Qos.DefaultRunSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--isolate") {
      Cfg.Isolate = true;
    } else if (Arg == "--request-retries") {
      Cfg.RequestRetries = std::stoll(NextArg(I));
    } else if (Arg == "--heartbeat-ms") {
      Cfg.HeartbeatTimeoutSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--write-timeout-ms") {
      Cfg.WriteTimeoutSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--drain-deadline-ms") {
      Cfg.DrainDeadlineSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--coalesce-window-ms") {
      Cfg.CoalesceWindowSeconds = std::stod(NextArg(I)) / 1000.0;
    } else if (Arg == "--coalesce-max-batch") {
      Cfg.CoalesceMaxBatch = std::stoll(NextArg(I));
    } else if (Arg == "--cache-mb") {
      PropagationCache::global().configure(
          static_cast<size_t>(std::stoull(NextArg(I))) << 20);
    } else if (Arg == "--allow-inject") {
      Cfg.AllowInject = true;
    } else if (Arg == "--sound") {
      Cfg.SoundMode = true;
    } else if (Arg == "--threads") {
      ThreadPool::global().setThreads(std::stoll(NextArg(I)));
    } else if (Arg == "--metrics-out") {
      MetricsOutPath = NextArg(I);
    } else if (Arg == "--prom-out") {
      PromOutPath = NextArg(I);
    } else if (Arg == "--log-out") {
      LogOutPath = NextArg(I);
    } else if (Arg == "--trace-out") {
      TraceOutPath = NextArg(I);
    } else if (Arg == "--log-capacity") {
      LogCapacity = std::stoll(NextArg(I));
    } else if (Arg == "--run-id") {
      RunId = NextArg(I);
    } else if (Arg == "--worker-request") {
      WorkerSpecPath = NextArg(I);
    } else if (Arg == "--shard-worker") {
      NextArg(I); // always shard 0; consumed for launcher compatibility
    } else if (Arg == "--shard-attempt") {
      WorkerAttempt = std::stoll(NextArg(I));
    } else if (Arg == "--shard-rung") {
      WorkerRung = std::stoll(NextArg(I));
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
    } else {
      usage(("unknown option: " + Arg).c_str());
    }
  }

  if (!WorkerSpecPath.empty())
    return workerMain(WorkerSpecPath, WorkerAttempt, WorkerRung);

  if (Cfg.SocketPath.empty() || NetSpecs.empty())
    usage("--socket and at least one --net are required");
  if (Cfg.SoundMode)
    setSoundRounding(true);

  // Observability: same opt-in planes as the CLI, but configured for a
  // long-lived process — the in-memory log is a bounded ring and the
  // JSONL artifact appends incrementally instead of rewriting.
  if (!TraceOutPath.empty())
    setTraceEnabled(true);
  // Metrics are always on in daemon mode (one relaxed atomic per point):
  // /stats serves the live registry whether or not an artifact path is
  // configured.
  setMetricsEnabled(true);
  if (!LogOutPath.empty()) {
    setLogEnabled(true);
    EventLog::global().setCapacity(static_cast<size_t>(
        std::max<int64_t>(LogCapacity, 64)));
    if (RunId.empty())
      RunId = makeRunId();
    EventLog::global().setRunId(RunId);
  }
  {
    ObsFlushGuard::Paths FlushTo;
    FlushTo.Trace = TraceOutPath;
    FlushTo.Metrics = MetricsOutPath;
    FlushTo.Prom = PromOutPath;
    FlushTo.Log = LogOutPath;
    FlushTo.AppendLog = true;
    ObsFlushGuard::configure(FlushTo);
  }
  ObsFlushGuard FlushOnExit;

  ModelRegistry Registry;
  for (const std::string &Spec : NetSpecs) {
    std::string Err;
    if (!Registry.registerModel(Spec, &Err)) {
      std::fprintf(stderr, "genprove_serve: %s\n", Err.c_str());
      return 2;
    }
  }

  Server Daemon(Cfg, Registry);
  GlobalServer.store(&Daemon, std::memory_order_release);
  std::signal(SIGINT, handleShutdownSignal);
  std::signal(SIGTERM, handleShutdownSignal);
  std::signal(SIGHUP, handleShutdownSignal); // a dying controlling shell
                                             // drains too, not hard-kills

  std::fprintf(stderr, "genprove_serve: listening on %s (%zu model%s%s)\n",
               Cfg.SocketPath.c_str(), Registry.size(),
               Registry.size() == 1 ? "" : "s",
               Cfg.Isolate ? ", isolated workers" : "");
  const bool Ok = Daemon.run();
  GlobalServer.store(nullptr, std::memory_order_release);
  return Ok ? 0 : 1;
}
