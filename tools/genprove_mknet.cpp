//===- tools/genprove_mknet.cpp - tiny pipeline generator -------*- C++ -*-===//
//
// Write two small deterministic serialized pipelines plus start/end latent
// vectors, so genprove_cli can be exercised without training a model zoo.
// Used by the CI smoke tests and handy for local experiments:
//
//   genprove_mknet OUTDIR
//   genprove_cli --net OUTDIR/tiny_net.bin --input-shape 1x4
//                --start OUTDIR/start.txt --end OUTDIR/end.txt
//                --spec argmax:0:3 --report --trace-out t.json
//
// tiny_net.bin is the quickstart 4 -> 16 -> 16 -> 3 MLP; deep_net.bin is a
// deeper 6 -> 32 -> 32 -> 32 -> 4 chain (start/end in deep_start.txt /
// deep_end.txt, input shape 1x6) with three affine->ReLU pairs, so the
// fused-kernel CI differential exercises fusion on more than one pair per
// forward pass.
//
// Exit codes: 0 ok, 2 usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "src/nn/activations.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/nn/serialize.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

using namespace genprove;

namespace {

bool writeVector(const std::string &Path, const Tensor &V) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  for (int64_t J = 0; J < V.numel(); ++J)
    Out << V[J] << (J + 1 < V.numel() ? " " : "\n");
  return static_cast<bool>(Out);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 2) {
    std::fprintf(stderr, "usage: genprove_mknet OUTDIR\n");
    return 2;
  }
  const std::string OutDir = Argv[1];
  std::error_code Ec;
  std::filesystem::create_directories(OutDir, Ec);

  // The quickstart network: 4 -> 16 -> 16 -> 3, fixed seed.
  Rng R(2021);
  Sequential Net;
  Net.add(std::make_unique<Linear>(4, 16));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Linear>(16, 16));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Linear>(16, 3));
  kaimingInit(Net, R);

  const Tensor E1 = Tensor::randn({1, 4}, R);
  const Tensor E2 = Tensor::randn({1, 4}, R);

  const std::string NetPath = OutDir + "/tiny_net.bin";
  if (!saveNetwork(Net, NetPath)) {
    std::fprintf(stderr, "genprove_mknet: cannot write %s\n", NetPath.c_str());
    return 2;
  }
  if (!writeVector(OutDir + "/start.txt", E1) ||
      !writeVector(OutDir + "/end.txt", E2)) {
    std::fprintf(stderr, "genprove_mknet: cannot write vectors under %s\n",
                 OutDir.c_str());
    return 2;
  }

  // The deeper smoke network: 6 -> 32 -> 32 -> 32 -> 4, three
  // affine->ReLU pairs for the fused-kernel differential.
  Rng DeepR(2022);
  Sequential Deep;
  Deep.add(std::make_unique<Linear>(6, 32));
  Deep.add(std::make_unique<ReLU>());
  Deep.add(std::make_unique<Linear>(32, 32));
  Deep.add(std::make_unique<ReLU>());
  Deep.add(std::make_unique<Linear>(32, 32));
  Deep.add(std::make_unique<ReLU>());
  Deep.add(std::make_unique<Linear>(32, 4));
  kaimingInit(Deep, DeepR);

  const Tensor D1 = Tensor::randn({1, 6}, DeepR);
  const Tensor D2 = Tensor::randn({1, 6}, DeepR);

  const std::string DeepPath = OutDir + "/deep_net.bin";
  if (!saveNetwork(Deep, DeepPath)) {
    std::fprintf(stderr, "genprove_mknet: cannot write %s\n",
                 DeepPath.c_str());
    return 2;
  }
  if (!writeVector(OutDir + "/deep_start.txt", D1) ||
      !writeVector(OutDir + "/deep_end.txt", D2)) {
    std::fprintf(stderr, "genprove_mknet: cannot write vectors under %s\n",
                 OutDir.c_str());
    return 2;
  }
  std::printf("wrote %s, %s/start.txt, %s/end.txt (input shape 1x4, 3 "
              "outputs)\n",
              NetPath.c_str(), OutDir.c_str(), OutDir.c_str());
  std::printf("wrote %s, %s/deep_start.txt, %s/deep_end.txt (input shape "
              "1x6, 4 outputs)\n",
              DeepPath.c_str(), OutDir.c_str(), OutDir.c_str());
  return 0;
}
