//===- tools/genprove_loadgen.cpp - Serve load generator -------*- C++ -*-===//
///
/// \file
/// Concurrent load generator and fault harness for genprove_serve: N
/// client threads hammer the daemon's Unix socket with verify requests
/// under a configurable mix of deadlines (exercising every QoS rung),
/// injected worker faults (crash/hang/oomkill/slow, when the daemon runs
/// --allow-inject) and client-side wire faults (malformed JSON, oversized
/// lines, mid-line disconnects). OVERLOADED responses are retried with
/// jittered exponential backoff honoring the server's retry_after_ms
/// hint.
///
/// The contract it checks is the serving contract: every request gets an
/// answer — CERTIFIED, DEGRADED-but-sound, or an explicit OVERLOADED /
/// typed error — and sound bounds stay inside [0,1] (optionally around a
/// --expect-contain reference probability). Results, latency percentiles
/// and shed counts are written as JSON (BENCH_serve.json in CI).
///
//===----------------------------------------------------------------------===//

#include "src/obs/json.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace genprove;

namespace {

[[noreturn]] void usage(const char *Error = nullptr) {
  if (Error)
    std::fprintf(stderr, "genprove_loadgen: %s\n\n", Error);
  std::fprintf(
      stderr,
      "usage: genprove_loadgen --socket PATH --net NAME --dims N "
      "--spec TEXT [options]\n"
      "\n"
      "  --socket PATH        daemon socket\n"
      "  --net NAME           registered model name\n"
      "  --dims N             latent dimension (input_shape 1xN; start/end\n"
      "                       vectors are generated deterministically)\n"
      "  --spec TEXT          output spec (repeatable)\n"
      "  --clients N          concurrent client threads (default 8)\n"
      "  --requests N         verify requests per client (default 10)\n"
      "  --deadline-ms T      base request deadline; the mix also sends\n"
      "                       no-deadline, tight and zero deadlines\n"
      "                       (default 2000)\n"
      "  --budget-mb N        per-request budget ask (default 0 = server)\n"
      "  --p P --k K          engine knobs forwarded per request\n"
      "  --inject-every K     every Kth request carries an injected fault,\n"
      "                       cycling crash/hang/oomkill/slow (0 = never;\n"
      "                       daemon must run --allow-inject)\n"
      "  --wire-faults        each client also sends one malformed line,\n"
      "                       one oversized line, and one mid-line\n"
      "                       disconnect\n"
      "  --max-retries N      overload retries per request (default 5)\n"
      "  --expect-contain P   fail unless every sound bound contains P\n"
      "  --repeat-mix N       draw each request's segment from a pool of N\n"
      "                       distinct variants with a Zipf-ish rank\n"
      "                       distribution (rank r weighted 1/(r+1)), so\n"
      "                       hot segments repeat — the traffic shape the\n"
      "                       daemon's propagation cache and request\n"
      "                       coalescing amortize (docs/SERVING.md).\n"
      "                       0 (default) sends the one legacy segment\n"
      "  --require-cache-hits fail unless the daemon's /stats reports a\n"
      "                       nonzero propagation-cache hit count after\n"
      "                       the run\n"
      "  --seed S             RNG seed (default 7)\n"
      "  --out PATH           JSON results file (default BENCH_serve.json)\n");
  std::exit(2);
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// A minimal blocking line client over the Unix socket.
//===----------------------------------------------------------------------===//

class LineClient {
public:
  explicit LineClient(std::string Path) : Path(std::move(Path)) {}
  ~LineClient() { disconnect(); }

  bool connect() {
    disconnect();
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      disconnect();
      return false;
    }
    return true;
  }

  void disconnect() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
    Buffer.clear();
  }

  bool connected() const { return Fd >= 0; }

  bool sendRaw(const std::string &Bytes) {
    size_t Off = 0;
    while (Off < Bytes.size()) {
      const ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                               MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  bool sendLine(const std::string &Line) { return sendRaw(Line + "\n"); }

  /// Read one newline-terminated response; false on timeout/EOF/error.
  bool readLine(std::string &Out, double TimeoutSeconds) {
    const double Deadline = nowSeconds() + TimeoutSeconds;
    for (;;) {
      const size_t Nl = Buffer.find('\n');
      if (Nl != std::string::npos) {
        Out = Buffer.substr(0, Nl);
        Buffer.erase(0, Nl + 1);
        return true;
      }
      const double Left = Deadline - nowSeconds();
      if (Left <= 0.0)
        return false;
      struct pollfd P;
      P.fd = Fd;
      P.events = POLLIN;
      P.revents = 0;
      const int R = ::poll(&P, 1,
                           static_cast<int>(std::min(Left * 1000.0, 250.0)));
      if (R < 0 && errno != EINTR)
        return false;
      if (R <= 0)
        continue;
      char Chunk[16384];
      const ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      if (N == 0)
        return false; // server closed on us
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
  }

private:
  std::string Path;
  int Fd = -1;
  std::string Buffer;
};

//===----------------------------------------------------------------------===//
// Shared tallies.
//===----------------------------------------------------------------------===//

struct Tally {
  std::mutex Mu;
  std::vector<double> LatenciesMs;
  int64_t Sent = 0;
  int64_t Ok = 0;
  int64_t Degraded = 0;
  int64_t Overloaded = 0; ///< final answer after retries was a shed
  int64_t Errors = 0;     ///< typed error responses
  int64_t Unanswered = 0; ///< the one count that must stay zero
  int64_t Retries = 0;
  int64_t WireFaultsSent = 0;
  int64_t SoundnessViolations = 0;
  int64_t Injected = 0;
};

struct GenOptions {
  std::string Socket;
  std::string Net;
  int64_t Dims = 0;
  std::vector<std::string> Specs;
  int64_t Clients = 8;
  int64_t Requests = 10;
  double DeadlineMs = 2000.0;
  int64_t BudgetMb = 0;
  double RelaxP = 0.0;
  double ClusterK = 100.0;
  int64_t InjectEvery = 0;
  bool WireFaults = false;
  int64_t MaxRetries = 5;
  bool HaveExpect = false;
  double ExpectContain = 0.0;
  int64_t RepeatMix = 0;
  bool RequireCacheHits = false;
  uint64_t Seed = 7;
  std::string OutPath = "BENCH_serve.json";
};

/// Zipf-ish variant pick: rank r in [0, N) weighted 1/(r+1), so variant 0
/// is the hot segment and the tail thins out harmonically.
int64_t pickVariant(int64_t N, std::mt19937_64 &Rng) {
  if (N <= 1)
    return 0;
  double Total = 0.0;
  for (int64_t R = 0; R < N; ++R)
    Total += 1.0 / static_cast<double>(R + 1);
  std::uniform_real_distribution<double> Uniform(0.0, Total);
  double U = Uniform(Rng);
  for (int64_t R = 0; R < N; ++R) {
    U -= 1.0 / static_cast<double>(R + 1);
    if (U <= 0.0)
      return R;
  }
  return N - 1;
}

std::string buildVerifyLine(const GenOptions &Opt, const std::string &Id,
                            double DeadlineMs, const std::string &Inject,
                            int64_t Variant = 0) {
  // Variant 0 reproduces the legacy segment exactly; other variants
  // shift both endpoints by a small per-variant delta, so a --repeat-mix
  // pool is N genuinely distinct queries (distinct cache keys) while
  // staying inside the same latent neighborhood.
  const double Delta = 0.003 * static_cast<double>(Variant);
  JsonWriter W;
  W.beginObject();
  W.key("type").value("verify");
  W.key("id").value(Id);
  W.key("net").value(Opt.Net);
  W.key("input_shape").value("1x" + std::to_string(Opt.Dims));
  W.key("start").beginArray();
  for (int64_t J = 0; J < Opt.Dims; ++J)
    W.value(-0.5 + 0.01 * static_cast<double>(J % 7) + Delta);
  W.endArray();
  W.key("end").beginArray();
  for (int64_t J = 0; J < Opt.Dims; ++J)
    W.value(0.5 - 0.01 * static_cast<double>(J % 5) + Delta);
  W.endArray();
  W.key("specs").beginArray();
  for (const std::string &S : Opt.Specs)
    W.value(S);
  W.endArray();
  if (DeadlineMs >= 0.0)
    W.key("deadline_ms").value(DeadlineMs);
  if (Opt.BudgetMb > 0)
    W.key("budget_mb").value(Opt.BudgetMb);
  W.key("p").value(Opt.RelaxP);
  W.key("k").value(Opt.ClusterK);
  if (!Inject.empty()) {
    W.key("inject").value(Inject);
    W.key("inject_ms").value(300.0);
  }
  W.endObject();
  return W.str();
}

/// Deadline mix by request index: the fleet exercises every QoS rung.
/// Index 0 mod 5 → no deadline; 1..2 → comfortable; 3 → tight (resilient
/// band); 4 → zero (interval-box band).
double deadlineForIndex(int64_t Index, double BaseMs) {
  switch (Index % 5) {
  case 0:
    return -1.0; // none
  case 3:
    return 180.0;
  case 4:
    return 1.0;
  default:
    return BaseMs;
  }
}

void clientMain(const GenOptions &Opt, int64_t ClientId, Tally &T) {
  std::mt19937_64 Rng(Opt.Seed * 1000003 + static_cast<uint64_t>(ClientId));
  std::uniform_real_distribution<double> Jitter(0.5, 1.5);
  LineClient Client(Opt.Socket);

  static const char *InjectCycle[] = {"crash", "hang", "oomkill", "slow"};

  //===------------------------------------------------------------------===//
  // Wire-fault salvo: a hostile/broken client must cost the server one
  // typed error per line, never a wedge. Uses its own connections.
  //===------------------------------------------------------------------===//
  if (Opt.WireFaults) {
    if (Client.connect()) {
      Client.sendLine("{this is not json");
      std::string Reply;
      (void)Client.readLine(Reply, 5.0);
      // 2 MB of 'x' — over the daemon's default 1 MB frame cap.
      std::string Huge(2u << 20, 'x');
      Client.sendLine(Huge);
      (void)Client.readLine(Reply, 10.0);
      // Mid-line disconnect: half a request, then hang up.
      Client.sendRaw("{\"type\":\"veri");
      Client.disconnect();
      std::lock_guard<std::mutex> Lock(T.Mu);
      T.WireFaultsSent += 3;
    }
  }

  if (!Client.connect()) {
    std::lock_guard<std::mutex> Lock(T.Mu);
    T.Unanswered += Opt.Requests;
    return;
  }

  for (int64_t R = 0; R < Opt.Requests; ++R) {
    const int64_t Index = ClientId * Opt.Requests + R;
    const double DeadlineMs = deadlineForIndex(Index, Opt.DeadlineMs);
    std::string Inject;
    // Inject at phase K-1, not phase 0: the deadline mix above has
    // period 5 with the no-deadline (coalesce/cache-eligible) band at
    // phase 0, so a phase-0 injection with K a multiple of 5 would
    // fault every cache-eligible request onto the supervised path and
    // --require-cache-hits could never pass alongside --inject-every.
    if (Opt.InjectEvery > 0 &&
        Index % Opt.InjectEvery == Opt.InjectEvery - 1)
      Inject = InjectCycle[(Index / Opt.InjectEvery) % 4];
    const std::string Id =
        "c" + std::to_string(ClientId) + "-" + std::to_string(R);
    const int64_t Variant = pickVariant(Opt.RepeatMix, Rng);
    const std::string Line =
        buildVerifyLine(Opt, Id, DeadlineMs, Inject, Variant);

    const double T0 = nowSeconds();
    bool Answered = false;
    std::string FinalStatus;
    JsonValue Reply;

    for (int64_t Attempt = 0; Attempt <= Opt.MaxRetries && !Answered;
         ++Attempt) {
      if (!Client.connected() && !Client.connect())
        break;
      if (!Client.sendLine(Line)) {
        Client.disconnect();
        continue;
      }
      std::string ReplyLine;
      // Generous read budget: covers queue wait + run + injected hangs
      // (bounded by the server's heartbeat kill + retry ladder).
      if (!Client.readLine(ReplyLine, 60.0)) {
        Client.disconnect();
        continue;
      }
      std::string Err;
      if (!parseJson(ReplyLine, Reply, &Err) ||
          Reply.K != JsonValue::Kind::Object)
        continue;
      const JsonValue *Status = Reply.find("status");
      const JsonValue *Type = Reply.find("type");
      if (Type && Type->stringOr("") == "error") {
        Answered = true;
        FinalStatus = "error";
        break;
      }
      FinalStatus = Status ? Status->stringOr("") : "";
      if (FinalStatus == "overloaded") {
        // Jittered exponential backoff seeded from the server's hint.
        const JsonValue *Hint = Reply.find("retry_after_ms");
        const double Base = Hint ? Hint->numberOr(100.0) : 100.0;
        const double DelayMs = std::min(
            Base * std::pow(2.0, static_cast<double>(Attempt)) * Jitter(Rng),
            3000.0);
        {
          std::lock_guard<std::mutex> Lock(T.Mu);
          ++T.Retries;
        }
        if (Attempt == Opt.MaxRetries) {
          Answered = true; // shed is an answer; record it as the outcome
          break;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(DelayMs));
        continue;
      }
      Answered = !FinalStatus.empty();
    }

    const double LatencyMs = (nowSeconds() - T0) * 1000.0;
    std::lock_guard<std::mutex> Lock(T.Mu);
    ++T.Sent;
    if (!Inject.empty())
      ++T.Injected;
    if (!Answered) {
      ++T.Unanswered;
      continue;
    }
    T.LatenciesMs.push_back(LatencyMs);
    if (FinalStatus == "ok")
      ++T.Ok;
    else if (FinalStatus == "degraded")
      ++T.Degraded;
    else if (FinalStatus == "overloaded")
      ++T.Overloaded;
    else
      ++T.Errors;
    if (FinalStatus == "ok" || FinalStatus == "degraded") {
      if (const JsonValue *Specs = Reply.find("specs")) {
        for (const JsonValue &B : Specs->Items) {
          const JsonValue *Lo = B.find("lower");
          const JsonValue *Hi = B.find("upper");
          const double L = Lo ? Lo->numberOr(0.0) : 0.0;
          const double U = Hi ? Hi->numberOr(1.0) : 1.0;
          const bool InUnit = L >= 0.0 && U <= 1.0 && L <= U;
          const bool Contains =
              !Opt.HaveExpect ||
              (L <= Opt.ExpectContain && Opt.ExpectContain <= U);
          if (!InUnit || !Contains)
            ++T.SoundnessViolations;
        }
      }
    }
  }
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  std::sort(Sorted.begin(), Sorted.end());
  const double Rank = P * static_cast<double>(Sorted.size() - 1);
  const size_t Lo = static_cast<size_t>(Rank);
  const size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  const double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

} // namespace

int main(int Argc, char **Argv) {
  GenOptions Opt;
  auto NextArg = [&](int &I) -> std::string {
    if (I + 1 >= Argc)
      usage("missing value for option");
    return Argv[++I];
  };
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    if (Arg == "--socket")
      Opt.Socket = NextArg(I);
    else if (Arg == "--net")
      Opt.Net = NextArg(I);
    else if (Arg == "--dims")
      Opt.Dims = std::stoll(NextArg(I));
    else if (Arg == "--spec")
      Opt.Specs.push_back(NextArg(I));
    else if (Arg == "--clients")
      Opt.Clients = std::stoll(NextArg(I));
    else if (Arg == "--requests")
      Opt.Requests = std::stoll(NextArg(I));
    else if (Arg == "--deadline-ms")
      Opt.DeadlineMs = std::stod(NextArg(I));
    else if (Arg == "--budget-mb")
      Opt.BudgetMb = std::stoll(NextArg(I));
    else if (Arg == "--p")
      Opt.RelaxP = std::stod(NextArg(I));
    else if (Arg == "--k")
      Opt.ClusterK = std::stod(NextArg(I));
    else if (Arg == "--inject-every")
      Opt.InjectEvery = std::stoll(NextArg(I));
    else if (Arg == "--wire-faults")
      Opt.WireFaults = true;
    else if (Arg == "--max-retries")
      Opt.MaxRetries = std::stoll(NextArg(I));
    else if (Arg == "--expect-contain") {
      Opt.HaveExpect = true;
      Opt.ExpectContain = std::stod(NextArg(I));
    } else if (Arg == "--repeat-mix")
      Opt.RepeatMix = std::stoll(NextArg(I));
    else if (Arg == "--require-cache-hits")
      Opt.RequireCacheHits = true;
    else if (Arg == "--seed")
      Opt.Seed = std::stoull(NextArg(I));
    else if (Arg == "--out")
      Opt.OutPath = NextArg(I);
    else if (Arg == "--help" || Arg == "-h")
      usage();
    else
      usage(("unknown option: " + Arg).c_str());
  }
  if (Opt.Socket.empty() || Opt.Net.empty() || Opt.Dims < 1 ||
      Opt.Specs.empty())
    usage("--socket, --net, --dims and --spec are required");

  Tally T;
  const double Start = nowSeconds();
  std::vector<std::thread> Threads;
  for (int64_t C = 0; C < Opt.Clients; ++C)
    Threads.emplace_back(clientMain, std::cref(Opt), C, std::ref(T));
  for (std::thread &Th : Threads)
    Th.join();
  const double Seconds = nowSeconds() - Start;

  // One stats probe after the fleet finishes: the daemon's cumulative
  // propagation-cache and coalescing counters land in the results file
  // next to the client-side latencies.
  int64_t CacheHits = 0, CacheMisses = 0, CoalesceBatches = 0,
          CoalesceRequests = 0;
  {
    LineClient Stats(Opt.Socket);
    std::string Reply;
    if (Stats.connect() && Stats.sendLine("{\"type\":\"stats\"}") &&
        Stats.readLine(Reply, 10.0)) {
      JsonValue V;
      std::string Err;
      if (parseJson(Reply, V, &Err) && V.K == JsonValue::Kind::Object) {
        auto Int = [&](const char *Key) {
          const JsonValue *F = V.find(Key);
          return F ? F->intOr(0) : 0;
        };
        CacheHits = Int("cache_hits");
        CacheMisses = Int("cache_misses");
        CoalesceBatches = Int("coalesce_batches");
        CoalesceRequests = Int("coalesce_requests");
      }
    }
  }

  const double P50 = percentile(T.LatenciesMs, 0.50);
  const double P90 = percentile(T.LatenciesMs, 0.90);
  const double P99 = percentile(T.LatenciesMs, 0.99);

  JsonWriter W;
  W.beginObject();
  W.key("bench").value("genprove_serve");
  W.key("clients").value(Opt.Clients);
  W.key("requests_per_client").value(Opt.Requests);
  W.key("seconds").value(Seconds);
  W.key("sent").value(T.Sent);
  W.key("ok").value(T.Ok);
  W.key("degraded").value(T.Degraded);
  W.key("overloaded").value(T.Overloaded);
  W.key("errors").value(T.Errors);
  W.key("unanswered").value(T.Unanswered);
  W.key("overload_retries").value(T.Retries);
  W.key("injected_faults").value(T.Injected);
  W.key("wire_faults_sent").value(T.WireFaultsSent);
  W.key("soundness_violations").value(T.SoundnessViolations);
  W.key("repeat_mix").value(Opt.RepeatMix);
  W.key("cache_hits").value(CacheHits);
  W.key("cache_misses").value(CacheMisses);
  W.key("coalesce_batches").value(CoalesceBatches);
  W.key("coalesce_requests").value(CoalesceRequests);
  W.key("latency_ms").beginObject();
  W.key("p50").value(P50);
  W.key("p90").value(P90);
  W.key("p99").value(P99);
  W.endObject();
  W.endObject();
  const std::string Json = W.str();
  if (FILE *Out = std::fopen(Opt.OutPath.c_str(), "w")) {
    std::fprintf(Out, "%s\n", Json.c_str());
    std::fclose(Out);
  }
  std::printf("%s\n", Json.c_str());

  // The serving contract: every request answered, every bound sound.
  if (T.Unanswered > 0 || T.SoundnessViolations > 0) {
    std::fprintf(stderr,
                 "genprove_loadgen: CONTRACT VIOLATION — %lld unanswered, "
                 "%lld unsound bounds\n",
                 static_cast<long long>(T.Unanswered),
                 static_cast<long long>(T.SoundnessViolations));
    return 1;
  }
  // The amortization contract (CI smoke): repeated-segment traffic must
  // actually hit the daemon's propagation cache.
  if (Opt.RequireCacheHits && CacheHits <= 0) {
    std::fprintf(stderr,
                 "genprove_loadgen: CONTRACT VIOLATION — --require-cache-"
                 "hits but the daemon reported %lld cache hits "
                 "(%lld misses)\n",
                 static_cast<long long>(CacheHits),
                 static_cast<long long>(CacheMisses));
    return 1;
  }
  return 0;
}
