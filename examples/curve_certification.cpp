//===- examples/curve_certification.cpp - GenProveCurve demo ----*- C++ -*-===//
//
// Exact certification of a *quadratic* latent curve (Section 4.2): the
// curve passes through a face encoding, a moustache-perturbed midpoint,
// and the flipped face encoding. GenProveCurve propagates the quadratic
// exactly (splitting at ReLU boundaries by solving per-dimension
// quadratics), so every bound it reports has zero width.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/core/model_zoo.h"
#include "src/data/attribute_vector.h"
#include "src/data/synth_faces.h"
#include "src/sampling/sampler.h"
#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  ZooConfig ZC;
  ZC.Verbose = true;
  ModelZoo Zoo(ZC);
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.smallDecoderVae(); // DecoderSmall, as in the paper
  Sequential &Detector = Zoo.facesDetector("ConvSmall");

  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const Shape LatentShape({1, Model.latentDim()});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());

  const Tensor Moustache = attributeVector(Model, Set, FaceMoustache);
  const int64_t Image = 2;
  const Tensor E0 = Model.encode(Set.image(Image));
  const Tensor E2 = Model.encode(Set.flippedImage(Image));
  Tensor E1({1, Model.latentDim()});
  for (int64_t J = 0; J < E1.numel(); ++J)
    E1[J] = 0.5 * (E0[J] + E2[J]) + 4.0 * Moustache[J];

  // Quadratic through e0 (t=0), e1 (t=0.5), e2 (t=1) — Section 5.3.
  Tensor A0 = E0.clone();
  Tensor A1({1, E0.numel()});
  Tensor A2({1, E0.numel()});
  for (int64_t J = 0; J < E0.numel(); ++J) {
    A1[J] = 4.0 * E1[J] - E2[J] - 3.0 * E0[J];
    A2[J] = 2.0 * (E2[J] + E0[J] - 2.0 * E1[J]);
  }

  std::printf("Certifying a quadratic latent curve with GenProveCurve\n\n");

  GenProveConfig Config; // exact
  Config.MemoryBudgetBytes = 240ull << 20;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateQuadratic(Pipeline, LatentShape, A0, A1, A2);
  if (State.OutOfMemory) {
    std::printf("analysis ran out of simulated device memory\n");
    return 1;
  }

  Rng R(11);
  TablePrinter Table(
      {"Attribute", "exact Pr[consistent]", "sampled estimate"});
  for (int64_t J = 0; J < NumAttrs; ++J) {
    const OutputSpec Spec = OutputSpec::attributeSign(
        J, Set.Attributes.at(Image, J) > 0.5, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    const SamplingResult Sampled = sampleQuadraticBounds(
        Pipeline, LatentShape, A0, A1, A2, Spec, ParamDistribution::Uniform,
        500, 0.05, R);
    char Est[32];
    std::snprintf(Est, sizeof(Est), "%.3f",
                  static_cast<double>(Sampled.Satisfied) /
                      static_cast<double>(Sampled.NumSamples));
    Table.addRow({Set.AttributeNames[static_cast<size_t>(J)],
                  formatBound(Bounds.Lower), Est});
  }
  Table.print();
  std::printf("\nThe exact column has zero bound width; the sampled column "
              "is a Monte-Carlo check of the same probability.\n");
  return 0;
}
