//===- examples/quickstart.cpp - GenProve in five minutes -------*- C++ -*-===//
//
// The smallest end-to-end use of the public API:
//   1. build a tiny network,
//   2. pick a latent line segment,
//   3. verify a probabilistic specification with GenProve,
//   4. compare exact, relaxed, and deterministic answers.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/nn/activations.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"

#include <cstdio>

using namespace genprove;

int main() {
  // 1. A small ReLU classifier: 4 inputs -> 16 hidden -> 3 classes.
  Rng R(2021);
  Sequential Net;
  Net.add(std::make_unique<Linear>(4, 16));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Linear>(16, 16));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Linear>(16, 3));
  kaimingInit(Net, R);

  // 2. A line segment between two points in input space. In the paper,
  //    these are encodings produced by a generative model's encoder.
  const Tensor E1 = Tensor::randn({1, 4}, R);
  const Tensor E2 = Tensor::randn({1, 4}, R);

  // 3. The specification: "the class predicted at e1 keeps winning the
  //    argmax along the whole segment".
  const Tensor LogitsAtE1 = Net.forward(E1);
  int64_t Target = 0;
  for (int64_t J = 1; J < 3; ++J)
    if (LogitsAtE1[J] > LogitsAtE1[Target])
      Target = J;
  const OutputSpec Spec = OutputSpec::argmaxWins(Target, 3);
  std::printf("specification: class %lld keeps winning along e1 -> e2\n\n",
              static_cast<long long>(Target));

  // 4a. Exact probabilistic verification (GenProve^0): the bounds have
  //     zero width because segment propagation is exact.
  GenProveConfig Exact;
  Exact.RelaxPercent = 0.0;
  const AnalysisResult ExactResult = GenProve(Exact).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);
  std::printf("exact:        Pr[spec holds] in [%.6f, %.6f]  (%lld "
              "regions tracked)\n",
              ExactResult.Bounds.Lower, ExactResult.Bounds.Upper,
              static_cast<long long>(ExactResult.MaxRegions));

  // 4b. Relaxed verification (GenProve^p_k): sound but faster/leaner.
  GenProveConfig Relaxed;
  Relaxed.RelaxPercent = 0.5;
  Relaxed.ClusterK = 10.0;
  Relaxed.NodeThreshold = 4;
  const AnalysisResult RelaxedResult = GenProve(Relaxed).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);
  std::printf("relaxed:      Pr[spec holds] in [%.6f, %.6f]\n",
              RelaxedResult.Bounds.Lower, RelaxedResult.Bounds.Upper);

  // 4c. Deterministic verification collapses to holds / fails / unknown.
  GenProveConfig Det;
  Det.Mode = AnalysisMode::Deterministic;
  const AnalysisResult DetResult = GenProve(Det).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);
  const char *Verdict = DetResult.Bounds.Lower >= 1.0   ? "HOLDS"
                        : DetResult.Bounds.Upper <= 0.0 ? "NEVER HOLDS"
                                                        : "UNKNOWN";
  std::printf("deterministic: %s\n", Verdict);

  std::printf("\nSoundness invariant: relaxed bounds contain the exact "
              "probability (%.6f <= %.6f <= %.6f).\n",
              RelaxedResult.Bounds.Lower, ExactResult.Bounds.Lower,
              RelaxedResult.Bounds.Upper);
  return 0;
}
