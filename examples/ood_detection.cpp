//===- examples/ood_detection.cpp - Table 7 as an example -------*- C++ -*-===//
//
// Non-uniform specifications: how often does a GAN discriminator flag a
// generated interpolation as fake, when the interpolation parameter is
// arcsine-distributed (mass concentrated near the endpoints)? GenProve
// bounds the probability exactly through the decoder + discriminator.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/core/model_zoo.h"
#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  ZooConfig ZC;
  ZC.Verbose = true;
  ModelZoo Zoo(ZC);
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Discriminator = Zoo.ganDiscriminator();

  const Shape LatentShape({1, Model.latentDim()});
  const auto Pipeline =
      concatViews(Model.decoder().view(), Discriminator.view());

  // Two unrelated images.
  const Tensor E1 = Model.encode(Set.image(0));
  const Tensor E2 = Model.encode(Set.image(1));

  // D = "discriminator says fake" = score < 0.5 (LSGAN: real -> 1).
  Tensor Normal({1, 1}, {-1.0});
  const OutputSpec FakeSpec = OutputSpec::halfspace(Normal, 0.5);

  std::printf("Bounding Pr[discriminator flags the interpolation as fake]\n"
              "under uniform vs arcsine parameter distributions\n\n");

  TablePrinter Table({"distribution", "l", "u"});
  for (ParamDistribution Dist :
       {ParamDistribution::Uniform, ParamDistribution::Arcsine}) {
    GenProveConfig Config;
    Config.RelaxPercent = 0.02;
    Config.ClusterK = 100.0;
    Config.NodeThreshold = 250;
    Config.MemoryBudgetBytes = 240ull << 20;
    Config.Schedule = RefinementSchedule::A;
    Config.Distribution = Dist;
    const GenProve Analyzer(Config);
    const PropagatedState State =
        Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);
    const ProbBounds Bounds = Analyzer.boundsFor(State, FakeSpec);
    Table.addRow({paramDistributionName(Dist), formatBound(Bounds.Lower),
                  formatBound(Bounds.Upper)});
  }
  Table.print();
  std::printf("\nThe arcsine distribution concentrates mass near the real "
              "endpoints, so its fake-probability is typically lower.\n");
  return 0;
}
