//===- examples/head_orientation.cpp - Table 5a as an example ---*- C++ -*-===//
//
// The paper's flagship specification: certify that an attribute detector
// is robust across *all* head orientations produced by interpolating the
// encodings of a face and its horizontal flip. Uses the shared model zoo
// (trains once, caches under models/).
//
//===----------------------------------------------------------------------===//

#include "src/core/consistency.h"
#include "src/core/model_zoo.h"
#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  ZooConfig ZC;
  ZC.Verbose = true;
  ModelZoo Zoo(ZC);
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Detector = Zoo.facesDetector("ConvSmall");

  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const Shape LatentShape({1, Model.latentDim()});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());

  std::printf("Certifying attribute robustness to head orientation\n\n");

  GenProveConfig Config;
  Config.RelaxPercent = 0.02;
  Config.ClusterK = 100.0;
  Config.NodeThreshold = 250;
  Config.MemoryBudgetBytes = 240ull << 20;
  Config.Schedule = RefinementSchedule::A;
  const GenProve Analyzer(Config);

  const int64_t Image = 5;
  const Tensor E1 = Model.encode(Set.image(Image));
  const Tensor E2 = Model.encode(Set.flippedImage(Image));
  const PropagatedState State =
      Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);
  if (State.OutOfMemory) {
    std::printf("analysis ran out of simulated device memory\n");
    return 1;
  }

  TablePrinter Table({"Attribute", "ground truth", "l", "u", "certified?"});
  for (int64_t J = 0; J < NumAttrs; ++J) {
    const bool Truth = Set.Attributes.at(Image, J) > 0.5;
    const OutputSpec Spec = OutputSpec::attributeSign(J, Truth, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    Table.addRow({Set.AttributeNames[static_cast<size_t>(J)],
                  Truth ? "present" : "absent", formatBound(Bounds.Lower),
                  formatBound(Bounds.Upper),
                  Bounds.Lower >= 1.0 - 1e-9 ? "all orientations" : "-"});
  }
  Table.print();
  std::printf("\nEach row bounds the probability (over a uniformly chosen "
              "orientation) that the detector keeps the ground-truth "
              "verdict.\n");
  return 0;
}
