//===- examples/attribute_editing.cpp - Table 5b as an example --*- C++ -*-===//
//
// Attribute independence: add a multiple of the learned "WearingHat"
// latent direction to an image's encoding and certify which *other*
// attribute verdicts survive the whole edit path.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/core/model_zoo.h"
#include "src/data/attribute_vector.h"
#include "src/data/synth_faces.h"
#include "src/util/table.h"

#include <cstdio>

using namespace genprove;

int main() {
  ZooConfig ZC;
  ZC.Verbose = true;
  ModelZoo Zoo(ZC);
  const Dataset &Set = Zoo.train(DatasetId::Faces);
  Vae &Model = Zoo.vae(DatasetId::Faces);
  Sequential &Detector = Zoo.facesDetector("ConvMed");

  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const Shape LatentShape({1, Model.latentDim()});
  const int64_t NumAttrs = Detector.outputShape(ImgShape).dim(1);
  const auto Pipeline = concatViews(Model.decoder().view(), Detector.view());

  // Larsen-style attribute direction for "WearingHat".
  const Tensor Direction = attributeVector(Model, Set, FaceWearingHat);

  // Pick a hat-less image and edit toward "with hat".
  int64_t Image = 0;
  for (int64_t I = 0; I < Set.numImages(); ++I)
    if (Set.Attributes.at(I, FaceWearingHat) < 0.5) {
      Image = I;
      break;
    }
  const Tensor E1 = Model.encode(Set.image(Image));
  Tensor E2 = E1.clone();
  for (int64_t J = 0; J < E2.numel(); ++J)
    E2[J] += 3.0 * Direction[J];

  std::printf("Certifying attribute independence under a 'WearingHat' "
              "edit\n\n");

  GenProveConfig Config;
  Config.RelaxPercent = 0.02;
  Config.ClusterK = 100.0;
  Config.NodeThreshold = 250;
  Config.MemoryBudgetBytes = 240ull << 20;
  Config.Schedule = RefinementSchedule::A;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);
  if (State.OutOfMemory) {
    std::printf("analysis ran out of simulated device memory\n");
    return 1;
  }

  TablePrinter Table({"Attribute", "l", "u", "independent of the edit?"});
  for (int64_t J = 0; J < NumAttrs; ++J) {
    if (J == FaceWearingHat)
      continue;
    const OutputSpec Spec = OutputSpec::attributeSign(
        J, Set.Attributes.at(Image, J) > 0.5, NumAttrs);
    const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
    Table.addRow({Set.AttributeNames[static_cast<size_t>(J)],
                  formatBound(Bounds.Lower), formatBound(Bounds.Upper),
                  Bounds.Lower >= 1.0 - 1e-9 ? "yes (certified)" : "no"});
  }
  Table.print();
  return 0;
}
