//===- tests/fused_screen_test.cpp - fusion + two-tier screen ---*- C++ -*-===//
///
/// \file
/// The fused-kernel and two-tier-screen contracts (docs/PERFORMANCE.md):
///
///  * --fuse: every analysis path (engine, box, zonotope, deepzono,
///    hybrid) must return bounds bit-identical to the unfused path — at
///    any thread count, in both rounding modes. EXPECT_EQ on doubles, not
///    a tolerance: the fused kernels keep the exact per-element
///    ascending-k accumulation order of the unfused pair.
///
///  * --fast-screen: the float32 screen only *classifies* pieces; every
///    reported bound comes from sound arithmetic (CDF masses for proven
///    pieces, the sound double tier for borderline ones). The screened
///    interval must therefore always be consistent with the full sound
///    analysis, and a pipeline the screen cannot compile must collapse to
///    all-borderline, never to a wrong certificate.
///
/// Plus regression pins for the satellite fixes riding along: the
/// PropagationCache overwrite accounting, the quantileFromBuckets edge
/// cases, and the serve coalescing compatibility key.
///
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/box_domain.h"
#include "src/domains/hybrid_zonotope.h"
#include "src/domains/prop_cache.h"
#include "src/domains/screen.h"
#include "src/domains/zonotope.h"
#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"
#include "src/obs/metrics.h"
#include "src/parallel/thread_pool.h"
#include "src/serve/server.h"
#include "src/util/fp.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims,
                         double Scale = 0.8) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, Scale);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.4);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// Pin the global pool for the test body, restore on scope exit.
struct PoolScope {
  explicit PoolScope(int64_t Threads) {
    ThreadPool::global().setThreads(Threads);
  }
  ~PoolScope() { ThreadPool::global().setThreads(ThreadPool::envThreads()); }
};

// ---------------------------------------------------------------------------
// Fused == unfused, bit for bit.
// ---------------------------------------------------------------------------

/// (threads, sound rounding) grid shared by the bit-identity tests.
class FusedBitIdentity
    : public ::testing::TestWithParam<std::tuple<int64_t, bool>> {};

TEST_P(FusedBitIdentity, EngineBoundsMatchUnfused) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(61);
  Sequential Net = makeRandomMlp(R, {4, 14, 10, 3});
  const Tensor Start = Tensor::randn({1, 4}, R);
  const Tensor End = Tensor::randn({1, 4}, R);
  const std::vector<OutputSpec> Specs = {OutputSpec::argmaxWins(0, 3),
                                         OutputSpec::argmaxWins(2, 3)};

  GenProveConfig Plain;
  GenProveConfig Fused;
  Fused.FuseRelu = true;
  const GenProve A(Plain), B(Fused);
  const PropagatedState SA =
      A.propagateSegment(Net.view(), Shape({1, 4}), Start, End);
  const PropagatedState SB =
      B.propagateSegment(Net.view(), Shape({1, 4}), Start, End);
  ASSERT_FALSE(SA.OutOfMemory);
  ASSERT_FALSE(SB.OutOfMemory);
  for (const OutputSpec &Spec : Specs) {
    const ProbBounds PA = A.boundsFor(SA, Spec);
    const ProbBounds PB = B.boundsFor(SB, Spec);
    EXPECT_EQ(PA.Lower, PB.Lower);
    EXPECT_EQ(PA.Upper, PB.Upper);
  }
}

TEST_P(FusedBitIdentity, BatchedEngineMatchesUnfused) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(67);
  Sequential Net = makeRandomMlp(R, {3, 12, 8, 2});
  std::vector<std::pair<Tensor, Tensor>> Segments;
  for (int I = 0; I < 4; ++I)
    Segments.emplace_back(Tensor::randn({1, 3}, R), Tensor::randn({1, 3}, R));
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Plain;
  GenProveConfig Fused;
  Fused.FuseRelu = true;
  const GenProve A(Plain), B(Fused);
  const auto SA = A.propagateSegmentsBatch(Net.view(), Shape({1, 3}), Segments);
  const auto SB = B.propagateSegmentsBatch(Net.view(), Shape({1, 3}), Segments);
  ASSERT_EQ(SA.size(), SB.size());
  for (size_t I = 0; I < SA.size(); ++I) {
    EXPECT_EQ(A.boundsFor(SA[I], Spec).Lower, B.boundsFor(SB[I], Spec).Lower)
        << "segment " << I;
    EXPECT_EQ(A.boundsFor(SA[I], Spec).Upper, B.boundsFor(SB[I], Spec).Upper)
        << "segment " << I;
  }
}

TEST_P(FusedBitIdentity, ConvexDomainsMatchUnfused) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(71);
  Sequential Net = makeRandomMlp(R, {3, 12, 8, 2});
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const std::vector<OutputSpec> Specs = {OutputSpec::argmaxWins(0, 2),
                                         OutputSpec::argmaxWins(1, 2)};
  const Shape In({1, 3});
  DeviceMemoryModel Unlimited(0);

  struct Domain {
    const char *Name;
    std::function<std::vector<ConvexResult>(bool)> Run;
  };
  const std::vector<Domain> Domains = {
      {"box",
       [&](bool Fuse) {
         return analyzeBoxMulti(Net.view(), In, Start, End, Specs, Unlimited,
                                Fuse);
       }},
      {"zonotope",
       [&](bool Fuse) {
         return analyzeZonotopeMulti(Net.view(), In, Start, End, Specs,
                                     ZonotopeKind::Zonotope, Unlimited, Fuse);
       }},
      {"deepzono",
       [&](bool Fuse) {
         return analyzeZonotopeMulti(Net.view(), In, Start, End, Specs,
                                     ZonotopeKind::DeepZono, Unlimited, Fuse);
       }},
      {"hybrid",
       [&](bool Fuse) {
         return analyzeHybridZonotopeMulti(Net.view(), In, Start, End, Specs,
                                           Unlimited, Fuse);
       }},
  };

  for (const Domain &D : Domains) {
    const auto Plain = D.Run(false);
    const auto Fused = D.Run(true);
    ASSERT_EQ(Plain.size(), Fused.size()) << D.Name;
    for (size_t J = 0; J < Plain.size(); ++J) {
      EXPECT_EQ(Plain[J].Bounds.Lower, Fused[J].Bounds.Lower)
          << D.Name << " spec " << J;
      EXPECT_EQ(Plain[J].Bounds.Upper, Fused[J].Bounds.Upper)
          << D.Name << " spec " << J;
      EXPECT_EQ(Plain[J].Bounds.OutOfMemory, Fused[J].Bounds.OutOfMemory)
          << D.Name;
    }
  }
}

/// Fused telemetry identity under a binding budget: the fused pair replays
/// both layer boundaries' charges, so the OOM point (and the reported
/// peak) cannot move across the flag.
TEST_P(FusedBitIdentity, ZonotopeOomPointMatchesUnfused) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(73);
  Sequential Net = makeRandomMlp(R, {3, 24, 24, 2});
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  const Shape In({1, 3});

  // Probe the unlimited peak, then pin the budget just under it so the
  // propagation fails partway through the pair chain.
  DeviceMemoryModel Probe(0);
  const ConvexResult Full = analyzeZonotope(Net.view(), In, Start, End, Spec,
                                            ZonotopeKind::Zonotope, Probe);
  ASSERT_FALSE(Full.Bounds.OutOfMemory);
  ASSERT_GT(Full.PeakBytes, 0u);

  DeviceMemoryModel TightA(Full.PeakBytes - 1);
  DeviceMemoryModel TightB(Full.PeakBytes - 1);
  const ConvexResult Plain = analyzeZonotope(
      Net.view(), In, Start, End, Spec, ZonotopeKind::Zonotope, TightA, false);
  const ConvexResult Fused = analyzeZonotope(
      Net.view(), In, Start, End, Spec, ZonotopeKind::Zonotope, TightB, true);
  EXPECT_EQ(Plain.Bounds.OutOfMemory, Fused.Bounds.OutOfMemory);
  EXPECT_EQ(Plain.PeakBytes, Fused.PeakBytes);
  EXPECT_EQ(Plain.Bounds.Lower, Fused.Bounds.Lower);
  EXPECT_EQ(Plain.Bounds.Upper, Fused.Bounds.Upper);
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndRounding, FusedBitIdentity,
                         ::testing::Combine(::testing::Values<int64_t>(1, 4),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// The float32 screen: classification unit tests.
// ---------------------------------------------------------------------------

/// 1 -> 1 identity pipeline: the screen box is the (padded) segment hull,
/// so the halfspace y > 0 classifies exactly as the sign of the segment.
TEST(ScreenClassifyTest, InsideOutsideBorderlineOnIdentity) {
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight()[0] = 1.0;
  L->bias()[0] = 0.0;
  Net.add(std::move(L));
  const ScreenPlan Plan = buildScreenPlan(Net.view());
  ASSERT_TRUE(Plan.Supported);

  Tensor Normal({1, 1});
  Normal[0] = 1.0;
  const OutputSpec Spec = OutputSpec::halfspace(Normal, 0.0);

  Tensor A({1, 1}), B({1, 1});
  A[0] = 1.0;
  B[0] = 2.0;
  EXPECT_EQ(screenClassify(Plan, A, B, Spec), ScreenVerdict::Inside);
  A[0] = -2.0;
  B[0] = -1.0;
  EXPECT_EQ(screenClassify(Plan, A, B, Spec), ScreenVerdict::Outside);
  A[0] = -1.0;
  B[0] = 1.0;
  EXPECT_EQ(screenClassify(Plan, A, B, Spec), ScreenVerdict::Borderline);
}

TEST(ScreenClassifyTest, ConvPipelineIsUnsupported) {
  Sequential Net;
  Net.add(std::make_unique<Conv2d>(1, 1, 3, 1, 1));
  const ScreenPlan Plan = buildScreenPlan(Net.view());
  EXPECT_FALSE(Plan.Supported);

  Tensor Normal({1, 1});
  Normal[0] = 1.0;
  Tensor A({1, 1}), B({1, 1});
  A[0] = 5.0;
  B[0] = 6.0;
  // Unsupported plans never certify anything.
  EXPECT_EQ(screenClassify(Plan, A, B, OutputSpec::halfspace(Normal, 0.0)),
            ScreenVerdict::Borderline);
}

/// The cushion is an over-approximation: a margin of the same order as
/// float epsilon times the activation magnitude must NOT be certified
/// (the screen can only claim what survives the cushion widening).
TEST(ScreenClassifyTest, TinyMarginStaysBorderline) {
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight()[0] = 1.0;
  L->bias()[0] = 0.0;
  Net.add(std::move(L));
  const ScreenPlan Plan = buildScreenPlan(Net.view());
  ASSERT_TRUE(Plan.Supported);

  Tensor Normal({1, 1});
  Normal[0] = 1.0;
  // y > 1e6 - eps-ish margin around activations of magnitude 1e6.
  const OutputSpec Spec = OutputSpec::halfspace(Normal, -1e6 + 0.01);
  Tensor A({1, 1}), B({1, 1});
  A[0] = 1e6;
  B[0] = 1e6 + 0.005;
  EXPECT_EQ(screenClassify(Plan, A, B, Spec), ScreenVerdict::Borderline);
}

// ---------------------------------------------------------------------------
// The two-tier screened analysis.
// ---------------------------------------------------------------------------

TEST(ScreenedAnalysisTest, BoundsConsistentWithFullSoundTier) {
  SoundRoundingScope Sound(true);
  Rng R(79);
  Sequential Net = makeRandomMlp(R, {3, 12, 8, 2});
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Full;
  GenProveConfig Screen;
  Screen.FastScreen = true;
  const AnalysisResult F =
      GenProve(Full).analyzeSegment(Net.view(), Shape({1, 3}), Start, End,
                                    Spec);
  const AnalysisResult S =
      GenProve(Screen).analyzeSegment(Net.view(), Shape({1, 3}), Start, End,
                                      Spec);

  EXPECT_FALSE(F.Screened);
  EXPECT_TRUE(S.Screened);
  EXPECT_EQ(S.ScreenedInside + S.ScreenedOutside + S.ScreenedBorderline,
            Screen.ScreenSplits);

  // Both intervals are sound, so both contain the true probability: they
  // must intersect, and each must be a valid sub-interval of [0, 1].
  EXPECT_GE(S.Bounds.Lower, 0.0);
  EXPECT_LE(S.Bounds.Upper, 1.0);
  EXPECT_LE(S.Bounds.Lower, S.Bounds.Upper);
  EXPECT_LE(S.Bounds.Lower, F.Bounds.Upper);
  EXPECT_LE(F.Bounds.Lower, S.Bounds.Upper);
}

/// A spec the whole segment trivially satisfies: the screen proves every
/// piece inside, the sound tier never runs, and the lower bound is the
/// (directed) total CDF mass — essentially 1.
TEST(ScreenedAnalysisTest, AllInsideSkipsSoundTier) {
  Rng R(83);
  Sequential Net;
  auto L = std::make_unique<Linear>(2, 2);
  L->weight() = Tensor({2, 2});
  L->weight()[0] = 1.0;
  L->weight()[1] = 0.0;
  L->weight()[2] = 0.0;
  L->weight()[3] = 1.0;
  L->bias() = Tensor({2});
  L->bias()[0] = 10.0;
  L->bias()[1] = 0.0;
  Net.add(std::move(L));

  const Tensor Start = Tensor::randn({1, 2}, R, 0.5);
  const Tensor End = Tensor::randn({1, 2}, R, 0.5);
  GenProveConfig Config;
  Config.FastScreen = true;
  const AnalysisResult S = GenProve(Config).analyzeSegment(
      Net.view(), Shape({1, 2}), Start, End, OutputSpec::argmaxWins(0, 2));
  EXPECT_TRUE(S.Screened);
  EXPECT_EQ(S.ScreenedInside, Config.ScreenSplits);
  EXPECT_EQ(S.ScreenedBorderline, 0);
  EXPECT_GE(S.Bounds.Lower, 0.999);
  EXPECT_EQ(S.Bounds.Upper, 1.0);
  EXPECT_FALSE(S.Degraded);
}

TEST(ScreenedAnalysisTest, AllOutsideGivesNearZeroUpper) {
  Rng R(89);
  Sequential Net;
  auto L = std::make_unique<Linear>(2, 2);
  L->weight() = Tensor({2, 2});
  L->weight()[0] = 1.0;
  L->weight()[1] = 0.0;
  L->weight()[2] = 0.0;
  L->weight()[3] = 1.0;
  L->bias() = Tensor({2});
  L->bias()[0] = -10.0;
  L->bias()[1] = 0.0;
  Net.add(std::move(L));

  const Tensor Start = Tensor::randn({1, 2}, R, 0.5);
  const Tensor End = Tensor::randn({1, 2}, R, 0.5);
  GenProveConfig Config;
  Config.FastScreen = true;
  const AnalysisResult S = GenProve(Config).analyzeSegment(
      Net.view(), Shape({1, 2}), Start, End, OutputSpec::argmaxWins(0, 2));
  EXPECT_TRUE(S.Screened);
  EXPECT_EQ(S.ScreenedOutside, Config.ScreenSplits);
  EXPECT_EQ(S.ScreenedBorderline, 0);
  EXPECT_EQ(S.Bounds.Lower, 0.0);
  EXPECT_LE(S.Bounds.Upper, 1e-3);
}

/// Unsupported pipeline (conv): every piece is borderline and the result
/// still agrees with the full sound analysis.
TEST(ScreenedAnalysisTest, UnsupportedPipelineCollapsesToBorderline) {
  Rng R(97);
  Sequential Net;
  auto C = std::make_unique<Conv2d>(1, 2, 3, 1, 1);
  C->weight() = Tensor::randn(C->weight().shape(), R, 0.4);
  C->bias() = Tensor::randn(C->bias().shape(), R, 0.2);
  Net.add(std::move(C));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Flatten>());
  auto L = std::make_unique<Linear>(2 * 4 * 4, 2);
  L->weight() = Tensor::randn({2, 2 * 4 * 4}, R, 0.4);
  L->bias() = Tensor::randn({2}, R, 0.2);
  Net.add(std::move(L));

  const Tensor Start = Tensor::randn({1, 16}, R, 0.5);
  const Tensor End = Tensor::randn({1, 16}, R, 0.5);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  const Shape In({1, 1, 4, 4});

  GenProveConfig Config;
  Config.FastScreen = true;
  Config.ScreenSplits = 8;
  const AnalysisResult S =
      GenProve(Config).analyzeSegment(Net.view(), In, Start, End, Spec);
  EXPECT_TRUE(S.Screened);
  EXPECT_EQ(S.ScreenedInside, 0);
  EXPECT_EQ(S.ScreenedOutside, 0);
  EXPECT_EQ(S.ScreenedBorderline, Config.ScreenSplits);

  GenProveConfig Full;
  const AnalysisResult F =
      GenProve(Full).analyzeSegment(Net.view(), In, Start, End, Spec);
  EXPECT_LE(S.Bounds.Lower, F.Bounds.Upper);
  EXPECT_LE(F.Bounds.Lower, S.Bounds.Upper);
  EXPECT_GE(S.Bounds.Lower, 0.0);
  EXPECT_LE(S.Bounds.Upper, 1.0);
}

/// Monte-Carlo containment: the screened bounds must cover the empirical
/// satisfaction fraction of dense concrete samples along the segment.
TEST(ScreenedAnalysisTest, EmpiricalFractionWithinScreenedBounds) {
  Rng R(101);
  Sequential Net = makeRandomMlp(R, {3, 10, 8, 2});
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Config;
  Config.FastScreen = true;
  const AnalysisResult S = GenProve(Config).analyzeSegment(
      Net.view(), Shape({1, 3}), Start, End, Spec);

  const int64_t N = 2000;
  Tensor Points({N, 3});
  for (int64_t I = 0; I < N; ++I) {
    const double T = double(I) / double(N - 1);
    for (int64_t J = 0; J < 3; ++J)
      Points.at(I, J) = Start[J] + T * (End[J] - Start[J]);
  }
  const Tensor Out = forwardConcretePoints(Net.view(), Shape({1, 3}), Points);
  int64_t Sat = 0;
  for (int64_t I = 0; I < N; ++I) {
    bool Ok = true;
    for (const auto &H : Spec.halfspaces()) {
      double F = H.Offset;
      for (int64_t J = 0; J < Out.dim(1); ++J)
        F += H.Normal[J] * Out.at(I, J);
      Ok = Ok && F > 0.0;
    }
    Sat += Ok ? 1 : 0;
  }
  const double Frac = double(Sat) / double(N);
  // The sample is an estimate, so allow sampling slack at the edges.
  EXPECT_GE(Frac, S.Bounds.Lower - 0.02);
  EXPECT_LE(Frac, S.Bounds.Upper + 0.02);
}

// ---------------------------------------------------------------------------
// Satellite regression pins.
// ---------------------------------------------------------------------------

/// Overwriting a resident cache key must release the old entry's bytes
/// (and LRU node) before charging the replacement: repeated stores of one
/// key cannot drift CurBytes past the budget or strand stale accounting.
TEST(PropCacheOverwriteTest, RepeatedStoreOfSameKeyKeepsBytesFlat) {
  PropagationCache &C = PropagationCache::global();
  C.configure(1u << 20);
  Rng R(103);

  std::vector<Region> Small;
  Small.push_back(makeSegmentRegion(Tensor::randn({1, 4}, R),
                                    Tensor::randn({1, 4}, R)));
  std::vector<Region> Big;
  Big.push_back(makeSegmentRegion(Tensor::randn({1, 64}, R),
                                  Tensor::randn({1, 64}, R)));

  C.store(0xfeedu, Small, Shape({1, 4}), 0);
  const size_t AfterSmall = C.bytes();
  ASSERT_GT(AfterSmall, 0u);
  for (int I = 0; I < 10; ++I)
    C.store(0xfeedu, Small, Shape({1, 4}), 0);
  EXPECT_EQ(C.bytes(), AfterSmall) << "overwrite leaked accounting";

  // Grow then shrink the same key: bytes must track the resident entry.
  C.store(0xfeedu, Big, Shape({1, 64}), 0);
  const size_t AfterBig = C.bytes();
  EXPECT_GT(AfterBig, AfterSmall);
  C.store(0xfeedu, Small, Shape({1, 4}), 0);
  EXPECT_EQ(C.bytes(), AfterSmall);

  EXPECT_LE(C.bytes(), C.budgetBytes());
  C.configure(0);
}

TEST(QuantileFromBucketsTest, EdgeCases) {
  const int NB = Histogram::NumBuckets;
  std::vector<int64_t> Buckets(static_cast<size_t>(NB), 0);

  // Empty histogram: no answer to give.
  EXPECT_TRUE(std::isnan(
      quantileFromBuckets(Buckets.data(), NB, 0, 1.0, 2.0, 0.5)));

  // Torn concurrent snapshot (bucket totals short of Count): the largest
  // observed sample, not a crash or a fabricated bucket edge.
  EXPECT_EQ(quantileFromBuckets(Buckets.data(), NB, 10, 1.0, 7.0, 0.5), 7.0);
  EXPECT_TRUE(std::isnan(quantileFromBuckets(
      Buckets.data(), NB, 10, std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(), 0.5)));

  // All mass in the +inf overflow bucket with genuinely infinite samples:
  // the honest quantile is the infinity itself.
  Buckets.assign(static_cast<size_t>(NB), 0);
  Buckets[static_cast<size_t>(NB - 1)] = 5;
  EXPECT_TRUE(std::isinf(quantileFromBuckets(
      Buckets.data(), NB, 5, std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity(), 0.5)));

  // Finite samples whose mass sits in the underflow bucket (-inf, 0]:
  // the sample-range clamp keeps the estimate finite and in-range.
  Buckets.assign(static_cast<size_t>(NB), 0);
  Buckets[0] = 4;
  const double Q0 = quantileFromBuckets(Buckets.data(), NB, 4, -3.0, 0.0, 0.5);
  EXPECT_TRUE(std::isfinite(Q0));
  EXPECT_GE(Q0, -3.0);
  EXPECT_LE(Q0, 0.0);

  // Out-of-range Q clamps instead of indexing past the data, and the
  // in-range answer stays within the observed sample range.
  Buckets.assign(static_cast<size_t>(NB), 0);
  Buckets[static_cast<size_t>(Histogram::bucketIndex(1.0))] += 1;
  Buckets[static_cast<size_t>(Histogram::bucketIndex(2.0))] += 1;
  Buckets[static_cast<size_t>(Histogram::bucketIndex(4.0))] += 1;
  EXPECT_EQ(quantileFromBuckets(Buckets.data(), NB, 3, 1.0, 4.0, 2.0),
            quantileFromBuckets(Buckets.data(), NB, 3, 1.0, 4.0, 1.0));
  EXPECT_EQ(quantileFromBuckets(Buckets.data(), NB, 3, 1.0, 4.0, -1.0),
            quantileFromBuckets(Buckets.data(), NB, 3, 1.0, 4.0, 0.0));
  const double Med = quantileFromBuckets(Buckets.data(), NB, 3, 1.0, 4.0, 0.5);
  EXPECT_GE(Med, 1.0);
  EXPECT_LE(Med, 4.0);
}

/// Every result-affecting knob must split the serve coalescing key: two
/// requests differing only in rounding mode, fusion, screening, budget or
/// relaxation must never share one joint propagation.
TEST(CoalesceKeyTest, ResultAffectingKnobsSplitTheKey) {
  ServeRequest Base;
  Base.Net = "zoo:mlp";
  Base.InputShape = "1x4";
  Base.RelaxPercent = 0.5;
  Base.ClusterK = 100.0;
  Base.NodeThreshold = 250;
  Base.BudgetMb = 64;

  const std::string K0 = coalesceKeyFor(Base);
  EXPECT_EQ(coalesceKeyFor(Base), K0) << "key not deterministic";

  ServeRequest R1 = Base;
  R1.Sound = true;
  EXPECT_NE(coalesceKeyFor(R1), K0) << "sound missing from key";

  ServeRequest R2 = Base;
  R2.Fuse = true;
  EXPECT_NE(coalesceKeyFor(R2), K0) << "fuse missing from key";

  ServeRequest R3 = Base;
  R3.FastScreen = true;
  EXPECT_NE(coalesceKeyFor(R3), K0) << "fast_screen missing from key";

  ServeRequest R4 = Base;
  R4.BudgetMb = 128;
  EXPECT_NE(coalesceKeyFor(R4), K0) << "budget missing from key";

  ServeRequest R5 = Base;
  R5.RelaxPercent = 0.25;
  EXPECT_NE(coalesceKeyFor(R5), K0) << "relaxation missing from key";

  ServeRequest R6 = Base;
  R6.Net = "zoo:other";
  EXPECT_NE(coalesceKeyFor(R6), K0) << "net missing from key";

  // Deterministic mode and specs are deliberately per-member (applied
  // after the joint propagation), so they must NOT split the key.
  ServeRequest R7 = Base;
  R7.Deterministic = true;
  EXPECT_EQ(coalesceKeyFor(R7), K0);
}

} // namespace
} // namespace genprove
