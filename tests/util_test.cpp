//===- tests/util_test.cpp - util module unit tests -------------*- C++ -*-===//

#include "src/util/rng.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/timer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    const double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng R(11);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    const double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.05);
  EXPECT_NEAR(SumSq / N, 1.0, 0.05);
}

TEST(Rng, ArcsineStaysInUnitIntervalAndIsSymmetric) {
  Rng R(13);
  double Sum = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    const double X = R.arcsine();
    ASSERT_GE(X, 0.0);
    ASSERT_LE(X, 1.0);
    Sum += X;
  }
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(Rng, BelowRespectsBound) {
  Rng R(17);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(13), 13u);
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> V{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(V, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(V, 0.25), 2.0);
}

TEST(Stats, PercentileSingleElement) {
  std::vector<double> V{42.0};
  EXPECT_DOUBLE_EQ(percentile(V, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(V, 0.5), 42.0);
  EXPECT_DOUBLE_EQ(percentile(V, 1.0), 42.0);
}

TEST(Timer, AccumTimerStartsStopped) {
  AccumTimer T;
  EXPECT_FALSE(T.running());
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
  T.pause(); // pause while stopped is a no-op
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
}

TEST(Timer, AccumTimerPauseFreezesTheTotal) {
  AccumTimer T;
  T.start();
  EXPECT_TRUE(T.running());
  T.pause();
  EXPECT_FALSE(T.running());
  const double Frozen = T.seconds();
  // Paused: repeated reads return the identical accumulated value.
  EXPECT_DOUBLE_EQ(T.seconds(), Frozen);
  EXPECT_DOUBLE_EQ(T.seconds(), Frozen);

  T.resume();
  T.pause();
  EXPECT_GE(T.seconds(), Frozen); // resume adds on top, never restarts

  T.reset();
  EXPECT_FALSE(T.running());
  EXPECT_DOUBLE_EQ(T.seconds(), 0.0);
}

TEST(Timer, AccumTimerDoubleStartIsANoOp) {
  AccumTimer T;
  T.start();
  const double Before = T.seconds();
  T.start(); // must not restart the running segment
  EXPECT_GE(T.seconds(), Before);
  T.pause();
  EXPECT_GE(T.seconds(), Before);
}

TEST(Stats, ClopperPearsonKnownValues) {
  // 95% CI for 5 successes out of 10: roughly [0.187, 0.813].
  const auto [Lo, Hi] = clopperPearson(5, 10, 0.05);
  EXPECT_NEAR(Lo, 0.187, 5e-3);
  EXPECT_NEAR(Hi, 0.813, 5e-3);
}

TEST(Stats, ClopperPearsonEdgeCases) {
  {
    const auto [Lo, Hi] = clopperPearson(0, 20, 0.05);
    EXPECT_DOUBLE_EQ(Lo, 0.0);
    EXPECT_GT(Hi, 0.0);
    EXPECT_LT(Hi, 0.25);
  }
  {
    const auto [Lo, Hi] = clopperPearson(20, 20, 0.05);
    EXPECT_DOUBLE_EQ(Hi, 1.0);
    EXPECT_GT(Lo, 0.75);
  }
  {
    const auto [Lo, Hi] = clopperPearson(0, 0, 0.05);
    EXPECT_DOUBLE_EQ(Lo, 0.0);
    EXPECT_DOUBLE_EQ(Hi, 1.0);
  }
}

TEST(Stats, ClopperPearsonTightensWithSamples) {
  const auto [Lo1, Hi1] = clopperPearson(50, 100, 1e-5);
  const auto [Lo2, Hi2] = clopperPearson(5000, 10000, 1e-5);
  EXPECT_LT(Hi2 - Lo2, Hi1 - Lo1);
}

TEST(Table, RendersAlignedRows) {
  TablePrinter T({"name", "value"});
  T.addRow({"alpha", "1"});
  T.addRow({"b", "22"});
  const std::string Out = T.render();
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("alpha"), std::string::npos);
  EXPECT_NE(Out.find("22"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  TablePrinter T({"a", "b"});
  T.addRow({"x,y", "z"});
  EXPECT_NE(T.renderCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(formatBound(0.97), "0.9700");
  EXPECT_EQ(formatBound(5.7e-5), "5.70e-05");
  EXPECT_EQ(formatPercent(0.925), "92.5%");
  EXPECT_NE(formatBytes(3ull << 30).find("GB"), std::string::npos);
  EXPECT_NE(formatBytes(10 << 20).find("MB"), std::string::npos);
}

} // namespace
} // namespace genprove
