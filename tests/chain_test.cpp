//===- tests/chain_test.cpp - polygonal chain specifications ----*- C++ -*-===//

#include "src/core/genprove.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.7);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

TEST(Chain, TwoWaypointChainEqualsSegment) {
  Rng R(1);
  Sequential Net = makeRandomMlp(R, {3, 10, 8, 2});
  Tensor A = Tensor::randn({1, 3}, R);
  Tensor B = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Config;
  const GenProve Analyzer(Config);
  const ProbBounds Seg =
      Analyzer.boundsFor(Analyzer.propagateSegment(Net.view(), Shape({1, 3}),
                                                   A, B),
                         Spec);
  const ProbBounds Chain = Analyzer.boundsFor(
      Analyzer.propagateChain(Net.view(), Shape({1, 3}), {A, B}), Spec);
  EXPECT_NEAR(Seg.Lower, Chain.Lower, 1e-9);
  EXPECT_NEAR(Seg.Upper, Chain.Upper, 1e-9);
}

TEST(Chain, MassIsPreservedAcrossLegs) {
  Rng R(2);
  Sequential Net = makeRandomMlp(R, {4, 12, 3});
  std::vector<Tensor> Waypoints;
  for (int I = 0; I < 5; ++I)
    Waypoints.push_back(Tensor::randn({1, 4}, R));

  GenProveConfig Config;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateChain(Net.view(), Shape({1, 4}), Waypoints);
  ASSERT_FALSE(State.OutOfMemory);
  double Mass = 0.0;
  for (const Region &Piece : State.Regions)
    Mass += Piece.Weight;
  EXPECT_NEAR(Mass, 1.0, 1e-9);
}

TEST(Chain, BoundsBracketChainSampling) {
  Rng R(3);
  Sequential Net = makeRandomMlp(R, {3, 14, 10, 2});
  std::vector<Tensor> Waypoints;
  for (int I = 0; I < 4; ++I)
    Waypoints.push_back(Tensor::randn({1, 3}, R));
  const OutputSpec Spec = OutputSpec::argmaxWins(1, 2);

  GenProveConfig Config;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateChain(Net.view(), Shape({1, 3}), Waypoints);
  const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
  EXPECT_NEAR(Bounds.width(), 0.0, 1e-9); // exact analysis

  // Sample uniformly over the chain parameter (legs are equal length in
  // parameter space by construction).
  int64_t Sat = 0;
  const int64_t N = 4000;
  for (int64_t I = 0; I < N; ++I) {
    const double T = (static_cast<double>(I) + 0.5) / N;
    const double Scaled = T * 3.0; // 3 legs
    const auto Leg = std::min<int64_t>(static_cast<int64_t>(Scaled), 2);
    const double Alpha = Scaled - static_cast<double>(Leg);
    Tensor X({1, 3});
    for (int64_t J = 0; J < 3; ++J)
      X[J] = Waypoints[static_cast<size_t>(Leg)][J] +
             Alpha * (Waypoints[static_cast<size_t>(Leg + 1)][J] -
                      Waypoints[static_cast<size_t>(Leg)][J]);
    if (Spec.satisfied(forwardConcretePoints(Net.view(), Shape({1, 3}), X)))
      ++Sat;
  }
  EXPECT_NEAR(Bounds.Lower, static_cast<double>(Sat) / N, 0.02);
}

TEST(Chain, ArcsineWeightsConcentrateAtEndLegs) {
  // With the arcsine distribution, the first and last legs carry more
  // mass than the middle legs.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {1.0});
  L->bias() = Tensor({1}, {0.0});
  Net.add(std::move(L));

  std::vector<Tensor> Waypoints;
  for (int I = 0; I < 5; ++I)
    Waypoints.push_back(Tensor({1, 1}, {static_cast<double>(I)}));

  GenProveConfig Config;
  Config.Distribution = ParamDistribution::Arcsine;
  const GenProve Analyzer(Config);
  const PropagatedState State =
      Analyzer.propagateChain(Net.view(), Shape({1, 1}), Waypoints);
  ASSERT_EQ(State.Regions.size(), 4u);
  std::vector<double> Weights;
  for (const Region &Piece : State.Regions)
    Weights.push_back(Piece.Weight);
  std::sort(Weights.begin(), Weights.end());
  // The two heaviest legs must be the end legs: F(1/4) = 1/3 each end.
  EXPECT_NEAR(Weights[3], 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(Weights[2], 1.0 / 3.0, 1e-9);
  EXPECT_LT(Weights[0], 0.2);
}

} // namespace
} // namespace genprove
