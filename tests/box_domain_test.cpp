//===- tests/box_domain_test.cpp - interval baseline ------------*- C++ -*-===//

#include "src/domains/box_domain.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.7);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.4);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

class BoxSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoxSoundness, CertificationAgreesWithSamples) {
  Rng R(GetParam());
  Sequential Net = makeRandomMlp(R, {4, 8, 6, 3});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  for (int SpecTrial = 0; SpecTrial < 15; ++SpecTrial) {
    Tensor Normal = Tensor::randn({1, 3}, R);
    const OutputSpec Spec = OutputSpec::halfspace(Normal, R.normal(0.0, 3.0));
    DeviceMemoryModel Memory;
    const ConvexResult Result =
        analyzeBox(Net.view(), Shape({1, 4}), E1, E2, Spec, Memory);
    for (int Trial = 0; Trial < 30; ++Trial) {
      const double T = R.uniform();
      Tensor X({1, 4});
      for (int64_t J = 0; J < 4; ++J)
        X[J] = E1[J] + T * (E2[J] - E1[J]);
      const Tensor Y = Net.forward(X);
      if (Result.Bounds.Lower >= 1.0) {
        EXPECT_TRUE(Spec.satisfied(Y));
      }
      if (Result.Bounds.Upper <= 0.0) {
        EXPECT_FALSE(Spec.satisfied(Y));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxSoundness, ::testing::Values(3u, 8u, 21u));

TEST(BoxDomain, DegenerateSegmentIsAPoint) {
  Rng R(1);
  Sequential Net = makeRandomMlp(R, {2, 4, 2});
  Tensor E = Tensor::randn({1, 2}, R);
  const Tensor Y = Net.forward(E);
  const OutputSpec Spec = OutputSpec::argmaxWins(
      Y[0] > Y[1] ? 0 : 1, 2);
  DeviceMemoryModel Memory;
  const ConvexResult Result =
      analyzeBox(Net.view(), Shape({1, 2}), E, E, Spec, Memory);
  // A point input stays exact under interval arithmetic (no crossing
  // uncertainty unless a pre-activation is exactly zero).
  EXPECT_DOUBLE_EQ(Result.Bounds.Lower, 1.0);
}

TEST(BoxDomain, IsCoarserThanNothingButStillSound) {
  // The box domain must never certify a property that a concrete
  // counterexample violates, even on a wide segment.
  Rng R(2);
  Sequential Net = makeRandomMlp(R, {3, 16, 16, 2});
  Tensor E1 = Tensor::full({1, 3}, -2.0);
  Tensor E2 = Tensor::full({1, 3}, 2.0);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  DeviceMemoryModel Memory;
  const ConvexResult Result =
      analyzeBox(Net.view(), Shape({1, 3}), E1, E2, Spec, Memory);
  if (Result.Bounds.Lower >= 1.0) {
    for (int Trial = 0; Trial < 200; ++Trial) {
      const double T = R.uniform();
      Tensor X({1, 3});
      for (int64_t J = 0; J < 3; ++J)
        X[J] = E1[J] + T * (E2[J] - E1[J]);
      EXPECT_TRUE(Spec.satisfied(Net.forward(X)));
    }
  }
}

} // namespace
} // namespace genprove
