//===- tests/relax_test.cpp - relaxation heuristic tests --------*- C++ -*-===//

#include "src/domains/relaxation.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

/// A chain of NumPieces connected random segments over [0, 1], with
/// weights proportional to parameter length.
std::vector<Region> makeChain(Rng &R, int64_t NumPieces, int64_t Dim) {
  std::vector<Region> Chain;
  Tensor Prev = Tensor::randn({1, Dim}, R);
  for (int64_t I = 0; I < NumPieces; ++I) {
    Tensor Next = Prev.clone();
    for (int64_t J = 0; J < Dim; ++J)
      Next[J] += R.normal(0.0, I % 7 == 0 ? 1.0 : 0.05); // mixed lengths
    const double T0 = static_cast<double>(I) / NumPieces;
    const double T1 = static_cast<double>(I + 1) / NumPieces;
    Chain.push_back(makeSegmentRegion(Prev, Next, T1 - T0, T0, T1));
    Prev = Next;
  }
  return Chain;
}

TEST(Relax, ShortChainsAreLeftExact) {
  Rng R(1);
  auto Chain = makeChain(R, 20, 4);
  RelaxConfig Config;
  Config.RelaxPercent = 0.5;
  Config.ClusterK = 5.0;
  Config.NodeThreshold = 100; // chain has only 21 nodes
  const size_t Before = Chain.size();
  relaxRegions(Chain, Config);
  EXPECT_EQ(Chain.size(), Before);
  for (const auto &Piece : Chain)
    EXPECT_EQ(Piece.Kind, RegionKind::Curve);
}

TEST(Relax, ZeroPercentIsExact) {
  Rng R(2);
  auto Chain = makeChain(R, 200, 4);
  RelaxConfig Config;
  Config.RelaxPercent = 0.0;
  Config.NodeThreshold = 10;
  const size_t Before = Chain.size();
  relaxRegions(Chain, Config);
  EXPECT_EQ(Chain.size(), Before);
}

TEST(Relax, BoxesShortSegmentsAndPreservesMass) {
  Rng R(3);
  auto Chain = makeChain(R, 300, 4);
  double MassBefore = 0.0;
  for (const auto &Piece : Chain)
    MassBefore += Piece.Weight;

  RelaxConfig Config;
  Config.RelaxPercent = 0.9;
  Config.ClusterK = 10.0;
  Config.NodeThreshold = 50;
  relaxRegions(Chain, Config);

  double MassAfter = 0.0;
  int64_t NumBoxes = 0;
  for (const auto &Piece : Chain) {
    MassAfter += Piece.Weight;
    NumBoxes += Piece.Kind == RegionKind::Box;
  }
  EXPECT_NEAR(MassAfter, MassBefore, 1e-9);
  EXPECT_GT(NumBoxes, 0);
  EXPECT_LT(Chain.size(), 300u); // the state actually shrank
}

TEST(Relax, ClusterBudgetCapsBoxSpan) {
  Rng R(4);
  // Uniform tiny segments: everything below the percentile cap.
  std::vector<Region> Chain;
  Tensor Prev = Tensor::zeros({1, 2});
  const int64_t N = 400;
  for (int64_t I = 0; I < N; ++I) {
    Tensor Next = Prev.clone();
    Next[0] += 0.01;
    const double T0 = static_cast<double>(I) / N;
    const double T1 = static_cast<double>(I + 1) / N;
    Chain.push_back(makeSegmentRegion(Prev, Next, T1 - T0, T0, T1));
    Prev = Next;
  }
  RelaxConfig Config;
  Config.RelaxPercent = 1.0; // every length is <= the 100th percentile
  Config.ClusterK = 20.0;    // per-step budget = 401/20 = 20 endpoints
  Config.NodeThreshold = 50;
  relaxRegions(Chain, Config);

  // Each box may cover at most ~20 pieces of weight 1/400 each.
  for (const auto &Piece : Chain) {
    if (Piece.Kind == RegionKind::Box) {
      EXPECT_LE(Piece.Weight, 21.0 / 400.0 + 1e-9);
    }
  }
}

TEST(Relax, SoundnessBoxesCoverReplacedSegments) {
  Rng R(5);
  auto Chain = makeChain(R, 300, 3);
  // Remember the originals to check coverage after relaxation.
  const std::vector<Region> Original = Chain;

  RelaxConfig Config;
  Config.RelaxPercent = 1.0;
  Config.ClusterK = 8.0;
  Config.NodeThreshold = 10;
  relaxRegions(Chain, Config);

  // Every original sample point must be covered by the relaxed state.
  for (int Trial = 0; Trial < 300; ++Trial) {
    const auto &Seg = Original[R.below(Original.size())];
    const double T = R.uniform(Seg.T0, Seg.T1);
    const Tensor P = evalCurve(Seg, T);
    bool Covered = false;
    for (const auto &Piece : Chain) {
      if (Piece.Kind == RegionKind::Curve) {
        if (T < Piece.T0 - 1e-12 || T > Piece.T1 + 1e-12)
          continue;
        const Tensor Q = evalCurve(Piece, T);
        bool Match = true;
        for (int64_t J = 0; J < Q.numel() && Match; ++J)
          if (std::fabs(Q[J] - P[J]) > 1e-9)
            Match = false;
        Covered |= Match;
      } else {
        bool Inside = true;
        for (int64_t J = 0; J < P.numel() && Inside; ++J)
          if (std::fabs(P[J] - Piece.Center[J]) > Piece.Radius[J] + 1e-9)
            Inside = false;
        Covered |= Inside;
      }
      if (Covered)
        break;
    }
    EXPECT_TRUE(Covered);
  }
}

TEST(Relax, TotalNodesCountsCurveAndBoxNodes) {
  Tensor A({1, 2}, {0.0, 0.0});
  Tensor B({1, 2}, {1.0, 1.0});
  std::vector<Region> Regions;
  Regions.push_back(makeSegmentRegion(A, B)); // 2 nodes
  Regions.push_back(makeBoxRegion(A, B, 0.5)); // 2 nodes
  Regions.push_back(makeQuadraticRegion(A, B, A)); // 3 nodes
  EXPECT_EQ(totalNodes(Regions), 7);
}

} // namespace
} // namespace genprove
