//===- tests/snapshot_test.cpp - metrics snapshot/merge tests ---*- C++ -*-===//
//
// The cross-process telemetry plane: snapshot capture, merge semantics
// (counter sums, gauge policies, bucket-wise histogram merge), percentile
// extraction from log-scale buckets, the bit-exact JSON wire format, and
// the registry fold the shard supervisor uses — including the acceptance
// differential "merged counter totals equal the sum of per-worker values".
//
//===----------------------------------------------------------------------===//

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace genprove {
namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Saves/restores the metrics switch and resets the global registry, so
/// fold tests cannot leak state into the rest of the suite.
class SnapshotTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasMetrics = metricsEnabled();
    MetricsRegistry::global().reset();
  }
  void TearDown() override {
    setMetricsEnabled(WasMetrics);
    MetricsRegistry::global().reset();
  }

private:
  bool WasMetrics = false;
};

/// A deterministic pseudo-worker snapshot: counters, gauges of each merge
/// class, and a histogram fed from a seeded RNG.
MetricsSnapshot makeWorkerSnapshot(uint64_t Seed, int NumSamples) {
  Rng R(Seed);
  MetricsSnapshot S;
  S.Counters["propagate.splits"] = static_cast<int64_t>(Seed) * 11 + 3;
  S.Counters["shard.restarts"] = static_cast<int64_t>(Seed % 3);
  S.Gauges["device.peak_bytes"] = 1000.0 * static_cast<double>(Seed + 1);
  S.Gauges["pool.busy_seconds"] = 0.25 * static_cast<double>(Seed + 1);
  S.Gauges["pool.threads"] = static_cast<double>(Seed + 2);
  HistogramSnapshot &H = S.Histograms["propagate.layer_seconds"];
  for (int I = 0; I < NumSamples; ++I)
    H.record(std::exp(R.normal(0.0, 2.0))); // lognormal spans many buckets
  return S;
}

bool histogramsEqual(const HistogramSnapshot &A, const HistogramSnapshot &B) {
  // Bit-exact comparison: empty-histogram sentinels are +-inf, so compare
  // through memcmp-style equality that treats -0.0/0.0 as different only
  // if the bits differ. Plain == suffices here (no NaN stats by
  // construction: record() skips NaN for min/max).
  if (A.Count != B.Count || A.Buckets != B.Buckets)
    return false;
  const auto SameBits = [](double X, double Y) {
    return std::memcmp(&X, &Y, sizeof(double)) == 0;
  };
  return SameBits(A.Sum, B.Sum) && SameBits(A.Min, B.Min) &&
         SameBits(A.Max, B.Max);
}

bool snapshotsEqual(const MetricsSnapshot &A, const MetricsSnapshot &B) {
  if (A.Counters != B.Counters)
    return false;
  if (A.Gauges.size() != B.Gauges.size() ||
      A.Histograms.size() != B.Histograms.size())
    return false;
  for (const auto &[Name, V] : A.Gauges) {
    auto It = B.Gauges.find(Name);
    if (It == B.Gauges.end() ||
        std::memcmp(&V, &It->second, sizeof(double)) != 0)
      return false;
  }
  for (const auto &[Name, H] : A.Histograms) {
    auto It = B.Histograms.find(Name);
    if (It == B.Histograms.end() || !histogramsEqual(H, It->second))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Merge semantics
//===----------------------------------------------------------------------===//

TEST(SnapshotMerge, CountersSum) {
  MetricsSnapshot A, B;
  A.Counters["x"] = 3;
  B.Counters["x"] = 4;
  B.Counters["y"] = 7;
  A.merge(B);
  EXPECT_EQ(A.Counters["x"], 7);
  EXPECT_EQ(A.Counters["y"], 7);
}

TEST(SnapshotMerge, GaugePolicies) {
  EXPECT_EQ(gaugeMergePolicy("device.peak_bytes"), GaugeMerge::Max);
  EXPECT_EQ(gaugeMergePolicy("pool.busy_seconds"), GaugeMerge::Sum);
  EXPECT_EQ(gaugeMergePolicy("pool.threads"), GaugeMerge::Last);
  // The label suffix never changes the policy.
  EXPECT_EQ(gaugeMergePolicy("device.peak_bytes{shard=\"2\"}"),
            GaugeMerge::Max);
  EXPECT_EQ(gaugeMergePolicy("pool.busy_seconds{shard=\"0\"}"),
            GaugeMerge::Sum);

  MetricsSnapshot A, B;
  A.Gauges["device.peak_bytes"] = 100.0;
  B.Gauges["device.peak_bytes"] = 40.0; // below: max keeps 100
  A.Gauges["pool.busy_seconds"] = 1.5;
  B.Gauges["pool.busy_seconds"] = 2.0;
  A.Gauges["pool.threads"] = 4.0;
  B.Gauges["pool.threads"] = 2.0; // last-write-wins: rhs
  A.merge(B);
  EXPECT_EQ(A.Gauges["device.peak_bytes"], 100.0);
  EXPECT_EQ(A.Gauges["pool.busy_seconds"], 3.5);
  EXPECT_EQ(A.Gauges["pool.threads"], 2.0);
}

TEST(SnapshotMerge, HistogramMergeIsAssociativeAndCommutative) {
  const MetricsSnapshot W0 = makeWorkerSnapshot(1, 200);
  const MetricsSnapshot W1 = makeWorkerSnapshot(2, 150);
  const MetricsSnapshot W2 = makeWorkerSnapshot(3, 75);

  // (W0 + W1) + W2
  MetricsSnapshot L = W0;
  L.merge(W1);
  L.merge(W2);
  // W0 + (W1 + W2)
  MetricsSnapshot RInner = W1;
  RInner.merge(W2);
  MetricsSnapshot Rt = W0;
  Rt.merge(RInner);
  EXPECT_TRUE(snapshotsEqual(L, Rt)) << "merge is not associative";

  // Commutativity holds for the histogram plane (bucket adds, min/max)
  // regardless of order; last-write-wins gauges are order-sensitive by
  // design, so compare histograms only.
  MetricsSnapshot AB = W0, BA = W1;
  AB.merge(W1);
  BA.merge(W0);
  ASSERT_EQ(AB.Histograms.size(), BA.Histograms.size());
  for (const auto &[Name, H] : AB.Histograms)
    EXPECT_TRUE(histogramsEqual(H, BA.Histograms.at(Name))) << Name;
  EXPECT_EQ(AB.Counters, BA.Counters);
}

TEST(SnapshotMerge, MergingEmptyHistogramIsIdentity) {
  MetricsSnapshot A = makeWorkerSnapshot(5, 64);
  const MetricsSnapshot Before = A;
  MetricsSnapshot Empty;
  Empty.Histograms["propagate.layer_seconds"]; // all-zero snapshot
  A.merge(Empty);
  EXPECT_TRUE(histogramsEqual(A.Histograms.at("propagate.layer_seconds"),
                              Before.Histograms.at("propagate.layer_seconds")));
}

//===----------------------------------------------------------------------===//
// Percentiles
//===----------------------------------------------------------------------===//

TEST(SnapshotPercentile, EmptyHistogramYieldsNaN) {
  HistogramSnapshot H;
  EXPECT_TRUE(std::isnan(histogramPercentile(H, 0.5)));
}

TEST(SnapshotPercentile, SingleSampleIsItsOwnQuantile) {
  HistogramSnapshot H;
  H.record(0.125);
  for (double Q : {0.0, 0.5, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(histogramPercentile(H, Q), 0.125) << Q;
}

TEST(SnapshotPercentile, TracksExactQuantilesWithinBucketResolution) {
  // Log-2 buckets: the estimate must land within a factor of 2 of the
  // exact sample quantile (the bucket's own width), for several seeds.
  for (uint64_t Seed : {11u, 42u, 77u}) {
    Rng R(Seed);
    HistogramSnapshot H;
    std::vector<double> Samples;
    for (int I = 0; I < 2000; ++I) {
      const double V = std::exp(R.normal(-2.0, 1.5));
      Samples.push_back(V);
      H.record(V);
    }
    std::sort(Samples.begin(), Samples.end());
    for (double Q : {0.5, 0.9, 0.99}) {
      const size_t Rank = static_cast<size_t>(
          std::max<int64_t>(1, static_cast<int64_t>(std::ceil(
                                   Q * static_cast<double>(Samples.size())))));
      const double Exact = Samples[Rank - 1];
      const double Est = histogramPercentile(H, Q);
      EXPECT_GE(Est, Exact / 2.0) << "seed " << Seed << " q " << Q;
      EXPECT_LE(Est, Exact * 2.0) << "seed " << Seed << " q " << Q;
    }
  }
}

TEST(SnapshotPercentile, ClampsToObservedRange) {
  HistogramSnapshot H;
  // Both samples share one bucket (2^1, 2^2]; interpolation must stay
  // inside the observed [2.5, 3.5], not the bucket's (2, 4].
  H.record(2.5);
  H.record(3.5);
  for (double Q : {0.01, 0.5, 0.99}) {
    const double Est = histogramPercentile(H, Q);
    EXPECT_GE(Est, 2.5);
    EXPECT_LE(Est, 3.5);
  }
}

//===----------------------------------------------------------------------===//
// JSON wire format
//===----------------------------------------------------------------------===//

TEST(SnapshotJson, RoundTripIsBitExact) {
  MetricsSnapshot S = makeWorkerSnapshot(9, 300);
  // Awkward doubles that %.17g must preserve exactly.
  S.Gauges["awkward.third"] = 1.0 / 3.0;
  S.Gauges["awkward.tiny"] = 5e-324; // smallest subnormal
  S.Gauges["awkward.neg"] = -0.0;
  S.Histograms["empty.hist"]; // Min=+inf / Max=-inf sentinels

  const std::string Json = S.toJson();
  std::string Error;
  ASSERT_TRUE(validateJson(Json, &Error)) << Error;

  MetricsSnapshot Back;
  ASSERT_TRUE(MetricsSnapshot::fromJsonText(Json, Back, &Error)) << Error;
  EXPECT_TRUE(snapshotsEqual(S, Back));
  // The sentinels specifically: non-finite values must survive (the
  // generic JSON writer would have collapsed them to null).
  EXPECT_EQ(Back.Histograms.at("empty.hist").Min, Inf);
  EXPECT_EQ(Back.Histograms.at("empty.hist").Max, -Inf);
  // And a second encode is byte-identical (stable wire format).
  EXPECT_EQ(Back.toJson(), Json);
}

TEST(SnapshotJson, RejectsMalformedInput) {
  MetricsSnapshot Out;
  std::string Error;
  EXPECT_FALSE(MetricsSnapshot::fromJsonText("[]", Out, &Error));
  EXPECT_FALSE(MetricsSnapshot::fromJsonText(
      R"({"counters":{"a":"text"}})", Out, &Error));
  EXPECT_FALSE(MetricsSnapshot::fromJsonText(
      R"({"gauges":{"g":1.5}})", Out, &Error)); // must be a string
  EXPECT_FALSE(MetricsSnapshot::fromJsonText(
      R"({"histograms":{"h":{"count":1,"sum":"1","min":"1","max":"1",)"
      R"("buckets":[[9999,1]]}}})",
      Out, &Error)); // bucket index out of range
  EXPECT_FALSE(Error.empty());
}

TEST(SnapshotJson, LabeledNamesSurviveTheWire) {
  EXPECT_EQ(labeledMetricName("a.b", "shard", "3"), "a.b{shard=\"3\"}");
  EXPECT_EQ(labeledMetricName("a.b{x=\"1\"}", "shard", "0"),
            "a.b{x=\"1\",shard=\"0\"}");

  MetricsSnapshot S;
  S.Counters["propagate.splits"] = 5;
  const MetricsSnapshot L = S.withLabel("shard", "2");
  EXPECT_EQ(L.Counters.count("propagate.splits{shard=\"2\"}"), 1u);

  MetricsSnapshot Back;
  ASSERT_TRUE(MetricsSnapshot::fromJsonText(L.toJson(), Back, nullptr));
  EXPECT_TRUE(snapshotsEqual(L, Back));
}

//===----------------------------------------------------------------------===//
// Registry fold (the supervisor's merge path)
//===----------------------------------------------------------------------===//

TEST_F(SnapshotTest, FoldedCounterTotalsEqualSumOfWorkers) {
  // The acceptance differential: fold N worker snapshots the way the
  // supervisor does (base names + a shard=<id> dimension) and assert the
  // merged totals equal the per-worker sum, with the fold working even
  // while the local metrics switch is off (absorb plane).
  setMetricsEnabled(false);
  MetricsRegistry &Reg = MetricsRegistry::global();

  const int NumWorkers = 4;
  int64_t ExpectSplits = 0, ExpectRestarts = 0, ExpectHistCount = 0;
  double ExpectBusy = 0.0, ExpectPeak = 0.0;
  for (int Shard = 0; Shard < NumWorkers; ++Shard) {
    const MetricsSnapshot W =
        makeWorkerSnapshot(static_cast<uint64_t>(Shard), 50 + 10 * Shard);
    ExpectSplits += W.Counters.at("propagate.splits");
    ExpectRestarts += W.Counters.at("shard.restarts");
    ExpectBusy += W.Gauges.at("pool.busy_seconds");
    ExpectPeak = std::max(ExpectPeak, W.Gauges.at("device.peak_bytes"));
    ExpectHistCount += W.Histograms.at("propagate.layer_seconds").Count;
    foldIntoRegistry(Reg, W);
    foldIntoRegistry(Reg, W.withLabel("shard", std::to_string(Shard)));
  }

  EXPECT_EQ(Reg.counter("propagate.splits").value(), ExpectSplits);
  EXPECT_EQ(Reg.counter("shard.restarts").value(), ExpectRestarts);
  EXPECT_EQ(Reg.gauge("pool.busy_seconds").value(), ExpectBusy);
  EXPECT_EQ(Reg.gauge("device.peak_bytes").value(), ExpectPeak);
  EXPECT_EQ(Reg.histogram("propagate.layer_seconds").count(),
            ExpectHistCount);

  // Base totals equal the sum over the labeled shard dimension.
  int64_t LabeledSum = 0;
  for (int Shard = 0; Shard < NumWorkers; ++Shard) {
    const Counter *C = Reg.findCounter(
        labeledMetricName("propagate.splits", "shard", std::to_string(Shard)));
    ASSERT_NE(C, nullptr);
    LabeledSum += C->value();
  }
  EXPECT_EQ(LabeledSum, ExpectSplits);
}

TEST_F(SnapshotTest, CaptureFoldRoundTripsThroughTheWire) {
  // Worker side: record live metrics, capture, encode. Coordinator side:
  // decode and fold into a fresh (reset) registry. Values must survive.
  setMetricsEnabled(true);
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.counter("wire.counter").add(13);
  Reg.gauge("wire.peak_thing").setMax(7.25);
  Histogram &H = Reg.histogram("wire.hist");
  H.record(0.5);
  H.record(64.0);

  const std::string Json = MetricsSnapshot::capture(Reg).toJson();
  Reg.reset();
  EXPECT_EQ(Reg.counter("wire.counter").value(), 0);

  MetricsSnapshot Back;
  ASSERT_TRUE(MetricsSnapshot::fromJsonText(Json, Back, nullptr));
  foldIntoRegistry(Reg, Back);
  EXPECT_EQ(Reg.counter("wire.counter").value(), 13);
  EXPECT_EQ(Reg.gauge("wire.peak_thing").value(), 7.25);
  EXPECT_EQ(Reg.histogram("wire.hist").count(), 2);
  EXPECT_EQ(Reg.histogram("wire.hist").minSample(), 0.5);
  EXPECT_EQ(Reg.histogram("wire.hist").maxSample(), 64.0);
  EXPECT_EQ(Reg.histogram("wire.hist").total(), 64.5);
}

//===----------------------------------------------------------------------===//
// Prometheus exposition
//===----------------------------------------------------------------------===//

TEST_F(SnapshotTest, PrometheusExpositionShape) {
  setMetricsEnabled(true);
  MetricsRegistry &Reg = MetricsRegistry::global();
  Reg.counter("prom.splits").add(4);
  Reg.counter(labeledMetricName("prom.splits", "shard", "1")).add(4);
  Reg.gauge("prom.peak_bytes").setMax(2048.0);
  Histogram &H = Reg.histogram("prom.seconds");
  H.record(0.25);
  H.record(1.0);

  const std::string Text = Reg.toPrometheus();
  // Names gain the prefix, dots become underscores, labels re-emit.
  EXPECT_NE(Text.find("# TYPE genprove_prom_splits counter"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("genprove_prom_splits 4"), std::string::npos);
  EXPECT_NE(Text.find("genprove_prom_splits{shard=\"1\"} 4"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE genprove_prom_peak_bytes gauge"),
            std::string::npos);
  // Histograms: cumulative buckets, a +Inf bucket, _sum and _count.
  EXPECT_NE(Text.find("# TYPE genprove_prom_seconds histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("genprove_prom_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("genprove_prom_seconds_sum 1.25"), std::string::npos);
  EXPECT_NE(Text.find("genprove_prom_seconds_count 2"), std::string::npos);
  // One TYPE line per base family, even with the labeled sibling.
  size_t First = Text.find("# TYPE genprove_prom_splits counter");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("# TYPE genprove_prom_splits counter", First + 1),
            std::string::npos);
}

} // namespace
} // namespace genprove
