//===- tests/parallel_test.cpp - parallel runtime & determinism -*- C++ -*-===//
//
// The parallel engine's contract is "bit-identical results for any thread
// count". These tests pin that down at three levels: the pool itself
// (coverage, fixed chunking, ordered reduction, nested calls, exception
// propagation), the tiled kernels (bitwise equal to a naive ascending-k
// reference), and a full propagation (regions, stats and memory peak
// identical at 1 and 4 threads). Plus a concurrency hammer for the
// memory model and the |W| cache.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/memory_model.h"
#include "src/domains/propagate.h"
#include "src/nn/abs_cache.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/parallel/thread_pool.h"
#include "src/tensor/ops.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace genprove {
namespace {

/// Pin the global pool to N threads for the scope of one test body, then
/// restore the environment-derived default.
struct ThreadCount {
  explicit ThreadCount(int64_t N) { ThreadPool::global().setThreads(N); }
  ~ThreadCount() { ThreadPool::global().setThreads(ThreadPool::envThreads()); }
};

bool bitIdentical(const Tensor &A, const Tensor &B) {
  return A.numel() == B.numel() &&
         std::memcmp(A.data(), B.data(),
                     static_cast<size_t>(A.numel()) * sizeof(double)) == 0;
}

TEST(ThreadPoolTest, SetThreadsClamps) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.threads(), 1);
  Pool.setThreads(100000);
  EXPECT_EQ(Pool.threads(), 256);
  Pool.setThreads(3);
  EXPECT_EQ(Pool.threads(), 3);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  for (int64_t Threads : {int64_t(1), int64_t(4)}) {
    ThreadPool Pool(Threads);
    for (int64_t N : {int64_t(0), int64_t(1), int64_t(5), int64_t(64),
                      int64_t(1000)}) {
      for (int64_t Grain : {int64_t(0), int64_t(1), int64_t(7)}) {
        std::vector<std::atomic<int>> Hits(static_cast<size_t>(N));
        Pool.parallelFor(N, Grain, [&](int64_t Begin, int64_t End) {
          for (int64_t I = Begin; I < End; ++I)
            Hits[static_cast<size_t>(I)].fetch_add(1);
        });
        for (int64_t I = 0; I < N; ++I)
          ASSERT_EQ(Hits[static_cast<size_t>(I)].load(), 1)
              << "threads=" << Threads << " N=" << N << " grain=" << Grain
              << " index=" << I;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  const int64_t N = 531, Grain = 13;
  auto chunksAt = [&](int64_t Threads) {
    ThreadPool Pool(Threads);
    std::mutex Mu;
    std::set<std::pair<int64_t, int64_t>> Chunks;
    Pool.parallelFor(N, Grain, [&](int64_t Begin, int64_t End) {
      std::lock_guard<std::mutex> Lock(Mu);
      Chunks.insert({Begin, End});
    });
    return Chunks;
  };
  const auto Serial = chunksAt(1);
  const auto Parallel = chunksAt(4);
  EXPECT_EQ(Serial, Parallel);
  // Fixed chunking: ceil(531 / 13) chunks, last one short.
  EXPECT_EQ(Serial.size(), static_cast<size_t>((N + Grain - 1) / Grain));
}

TEST(ThreadPoolTest, ReductionGroupingFixedAcrossThreadCounts) {
  // Values spread over many magnitudes so FP addition order matters.
  Rng R(1234);
  const Tensor V = Tensor::randn({1, 100000}, R, 1.0);
  auto sumAt = [&](int64_t Threads) {
    ThreadPool Pool(Threads);
    return Pool.parallelReduce(
        V.numel(), 0, 0.0,
        [&](int64_t Begin, int64_t End) {
          double S = 0.0;
          for (int64_t I = Begin; I < End; ++I)
            S += std::exp(V[I]); // non-trivial per-element work
          return S;
        },
        [](double A, double B) { return A + B; });
  };
  const double S1 = sumAt(1);
  const double S4 = sumAt(4);
  EXPECT_EQ(std::memcmp(&S1, &S4, sizeof(double)), 0)
      << "serial " << S1 << " vs parallel " << S4;
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineAndCompletes) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(64 * 16);
  Pool.parallelFor(64, 1, [&](int64_t OBegin, int64_t OEnd) {
    for (int64_t O = OBegin; O < OEnd; ++O) {
      EXPECT_TRUE(ThreadPool::inParallelRegion());
      // The nested call must run inline (no deadlock, no oversubscription)
      // and still cover its whole range.
      Pool.parallelFor(16, 1, [&](int64_t IBegin, int64_t IEnd) {
        for (int64_t I = IBegin; I < IEnd; ++I)
          Hits[static_cast<size_t>(O * 16 + I)].fetch_add(1);
      });
    }
  });
  EXPECT_FALSE(ThreadPool::inParallelRegion());
  for (auto &H : Hits)
    ASSERT_EQ(H.load(), 1);
}

TEST(ThreadPoolTest, PropagatesChunkException) {
  for (int64_t Threads : {int64_t(1), int64_t(4)}) {
    ThreadPool Pool(Threads);
    EXPECT_THROW(Pool.parallelFor(100, 1,
                                  [&](int64_t Begin, int64_t) {
                                    if (Begin == 42)
                                      throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool must stay usable after an exceptional job.
    std::atomic<int64_t> Sum{0};
    Pool.parallelFor(10, 1, [&](int64_t Begin, int64_t End) {
      for (int64_t I = Begin; I < End; ++I)
        Sum.fetch_add(I);
    });
    EXPECT_EQ(Sum.load(), 45);
  }
}

// --- Tiled kernels vs a naive ascending-k reference -----------------------
//
// The tiling/unrolling in ops.cpp keeps each output element's accumulation
// in ascending-k order, so the result must be bitwise equal to the naive
// triple loop — not merely close.

Tensor naiveMatmul(const Tensor &A, const Tensor &B) {
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  Tensor C({M, N});
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double S = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        S += A.at(I, Kk) * B.at(Kk, J);
      C.at(I, J) = S;
    }
  return C;
}

Tensor naiveMatmulTransA(const Tensor &A, const Tensor &B) {
  const int64_t K = A.dim(0), M = A.dim(1), N = B.dim(1);
  Tensor C({M, N});
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double S = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        S += A.at(Kk, I) * B.at(Kk, J);
      C.at(I, J) = S;
    }
  return C;
}

Tensor naiveMatmulTransB(const Tensor &A, const Tensor &B) {
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(0);
  Tensor C({M, N});
  for (int64_t I = 0; I < M; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double S = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        S += A.at(I, Kk) * B.at(J, Kk);
      C.at(I, J) = S;
    }
  return C;
}

TEST(TiledGemmTest, BitwiseEqualToNaiveReference) {
  Rng R(99);
  // 300 crosses the k-tile boundary (GemmTileK = 256); 23/29 exercise the
  // 4-row unroll tails.
  for (auto Dims : {std::vector<int64_t>{23, 17, 29},
                    std::vector<int64_t>{4, 300, 8},
                    std::vector<int64_t>{1, 64, 1}}) {
    const int64_t M = Dims[0], K = Dims[1], N = Dims[2];
    const Tensor A = Tensor::randn({M, K}, R, 1.0);
    const Tensor B = Tensor::randn({K, N}, R, 1.0);
    const Tensor At = Tensor::randn({K, M}, R, 1.0);
    const Tensor Bt = Tensor::randn({N, K}, R, 1.0);
    const Tensor RefAB = naiveMatmul(A, B);
    const Tensor RefTa = naiveMatmulTransA(At, B);
    const Tensor RefTb = naiveMatmulTransB(A, Bt);
    for (int64_t Threads : {int64_t(1), int64_t(4)}) {
      ThreadCount Scope(Threads);
      EXPECT_TRUE(bitIdentical(matmul(A, B), RefAB))
          << "matmul " << M << "x" << K << "x" << N << " @" << Threads;
      EXPECT_TRUE(bitIdentical(matmulTransA(At, B), RefTa))
          << "matmulTransA " << M << "x" << K << "x" << N << " @" << Threads;
      EXPECT_TRUE(bitIdentical(matmulTransB(A, Bt), RefTb))
          << "matmulTransB " << M << "x" << K << "x" << N << " @" << Threads;
    }
  }
}

TEST(TiledGemmTest, ConvBitIdenticalAcrossThreadCounts) {
  Rng R(7);
  ConvGeometry Geom;
  Geom.InChannels = 3;
  Geom.OutChannels = 5;
  Geom.KernelH = Geom.KernelW = 3;
  Geom.Stride = 2;
  Geom.Padding = 1;
  const Tensor In = Tensor::randn({4, 3, 9, 9}, R, 1.0);
  const Tensor W = Tensor::randn({5, 3, 3, 3}, R, 0.5);
  const Tensor Bias = Tensor::randn({5}, R, 0.1);
  Tensor Fwd1, Fwd4;
  {
    ThreadCount Scope(1);
    Fwd1 = conv2d(In, W, Bias, Geom);
  }
  {
    ThreadCount Scope(4);
    Fwd4 = conv2d(In, W, Bias, Geom);
  }
  EXPECT_TRUE(bitIdentical(Fwd1, Fwd4));

  ConvGeometry TGeom;
  TGeom.InChannels = 5;
  TGeom.OutChannels = 3;
  TGeom.KernelH = TGeom.KernelW = 4;
  TGeom.Stride = 2;
  TGeom.Padding = 1;
  const Tensor TIn = relu(Tensor::randn({3, 5, 5, 5}, R, 1.0));
  const Tensor TW = Tensor::randn({5, 3, 4, 4}, R, 0.5);
  Tensor Up1, Up4;
  {
    ThreadCount Scope(1);
    Up1 = convTranspose2d(TIn, TW, Tensor(), TGeom);
  }
  {
    ThreadCount Scope(4);
    Up4 = convTranspose2d(TIn, TW, Tensor(), TGeom);
  }
  EXPECT_TRUE(bitIdentical(Up1, Up4));
}

// --- End-to-end propagation determinism -----------------------------------

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.8);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.5);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

struct PropagationSnapshot {
  std::vector<Region> Regions;
  PropagateStats Stats;
  size_t PeakBytes = 0;
};

PropagationSnapshot propagateAt(int64_t Threads) {
  ThreadCount Scope(Threads);
  Rng R(4242);
  Sequential Net = makeRandomMlp(R, {6, 24, 24, 4});
  const auto Layers = Net.view();
  const Shape InShape({1, 6});
  const Tensor E1 = Tensor::randn({1, 6}, R);
  const Tensor E2 = Tensor::randn({1, 6}, R);
  // A curve and a box region together exercise both ReLU transfer paths.
  std::vector<Region> Init{makeSegmentRegion(E1, E2, 0.75),
                           makeBoxRegion(E1, Tensor::randn({1, 6}, R, 0.01),
                                         0.25)};
  for (int64_t J = 0; J < 6; ++J)
    Init[1].Radius[J] = std::fabs(Init[1].Radius[J]);
  PropagateConfig Config;
  Config.EnableRelax = false;
  PropagationSnapshot Snap;
  DeviceMemoryModel Memory(64ull << 20);
  Snap.Regions = propagateRegions(Layers, InShape, std::move(Init), Config,
                                  Memory, Snap.Stats);
  Snap.PeakBytes = Memory.peakBytes();
  return Snap;
}

TEST(DeterminismTest, PropagationBitIdenticalAcrossThreadCounts) {
  const PropagationSnapshot Serial = propagateAt(1);
  const PropagationSnapshot Parallel = propagateAt(4);

  EXPECT_EQ(Serial.Stats.NumSplits, Parallel.Stats.NumSplits);
  EXPECT_EQ(Serial.Stats.MaxRegions, Parallel.Stats.MaxRegions);
  EXPECT_EQ(Serial.Stats.MaxNodes, Parallel.Stats.MaxNodes);
  EXPECT_EQ(Serial.Stats.NumBoxed, Parallel.Stats.NumBoxed);
  EXPECT_EQ(Serial.Stats.OutOfMemory, Parallel.Stats.OutOfMemory);
  EXPECT_EQ(Serial.PeakBytes, Parallel.PeakBytes);

  ASSERT_EQ(Serial.Regions.size(), Parallel.Regions.size());
  ASSERT_FALSE(Serial.Regions.empty());
  for (size_t I = 0; I < Serial.Regions.size(); ++I) {
    const Region &A = Serial.Regions[I];
    const Region &B = Parallel.Regions[I];
    ASSERT_EQ(A.Kind, B.Kind) << "region " << I;
    // Weights and parameter intervals are doubles produced by the same
    // FP operations; compare bitwise, not approximately.
    EXPECT_EQ(std::memcmp(&A.Weight, &B.Weight, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&A.T0, &B.T0, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&A.T1, &B.T1, sizeof(double)), 0);
    if (A.Kind == RegionKind::Curve) {
      EXPECT_TRUE(bitIdentical(A.Coeffs, B.Coeffs)) << "region " << I;
    } else {
      EXPECT_TRUE(bitIdentical(A.Center, B.Center)) << "region " << I;
      EXPECT_TRUE(bitIdentical(A.Radius, B.Radius)) << "region " << I;
    }
  }
}

// --- DeviceMemoryModel under concurrency ----------------------------------

TEST(MemoryModelConcurrencyTest, TryChargeHammer) {
  const size_t Budget = 10000;
  DeviceMemoryModel Memory(Budget);
  ThreadPool Pool(4);
  std::atomic<int64_t> Accepted{0}, Rejected{0};
  const int64_t N = 20000;
  Pool.parallelFor(N, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I) {
      // Sizes sweep 1..2*Budget: half fit, half must be rejected.
      const size_t Bytes = static_cast<size_t>(I % 20000) + 1;
      if (Memory.tryCharge(Bytes))
        Accepted.fetch_add(1);
      else
        Rejected.fetch_add(1);
    }
  });
  EXPECT_EQ(Accepted.load() + Rejected.load(), N);
  EXPECT_EQ(Accepted.load(), N / 2);
  // tryCharge never records a failing charge: the peak is the largest
  // accepted size, and the model is not exhausted.
  EXPECT_EQ(Memory.peakBytes(), Budget);
  EXPECT_FALSE(Memory.exhausted());
}

TEST(MemoryModelConcurrencyTest, ChargePeakIsCasMax) {
  DeviceMemoryModel Memory(0); // unlimited
  ThreadPool Pool(4);
  const int64_t N = 50000;
  Pool.parallelFor(N, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      Memory.charge(static_cast<size_t>(I) + 1);
  });
  // Concurrent charges must never lose the maximum.
  EXPECT_EQ(Memory.peakBytes(), static_cast<size_t>(N));
}

// --- |W| cache -------------------------------------------------------------

TEST(AbsWeightCacheTest, RebuildsOnInvalidateAndSurvivesConcurrentReads) {
  Rng R(5);
  Tensor W = Tensor::randn({8, 8}, R, 1.0);
  AbsWeightCache Cache;
  const Tensor &Abs = Cache.get(W);
  ASSERT_EQ(Abs.numel(), W.numel());
  for (int64_t I = 0; I < W.numel(); ++I)
    EXPECT_EQ(Abs[I], std::fabs(W[I]));
  // Same version: get() must not rebuild (same storage address).
  EXPECT_EQ(&Cache.get(W), &Abs);

  W[0] = -123.5;
  Cache.invalidate();
  EXPECT_EQ(Cache.get(W)[0], 123.5);

  // Concurrent readers on a stable version all see |W|.
  ThreadPool Pool(4);
  std::atomic<int64_t> Mismatches{0};
  Pool.parallelFor(2000, 1, [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I) {
      const Tensor &A = Cache.get(W);
      if (A[0] != 123.5)
        Mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST(AbsWeightCacheTest, LinearAccessorInvalidates) {
  Linear L(3, 2);
  L.weight() = Tensor({2, 3}, {1.0, -2.0, 3.0, -4.0, 5.0, -6.0});
  L.bias() = Tensor({2}, {0.0, 0.0});
  const Tensor Center({1, 3}, {0.0, 0.0, 0.0});
  const Tensor Radius({1, 3}, {1.0, 1.0, 1.0});
  Tensor C1 = Center.clone(), R1 = Radius.clone();
  L.applyToBox(C1, R1);
  // |W| row sums: 1+2+3 = 6, 4+5+6 = 15.
  EXPECT_DOUBLE_EQ(R1[0], 6.0);
  EXPECT_DOUBLE_EQ(R1[1], 15.0);
  // Mutating through the accessor must invalidate the cached |W|.
  L.weight()[0] = -10.0;
  Tensor C2 = Center.clone(), R2 = Radius.clone();
  L.applyToBox(C2, R2);
  EXPECT_DOUBLE_EQ(R2[0], 15.0);
  EXPECT_DOUBLE_EQ(R2[1], 15.0);
}

} // namespace
} // namespace genprove
