//===- tests/propagate_test.cpp - propagation soundness/exactness -*- C++ -*-===//

#include "src/core/genprove.h"
#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.8);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.5);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// Is the point on some curve piece at parameter T, or inside some box?
bool stateContains(const std::vector<Region> &Regions, double T,
                   const Tensor &Point, double Tol) {
  for (const Region &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      if (T < R.T0 - 1e-12 || T > R.T1 + 1e-12)
        continue;
      const Tensor P = evalCurve(R, T);
      bool Match = true;
      for (int64_t J = 0; J < P.numel() && Match; ++J)
        if (std::fabs(P[J] - Point[J]) > Tol)
          Match = false;
      if (Match)
        return true;
    } else {
      bool Inside = true;
      for (int64_t J = 0; J < Point.numel() && Inside; ++J)
        if (std::fabs(Point[J] - R.Center[J]) > R.Radius[J] + Tol)
          Inside = false;
      if (Inside)
        return true;
    }
  }
  return false;
}

class PropagateSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagateSoundness, ExactSegmentMatchesConcreteForward) {
  Rng R(GetParam());
  Sequential Net = makeRandomMlp(R, {4, 10, 8, 3});
  const auto Layers = Net.view();
  const Shape InShape({1, 4});

  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};

  PropagateConfig Config;
  Config.EnableRelax = false;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Layers, InShape, std::move(Init),
                                      Config, Memory, Stats);
  ASSERT_FALSE(Stats.OutOfMemory);
  ASSERT_FALSE(Final.empty());

  // Exact analysis: every sampled input maps exactly onto a curve piece.
  for (int Trial = 0; Trial < 60; ++Trial) {
    const double T = R.uniform();
    Tensor X({1, 4});
    for (int64_t J = 0; J < 4; ++J)
      X[J] = E1[J] + T * (E2[J] - E1[J]);
    const Tensor Y = forwardConcretePoints(Layers, InShape, X);
    EXPECT_TRUE(stateContains(Final, T, Y, 1e-6)) << "t = " << T;
  }

  // Weights of an exact analysis sum to 1.
  double TotalWeight = 0.0;
  for (const auto &Piece : Final)
    TotalWeight += Piece.Weight;
  EXPECT_NEAR(TotalWeight, 1.0, 1e-9);
}

TEST_P(PropagateSoundness, RelaxedSegmentStillCoversSamples) {
  Rng R(GetParam() + 100);
  // Relaxation fires before conv layers, so build a conv pipeline.
  Sequential ConvNet;
  {
    auto L = std::make_unique<Linear>(3, 2 * 4 * 4);
    L->weight() = Tensor::randn({32, 3}, R, 0.8);
    L->bias() = Tensor::randn({32}, R, 0.3);
    ConvNet.add(std::move(L));
    ConvNet.add(std::make_unique<ReLU>());
    ConvNet.add(std::make_unique<Reshape>(2, 4, 4));
    auto C = std::make_unique<Conv2d>(2, 3, 3, 1, 1);
    C->weight() = Tensor::randn({3, 2, 3, 3}, R, 0.6);
    C->bias() = Tensor::randn({3}, R, 0.3);
    ConvNet.add(std::move(C));
    ConvNet.add(std::make_unique<ReLU>());
    ConvNet.add(std::make_unique<Flatten>());
    auto L2 = std::make_unique<Linear>(3 * 4 * 4, 2);
    L2->weight() = Tensor::randn({2, 48}, R, 0.5);
    L2->bias() = Tensor::randn({2}, R, 0.3);
    ConvNet.add(std::move(L2));
  }
  const auto Layers = ConvNet.view();
  const Shape InShape({1, 3});

  Tensor E1 = Tensor::randn({1, 3}, R);
  Tensor E2 = Tensor::randn({1, 3}, R);
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};

  PropagateConfig Config;
  Config.EnableRelax = true;
  Config.Relax.RelaxPercent = 0.8; // aggressive boxing
  Config.Relax.ClusterK = 4.0;
  Config.Relax.NodeThreshold = 2; // relax even tiny chains
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Layers, InShape, std::move(Init),
                                      Config, Memory, Stats);
  ASSERT_FALSE(Stats.OutOfMemory);
  ASSERT_FALSE(Final.empty());

  // Soundness: every sampled output is inside the abstract state.
  for (int Trial = 0; Trial < 60; ++Trial) {
    const double T = R.uniform();
    Tensor X({1, 3});
    for (int64_t J = 0; J < 3; ++J)
      X[J] = E1[J] + T * (E2[J] - E1[J]);
    const Tensor Y = forwardConcretePoints(Layers, InShape, X);
    EXPECT_TRUE(stateContains(Final, T, Y, 1e-6)) << "t = " << T;
  }

  // Mass is preserved by relaxation.
  double TotalWeight = 0.0;
  for (const auto &Piece : Final)
    TotalWeight += Piece.Weight;
  EXPECT_NEAR(TotalWeight, 1.0, 1e-9);
}

TEST_P(PropagateSoundness, QuadraticCurveExact) {
  Rng R(GetParam() + 200);
  Sequential Net = makeRandomMlp(R, {3, 8, 6, 2});
  const auto Layers = Net.view();
  const Shape InShape({1, 3});

  Tensor A0 = Tensor::randn({1, 3}, R);
  Tensor A1 = Tensor::randn({1, 3}, R);
  Tensor A2 = Tensor::randn({1, 3}, R);
  std::vector<Region> Init{makeQuadraticRegion(A0, A1, A2)};

  PropagateConfig Config;
  Config.EnableRelax = false;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Layers, InShape, std::move(Init),
                                      Config, Memory, Stats);
  ASSERT_FALSE(Stats.OutOfMemory);

  for (int Trial = 0; Trial < 60; ++Trial) {
    const double T = R.uniform();
    Tensor X({1, 3});
    for (int64_t J = 0; J < 3; ++J)
      X[J] = A0[J] + A1[J] * T + A2[J] * T * T;
    const Tensor Y = forwardConcretePoints(Layers, InShape, X);
    EXPECT_TRUE(stateContains(Final, T, Y, 1e-6)) << "t = " << T;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagateSoundness,
                         ::testing::Values(1u, 7u, 42u, 1234u, 9999u));

TEST(Propagate, BoxRegionThroughReluIsIntervalRelu) {
  Sequential Net;
  Net.add(std::make_unique<ReLU>());
  Tensor C({1, 2}, {-1.0, 2.0});
  Tensor R({1, 2}, {0.5, 1.0});
  std::vector<Region> Init{makeBoxRegion(C, R, 1.0)};
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Net.view(), Shape({1, 2}),
                                      std::move(Init), Config, Memory, Stats);
  ASSERT_EQ(Final.size(), 1u);
  // Dim 0: [-1.5, -0.5] -> [0, 0]; dim 1: [1, 3] unchanged.
  EXPECT_NEAR(Final[0].Center[0], 0.0, 1e-12);
  EXPECT_NEAR(Final[0].Radius[0], 0.0, 1e-12);
  EXPECT_NEAR(Final[0].Center[1], 2.0, 1e-12);
  EXPECT_NEAR(Final[0].Radius[1], 1.0, 1e-12);
}

TEST(Propagate, SegmentSplitCountMatchesCrossings) {
  // One linear layer to 2 dims; crossings at t = 0.25 and t = 0.75.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 2);
  L->weight() = Tensor({2, 1}, {1.0, 1.0});
  L->bias() = Tensor({2}, {-0.25, -0.75});
  Net.add(std::move(L));
  Net.add(std::make_unique<ReLU>());

  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Net.view(), Shape({1, 1}),
                                      std::move(Init), Config, Memory, Stats);
  EXPECT_EQ(Final.size(), 3u);
  EXPECT_EQ(Stats.NumSplits, 2);
  // Weights: 0.25, 0.5, 0.25 under the uniform distribution.
  double Weights[3] = {Final[0].Weight, Final[1].Weight, Final[2].Weight};
  std::sort(Weights, Weights + 3);
  EXPECT_NEAR(Weights[0], 0.25, 1e-9);
  EXPECT_NEAR(Weights[1], 0.25, 1e-9);
  EXPECT_NEAR(Weights[2], 0.5, 1e-9);
}

TEST(Propagate, MemoryBudgetTriggersOom) {
  Rng R(77);
  Sequential Net = makeRandomMlp(R, {4, 64, 64, 8});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};
  PropagateConfig Config;
  DeviceMemoryModel Memory(128); // absurdly small budget
  PropagateStats Stats;
  const auto Final = propagateRegions(Net.view(), Shape({1, 4}),
                                      std::move(Init), Config, Memory, Stats);
  EXPECT_TRUE(Stats.OutOfMemory);
  EXPECT_TRUE(Final.empty());
  EXPECT_TRUE(Memory.exhausted());
}

TEST(Propagate, ArcsineCdfWeightsSplits) {
  // Crossing at t = 0.5; arcsine CDF gives F(0.5) = 0.5 (symmetric), but a
  // crossing at t = 0.25 gives F(0.25) = 2/pi * asin(0.5) = 1/3.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {1.0});
  L->bias() = Tensor({1}, {-0.25});
  Net.add(std::move(L));
  Net.add(std::make_unique<ReLU>());

  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};
  PropagateConfig Config;
  Config.Cdf = [](double T) {
    return 2.0 / M_PI * std::asin(std::sqrt(std::clamp(T, 0.0, 1.0)));
  };
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Net.view(), Shape({1, 1}),
                                      std::move(Init), Config, Memory, Stats);
  ASSERT_EQ(Final.size(), 2u);
  double WLow = Final[0].T0 < 0.1 ? Final[0].Weight : Final[1].Weight;
  EXPECT_NEAR(WLow, 1.0 / 3.0, 1e-9);
}

} // namespace
} // namespace genprove
