//===- tests/consistency_test.cpp - consistency evaluation ------*- C++ -*-===//

#include "src/core/consistency.h"
#include "src/data/synth_faces.h"
#include "src/data/synth_shoes.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

TEST(Pairs, SameClassPairsShareLabels) {
  const Dataset Set = makeSynthShoes(200, 16, 1);
  Rng R(1);
  const auto Pairs = sameClassPairs(Set, 30, R);
  EXPECT_EQ(Pairs.size(), 30u);
  for (const auto &P : Pairs) {
    EXPECT_NE(P.First, P.Second);
    EXPECT_EQ(Set.Labels[static_cast<size_t>(P.First)],
              Set.Labels[static_cast<size_t>(P.Second)]);
  }
}

TEST(Pairs, SameAttributePairsShareAllAttributes) {
  const Dataset Set = makeSynthFaces(400, 16, 2);
  Rng R(2);
  const auto Pairs = sameAttributePairs(Set, 20, R);
  EXPECT_FALSE(Pairs.empty());
  for (const auto &P : Pairs) {
    EXPECT_NE(P.First, P.Second);
    for (int64_t J = 0; J < Set.numAttributes(); ++J)
      EXPECT_DOUBLE_EQ(Set.Attributes.at(P.First, J),
                       Set.Attributes.at(P.Second, J));
  }
}

TEST(Pairs, FlipPairsSelfPaired) {
  Rng R(3);
  const auto Pairs = flipPairs(50, 10, R);
  EXPECT_EQ(Pairs.size(), 10u);
  for (const auto &P : Pairs) {
    EXPECT_EQ(P.First, P.Second);
    EXPECT_LT(P.First, 50);
  }
}

/// Small end-to-end consistency run over a lightly trained VAE + detector.
TEST(Consistency, EvaluationProducesCoherentReport) {
  const Dataset Set = makeSynthFaces(150, 16, 4);
  Rng R(4);
  Sequential Enc = makeEncoderSmall(3, 16, 2 * 4);
  Sequential Dec = makeDecoderSmall(4, 3, 16);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  Vae Model(std::move(Enc), std::move(Dec), 4);
  Vae::Config VC;
  VC.Epochs = 1;
  Model.train(Set, VC, R);

  Sequential Detector = makeConvSmall(3, 16, Set.numAttributes());
  kaimingInit(Detector, R);

  const auto Pairs = sameAttributePairs(Set, 4, R);
  ASSERT_FALSE(Pairs.empty());

  GenProveConfig Config;
  Config.RelaxPercent = 0.1;
  Config.ClusterK = 20.0;
  Config.NodeThreshold = 100;
  const GenProve Analyzer(Config);
  const ConsistencyReport Report = evaluateConsistency(
      Analyzer, Model, Detector, Set, Pairs, SpecTarget::AllAttributes);

  EXPECT_EQ(Report.NumBounds,
            static_cast<int64_t>(Pairs.size()) * Set.numAttributes());
  EXPECT_GE(Report.MeanLower, 0.0);
  EXPECT_LE(Report.MeanUpper, 1.0);
  EXPECT_LE(Report.MeanLower, Report.MeanUpper + 1e-12);
  EXPECT_GE(Report.MeanWidth, 0.0);
  EXPECT_GE(Report.FractionNonTrivial, 0.0);
  EXPECT_LE(Report.FractionNonTrivial, 1.0);
}

/// Every class and every attribute signature a singleton: no usable pair
/// exists and the samplers must fail loudly instead of quietly returning
/// fewer (or zero) pairs.
Dataset degenerateSet() {
  Dataset Set;
  Set.Images = Tensor({3, 1, 2, 2});
  Set.Labels = {0, 1, 2};
  Set.Attributes = Tensor({3, 2});
  Set.Attributes.at(0, 0) = 1.0;
  Set.Attributes.at(1, 1) = 1.0;
  Set.ClassNames = {"a", "b", "c"};
  Set.Channels = 1;
  Set.Size = 2;
  return Set;
}

TEST(PairsDeathTest, SameClassPairsRejectsAllSingletonClasses) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Dataset Set = degenerateSet();
  Rng R(7);
  EXPECT_DEATH(sameClassPairs(Set, 5, R), "no class has two or more images");
}

TEST(PairsDeathTest, SameAttributePairsRejectsUniqueSignatures) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Dataset Set = degenerateSet();
  Rng R(8);
  EXPECT_DEATH(sameAttributePairs(Set, 5, R),
               "every attribute signature is unique");
}

TEST(Pairs, DegenerateSetWithZeroRequestedPairsIsFine) {
  const Dataset Set = degenerateSet();
  Rng R(9);
  EXPECT_TRUE(sameClassPairs(Set, 0, R).empty());
  EXPECT_TRUE(sameAttributePairs(Set, 0, R).empty());
}

TEST(Consistency, ExactAnalysisGivesZeroWidths) {
  const Dataset Set = makeSynthShoes(100, 16, 5);
  Rng R(5);
  Sequential Enc = makeEncoderSmall(3, 16, 2 * 4);
  Sequential Dec = makeDecoderSmall(4, 3, 16);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  Vae Model(std::move(Enc), std::move(Dec), 4);
  Vae::Config VC;
  VC.Epochs = 1;
  Model.train(Set, VC, R);

  Sequential Classifier = makeConvSmall(3, 16, Set.numClasses());
  kaimingInit(Classifier, R);

  const auto Pairs = sameClassPairs(Set, 2, R);
  GenProveConfig Config; // exact (p = 0), unlimited memory
  const GenProve Analyzer(Config);
  const ConsistencyReport Report = evaluateConsistency(
      Analyzer, Model, Classifier, Set, Pairs, SpecTarget::ClassLabel);
  EXPECT_EQ(Report.FractionOom, 0.0);
  EXPECT_NEAR(Report.MeanWidth, 0.0, 1e-9);
}

} // namespace
} // namespace genprove
