//===- tests/adversarial_train_test.cpp - attacks and IBP -------*- C++ -*-===//

#include "src/data/synth_digits.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/train/adversarial.h"
#include "src/train/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(Attacks, FgsmStaysInEpsilonBallAndImageRange) {
  const Dataset Set = makeSynthDigits(32, 16, 1);
  Sequential Net = makeConvSmall(1, 16, 10);
  Rng R(1);
  kaimingInit(Net, R);
  std::vector<int64_t> Idx, Labels;
  for (int64_t I = 0; I < 16; ++I) {
    Idx.push_back(I);
    Labels.push_back(Set.Labels[static_cast<size_t>(I)]);
  }
  const Tensor Batch = gatherImages(Set, Idx);
  const double Eps = 0.07;
  const Tensor Adv = fgsmAttack(Net, Batch, Labels, Eps);
  for (int64_t I = 0; I < Adv.numel(); ++I) {
    EXPECT_LE(std::fabs(Adv[I] - Batch[I]), Eps + 1e-12);
    EXPECT_GE(Adv[I], 0.0);
    EXPECT_LE(Adv[I], 1.0);
  }
}

TEST(Attacks, PgdStaysInEpsilonBall) {
  const Dataset Set = makeSynthDigits(16, 16, 2);
  Sequential Net = makeConvSmall(1, 16, 10);
  Rng R(2);
  kaimingInit(Net, R);
  std::vector<int64_t> Idx, Labels;
  for (int64_t I = 0; I < 8; ++I) {
    Idx.push_back(I);
    Labels.push_back(Set.Labels[static_cast<size_t>(I)]);
  }
  const Tensor Batch = gatherImages(Set, Idx);
  const double Eps = 0.1;
  const Tensor Adv = pgdAttack(Net, Batch, Labels, Eps, 5, 0.05, R);
  for (int64_t I = 0; I < Adv.numel(); ++I)
    EXPECT_LE(std::fabs(Adv[I] - Batch[I]), Eps + 1e-12);
}

TEST(Attacks, PgdReducesAccuracyOfStandardNet) {
  const Dataset Train = makeSynthDigits(400, 16, 3);
  const Dataset Test = makeSynthDigits(80, 16, 4);
  Sequential Net = makeConvSmall(1, 16, 10);
  Rng R(3);
  kaimingInit(Net, R);
  TrainConfig Config;
  Config.Epochs = 4;
  Config.BatchSize = 32;
  trainClassifier(Net, Train, Config, R);
  const double Clean = classifierAccuracy(Net, Test);
  const double Robust = pgdAccuracy(Net, Test, 0.15, 5, R);
  EXPECT_LE(Robust, Clean + 1e-9);
}

TEST(Ibp, BoundsContainConcretePerturbations) {
  Sequential Net = makeConvSmall(1, 12, 4);
  Rng R(4);
  kaimingInit(Net, R);
  Tensor X = Tensor::rand({2, 1, 12, 12}, R);
  const double Eps = 0.05;
  Tensor Lo = X.clone(), Hi = X.clone();
  for (int64_t I = 0; I < X.numel(); ++I) {
    Lo[I] -= Eps;
    Hi[I] += Eps;
  }
  const IbpBounds Bounds = ibpForward(Net, Lo, Hi);
  for (int Trial = 0; Trial < 60; ++Trial) {
    Tensor Xp = X.clone();
    for (int64_t I = 0; I < Xp.numel(); ++I)
      Xp[I] += R.uniform(-Eps, Eps);
    const Tensor Y = Net.forward(Xp);
    for (int64_t I = 0; I < Y.numel(); ++I) {
      EXPECT_GE(Y[I], Bounds.Lo[I] - 1e-9);
      EXPECT_LE(Y[I], Bounds.Hi[I] + 1e-9);
    }
  }
}

TEST(Ibp, ZeroEpsilonBoundsCollapseToForward) {
  Sequential Net = makeConvSmall(1, 10, 3);
  Rng R(5);
  kaimingInit(Net, R);
  Tensor X = Tensor::rand({1, 1, 10, 10}, R);
  const IbpBounds Bounds = ibpForward(Net, X, X);
  const Tensor Y = Net.forward(X);
  for (int64_t I = 0; I < Y.numel(); ++I) {
    EXPECT_NEAR(Bounds.Lo[I], Y[I], 1e-9);
    EXPECT_NEAR(Bounds.Hi[I], Y[I], 1e-9);
  }
}

TEST(Ibp, BackwardMatchesFiniteDifferences) {
  // Loss = sum(0.5 * lo'^2) + sum(0.5 * hi'^2) over the IBP output bounds;
  // analytic parameter gradients must match central differences.
  Rng R(31);
  Sequential Net = makeConvSmall(1, 6, 3);
  kaimingInit(Net, R);
  Tensor X = Tensor::rand({2, 1, 6, 6}, R);
  const double Eps = 0.1;
  Tensor Lo = X.clone(), Hi = X.clone();
  for (int64_t I = 0; I < X.numel(); ++I) {
    Lo[I] -= Eps;
    Hi[I] += Eps;
  }

  auto Loss = [&]() {
    const IbpBounds B = ibpForward(Net, Lo, Hi);
    double L = 0.0;
    for (int64_t I = 0; I < B.Lo.numel(); ++I)
      L += 0.5 * B.Lo[I] * B.Lo[I] + 0.5 * B.Hi[I] * B.Hi[I];
    return L;
  };

  Net.zeroGrads();
  std::vector<IbpCache> Caches;
  const IbpBounds B = ibpForwardCached(Net, Lo, Hi, Caches);
  ibpBackward(Net, Caches, B.Lo.clone(), B.Hi.clone());

  const double Fd = 1e-5;
  for (auto &P : Net.params()) {
    Tensor &W = *P.Value;
    Tensor &G = *P.Grad;
    const int64_t Checks = std::min<int64_t>(W.numel(), 10);
    for (int64_t C = 0; C < Checks; ++C) {
      const int64_t I = (C * 7919) % W.numel();
      const double Orig = W[I];
      W[I] = Orig + Fd;
      const double Lp = Loss();
      W[I] = Orig - Fd;
      const double Lm = Loss();
      W[I] = Orig;
      const double Expected = (Lp - Lm) / (2 * Fd);
      EXPECT_NEAR(G[I], Expected, 1e-4 * std::max(1.0, std::fabs(Expected)))
          << P.Name << " index " << I;
    }
  }
}

TEST(Ibp, DiffAiTrainingImprovesProvableAccuracy) {
  // The crux of Table 6: certified training is the only scheme with
  // non-zero Box-provable accuracy at meaningful epsilon. Settings match
  // the validated CPU-scale schedule (slow ramp, balanced gradients).
  const Dataset Train = makeSynthDigits(600, 16, 6);
  const Dataset Test = makeSynthDigits(100, 16, 7);
  const double Eps = 0.03;

  Sequential Standard = makeConvSmall(1, 16, 10);
  Sequential Certified = makeConvSmall(1, 16, 10);
  Rng R1(8), R2(8);
  kaimingInit(Standard, R1);
  kaimingInit(Certified, R2);

  RobustTrainConfig Config;
  Config.Epochs = 30;
  Config.BatchSize = 32;
  Config.Epsilon = Eps;
  Config.LearningRate = 3e-4;
  Rng Ra(9), Rb(9);
  {
    RobustTrainConfig Quick = Config;
    Quick.Epochs = 5;
    Quick.LearningRate = 1e-3;
    trainRobustClassifier(Standard, Train, TrainScheme::Standard, Quick, Ra);
  }
  trainRobustClassifier(Certified, Train, TrainScheme::DiffAiBox, Config, Rb);

  const double ProvableStandard = boxProvableAccuracy(Standard, Test, Eps);
  const double ProvableCertified = boxProvableAccuracy(Certified, Test, Eps);
  EXPECT_GT(ProvableCertified, ProvableStandard);
  EXPECT_GT(ProvableCertified, 0.2);
}

TEST(Ibp, FgsmTrainingKeepsCleanAccuracy) {
  const Dataset Train = makeSynthDigits(300, 16, 10);
  const Dataset Test = makeSynthDigits(60, 16, 11);
  Sequential Net = makeConvSmall(1, 16, 10);
  Rng R(12);
  kaimingInit(Net, R);
  RobustTrainConfig Config;
  Config.Epochs = 4;
  Config.BatchSize = 32;
  Config.Epsilon = 0.1;
  trainRobustClassifier(Net, Train, TrainScheme::Fgsm, Config, R);
  EXPECT_GT(classifierAccuracy(Net, Test), 0.5);
}

} // namespace
} // namespace genprove
