//===- tests/spec_test.cpp - output spec and bound computation --*- C++ -*-===//

#include "src/core/distribution.h"
#include "src/core/spec.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

TEST(Spec, ArgmaxMembership) {
  const OutputSpec Spec = OutputSpec::argmaxWins(1, 3);
  EXPECT_TRUE(Spec.satisfied(Tensor({1, 3}, {0.0, 2.0, 1.0})));
  EXPECT_FALSE(Spec.satisfied(Tensor({1, 3}, {3.0, 2.0, 1.0})));
  // Ties are not strict wins.
  EXPECT_FALSE(Spec.satisfied(Tensor({1, 3}, {2.0, 2.0, 1.0})));
}

TEST(Spec, AttributeSignMembership) {
  const OutputSpec Pos = OutputSpec::attributeSign(2, true, 4);
  EXPECT_TRUE(Pos.satisfied(Tensor({1, 4}, {0.0, 0.0, 0.5, 0.0})));
  EXPECT_FALSE(Pos.satisfied(Tensor({1, 4}, {0.0, 0.0, -0.5, 0.0})));
  const OutputSpec Neg = OutputSpec::attributeSign(0, false, 4);
  EXPECT_TRUE(Neg.satisfied(Tensor({1, 4}, {-1.0, 0.0, 0.0, 0.0})));
}

TEST(Spec, BoxContainmentAndIntersectionForArgmax) {
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  // Box: y0 in [2, 3], y1 in [0, 1] -> fully contained.
  Tensor C({1, 2}, {2.5, 0.5});
  Tensor R({1, 2}, {0.5, 0.5});
  EXPECT_TRUE(Spec.boxContained(C, R));
  EXPECT_TRUE(Spec.boxIntersects(C, R));
  // Box: y0 in [0, 1], y1 in [2, 3] -> disjoint.
  Tensor C2({1, 2}, {0.5, 2.5});
  EXPECT_FALSE(Spec.boxContained(C2, R));
  EXPECT_FALSE(Spec.boxIntersects(C2, R));
  // Box straddling the boundary.
  Tensor C3({1, 2}, {1.0, 1.0});
  EXPECT_FALSE(Spec.boxContained(C3, R));
  EXPECT_TRUE(Spec.boxIntersects(C3, R));
}

TEST(Spec, CurveMassExactForKnownCrossing) {
  // Segment in 2-D output space from (1, 0) to (0, 1): argmax 0 wins for
  // t < 0.5 exactly.
  Tensor A({1, 2}, {1.0, 0.0});
  Tensor B({1, 2}, {0.0, 1.0});
  const Region Seg = makeSegmentRegion(A, B);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  EXPECT_NEAR(curveMassInside(Seg, Spec), 0.5, 1e-12);
}

TEST(Spec, CurveMassRespectsArcsineCdf) {
  // Same crossing at t = 0.5; arcsine is symmetric -> still 0.5. Crossing
  // at t = 0.25 (via a scaled segment) gives F(0.25) = 1/3.
  Tensor A({1, 1}, {0.25});
  Tensor B({1, 1}, {-0.75}); // crosses 0 at t = 0.25
  const Region Seg = makeSegmentRegion(A, B);
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  const auto Cdf = makeCdf(ParamDistribution::Arcsine);
  EXPECT_NEAR(curveMassInside(Seg, Spec, Cdf), 1.0 / 3.0, 1e-9);
}

TEST(Spec, CurveMassQuadraticTwoCrossings) {
  // Output component (t - 0.25)(t - 0.75): positive outside [0.25, 0.75].
  Tensor A0({1, 1}, {0.1875});
  Tensor A1({1, 1}, {-1.0});
  Tensor A2({1, 1}, {1.0});
  const Region Q = makeQuadraticRegion(A0, A1, A2);
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  EXPECT_NEAR(curveMassInside(Q, Spec), 0.5, 1e-9);
}

TEST(Spec, ComputeProbBoundsMixesSegmentsAndBoxes) {
  // A segment fully inside D with weight 0.4, a box inside with 0.3, a box
  // straddling with 0.2, a box outside with 0.1.
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  std::vector<Region> Regions;
  Regions.push_back(makeSegmentRegion(Tensor({1, 1}, {1.0}),
                                      Tensor({1, 1}, {2.0}), 0.4));
  Regions.back().Weight = 0.4;
  Regions.push_back(
      makeBoxRegion(Tensor({1, 1}, {3.0}), Tensor({1, 1}, {0.5}), 0.3));
  Regions.push_back(
      makeBoxRegion(Tensor({1, 1}, {0.0}), Tensor({1, 1}, {0.5}), 0.2));
  Regions.push_back(
      makeBoxRegion(Tensor({1, 1}, {-3.0}), Tensor({1, 1}, {0.5}), 0.1));
  const ProbBounds Bounds = computeProbBounds(Regions, Spec);
  EXPECT_NEAR(Bounds.Lower, 0.7, 1e-9); // 0.4 + 0.3
  EXPECT_NEAR(Bounds.Upper, 0.9, 1e-9); // 0.4 + 0.3 + 0.2
}

TEST(Spec, DeterministicCollapse) {
  EXPECT_DOUBLE_EQ((ProbBounds{1.0, 1.0, false}).deterministic().Lower, 1.0);
  EXPECT_DOUBLE_EQ((ProbBounds{0.0, 0.0, false}).deterministic().Upper, 0.0);
  const ProbBounds Mid{0.3, 0.8, false};
  EXPECT_DOUBLE_EQ(Mid.deterministic().Lower, 0.0);
  EXPECT_DOUBLE_EQ(Mid.deterministic().Upper, 1.0);
  EXPECT_FALSE(Mid.deterministic().nonTrivial());
  EXPECT_TRUE(Mid.nonTrivial());
  const ProbBounds Oom{0.5, 0.6, true};
  EXPECT_TRUE(Oom.deterministic().OutOfMemory);
}

TEST(Spec, SegmentWeightScalesPartialMass) {
  // Segment crossing at its middle but carrying weight 0.5 over a
  // sub-interval: the inside mass should be half its weight.
  Tensor A({1, 1}, {1.0});
  Tensor B({1, 1}, {-1.0});
  const Region Seg = makeSegmentRegion(A, B, 0.5, 0.2, 0.6);
  // Crossing of gamma at global t where value = 0: the segment spans
  // values 1 -> -1 over [0.2, 0.6], so zero at t = 0.4 (its middle).
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  EXPECT_NEAR(curveMassInside(Seg, Spec), 0.25, 1e-9);
}

} // namespace
} // namespace genprove
