//===- tests/generative_train_test.cpp - GAN/FactorVAE/ACAI -----*- C++ -*-===//

#include "src/data/synth_faces.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/train/acai.h"
#include "src/train/factor_vae.h"
#include "src/train/gan.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

bool allFinite(const Tensor &T) {
  for (int64_t I = 0; I < T.numel(); ++I)
    if (!std::isfinite(T[I]))
      return false;
  return true;
}

TEST(Gan, TrainingRunsAndKeepsWeightsFinite) {
  const Dataset Set = makeSynthFaces(80, 16, 1);
  Rng R(1);
  Sequential Gen = makeDecoder(8, 3, 16);
  Sequential Disc = makeEncoderSmall(3, 16, 1);
  kaimingInit(Gen, R);
  kaimingInit(Disc, R);
  Gan Model(std::move(Gen), std::move(Disc), 8);
  Gan::Config Config;
  Config.Epochs = 1;
  Config.BatchSize = 16;
  Model.train(Set, Config, R);

  Tensor Noise = Tensor::randn({2, 8}, R);
  const Tensor Fake = Model.generator().predict(Noise);
  EXPECT_TRUE(allFinite(Fake));
  const Tensor Score = Model.discriminator().predict(Fake);
  EXPECT_EQ(Score.shape(), Shape({2, 1}));
  EXPECT_TRUE(allFinite(Score));
}

TEST(Gan, DiscriminatorMovesRealScoresTowardOne) {
  // LSGAN trains D(real) -> 1; after a few epochs the mean real score
  // must sit closer to 1 than an untrained discriminator's.
  const Dataset Set = makeSynthFaces(120, 16, 2);
  Rng R(2);
  Sequential Gen = makeDecoder(8, 3, 16);
  Sequential Disc = makeEncoderSmall(3, 16, 1);
  kaimingInit(Gen, R);
  kaimingInit(Disc, R);
  Gan Model(std::move(Gen), std::move(Disc), 8);

  auto MeanRealScore = [&]() {
    double Score = 0.0;
    for (int64_t I = 0; I < 16; ++I)
      Score += Model.discriminator().predict(Set.image(I))[0];
    return Score / 16.0;
  };
  const double Before = MeanRealScore();

  Gan::Config Config;
  Config.Epochs = 3;
  Config.BatchSize = 16;
  Model.train(Set, Config, R);
  const double After = MeanRealScore();
  EXPECT_LT(std::fabs(After - 1.0), std::fabs(Before - 1.0) + 0.1);
  EXPECT_GT(After, 0.3);
}

TEST(FactorVae, TrainingRunsAndEncodes) {
  const Dataset Set = makeSynthFaces(80, 16, 3);
  Rng R(3);
  Sequential Enc = makeEncoderSmall(3, 16, 2 * 6);
  Sequential Dec = makeDecoder(6, 3, 16);
  Sequential Critic = makeMlp({6, 32, 32, 2});
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  kaimingInit(Critic, R);
  FactorVae Model(std::move(Enc), std::move(Dec), std::move(Critic), 6);
  FactorVae::Config Config;
  Config.Epochs = 1;
  Config.BatchSize = 16;
  Model.train(Set, Config, R);

  const Tensor Z = Model.encode(Set.image(0));
  EXPECT_EQ(Z.shape(), Shape({1, 6}));
  EXPECT_TRUE(allFinite(Z));
  const Tensor X = Model.decode(Z);
  EXPECT_EQ(X.shape(), Shape({1, 3, 16, 16}));
  EXPECT_TRUE(allFinite(X));
}

TEST(Acai, TrainingReducesReconstructionError) {
  const Dataset Set = makeSynthFaces(100, 16, 4);
  Rng R(4);
  Sequential Enc = makeEncoderSmall(3, 16, 6);
  Sequential Dec = makeDecoder(6, 3, 16);
  Sequential Critic = makeEncoderSmall(3, 16, 1);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  kaimingInit(Critic, R);
  Acai Model(std::move(Enc), std::move(Dec), std::move(Critic), 6);

  auto ReconError = [&]() {
    double Err = 0.0;
    for (int64_t I = 0; I < 10; ++I) {
      const Tensor X = Set.image(I);
      const Tensor Y = Model.decode(Model.encode(X));
      for (int64_t J = 0; J < X.numel(); ++J)
        Err += (X[J] - Y[J]) * (X[J] - Y[J]);
    }
    return Err;
  };

  const double Before = ReconError();
  Acai::Config Config;
  Config.Epochs = 2;
  Config.BatchSize = 16;
  Model.train(Set, Config, R);
  const double After = ReconError();
  EXPECT_LT(After, Before);
}

TEST(Acai, InterpolationsDecodeFinite) {
  const Dataset Set = makeSynthFaces(60, 16, 5);
  Rng R(5);
  Sequential Enc = makeEncoderSmall(3, 16, 4);
  Sequential Dec = makeDecoderSmall(4, 3, 16);
  Sequential Critic = makeEncoderSmall(3, 16, 1);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  kaimingInit(Critic, R);
  Acai Model(std::move(Enc), std::move(Dec), std::move(Critic), 4);
  Acai::Config Config;
  Config.Epochs = 1;
  Config.BatchSize = 16;
  Model.train(Set, Config, R);

  const Tensor Z1 = Model.encode(Set.image(0));
  const Tensor Z2 = Model.encode(Set.image(1));
  for (double Alpha : {0.25, 0.5, 0.75}) {
    Tensor Z({1, 4});
    for (int64_t J = 0; J < 4; ++J)
      Z[J] = (1 - Alpha) * Z1[J] + Alpha * Z2[J];
    EXPECT_TRUE(allFinite(Model.decode(Z)));
  }
}

} // namespace
} // namespace genprove
