//===- tests/genprove_test.cpp - end-to-end verifier tests ------*- C++ -*-===//

#include "src/core/genprove.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims,
                         double Scale = 0.8) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, Scale);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.4);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// Empirical probability of spec satisfaction along the segment.
double empiricalProbability(Sequential &Net, const Tensor &E1,
                            const Tensor &E2, const OutputSpec &Spec,
                            int64_t NumSamples, Rng &R,
                            ParamDistribution Dist = ParamDistribution::Uniform) {
  int64_t Sat = 0;
  for (int64_t I = 0; I < NumSamples; ++I) {
    const double T = sampleParam(Dist, R);
    Tensor X({1, E1.numel()});
    for (int64_t J = 0; J < E1.numel(); ++J)
      X[J] = E1[J] + T * (E2[J] - E1[J]);
    if (Spec.satisfied(Net.forward(X)))
      ++Sat;
  }
  return static_cast<double>(Sat) / static_cast<double>(NumSamples);
}

class GenProveExactness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenProveExactness, ExactBoundsBracketEmpiricalProbability) {
  Rng R(GetParam());
  Sequential Net = makeRandomMlp(R, {4, 12, 10, 3});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(1, 3);

  GenProveConfig Config;
  Config.RelaxPercent = 0.0; // exact
  const GenProve Analyzer(Config);
  const AnalysisResult Result =
      Analyzer.analyzeSegment(Net.view(), Shape({1, 4}), E1, E2, Spec);
  ASSERT_FALSE(Result.OutOfMemory);
  // Exact analysis: zero width.
  EXPECT_NEAR(Result.Bounds.width(), 0.0, 1e-9);

  const double Emp = empiricalProbability(Net, E1, E2, Spec, 4000, R);
  EXPECT_NEAR(Result.Bounds.Lower, Emp, 0.03);
}

TEST_P(GenProveExactness, RelaxedBoundsAreSoundAndOrdered) {
  Rng R(GetParam() + 50);
  Sequential Net = makeRandomMlp(R, {4, 16, 12, 3});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 3);

  GenProveConfig Exact;
  Exact.RelaxPercent = 0.0;
  const AnalysisResult ExactResult = GenProve(Exact).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);

  GenProveConfig Relaxed;
  Relaxed.RelaxPercent = 0.5;
  Relaxed.ClusterK = 10.0;
  Relaxed.NodeThreshold = 4;
  const AnalysisResult RelaxedResult = GenProve(Relaxed).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);

  // Relaxed bounds must contain the exact probability.
  EXPECT_LE(RelaxedResult.Bounds.Lower, ExactResult.Bounds.Lower + 1e-9);
  EXPECT_GE(RelaxedResult.Bounds.Upper, ExactResult.Bounds.Upper - 1e-9);
  EXPECT_LE(RelaxedResult.Bounds.Lower, RelaxedResult.Bounds.Upper);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenProveExactness,
                         ::testing::Values(1u, 3u, 17u, 101u));

TEST(GenProve, DeterministicModeCollapses) {
  Rng R(7);
  Sequential Net = makeRandomMlp(R, {3, 8, 2});
  Tensor E1 = Tensor::randn({1, 3}, R);
  Tensor E2 = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Config;
  Config.Mode = AnalysisMode::Deterministic;
  const AnalysisResult Result = GenProve(Config).analyzeSegment(
      Net.view(), Shape({1, 3}), E1, E2, Spec);
  const bool IsZero =
      Result.Bounds.Lower == 0.0 && Result.Bounds.Upper == 0.0;
  const bool IsOne = Result.Bounds.Lower == 1.0 && Result.Bounds.Upper == 1.0;
  const bool IsTrivial =
      Result.Bounds.Lower == 0.0 && Result.Bounds.Upper == 1.0;
  EXPECT_TRUE(IsZero || IsOne || IsTrivial);
}

TEST(GenProve, RefinementScheduleRecoversFromOom) {
  Rng R(8);
  Sequential Net = makeRandomMlp(R, {4, 48, 48, 48, 2}, 1.0);
  Tensor E1 = Tensor::randn({1, 4}, R, 2.0);
  Tensor E2 = Tensor::randn({1, 4}, R, 2.0);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  // Budget small enough that exact analysis overflows...
  GenProveConfig NoSchedule;
  NoSchedule.MemoryBudgetBytes = 24 * 1024;
  const AnalysisResult Fail = GenProve(NoSchedule).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);

  // ... but the schedule relaxes until it fits. Relaxation only fires
  // before convolutional layers, so give the schedule an MLP-free pipeline
  // is moot here; instead verify the schedule at least retried.
  GenProveConfig WithSchedule = NoSchedule;
  WithSchedule.Schedule = RefinementSchedule::A;
  WithSchedule.NodeThreshold = 4;
  const AnalysisResult Retry = GenProve(WithSchedule).analyzeSegment(
      Net.view(), Shape({1, 4}), E1, E2, Spec);
  if (Fail.OutOfMemory) {
    EXPECT_GT(Retry.Retries, 0);
  }
}

TEST(GenProve, QuadraticCurveExactBounds) {
  Rng R(9);
  Sequential Net = makeRandomMlp(R, {3, 10, 8, 2});
  Tensor A0 = Tensor::randn({1, 3}, R);
  Tensor A1 = Tensor::randn({1, 3}, R);
  Tensor A2 = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Config;
  const AnalysisResult Result = GenProve(Config).analyzeQuadratic(
      Net.view(), Shape({1, 3}), A0, A1, A2, Spec);
  ASSERT_FALSE(Result.OutOfMemory);
  EXPECT_NEAR(Result.Bounds.width(), 0.0, 1e-9);

  // Compare against dense sampling of the curve.
  int64_t Sat = 0;
  const int64_t N = 4000;
  for (int64_t I = 0; I < N; ++I) {
    const double T = (static_cast<double>(I) + 0.5) / N;
    Tensor X({1, 3});
    for (int64_t J = 0; J < 3; ++J)
      X[J] = A0[J] + A1[J] * T + A2[J] * T * T;
    if (Spec.satisfied(Net.forward(X)))
      ++Sat;
  }
  EXPECT_NEAR(Result.Bounds.Lower, static_cast<double>(Sat) / N, 0.02);
}

TEST(GenProve, ArcsineDistributionShiftsBounds) {
  // Construct a 1-layer net where the spec holds exactly for t < 0.25.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {-1.0});
  L->bias() = Tensor({1}, {0.25});
  Net.add(std::move(L)); // y = 0.25 - t > 0 iff t < 0.25

  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);

  GenProveConfig Uniform;
  const ProbBounds U = GenProve(Uniform)
                           .analyzeSegment(Net.view(), Shape({1, 1}), E1, E2,
                                           Spec)
                           .Bounds;
  EXPECT_NEAR(U.Lower, 0.25, 1e-9);

  GenProveConfig Arc;
  Arc.Distribution = ParamDistribution::Arcsine;
  const ProbBounds A = GenProve(Arc)
                           .analyzeSegment(Net.view(), Shape({1, 1}), E1, E2,
                                           Spec)
                           .Bounds;
  // Arcsine puts extra mass near the endpoints: F(0.25) = 1/3 > 1/4.
  EXPECT_NEAR(A.Lower, 1.0 / 3.0, 1e-9);
}

TEST(GenProve, InputSplittingPreservesExactBounds) {
  // Section 5.2's memory/runtime tradeoff: splitting the input segment
  // into sequentially-verified parts must not change exact bounds.
  Rng R(12);
  Sequential Net = makeRandomMlp(R, {4, 14, 10, 3});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(1, 3);

  GenProveConfig Whole;
  const ProbBounds A =
      GenProve(Whole).analyzeSegment(Net.view(), Shape({1, 4}), E1, E2, Spec)
          .Bounds;

  GenProveConfig Split = Whole;
  Split.InputSplits = 4;
  const ProbBounds B =
      GenProve(Split).analyzeSegment(Net.view(), Shape({1, 4}), E1, E2, Spec)
          .Bounds;
  EXPECT_NEAR(A.Lower, B.Lower, 1e-9);
  EXPECT_NEAR(A.Upper, B.Upper, 1e-9);
}

TEST(GenProve, InputSplittingReducesPeakMemory) {
  Rng R(13);
  Sequential Net = makeRandomMlp(R, {4, 40, 40, 3});
  Tensor E1 = Tensor::randn({1, 4}, R, 1.5);
  Tensor E2 = Tensor::randn({1, 4}, R, 1.5);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 3);

  GenProveConfig Whole;
  const AnalysisResult A =
      GenProve(Whole).analyzeSegment(Net.view(), Shape({1, 4}), E1, E2, Spec);
  GenProveConfig Split = Whole;
  Split.InputSplits = 8;
  const AnalysisResult B =
      GenProve(Split).analyzeSegment(Net.view(), Shape({1, 4}), E1, E2, Spec);
  EXPECT_LE(B.PeakBytes, A.PeakBytes);
  EXPECT_NEAR(A.Bounds.Lower, B.Bounds.Lower, 1e-9);
}

TEST(GenProve, InputSplittingWithArcsineStaysExact) {
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {-1.0});
  L->bias() = Tensor({1}, {0.25});
  Net.add(std::move(L));
  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);

  GenProveConfig Config;
  Config.Distribution = ParamDistribution::Arcsine;
  Config.InputSplits = 5;
  const ProbBounds Bounds =
      GenProve(Config).analyzeSegment(Net.view(), Shape({1, 1}), E1, E2, Spec)
          .Bounds;
  EXPECT_NEAR(Bounds.Lower, 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(Bounds.Upper, 1.0 / 3.0, 1e-9);
}

TEST(GenProve, ForwardConcretePointsMatchesSequentialForward) {
  Rng R(10);
  Sequential Net = makeRandomMlp(R, {5, 9, 4});
  Tensor X = Tensor::randn({6, 5}, R);
  const Tensor A = forwardConcretePoints(Net.view(), Shape({1, 5}), X);
  const Tensor B = Net.forward(X);
  ASSERT_EQ(A.numel(), B.numel());
  for (int64_t I = 0; I < A.numel(); ++I)
    EXPECT_NEAR(A[I], B[I], 1e-12);
}

} // namespace
} // namespace genprove
