//===- tests/adversarial_spec_test.cpp - L-inf tube spec --------*- C++ -*-===//

#include "src/core/adversarial_spec.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.6);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.3);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

class TubeSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TubeSoundness, BoundsBracketBruteForceEstimate) {
  Rng R(GetParam());
  Sequential Decoder = makeRandomMlp(R, {2, 8, 6});
  Sequential Classifier = makeRandomMlp(R, {6, 8, 3});
  Tensor E1 = Tensor::randn({1, 2}, R);
  Tensor E2 = Tensor::randn({1, 2}, R);
  const double Eps = 0.05;
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 3);

  GenProveConfig Config;
  const GenProve Analyzer(Config);
  const AnalysisResult Result = analyzeAdversarialTube(
      Analyzer, Decoder.view(), Classifier.view(), Shape({1, 2}),
      Shape({1, 6}), E1, E2, Eps, Spec);
  ASSERT_FALSE(Result.OutOfMemory);
  ASSERT_LE(Result.Bounds.Lower, Result.Bounds.Upper + 1e-9);

  // Brute force: sample latents; for each, attack with random corner
  // perturbations of the decoded image. The adversarial consistency lies
  // between l and u.
  int64_t Hold = 0;
  const int64_t N = 300;
  for (int64_t I = 0; I < N; ++I) {
    const double T = R.uniform();
    Tensor Z({1, 2});
    for (int64_t J = 0; J < 2; ++J)
      Z[J] = E1[J] + T * (E2[J] - E1[J]);
    const Tensor Img = Decoder.forward(Z);
    bool AllSafe = true;
    for (int Corner = 0; Corner < 32 && AllSafe; ++Corner) {
      Tensor Adv = Img.clone();
      for (int64_t J = 0; J < Adv.numel(); ++J)
        Adv[J] += R.bernoulli(0.5) ? Eps : -Eps;
      if (!Spec.satisfied(Classifier.forward(Adv)))
        AllSafe = false;
    }
    if (AllSafe)
      ++Hold;
  }
  // The sampled estimate over-counts safety (finite corners), so it is an
  // upper estimate of the true probability: it must respect u but can
  // exceed l.
  const double Estimate = static_cast<double>(Hold) / N;
  EXPECT_LE(Result.Bounds.Lower, Estimate + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TubeSoundness, ::testing::Values(1u, 4u, 13u));

TEST(Tube, ZeroEpsilonIsAtLeastAsTightAsPositiveEpsilon) {
  Rng R(2);
  Sequential Decoder = makeRandomMlp(R, {2, 6, 4});
  Sequential Classifier = makeRandomMlp(R, {4, 6, 2});
  Tensor E1 = Tensor::randn({1, 2}, R);
  Tensor E2 = Tensor::randn({1, 2}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  GenProveConfig Config;
  const GenProve Analyzer(Config);

  const AnalysisResult Tight = analyzeAdversarialTube(
      Analyzer, Decoder.view(), Classifier.view(), Shape({1, 2}),
      Shape({1, 4}), E1, E2, 0.0, Spec);
  const AnalysisResult Loose = analyzeAdversarialTube(
      Analyzer, Decoder.view(), Classifier.view(), Shape({1, 2}),
      Shape({1, 4}), E1, E2, 0.2, Spec);
  EXPECT_GE(Tight.Bounds.Lower, Loose.Bounds.Lower - 1e-9);
}

TEST(Tube, CertifiedFractionIsSoundLowerBound) {
  // When the tube analysis certifies everything (l = 1), no sampled
  // perturbation may break the spec.
  Rng R(3);
  Sequential Decoder = makeRandomMlp(R, {2, 4, 3});
  Sequential Classifier;
  {
    // A classifier with a huge margin so certification succeeds.
    auto L = std::make_unique<Linear>(3, 2);
    L->weight() = Tensor({2, 3}, {1.0, 1.0, 1.0, -1.0, -1.0, -1.0});
    L->bias() = Tensor({2}, {100.0, -100.0});
    Classifier.add(std::move(L));
  }
  Tensor E1 = Tensor::randn({1, 2}, R);
  Tensor E2 = Tensor::randn({1, 2}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  GenProveConfig Config;
  const AnalysisResult Result = analyzeAdversarialTube(
      GenProve(Config), Decoder.view(), Classifier.view(), Shape({1, 2}),
      Shape({1, 3}), E1, E2, 0.1, Spec);
  EXPECT_NEAR(Result.Bounds.Lower, 1.0, 1e-9);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const double T = R.uniform();
    Tensor Z({1, 2});
    for (int64_t J = 0; J < 2; ++J)
      Z[J] = E1[J] + T * (E2[J] - E1[J]);
    Tensor Img = Decoder.forward(Z);
    for (int64_t J = 0; J < Img.numel(); ++J)
      Img[J] += R.uniform(-0.1, 0.1);
    EXPECT_TRUE(Spec.satisfied(Classifier.forward(Img)));
  }
}

} // namespace
} // namespace genprove
