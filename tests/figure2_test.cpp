//===- tests/figure2_test.cpp - the paper's worked examples -----*- C++ -*-===//
//
// Reproduces Figure 2 (the overview's toy inference) and the Appendix A
// walkthrough as executable checks.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace genprove {
namespace {

/// Appendix A: after the affine layer the segment runs from (1, 2, 4) to
/// (-1, 1, 1); only dimension 0 crosses zero, at t = 0.5, producing two
/// pieces of probability 0.5 each:
///   (1, 2, 4) -> (0, 1.5, 2.5)   and   (0, 1.5, 2.5) -> (0, 1, 1).
/// (The appendix text reaches these endpoints with M1, B1; we start from
/// the post-affine endpoints it states, since the walkthrough's published
/// intermediate values are the ground truth being checked.)
TEST(AppendixA, ReluSplitsTheSegmentAtOneHalf) {
  Sequential Net;
  Net.add(std::make_unique<ReLU>());

  Tensor A({1, 3}, {1.0, 2.0, 4.0});
  Tensor B({1, 3}, {-1.0, 1.0, 1.0});
  std::vector<Region> Init{makeSegmentRegion(A, B)};
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  auto Final = propagateRegions(Net.view(), Shape({1, 3}), std::move(Init),
                                Config, Memory, Stats);
  ASSERT_EQ(Final.size(), 2u);
  std::sort(Final.begin(), Final.end(),
            [](const Region &X, const Region &Y) { return X.T0 < Y.T0; });

  EXPECT_NEAR(Final[0].Weight, 0.5, 1e-12);
  EXPECT_NEAR(Final[1].Weight, 0.5, 1e-12);

  const Tensor P0 = evalCurve(Final[0], 0.0);
  const Tensor P1 = evalCurve(Final[0], 0.5);
  const Tensor P2 = evalCurve(Final[1], 1.0);
  const double Expected0[3] = {1.0, 2.0, 4.0};
  const double Expected1[3] = {0.0, 1.5, 2.5};
  const double Expected2[3] = {0.0, 1.0, 1.0};
  for (int64_t J = 0; J < 3; ++J) {
    EXPECT_NEAR(P0[J], Expected0[J], 1e-12);
    EXPECT_NEAR(P1[J], Expected1[J], 1e-12);
    EXPECT_NEAR(P2[J], Expected2[J], 1e-12);
  }
}

/// Figure 2(b)-(d): the polygonal chain (1,2), (-1,3), (-1,3.5), (1,4.5),
/// (3.5,2) with segment weights 0.2, 0.2, 0.2, 0.4. ReLU splits segments 1
/// and 3 in half (6 segments, weights 0.1, 0.1, 0.2, 0.1, 0.1, 0.4);
/// relaxing the first five yields the box with corners (0,2) and (1,4.5)
/// carrying weight 0.6.
TEST(Figure2, ChainSplitRelaxAndWeights) {
  const double Pts[5][2] = {
      {1.0, 2.0}, {-1.0, 3.0}, {-1.0, 3.5}, {1.0, 4.5}, {3.5, 2.0}};
  const double Lambda[4] = {0.2, 0.2, 0.2, 0.4};

  // Build the chain as four segment regions over [0, 1] with the paper's
  // weights (parameter intervals proportional to weight so the uniform
  // CDF reproduces them).
  std::vector<Region> Chain;
  double T = 0.0;
  for (int I = 0; I < 4; ++I) {
    Tensor A({1, 2}, {Pts[I][0], Pts[I][1]});
    Tensor B({1, 2}, {Pts[I + 1][0], Pts[I + 1][1]});
    Chain.push_back(makeSegmentRegion(A, B, Lambda[I], T, T + Lambda[I]));
    T += Lambda[I];
  }

  // ReLU# step.
  Sequential Net;
  Net.add(std::make_unique<ReLU>());
  PropagateConfig Config;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  auto Split = propagateRegions(Net.view(), Shape({1, 2}), std::move(Chain),
                                Config, Memory, Stats);
  ASSERT_EQ(Split.size(), 6u);
  std::sort(Split.begin(), Split.end(),
            [](const Region &X, const Region &Y) { return X.T0 < Y.T0; });
  const double ExpectedWeights[6] = {0.1, 0.1, 0.2, 0.1, 0.1, 0.4};
  for (int I = 0; I < 6; ++I)
    EXPECT_NEAR(Split[I].Weight, ExpectedWeights[I], 1e-9) << "piece " << I;

  // Relax step: subsume the first five pieces into one box.
  Region Box = boundingBox(Split[0]);
  for (int I = 1; I < 5; ++I)
    Box = mergeBoxes(Box, boundingBox(Split[I]));
  EXPECT_NEAR(Box.Weight, 0.6, 1e-9);
  EXPECT_NEAR(Box.Center[0] - Box.Radius[0], 0.0, 1e-9); // min corner x
  EXPECT_NEAR(Box.Center[1] - Box.Radius[1], 2.0, 1e-9); // min corner y
  EXPECT_NEAR(Box.Center[0] + Box.Radius[0], 1.0, 1e-9); // max corner x
  EXPECT_NEAR(Box.Center[1] + Box.Radius[1], 4.5, 1e-9); // max corner y

  // Bound computation in the style of Section 2: with a final linear map
  // that places the box inside {x1 > x2} but leaves the last segment
  // crossing the boundary, the probabilistic lower bound is the box mass.
  // The last segment runs from (1, 4.5)-ReLU'd to (3.5, 2); the paper
  // notes it contains the violating point (2.75, 3).
  std::vector<Region> FinalState{Box, Split[5]};
  // Spec x1 > x2 after swapping axes so the box (x in [0,1], y in [2,4.5])
  // satisfies it: use the functional y - x > 0 (the box satisfies it;
  // the last segment crosses it at (2.75, 3) -> indicator 0).
  Tensor Normal({1, 2}, {-1.0, 1.0});
  const OutputSpec Spec = OutputSpec::halfspace(Normal, 0.0);
  const ProbBounds Bounds = computeProbBounds(FinalState, Spec);
  // Lower bound: box contributes 0.6; the segment only contributes its
  // satisfying fraction to the exact mass e.
  EXPECT_GE(Bounds.Lower, 0.6 - 1e-9);
  EXPECT_LT(Bounds.Upper, 1.0 + 1e-9);

  // The all-boxes lower bound of the paper's walkthrough: treating the
  // segment's indicator as binary (it contains a violating point), the
  // lower bound would be exactly 0.6.
  double BinaryLower = 0.0;
  for (const auto &Piece : FinalState) {
    if (Piece.Kind == RegionKind::Box) {
      if (Spec.boxContained(Piece.Center, Piece.Radius))
        BinaryLower += Piece.Weight;
    } else {
      const Region SegBox = boundingBox(Piece);
      if (Spec.boxContained(SegBox.Center, SegBox.Radius))
        BinaryLower += Piece.Weight;
    }
  }
  EXPECT_NEAR(BinaryLower, 0.6, 1e-9);
}

} // namespace
} // namespace genprove
