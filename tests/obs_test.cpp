//===- tests/obs_test.cpp - observability layer unit tests ------*- C++ -*-===//

#include "src/domains/propagate.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include <unistd.h>

namespace genprove {
namespace {

/// Saves and restores the global metrics/trace/log switches so obs tests
/// cannot leak an enabled flag into the timing-sensitive rest of the suite.
class ObsTest : public ::testing::Test {
protected:
  void SetUp() override {
    WasMetrics = metricsEnabled();
    WasTrace = traceEnabled();
    WasLog = logEnabled();
    MetricsRegistry::global().reset();
    TraceSession::global().clear();
    EventLog::global().clear();
  }
  void TearDown() override {
    setMetricsEnabled(WasMetrics);
    setTraceEnabled(WasTrace);
    setLogEnabled(WasLog);
    MetricsRegistry::global().reset();
    TraceSession::global().clear();
    EventLog::global().clear();
  }

private:
  bool WasMetrics = false;
  bool WasTrace = false;
  bool WasLog = false;
};

//===----------------------------------------------------------------------===//
// JsonWriter / validateJson
//===----------------------------------------------------------------------===//

TEST(Json, WriterNestsAndSeparates) {
  JsonWriter W;
  W.beginObject();
  W.key("a").value(int64_t(1));
  W.key("b").beginArray().value(2.5).value("x").value(true).nullValue();
  W.endArray();
  W.key("c").beginObject().key("d").value(int64_t(-3)).endObject();
  W.endObject();
  EXPECT_EQ(W.str(), R"({"a":1,"b":[2.5,"x",true,null],"c":{"d":-3}})");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(Json, WriterEscapesStrings) {
  JsonWriter W;
  W.beginObject().key("s").value("a\"b\\c\nd\te\x01").endObject();
  EXPECT_EQ(W.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(Json, WriterTurnsNonFiniteIntoNull) {
  JsonWriter W;
  W.beginArray();
  W.value(std::numeric_limits<double>::infinity());
  W.value(-std::numeric_limits<double>::infinity());
  W.value(std::numeric_limits<double>::quiet_NaN());
  W.value(1.5);
  W.endArray();
  EXPECT_EQ(W.str(), "[null,null,null,1.5]");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(Json, WriterRawSplicesVerbatim) {
  JsonWriter Inner;
  Inner.beginObject().key("k").value(int64_t(7)).endObject();
  JsonWriter W;
  W.beginObject().key("nested").raw(Inner.str()).key("after").value(true);
  W.endObject();
  EXPECT_EQ(W.str(), R"({"nested":{"k":7},"after":true})");
  EXPECT_TRUE(validateJson(W.str()));
}

TEST(Json, ValidatorAcceptsCornerCases) {
  EXPECT_TRUE(validateJson("null"));
  EXPECT_TRUE(validateJson("  [ ]  "));
  EXPECT_TRUE(validateJson("{}"));
  EXPECT_TRUE(validateJson("-1.5e-3"));
  EXPECT_TRUE(validateJson(R"("é\n")"));
}

TEST(Json, ValidatorRejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(validateJson("", &Error));
  EXPECT_FALSE(validateJson("{", &Error));
  EXPECT_FALSE(validateJson("[1,]", &Error));
  EXPECT_FALSE(validateJson("{\"a\":1,}", &Error));
  EXPECT_FALSE(validateJson("{\"a\" 1}", &Error));
  EXPECT_FALSE(validateJson("\"unterminated", &Error));
  EXPECT_FALSE(validateJson("\"bad \\q escape\"", &Error));
  EXPECT_FALSE(validateJson("\"bad \\u12 hex\"", &Error));
  EXPECT_FALSE(validateJson("01", &Error));
  EXPECT_FALSE(validateJson("nul", &Error));
  EXPECT_FALSE(validateJson("{} trailing", &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, DisabledMetricsDoNotMutate) {
  setMetricsEnabled(false);
  Counter &C = MetricsRegistry::global().counter("test.disabled");
  Gauge &G = MetricsRegistry::global().gauge("test.disabled_gauge");
  Histogram &H = MetricsRegistry::global().histogram("test.disabled_hist");
  C.add(5);
  G.set(3.0);
  G.setMax(9.0);
  H.record(1.0);
  EXPECT_EQ(C.value(), 0);
  EXPECT_EQ(G.value(), 0.0);
  EXPECT_EQ(H.count(), 0);
  EXPECT_EQ(H.total(), 0.0);
}

TEST_F(ObsTest, CounterAndGaugeAccumulate) {
  setMetricsEnabled(true);
  Counter &C = MetricsRegistry::global().counter("test.counter");
  C.add();
  C.add(4);
  EXPECT_EQ(C.value(), 5);
  // counter() returns the same object for the same name.
  EXPECT_EQ(&C, &MetricsRegistry::global().counter("test.counter"));

  Gauge &G = MetricsRegistry::global().gauge("test.gauge");
  G.set(2.0);
  G.setMax(1.0); // below current: keeps 2.0
  EXPECT_EQ(G.value(), 2.0);
  G.setMax(7.5);
  EXPECT_EQ(G.value(), 7.5);
}

TEST_F(ObsTest, FindDoesNotCreate) {
  EXPECT_EQ(MetricsRegistry::global().findCounter("never.touched"), nullptr);
  EXPECT_EQ(MetricsRegistry::global().findGauge("never.touched"), nullptr);
  EXPECT_EQ(MetricsRegistry::global().findHistogram("never.touched"), nullptr);
  MetricsRegistry::global().counter("now.exists");
  EXPECT_NE(MetricsRegistry::global().findCounter("now.exists"), nullptr);
}

TEST_F(ObsTest, HistogramEdgeSamples) {
  setMetricsEnabled(true);
  Histogram &H = MetricsRegistry::global().histogram("test.edges");
  const double Inf = std::numeric_limits<double>::infinity();
  H.record(0.0);  // nonpositive edge bucket
  H.record(-3.0); // nonpositive edge bucket
  H.record(Inf);  // overflow edge bucket
  H.record(std::numeric_limits<double>::quiet_NaN()); // counted, no min/max
  H.record(1.0);

  EXPECT_EQ(H.count(), 5);
  EXPECT_EQ(H.bucketCount(0), 3); // 0, -3 and NaN
  EXPECT_EQ(H.bucketCount(Histogram::NumBuckets - 1), 1);
  // The sum only accumulates finite samples; min/max skip NaN.
  EXPECT_EQ(H.total(), -2.0);
  EXPECT_EQ(H.minSample(), -3.0);
  EXPECT_EQ(H.maxSample(), Inf);
}

TEST_F(ObsTest, HistogramBucketIndexBoundaries) {
  // Buckets are (2^(e-1), 2^e]: an exact power of two lands in the bucket
  // it closes, and the next representable value above it in the next one.
  EXPECT_EQ(Histogram::bucketIndex(1.0), Histogram::bucketIndex(0.75));
  EXPECT_NE(Histogram::bucketIndex(1.0), Histogram::bucketIndex(1.5));
  EXPECT_EQ(Histogram::bucketIndex(2.0), Histogram::bucketIndex(1.5));
  EXPECT_EQ(Histogram::bucketIndex(4.0), Histogram::bucketIndex(3.0));
  // Tiny and huge finite values clamp to the covered range's ends.
  EXPECT_EQ(Histogram::bucketIndex(1e-300), 1);
  EXPECT_EQ(Histogram::bucketIndex(1e300), Histogram::NumBuckets - 1);

  // Bounds are contiguous: every bucket's Hi is the next bucket's Lo.
  for (int I = 1; I + 1 < Histogram::NumBuckets; ++I) {
    const auto B = Histogram::bucketBounds(I);
    const auto NextB = Histogram::bucketBounds(I + 1);
    EXPECT_LT(B.Lo, B.Hi);
    EXPECT_EQ(B.Hi, NextB.Lo) << "bucket " << I;
  }
  // A sample sits inside the bounds of its own bucket.
  for (double V : {1e-9, 0.02, 0.5, 1.0, 3.0, 1234.5}) {
    const auto B = Histogram::bucketBounds(Histogram::bucketIndex(V));
    EXPECT_GT(V, B.Lo) << V;
    EXPECT_LE(V, B.Hi) << V;
  }
}

TEST_F(ObsTest, RegistryJsonSnapshotIsValid) {
  setMetricsEnabled(true);
  MetricsRegistry::global().counter("snap.counter").add(3);
  MetricsRegistry::global().gauge("snap.gauge").set(1.25);
  Histogram &H = MetricsRegistry::global().histogram("snap.hist");
  H.record(0.5);
  H.record(2.0);

  const std::string Json = MetricsRegistry::global().toJson();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error << "\n" << Json;
  EXPECT_NE(Json.find("\"snap.counter\":3"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"snap.gauge\""), std::string::npos);
  EXPECT_NE(Json.find("\"snap.hist\""), std::string::npos);
  EXPECT_NE(Json.find("\"buckets\""), std::string::npos);
}

TEST_F(ObsTest, ResetZeroesEverything) {
  setMetricsEnabled(true);
  Counter &C = MetricsRegistry::global().counter("reset.counter");
  Histogram &H = MetricsRegistry::global().histogram("reset.hist");
  C.add(9);
  H.record(1.0);
  MetricsRegistry::global().reset();
  EXPECT_EQ(C.value(), 0);
  EXPECT_EQ(H.count(), 0);
  EXPECT_EQ(H.total(), 0.0);
  EXPECT_EQ(H.minSample(), std::numeric_limits<double>::infinity());
}

//===----------------------------------------------------------------------===//
// Tracing spans
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, DisabledSpansRecordNothing) {
  setTraceEnabled(false);
  {
    GENPROVE_SPAN("outer");
    GENPROVE_SPAN("inner");
  }
  EXPECT_EQ(TraceSession::global().eventCount(), 0u);
}

TEST_F(ObsTest, SpansNestAndRecordDepth) {
  setTraceEnabled(true);
  {
    GENPROVE_SPAN("outer");
    {
      GENPROVE_SPAN("middle");
      { GENPROVE_SPAN("leaf"); }
    }
    { GENPROVE_SPAN("sibling"); }
  }
  const std::vector<TraceEvent> Events = TraceSession::global().events();
  ASSERT_EQ(Events.size(), 4u);
  // Spans are recorded when they close: innermost first.
  EXPECT_EQ(Events[0].Name, "leaf");
  EXPECT_EQ(Events[0].Depth, 2u);
  EXPECT_EQ(Events[1].Name, "middle");
  EXPECT_EQ(Events[1].Depth, 1u);
  EXPECT_EQ(Events[2].Name, "sibling");
  EXPECT_EQ(Events[2].Depth, 1u);
  EXPECT_EQ(Events[3].Name, "outer");
  EXPECT_EQ(Events[3].Depth, 0u);

  const TraceEvent &Outer = Events[3];
  for (size_t I = 0; I < 3; ++I) {
    // Children start no earlier and fit inside the parent's window.
    EXPECT_GE(Events[I].StartUs, Outer.StartUs);
    EXPECT_LE(Events[I].StartUs + Events[I].DurUs, Outer.StartUs + Outer.DurUs);
    EXPECT_EQ(Events[I].Tid, Outer.Tid);
  }
  // Self time never exceeds wall-clock time.
  for (const TraceEvent &E : Events)
    EXPECT_LE(E.SelfUs, E.DurUs + 1) << E.Name; // +1 for rounding
}

TEST_F(ObsTest, ChromeTraceJsonIsValid) {
  setTraceEnabled(true);
  {
    GENPROVE_SPAN("quoted \"name\"");
    GENPROVE_SPAN("inner");
  }
  const std::string Json = TraceSession::global().toChromeJson();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error << "\n" << Json;
  EXPECT_EQ(Json.front(), '[');
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("\"quoted \\\"name\\\"\""), std::string::npos);
  EXPECT_NE(Json.find("\"self_us\""), std::string::npos);
}

TEST_F(ObsTest, ClearDropsEventsAndRestartsEpoch) {
  setTraceEnabled(true);
  { GENPROVE_SPAN("before_clear"); }
  EXPECT_EQ(TraceSession::global().eventCount(), 1u);
  TraceSession::global().clear();
  EXPECT_EQ(TraceSession::global().eventCount(), 0u);
  EXPECT_TRUE(validateJson(TraceSession::global().toChromeJson()));
}

//===----------------------------------------------------------------------===//
// Trace process lanes (cross-process splice support)
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, TraceEventsCarryTheirProcessLane) {
  setTraceEnabled(true);
  { GENPROVE_SPAN("coordinator_work"); }
  // Simulate the supervisor splicing a worker event into lane pid=3.
  TraceEvent Worker;
  Worker.Name = "worker_work";
  Worker.StartUs = 10;
  Worker.DurUs = 5;
  Worker.SelfUs = 5;
  Worker.Pid = 3;
  TraceSession::global().record(Worker);
  TraceSession::global().setProcessLabel(0, "coordinator");
  TraceSession::global().setProcessLabel(3, "shard 2");

  const std::string Json = TraceSession::global().toChromeJson();
  std::string Error;
  ASSERT_TRUE(validateJson(Json, &Error)) << Error << "\n" << Json;
  // Default lane 0 for in-process spans, lane 3 for the spliced event.
  EXPECT_NE(Json.find("\"pid\":0"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"pid\":3"), std::string::npos) << Json;
  // process_name metadata events label the lanes.
  EXPECT_NE(Json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("\"shard 2\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Structured event log
//===----------------------------------------------------------------------===//

TEST_F(ObsTest, EventLogJsonlIsValidAndMonotonic) {
  setLogEnabled(true);
  EventLog &Log = EventLog::global();
  Log.setRunId("test-run");
  Log.emit(LogLevel::Info, "run.start", {{"shards", int64_t(2)}});
  Log.emit(LogLevel::Warn, "shard.retry",
           {{"shard", int64_t(1)},
            {"backoff_s", 0.25},
            {"rung", "resilient"},
            {"fatal", false}});
  Log.emit(LogLevel::Error, "shard.exhausted", {{"shard", int64_t(1)}});

  const std::string Jsonl = Log.toJsonl();
  std::istringstream In(Jsonl);
  std::string Line;
  uint64_t LastTs = 0;
  size_t NumLines = 0;
  while (std::getline(In, Line)) {
    ++NumLines;
    std::string Error;
    ASSERT_TRUE(validateJson(Line, &Error)) << Error << "\n" << Line;
    JsonValue V;
    ASSERT_TRUE(parseJson(Line, V, &Error)) << Error;
    // Required schema fields on every line.
    ASSERT_NE(V.find("ts_us"), nullptr);
    ASSERT_NE(V.find("level"), nullptr);
    ASSERT_NE(V.find("event"), nullptr);
    ASSERT_NE(V.find("shard"), nullptr);
    EXPECT_EQ(V.find("run")->stringOr(""), "test-run");
    const uint64_t Ts = static_cast<uint64_t>(V.find("ts_us")->intOr(-1));
    EXPECT_GE(Ts, LastTs); // monotonic timestamps
    LastTs = Ts;
  }
  EXPECT_EQ(NumLines, 3u);
  // Field payloads render with their native JSON types.
  EXPECT_NE(Jsonl.find("\"backoff_s\":0.25"), std::string::npos) << Jsonl;
  EXPECT_NE(Jsonl.find("\"rung\":\"resilient\""), std::string::npos);
  EXPECT_NE(Jsonl.find("\"fatal\":false"), std::string::npos);
  EXPECT_NE(Jsonl.find("\"level\":\"warn\""), std::string::npos);
}

TEST_F(ObsTest, SplicedRecordsKeepTheirShardAndTimestamp) {
  setLogEnabled(true);
  EventLog &Log = EventLog::global();
  Log.setShard(-1);
  Log.emit(LogLevel::Info, "coordinator.event");

  LogRecord Worker;
  Worker.TsUs = 12345;
  Worker.Level = LogLevel::Warn;
  Worker.Shard = 2;
  Worker.Event = "propagate.rollback";
  Worker.Fields.push_back({"layer", LogValue(int64_t(4))});
  Log.splice(Worker);

  const auto Records = Log.records();
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Shard, -1);
  EXPECT_EQ(Records[1].Shard, 2);
  EXPECT_EQ(Records[1].TsUs, 12345u); // worker's own clock, not re-stamped
  EXPECT_EQ(Records[1].Event, "propagate.rollback");
}

TEST_F(ObsTest, CapacityRingEvictsOldestAndCountsDrops) {
  setLogEnabled(true);
  EventLog &Log = EventLog::global();
  Log.setCapacity(4);
  for (int I = 0; I < 10; ++I)
    Log.emit(LogLevel::Info, "ring.tick", {{"i", int64_t(I)}});
  const std::vector<LogRecord> Records = Log.records();
  ASSERT_EQ(Records.size(), 4u);
  EXPECT_EQ(Log.droppedRecords(), 6u);
  // The survivors are the newest four, in order.
  for (size_t I = 0; I < Records.size(); ++I) {
    ASSERT_EQ(Records[I].Fields.size(), 1u);
    EXPECT_EQ(Records[I].Fields[0].second.I, int64_t(6 + I));
  }
  // Shrinking below the live count evicts immediately.
  Log.setCapacity(2);
  EXPECT_EQ(Log.records().size(), 2u);
  EXPECT_EQ(Log.droppedRecords(), 8u);
  Log.setCapacity(0); // the global's default; don't leak a bound
}

TEST_F(ObsTest, AppendFlushEmitsEachRecordExactlyOnce) {
  setLogEnabled(true);
  EventLog &Log = EventLog::global();
  Log.setCapacity(3);
  const std::string Path =
      "/tmp/genprove-obs-append-" + std::to_string(::getpid()) + ".jsonl";

  auto CountLines = [&Path]() {
    std::ifstream In(Path);
    size_t N = 0;
    std::string Line;
    while (std::getline(In, Line))
      if (!Line.empty())
        ++N;
    return N;
  };

  // First flush truncates and writes everything buffered so far.
  Log.emit(LogLevel::Info, "append.a");
  Log.emit(LogLevel::Info, "append.b");
  ASSERT_TRUE(Log.appendJsonl(Path));
  EXPECT_EQ(CountLines(), 2u);

  // Re-flushing with nothing new is idempotent: no duplicate lines.
  ASSERT_TRUE(Log.appendJsonl(Path));
  EXPECT_EQ(CountLines(), 2u);

  // New records append incrementally — even ones the capacity ring has
  // already evicted from memory by flush time stay in the file exactly
  // once, because the cursor tracks sequence numbers, not buffer slots.
  for (int I = 0; I < 5; ++I)
    Log.emit(LogLevel::Info, "append.more", {{"i", int64_t(I)}});
  ASSERT_TRUE(Log.appendJsonl(Path));
  // Of the 5 new records only the last 3 survived the ring; the flushed
  // file gains exactly those 3 (the evicted 2 were never written and are
  // counted in droppedRecords()).
  EXPECT_EQ(CountLines(), 5u);
  EXPECT_GE(Log.droppedRecords(), 2u);

  // writeJsonl (the one-shot whole-buffer path) stays untouched by the
  // append cursor: a fresh full write sees the current window.
  ASSERT_TRUE(Log.appendJsonl(Path));
  EXPECT_EQ(CountLines(), 5u); // still idempotent after the burst

  // A new path restarts the cursor with truncation semantics.
  const std::string Path2 = Path + ".second";
  ASSERT_TRUE(Log.appendJsonl(Path2));
  {
    std::ifstream In(Path2);
    size_t N = 0;
    std::string Line;
    while (std::getline(In, Line))
      if (!Line.empty())
        ++N;
    EXPECT_EQ(N, 3u); // exactly the live window
  }

  Log.setCapacity(0);
  std::remove(Path.c_str());
  std::remove(Path2.c_str());
}

TEST_F(ObsTest, FlushGuardWritesEveryConfiguredArtifact) {
  setMetricsEnabled(true);
  setTraceEnabled(true);
  setLogEnabled(true);
  MetricsRegistry::global().counter("flush.counter").add(1);
  { GENPROVE_SPAN("flush_span"); }
  EventLog::global().emit(LogLevel::Info, "flush.event");

  const std::string Dir = ::testing::TempDir();
  ObsFlushGuard::Paths P;
  P.Trace = Dir + "/obs_flush_trace.json";
  P.Metrics = Dir + "/obs_flush_metrics.json";
  P.Prom = Dir + "/obs_flush.prom";
  P.Log = Dir + "/obs_flush.jsonl";
  ObsFlushGuard::configure(P);
  { ObsFlushGuard Guard; } // dtor flushes

  const auto Slurp = [](const std::string &Path) {
    std::ifstream In(Path);
    std::ostringstream Out;
    Out << In.rdbuf();
    return Out.str();
  };
  const std::string Trace = Slurp(P.Trace);
  const std::string Metrics = Slurp(P.Metrics);
  const std::string Prom = Slurp(P.Prom);
  const std::string Log = Slurp(P.Log);
  EXPECT_TRUE(validateJson(Trace)) << Trace;
  EXPECT_NE(Trace.find("flush_span"), std::string::npos);
  EXPECT_TRUE(validateJson(Metrics)) << Metrics;
  EXPECT_NE(Metrics.find("flush.counter"), std::string::npos);
  EXPECT_NE(Prom.find("genprove_flush_counter 1"), std::string::npos) << Prom;
  EXPECT_TRUE(validateJson(Log)) << Log; // single line = one JSON object
  EXPECT_NE(Log.find("\"event\":\"flush.event\""), std::string::npos);

  // Unconfigure so no later guard rewrites these files.
  ObsFlushGuard::configure(ObsFlushGuard::Paths());
  for (const std::string &Path : {P.Trace, P.Metrics, P.Prom, P.Log})
    std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Per-layer telemetry
//===----------------------------------------------------------------------===//

Sequential makeMlp(Rng &R) {
  Sequential Net;
  auto L1 = std::make_unique<Linear>(4, 12);
  L1->weight() = Tensor::randn({12, 4}, R, 0.8);
  L1->bias() = Tensor::randn({12}, R, 0.5);
  Net.add(std::move(L1));
  Net.add(std::make_unique<ReLU>());
  auto L2 = std::make_unique<Linear>(12, 8);
  L2->weight() = Tensor::randn({8, 12}, R, 0.8);
  L2->bias() = Tensor::randn({8}, R, 0.5);
  Net.add(std::move(L2));
  Net.add(std::make_unique<ReLU>());
  auto L3 = std::make_unique<Linear>(8, 3);
  L3->weight() = Tensor::randn({3, 8}, R, 0.8);
  L3->bias() = Tensor::randn({3}, R, 0.5);
  Net.add(std::move(L3));
  return Net;
}

TEST_F(ObsTest, LayerTimelineProjectsToAggregates) {
  Rng R(424242);
  Sequential Net = makeMlp(R);
  const auto Layers = Net.view();
  const Shape InShape({1, 4});
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};

  PropagateConfig Config;
  Config.EnableRelax = false;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  const auto Final = propagateRegions(Layers, InShape, std::move(Init),
                                      Config, Memory, Stats);
  ASSERT_FALSE(Stats.OutOfMemory);
  ASSERT_FALSE(Final.empty());

  // One record per layer, in order.
  ASSERT_EQ(Stats.Layers.size(), Layers.size());
  for (size_t I = 0; I < Stats.Layers.size(); ++I) {
    EXPECT_EQ(Stats.Layers[I].Index, static_cast<int64_t>(I));
    EXPECT_STREQ(Stats.Layers[I].Kind,
                 layerKindName(Layers[I]->kind()));
  }

  // The aggregate stats are projections of the timeline.
  int64_t SumSplits = 0, SumBoxed = 0, MaxRegions = 0, MaxNodes = 0;
  for (const LayerRecord &Rec : Stats.Layers) {
    SumSplits += Rec.Splits;
    SumBoxed += Rec.Boxed;
    MaxRegions = std::max(MaxRegions, Rec.RegionsOut);
    MaxNodes = std::max(MaxNodes, Rec.NodesOut);
    EXPECT_GE(Rec.Seconds, 0.0);
  }
  EXPECT_EQ(SumSplits, Stats.NumSplits);
  EXPECT_EQ(SumBoxed, Stats.NumBoxed);
  EXPECT_EQ(MaxRegions, Stats.MaxRegions);
  EXPECT_EQ(MaxNodes, Stats.MaxNodes);
  EXPECT_EQ(Stats.OomLayer, -1);

  // Flows are contiguous across layers, and the charge is the output
  // state's device footprint.
  Shape CurShape = InShape;
  for (size_t I = 0; I < Stats.Layers.size(); ++I) {
    const LayerRecord &Rec = Stats.Layers[I];
    if (I > 0) {
      EXPECT_EQ(Rec.RegionsIn, Stats.Layers[I - 1].RegionsOut);
      EXPECT_EQ(Rec.NodesIn, Stats.Layers[I - 1].NodesOut);
    }
    if (Layers[I]->isAffine())
      CurShape = Layers[I]->outputShape(CurShape);
    EXPECT_EQ(Rec.ChargedBytes, static_cast<size_t>(Rec.NodesOut) *
                                    static_cast<size_t>(CurShape.numel()) *
                                    sizeof(double));
  }
}

TEST_F(ObsTest, PropagateFeedsRegisteredCounters) {
  setMetricsEnabled(true);
  MetricsRegistry::global().reset();

  Rng R(7);
  Sequential Net = makeMlp(R);
  Tensor E1 = Tensor::randn({1, 4}, R);
  Tensor E2 = Tensor::randn({1, 4}, R);
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};
  PropagateConfig Config;
  Config.EnableRelax = false;
  DeviceMemoryModel Memory;
  PropagateStats Stats;
  propagateRegions(Net.view(), Shape({1, 4}), std::move(Init), Config, Memory,
                   Stats);

  const Counter *Splits =
      MetricsRegistry::global().findCounter("propagate.splits");
  const Counter *Oom = MetricsRegistry::global().findCounter("propagate.oom");
  const Histogram *Seconds =
      MetricsRegistry::global().findHistogram("propagate.layer_seconds");
  ASSERT_NE(Splits, nullptr);
  ASSERT_NE(Oom, nullptr);
  ASSERT_NE(Seconds, nullptr);
  EXPECT_EQ(Splits->value(), Stats.NumSplits);
  EXPECT_EQ(Oom->value(), 0);
  EXPECT_EQ(Seconds->count(),
            static_cast<int64_t>(Stats.Layers.size()));
}

TEST_F(ObsTest, OomTimelineMarksTheFailingLayer) {
  // Known crossings at t = 0.25 and 0.75: the ReLU produces 3 pieces
  // (6 nodes x 2 dims x 8 bytes = 96 bytes), which cannot fit a 64-byte
  // budget, so the OOM deterministically hits layer 1.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 2);
  L->weight() = Tensor({2, 1}, {1.0, 1.0});
  L->bias() = Tensor({2}, {-0.25, -0.75});
  Net.add(std::move(L));
  Net.add(std::make_unique<ReLU>());

  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  std::vector<Region> Init{makeSegmentRegion(E1, E2)};
  PropagateConfig Config;
  DeviceMemoryModel Memory(64);
  PropagateStats Stats;
  const auto Final = propagateRegions(Net.view(), Shape({1, 1}),
                                      std::move(Init), Config, Memory, Stats);
  EXPECT_TRUE(Final.empty());
  ASSERT_TRUE(Stats.OutOfMemory);
  EXPECT_EQ(Stats.OomLayer, 1);
  // The timeline ends at the failing layer, with a partial record.
  ASSERT_EQ(Stats.Layers.size(), 2u);
  EXPECT_EQ(Stats.Layers.back().Index, Stats.OomLayer);
  EXPECT_STREQ(Stats.Layers.back().Kind, "ReLU");
}

} // namespace
} // namespace genprove
