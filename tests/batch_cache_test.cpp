//===- tests/batch_cache_test.cpp - cross-query amortization ----*- C++ -*-===//
///
/// \file
/// The two halves of the amortization layer (docs/PERFORMANCE.md):
///
///  * Batched propagation: propagateSegmentsBatch and the convex-domain
///    *Batch entry points must return bounds bit-identical to a per-query
///    loop — at any thread count and in both rounding modes. "Identical"
///    here is EXPECT_EQ on doubles, not a tolerance: the batched GEMM
///    stacks rows of independent queries, so every arithmetic operation
///    must be literally the same.
///
///  * PropagationCache: warm starts must never change bounds (only skip
///    work), entries must stay within the byte budget via LRU eviction,
///    and a weight mutation through any mutable accessor must invalidate
///    the keys (the AbsWeightCache generation regression).
///
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/domains/box_domain.h"
#include "src/domains/hybrid_zonotope.h"
#include "src/domains/prop_cache.h"
#include "src/domains/zonotope.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/parallel/thread_pool.h"
#include "src/util/fp.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims,
                         double Scale = 0.8) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, Scale);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.4);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

std::vector<std::pair<Tensor, Tensor>> makeSegments(int64_t K, int64_t Dim,
                                                    Rng &R) {
  std::vector<std::pair<Tensor, Tensor>> Segments;
  for (int64_t I = 0; I < K; ++I)
    Segments.emplace_back(Tensor::randn({1, Dim}, R),
                          Tensor::randn({1, Dim}, R));
  return Segments;
}

/// Pin the global pool for the test body, restore on scope exit.
struct PoolScope {
  explicit PoolScope(int64_t Threads) {
    ThreadPool::global().setThreads(Threads);
  }
  ~PoolScope() { ThreadPool::global().setThreads(ThreadPool::envThreads()); }
};

/// Scoped cache budget: configures the process-wide cache and always
/// returns it to the disabled default so tests cannot leak state.
struct CacheScope {
  explicit CacheScope(size_t BudgetBytes) {
    PropagationCache::global().configure(BudgetBytes);
  }
  ~CacheScope() { PropagationCache::global().configure(0); }
};

// ---------------------------------------------------------------------------
// Batched == sequential, bit for bit.
// ---------------------------------------------------------------------------

/// (threads, sound rounding) grid shared by the bit-identity tests.
class BatchBitIdentity
    : public ::testing::TestWithParam<std::tuple<int64_t, bool>> {};

TEST_P(BatchBitIdentity, GenProveEngineMatchesPerQueryLoop) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(31);
  Sequential Net = makeRandomMlp(R, {4, 14, 10, 3});
  const auto Segments = makeSegments(6, 4, R);
  const std::vector<OutputSpec> Specs = {OutputSpec::argmaxWins(0, 3),
                                         OutputSpec::argmaxWins(2, 3)};

  GenProveConfig Config; // exact probabilistic, cache off by default
  const GenProve Analyzer(Config);
  const std::vector<PropagatedState> Batched =
      Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 4}), Segments);
  ASSERT_EQ(Batched.size(), Segments.size());

  for (size_t I = 0; I < Segments.size(); ++I) {
    const PropagatedState Solo = Analyzer.propagateSegment(
        Net.view(), Shape({1, 4}), Segments[I].first, Segments[I].second);
    ASSERT_FALSE(Batched[I].OutOfMemory);
    ASSERT_FALSE(Solo.OutOfMemory);
    for (const OutputSpec &Spec : Specs) {
      const ProbBounds A = Analyzer.boundsFor(Batched[I], Spec);
      const ProbBounds B = Analyzer.boundsFor(Solo, Spec);
      EXPECT_EQ(A.Lower, B.Lower) << "segment " << I;
      EXPECT_EQ(A.Upper, B.Upper) << "segment " << I;
    }
  }
}

TEST_P(BatchBitIdentity, ConvexDomainsMatchPerSegmentLoop) {
  const int64_t Threads = std::get<0>(GetParam());
  const bool Sound = std::get<1>(GetParam());
  PoolScope Pool(Threads);
  SoundRoundingScope Rounding(Sound);

  Rng R(47);
  Sequential Net = makeRandomMlp(R, {3, 12, 8, 2});
  const auto Segments = makeSegments(5, 3, R);
  const std::vector<OutputSpec> Specs = {OutputSpec::argmaxWins(0, 2),
                                         OutputSpec::argmaxWins(1, 2)};
  const Shape In({1, 3});

  struct Domain {
    const char *Name;
    std::function<std::vector<std::vector<ConvexResult>>()> Batch;
    std::function<std::vector<ConvexResult>(size_t)> Solo;
  };
  DeviceMemoryModel Unlimited(0);
  const std::vector<Domain> Domains = {
      {"box",
       [&] {
         return analyzeBoxBatch(Net.view(), In, Segments, Specs, Unlimited);
       },
       [&](size_t I) {
         return analyzeBoxMulti(Net.view(), In, Segments[I].first,
                                Segments[I].second, Specs, Unlimited);
       }},
      {"zonotope",
       [&] {
         return analyzeZonotopeBatch(Net.view(), In, Segments, Specs,
                                     ZonotopeKind::Zonotope, Unlimited);
       },
       [&](size_t I) {
         return analyzeZonotopeMulti(Net.view(), In, Segments[I].first,
                                     Segments[I].second, Specs,
                                     ZonotopeKind::Zonotope, Unlimited);
       }},
      {"deepzono",
       [&] {
         return analyzeZonotopeBatch(Net.view(), In, Segments, Specs,
                                     ZonotopeKind::DeepZono, Unlimited);
       },
       [&](size_t I) {
         return analyzeZonotopeMulti(Net.view(), In, Segments[I].first,
                                     Segments[I].second, Specs,
                                     ZonotopeKind::DeepZono, Unlimited);
       }},
      {"hybrid",
       [&] {
         return analyzeHybridZonotopeBatch(Net.view(), In, Segments, Specs,
                                           Unlimited);
       },
       [&](size_t I) {
         return analyzeHybridZonotopeMulti(Net.view(), In, Segments[I].first,
                                           Segments[I].second, Specs,
                                           Unlimited);
       }},
  };

  for (const Domain &D : Domains) {
    const auto Batched = D.Batch();
    ASSERT_EQ(Batched.size(), Segments.size()) << D.Name;
    for (size_t I = 0; I < Segments.size(); ++I) {
      const auto Solo = D.Solo(I);
      ASSERT_EQ(Batched[I].size(), Specs.size()) << D.Name;
      for (size_t J = 0; J < Specs.size(); ++J) {
        EXPECT_EQ(Batched[I][J].Bounds.Lower, Solo[J].Bounds.Lower)
            << D.Name << " segment " << I << " spec " << J;
        EXPECT_EQ(Batched[I][J].Bounds.Upper, Solo[J].Bounds.Upper)
            << D.Name << " segment " << I << " spec " << J;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadsAndRounding, BatchBitIdentity,
                         ::testing::Combine(::testing::Values<int64_t>(1, 4),
                                            ::testing::Bool()));

/// Non-batchable configurations (resilience, refinement schedules, input
/// splits) must silently take the sequential path with unchanged values.
TEST(BatchFallback, ResilientConfigFallsBackToSequentialValues) {
  Rng R(53);
  Sequential Net = makeRandomMlp(R, {3, 10, 2});
  const auto Segments = makeSegments(3, 3, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  GenProveConfig Config;
  Config.Resilience.Enabled = true;
  const GenProve Analyzer(Config);
  const auto Batched =
      Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 3}), Segments);
  ASSERT_EQ(Batched.size(), Segments.size());
  for (size_t I = 0; I < Segments.size(); ++I) {
    const PropagatedState Solo = Analyzer.propagateSegment(
        Net.view(), Shape({1, 3}), Segments[I].first, Segments[I].second);
    const ProbBounds A = Analyzer.boundsFor(Batched[I], Spec);
    const ProbBounds B = Analyzer.boundsFor(Solo, Spec);
    EXPECT_EQ(A.Lower, B.Lower) << "segment " << I;
    EXPECT_EQ(A.Upper, B.Upper) << "segment " << I;
  }
}

// ---------------------------------------------------------------------------
// PropagationCache.
// ---------------------------------------------------------------------------

TEST(PropagationCacheTest, WarmStartIsHitAndBitIdentical) {
  CacheScope Cache(32u << 20);
  Rng R(11);
  Sequential Net = makeRandomMlp(R, {4, 12, 8, 3});
  const Tensor Start = Tensor::randn({1, 4}, R);
  const Tensor End = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(1, 3);
  const GenProve Analyzer(GenProveConfig{});

  const auto Before = PropagationCache::global().snapshot();
  const PropagatedState Cold =
      Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End);
  const auto AfterCold = PropagationCache::global().snapshot();
  EXPECT_EQ(AfterCold.Misses, Before.Misses + 1);
  EXPECT_GT(AfterCold.Insertions, Before.Insertions);

  const PropagatedState Warm =
      Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End);
  const auto AfterWarm = PropagationCache::global().snapshot();
  EXPECT_EQ(AfterWarm.Hits, AfterCold.Hits + 1);

  const ProbBounds A = Analyzer.boundsFor(Cold, Spec);
  const ProbBounds B = Analyzer.boundsFor(Warm, Spec);
  EXPECT_EQ(A.Lower, B.Lower);
  EXPECT_EQ(A.Upper, B.Upper);
}

TEST(PropagationCacheTest, WarmEqualsColdUnderSoundRounding) {
  SoundRoundingScope Sound(true);
  Rng R(13);
  Sequential Net = makeRandomMlp(R, {4, 12, 8, 3});
  const Tensor Start = Tensor::randn({1, 4}, R);
  const Tensor End = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 3);
  const GenProve Analyzer(GenProveConfig{});

  // Reference bounds with the cache off.
  const ProbBounds Reference = Analyzer.boundsFor(
      Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End), Spec);

  CacheScope Cache(32u << 20);
  const ProbBounds Cold = Analyzer.boundsFor(
      Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End), Spec);
  const ProbBounds Warm = Analyzer.boundsFor(
      Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End), Spec);
  EXPECT_EQ(Reference.Lower, Cold.Lower);
  EXPECT_EQ(Reference.Upper, Cold.Upper);
  EXPECT_EQ(Reference.Lower, Warm.Lower);
  EXPECT_EQ(Reference.Upper, Warm.Upper);
}

/// Two pipelines sharing a prefix (same decoder, different heads): the
/// second propagation must warm-start mid-network off the shared-prefix
/// boundary state, and still match its own cold bounds exactly.
TEST(PropagationCacheTest, PrefixSharedPipelinesWarmStartMidNetwork) {
  Rng R(17);
  Sequential Shared = makeRandomMlp(R, {4, 12, 8});
  auto HeadA = std::make_unique<Linear>(8, 3);
  HeadA->weight() = Tensor::randn({3, 8}, R, 0.8);
  HeadA->bias() = Tensor::randn({3}, R, 0.4);
  auto HeadB = std::make_unique<Linear>(8, 3);
  HeadB->weight() = Tensor::randn({3, 8}, R, 0.8);
  HeadB->bias() = Tensor::randn({3}, R, 0.4);

  std::vector<const Layer *> PipeA = Shared.view();
  PipeA.push_back(HeadA.get());
  std::vector<const Layer *> PipeB = Shared.view();
  PipeB.push_back(HeadB.get());

  const Tensor Start = Tensor::randn({1, 4}, R);
  const Tensor End = Tensor::randn({1, 4}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(2, 3);
  const GenProve Analyzer(GenProveConfig{});

  // Cold reference for pipeline B, cache off.
  const ProbBounds ColdB = Analyzer.boundsFor(
      Analyzer.propagateSegment(PipeB, Shape({1, 4}), Start, End), Spec);

  CacheScope Cache(32u << 20);
  (void)Analyzer.propagateSegment(PipeA, Shape({1, 4}), Start, End);
  const auto AfterA = PropagationCache::global().snapshot();
  const ProbBounds WarmB = Analyzer.boundsFor(
      Analyzer.propagateSegment(PipeB, Shape({1, 4}), Start, End), Spec);
  const auto AfterB = PropagationCache::global().snapshot();

  // B shares A's prefix boundary states: the probe finds one (a hit, not
  // a full-depth one), and the bounds still match B's own cold run.
  EXPECT_EQ(AfterB.Hits, AfterA.Hits + 1);
  EXPECT_EQ(WarmB.Lower, ColdB.Lower);
  EXPECT_EQ(WarmB.Upper, ColdB.Upper);
}

/// The AbsWeightCache generation regression: mutating a weight through a
/// mutable accessor must advance the generation, change the layer
/// fingerprint, and therefore miss the propagation cache instead of
/// serving bounds for the stale parameters.
TEST(PropagationCacheTest, WeightMutationInvalidatesCachedStates) {
  Rng R(19);
  auto L = std::make_unique<Linear>(3, 2);
  L->weight() = Tensor::randn({2, 3}, R, 0.8);
  L->bias() = Tensor::randn({2}, R, 0.4);
  Linear *Raw = L.get();
  Sequential Net;
  Net.add(std::move(L));

  const uint64_t FpBefore = Raw->fingerprint();
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  const GenProve Analyzer(GenProveConfig{});

  CacheScope Cache(32u << 20);
  (void)Analyzer.propagateSegment(Net.view(), Shape({1, 3}), Start, End);

  // Mutate through the mutable accessor: generation and fingerprint move.
  Raw->weight()[0] += 0.25;
  const uint64_t FpAfter = Raw->fingerprint();
  EXPECT_NE(FpBefore, FpAfter);

  const auto BeforeRerun = PropagationCache::global().snapshot();
  const PropagatedState Fresh =
      Analyzer.propagateSegment(Net.view(), Shape({1, 3}), Start, End);
  const auto AfterRerun = PropagationCache::global().snapshot();
  EXPECT_EQ(AfterRerun.Misses, BeforeRerun.Misses + 1)
      << "stale entry served after weight mutation";

  // And the bounds match a cache-off propagation of the mutated net.
  PropagationCache::global().clear();
  PropagationCache::global().configure(0);
  const PropagatedState Reference =
      Analyzer.propagateSegment(Net.view(), Shape({1, 3}), Start, End);
  EXPECT_EQ(Analyzer.boundsFor(Fresh, Spec).Lower,
            Analyzer.boundsFor(Reference, Spec).Lower);
  EXPECT_EQ(Analyzer.boundsFor(Fresh, Spec).Upper,
            Analyzer.boundsFor(Reference, Spec).Upper);
}

TEST(PropagationCacheTest, EvictionKeepsBytesWithinBudget) {
  Rng R(23);
  Sequential Net = makeRandomMlp(R, {4, 16, 12, 3});
  const GenProve Analyzer(GenProveConfig{});

  // A budget far too small for every distinct query's boundary states.
  CacheScope Cache(16u << 10);
  const size_t Budget = PropagationCache::global().budgetBytes();
  for (int I = 0; I < 12; ++I) {
    const Tensor Start = Tensor::randn({1, 4}, R);
    const Tensor End = Tensor::randn({1, 4}, R);
    (void)Analyzer.propagateSegment(Net.view(), Shape({1, 4}), Start, End);
    EXPECT_LE(PropagationCache::global().bytes(), Budget);
  }
  const auto S = PropagationCache::global().snapshot();
  EXPECT_GT(S.Evictions, 0) << "budget never exerted pressure";
  EXPECT_LE(S.Bytes, S.BudgetBytes);
}

TEST(PropagationCacheTest, ConfigureZeroDisablesAndDrops) {
  Rng R(29);
  Sequential Net = makeRandomMlp(R, {3, 8, 2});
  const GenProve Analyzer(GenProveConfig{});
  {
    CacheScope Cache(8u << 20);
    (void)Analyzer.propagateSegment(Net.view(), Shape({1, 3}),
                                    Tensor::randn({1, 3}, R),
                                    Tensor::randn({1, 3}, R));
    EXPECT_GT(PropagationCache::global().bytes(), 0u);
  }
  EXPECT_FALSE(PropagationCache::global().enabled());
  EXPECT_EQ(PropagationCache::global().bytes(), 0u);
}

/// Batched propagations go through the cache as one joint state: a
/// repeated batch warm-starts whole, and the per-query bounds stay
/// bit-identical to the cold batch.
TEST(PropagationCacheTest, RepeatedBatchWarmStartsJointState) {
  Rng R(37);
  Sequential Net = makeRandomMlp(R, {4, 12, 3});
  const auto Segments = makeSegments(4, 4, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 3);
  const GenProve Analyzer(GenProveConfig{});

  CacheScope Cache(32u << 20);
  const auto Cold =
      Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 4}), Segments);
  const auto AfterCold = PropagationCache::global().snapshot();
  const auto Warm =
      Analyzer.propagateSegmentsBatch(Net.view(), Shape({1, 4}), Segments);
  const auto AfterWarm = PropagationCache::global().snapshot();
  EXPECT_GT(AfterWarm.Hits, AfterCold.Hits);
  ASSERT_EQ(Cold.size(), Warm.size());
  for (size_t I = 0; I < Cold.size(); ++I) {
    EXPECT_EQ(Analyzer.boundsFor(Cold[I], Spec).Lower,
              Analyzer.boundsFor(Warm[I], Spec).Lower);
    EXPECT_EQ(Analyzer.boundsFor(Cold[I], Spec).Upper,
              Analyzer.boundsFor(Warm[I], Spec).Upper);
  }
}

} // namespace
} // namespace genprove
