//===- tests/pipeline_test.cpp - decoder->classifier integration -*- C++ -*-===//
//
// End-to-end integration on miniature versions of the paper's pipeline:
// a (lightly trained) VAE decoder followed by a classifier, verified with
// GenProve and cross-checked against dense sampling.
//
//===----------------------------------------------------------------------===//

#include "src/core/genprove.h"
#include "src/data/synth_shoes.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/train/trainer.h"
#include "src/train/vae.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

/// Shared miniature pipeline (small images to keep the test fast).
struct MiniPipeline {
  Dataset Set;
  Vae Model;
  Sequential Classifier;

  static MiniPipeline make(uint64_t Seed) {
    Rng R(Seed);
    Dataset Set = makeSynthShoes(120, 8, Seed);
    Sequential Enc = makeEncoderSmall(3, 8, 2 * 4);
    Sequential Dec = makeDecoderSmall(4, 3, 8);
    kaimingInit(Enc, R);
    kaimingInit(Dec, R);
    Vae Model(std::move(Enc), std::move(Dec), 4);
    Vae::Config VC;
    VC.Epochs = 2;
    Model.train(Set, VC, R);

    Sequential Cls = makeConvSmall(3, 8, Set.numClasses());
    kaimingInit(Cls, R);
    TrainConfig TC;
    TC.Epochs = 2;
    TC.BatchSize = 32;
    trainClassifier(Cls, Set, TC, R);
    return MiniPipeline{std::move(Set), std::move(Model), std::move(Cls)};
  }
};

class PipelineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineProperty, ExactBoundsMatchDenseSampling) {
  MiniPipeline P = MiniPipeline::make(GetParam());
  const auto Pipeline =
      concatViews(P.Model.decoder().view(), P.Classifier.view());
  const Shape LatentShape({1, 4});

  Rng R(GetParam() + 1);
  const Tensor E1 = P.Model.encode(P.Set.image(0));
  const Tensor E2 = P.Model.encode(P.Set.image(1));
  const OutputSpec Spec =
      OutputSpec::argmaxWins(P.Set.Labels[0], P.Set.numClasses());

  GenProveConfig Config; // exact
  const AnalysisResult Result = GenProve(Config).analyzeSegment(
      Pipeline, LatentShape, E1, E2, Spec);
  ASSERT_FALSE(Result.OutOfMemory);
  EXPECT_NEAR(Result.Bounds.width(), 0.0, 1e-9);

  int64_t Sat = 0;
  const int64_t N = 2000;
  for (int64_t I = 0; I < N; ++I) {
    const double T = (static_cast<double>(I) + 0.5) / N;
    Tensor Z({1, 4});
    for (int64_t J = 0; J < 4; ++J)
      Z[J] = E1[J] + T * (E2[J] - E1[J]);
    const Tensor Out = forwardConcretePoints(Pipeline, LatentShape, Z);
    if (Spec.satisfied(Out))
      ++Sat;
  }
  EXPECT_NEAR(Result.Bounds.Lower, static_cast<double>(Sat) / N, 0.02);
}

TEST_P(PipelineProperty, RelaxedBoundsBracketExact) {
  MiniPipeline P = MiniPipeline::make(GetParam() + 100);
  const auto Pipeline =
      concatViews(P.Model.decoder().view(), P.Classifier.view());
  const Shape LatentShape({1, 4});
  const Tensor E1 = P.Model.encode(P.Set.image(2));
  const Tensor E2 = P.Model.encode(P.Set.image(3));
  const OutputSpec Spec =
      OutputSpec::argmaxWins(P.Set.Labels[2], P.Set.numClasses());

  GenProveConfig Exact;
  const ProbBounds ExactBounds =
      GenProve(Exact)
          .analyzeSegment(Pipeline, LatentShape, E1, E2, Spec)
          .Bounds;

  GenProveConfig Relaxed;
  Relaxed.RelaxPercent = 0.3;
  Relaxed.ClusterK = 20.0;
  Relaxed.NodeThreshold = 16;
  const ProbBounds RelaxedBounds =
      GenProve(Relaxed)
          .analyzeSegment(Pipeline, LatentShape, E1, E2, Spec)
          .Bounds;

  EXPECT_LE(RelaxedBounds.Lower, ExactBounds.Lower + 1e-9);
  EXPECT_GE(RelaxedBounds.Upper, ExactBounds.Upper - 1e-9);
}

TEST_P(PipelineProperty, PropagationIsDeterministic) {
  MiniPipeline P = MiniPipeline::make(GetParam() + 200);
  const auto Pipeline =
      concatViews(P.Model.decoder().view(), P.Classifier.view());
  const Shape LatentShape({1, 4});
  const Tensor E1 = P.Model.encode(P.Set.image(4));
  const Tensor E2 = P.Model.encode(P.Set.image(5));
  const OutputSpec Spec =
      OutputSpec::argmaxWins(P.Set.Labels[4], P.Set.numClasses());

  GenProveConfig Config;
  Config.RelaxPercent = 0.1;
  Config.NodeThreshold = 32;
  const ProbBounds A = GenProve(Config)
                           .analyzeSegment(Pipeline, LatentShape, E1, E2,
                                           Spec)
                           .Bounds;
  const ProbBounds B = GenProve(Config)
                           .analyzeSegment(Pipeline, LatentShape, E1, E2,
                                           Spec)
                           .Bounds;
  EXPECT_DOUBLE_EQ(A.Lower, B.Lower);
  EXPECT_DOUBLE_EQ(A.Upper, B.Upper);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(11u, 29u));

TEST(Pipeline, FlipInterpolationSpecRuns) {
  // The head-orientation construction end-to-end at miniature scale.
  Rng R(7);
  Dataset Set = makeSynthShoes(60, 8, 7);
  Sequential Enc = makeEncoderSmall(3, 8, 2 * 4);
  Sequential Dec = makeDecoderSmall(4, 3, 8);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  Vae Model(std::move(Enc), std::move(Dec), 4);
  Vae::Config VC;
  VC.Epochs = 1;
  Model.train(Set, VC, R);

  const Tensor E1 = Model.encode(Set.image(0));
  const Tensor E2 = Model.encode(Set.flippedImage(0));
  Sequential Cls = makeConvSmall(3, 8, Set.numClasses());
  kaimingInit(Cls, R);
  const auto Pipeline = concatViews(Model.decoder().view(), Cls.view());

  GenProveConfig Config;
  const AnalysisResult Result = GenProve(Config).analyzeSegment(
      Pipeline, Shape({1, 4}), E1, E2,
      OutputSpec::argmaxWins(0, Set.numClasses()));
  EXPECT_FALSE(Result.OutOfMemory);
  EXPECT_LE(Result.Bounds.Lower, Result.Bounds.Upper);
}

} // namespace
} // namespace genprove
