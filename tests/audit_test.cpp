//===- tests/audit_test.cpp - containment audit over the zoo ----*- C++ -*-===//
//
// The fuzz-style soundness check: >= 1000 seeded latent samples per zoo
// model, every concrete round-to-nearest output must lie inside the box
// AND zonotope-family bounds computed with SoundRounding on.
//
//===----------------------------------------------------------------------===//

#include "src/audit/audit.h"
#include "src/obs/json.h"
#include "src/util/fp.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

AuditConfig fuzzConfig() {
  AuditConfig Config;
  Config.SamplesPerModel = 1000;
  Config.Seed = 0x5eed5eedull;
  Config.Differential = true;
  return Config;
}

TEST(Audit, ZooHasZeroContainmentViolations) {
  const AuditReport Report = auditBuiltinZoo(fuzzConfig());
  EXPECT_EQ(Report.TotalViolations, 0);
  EXPECT_TRUE(Report.ok());
  // Three models, >= 1000 samples each, several domains each.
  EXPECT_EQ(Report.Models.size(), 3u);
  EXPECT_GE(Report.TotalSamples, 3 * 1000);
  for (const ModelAudit &M : Report.Models) {
    EXPECT_GE(M.Domains.size(), 4u) << M.Model;
    for (const DomainAudit &Dom : M.Domains) {
      EXPECT_FALSE(Dom.OutOfMemory) << M.Model << "/" << Dom.Domain;
      EXPECT_EQ(Dom.Violations, 0) << M.Model << "/" << Dom.Domain;
      EXPECT_GE(Dom.Samples, 1000) << M.Model << "/" << Dom.Domain;
    }
  }
}

TEST(Audit, DilationStaysFarBelowOnePercent) {
  const AuditReport Report = auditBuiltinZoo(fuzzConfig());
  // Outward rounding must cost essentially nothing: the acceptance bar is
  // << 1% relative width increase per layer.
  EXPECT_GE(Report.MaxDilationRel, 0.0);
  EXPECT_LT(Report.MaxDilationRel, 0.01);
  for (const ModelAudit &M : Report.Models) {
    EXPECT_FALSE(M.Layers.empty()) << M.Model;
    for (const LayerDilation &L : M.Layers) {
      EXPECT_GE(L.MeanRel, 0.0) << M.Model << " layer " << L.Index;
      EXPECT_LE(L.MeanRel, L.MaxRel + 1e-15) << M.Model << " layer " << L.Index;
      EXPECT_LT(L.MaxRel, 0.01) << M.Model << " layer " << L.Index;
    }
  }
}

/// The fused and two-tier paths ride the same >= 1000-sample oracle: the
/// fused hulls must be violation-free (and, via DifferentialOk,
/// bit-identical to the unfused ones), and the screened consistency check
/// must cover every zoo model with its piece classification recorded.
TEST(Audit, FusedAndScreenedPathsCovered) {
  const AuditReport Report = auditBuiltinZoo(fuzzConfig());
  for (const ModelAudit &M : Report.Models) {
    int FusedDomains = 0;
    bool SawScreened = false;
    for (const DomainAudit &Dom : M.Domains) {
      if (Dom.Domain.size() > 6 &&
          Dom.Domain.compare(Dom.Domain.size() - 6, 6, "_fused") == 0) {
        ++FusedDomains;
        EXPECT_EQ(Dom.Violations, 0) << M.Model << "/" << Dom.Domain;
        EXPECT_GE(Dom.Samples, 1000) << M.Model << "/" << Dom.Domain;
      }
      if (Dom.Domain == "screened") {
        SawScreened = true;
        EXPECT_EQ(Dom.Violations, 0) << M.Model;
        EXPECT_GE(Dom.Samples, 1000) << M.Model;
      }
    }
    EXPECT_EQ(FusedDomains, 3) << M.Model;
    EXPECT_TRUE(SawScreened) << M.Model;
    // Piece classification totals cover the whole screened range.
    EXPECT_EQ(M.ScreenedInside + M.ScreenedOutside + M.ScreenedBorderline, 32)
        << M.Model;
    // The fused-vs-unfused and screened-vs-full differentials fold into
    // DifferentialOk.
    EXPECT_TRUE(M.DifferentialOk) << M.Model << ": " << M.DifferentialNote;
  }
  // The adversarial spec slices through the output range, so the MLP
  // (whose pipeline the screen compiles) must produce borderline pieces —
  // the screen cannot certify the boundary region.
  ASSERT_FALSE(Report.Models.empty());
  EXPECT_GT(Report.Models[0].ScreenedBorderline, 0);
  // Conv pipelines are uncompilable: every piece must be borderline,
  // never a false certificate.
  for (const ModelAudit &M : Report.Models)
    if (M.Model != "mlp") {
      EXPECT_EQ(M.ScreenedInside, 0) << M.Model;
      EXPECT_EQ(M.ScreenedOutside, 0) << M.Model;
      EXPECT_EQ(M.ScreenedBorderline, 32) << M.Model;
    }
}

TEST(Audit, DifferentialNestingHolds) {
  const AuditReport Report = auditBuiltinZoo(fuzzConfig());
  for (const ModelAudit &M : Report.Models)
    EXPECT_TRUE(M.DifferentialOk) << M.Model << ": " << M.DifferentialNote;
}

TEST(Audit, DeterministicAcrossRuns) {
  AuditConfig Config = fuzzConfig();
  Config.SamplesPerModel = 64; // keep the repeat cheap
  Config.Differential = false;
  const AuditReport A = auditBuiltinZoo(Config);
  const AuditReport B = auditBuiltinZoo(Config);
  ASSERT_EQ(A.Models.size(), B.Models.size());
  EXPECT_EQ(A.TotalSamples, B.TotalSamples);
  EXPECT_EQ(A.TotalViolations, B.TotalViolations);
  EXPECT_DOUBLE_EQ(A.MaxDilationRel, B.MaxDilationRel);
  for (size_t I = 0; I < A.Models.size(); ++I) {
    ASSERT_EQ(A.Models[I].Layers.size(), B.Models[I].Layers.size());
    for (size_t J = 0; J < A.Models[I].Layers.size(); ++J) {
      EXPECT_DOUBLE_EQ(A.Models[I].Layers[J].MeanRel,
                       B.Models[I].Layers[J].MeanRel);
      EXPECT_DOUBLE_EQ(A.Models[I].Layers[J].MaxRel,
                       B.Models[I].Layers[J].MaxRel);
    }
  }
}

TEST(Audit, RestoresSoundRoundingState) {
  EXPECT_FALSE(soundRoundingEnabled());
  AuditConfig Config = fuzzConfig();
  Config.SamplesPerModel = 8;
  Config.Differential = false;
  (void)auditBuiltinZoo(Config);
  EXPECT_FALSE(soundRoundingEnabled());
}

TEST(Audit, ReportJsonValidates) {
  AuditConfig Config = fuzzConfig();
  Config.SamplesPerModel = 16;
  const AuditReport Report = auditBuiltinZoo(Config);
  const std::string Json = auditReportJson(Report);
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"total_violations\""), std::string::npos);
  EXPECT_NE(Json.find("\"max_dilation_rel\""), std::string::npos);
  EXPECT_NE(Json.find("\"domains\""), std::string::npos);
}

} // namespace
} // namespace genprove
