//===- tests/region_test.cpp - Region representation tests ------*- C++ -*-===//

#include "src/domains/region.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(Region, SegmentEvaluatesAtEndpoints) {
  Tensor A({1, 3}, {1.0, 2.0, 3.0});
  Tensor B({1, 3}, {-1.0, 0.0, 5.0});
  const Region Seg = makeSegmentRegion(A, B);
  const Tensor P0 = evalCurve(Seg, 0.0);
  const Tensor P1 = evalCurve(Seg, 1.0);
  for (int64_t J = 0; J < 3; ++J) {
    EXPECT_NEAR(P0[J], A[J], 1e-12);
    EXPECT_NEAR(P1[J], B[J], 1e-12);
  }
  const Tensor Mid = evalCurve(Seg, 0.5);
  EXPECT_NEAR(Mid[0], 0.0, 1e-12);
  EXPECT_NEAR(Mid[2], 4.0, 1e-12);
}

TEST(Region, SegmentSubIntervalParameterization) {
  Tensor A({1, 2}, {0.0, 0.0});
  Tensor B({1, 2}, {4.0, 8.0});
  // Segment covering global parameters [0.25, 0.75]: gamma(0.25) = A.
  const Region Seg = makeSegmentRegion(A, B, 0.5, 0.25, 0.75);
  const Tensor P = evalCurve(Seg, 0.25);
  EXPECT_NEAR(P[0], 0.0, 1e-12);
  const Tensor Q = evalCurve(Seg, 0.75);
  EXPECT_NEAR(Q[1], 8.0, 1e-12);
  EXPECT_EQ(Seg.nodes(), 2);
  EXPECT_EQ(Seg.degree(), 1);
}

TEST(Region, QuadraticPassesThroughControlValues) {
  Tensor A0({1, 2}, {1.0, 0.0});
  Tensor A1({1, 2}, {0.0, 2.0});
  Tensor A2({1, 2}, {-1.0, 1.0});
  const Region Q = makeQuadraticRegion(A0, A1, A2);
  // gamma(t) = (1 - t^2, 2t + t^2).
  const Tensor P = evalCurve(Q, 0.5);
  EXPECT_NEAR(P[0], 0.75, 1e-12);
  EXPECT_NEAR(P[1], 1.25, 1e-12);
  EXPECT_EQ(Q.degree(), 2);
  EXPECT_EQ(Q.nodes(), 3);
}

TEST(Region, ComponentRangeIncludesQuadraticVertex) {
  // gamma(t)_0 = (t - 0.5)^2 = 0.25 - t + t^2; min 0 at t = 0.5.
  Tensor A0({1, 1}, {0.25});
  Tensor A1({1, 1}, {-1.0});
  Tensor A2({1, 1}, {1.0});
  const Region Q = makeQuadraticRegion(A0, A1, A2);
  const Interval Range = curveComponentRange(Q, 0);
  EXPECT_NEAR(Range.Lo, 0.0, 1e-12);
  EXPECT_NEAR(Range.Hi, 0.25, 1e-12);
}

TEST(Region, BoundingBoxCoversSampledCurvePoints) {
  Rng R(3);
  Tensor A0 = Tensor::randn({1, 5}, R);
  Tensor A1 = Tensor::randn({1, 5}, R);
  Tensor A2 = Tensor::randn({1, 5}, R);
  const Region Q = makeQuadraticRegion(A0, A1, A2, 1.0, 0.2, 0.9);
  const Region Box = boundingBox(Q);
  EXPECT_EQ(Box.Kind, RegionKind::Box);
  EXPECT_DOUBLE_EQ(Box.Weight, Q.Weight);
  for (int Trial = 0; Trial < 100; ++Trial) {
    const double T = R.uniform(0.2, 0.9);
    const Tensor P = evalCurve(Q, T);
    for (int64_t J = 0; J < 5; ++J) {
      EXPECT_LE(P[J], Box.Center[J] + Box.Radius[J] + 1e-9);
      EXPECT_GE(P[J], Box.Center[J] - Box.Radius[J] - 1e-9);
    }
  }
}

TEST(Region, MergeBoxesAddsWeightAndCoversBoth) {
  Tensor C1({1, 2}, {0.0, 0.0});
  Tensor R1({1, 2}, {1.0, 1.0});
  Tensor C2({1, 2}, {3.0, 0.5});
  Tensor R2({1, 2}, {0.5, 2.0});
  const Region M = mergeBoxes(makeBoxRegion(C1, R1, 0.25),
                              makeBoxRegion(C2, R2, 0.35));
  EXPECT_NEAR(M.Weight, 0.6, 1e-12);
  // Covers [-1, 3.5] x [-1.5, 2.5].
  EXPECT_NEAR(M.Center[0] - M.Radius[0], -1.0, 1e-12);
  EXPECT_NEAR(M.Center[0] + M.Radius[0], 3.5, 1e-12);
  EXPECT_NEAR(M.Center[1] - M.Radius[1], -1.5, 1e-12);
  EXPECT_NEAR(M.Center[1] + M.Radius[1], 2.5, 1e-12);
}

TEST(Region, ChordLength) {
  Tensor A({1, 2}, {0.0, 0.0});
  Tensor B({1, 2}, {3.0, 4.0});
  EXPECT_NEAR(curveChordLength(makeSegmentRegion(A, B)), 5.0, 1e-12);
}

TEST(Region, LinearRootsInsideInterval) {
  // Component crosses zero at t = 0.5.
  Tensor A({1, 1}, {1.0});
  Tensor B({1, 1}, {-1.0});
  const Region Seg = makeSegmentRegion(A, B);
  std::vector<double> Roots;
  curveComponentRoots(Seg, 0, Roots);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_NEAR(Roots[0], 0.5, 1e-12);
}

TEST(Region, RootsOutsideIntervalIgnored) {
  Tensor A({1, 1}, {1.0});
  Tensor B({1, 1}, {0.2}); // never crosses zero on [0, 1]
  const Region Seg = makeSegmentRegion(A, B);
  std::vector<double> Roots;
  curveComponentRoots(Seg, 0, Roots);
  EXPECT_TRUE(Roots.empty());
}

TEST(Region, QuadraticDoubleCrossing) {
  // (t - 0.25)(t - 0.75) = t^2 - t + 0.1875.
  Tensor A0({1, 1}, {0.1875});
  Tensor A1({1, 1}, {-1.0});
  Tensor A2({1, 1}, {1.0});
  const Region Q = makeQuadraticRegion(A0, A1, A2);
  std::vector<double> Roots;
  curveComponentRoots(Q, 0, Roots);
  std::sort(Roots.begin(), Roots.end());
  ASSERT_EQ(Roots.size(), 2u);
  EXPECT_NEAR(Roots[0], 0.25, 1e-9);
  EXPECT_NEAR(Roots[1], 0.75, 1e-9);
}

TEST(Region, FunctionalRootsMatchComponentCombination) {
  // gamma(t) = (t, 1 - 2t); g = (1, 1), c = 0 -> 1 - t = 0 has no root in
  // (0, 1) open? t = 1 is the boundary, excluded.
  Tensor A({1, 2}, {0.0, 1.0});
  Tensor B({1, 2}, {1.0, -1.0});
  const Region Seg = makeSegmentRegion(A, B);
  Tensor G({1, 2}, {1.0, 1.0});
  std::vector<double> Roots;
  curveFunctionalRoots(Seg, G, 0.0, Roots);
  EXPECT_TRUE(Roots.empty());
  // g = (1, -1): t - (1 - 2t) = 3t - 1 -> root at 1/3.
  Tensor G2({1, 2}, {1.0, -1.0});
  curveFunctionalRoots(Seg, G2, 0.0, Roots);
  ASSERT_EQ(Roots.size(), 1u);
  EXPECT_NEAR(Roots[0], 1.0 / 3.0, 1e-12);
}

} // namespace
} // namespace genprove
