//===- tests/resilience_test.cpp - degradation ladder & fault injection -===//
///
/// Covers the resilience layer end to end: saturating device accounting,
/// lowest-mass boxing, checkpointed rollback under injected OOM at every
/// layer, the interval fallback, deadline expiry on an injected clock,
/// non-finite quarantine, and the Appendix C refinement schedules.
///
/// The soundness oracle throughout: a degraded probabilistic interval must
/// contain the interval the unlimited-budget exact analysis produces.

#include "src/core/genprove.h"
#include "src/domains/fault_injection.h"
#include "src/domains/propagate.h"
#include "src/domains/relaxation.h"
#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"
#include "src/obs/metrics.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.8);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.5);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// [Lower, Upper] of \p Outer contains \p Inner (up to float slack).
void expectContains(const ProbBounds &Outer, const ProbBounds &Inner) {
  EXPECT_LE(Outer.Lower, Inner.Lower + 1e-9);
  EXPECT_GE(Outer.Upper, Inner.Upper - 1e-9);
}

// ---------------------------------------------------------------------------
// Satellite: saturating device-memory accounting.
// ---------------------------------------------------------------------------

TEST(MemoryModel, StateBytesSaturatesInsteadOfWrapping) {
  constexpr size_t Saturated = std::numeric_limits<size_t>::max();
  // Honest sizes are exact.
  EXPECT_EQ(stateBytes(3, 4), 3u * 4u * sizeof(double));
  EXPECT_EQ(stateBytes(0, 1000), 0u);
  // Corrupt (negative) bookkeeping saturates: any finite budget rejects it.
  EXPECT_EQ(stateBytes(-1, 4), Saturated);
  EXPECT_EQ(stateBytes(4, -1), Saturated);
  EXPECT_EQ(stateBytes(std::numeric_limits<int64_t>::min(), 8), Saturated);
  // Products that overflow 64 bits saturate instead of wrapping to a small
  // number that would silently pass the budget check.
  const int64_t Big = int64_t(1) << 40;
  EXPECT_EQ(stateBytes(Big, Big), Saturated);
  // sizeof(double) multiply can overflow on its own.
  EXPECT_EQ(stateBytes(int64_t(1) << 31, int64_t(1) << 31), Saturated);

  DeviceMemoryModel Memory(1 << 20);
  EXPECT_FALSE(Memory.chargeState(Big, Big));
  EXPECT_TRUE(Memory.exhausted());
  DeviceMemoryModel Fresh(1 << 20);
  EXPECT_FALSE(Fresh.chargeState(-1, 16));
  EXPECT_FALSE(Fresh.wouldFit(-1, 16));
}

TEST(MemoryModel, TryChargeLeavesModelUntouchedOnFailure) {
  DeviceMemoryModel Memory(1024);
  EXPECT_TRUE(Memory.tryChargeState(16, 4)); // 512 bytes
  EXPECT_EQ(Memory.peakBytes(), 512u);
  // A failing tryCharge must not poison the peak — rollback depends on it.
  EXPECT_FALSE(Memory.tryChargeState(64, 4)); // 2048 bytes > budget
  EXPECT_EQ(Memory.peakBytes(), 512u);
  EXPECT_FALSE(Memory.exhausted());
  EXPECT_TRUE(Memory.tryChargeState(24, 4)); // 768 bytes still fits
  EXPECT_EQ(Memory.peakBytes(), 768u);
  // The legacy charge() records the failed peak (paper semantics).
  EXPECT_FALSE(Memory.chargeState(64, 4));
  EXPECT_TRUE(Memory.exhausted());
}

TEST(MemoryModel, InterceptorForcesChargeFailure) {
  DeviceMemoryModel Memory; // unlimited budget
  FaultInjector Injector({/*OomAtLayer=*/2, /*OomFireCount=*/1});
  Injector.arm(Memory);
  Injector.beginLayer(2, /*FallbackCheap=*/false);
  EXPECT_FALSE(Memory.tryChargeState(1, 1)); // first charge at layer 2 fails
  EXPECT_TRUE(Memory.tryChargeState(1, 1));  // shot spent
  EXPECT_EQ(Injector.injectedOoms(), 1);
}

// ---------------------------------------------------------------------------
// Lowest-mass boxing (the LocalBox rung's coarsening primitive).
// ---------------------------------------------------------------------------

TEST(Relaxation, BoxLowestMassRegionsKeepsHeavyCurvesAndMass) {
  Rng R(5);
  std::vector<Region> Regions;
  const double Weights[] = {0.05, 0.10, 0.15, 0.30, 0.40};
  for (double W : Weights) {
    Tensor A = Tensor::randn({1, 6}, R);
    Tensor B = Tensor::randn({1, 6}, R);
    Regions.push_back(makeSegmentRegion(A, B, W));
  }
  ASSERT_EQ(totalNodes(Regions), 10);

  std::vector<Region> Before = Regions;
  EXPECT_TRUE(boxLowestMassRegions(Regions, /*TargetNodes=*/6));
  EXPECT_LE(totalNodes(Regions), 6);

  // Mass is preserved exactly.
  double Total = 0.0;
  for (const Region &Piece : Regions)
    Total += Piece.Weight;
  EXPECT_NEAR(Total, 1.0, 1e-12);

  // The heaviest curves survive untouched; the light ones were merged into
  // a single box that covers them (spot-check the endpoints).
  int64_t Curves = 0, Boxes = 0;
  for (const Region &Piece : Regions) {
    if (Piece.Kind == RegionKind::Curve) {
      ++Curves;
      EXPECT_GE(Piece.Weight, 0.30 - 1e-12);
    } else {
      ++Boxes;
      for (const Region &Old : Before) {
        if (Old.Weight > 0.15 + 1e-12)
          continue; // survived as a curve
        for (double T : {Old.T0, Old.T1}) {
          const Tensor P = evalCurve(Old, T);
          for (int64_t J = 0; J < P.numel(); ++J) {
            EXPECT_LE(P[J], Piece.Center[J] + Piece.Radius[J] + 1e-9);
            EXPECT_GE(P[J], Piece.Center[J] - Piece.Radius[J] - 1e-9);
          }
        }
      }
    }
  }
  EXPECT_EQ(Curves, 2);
  EXPECT_EQ(Boxes, 1);

  // Already under target: nothing happens.
  EXPECT_FALSE(boxLowestMassRegions(Regions, 1000));
}

// ---------------------------------------------------------------------------
// Injected OOM: checkpointed rollback and the interval fallback.
// ---------------------------------------------------------------------------

/// Fixture holding the genprove_mknet pipeline (Linear, ReLU, Linear,
/// ReLU, Linear) and its unlimited-budget exact bounds as the oracle.
class InjectedOom : public ::testing::Test {
protected:
  void SetUp() override {
    Rng R(321);
    Net = makeRandomMlp(R, {4, 16, 16, 3});
    Start = Tensor::randn({1, 4}, R);
    End = Tensor::randn({1, 4}, R);
    Spec = OutputSpec::argmaxWins(0, 3);
    const GenProve Exact(GenProveConfig{});
    ExactResult =
        Exact.analyzeSegment(Net.view(), Shape({1, 4}), Start, End, Spec);
    ASSERT_FALSE(ExactResult.OutOfMemory);
    ASSERT_FALSE(ExactResult.Degraded);
  }

  AnalysisResult runWithFaults(const FaultPlan &Plan,
                               double DeadlineSeconds = 0.0) {
    FaultInjector Injector(Plan);
    GenProveConfig Config;
    Config.Resilience.Enabled = true;
    Config.Resilience.Faults = &Injector;
    Config.Resilience.DeadlineSeconds = DeadlineSeconds;
    if (Plan.ClockSkewSecondsPerLayer > 0.0)
      Config.Resilience.Clock = Injector.clock();
    const GenProve Analyzer(Config);
    AnalysisResult Result =
        Analyzer.analyzeSegment(Net.view(), Shape({1, 4}), Start, End, Spec);
    FinalClockSeconds = Injector.nowSeconds();
    return Result;
  }

  Sequential Net;
  Tensor Start, End;
  OutputSpec Spec;
  AnalysisResult ExactResult;
  double FinalClockSeconds = 0.0;
};

TEST_F(InjectedOom, EveryLayerYieldsSoundDegradedBounds) {
  const int64_t NumLayers = static_cast<int64_t>(Net.view().size());
  ASSERT_EQ(NumLayers, 5);
  for (int64_t L = 0; L < NumLayers; ++L) {
    SCOPED_TRACE("oom injected at layer " + std::to_string(L));
    FaultPlan Plan;
    Plan.OomAtLayer = L;
    const AnalysisResult Result = runWithFaults(Plan);
    EXPECT_FALSE(Result.OutOfMemory);
    EXPECT_TRUE(Result.Degraded);
    EXPECT_TRUE(Result.Bounds.Degraded);
    EXPECT_GE(Result.Rollbacks + Result.FallbackBoxLayers, 1);
    expectContains(Result.Bounds, ExactResult.Bounds);
    // The timeline shows every layer executed exactly once.
    ASSERT_EQ(static_cast<int64_t>(Result.Layers.size()), NumLayers);
    for (int64_t I = 0; I < NumLayers; ++I)
      EXPECT_EQ(Result.Layers[I].Index, I);
  }
}

TEST_F(InjectedOom, MidPipelineOomDoesNotReexecuteEarlierLayers) {
  FaultPlan Plan;
  Plan.OomAtLayer = 3; // the second ReLU, where the state is widest
  const AnalysisResult Result = runWithFaults(Plan);
  EXPECT_FALSE(Result.OutOfMemory);
  EXPECT_TRUE(Result.Degraded);
  ASSERT_EQ(Result.Layers.size(), 5u);
  // Rollbacks are confined to the failing layer: layers before the
  // checkpoint keep a clean record (they were never re-run) and the
  // failing layer records the retry.
  for (const LayerRecord &Rec : Result.Layers) {
    if (Rec.Index < 3) {
      EXPECT_EQ(Rec.Rollbacks, 0) << "layer " << Rec.Index;
      EXPECT_EQ(Rec.Rung, DegradeRung::None) << "layer " << Rec.Index;
    }
  }
  EXPECT_GE(Result.Layers[3].Rollbacks, 1);
  EXPECT_NE(Result.Layers[3].Rung, DegradeRung::None);
  expectContains(Result.Bounds, ExactResult.Bounds);
}

TEST_F(InjectedOom, ExhaustedRetriesFallBackToIntervalBox) {
  FaultPlan Plan;
  Plan.OomAtLayer = 1;
  Plan.OomFireCount = 1000; // outlast MaxLayerRetries: local boxing is hopeless
  const AnalysisResult Result = runWithFaults(Plan);
  EXPECT_FALSE(Result.OutOfMemory);
  EXPECT_TRUE(Result.Degraded);
  EXPECT_EQ(Result.Rung, DegradeRung::FullBox);
  EXPECT_GE(Result.FallbackBoxLayers, 4); // layers 1..4 run under fallback
  expectContains(Result.Bounds, ExactResult.Bounds);
}

TEST_F(InjectedOom, DegradedRunsBumpMetricsCounters) {
  static Counter &DegradedCtr =
      MetricsRegistry::global().counter("propagate.degraded");
  static Counter &FallbackCtr =
      MetricsRegistry::global().counter("propagate.fallback_box");
  static Counter &RollbackCtr =
      MetricsRegistry::global().counter("propagate.rollbacks");
  setMetricsEnabled(true);
  const int64_t Degraded0 = DegradedCtr.value();
  const int64_t Fallback0 = FallbackCtr.value();
  const int64_t Rollback0 = RollbackCtr.value();
  FaultPlan Plan;
  Plan.OomAtLayer = 1;
  Plan.OomFireCount = 1000;
  runWithFaults(Plan);
  setMetricsEnabled(false);
  EXPECT_GT(DegradedCtr.value(), Degraded0);
  EXPECT_GT(FallbackCtr.value(), Fallback0);
  EXPECT_GT(RollbackCtr.value(), Rollback0);
}

// ---------------------------------------------------------------------------
// Deadlines on the injected clock.
// ---------------------------------------------------------------------------

TEST_F(InjectedOom, DeadlineExpiryLiftsToFallbackWithinOneLayerSlack) {
  FaultPlan Plan;
  Plan.ClockSkewSecondsPerLayer = 0.005; // 5 ms per layer
  const double Deadline = 0.001;         // 1 ms: expires at the first layer
  const AnalysisResult Result = runWithFaults(Plan, Deadline);
  EXPECT_FALSE(Result.OutOfMemory);
  EXPECT_TRUE(Result.Degraded);
  EXPECT_TRUE(Result.DeadlineHit);
  EXPECT_EQ(Result.Rung, DegradeRung::FullBox);
  EXPECT_EQ(Result.FallbackBoxLayers, 5);
  // Termination within deadline + one layer's slack: once expiry is
  // detected the remaining layers run at the (free) fallback rung, so the
  // injected clock never advances past the layer that noticed.
  EXPECT_LE(FinalClockSeconds, Deadline + Plan.ClockSkewSecondsPerLayer);
  expectContains(Result.Bounds, ExactResult.Bounds);
}

TEST_F(InjectedOom, GenerousDeadlineDoesNotDegrade) {
  FaultPlan Plan;
  Plan.ClockSkewSecondsPerLayer = 0.005;
  const AnalysisResult Result = runWithFaults(Plan, /*Deadline=*/10.0);
  EXPECT_FALSE(Result.Degraded);
  EXPECT_FALSE(Result.DeadlineHit);
  EXPECT_NEAR(Result.Bounds.Lower, ExactResult.Bounds.Lower, 1e-12);
  EXPECT_NEAR(Result.Bounds.Upper, ExactResult.Bounds.Upper, 1e-12);
}

// ---------------------------------------------------------------------------
// Non-finite quarantine.
// ---------------------------------------------------------------------------

TEST_F(InjectedOom, NanPoisoningIsQuarantinedAndWidensSoundly) {
  FaultPlan Plan;
  Plan.NanAtLayer = 2;
  const AnalysisResult Result = runWithFaults(Plan);
  EXPECT_FALSE(Result.OutOfMemory);
  EXPECT_TRUE(Result.Degraded);
  EXPECT_GT(Result.QuarantinedMass, 0.0);
  EXPECT_TRUE(std::isfinite(Result.QuarantinedMass));
  // Quarantined mass is unaccounted-for probability: the upper bound must
  // absorb it, and the interval must stay sound and NaN-free.
  expectContains(Result.Bounds, ExactResult.Bounds);
  EXPECT_TRUE(std::isfinite(Result.Bounds.Lower));
  EXPECT_TRUE(std::isfinite(Result.Bounds.Upper));
  EXPECT_GE(Result.Bounds.Lower, 0.0);
  EXPECT_LE(Result.Bounds.Upper, 1.0);
}

TEST(FaultInjection, RegionIsFiniteDetectsPoison) {
  Rng R(9);
  std::vector<Region> Regions;
  Regions.push_back(
      makeSegmentRegion(Tensor::randn({1, 3}, R), Tensor::randn({1, 3}, R)));
  Regions.push_back(makeBoxRegion(Tensor({1, 2}, {0.0, 1.0}),
                                  Tensor({1, 2}, {0.5, 0.5}), 1.0));
  for (const Region &Piece : Regions)
    EXPECT_TRUE(regionIsFinite(Piece));
  FaultInjector Injector;
  Injector.poisonRegions(Regions);
  for (const Region &Piece : Regions)
    EXPECT_FALSE(regionIsFinite(Piece));
}

// ---------------------------------------------------------------------------
// Satellite: the Appendix C retry path (legacy full-restart schedules).
// ---------------------------------------------------------------------------

TEST(RefinementSchedule, TightBudgetRetriesEscalateAndStaySound) {
  Rng R(11);
  // Relaxation fires before conv layers, so the escalation needs a conv
  // pipeline to have any effect.
  Sequential ConvNet;
  {
    auto L = std::make_unique<Linear>(3, 2 * 4 * 4);
    L->weight() = Tensor::randn({32, 3}, R, 0.8);
    L->bias() = Tensor::randn({32}, R, 0.3);
    ConvNet.add(std::move(L));
    ConvNet.add(std::make_unique<ReLU>());
    ConvNet.add(std::make_unique<Reshape>(2, 4, 4));
    auto C = std::make_unique<Conv2d>(2, 3, 3, 1, 1);
    C->weight() = Tensor::randn({3, 2, 3, 3}, R, 0.6);
    C->bias() = Tensor::randn({3}, R, 0.3);
    ConvNet.add(std::move(C));
    ConvNet.add(std::make_unique<ReLU>());
    ConvNet.add(std::make_unique<Flatten>());
    auto L2 = std::make_unique<Linear>(3 * 4 * 4, 2);
    L2->weight() = Tensor::randn({2, 48}, R, 0.5);
    L2->bias() = Tensor::randn({2}, R, 0.3);
    ConvNet.add(std::move(L2));
  }
  const auto Layers = ConvNet.view();
  const Tensor Start = Tensor::randn({1, 3}, R);
  const Tensor End = Tensor::randn({1, 3}, R);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);

  // Calibrate a budget between the exact peak and the heavily-relaxed
  // peak, so the exact first attempt OOMs and an escalated retry fits.
  GenProveConfig ExactConfig;
  const AnalysisResult Exact = GenProve(ExactConfig)
                                   .analyzeSegment(Layers, Shape({1, 3}),
                                                   Start, End, Spec);
  ASSERT_FALSE(Exact.OutOfMemory);
  GenProveConfig RelaxedConfig;
  RelaxedConfig.RelaxPercent = 1.0;
  RelaxedConfig.ClusterK = 5.0;
  RelaxedConfig.NodeThreshold = 2;
  const AnalysisResult Relaxed = GenProve(RelaxedConfig)
                                     .analyzeSegment(Layers, Shape({1, 3}),
                                                     Start, End, Spec);
  ASSERT_FALSE(Relaxed.OutOfMemory);
  ASSERT_LT(Relaxed.PeakBytes, Exact.PeakBytes)
      << "relaxation must shrink the device peak for this test to bite";
  const size_t Budget = (Relaxed.PeakBytes + Exact.PeakBytes) / 2;

  static Counter &RetriesCtr =
      MetricsRegistry::global().counter("refine.retries");
  for (RefinementSchedule Schedule :
       {RefinementSchedule::A, RefinementSchedule::B}) {
    SCOPED_TRACE(Schedule == RefinementSchedule::A ? "schedule A"
                                                   : "schedule B");
    GenProveConfig Config;
    Config.MemoryBudgetBytes = Budget;
    Config.Schedule = Schedule;
    Config.ClusterK = 100.0;
    Config.NodeThreshold = 2;
    Config.MaxRetries = 50;
    setMetricsEnabled(true);
    const int64_t Retries0 = RetriesCtr.value();
    const AnalysisResult Result = GenProve(Config).analyzeSegment(
        Layers, Shape({1, 3}), Start, End, Spec);
    setMetricsEnabled(false);
    EXPECT_FALSE(Result.OutOfMemory);
    EXPECT_GT(Result.Retries, 0);
    EXPECT_EQ(RetriesCtr.value() - Retries0, Result.Retries);
    // Escalation left a trace: p grew from the configured 0.
    EXPECT_GT(Result.UsedRelaxPercent, 0.0);
    EXPECT_LE(Result.UsedClusterK, 100.0);
    // The coarsened analysis stays sound w.r.t. the exact bounds.
    expectContains(Result.Bounds, Exact.Bounds);
  }
}

} // namespace
} // namespace genprove
