//===- tests/train_test.cpp - optimizer and trainer tests -------*- C++ -*-===//

#include "src/data/attribute_vector.h"
#include "src/data/synth_digits.h"
#include "src/data/synth_faces.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"
#include "src/train/vae.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

TEST(Optimizer, SgdMinimizesQuadratic) {
  // Minimize 0.5 * w^2 via gradient steps.
  Tensor W({1, 1}, {5.0});
  Tensor G({1, 1});
  Sgd Opt({{&W, &G, "w"}}, 0.1);
  for (int I = 0; I < 200; ++I) {
    G[0] = W[0];
    Opt.step();
  }
  EXPECT_NEAR(W[0], 0.0, 1e-6);
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  Tensor W({1, 2}, {5.0, -3.0});
  Tensor G({1, 2});
  Adam Opt({{&W, &G, "w"}}, 0.1);
  for (int I = 0; I < 500; ++I) {
    G[0] = W[0];
    G[1] = W[1];
    Opt.step();
  }
  EXPECT_NEAR(W[0], 0.0, 1e-3);
  EXPECT_NEAR(W[1], 0.0, 1e-3);
}

TEST(Optimizer, StepZeroesGradients) {
  Tensor W({1, 1}, {1.0});
  Tensor G({1, 1}, {1.0});
  Adam Opt({{&W, &G, "w"}}, 0.01);
  Opt.step();
  EXPECT_DOUBLE_EQ(G[0], 0.0);
}

TEST(Trainer, ClassifierLearnsSmallDigits) {
  const Dataset Train = makeSynthDigits(300, 16, 1);
  const Dataset Test = makeSynthDigits(100, 16, 2);
  Sequential Net = makeConvSmall(1, 16, 10);
  Rng R(3);
  kaimingInit(Net, R);
  const double Before = classifierAccuracy(Net, Test);
  TrainConfig Config;
  Config.Epochs = 4;
  Config.BatchSize = 32;
  trainClassifier(Net, Train, Config, R);
  const double After = classifierAccuracy(Net, Test);
  EXPECT_GT(After, Before);
  EXPECT_GT(After, 0.5); // synthetic digits are easy
}

TEST(Trainer, AttributeDetectorLearnsFaces) {
  const Dataset Train = makeSynthFaces(300, 16, 1);
  const Dataset Test = makeSynthFaces(100, 16, 2);
  Sequential Net = makeConvSmall(3, 16, Train.numAttributes());
  Rng R(4);
  kaimingInit(Net, R);
  TrainConfig Config;
  Config.Epochs = 4;
  Config.BatchSize = 32;
  trainAttributeDetector(Net, Train, Config, R);
  EXPECT_GT(attributeAccuracy(Net, Test), 0.7);
}

TEST(Vae, TrainingReducesLossAndReconstructs) {
  const Dataset Train = makeSynthFaces(200, 16, 5);
  Rng R(5);
  Sequential Enc = makeEncoderSmall(3, 16, 2 * 8);
  Sequential Dec = makeDecoder(8, 3, 16);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  Vae Model(std::move(Enc), std::move(Dec), 8);

  Vae::Config Config;
  Config.Epochs = 1;
  const double Loss1 = Model.train(Train, Config, R);
  Config.Epochs = 3;
  const double Loss2 = Model.train(Train, Config, R);
  EXPECT_LT(Loss2, Loss1);

  // Encoding/decoding shapes.
  const Tensor Z = Model.encode(Train.image(0));
  EXPECT_EQ(Z.shape(), Shape({1, 8}));
  const Tensor X = Model.decode(Z);
  EXPECT_EQ(X.shape(), Shape({1, 3, 16, 16}));
}

TEST(AttributeVector, SeparatesClasses) {
  const Dataset Train = makeSynthFaces(400, 16, 6);
  Rng R(6);
  Sequential Enc = makeEncoderSmall(3, 16, 2 * 8);
  Sequential Dec = makeDecoder(8, 3, 16);
  kaimingInit(Enc, R);
  kaimingInit(Dec, R);
  Vae Model(std::move(Enc), std::move(Dec), 8);
  Vae::Config Config;
  Config.Epochs = 2;
  Model.train(Train, Config, R);

  const Tensor Dir = attributeVector(Model, Train, FaceWearingHat);
  EXPECT_EQ(Dir.shape(), Shape({1, 8}));
  // Adding the direction to encodings of no-hat images should move them
  // toward the hat cluster: projections onto the direction must be larger
  // for hat images on average.
  double HatProj = 0.0, NoHatProj = 0.0;
  int64_t NumHat = 0, NumNoHat = 0;
  for (int64_t I = 0; I < 100; ++I) {
    const Tensor Z = Model.encode(Train.image(I));
    double Proj = 0.0;
    for (int64_t J = 0; J < 8; ++J)
      Proj += Z[J] * Dir[J];
    if (Train.Attributes.at(I, FaceWearingHat) > 0.5) {
      HatProj += Proj;
      ++NumHat;
    } else {
      NoHatProj += Proj;
      ++NumNoHat;
    }
  }
  ASSERT_GT(NumHat, 0);
  ASSERT_GT(NumNoHat, 0);
  EXPECT_GT(HatProj / NumHat, NoHatProj / NumNoHat);
}

} // namespace
} // namespace genprove
