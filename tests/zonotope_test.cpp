//===- tests/zonotope_test.cpp - zonotope family baselines ------*- C++ -*-===//

#include "src/domains/hybrid_zonotope.h"
#include "src/domains/zonotope.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.8);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.5);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

Tensor forwardConcrete(Sequential &Net, const Tensor &X) {
  return Net.forward(X);
}

struct ZonoCase {
  uint64_t Seed;
  ZonotopeKind Kind;
};

class ZonotopeSoundness : public ::testing::TestWithParam<ZonoCase> {};

TEST_P(ZonotopeSoundness, CertifiedContainmentIsSound) {
  Rng R(GetParam().Seed);
  Sequential Net = makeRandomMlp(R, {3, 8, 6, 2});
  Tensor E1 = Tensor::randn({1, 3}, R);
  Tensor E2 = Tensor::randn({1, 3}, R);

  // Use many random halfspace specs; whenever the zonotope certifies
  // containment / disjointness, every concrete sample must agree.
  for (int SpecTrial = 0; SpecTrial < 20; ++SpecTrial) {
    Tensor Normal = Tensor::randn({1, 2}, R);
    const double Offset = R.normal(0.0, 2.0);
    const OutputSpec Spec = OutputSpec::halfspace(Normal, Offset);

    DeviceMemoryModel Memory;
    const ConvexResult Result = analyzeZonotope(
        Net.view(), Shape({1, 3}), E1, E2, Spec, GetParam().Kind, Memory);
    ASSERT_FALSE(Result.Bounds.OutOfMemory);

    for (int Trial = 0; Trial < 40; ++Trial) {
      const double T = R.uniform();
      Tensor X({1, 3});
      for (int64_t J = 0; J < 3; ++J)
        X[J] = E1[J] + T * (E2[J] - E1[J]);
      const Tensor Y = forwardConcrete(Net, X);
      const bool Sat = Spec.satisfied(Y);
      if (Result.Bounds.Lower >= 1.0) {
        EXPECT_TRUE(Sat) << "certified-contained but sample violates";
      }
      if (Result.Bounds.Upper <= 0.0) {
        EXPECT_FALSE(Sat) << "certified-disjoint but sample satisfies";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndKinds, ZonotopeSoundness,
    ::testing::Values(ZonoCase{1, ZonotopeKind::Zonotope},
                      ZonoCase{1, ZonotopeKind::DeepZono},
                      ZonoCase{5, ZonotopeKind::Zonotope},
                      ZonoCase{5, ZonotopeKind::DeepZono},
                      ZonoCase{9, ZonotopeKind::Zonotope},
                      ZonoCase{9, ZonotopeKind::DeepZono}));

TEST(Zonotope, ExactThroughPureAffine) {
  Rng R(3);
  Sequential Net;
  auto L = std::make_unique<Linear>(2, 2);
  L->weight() = Tensor({2, 2}, {1.0, 2.0, -1.0, 0.5});
  L->bias() = Tensor({2}, {0.5, -0.5});
  Net.add(std::move(L));
  Tensor E1({1, 2}, {0.0, 0.0});
  Tensor E2({1, 2}, {1.0, 1.0});
  // Spec chosen to separate exactly: outputs range over the affine image
  // of the segment; certified containment must match the true min.
  Tensor Normal({1, 2}, {1.0, 0.0});
  // Output0 = x0 + 2 x1 + 0.5 ranges over [0.5, 3.5]; spec y0 > 0 holds.
  const OutputSpec Spec = OutputSpec::halfspace(Normal, 0.0);
  DeviceMemoryModel Memory;
  const ConvexResult Result =
      analyzeZonotope(Net.view(), Shape({1, 2}), E1, E2, Spec,
                      ZonotopeKind::DeepZono, Memory);
  EXPECT_DOUBLE_EQ(Result.Bounds.Lower, 1.0);
}

TEST(Zonotope, GeneratorCountGrowsThroughRelu) {
  Rng R(4);
  Sequential Net = makeRandomMlp(R, {3, 32, 32, 2});
  Tensor E1 = Tensor::randn({1, 3}, R, 2.0);
  Tensor E2 = Tensor::randn({1, 3}, R, 2.0);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  DeviceMemoryModel Memory;
  const ConvexResult Result = analyzeZonotope(
      Net.view(), Shape({1, 3}), E1, E2, Spec, ZonotopeKind::DeepZono, Memory);
  EXPECT_GT(Result.MaxGenerators, 1);
}

TEST(Zonotope, SmallBudgetTriggersOom) {
  Rng R(5);
  Sequential Net = makeRandomMlp(R, {3, 64, 64, 2});
  Tensor E1 = Tensor::randn({1, 3}, R, 2.0);
  Tensor E2 = Tensor::randn({1, 3}, R, 2.0);
  const OutputSpec Spec = OutputSpec::argmaxWins(0, 2);
  DeviceMemoryModel Memory(256);
  const ConvexResult Result = analyzeZonotope(
      Net.view(), Shape({1, 3}), E1, E2, Spec, ZonotopeKind::Zonotope, Memory);
  EXPECT_TRUE(Result.Bounds.OutOfMemory);
}

class HybridSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HybridSoundness, CertifiedContainmentIsSound) {
  Rng R(GetParam());
  Sequential Net = makeRandomMlp(R, {3, 10, 8, 2});
  Tensor E1 = Tensor::randn({1, 3}, R);
  Tensor E2 = Tensor::randn({1, 3}, R);
  for (int SpecTrial = 0; SpecTrial < 20; ++SpecTrial) {
    Tensor Normal = Tensor::randn({1, 2}, R);
    const double Offset = R.normal(0.0, 2.0);
    const OutputSpec Spec = OutputSpec::halfspace(Normal, Offset);
    DeviceMemoryModel Memory;
    const ConvexResult Result = analyzeHybridZonotope(
        Net.view(), Shape({1, 3}), E1, E2, Spec, Memory);
    // Hybrid keeps a constant generator count.
    EXPECT_EQ(Result.MaxGenerators, 1);
    for (int Trial = 0; Trial < 40; ++Trial) {
      const double T = R.uniform();
      Tensor X({1, 3});
      for (int64_t J = 0; J < 3; ++J)
        X[J] = E1[J] + T * (E2[J] - E1[J]);
      const Tensor Y = Net.forward(X);
      const bool Sat = Spec.satisfied(Y);
      if (Result.Bounds.Lower >= 1.0) {
        EXPECT_TRUE(Sat);
      }
      if (Result.Bounds.Upper <= 0.0) {
        EXPECT_FALSE(Sat);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HybridSoundness,
                         ::testing::Values(2u, 6u, 11u));

} // namespace
} // namespace genprove
