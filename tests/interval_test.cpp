//===- tests/interval_test.cpp - interval arithmetic ------------*- C++ -*-===//

#include "src/interval/interval.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

TEST(Interval, BasicAccessors) {
  Interval I(-1.0, 3.0);
  EXPECT_DOUBLE_EQ(I.width(), 4.0);
  EXPECT_DOUBLE_EQ(I.center(), 1.0);
  EXPECT_DOUBLE_EQ(I.radius(), 2.0);
  EXPECT_TRUE(I.contains(0.0));
  EXPECT_FALSE(I.contains(3.5));
  EXPECT_TRUE(I.contains(Interval(0.0, 1.0)));
  EXPECT_TRUE(I.intersects(Interval(2.0, 9.0)));
  EXPECT_FALSE(I.intersects(Interval(4.0, 9.0)));
}

TEST(Interval, AddSub) {
  const Interval A(-1.0, 2.0), B(0.5, 1.5);
  const Interval S = A + B;
  EXPECT_DOUBLE_EQ(S.Lo, -0.5);
  EXPECT_DOUBLE_EQ(S.Hi, 3.5);
  const Interval D = A - B;
  EXPECT_DOUBLE_EQ(D.Lo, -2.5);
  EXPECT_DOUBLE_EQ(D.Hi, 1.5);
}

TEST(Interval, ScalarMulFlipsOnNegative) {
  const Interval A(-1.0, 2.0);
  const Interval P = A * 3.0;
  EXPECT_DOUBLE_EQ(P.Lo, -3.0);
  EXPECT_DOUBLE_EQ(P.Hi, 6.0);
  const Interval N = A * -2.0;
  EXPECT_DOUBLE_EQ(N.Lo, -4.0);
  EXPECT_DOUBLE_EQ(N.Hi, 2.0);
}

TEST(Interval, Relu) {
  EXPECT_DOUBLE_EQ(Interval(-2.0, -1.0).relu().Hi, 0.0);
  EXPECT_DOUBLE_EQ(Interval(-1.0, 2.0).relu().Lo, 0.0);
  EXPECT_DOUBLE_EQ(Interval(-1.0, 2.0).relu().Hi, 2.0);
  EXPECT_DOUBLE_EQ(Interval(1.0, 2.0).relu().Lo, 1.0);
}

TEST(Interval, Hull) {
  const Interval H = Interval(-1.0, 0.5).hull(Interval(0.0, 2.0));
  EXPECT_DOUBLE_EQ(H.Lo, -1.0);
  EXPECT_DOUBLE_EQ(H.Hi, 2.0);
}

/// Property: interval multiplication is sound for sampled operands.
class IntervalMulProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalMulProperty, ProductSound) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    const double A = R.uniform(-3.0, 3.0), B = R.uniform(-3.0, 3.0);
    const double C = R.uniform(-3.0, 3.0), D = R.uniform(-3.0, 3.0);
    const Interval X(std::min(A, B), std::max(A, B));
    const Interval Y(std::min(C, D), std::max(C, D));
    const Interval P = X * Y;
    for (int S = 0; S < 10; ++S) {
      const double Xs = R.uniform(X.Lo, X.Hi);
      const double Ys = R.uniform(Y.Lo, Y.Hi);
      EXPECT_GE(Xs * Ys, P.Lo - 1e-9);
      EXPECT_LE(Xs * Ys, P.Hi + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalMulProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

} // namespace
} // namespace genprove
