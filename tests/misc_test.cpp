//===- tests/misc_test.cpp - memory model, serialize edges, misc -*- C++ -*-===//

#include "src/domains/memory_model.h"
#include "src/domains/relaxation.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/nn/serialize.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace genprove {
namespace {

TEST(MemoryModel, TracksPeakAndBudget) {
  DeviceMemoryModel Memory(1000);
  EXPECT_TRUE(Memory.charge(500));
  EXPECT_EQ(Memory.peakBytes(), 500u);
  EXPECT_TRUE(Memory.charge(200)); // peak unchanged
  EXPECT_EQ(Memory.peakBytes(), 500u);
  EXPECT_FALSE(Memory.charge(1500));
  EXPECT_TRUE(Memory.exhausted());
  Memory.reset();
  EXPECT_EQ(Memory.peakBytes(), 0u);
  EXPECT_FALSE(Memory.exhausted());
}

TEST(MemoryModel, UnlimitedBudgetNeverExhausts) {
  DeviceMemoryModel Memory(0);
  EXPECT_TRUE(Memory.charge(1ull << 40));
  EXPECT_FALSE(Memory.exhausted());
}

TEST(MemoryModel, ChargeStateUsesDoubleBytes) {
  DeviceMemoryModel Memory(0);
  Memory.chargeState(10, 100);
  EXPECT_EQ(Memory.peakBytes(), 10u * 100u * sizeof(double));
}

TEST(Serialize, TruncatedFileIsRejected) {
  Rng R(1);
  Sequential Net = makeConvSmall(1, 8, 3);
  kaimingInit(Net, R);
  const std::string Path = "/tmp/genprove_truncated.bin";
  ASSERT_TRUE(saveNetwork(Net, Path));
  // Truncate to half.
  std::ifstream In(Path, std::ios::binary);
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() / 2));
  Out.close();
  EXPECT_FALSE(loadNetwork(Path).has_value());
  std::remove(Path.c_str());
}

TEST(Serialize, GarbageMagicIsRejected) {
  const std::string Path = "/tmp/genprove_garbage.bin";
  std::ofstream Out(Path, std::ios::binary);
  Out << "this is not a genprove model file at all, not even close";
  Out.close();
  EXPECT_FALSE(loadNetwork(Path).has_value());
  std::remove(Path.c_str());
}

TEST(Relax, QuadraticPiecesAreBoxedSoundly) {
  Rng R(2);
  std::vector<Region> Chain;
  const int64_t N = 200;
  for (int64_t I = 0; I < N; ++I) {
    const double T0 = static_cast<double>(I) / N;
    const double T1 = static_cast<double>(I + 1) / N;
    Tensor A0 = Tensor::randn({1, 3}, R, 0.1);
    Tensor A1 = Tensor::randn({1, 3}, R, 0.1);
    Tensor A2 = Tensor::randn({1, 3}, R, 0.1);
    Chain.push_back(makeQuadraticRegion(A0, A1, A2, T1 - T0, T0, T1));
  }
  const std::vector<Region> Original = Chain;
  RelaxConfig Config;
  Config.RelaxPercent = 1.0;
  Config.ClusterK = 10.0;
  Config.NodeThreshold = 20;
  relaxRegions(Chain, Config);
  ASSERT_LT(Chain.size(), Original.size());

  // Sampled points of the original quadratics stay covered.
  for (int Trial = 0; Trial < 100; ++Trial) {
    const Region &Q = Original[R.below(Original.size())];
    const double T = R.uniform(Q.T0, Q.T1);
    const Tensor P = evalCurve(Q, T);
    bool Covered = false;
    for (const auto &Piece : Chain) {
      if (Piece.Kind == RegionKind::Curve) {
        if (T < Piece.T0 - 1e-12 || T > Piece.T1 + 1e-12)
          continue;
        const Tensor Pt = evalCurve(Piece, T);
        bool Match = true;
        for (int64_t J = 0; J < 3 && Match; ++J)
          if (std::fabs(Pt[J] - P[J]) > 1e-9)
            Match = false;
        Covered |= Match;
      } else {
        bool Inside = true;
        for (int64_t J = 0; J < 3 && Inside; ++J)
          if (std::fabs(P[J] - Piece.Center[J]) > Piece.Radius[J] + 1e-9)
            Inside = false;
        Covered |= Inside;
      }
      if (Covered)
        break;
    }
    EXPECT_TRUE(Covered);
  }
}

TEST(Architectures, DescribeMentionsEveryLayer) {
  const Sequential Net = makeDecoder(8, 3, 16);
  const std::string Text = Net.describe();
  EXPECT_NE(Text.find("Linear"), std::string::npos);
  EXPECT_NE(Text.find("ConvTranspose2d"), std::string::npos);
  EXPECT_NE(Text.find("ReLU"), std::string::npos);
  EXPECT_NE(Text.find("Reshape"), std::string::npos);
}

TEST(Architectures, ConvMedHandlesOddIntermediateSizes) {
  // ConvMed's k4 s1 p1 produces a 15x15 intermediate at 16x16 input; the
  // shape machinery must track it exactly.
  Sequential Net = makeConvMed(3, 16, 5);
  Rng R(3);
  kaimingInit(Net, R);
  Tensor X = Tensor::rand({2, 3, 16, 16}, R);
  const Tensor Y = Net.forward(X);
  EXPECT_EQ(Y.shape(), Shape({2, 5}));
}

} // namespace
} // namespace genprove
