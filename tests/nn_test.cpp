//===- tests/nn_test.cpp - layers, architectures, serialization -*- C++ -*-===//

#include "src/nn/architectures.h"
#include "src/nn/conv.h"
#include "src/nn/init.h"
#include "src/nn/linear.h"
#include "src/nn/serialize.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

namespace genprove {
namespace {

TEST(Linear, AffineInterfaceMatchesForward) {
  Rng R(1);
  Linear L(4, 3);
  L.weight() = Tensor::randn({3, 4}, R);
  L.bias() = Tensor::randn({3}, R);
  Tensor X = Tensor::randn({2, 4}, R);
  const Tensor Fwd = L.forward(X);
  const Tensor Aff = L.applyAffine(X);
  for (int64_t I = 0; I < Fwd.numel(); ++I)
    EXPECT_DOUBLE_EQ(Fwd[I], Aff[I]);
  // Linear part + bias = affine.
  const Tensor Lin = L.applyLinear(X);
  for (int64_t I = 0; I < 2; ++I)
    for (int64_t J = 0; J < 3; ++J)
      EXPECT_NEAR(Lin.at(I, J) + L.bias()[J], Aff.at(I, J), 1e-12);
}

TEST(Linear, BoxPropagationIsSound) {
  Rng R(2);
  Linear L(5, 4);
  L.weight() = Tensor::randn({4, 5}, R);
  L.bias() = Tensor::randn({4}, R);
  Tensor Center = Tensor::randn({1, 5}, R);
  Tensor Radius = Tensor::rand({1, 5}, R, 0.0, 0.5);
  Tensor C = Center.clone(), Rr = Radius.clone();
  L.applyToBox(C, Rr);
  // 100 random points inside the input box must land inside the output box.
  for (int Trial = 0; Trial < 100; ++Trial) {
    Tensor X({1, 5});
    for (int64_t J = 0; J < 5; ++J)
      X[J] = Center[J] + Radius[J] * R.uniform(-1.0, 1.0);
    const Tensor Y = L.applyAffine(X);
    for (int64_t J = 0; J < 4; ++J) {
      EXPECT_LE(Y[J], C[J] + Rr[J] + 1e-9);
      EXPECT_GE(Y[J], C[J] - Rr[J] - 1e-9);
    }
  }
}

TEST(Conv, BoxPropagationIsSound) {
  Rng R(3);
  Conv2d L(2, 3, 3, 2, 1);
  L.weight() = Tensor::randn({3, 2, 3, 3}, R);
  L.bias() = Tensor::randn({3}, R);
  Tensor Center = Tensor::randn({1, 2, 6, 6}, R);
  Tensor Radius = Tensor::rand({1, 2, 6, 6}, R, 0.0, 0.3);
  Tensor C = Center.clone(), Rr = Radius.clone();
  L.applyToBox(C, Rr);
  for (int Trial = 0; Trial < 50; ++Trial) {
    Tensor X(Center.shape());
    for (int64_t J = 0; J < X.numel(); ++J)
      X[J] = Center[J] + Radius[J] * R.uniform(-1.0, 1.0);
    const Tensor Y = L.applyAffine(X);
    for (int64_t J = 0; J < Y.numel(); ++J) {
      EXPECT_LE(Y[J], C[J] + Rr[J] + 1e-9);
      EXPECT_GE(Y[J], C[J] - Rr[J] - 1e-9);
    }
  }
}

TEST(Architectures, OutputShapes) {
  const int64_t S = 16;
  EXPECT_EQ(makeConvSmall(3, S, 10).outputShape({1, 3, S, S}),
            Shape({1, 10}));
  EXPECT_EQ(makeConvMed(3, S, 21).outputShape({1, 3, S, S}), Shape({1, 21}));
  EXPECT_EQ(makeConvLarge(3, S, 8).outputShape({1, 3, S, S}), Shape({1, 8}));
  EXPECT_EQ(makeConvBiggest(1, S, 10).outputShape({1, 1, S, S}),
            Shape({1, 10}));
  EXPECT_EQ(makeEncoderSmall(3, S, 16).outputShape({1, 3, S, S}),
            Shape({1, 16}));
  EXPECT_EQ(makeEncoder(3, S, 16).outputShape({1, 3, S, S}), Shape({1, 16}));
  EXPECT_EQ(makeDecoder(8, 3, S).outputShape({1, 8}), Shape({1, 3, S, S}));
  EXPECT_EQ(makeDecoderSmall(8, 3, S).outputShape({1, 8}),
            Shape({1, 3, S, S}));
}

TEST(Architectures, NeuronCountsOrdered) {
  const int64_t S = 16;
  const int64_t Small = makeConvSmall(3, S, 10).countNeurons({1, 3, S, S});
  const int64_t Med = makeConvMed(3, S, 10).countNeurons({1, 3, S, S});
  const int64_t Large = makeConvLarge(3, S, 10).countNeurons({1, 3, S, S});
  const int64_t Biggest = makeConvBiggest(1, S, 10).countNeurons({1, 1, S, S});
  EXPECT_LT(Small, Med);
  EXPECT_LT(Med, Large);
  EXPECT_LT(Large, Biggest);
  EXPECT_GT(Small, 500); // sanity: non-trivial networks
}

TEST(Architectures, ClassifierByNameMatches) {
  const Sequential A = makeClassifier("ConvSmall", 3, 16, 10);
  const Sequential B = makeConvSmall(3, 16, 10);
  EXPECT_EQ(A.size(), B.size());
}

TEST(Init, KaimingProducesReasonableScales) {
  Rng R(4);
  Sequential Net = makeConvSmall(3, 16, 10);
  kaimingInit(Net, R);
  // Forward of a random input should produce finite non-degenerate output.
  Tensor X = Tensor::rand({4, 3, 16, 16}, R);
  const Tensor Y = Net.forward(X);
  double MaxAbs = 0.0;
  for (int64_t I = 0; I < Y.numel(); ++I) {
    ASSERT_TRUE(std::isfinite(Y[I]));
    MaxAbs = std::max(MaxAbs, std::fabs(Y[I]));
  }
  EXPECT_GT(MaxAbs, 1e-4);
  EXPECT_LT(MaxAbs, 1e4);
}

TEST(Serialize, RoundTripsEveryLayerKind) {
  Rng R(5);
  Sequential Net = makeDecoder(8, 3, 16); // FC + ReLU + Reshape + ConvT
  kaimingInit(Net, R);
  Sequential Cls = makeConvSmall(3, 16, 10); // Conv + Flatten + FC
  kaimingInit(Cls, R);

  const std::string Path1 = "/tmp/genprove_test_net1.bin";
  const std::string Path2 = "/tmp/genprove_test_net2.bin";
  ASSERT_TRUE(saveNetwork(Net, Path1));
  ASSERT_TRUE(saveNetwork(Cls, Path2));

  auto Loaded1 = loadNetwork(Path1);
  auto Loaded2 = loadNetwork(Path2);
  ASSERT_TRUE(Loaded1.has_value());
  ASSERT_TRUE(Loaded2.has_value());

  Tensor Z = Tensor::randn({2, 8}, R);
  const Tensor A = Net.forward(Z);
  const Tensor B = Loaded1->forward(Z);
  ASSERT_EQ(A.shape(), B.shape());
  for (int64_t I = 0; I < A.numel(); ++I)
    EXPECT_DOUBLE_EQ(A[I], B[I]);

  Tensor X = Tensor::rand({2, 3, 16, 16}, R);
  const Tensor C = Cls.forward(X);
  const Tensor D = Loaded2->forward(X);
  for (int64_t I = 0; I < C.numel(); ++I)
    EXPECT_DOUBLE_EQ(C[I], D[I]);

  std::remove(Path1.c_str());
  std::remove(Path2.c_str());
}

TEST(Serialize, MissingFileReturnsNullopt) {
  EXPECT_FALSE(loadNetwork("/tmp/definitely_missing_genprove.bin").has_value());
}

TEST(Sequential, ViewAndConcat) {
  Sequential A = makeDecoder(8, 3, 16);
  Sequential B = makeConvSmall(3, 16, 10);
  const auto V = concatViews(A.view(), B.view());
  EXPECT_EQ(V.size(), A.size() + B.size());
}

} // namespace
} // namespace genprove
