//===- tests/grad_test.cpp - finite-difference gradient checks --*- C++ -*-===//

#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/conv_transpose.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"
#include "src/nn/sequential.h"
#include "src/train/loss.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

/// Scalar loss: sum of squared outputs / 2; gradient is the output itself.
double scalarLoss(const Tensor &Out) {
  double L = 0.0;
  for (int64_t I = 0; I < Out.numel(); ++I)
    L += 0.5 * Out[I] * Out[I];
  return L;
}

/// Check every parameter gradient (and the input gradient) of a network
/// against central finite differences.
void gradCheck(Sequential &Net, Tensor Input, double Tol = 2e-5) {
  const double Eps = 1e-5;

  Net.zeroGrads();
  const Tensor Out = Net.forward(Input);
  const Tensor GradIn = Net.backward(Out.clone()); // dL/dOut = Out

  // Parameter gradients.
  for (auto &P : Net.params()) {
    Tensor &W = *P.Value;
    Tensor &G = *P.Grad;
    const int64_t Checks = std::min<int64_t>(W.numel(), 12);
    for (int64_t C = 0; C < Checks; ++C) {
      const int64_t I = (C * 7919) % W.numel();
      const double Orig = W[I];
      W[I] = Orig + Eps;
      const double Lp = scalarLoss(Net.forward(Input));
      W[I] = Orig - Eps;
      const double Lm = scalarLoss(Net.forward(Input));
      W[I] = Orig;
      const double Fd = (Lp - Lm) / (2 * Eps);
      EXPECT_NEAR(G[I], Fd, Tol * std::max(1.0, std::fabs(Fd)))
          << "param " << P.Name << " index " << I;
    }
  }

  // Input gradient.
  const int64_t Checks = std::min<int64_t>(Input.numel(), 10);
  for (int64_t C = 0; C < Checks; ++C) {
    const int64_t I = (C * 104729) % Input.numel();
    const double Orig = Input[I];
    Input[I] = Orig + Eps;
    const double Lp = scalarLoss(Net.forward(Input));
    Input[I] = Orig - Eps;
    const double Lm = scalarLoss(Net.forward(Input));
    Input[I] = Orig;
    const double Fd = (Lp - Lm) / (2 * Eps);
    EXPECT_NEAR(GradIn[I], Fd, Tol * std::max(1.0, std::fabs(Fd)))
        << "input index " << I;
  }
}

TEST(GradCheck, LinearLayer) {
  Rng R(1);
  Sequential Net;
  auto L = std::make_unique<Linear>(6, 4);
  L->weight() = Tensor::randn({4, 6}, R, 0.5);
  L->bias() = Tensor::randn({4}, R, 0.5);
  Net.add(std::move(L));
  gradCheck(Net, Tensor::randn({3, 6}, R));
}

TEST(GradCheck, LinearReluStack) {
  Rng R(2);
  Sequential Net;
  auto L1 = std::make_unique<Linear>(5, 8);
  L1->weight() = Tensor::randn({8, 5}, R, 0.5);
  L1->bias() = Tensor::randn({8}, R, 0.5);
  Net.add(std::move(L1));
  Net.add(std::make_unique<ReLU>());
  auto L2 = std::make_unique<Linear>(8, 3);
  L2->weight() = Tensor::randn({3, 8}, R, 0.5);
  L2->bias() = Tensor::randn({3}, R, 0.5);
  Net.add(std::move(L2));
  gradCheck(Net, Tensor::randn({2, 5}, R));
}

TEST(GradCheck, ConvLayer) {
  Rng R(3);
  Sequential Net;
  auto C = std::make_unique<Conv2d>(2, 3, 3, 2, 1);
  C->weight() = Tensor::randn({3, 2, 3, 3}, R, 0.5);
  C->bias() = Tensor::randn({3}, R, 0.5);
  Net.add(std::move(C));
  gradCheck(Net, Tensor::randn({2, 2, 6, 6}, R));
}

TEST(GradCheck, ConvTransposeLayer) {
  Rng R(4);
  Sequential Net;
  auto C = std::make_unique<ConvTranspose2d>(3, 2, 3, 2, 1, 1);
  C->weight() = Tensor::randn({3, 2, 3, 3}, R, 0.5);
  C->bias() = Tensor::randn({2}, R, 0.5);
  Net.add(std::move(C));
  gradCheck(Net, Tensor::randn({1, 3, 4, 4}, R));
}

TEST(GradCheck, ConvFlattenLinearPipeline) {
  Rng R(5);
  Sequential Net;
  auto C = std::make_unique<Conv2d>(1, 4, 3, 1, 1);
  C->weight() = Tensor::randn({4, 1, 3, 3}, R, 0.5);
  C->bias() = Tensor::randn({4}, R, 0.5);
  Net.add(std::move(C));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Flatten>());
  auto L = std::make_unique<Linear>(4 * 5 * 5, 2);
  L->weight() = Tensor::randn({2, 100}, R, 0.2);
  L->bias() = Tensor::randn({2}, R, 0.2);
  Net.add(std::move(L));
  gradCheck(Net, Tensor::randn({2, 1, 5, 5}, R));
}

TEST(GradCheck, DecoderStylePipeline) {
  Rng R(6);
  Sequential Net;
  auto L = std::make_unique<Linear>(4, 2 * 3 * 3);
  L->weight() = Tensor::randn({18, 4}, R, 0.5);
  L->bias() = Tensor::randn({18}, R, 0.5);
  Net.add(std::move(L));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<Reshape>(2, 3, 3));
  auto C = std::make_unique<ConvTranspose2d>(2, 1, 3, 2, 1, 1);
  C->weight() = Tensor::randn({2, 1, 3, 3}, R, 0.5);
  C->bias() = Tensor::randn({1}, R, 0.5);
  Net.add(std::move(C));
  gradCheck(Net, Tensor::randn({2, 4}, R));
}

TEST(LossGrad, MseMatchesFiniteDifference) {
  Rng R(7);
  Tensor Pred = Tensor::randn({2, 5}, R);
  Tensor Target = Tensor::randn({2, 5}, R);
  Tensor Grad;
  mseLoss(Pred, Target, Grad);
  const double Eps = 1e-6;
  for (int64_t I = 0; I < Pred.numel(); ++I) {
    Tensor G2;
    Pred[I] += Eps;
    const double Lp = mseLoss(Pred, Target, G2);
    Pred[I] -= 2 * Eps;
    const double Lm = mseLoss(Pred, Target, G2);
    Pred[I] += Eps;
    EXPECT_NEAR(Grad[I], (Lp - Lm) / (2 * Eps), 1e-6);
  }
}

TEST(LossGrad, BceMatchesFiniteDifference) {
  Rng R(8);
  Tensor Logits = Tensor::randn({3, 4}, R);
  Tensor Targets({3, 4});
  for (int64_t I = 0; I < Targets.numel(); ++I)
    Targets[I] = R.bernoulli(0.5) ? 1.0 : 0.0;
  Tensor Grad;
  bceWithLogitsLoss(Logits, Targets, Grad);
  const double Eps = 1e-6;
  for (int64_t I = 0; I < Logits.numel(); ++I) {
    Tensor G2;
    Logits[I] += Eps;
    const double Lp = bceWithLogitsLoss(Logits, Targets, G2);
    Logits[I] -= 2 * Eps;
    const double Lm = bceWithLogitsLoss(Logits, Targets, G2);
    Logits[I] += Eps;
    EXPECT_NEAR(Grad[I], (Lp - Lm) / (2 * Eps), 1e-6);
  }
}

TEST(LossGrad, CrossEntropyMatchesFiniteDifference) {
  Rng R(9);
  Tensor Logits = Tensor::randn({3, 5}, R);
  std::vector<int64_t> Labels{1, 4, 0};
  Tensor Grad;
  softmaxCrossEntropyLoss(Logits, Labels, Grad);
  const double Eps = 1e-6;
  for (int64_t I = 0; I < Logits.numel(); ++I) {
    Tensor G2;
    Logits[I] += Eps;
    const double Lp = softmaxCrossEntropyLoss(Logits, Labels, G2);
    Logits[I] -= 2 * Eps;
    const double Lm = softmaxCrossEntropyLoss(Logits, Labels, G2);
    Logits[I] += Eps;
    EXPECT_NEAR(Grad[I], (Lp - Lm) / (2 * Eps), 1e-6);
  }
}

TEST(LossGrad, KlMatchesFiniteDifference) {
  Rng R(10);
  Tensor Mu = Tensor::randn({2, 3}, R);
  Tensor LogVar = Tensor::randn({2, 3}, R, 0.5);
  Tensor Gm, Gl;
  gaussianKlLoss(Mu, LogVar, Gm, Gl);
  const double Eps = 1e-6;
  for (int64_t I = 0; I < Mu.numel(); ++I) {
    Tensor A, B;
    Mu[I] += Eps;
    const double Lp = gaussianKlLoss(Mu, LogVar, A, B);
    Mu[I] -= 2 * Eps;
    const double Lm = gaussianKlLoss(Mu, LogVar, A, B);
    Mu[I] += Eps;
    EXPECT_NEAR(Gm[I], (Lp - Lm) / (2 * Eps), 1e-6);

    LogVar[I] += Eps;
    const double Lp2 = gaussianKlLoss(Mu, LogVar, A, B);
    LogVar[I] -= 2 * Eps;
    const double Lm2 = gaussianKlLoss(Mu, LogVar, A, B);
    LogVar[I] += Eps;
    EXPECT_NEAR(Gl[I], (Lp2 - Lm2) / (2 * Eps), 1e-6);
  }
}

} // namespace
} // namespace genprove
