//===- tests/fp_test.cpp - directed rounding & stats soundness --*- C++ -*-===//

#include "src/interval/interval.h"
#include "src/util/fp.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(DirectedRounding, DisabledByDefault) {
  EXPECT_FALSE(soundRoundingEnabled());
  {
    SoundRoundingScope On(true);
    EXPECT_TRUE(soundRoundingEnabled());
    {
      SoundRoundingScope Off(false);
      EXPECT_FALSE(soundRoundingEnabled());
    }
    EXPECT_TRUE(soundRoundingEnabled());
  }
  EXPECT_FALSE(soundRoundingEnabled());
}

/// Every directed op must bracket the exact (long double) result.
TEST(DirectedRounding, OpsBracketExactValue) {
  Rng Gen(42);
  for (int I = 0; I < 10000; ++I) {
    const double A = std::ldexp(Gen.uniform(-1.0, 1.0),
                                static_cast<int>(Gen.below(41)) - 20);
    const double B = std::ldexp(Gen.uniform(-1.0, 1.0),
                                static_cast<int>(Gen.below(41)) - 20);
    const long double La = A, Lb = B;
    EXPECT_GE(static_cast<long double>(fp::addUp(A, B)), La + Lb);
    EXPECT_LE(static_cast<long double>(fp::addDown(A, B)), La + Lb);
    EXPECT_GE(static_cast<long double>(fp::subUp(A, B)), La - Lb);
    EXPECT_LE(static_cast<long double>(fp::subDown(A, B)), La - Lb);
    EXPECT_GE(static_cast<long double>(fp::mulUp(A, B)), La * Lb);
    EXPECT_LE(static_cast<long double>(fp::mulDown(A, B)), La * Lb);
    if (B != 0.0) {
      EXPECT_GE(static_cast<long double>(fp::divUp(A, B)), La / Lb);
      EXPECT_LE(static_cast<long double>(fp::divDown(A, B)), La / Lb);
    }
  }
}

TEST(DirectedRounding, SumBracketsExactSum) {
  Rng Gen(7);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<double> Values;
    long double Exact = 0.0L;
    const int N = 1 + static_cast<int>(Gen.below(2000));
    for (int I = 0; I < N; ++I) {
      // Wildly mixed magnitudes to exercise the compensation.
      const double V = std::ldexp(Gen.uniform(-1.0, 1.0),
                                  static_cast<int>(Gen.below(81)) - 40);
      Values.push_back(V);
      Exact += static_cast<long double>(V);
    }
    const double Up = fp::sumUp(Values);
    const double Down = fp::sumDown(Values);
    EXPECT_GE(static_cast<long double>(Up), Exact);
    EXPECT_LE(static_cast<long double>(Down), Exact);
    // The compensated sum stays tight: a few ULPs, not a naive-sum drift.
    EXPECT_LE(Up - Down, 1e-10 * std::max(1.0, std::fabs(Down)));
  }
}

TEST(DirectedRounding, SumMatchesNaiveOnEmptyAndSingle) {
  EXPECT_EQ(fp::sumUp(std::vector<double>{}), 0.0);
  EXPECT_EQ(fp::sumDown(std::vector<double>{}), 0.0);
  EXPECT_GE(fp::sumUp({0.1}), 0.1);
  EXPECT_LE(fp::sumDown({0.1}), 0.1);
}

TEST(Interval, SoundOpsContainSampledResults) {
  SoundRoundingScope On(true);
  Rng Gen(11);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    const double A = Gen.uniform(-3.0, 3.0), B = Gen.uniform(-3.0, 3.0);
    const double C = Gen.uniform(-3.0, 3.0), D = Gen.uniform(-3.0, 3.0);
    const Interval X{std::min(A, B), std::max(A, B)};
    const Interval Y{std::min(C, D), std::max(C, D)};
    const double Px = Gen.uniform(X.Lo, X.Hi);
    const double Py = Gen.uniform(Y.Lo, Y.Hi);
    EXPECT_TRUE((X + Y).contains(Px + Py));
    EXPECT_TRUE((X - Y).contains(Px - Py));
    EXPECT_TRUE((X * Y).contains(Px * Py));
    EXPECT_TRUE((X * 1.7).contains(Px * 1.7));
    EXPECT_TRUE((X * -2.3).contains(Px * -2.3));
  }
}

TEST(Interval, SoundCenterRadiusCoversEndpoints) {
  SoundRoundingScope On(true);
  Rng Gen(13);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    const double A = Gen.uniform(-1e6, 1e6), B = Gen.uniform(-1e6, 1e6);
    const Interval X{std::min(A, B), std::max(A, B)};
    double C, R;
    X.toCenterRadius(C, R);
    EXPECT_LE(C - R, X.Lo);
    EXPECT_GE(C + R, X.Hi);
  }
}

TEST(Interval, RoundToNearestPathUnchangedWhenDisabled) {
  // Bit-identity contract: with the toggle off, arithmetic must be the
  // plain round-to-nearest expression.
  const Interval X{0.1, 0.3}, Y{0.2, 0.7};
  const Interval Sum = X + Y;
  EXPECT_EQ(Sum.Lo, 0.1 + 0.2);
  EXPECT_EQ(Sum.Hi, 0.3 + 0.7);
  double C, R;
  X.toCenterRadius(C, R);
  EXPECT_EQ(C, 0.5 * (0.1 + 0.3));
  EXPECT_EQ(R, 0.5 * (0.3 - 0.1));
}

// --- Clopper-Pearson regression (the betaQuantile endpoint fix) ---------

TEST(ClopperPearson, ZeroSuccessesMatchesClosedForm) {
  // K = 0: lower = 0, upper = 1 - (alpha/2)^(1/N).
  const auto [Lower, Upper] = clopperPearson(0, 10, 0.05);
  EXPECT_EQ(Lower, 0.0);
  const double Reference = 1.0 - std::pow(0.025, 1.0 / 10.0);
  EXPECT_NEAR(Upper, Reference, 1e-6);
  // Conservative direction: at least the closed-form value.
  EXPECT_GE(Upper, Reference - 1e-12);
}

TEST(ClopperPearson, AllSuccessesMatchesClosedForm) {
  // K = N: upper = 1, lower = (alpha/2)^(1/N).
  const auto [Lower, Upper] = clopperPearson(10, 10, 0.05);
  EXPECT_EQ(Upper, 1.0);
  const double Reference = std::pow(0.025, 1.0 / 10.0);
  EXPECT_NEAR(Lower, Reference, 1e-6);
  EXPECT_LE(Lower, Reference + 1e-12);
}

TEST(ClopperPearson, HalfSuccessesMatchesReference) {
  // K = 5, N = 10, alpha = 0.05: the textbook interval [0.18709, 0.81291].
  const auto [Lower, Upper] = clopperPearson(5, 10, 0.05);
  EXPECT_NEAR(Lower, 0.187086, 1e-4);
  EXPECT_NEAR(Upper, 0.812914, 1e-4);
  EXPECT_LT(Lower, Upper);
}

TEST(ClopperPearson, EndpointsErrOutward) {
  // The bisection maintains I(Lo) < P <= I(Hi); returning the outward
  // endpoint means the lower bound satisfies I(Lower) <= alpha/2 and the
  // upper bound satisfies I(Upper) >= 1 - alpha/2.
  const double Alpha = 0.05;
  for (size_t K : {1u, 3u, 5u, 7u, 9u}) {
    const size_t N = 10;
    const auto [Lower, Upper] = clopperPearson(K, N, Alpha);
    const double Kd = static_cast<double>(K), Nd = static_cast<double>(N);
    EXPECT_LE(regularizedBeta(Kd, Nd - Kd + 1.0, Lower), Alpha / 2.0)
        << "K=" << K;
    EXPECT_GE(regularizedBeta(Kd + 1.0, Nd - Kd, Upper), 1.0 - Alpha / 2.0)
        << "K=" << K;
    EXPECT_GE(Lower, 0.0);
    EXPECT_LE(Upper, 1.0);
    EXPECT_LE(Lower, Upper);
  }
}

TEST(ClopperPearson, DegenerateInputs) {
  const auto [Lower, Upper] = clopperPearson(0, 0, 0.05);
  EXPECT_EQ(Lower, 0.0);
  EXPECT_EQ(Upper, 1.0);
}

} // namespace
} // namespace genprove
