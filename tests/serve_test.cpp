//===- tests/serve_test.cpp - the verification daemon --------------------===//
///
/// The serving layer bottom-up: the table-driven deadline→rung QoS map
/// (including the zero-time interval-box band), admission control
/// (budget slicing, bounded queue, FIFO order, shed reasons, drain),
/// the wire codec (verify round-trip, typed malformed/bad_request
/// errors, worker-spec round-trip), and an end-to-end Unix-socket test:
/// a live Server answering ping/verify/stats, shedding under load,
/// surviving injected worker faults, and draining on requestStop.

#include "src/domains/prop_cache.h"
#include "src/nn/linear.h"
#include "src/nn/serialize.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/serve/admission.h"
#include "src/serve/qos.h"
#include "src/serve/registry.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace genprove {
namespace {

// ---------------------------------------------------------------------------
// QoS: the deadline→rung ladder.
// ---------------------------------------------------------------------------

TEST(ServeQos, DeadlineMapsOntoRungLadder) {
  QosPolicy Policy; // floors: resilient 0.25s, box 0.05s
  struct Case {
    double Remaining;
    bool HasDeadline;
    ShardRung Want;
    bool WantFullBox;
  };
  const Case Cases[] = {
      // No deadline: always the configured rung, bounded by DefaultRun.
      {0.0, false, ShardRung::Configured, false},
      {-5.0, false, ShardRung::Configured, false},
      // Comfortable deadlines stay at full fidelity.
      {10.0, true, ShardRung::Configured, false},
      {0.2501, true, ShardRung::Configured, false},
      // The resilient band; the boundary lands on the coarser rung.
      {0.25, true, ShardRung::Resilient, false},
      {0.1, true, ShardRung::Resilient, false},
      {0.0501, true, ShardRung::Resilient, false},
      // The box band, including exactly zero and already-late requests:
      // a sound answer is still owed, never a silent timeout.
      {0.05, true, ShardRung::IntervalBox, true},
      {0.01, true, ShardRung::IntervalBox, true},
      {0.0, true, ShardRung::IntervalBox, true},
      {-1.0, true, ShardRung::IntervalBox, true},
  };
  for (const Case &C : Cases) {
    const QosDecision D = qosDecisionFor(C.Remaining, C.HasDeadline, Policy);
    EXPECT_EQ(D.Rung, C.Want)
        << "remaining=" << C.Remaining << " hasDeadline=" << C.HasDeadline;
    EXPECT_EQ(D.Resilience.StartAtFullBox, C.WantFullBox)
        << "remaining=" << C.Remaining;
    // An admitted request must terminate soundly no matter what the
    // engine hits: serving always arms resilience.
    EXPECT_TRUE(D.Resilience.Enabled);
    EXPECT_GE(D.Resilience.DeadlineSeconds, 0.0);
  }
  // No deadline → the policy's default engine deadline applies.
  const QosDecision Free = qosDecisionFor(0.0, false, Policy);
  EXPECT_DOUBLE_EQ(Free.Resilience.DeadlineSeconds, Policy.DefaultRunSeconds);
  // With a deadline, the engine deadline is the remaining time.
  const QosDecision Tight = qosDecisionFor(0.1, true, Policy);
  EXPECT_DOUBLE_EQ(Tight.Resilience.DeadlineSeconds, 0.1);
  // Already late: deadline clamps at zero rather than going negative.
  const QosDecision Late = qosDecisionFor(-1.0, true, Policy);
  EXPECT_DOUBLE_EQ(Late.Resilience.DeadlineSeconds, 0.0);
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

TEST(ServeAdmission, SlicesBudgetFairlyAndReleasesIt) {
  AdmissionController::Config C;
  C.BudgetBytes = 400;
  C.MaxConcurrent = 4;
  AdmissionController A(C);

  AdmissionTicket T1 = A.acquire(0, 0.0);
  ASSERT_TRUE(T1.admitted());
  EXPECT_EQ(T1.budgetBytes(), 100u); // fair share 400/4
  // A request asking for less than its fair share gets its ask.
  AdmissionTicket T2 = A.acquire(60, 0.0);
  ASSERT_TRUE(T2.admitted());
  EXPECT_EQ(T2.budgetBytes(), 60u);
  EXPECT_EQ(A.inFlight(), 2);
  T1.release();
  T2.release();
  EXPECT_EQ(A.inFlight(), 0);
  // Released budget is available again in full.
  AdmissionTicket T3 = A.acquire(400, 0.0);
  ASSERT_TRUE(T3.admitted());
  EXPECT_EQ(T3.budgetBytes(), 100u); // still capped at the fair share
}

TEST(ServeAdmission, ShedsWhenQueueIsFullAndOnDrain) {
  AdmissionController::Config C;
  C.MaxConcurrent = 1;
  C.MaxQueue = 0; // no waiting room: second request sheds immediately
  AdmissionController A(C);

  AdmissionTicket Holder = A.acquire(0, 0.0);
  ASSERT_TRUE(Holder.admitted());
  AdmissionTicket Shed = A.acquire(0, 0.0);
  EXPECT_FALSE(Shed.admitted());
  EXPECT_EQ(Shed.shedReason(), ShedReason::QueueFull);

  A.beginDrain();
  AdmissionTicket Drained = A.acquire(0, 0.0);
  EXPECT_FALSE(Drained.admitted());
  EXPECT_EQ(Drained.shedReason(), ShedReason::Draining);
  EXPECT_FALSE(A.awaitIdle(0.01)); // the holder is still running
  Holder.release();
  EXPECT_TRUE(A.awaitIdle(1.0));
}

TEST(ServeAdmission, QueuedRequestShedsOnItsOwnDeadline) {
  AdmissionController::Config C;
  C.MaxConcurrent = 1;
  C.MaxQueue = 4;
  C.MaxQueueWaitSeconds = 30.0; // the request deadline is the binding bound
  AdmissionController A(C);

  AdmissionTicket Holder = A.acquire(0, 0.0);
  ASSERT_TRUE(Holder.admitted());
  const auto T0 = std::chrono::steady_clock::now();
  AdmissionTicket Waited = A.acquire(0, 0.05);
  const double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  EXPECT_FALSE(Waited.admitted());
  EXPECT_EQ(Waited.shedReason(), ShedReason::Timeout);
  EXPECT_GE(Secs, 0.04);
  EXPECT_LT(Secs, 5.0);
}

TEST(ServeAdmission, WaitersAdmitInFifoOrderAsSlotsFree) {
  AdmissionController::Config C;
  C.MaxConcurrent = 1;
  C.MaxQueue = 8;
  AdmissionController A(C);

  AdmissionTicket Holder = A.acquire(0, 0.0);
  ASSERT_TRUE(Holder.admitted());

  std::vector<int> Order;
  std::mutex OrderMu;
  std::vector<std::thread> Waiters;
  for (int I = 0; I < 3; ++I) {
    Waiters.emplace_back([&, I] {
      // Stagger arrivals so FIFO sequence numbers are deterministic.
      std::this_thread::sleep_for(std::chrono::milliseconds(20 * (I + 1)));
      AdmissionTicket T = A.acquire(0, 0.0);
      ASSERT_TRUE(T.admitted());
      {
        std::lock_guard<std::mutex> Lock(OrderMu);
        Order.push_back(I);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      T.release();
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Holder.release();
  for (std::thread &T : Waiters)
    T.join();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 0);
  EXPECT_EQ(Order[1], 1);
  EXPECT_EQ(Order[2], 2);
}

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(ServeCodec, VerifyRequestRoundTripsThroughJson) {
  const std::string Line =
      "{\"type\":\"verify\",\"id\":\"r1\",\"net\":\"tiny\","
      "\"input_shape\":\"1x3\",\"start\":[0.0,0.5,-1.0],"
      "\"end\":[1.0,0.25,2.0],\"specs\":[\"argmax:0:2\"],"
      "\"deadline_ms\":250,\"budget_mb\":64,\"p\":0.02,\"k\":50,"
      "\"deterministic\":true,\"arcsine\":true}";
  ServeRequest Req;
  std::string Code, Detail;
  ASSERT_TRUE(decodeServeRequest(Line, Req, &Code, &Detail)) << Detail;
  EXPECT_EQ(Req.Type, ServeRequest::Kind::Verify);
  EXPECT_EQ(Req.Id, "r1");
  EXPECT_EQ(Req.Net, "tiny");
  EXPECT_EQ(Req.InputShape, "1x3");
  ASSERT_EQ(Req.Start.size(), 3u);
  EXPECT_DOUBLE_EQ(Req.Start[1], 0.5);
  EXPECT_DOUBLE_EQ(Req.End[2], 2.0);
  ASSERT_EQ(Req.Specs.size(), 1u);
  EXPECT_DOUBLE_EQ(Req.DeadlineMs, 250.0);
  EXPECT_EQ(Req.BudgetMb, 64);
  EXPECT_TRUE(Req.Deterministic);
  EXPECT_TRUE(Req.Arcsine);
}

TEST(ServeCodec, BadRequestsGetTypedErrors) {
  ServeRequest Req;
  std::string Code, Detail;
  // Not JSON at all.
  EXPECT_FALSE(decodeServeRequest("not json", Req, &Code, &Detail));
  EXPECT_EQ(Code, "malformed");
  // Valid JSON, invalid request.
  EXPECT_FALSE(decodeServeRequest("{\"type\":\"verify\"}", Req, &Code,
                                  &Detail));
  EXPECT_EQ(Code, "bad_request");
  // Mismatched start/end lengths.
  EXPECT_FALSE(decodeServeRequest(
      "{\"type\":\"verify\",\"net\":\"n\",\"input_shape\":\"1x2\","
      "\"start\":[0,0],\"end\":[1],\"specs\":[\"argmax:0:2\"]}",
      Req, &Code, &Detail));
  EXPECT_EQ(Code, "bad_request");
  // A spec that does not parse is refused up front.
  EXPECT_FALSE(decodeServeRequest(
      "{\"type\":\"verify\",\"net\":\"n\",\"input_shape\":\"1x1\","
      "\"start\":[0],\"end\":[1],\"specs\":[\"argmax:9:bogus\"]}",
      Req, &Code, &Detail));
  EXPECT_EQ(Code, "bad_request");
  // Unknown inject modes are refused, not ignored.
  EXPECT_FALSE(decodeServeRequest(
      "{\"type\":\"verify\",\"net\":\"n\",\"input_shape\":\"1x1\","
      "\"start\":[0],\"end\":[1],\"specs\":[\"argmax:0:2\"],"
      "\"inject\":\"meltdown\"}",
      Req, &Code, &Detail));
  EXPECT_EQ(Code, "bad_request");
}

TEST(ServeCodec, ResponseEncodingCarriesStatusFields) {
  ServeResponse R;
  R.Id = "r9";
  R.Status = "overloaded";
  R.Shed = ShedReason::QueueFull;
  R.RetryAfterMs = 250.0;
  const std::string Line = encodeServeResponse(R);
  EXPECT_NE(Line.find("\"status\":\"overloaded\""), std::string::npos);
  EXPECT_NE(Line.find("\"retry_after_ms\""), std::string::npos);
  EXPECT_NE(Line.find("\"shed_reason\":\"queue-full\""), std::string::npos);
  // Non-overloaded responses do not carry the shed fields.
  R.Status = "ok";
  const std::string Ok = encodeServeResponse(R);
  EXPECT_EQ(Ok.find("retry_after_ms"), std::string::npos);
}

TEST(ServeCodec, WorkerSpecRoundTrips) {
  ServeWorkerSpec S;
  S.NetPaths = {"/tmp/a.gpn", "/tmp/b.gpn"};
  S.InputShape = "1x4";
  S.Start = {0.0, 0.25, -1.5, 3.0};
  S.End = {1.0, 0.5, 1.5, -3.0};
  S.Specs = {"argmax:0:3", "sign:1:+:4"};
  S.BudgetBytes = 1u << 20;
  S.DeadlineSeconds = 1.5;
  S.RelaxPercent = 0.02;
  S.ClusterK = 42.0;
  S.NodeThreshold = 99;
  S.Arcsine = true;
  S.Sound = true;
  S.HeartbeatMs = 25.0;
  S.Inject = "crash";

  ServeWorkerSpec Out;
  std::string Err;
  ASSERT_TRUE(decodeServeWorkerSpec(encodeServeWorkerSpec(S), Out, &Err))
      << Err;
  EXPECT_EQ(Out.NetPaths, S.NetPaths);
  EXPECT_EQ(Out.InputShape, S.InputShape);
  EXPECT_EQ(Out.Start, S.Start);
  EXPECT_EQ(Out.End, S.End);
  EXPECT_EQ(Out.Specs, S.Specs);
  EXPECT_EQ(Out.BudgetBytes, S.BudgetBytes);
  EXPECT_DOUBLE_EQ(Out.DeadlineSeconds, S.DeadlineSeconds);
  EXPECT_DOUBLE_EQ(Out.RelaxPercent, S.RelaxPercent);
  EXPECT_DOUBLE_EQ(Out.ClusterK, S.ClusterK);
  EXPECT_EQ(Out.NodeThreshold, S.NodeThreshold);
  EXPECT_TRUE(Out.Arcsine);
  EXPECT_TRUE(Out.Sound);
  EXPECT_EQ(Out.Inject, "crash");
}

// ---------------------------------------------------------------------------
// End to end over a live socket.
// ---------------------------------------------------------------------------

/// Test fixture: a registered 2->2 linear model, a Server on a temp
/// socket, and a blocking line client.
class ServeEndToEnd : public ::testing::Test {
protected:
  void SetUp() override {
    // The stats path reads live counters; counting only happens while the
    // metrics plane is on (the daemon always enables it when asked for
    // metric artifacts, the test does it explicitly).
    WasMetricsEnabled = metricsEnabled();
    setMetricsEnabled(true);
    std::snprintf(NetPath, sizeof(NetPath), "/tmp/genprove-serve-test-%d.gpn",
                  static_cast<int>(::getpid()));
    std::snprintf(SocketPath, sizeof(SocketPath),
                  "/tmp/genprove-serve-test-%d.sock",
                  static_cast<int>(::getpid()));
    Sequential Net;
    auto L = std::make_unique<Linear>(2, 2);
    // argmax:0 wins exactly when x0 > x1: an identity map keeps the
    // ground truth obvious.
    L->weight() = Tensor({2, 2}, {1.0, 0.0, 0.0, 1.0});
    L->bias() = Tensor({2}, {0.0, 0.0});
    Net.add(std::move(L));
    ASSERT_TRUE(saveNetwork(Net, NetPath));

    std::string Err;
    ASSERT_TRUE(Registry.registerModel(std::string("tiny=") + NetPath, &Err))
        << Err;
  }

  void TearDown() override {
    stopServer();
    ::unlink(NetPath);
    ::unlink(SocketPath);
    setMetricsEnabled(WasMetricsEnabled);
  }

  void startServer(ServeConfig Cfg) {
    Cfg.SocketPath = SocketPath;
    Daemon = std::make_unique<Server>(Cfg, Registry);
    ServerThread = std::thread([this] { Daemon->run(); });
    // Wait for the socket to come up.
    for (int I = 0; I < 200 && !socketUp(); ++I)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(socketUp());
  }

  void stopServer() {
    if (Daemon)
      Daemon->requestStop();
    if (ServerThread.joinable())
      ServerThread.join();
    Daemon.reset();
  }

  bool socketUp() {
    const int Fd = connectSocket();
    if (Fd < 0)
      return false;
    ::close(Fd);
    return true;
  }

  int connectSocket() {
    const int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    struct sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, SocketPath, sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) != 0) {
      ::close(Fd);
      return -1;
    }
    return Fd;
  }

  static bool sendLine(int Fd, const std::string &Line) {
    const std::string Framed = Line + "\n";
    size_t Off = 0;
    while (Off < Framed.size()) {
      const ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                               MSG_NOSIGNAL);
      if (N < 0)
        return false;
      Off += static_cast<size_t>(N);
    }
    return true;
  }

  static bool readLine(int Fd, std::string &Out, double TimeoutSeconds) {
    std::string Buf;
    const auto Deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(TimeoutSeconds);
    for (;;) {
      const size_t Nl = Buf.find('\n');
      if (Nl != std::string::npos) {
        Out = Buf.substr(0, Nl);
        return true;
      }
      if (std::chrono::steady_clock::now() > Deadline)
        return false;
      struct pollfd P;
      P.fd = Fd;
      P.events = POLLIN;
      P.revents = 0;
      if (::poll(&P, 1, 100) <= 0)
        continue;
      char Chunk[4096];
      const ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return false;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// Send one line, read one reply, parse it.
  bool roundTrip(int Fd, const std::string &Line, JsonValue &Reply) {
    if (!sendLine(Fd, Line))
      return false;
    std::string ReplyLine;
    if (!readLine(Fd, ReplyLine, 30.0))
      return false;
    return parseJson(ReplyLine, Reply, nullptr);
  }

  static std::string verifyLine(const std::string &Id, double DeadlineMs,
                                const std::string &Inject = "") {
    std::string Line =
        "{\"type\":\"verify\",\"id\":\"" + Id +
        "\",\"net\":\"tiny\",\"input_shape\":\"1x2\","
        "\"start\":[1.0,0.0],\"end\":[2.0,0.5],"
        "\"specs\":[\"argmax:0:2\"]";
    if (DeadlineMs >= 0.0)
      Line += ",\"deadline_ms\":" + std::to_string(DeadlineMs);
    if (!Inject.empty())
      Line += ",\"inject\":\"" + Inject + "\",\"inject_ms\":100";
    Line += "}";
    return Line;
  }

  bool WasMetricsEnabled = false;
  char NetPath[128];
  char SocketPath[128];
  ModelRegistry Registry;
  std::unique_ptr<Server> Daemon;
  std::thread ServerThread;
};

TEST_F(ServeEndToEnd, PingVerifyAndStats) {
  ServeConfig Cfg;
  startServer(Cfg);
  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);

  JsonValue Reply;
  ASSERT_TRUE(roundTrip(Fd, "{\"type\":\"ping\"}", Reply));
  EXPECT_EQ(Reply.find("type")->stringOr(""), "pong");

  // On [1,0]..[2,0.5], x0 > x1 everywhere: argmax:0 holds with
  // probability one, at full fidelity.
  ASSERT_TRUE(roundTrip(Fd, verifyLine("v1", -1.0), Reply));
  EXPECT_EQ(Reply.find("status")->stringOr(""), "ok");
  EXPECT_EQ(Reply.find("rung")->stringOr(""), "configured");
  EXPECT_EQ(Reply.find("id")->stringOr(""), "v1");
  const JsonValue *Specs = Reply.find("specs");
  ASSERT_TRUE(Specs && Specs->Items.size() == 1);
  EXPECT_NEAR(Specs->Items[0].find("lower")->numberOr(-1.0), 1.0, 1e-9);
  EXPECT_NEAR(Specs->Items[0].find("upper")->numberOr(-1.0), 1.0, 1e-9);

  ASSERT_TRUE(roundTrip(Fd, "{\"type\":\"stats\"}", Reply));
  EXPECT_EQ(Reply.find("type")->stringOr(""), "stats");
  EXPECT_GE(Reply.find("requests")->intOr(-1), 1);
  EXPECT_NE(Reply.find("prometheus")->stringOr("").find("serve_requests"),
            std::string::npos);

  // Garbage on the wire costs a typed error, never the connection.
  ASSERT_TRUE(roundTrip(Fd, "{broken", Reply));
  EXPECT_EQ(Reply.find("type")->stringOr(""), "error");
  EXPECT_EQ(Reply.find("code")->stringOr(""), "malformed");
  ASSERT_TRUE(roundTrip(Fd, "{\"type\":\"ping\"}", Reply));
  EXPECT_EQ(Reply.find("type")->stringOr(""), "pong");

  ::close(Fd);
}

TEST_F(ServeEndToEnd, ZeroDeadlineStillGetsSoundDegradedBounds) {
  ServeConfig Cfg;
  startServer(Cfg);
  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);

  JsonValue Reply;
  // 0.001 ms remaining: the interval-box band. The answer must be sound
  // ([l,u] containing the true probability 1) and flagged degraded.
  ASSERT_TRUE(roundTrip(Fd, verifyLine("late", 0.001), Reply));
  EXPECT_EQ(Reply.find("status")->stringOr(""), "degraded");
  EXPECT_EQ(Reply.find("rung")->stringOr(""), "interval-box");
  const JsonValue *Specs = Reply.find("specs");
  ASSERT_TRUE(Specs && Specs->Items.size() == 1);
  const double Lower = Specs->Items[0].find("lower")->numberOr(-1.0);
  const double Upper = Specs->Items[0].find("upper")->numberOr(-1.0);
  EXPECT_GE(Lower, 0.0);
  EXPECT_LE(Upper, 1.0);
  EXPECT_LE(Lower, 1.0);
  EXPECT_GE(Upper, 1.0 - 1e-9); // must still contain the truth
  EXPECT_TRUE(Specs->Items[0].find("degraded")->boolOr(false));

  ::close(Fd);
}

TEST_F(ServeEndToEnd, InjectedCrashIsRetriedToASoundAnswer) {
  ServeConfig Cfg;
  Cfg.AllowInject = true;
  Cfg.HeartbeatTimeoutSeconds = 0.3; // fast hang detection for the test
  startServer(Cfg);
  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);

  JsonValue Reply;
  for (const char *Fault : {"crash", "oomkill", "hang"}) {
    ASSERT_TRUE(roundTrip(Fd, verifyLine(Fault, -1.0, Fault), Reply))
        << Fault;
    // The attempt-0 fault is contained and retried; the answer is
    // degraded (supervision was not clean) but present and sound.
    EXPECT_EQ(Reply.find("status")->stringOr(""), "degraded") << Fault;
    const JsonValue *Specs = Reply.find("specs");
    ASSERT_TRUE(Specs && Specs->Items.size() == 1) << Fault;
    EXPECT_GE(Specs->Items[0].find("upper")->numberOr(-1.0), 1.0 - 1e-9)
        << Fault;
  }
  ::close(Fd);
}

TEST_F(ServeEndToEnd, InjectionRefusedWithoutAllowInject) {
  ServeConfig Cfg; // AllowInject defaults off
  startServer(Cfg);
  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);
  JsonValue Reply;
  ASSERT_TRUE(roundTrip(Fd, verifyLine("nope", -1.0, "crash"), Reply));
  EXPECT_EQ(Reply.find("status")->stringOr(""), "error");
  ::close(Fd);
}

TEST_F(ServeEndToEnd, OverloadShedsWithExplicitResponse) {
  ServeConfig Cfg;
  Cfg.AllowInject = true;
  Cfg.Admission.MaxConcurrent = 1;
  Cfg.Admission.MaxQueue = 0;
  startServer(Cfg);

  // One slow request to occupy the single slot...
  const int Slow = connectSocket();
  ASSERT_GE(Slow, 0);
  ASSERT_TRUE(sendLine(Slow, verifyLine("slow", -1.0, "slow")));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // ...then a second one, which must shed immediately and explicitly.
  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);
  JsonValue Reply;
  ASSERT_TRUE(roundTrip(Fd, verifyLine("shedme", -1.0), Reply));
  EXPECT_EQ(Reply.find("status")->stringOr(""), "overloaded");
  EXPECT_EQ(Reply.find("shed_reason")->stringOr(""), "queue-full");
  EXPECT_GT(Reply.find("retry_after_ms")->numberOr(0.0), 0.0);

  // The slow request still completes: shedding is loss of *capacity*,
  // never loss of admitted work.
  std::string SlowReply;
  ASSERT_TRUE(readLine(Slow, SlowReply, 30.0));
  JsonValue SlowParsed;
  ASSERT_TRUE(parseJson(SlowReply, SlowParsed, nullptr));
  const std::string SlowStatus = SlowParsed.find("status")->stringOr("");
  EXPECT_TRUE(SlowStatus == "ok" || SlowStatus == "degraded") << SlowStatus;

  ::close(Fd);
  ::close(Slow);
}

TEST_F(ServeEndToEnd, CoalescedRequestsRoundTripWithSameBounds) {
  ServeConfig Cfg;
  Cfg.CoalesceWindowSeconds = 0.5;
  Cfg.CoalesceMaxBatch = 4;
  startServer(Cfg);
  // In-process daemon: the coalesced path is the cache-eligible one, so
  // give the process-wide cache a budget for the duration of the test.
  PropagationCache::global().configure(32u << 20);

  const int Fd1 = connectSocket();
  const int Fd2 = connectSocket();
  ASSERT_GE(Fd1, 0);
  ASSERT_GE(Fd2, 0);

  // Two waves of identical no-deadline requests from two connections:
  // each wave lands in one coalesce bucket (window 500ms >> send skew),
  // and the second wave's joint propagation warm-starts off the first.
  for (int Wave = 0; Wave < 2; ++Wave) {
    ASSERT_TRUE(sendLine(Fd1, verifyLine("c1", -1.0)));
    ASSERT_TRUE(sendLine(Fd2, verifyLine("c2", -1.0)));
    for (const int Fd : {Fd1, Fd2}) {
      std::string Line;
      ASSERT_TRUE(readLine(Fd, Line, 30.0)) << "wave " << Wave;
      JsonValue Reply;
      ASSERT_TRUE(parseJson(Line, Reply, nullptr));
      // Coalescing must be invisible in the answer: same status, same
      // full-fidelity rung, and the same exact bounds as the unbatched
      // request in PingVerifyAndStats (argmax:0 holds with probability
      // one on this segment).
      EXPECT_EQ(Reply.find("status")->stringOr(""), "ok");
      EXPECT_EQ(Reply.find("rung")->stringOr(""), "configured");
      const JsonValue *Specs = Reply.find("specs");
      ASSERT_TRUE(Specs && Specs->Items.size() == 1);
      EXPECT_NEAR(Specs->Items[0].find("lower")->numberOr(-1.0), 1.0, 1e-9);
      EXPECT_NEAR(Specs->Items[0].find("upper")->numberOr(-1.0), 1.0, 1e-9);
    }
  }

  JsonValue Stats;
  ASSERT_TRUE(roundTrip(Fd1, "{\"type\":\"stats\"}", Stats));
  EXPECT_GE(Stats.find("coalesce_batches")->intOr(0), 1);
  EXPECT_GE(Stats.find("coalesce_requests")->intOr(0), 2);
  // The repeated wave hits the propagation cache.
  EXPECT_GE(Stats.find("cache_hits")->intOr(0), 1);

  ::close(Fd1);
  ::close(Fd2);
  PropagationCache::global().configure(0);
}

TEST_F(ServeEndToEnd, DrainAnswersInFlightThenStops) {
  ServeConfig Cfg;
  Cfg.AllowInject = true;
  Cfg.DrainDeadlineSeconds = 10.0;
  startServer(Cfg);

  const int Fd = connectSocket();
  ASSERT_GE(Fd, 0);
  // A request that holds its slot for ~300ms...
  ASSERT_TRUE(sendLine(Fd, verifyLine("inflight", -1.0, "slow")));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...and a SIGTERM-equivalent mid-flight.
  Daemon->requestStop();

  // The in-flight request is still answered before the server exits.
  std::string Reply;
  EXPECT_TRUE(readLine(Fd, Reply, 30.0));
  ::close(Fd);

  stopServer();
  // The socket is gone: new connections are refused after drain.
  EXPECT_LT(connectSocket(), 0);
}

} // namespace
} // namespace genprove
