//===- tests/distribution_test.cpp - parameter distributions ----*- C++ -*-===//

#include "src/core/distribution.h"

#include <gtest/gtest.h>

#include <string>

namespace genprove {
namespace {

class CdfProperty
    : public ::testing::TestWithParam<ParamDistribution> {};

TEST_P(CdfProperty, MonotoneWithCorrectEndpoints) {
  const ParamDistribution Dist = GetParam();
  EXPECT_DOUBLE_EQ(paramCdf(Dist, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(paramCdf(Dist, 1.0), 1.0);
  double Prev = 0.0;
  for (int I = 1; I <= 100; ++I) {
    const double T = static_cast<double>(I) / 100.0;
    const double F = paramCdf(Dist, T);
    EXPECT_GE(F, Prev);
    EXPECT_GE(F, 0.0);
    EXPECT_LE(F, 1.0);
    Prev = F;
  }
}

TEST_P(CdfProperty, SamplesMatchCdf) {
  const ParamDistribution Dist = GetParam();
  Rng R(42);
  const int N = 50000;
  int BelowQuarter = 0, BelowHalf = 0;
  for (int I = 0; I < N; ++I) {
    const double T = sampleParam(Dist, R);
    BelowQuarter += T < 0.25;
    BelowHalf += T < 0.5;
  }
  EXPECT_NEAR(static_cast<double>(BelowQuarter) / N, paramCdf(Dist, 0.25),
              0.01);
  EXPECT_NEAR(static_cast<double>(BelowHalf) / N, paramCdf(Dist, 0.5), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Distributions, CdfProperty,
                         ::testing::Values(ParamDistribution::Uniform,
                                           ParamDistribution::Arcsine));

TEST(Distribution, ArcsineKnownValues) {
  EXPECT_NEAR(paramCdf(ParamDistribution::Arcsine, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(paramCdf(ParamDistribution::Arcsine, 0.25), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(paramCdf(ParamDistribution::Arcsine, 0.75), 2.0 / 3.0, 1e-12);
}

TEST(Distribution, ClampsOutOfRange) {
  EXPECT_DOUBLE_EQ(paramCdf(ParamDistribution::Arcsine, -0.5), 0.0);
  EXPECT_DOUBLE_EQ(paramCdf(ParamDistribution::Arcsine, 1.5), 1.0);
}

TEST(Distribution, Names) {
  EXPECT_EQ(std::string(paramDistributionName(ParamDistribution::Uniform)),
            "uniform");
  EXPECT_EQ(std::string(paramDistributionName(ParamDistribution::Arcsine)),
            "arcsine");
}

TEST(Distribution, MakeCdfMatchesParamCdf) {
  const auto Cdf = makeCdf(ParamDistribution::Arcsine);
  for (int I = 0; I <= 10; ++I) {
    const double T = I / 10.0;
    EXPECT_DOUBLE_EQ(Cdf(T), paramCdf(ParamDistribution::Arcsine, T));
  }
}

} // namespace
} // namespace genprove
