//===- tests/shard_test.cpp - supervised shard execution -----------------===//
///
/// The shard layer end to end: partition properties, wire-protocol
/// round-trips, the retry/backoff/escalation scheduler on a fake clock,
/// the supervision loop against scripted worker failures (crash, hang,
/// heartbeat loss, exhaustion -> fallback), and the differential oracle —
/// a supervised sharded run must produce the same verdicts and (to float
/// slack) the same bounds as the single-process path, and with injected
/// faults its merged interval must still contain the fault-free one.

#include "src/core/genprove.h"
#include "src/domains/memory_model.h"
#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/obs/metrics.h"
#include "src/shard/protocol.h"
#include "src/shard/shard.h"
#include "src/shard/supervisor.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

namespace genprove {
namespace {

Sequential makeRandomMlp(Rng &R, const std::vector<int64_t> &Dims) {
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I) {
    auto L = std::make_unique<Linear>(Dims[I], Dims[I + 1]);
    L->weight() = Tensor::randn({Dims[I + 1], Dims[I]}, R, 0.8);
    L->bias() = Tensor::randn({Dims[I + 1]}, R, 0.5);
    Net.add(std::move(L));
    if (I + 2 < Dims.size())
      Net.add(std::make_unique<ReLU>());
  }
  return Net;
}

/// [Lower, Upper] of \p Outer contains \p Inner (up to float slack).
void expectContains(const ProbBounds &Outer, const ProbBounds &Inner) {
  EXPECT_LE(Outer.Lower, Inner.Lower + 1e-9);
  EXPECT_GE(Outer.Upper, Inner.Upper - 1e-9);
}

// ---------------------------------------------------------------------------
// Partition properties.
// ---------------------------------------------------------------------------

TEST(ShardPlan, PartitionIsDisjointCoveringAndExact) {
  for (int64_t N : {1, 2, 3, 4, 7}) {
    const std::vector<ShardRange> Ranges = planShards(N);
    ASSERT_EQ(Ranges.size(), static_cast<size_t>(N));
    EXPECT_EQ(Ranges.front().T0, 0.0);
    EXPECT_EQ(Ranges.back().T1, 1.0);
    for (int64_t I = 0; I < N; ++I) {
      EXPECT_EQ(Ranges[static_cast<size_t>(I)].Index, I);
      EXPECT_LT(Ranges[static_cast<size_t>(I)].T0,
                Ranges[static_cast<size_t>(I)].T1);
    }
    // Shared cut points are the *same double* on both sides: no parameter
    // mass can fall through or be double-counted at a boundary.
    for (int64_t I = 0; I + 1 < N; ++I)
      EXPECT_EQ(Ranges[static_cast<size_t>(I)].T1,
                Ranges[static_cast<size_t>(I + 1)].T0);
  }
}

// ---------------------------------------------------------------------------
// Wire protocol.
// ---------------------------------------------------------------------------

TEST(ShardProtocol, ResultRoundTripsBitExactly) {
  ShardResult R;
  R.Shard = 3;
  R.Attempt = 2;
  R.Rung = 1;
  R.Seconds = 1.0 / 3.0;
  R.PeakBytes = 123456789;
  R.MaxRegions = 42;
  R.MaxNodes = 4242;
  R.Retries = 1;
  R.Rollbacks = 2;
  R.FallbackBoxLayers = 3;
  R.QuarantinedMass = 0.1; // not exactly representable: the %.17g test
  R.Degraded = true;
  R.DeadlineHit = true;
  R.OutOfMemory = false;
  ShardSpecBounds SB;
  SB.Lower = std::nextafter(0.25, 1.0); // an awkward ulp neighbour
  SB.Upper = 2.0 / 3.0;
  SB.Degraded = true;
  R.Specs.push_back(SB);
  SB.Lower = 0.0;
  SB.Upper = 1.0;
  SB.Degraded = false;
  R.Specs.push_back(SB);

  const std::string Line = encodeShardResult(R);
  EXPECT_EQ(classifyShardMessage(Line), ShardMessageKind::Result);

  ShardResult D;
  std::string Error;
  ASSERT_TRUE(decodeShardResult(Line, D, &Error)) << Error;
  EXPECT_EQ(D.Shard, R.Shard);
  EXPECT_EQ(D.Attempt, R.Attempt);
  EXPECT_EQ(D.Rung, R.Rung);
  // %.17g -> strtod is a bit-exact round trip for every finite double.
  EXPECT_EQ(D.Seconds, R.Seconds);
  EXPECT_EQ(D.QuarantinedMass, R.QuarantinedMass);
  EXPECT_EQ(D.PeakBytes, R.PeakBytes);
  EXPECT_EQ(D.MaxRegions, R.MaxRegions);
  EXPECT_EQ(D.MaxNodes, R.MaxNodes);
  EXPECT_EQ(D.Retries, R.Retries);
  EXPECT_EQ(D.Rollbacks, R.Rollbacks);
  EXPECT_EQ(D.FallbackBoxLayers, R.FallbackBoxLayers);
  EXPECT_EQ(D.Degraded, R.Degraded);
  EXPECT_EQ(D.DeadlineHit, R.DeadlineHit);
  EXPECT_EQ(D.OutOfMemory, R.OutOfMemory);
  ASSERT_EQ(D.Specs.size(), R.Specs.size());
  for (size_t I = 0; I < R.Specs.size(); ++I) {
    EXPECT_EQ(D.Specs[I].Lower, R.Specs[I].Lower);
    EXPECT_EQ(D.Specs[I].Upper, R.Specs[I].Upper);
    EXPECT_EQ(D.Specs[I].Degraded, R.Specs[I].Degraded);
  }
}

TEST(ShardProtocol, HeartbeatAndGarbageClassification) {
  const std::string Beat = encodeShardHeartbeat(5, 17);
  EXPECT_EQ(classifyShardMessage(Beat), ShardMessageKind::Heartbeat);
  EXPECT_EQ(classifyShardMessage("not json at all"),
            ShardMessageKind::Invalid);
  EXPECT_EQ(classifyShardMessage("{\"type\":\"mystery\"}"),
            ShardMessageKind::Invalid);
  ShardResult D;
  EXPECT_FALSE(decodeShardResult(Beat, D)); // a heartbeat is not a result
}

TEST(ShardProtocol, HeartbeatCarriesTheLivenessDigest) {
  const std::string Beat = encodeShardHeartbeat(2, 9, 1 << 20, 7);
  ShardHeartbeat H;
  ASSERT_TRUE(decodeShardHeartbeat(Beat, H));
  EXPECT_EQ(H.Shard, 2);
  EXPECT_EQ(H.Seq, 9);
  EXPECT_EQ(H.StateBytes, 1 << 20);
  EXPECT_EQ(H.Layer, 7);

  // The digest defaults to -1 ("unknown") and still round-trips.
  ShardHeartbeat Idle;
  ASSERT_TRUE(decodeShardHeartbeat(encodeShardHeartbeat(0, 0), Idle));
  EXPECT_EQ(Idle.StateBytes, -1);
  EXPECT_EQ(Idle.Layer, -1);
}

TEST(ShardProtocol, ResultCarriesTelemetrySections) {
  ShardResult R;
  R.Shard = 1;
  ShardSpecBounds SB;
  SB.Lower = 0.25;
  SB.Upper = 0.75;
  R.Specs.push_back(SB);

  ShardTelemetry Tel;
  Tel.HasMetrics = true;
  Tel.Metrics.Counters["propagate.splits"] = 12;
  Tel.Metrics.Gauges["device.peak_bytes"] = 4096.0;
  Tel.Metrics.Histograms["propagate.layer_seconds"].record(0.5);
  TraceEvent E;
  E.Name = "layer_0";
  E.StartUs = 100;
  E.DurUs = 50;
  E.SelfUs = 40;
  E.Tid = 1;
  E.Depth = 2;
  Tel.Trace.push_back(E);
  LogRecord L;
  L.TsUs = 777;
  L.Level = LogLevel::Warn;
  L.Shard = 1;
  L.Event = "propagate.rollback";
  L.Fields.push_back({"layer", LogValue(int64_t(3))});
  L.Fields.push_back({"mass", LogValue(0.125)});
  L.Fields.push_back({"rung", LogValue("resilient")});
  Tel.Log.push_back(L);

  const std::string Line = encodeShardResult(R, &Tel);
  EXPECT_EQ(classifyShardMessage(Line), ShardMessageKind::Result);

  ShardResult D;
  ShardTelemetry Back;
  std::string Error;
  ASSERT_TRUE(decodeShardResult(Line, D, &Error, &Back)) << Error;
  ASSERT_TRUE(Back.HasMetrics);
  EXPECT_EQ(Back.Metrics.Counters.at("propagate.splits"), 12);
  EXPECT_EQ(Back.Metrics.Gauges.at("device.peak_bytes"), 4096.0);
  EXPECT_EQ(Back.Metrics.Histograms.at("propagate.layer_seconds").Count, 1);
  ASSERT_EQ(Back.Trace.size(), 1u);
  EXPECT_EQ(Back.Trace[0].Name, "layer_0");
  EXPECT_EQ(Back.Trace[0].StartUs, 100u);
  EXPECT_EQ(Back.Trace[0].DurUs, 50u);
  EXPECT_EQ(Back.Trace[0].SelfUs, 40u);
  EXPECT_EQ(Back.Trace[0].Tid, 1u);
  EXPECT_EQ(Back.Trace[0].Depth, 2u);
  ASSERT_EQ(Back.Log.size(), 1u);
  EXPECT_EQ(Back.Log[0].TsUs, 777u);
  EXPECT_EQ(Back.Log[0].Level, LogLevel::Warn);
  EXPECT_EQ(Back.Log[0].Shard, 1);
  EXPECT_EQ(Back.Log[0].Event, "propagate.rollback");
  ASSERT_EQ(Back.Log[0].Fields.size(), 3u);
  EXPECT_EQ(Back.Log[0].Fields[0].second.I, 3);
  EXPECT_EQ(Back.Log[0].Fields[1].second.D, 0.125);
  EXPECT_EQ(Back.Log[0].Fields[2].second.S, "resilient");

  // A result without telemetry decodes to an empty section, and the old
  // decode signature still works against a telemetry-bearing line.
  ShardTelemetry None;
  ShardResult D2;
  ASSERT_TRUE(decodeShardResult(encodeShardResult(R), D2, nullptr, &None));
  EXPECT_TRUE(None.empty());
  ShardResult D3;
  EXPECT_TRUE(decodeShardResult(Line, D3));
  EXPECT_EQ(D3.Specs.size(), 1u);
}

// ---------------------------------------------------------------------------
// Scheduler: retry timing, rung escalation, exhaustion — on a fake clock,
// so every assertion is exact (satellite: deterministic scheduling tests).
// ---------------------------------------------------------------------------

TEST(ShardWire, FramerReassemblesLinesSplitAcrossFeeds) {
  LineFramer F(64);
  std::string Line;
  // A line arriving one byte at a time still comes out as a single frame.
  const std::string Msg = "{\"type\":\"ping\"}";
  for (char C : Msg) {
    F.feed(&C, 1);
    EXPECT_EQ(F.next(Line), LineFramer::Frame::None);
  }
  F.feed("\n", 1);
  ASSERT_EQ(F.next(Line), LineFramer::Frame::Line);
  EXPECT_EQ(Line, Msg);
  // Multiple lines in one read() are popped in order.
  const std::string Two = "alpha\nbeta\n";
  F.feed(Two.data(), Two.size());
  ASSERT_EQ(F.next(Line), LineFramer::Frame::Line);
  EXPECT_EQ(Line, "alpha");
  ASSERT_EQ(F.next(Line), LineFramer::Frame::Line);
  EXPECT_EQ(Line, "beta");
  EXPECT_EQ(F.next(Line), LineFramer::Frame::None);
  EXPECT_EQ(F.finish(), WireError::None);
}

TEST(ShardWire, OversizedLineIsDiscardedWithATypedMarkerInOrder) {
  LineFramer F(8);
  std::string Line;
  // ok, over-cap (streamed in chunks), ok — exactly one Oversized marker
  // appears between the two good frames, and the framer never buffers
  // more than the cap.
  F.feed("good\n", 5);
  const std::string Huge(1000, 'x');
  for (size_t I = 0; I < Huge.size(); I += 100)
    F.feed(Huge.data() + I, std::min<size_t>(100, Huge.size() - I));
  F.feed("\nalso\n", 6);
  ASSERT_EQ(F.next(Line), LineFramer::Frame::Line);
  EXPECT_EQ(Line, "good");
  EXPECT_EQ(F.next(Line), LineFramer::Frame::Oversized);
  ASSERT_EQ(F.next(Line), LineFramer::Frame::Line);
  EXPECT_EQ(Line, "also");
  EXPECT_EQ(F.oversizedLines(), 1u);
  EXPECT_EQ(F.finish(), WireError::None);
}

TEST(ShardWire, EofClassifiesTheStreamTail) {
  // Clean boundary.
  {
    LineFramer F(64);
    F.feed("done\n", 5);
    EXPECT_EQ(F.finish(), WireError::None);
  }
  // Mid-line disconnect: a partial ordinary frame is Truncated, and the
  // partial bytes are never surfaced as a complete line.
  {
    LineFramer F(64);
    std::string Line;
    F.feed("{\"type\":\"veri", 13);
    EXPECT_EQ(F.next(Line), LineFramer::Frame::None);
    EXPECT_EQ(F.finish(), WireError::Truncated);
  }
  // EOF inside a discarded over-cap line classifies as Oversized.
  {
    LineFramer F(4);
    std::string Line;
    F.feed("toolongtail", 11);
    EXPECT_EQ(F.next(Line), LineFramer::Frame::Oversized);
    EXPECT_EQ(F.finish(), WireError::Oversized);
  }
}

ShardPolicy testPolicy(int64_t NumShards, int64_t MaxRetries) {
  ShardPolicy P;
  P.NumShards = NumShards;
  P.MaxRetries = MaxRetries;
  P.BackoffInitialSeconds = 0.05;
  P.BackoffMultiplier = 2.0;
  P.BackoffMaxSeconds = 2.0;
  return P;
}

TEST(ShardScheduler, BackoffIsExponentialAndCapped) {
  ShardScheduler Sched(testPolicy(1, 10));
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(1), 0.05);
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(2), 0.10);
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(3), 0.20);
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(4), 0.40);
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(7), 2.0); // 3.2 capped at Max
  EXPECT_DOUBLE_EQ(Sched.backoffDelay(30), 2.0);
}

TEST(ShardScheduler, RetriesBackOffAndEscalateRungsInOrder) {
  ShardScheduler Sched(testPolicy(1, 3));
  AttemptPlan Plan;

  // Attempt 0 launches immediately at the configured rung.
  ASSERT_TRUE(Sched.nextReady(0.0, Plan));
  EXPECT_EQ(Plan.Attempt, 0);
  EXPECT_EQ(Plan.Rung, ShardRung::Configured);
  ASSERT_FALSE(Sched.nextReady(0.0, Plan)); // shard is running, not pending

  // Crash at t=0: retry 1 is due exactly at t=0.05, not a tick earlier.
  Sched.recordFailure(0, AttemptOutcome::Crash, 0.0);
  EXPECT_FALSE(Sched.nextReady(0.049999, Plan));
  EXPECT_DOUBLE_EQ(Sched.nextReadyTime(), 0.05);
  ASSERT_TRUE(Sched.nextReady(0.05, Plan));
  EXPECT_EQ(Plan.Attempt, 1);
  EXPECT_EQ(Plan.Rung, ShardRung::Resilient);

  // Crash at t=0.05: retry 2 due at 0.05 + 0.1, at the interval-box rung.
  Sched.recordFailure(0, AttemptOutcome::OomKill, 0.05);
  double Due = Sched.nextReadyTime();
  EXPECT_NEAR(Due, 0.15, 1e-12);
  EXPECT_FALSE(Sched.nextReady(Due - 1e-6, Plan));
  ASSERT_TRUE(Sched.nextReady(Due, Plan));
  EXPECT_EQ(Plan.Attempt, 2);
  EXPECT_EQ(Plan.Rung, ShardRung::IntervalBox);

  // Retry 3 (the last of the budget) stays at interval-box.
  Sched.recordFailure(0, AttemptOutcome::Hang, Due);
  Due = Sched.nextReadyTime();
  EXPECT_NEAR(Due, 0.35, 1e-12);
  ASSERT_TRUE(Sched.nextReady(Due, Plan));
  EXPECT_EQ(Plan.Attempt, 3);
  EXPECT_EQ(Plan.Rung, ShardRung::IntervalBox);

  // Fourth failure exhausts the budget: no more attempts, shard resolved.
  Sched.recordFailure(0, AttemptOutcome::Crash, Due);
  EXPECT_FALSE(Sched.pendingWork());
  EXPECT_TRUE(Sched.allResolved());
  ASSERT_EQ(Sched.exhaustedShards().size(), 1u);
  EXPECT_EQ(Sched.exhaustedShards()[0], 0);
  EXPECT_EQ(Sched.totalRetries(), 3);
}

TEST(ShardScheduler, FatalOutcomeExhaustsImmediately) {
  ShardScheduler Sched(testPolicy(1, 5));
  AttemptPlan Plan;
  ASSERT_TRUE(Sched.nextReady(0.0, Plan));
  // A usage/config error cannot be fixed by retrying; burn no budget.
  Sched.recordFailure(0, AttemptOutcome::Fatal, 0.0);
  EXPECT_TRUE(Sched.allResolved());
  EXPECT_EQ(Sched.exhaustedShards().size(), 1u);
  EXPECT_EQ(Sched.totalRetries(), 0);
}

TEST(ShardScheduler, EscalateRaisesRungWithoutConsumingAnAttempt) {
  ShardScheduler Sched(testPolicy(1, 3));
  AttemptPlan Plan;
  ASSERT_TRUE(Sched.nextReady(0.0, Plan));
  EXPECT_EQ(Plan.Rung, ShardRung::Configured);
  // Admission rejected the launch: same attempt, higher rung, no delay.
  Sched.escalate(0);
  ASSERT_TRUE(Sched.nextReady(0.0, Plan));
  EXPECT_EQ(Plan.Attempt, 0);
  EXPECT_EQ(Plan.Rung, ShardRung::Resilient);
  EXPECT_EQ(Sched.totalRetries(), 0);
}

// ---------------------------------------------------------------------------
// Supervisor against scripted failures, on a fake clock.
// ---------------------------------------------------------------------------

/// A launcher whose attempts resolve according to a script:
///   Ok            — finishes instantly with bounds [0.1, 0.2] per spec;
///   Hang          — never finishes, never heartbeats;
///   SlowHeartbeat — never finishes but heartbeats (deadline test);
///   anything else — fails instantly with that outcome.
class ScriptedLauncher : public ShardWorkerLauncher {
public:
  static constexpr auto SlowHeartbeat = static_cast<AttemptOutcome>(200);

  std::map<std::pair<int64_t, int64_t>, AttemptOutcome> Script;
  std::vector<AttemptPlan> Launches;
  int64_t Kills = 0;
  int64_t NumSpecs = 1;

  AttemptOutcome outcomeFor(const AttemptPlan &P) const {
    const auto It = Script.find({P.Shard, P.Attempt});
    return It == Script.end() ? AttemptOutcome::Ok : It->second;
  }

  bool launch(const AttemptPlan &Plan) override {
    Launches.push_back(Plan);
    Live[Plan.Shard] = Plan;
    return true;
  }

  WorkerPoll poll(int64_t Shard) override {
    WorkerPoll P;
    const AttemptPlan Plan = Live.at(Shard);
    const AttemptOutcome O = outcomeFor(Plan);
    if (O == AttemptOutcome::Hang)
      return P; // silent: not finished, no heartbeat
    if (O == SlowHeartbeat) {
      P.HeartbeatSeen = true; // alive but never done: only a deadline helps
      return P;
    }
    P.Finished = true;
    P.HeartbeatSeen = true;
    P.Outcome = O;
    if (O == AttemptOutcome::Ok) {
      P.Result.Shard = Shard;
      P.Result.Rung = static_cast<int64_t>(Plan.Rung);
      for (int64_t I = 0; I < NumSpecs; ++I) {
        ShardSpecBounds SB;
        SB.Lower = 0.1;
        SB.Upper = 0.2;
        P.Result.Specs.push_back(SB);
      }
    }
    Live.erase(Shard);
    return P;
  }

  void kill(int64_t Shard) override {
    ++Kills;
    Live.erase(Shard);
  }

private:
  std::map<int64_t, AttemptPlan> Live;
};

/// Policy driven by a fake clock: Sleep advances it, nothing waits.
ShardPolicy fakeClockPolicy(int64_t NumShards, int64_t MaxRetries,
                            double *Clock) {
  ShardPolicy P = testPolicy(NumShards, MaxRetries);
  P.PollIntervalSeconds = 0.01;
  P.HeartbeatTimeoutSeconds = 0.1;
  P.Clock = [Clock] { return *Clock; };
  P.Sleep = [Clock](double S) { *Clock += S; };
  return P;
}

TEST(ShardSupervisor, CrashedWorkerIsRetriedAndRunIsDegraded) {
  double Clock = 0.0;
  ShardPolicy Policy = fakeClockPolicy(2, 3, &Clock);
  ScriptedLauncher Launcher;
  Launcher.Script[{1, 0}] = AttemptOutcome::Crash; // shard 1's first try dies
  ShardSupervisor Supervisor(Policy, Launcher, /*Fallback=*/{});
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_EQ(Summary.Crashes, 1);
  EXPECT_EQ(Summary.Restarts, 1);
  EXPECT_EQ(Summary.Fallbacks, 0);
  EXPECT_TRUE(Summary.Degraded); // a restart is never a clean run
  ASSERT_EQ(Summary.Results.size(), 2u);
  EXPECT_EQ(Summary.Results[1].Attempt, 1);
  ASSERT_EQ(Summary.Results[1].Specs.size(), 1u);

  const MergedCertificate Merged = mergeShardResults(Summary.Results, 1);
  ASSERT_EQ(Merged.Specs.size(), 1u);
  EXPECT_NEAR(Merged.Specs[0].Lower, 0.2, 1e-12); // 0.1 + 0.1
  EXPECT_NEAR(Merged.Specs[0].Upper, 0.4, 1e-12);
}

TEST(ShardSupervisor, SilentWorkerIsKilledByHeartbeatTimeout) {
  double Clock = 0.0;
  ShardPolicy Policy = fakeClockPolicy(1, 3, &Clock);
  ScriptedLauncher Launcher;
  Launcher.Script[{0, 0}] = AttemptOutcome::Hang;
  ShardSupervisor Supervisor(Policy, Launcher, /*Fallback=*/{});
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_EQ(Summary.HeartbeatMisses, 1);
  EXPECT_EQ(Summary.Hangs, 1);
  EXPECT_EQ(Launcher.Kills, 1);
  EXPECT_EQ(Summary.Restarts, 1);
  EXPECT_TRUE(Summary.Degraded);
  ASSERT_EQ(Summary.Results.size(), 1u);
  EXPECT_EQ(Summary.Results[0].Attempt, 1); // the retry succeeded
}

TEST(ShardSupervisor, HeartbeatingButStuckWorkerIsKilledByDeadline) {
  double Clock = 0.0;
  ShardPolicy Policy = fakeClockPolicy(1, 3, &Clock);
  Policy.HeartbeatTimeoutSeconds = 100.0; // heartbeats alone won't save us
  Policy.ShardDeadlineSeconds = 0.5;
  ScriptedLauncher Launcher;
  Launcher.Script[{0, 0}] = ScriptedLauncher::SlowHeartbeat;
  ShardSupervisor Supervisor(Policy, Launcher, /*Fallback=*/{});
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_EQ(Summary.HeartbeatMisses, 0); // it was beating; the clock ran out
  EXPECT_EQ(Summary.Hangs, 1);
  EXPECT_EQ(Launcher.Kills, 1);
  EXPECT_EQ(Summary.Restarts, 1);
  EXPECT_TRUE(Summary.Degraded);
}

TEST(ShardSupervisor, ExhaustedShardUsesFallbackBound) {
  double Clock = 0.0;
  ShardPolicy Policy = fakeClockPolicy(1, 1, &Clock);
  ScriptedLauncher Launcher;
  Launcher.Script[{0, 0}] = AttemptOutcome::Crash;
  Launcher.Script[{0, 1}] = AttemptOutcome::OomKill;
  const auto Fallback = [](int64_t Shard) {
    ShardResult R;
    R.Shard = Shard;
    ShardSpecBounds SB;
    SB.Lower = 0.0;
    SB.Upper = 0.25; // the interval-box bound for this shard's mass
    SB.Degraded = true;
    R.Specs.push_back(SB);
    return R;
  };
  ShardSupervisor Supervisor(Policy, Launcher, Fallback);
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_EQ(Summary.Crashes, 1);
  EXPECT_EQ(Summary.OomKills, 1);
  EXPECT_EQ(Summary.Fallbacks, 1);
  EXPECT_TRUE(Summary.Degraded);
  ASSERT_EQ(Summary.Results.size(), 1u);
  EXPECT_TRUE(Summary.Results[0].FromFallback);
  EXPECT_EQ(Summary.Results[0].Rung,
            static_cast<int64_t>(ShardRung::IntervalBox));

  const MergedCertificate Merged = mergeShardResults(Summary.Results, 1);
  EXPECT_TRUE(Merged.Degraded);
  EXPECT_DOUBLE_EQ(Merged.Specs[0].Lower, 0.0);
  EXPECT_DOUBLE_EQ(Merged.Specs[0].Upper, 0.25);
}

TEST(ShardSupervisor, AdmissionRejectEscalatesWithoutSpawning) {
  double Clock = 0.0;
  ShardPolicy Policy = fakeClockPolicy(1, 3, &Clock);
  ScriptedLauncher Launcher;
  const auto Admit = [](const AttemptPlan &Plan) {
    return Plan.Rung != ShardRung::Configured; // configured launches doomed
  };
  ShardSupervisor Supervisor(Policy, Launcher, /*Fallback=*/{}, Admit);
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_EQ(Summary.AdmissionRejects, 1);
  EXPECT_TRUE(Summary.Degraded);
  ASSERT_EQ(Launcher.Launches.size(), 1u); // one real spawn, zero doomed ones
  EXPECT_EQ(Launcher.Launches[0].Rung, ShardRung::Resilient);
  EXPECT_EQ(Launcher.Launches[0].Attempt, 0); // no attempt was consumed
}

TEST(ShardMerge, MissingSpecSlotsAreConservative) {
  std::vector<ShardResult> Results(2);
  Results[0].Shard = 0;
  ShardSpecBounds SB;
  SB.Lower = 0.3;
  SB.Upper = 0.4;
  Results[0].Specs.push_back(SB);
  Results[1].Shard = 1; // reported no spec bounds at all
  const MergedCertificate Merged = mergeShardResults(Results, 1);
  ASSERT_EQ(Merged.Specs.size(), 1u);
  // The silent shard's mass is fully unknown: lower gains nothing, upper
  // gains everything (clamped), and the certificate is degraded.
  EXPECT_NEAR(Merged.Specs[0].Lower, 0.3, 1e-12);
  EXPECT_NEAR(Merged.Specs[0].Upper, 1.0, 1e-12);
  EXPECT_TRUE(Merged.Degraded);
}

// ---------------------------------------------------------------------------
// End-to-end: real propagation through the in-process launcher.
// ---------------------------------------------------------------------------

struct ShardFixture {
  Rng R{2021};
  Sequential Net;
  std::vector<const Layer *> Pipeline;
  Shape InputShape{std::vector<int64_t>{1, 4}};
  Tensor Start, End;
  std::vector<OutputSpec> Specs;
  GenProveConfig Config;

  ShardFixture() {
    Net = makeRandomMlp(R, {4, 10, 8, 3});
    Pipeline = Net.view();
    Start = Tensor::randn({1, 4}, R);
    End = Tensor::randn({1, 4}, R);
    Specs.push_back(OutputSpec::argmaxWins(0, 3));
    Specs.push_back(OutputSpec::argmaxWins(1, 3));
    Config.NodeThreshold = 60;
  }

  ShardWorkContext context(int64_t NumShards) const {
    ShardWorkContext Ctx;
    Ctx.Pipeline = Pipeline;
    Ctx.InputShape = InputShape;
    Ctx.Start = Start;
    Ctx.End = End;
    Ctx.Specs = Specs;
    Ctx.Config = Config;
    Ctx.NumShards = NumShards;
    return Ctx;
  }

  std::vector<ProbBounds> singleProcessBounds() const {
    const GenProve GP(Config);
    const PropagatedState State =
        GP.propagateSegment(Pipeline, InputShape, Start, End);
    std::vector<ProbBounds> Out;
    for (const OutputSpec &Spec : Specs)
      Out.push_back(GP.boundsFor(State, Spec));
    return Out;
  }

  /// Fast real-time supervision policy for in-process workers.
  static ShardPolicy fastPolicy(int64_t NumShards, int64_t MaxRetries) {
    ShardPolicy P;
    P.NumShards = NumShards;
    P.MaxRetries = MaxRetries;
    P.PollIntervalSeconds = 0.001;
    P.BackoffInitialSeconds = 0.001;
    P.BackoffMaxSeconds = 0.01;
    P.HeartbeatTimeoutSeconds = 30.0; // real threads must never trip it
    return P;
  }
};

TEST(ShardDifferential, ShardCountsAgreeWithSingleProcess) {
  const ShardFixture F;
  const std::vector<ProbBounds> Base = F.singleProcessBounds();
  ASSERT_EQ(Base.size(), 2u);

  for (int64_t N : {1, 2, 4}) {
    const ShardWorkContext Ctx = F.context(N);
    InProcessShardLauncher Launcher(Ctx);
    ShardSupervisor Supervisor(ShardFixture::fastPolicy(N, 1), Launcher,
                               /*Fallback=*/{});
    const ShardRunSummary Summary = Supervisor.run();
    EXPECT_FALSE(Summary.Degraded) << "fault-free run must be clean, N=" << N;
    EXPECT_EQ(Summary.Restarts, 0);

    const MergedCertificate Merged =
        mergeShardResults(Summary.Results, static_cast<int64_t>(F.Specs.size()));
    EXPECT_FALSE(Merged.Degraded);
    ASSERT_EQ(Merged.Specs.size(), Base.size());
    for (size_t I = 0; I < Base.size(); ++I) {
      // Not bit-identical across N (sums re-associate at shard cuts), but
      // well within 1e-9 — and therefore the same verdict everywhere.
      EXPECT_NEAR(Merged.Specs[I].Lower, Base[I].Lower, 1e-9)
          << "spec " << I << ", N=" << N;
      EXPECT_NEAR(Merged.Specs[I].Upper, Base[I].Upper, 1e-9)
          << "spec " << I << ", N=" << N;
      // Deterministic collapse on the merged bounds matches the collapse
      // of the single-process bounds.
      const ProbBounds MergedDet = Merged.Specs[I].deterministic();
      const ProbBounds BaseDet = Base[I].deterministic();
      EXPECT_EQ(MergedDet.Lower >= 1.0, BaseDet.Lower >= 1.0);
      EXPECT_EQ(MergedDet.Upper <= 0.0, BaseDet.Upper <= 0.0);
    }
  }
}

TEST(ShardDifferential, InjectedCrashesKeepMergedBoundsSound) {
  const ShardFixture F;
  const std::vector<ProbBounds> Base = F.singleProcessBounds();

  const int64_t N = 4;
  const ShardWorkContext Ctx = F.context(N);
  // Shard 1's first attempt crashes; shard 2 crashes until its budget is
  // gone and must be bounded by the coordinator's interval-box fallback.
  const auto Hook = [](const AttemptPlan &Plan, AttemptOutcome &Outcome) {
    if (Plan.Shard == 1 && Plan.Attempt == 0) {
      Outcome = AttemptOutcome::Crash;
      return true;
    }
    if (Plan.Shard == 2) {
      Outcome = Plan.Attempt == 0 ? AttemptOutcome::OomKill
                                  : AttemptOutcome::Crash;
      return true;
    }
    return false;
  };
  InProcessShardLauncher Launcher(Ctx, Hook);
  const auto Fallback = [&Ctx](int64_t Shard) {
    AttemptPlan Plan;
    Plan.Shard = Shard;
    Plan.Rung = ShardRung::IntervalBox;
    return runShardAttempt(Ctx, Plan);
  };
  ShardSupervisor Supervisor(ShardFixture::fastPolicy(N, 1), Launcher,
                             Fallback);
  const ShardRunSummary Summary = Supervisor.run();

  EXPECT_GE(Summary.Crashes + Summary.OomKills, 3);
  EXPECT_EQ(Summary.Restarts, 2); // shard 1 retried once, shard 2 once
  EXPECT_EQ(Summary.Fallbacks, 1);
  EXPECT_TRUE(Summary.Degraded);

  const MergedCertificate Merged =
      mergeShardResults(Summary.Results, static_cast<int64_t>(F.Specs.size()));
  EXPECT_TRUE(Merged.Degraded);
  ASSERT_EQ(Merged.Specs.size(), Base.size());
  // The oracle: a degraded merged interval must contain the exact one.
  for (size_t I = 0; I < Base.size(); ++I)
    expectContains(Merged.Specs[I], Base[I]);
}

TEST(ShardAttempt, IntervalBoxRungIsDegradedButSound) {
  const ShardFixture F;
  const std::vector<ProbBounds> Base = F.singleProcessBounds();

  AttemptPlan Plan;
  Plan.Rung = ShardRung::IntervalBox;
  const ShardResult R = runShardAttempt(F.context(1), Plan);
  EXPECT_TRUE(R.Degraded);
  EXPECT_FALSE(R.OutOfMemory);
  ASSERT_EQ(R.Specs.size(), Base.size());
  for (size_t I = 0; I < Base.size(); ++I) {
    ProbBounds Pb;
    Pb.Lower = R.Specs[I].Lower;
    Pb.Upper = R.Specs[I].Upper;
    expectContains(Pb, Base[I]);
  }
}

TEST(ShardAttempt, StartAtFullBoxSurvivesATinyBudget) {
  const ShardFixture F;
  ShardWorkContext Ctx = F.context(1);
  Ctx.Config.MemoryBudgetBytes = 64; // cannot even hold the input state
  AttemptPlan Plan;
  Plan.Rung = ShardRung::IntervalBox;
  const ShardResult R = runShardAttempt(Ctx, Plan);
  // The interval-box rung is budget-exempt: it must complete (degraded),
  // never OOM — that is what makes the retry ladder terminate.
  EXPECT_FALSE(R.OutOfMemory);
  EXPECT_TRUE(R.Degraded);
  ASSERT_EQ(R.Specs.size(), F.Specs.size());
  for (const ShardSpecBounds &SB : R.Specs) {
    EXPECT_GE(SB.Lower, 0.0);
    EXPECT_LE(SB.Upper, 1.0);
    EXPECT_LE(SB.Lower, SB.Upper + 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Satellite: DeviceMemoryModel charge-failure visibility.
// ---------------------------------------------------------------------------

TEST(MemoryModelMetrics, ChargeFailuresAndPeakRatioAreExported) {
  setMetricsEnabled(true);
  MetricsRegistry &Reg = MetricsRegistry::global();
  const int64_t TryFails0 = Reg.counter("device.try_charge_failures").value();
  const int64_t Fails0 = Reg.counter("device.charge_failures").value();

  DeviceMemoryModel Memory(1024);
  EXPECT_TRUE(Memory.tryChargeState(16, 4)); // 512 of 1024 bytes
  EXPECT_FALSE(Memory.tryChargeState(64, 4)); // rejected: over budget
  EXPECT_EQ(Reg.counter("device.try_charge_failures").value(), TryFails0 + 1);
  EXPECT_EQ(Reg.counter("device.charge_failures").value(), Fails0);

  EXPECT_FALSE(Memory.chargeState(64, 4)); // the saturating charge fails too
  EXPECT_EQ(Reg.counter("device.charge_failures").value(), Fails0 + 1);

  // The high-water gauge saw at least the successful 512/1024 residency.
  EXPECT_GE(Reg.gauge("device.peak_budget_ratio").value(), 0.5);
  setMetricsEnabled(false);
}

} // namespace
} // namespace genprove
