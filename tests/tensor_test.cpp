//===- tests/tensor_test.cpp - tensor and kernel unit tests -----*- C++ -*-===//

#include "src/tensor/ops.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(Shape, BasicProperties) {
  Shape S({2, 3, 4});
  EXPECT_EQ(S.rank(), 3u);
  EXPECT_EQ(S.numel(), 24);
  EXPECT_EQ(S.dim(0), 2);
  EXPECT_EQ(S.dim(-1), 4);
  EXPECT_EQ(S.toString(), "[2, 3, 4]");
  EXPECT_EQ(S, Shape({2, 3, 4}));
  EXPECT_NE(S, Shape({2, 3, 5}));
}

TEST(Tensor, ConstructionAndFill) {
  Tensor T({2, 3});
  EXPECT_EQ(T.numel(), 6);
  for (int64_t I = 0; I < 6; ++I)
    EXPECT_DOUBLE_EQ(T[I], 0.0);
  T.fill(2.5);
  EXPECT_DOUBLE_EQ(T.at(1, 2), 2.5);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor T({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor R = T.reshaped({3, 2});
  EXPECT_DOUBLE_EQ(R.at(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(R.at(0, 1), 2.0);
}

TEST(Tensor, AxpyAndScale) {
  Tensor A({1, 3}, {1, 2, 3});
  Tensor B({1, 3}, {10, 20, 30});
  A.axpy(0.5, B);
  EXPECT_DOUBLE_EQ(A[0], 6.0);
  A.scaleInPlace(2.0);
  EXPECT_DOUBLE_EQ(A[0], 12.0);
}

TEST(Matmul, MatchesNaive) {
  Rng R(3);
  Tensor A = Tensor::randn({5, 7}, R);
  Tensor B = Tensor::randn({7, 4}, R);
  Tensor C = matmul(A, B);
  for (int64_t I = 0; I < 5; ++I)
    for (int64_t J = 0; J < 4; ++J) {
      double Acc = 0.0;
      for (int64_t K = 0; K < 7; ++K)
        Acc += A.at(I, K) * B.at(K, J);
      EXPECT_NEAR(C.at(I, J), Acc, 1e-12);
    }
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng R(5);
  Tensor A = Tensor::randn({6, 3}, R);
  Tensor B = Tensor::randn({6, 4}, R);
  // A^T B via matmulTransA should equal manual transpose + matmul.
  Tensor At({3, 6});
  for (int64_t I = 0; I < 6; ++I)
    for (int64_t J = 0; J < 3; ++J)
      At.at(J, I) = A.at(I, J);
  const Tensor Ref = matmul(At, B);
  const Tensor Got = matmulTransA(A, B);
  for (int64_t I = 0; I < Ref.numel(); ++I)
    EXPECT_NEAR(Got[I], Ref[I], 1e-12);

  // A B^T via matmulTransB.
  Tensor C = Tensor::randn({5, 3}, R);
  Tensor D = Tensor::randn({2, 3}, R);
  Tensor Dt({3, 2});
  for (int64_t I = 0; I < 2; ++I)
    for (int64_t J = 0; J < 3; ++J)
      Dt.at(J, I) = D.at(I, J);
  const Tensor Ref2 = matmul(C, Dt);
  const Tensor Got2 = matmulTransB(C, D);
  for (int64_t I = 0; I < Ref2.numel(); ++I)
    EXPECT_NEAR(Got2[I], Ref2[I], 1e-12);
}

/// Direct convolution reference.
Tensor convNaive(const Tensor &In, const Tensor &W, const Tensor &B,
                 const ConvGeometry &G) {
  const int64_t N = In.dim(0), C = In.dim(1), H = In.dim(2), Wd = In.dim(3);
  const auto [OH, OW] = G.convOutput(H, Wd);
  Tensor Out({N, G.OutChannels, OH, OW});
  for (int64_t S = 0; S < N; ++S)
    for (int64_t Oc = 0; Oc < G.OutChannels; ++Oc)
      for (int64_t Oh = 0; Oh < OH; ++Oh)
        for (int64_t Ow = 0; Ow < OW; ++Ow) {
          double Acc = B.numel() ? B[Oc] : 0.0;
          for (int64_t Ic = 0; Ic < C; ++Ic)
            for (int64_t Kh = 0; Kh < G.KernelH; ++Kh)
              for (int64_t Kw = 0; Kw < G.KernelW; ++Kw) {
                const int64_t Ih = Oh * G.Stride - G.Padding + Kh;
                const int64_t Iw = Ow * G.Stride - G.Padding + Kw;
                if (Ih < 0 || Ih >= H || Iw < 0 || Iw >= Wd)
                  continue;
                Acc += In.at(S, Ic, Ih, Iw) *
                       W.at(Oc, Ic, Kh, Kw);
              }
          Out.at(S, Oc, Oh, Ow) = Acc;
        }
  return Out;
}

struct ConvCase {
  int64_t InC, OutC, K, S, P, Size;
};

class ConvParamTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvParamTest, Im2colMatchesNaive) {
  const ConvCase CC = GetParam();
  Rng R(9);
  ConvGeometry G;
  G.InChannels = CC.InC;
  G.OutChannels = CC.OutC;
  G.KernelH = G.KernelW = CC.K;
  G.Stride = CC.S;
  G.Padding = CC.P;
  Tensor In = Tensor::randn({2, CC.InC, CC.Size, CC.Size}, R);
  Tensor W = Tensor::randn({CC.OutC, CC.InC, CC.K, CC.K}, R);
  Tensor B = Tensor::randn({CC.OutC}, R);
  const Tensor Fast = conv2d(In, W, B, G);
  const Tensor Ref = convNaive(In, W, B, G);
  ASSERT_EQ(Fast.shape(), Ref.shape());
  for (int64_t I = 0; I < Fast.numel(); ++I)
    EXPECT_NEAR(Fast[I], Ref[I], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvParamTest,
    ::testing::Values(ConvCase{1, 4, 3, 1, 1, 8}, ConvCase{3, 16, 4, 2, 1, 16},
                      ConvCase{2, 3, 4, 1, 1, 7}, ConvCase{4, 8, 3, 2, 1, 9},
                      ConvCase{1, 1, 1, 1, 0, 5}));

TEST(Conv, AbsVariantUsesAbsoluteWeights) {
  Rng R(15);
  ConvGeometry G;
  G.InChannels = 2;
  G.OutChannels = 3;
  G.KernelH = G.KernelW = 3;
  G.Stride = 1;
  G.Padding = 1;
  Tensor In = Tensor::rand({1, 2, 6, 6}, R, 0.0, 1.0); // nonnegative radius
  Tensor W = Tensor::randn({3, 2, 3, 3}, R);
  Tensor Wabs = W.clone();
  for (int64_t I = 0; I < Wabs.numel(); ++I)
    Wabs[I] = std::fabs(Wabs[I]);
  const Tensor A = conv2dAbs(In, W, G);
  const Tensor Ref = conv2d(In, Wabs, Tensor(), G);
  for (int64_t I = 0; I < A.numel(); ++I)
    EXPECT_NEAR(A[I], Ref[I], 1e-10);
}

TEST(ConvTranspose, InvertsConvGeometry) {
  ConvGeometry G;
  G.InChannels = 4;
  G.OutChannels = 2;
  G.KernelH = G.KernelW = 3;
  G.Stride = 2;
  G.Padding = 1;
  G.OutputPadding = 1;
  const auto [OH, OW] = G.convTransposeOutput(8, 8);
  EXPECT_EQ(OH, 16);
  EXPECT_EQ(OW, 16);
}

TEST(ConvTranspose, MatchesAdjointOfConv) {
  // convT with weight W equals the adjoint of conv: <conv(x), y> =
  // <x, convT(y)> when geometries correspond and padding matches.
  Rng R(21);
  ConvGeometry G;
  G.InChannels = 3; // conv input channels
  G.OutChannels = 5;
  G.KernelH = G.KernelW = 3;
  G.Stride = 2;
  G.Padding = 1;
  Tensor X = Tensor::randn({1, 3, 8, 8}, R);
  Tensor W = Tensor::randn({5, 3, 3, 3}, R);
  const Tensor Cx = conv2d(X, W, Tensor(), G); // [1, 5, 4, 4]
  Tensor Y = Tensor::randn(Cx.shape(), R);

  ConvGeometry Gt;
  Gt.InChannels = 5;
  Gt.OutChannels = 3;
  Gt.KernelH = Gt.KernelW = 3;
  Gt.Stride = 2;
  Gt.Padding = 1;
  Gt.OutputPadding = 1; // to reach 8 from 4
  // Transposed-conv weight layout is [IC, OC, KH, KW] = [5, 3, 3, 3]; the
  // adjoint of conv(W) has the same entries with in/out swapped.
  Tensor Wt({5, 3, 3, 3});
  for (int64_t Oc = 0; Oc < 5; ++Oc)
    for (int64_t Ic = 0; Ic < 3; ++Ic)
      for (int64_t Kh = 0; Kh < 3; ++Kh)
        for (int64_t Kw = 0; Kw < 3; ++Kw)
          Wt.at(Oc, Ic, Kh, Kw) = W.at(Oc, Ic, Kh, Kw);
  const Tensor Ty = convTranspose2d(Y, Wt, Tensor(), Gt); // [1, 3, 8, 8]

  double Lhs = 0.0, Rhs = 0.0;
  for (int64_t I = 0; I < Cx.numel(); ++I)
    Lhs += Cx[I] * Y[I];
  for (int64_t I = 0; I < X.numel(); ++I)
    Rhs += X[I] * Ty[I];
  EXPECT_NEAR(Lhs, Rhs, 1e-9);
}

TEST(Relu, ClampsNegatives) {
  Tensor T({1, 4}, {-1.0, 0.0, 2.0, -0.5});
  const Tensor Out = relu(T);
  EXPECT_DOUBLE_EQ(Out[0], 0.0);
  EXPECT_DOUBLE_EQ(Out[2], 2.0);
  const Tensor Mask = reluMask(T);
  EXPECT_DOUBLE_EQ(Mask[0], 0.0);
  EXPECT_DOUBLE_EQ(Mask[1], 0.0);
  EXPECT_DOUBLE_EQ(Mask[2], 1.0);
}

TEST(ArgmaxSoftmax, RowWise) {
  Tensor L({2, 3}, {0.1, 2.0, -1.0, 5.0, 1.0, 4.0});
  const auto Arg = argmaxRows(L);
  EXPECT_EQ(Arg[0], 1);
  EXPECT_EQ(Arg[1], 0);
  const Tensor P = softmaxRows(L);
  double Row0 = P.at(0, 0) + P.at(0, 1) + P.at(0, 2);
  EXPECT_NEAR(Row0, 1.0, 1e-12);
  EXPECT_GT(P.at(0, 1), P.at(0, 0));
}

} // namespace
} // namespace genprove
