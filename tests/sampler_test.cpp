//===- tests/sampler_test.cpp - sampling baseline ---------------*- C++ -*-===//

#include "src/nn/activations.h"
#include "src/nn/linear.h"
#include "src/sampling/sampler.h"
#include "src/util/rng.h"

#include <gtest/gtest.h>

namespace genprove {
namespace {

/// Pipeline where the spec holds exactly for t < 0.3.
Sequential makeThresholdNet(double Threshold) {
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {-1.0});
  L->bias() = Tensor({1}, {Threshold});
  Net.add(std::move(L));
  return Net;
}

TEST(Sampler, IntervalContainsTrueProbability) {
  Sequential Net = makeThresholdNet(0.3);
  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  Rng R(5);
  const SamplingResult Result = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Uniform,
      20000, 1e-5, R);
  EXPECT_LE(Result.Lower, 0.3);
  EXPECT_GE(Result.Upper, 0.3);
  EXPECT_LT(Result.width(), 0.05);
}

TEST(Sampler, ArcsineDistributionChangesEstimate) {
  Sequential Net = makeThresholdNet(0.25);
  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  Rng R(6);
  const SamplingResult Result = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Arcsine,
      20000, 1e-5, R);
  // Arcsine CDF at 0.25 is 1/3.
  EXPECT_LE(Result.Lower, 1.0 / 3.0);
  EXPECT_GE(Result.Upper, 1.0 / 3.0);
  EXPECT_GT(Result.Lower, 0.25); // clearly distinguishable from uniform
}

TEST(Sampler, MoreSamplesTightenTheInterval) {
  Sequential Net = makeThresholdNet(0.5);
  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  Rng R(7);
  const SamplingResult Small = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Uniform,
      500, 1e-5, R);
  const SamplingResult Large = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Uniform,
      20000, 1e-5, R);
  EXPECT_LT(Large.width(), Small.width());
}

TEST(Sampler, DeterministicGivenSeed) {
  Sequential Net = makeThresholdNet(0.4);
  Tensor E1({1, 1}, {0.0});
  Tensor E2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  Rng R1(9), R2(9);
  const SamplingResult A = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Uniform,
      2000, 1e-5, R1);
  const SamplingResult B = sampleSegmentBounds(
      Net.view(), Shape({1, 1}), E1, E2, Spec, ParamDistribution::Uniform,
      2000, 1e-5, R2);
  EXPECT_EQ(A.Satisfied, B.Satisfied);
  EXPECT_DOUBLE_EQ(A.Lower, B.Lower);
}

TEST(Sampler, QuadraticCurveSampling) {
  // Spec component (t - 0.25)(t - 0.75) > 0: true mass 0.5.
  Sequential Net;
  auto L = std::make_unique<Linear>(1, 1);
  L->weight() = Tensor({1, 1}, {1.0});
  L->bias() = Tensor({1}, {0.0});
  Net.add(std::move(L));
  Tensor A0({1, 1}, {0.1875});
  Tensor A1({1, 1}, {-1.0});
  Tensor A2({1, 1}, {1.0});
  const OutputSpec Spec = OutputSpec::attributeSign(0, true, 1);
  Rng R(11);
  const SamplingResult Result = sampleQuadraticBounds(
      Net.view(), Shape({1, 1}), A0, A1, A2, Spec, ParamDistribution::Uniform,
      20000, 1e-5, R);
  EXPECT_LE(Result.Lower, 0.5);
  EXPECT_GE(Result.Upper, 0.5);
}

} // namespace
} // namespace genprove
