//===- tests/data_test.cpp - synthetic dataset generators -------*- C++ -*-===//

#include "src/data/synth_digits.h"
#include "src/data/synth_faces.h"
#include "src/data/synth_shoes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace genprove {
namespace {

TEST(SynthFaces, ShapesAndRanges) {
  const Dataset Set = makeSynthFaces(20, 16, 1);
  EXPECT_EQ(Set.numImages(), 20);
  EXPECT_EQ(Set.Channels, 3);
  EXPECT_EQ(Set.Size, 16);
  EXPECT_EQ(Set.numAttributes(), static_cast<int64_t>(NumFaceAttrs));
  EXPECT_EQ(Set.AttributeNames.size(), static_cast<size_t>(NumFaceAttrs));
  for (int64_t I = 0; I < Set.Images.numel(); ++I) {
    EXPECT_GE(Set.Images[I], 0.0);
    EXPECT_LE(Set.Images[I], 1.0);
  }
  for (int64_t I = 0; I < Set.Attributes.numel(); ++I)
    EXPECT_TRUE(Set.Attributes[I] == 0.0 || Set.Attributes[I] == 1.0);
}

TEST(SynthFaces, DeterministicPerSeed) {
  const Dataset A = makeSynthFaces(5, 16, 7);
  const Dataset B = makeSynthFaces(5, 16, 7);
  for (int64_t I = 0; I < A.Images.numel(); ++I)
    EXPECT_DOUBLE_EQ(A.Images[I], B.Images[I]);
}

TEST(SynthFaces, HairAttributesMutuallyExclusive) {
  const Dataset Set = makeSynthFaces(300, 16, 3);
  for (int64_t I = 0; I < Set.numImages(); ++I) {
    const bool Bald = Set.Attributes.at(I, FaceBald) > 0.5;
    const bool Blond = Set.Attributes.at(I, FaceBlondHair) > 0.5;
    const bool Brown = Set.Attributes.at(I, FaceBrownHair) > 0.5;
    EXPECT_FALSE(Blond && Brown);
    if (Bald) {
      EXPECT_FALSE(Blond);
      EXPECT_FALSE(Brown);
    }
  }
}

TEST(SynthFaces, AttributesAreVisuallyDetectable) {
  // Mean pixel difference between moustache and non-moustache images must
  // be clearly nonzero in the moustache row region.
  const Dataset Set = makeSynthFaces(400, 16, 5);
  double WithSum = 0.0, WithoutSum = 0.0;
  int64_t NumWith = 0, NumWithout = 0;
  for (int64_t I = 0; I < Set.numImages(); ++I) {
    // Average intensity of the whole image differs by hat/hair; use the
    // full difference as a weak but robust signal.
    double Mean = 0.0;
    const int64_t Numel = 3 * 16 * 16;
    for (int64_t J = 0; J < Numel; ++J)
      Mean += Set.Images[I * Numel + J];
    Mean /= static_cast<double>(Numel);
    if (Set.Attributes.at(I, FaceWearingHat) > 0.5) {
      WithSum += Mean;
      ++NumWith;
    } else {
      WithoutSum += Mean;
      ++NumWithout;
    }
  }
  ASSERT_GT(NumWith, 0);
  ASSERT_GT(NumWithout, 0);
  EXPECT_GT(std::fabs(WithSum / NumWith - WithoutSum / NumWithout), 1e-3);
}

TEST(Dataset, FlipReversesColumns) {
  const Dataset Set = makeSynthFaces(3, 16, 9);
  const Tensor Img = Set.image(1);
  const Tensor Flip = Set.flippedImage(1);
  for (int64_t C = 0; C < 3; ++C)
    for (int64_t Y = 0; Y < 16; ++Y)
      for (int64_t X = 0; X < 16; ++X)
        EXPECT_DOUBLE_EQ(Flip.at(0, C, Y, X), Img.at(0, C, Y, 15 - X));
}

TEST(SynthShoes, LabelsInRangeAndAllClassesPresent) {
  const Dataset Set = makeSynthShoes(500, 16, 2);
  EXPECT_EQ(Set.numClasses(), static_cast<int64_t>(NumShoeClasses));
  std::vector<int> Seen(NumShoeClasses, 0);
  for (int64_t Label : Set.Labels) {
    ASSERT_GE(Label, 0);
    ASSERT_LT(Label, static_cast<int64_t>(NumShoeClasses));
    Seen[static_cast<size_t>(Label)] = 1;
  }
  for (int C = 0; C < NumShoeClasses; ++C)
    EXPECT_TRUE(Seen[static_cast<size_t>(C)]) << "class " << C << " missing";
}

TEST(SynthShoes, ClassesAreVisuallyDistinct) {
  // Mean images of distinct classes differ substantially.
  const Dataset Set = makeSynthShoes(600, 16, 4);
  const int64_t Numel = 3 * 16 * 16;
  std::vector<std::vector<double>> Means(
      NumShoeClasses, std::vector<double>(static_cast<size_t>(Numel), 0.0));
  std::vector<int64_t> Counts(NumShoeClasses, 0);
  for (int64_t I = 0; I < Set.numImages(); ++I) {
    const auto C = static_cast<size_t>(Set.Labels[static_cast<size_t>(I)]);
    for (int64_t J = 0; J < Numel; ++J)
      Means[C][static_cast<size_t>(J)] += Set.Images[I * Numel + J];
    ++Counts[C];
  }
  for (size_t C = 0; C < NumShoeClasses; ++C)
    for (auto &V : Means[C])
      V /= static_cast<double>(std::max<int64_t>(Counts[C], 1));
  double Dist = 0.0;
  for (int64_t J = 0; J < Numel; ++J) {
    const double D = Means[ShoeBoot][static_cast<size_t>(J)] -
                     Means[ShoeFlipFlop][static_cast<size_t>(J)];
    Dist += D * D;
  }
  EXPECT_GT(std::sqrt(Dist), 1.0);
}

TEST(SynthDigits, ShapesAndDeterminism) {
  const Dataset A = makeSynthDigits(50, 16, 3);
  EXPECT_EQ(A.Channels, 1);
  EXPECT_EQ(A.numClasses(), 10);
  const Dataset B = makeSynthDigits(50, 16, 3);
  for (int64_t I = 0; I < A.Images.numel(); ++I)
    EXPECT_DOUBLE_EQ(A.Images[I], B.Images[I]);
}

TEST(SynthDigits, GlyphsHaveInk) {
  Rng R(5);
  for (int64_t Digit = 0; Digit < 10; ++Digit) {
    const Tensor Img = renderDigit(Digit, 16, R);
    double Ink = 0.0;
    for (int64_t I = 0; I < Img.numel(); ++I)
      Ink += Img[I];
    EXPECT_GT(Ink, 5.0) << "digit " << Digit;
  }
}

TEST(SynthDigits, DigitsDiffer) {
  Rng R(6);
  const Tensor One = renderDigit(1, 16, R);
  Rng R2(6);
  const Tensor Eight = renderDigit(8, 16, R2);
  double Dist = 0.0;
  for (int64_t I = 0; I < One.numel(); ++I) {
    const double D = One[I] - Eight[I];
    Dist += D * D;
  }
  EXPECT_GT(std::sqrt(Dist), 1.0);
}

} // namespace
} // namespace genprove
