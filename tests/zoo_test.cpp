//===- tests/zoo_test.cpp - model zoo caching -------------------*- C++ -*-===//

#include "src/core/model_zoo.h"
#include "src/util/timer.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace genprove {
namespace {

ZooConfig tinyConfig(const char *Dir) {
  ZooConfig Config;
  Config.ImgSize = 16;
  Config.Latent = 4;
  Config.TrainSize = 60;
  Config.TestSize = 20;
  Config.VaeEpochs = 1;
  Config.ClassifierEpochs = 1;
  Config.RobustEpochs = 1;
  Config.DiffAiEpochs = 1;
  Config.GenerativeEpochs = 1;
  Config.CacheDir = Dir;
  return Config;
}

TEST(ModelZoo, DatasetsAreDeterministicAndSplit) {
  ModelZoo Zoo(tinyConfig("/tmp/genprove_zoo_test_a"));
  const Dataset &Train = Zoo.train(DatasetId::Shoes);
  const Dataset &Test = Zoo.test(DatasetId::Shoes);
  EXPECT_EQ(Train.numImages(), 60);
  EXPECT_EQ(Test.numImages(), 20);
  // Train/test must differ (different seeds).
  bool Differ = false;
  for (int64_t I = 0; I < 100 && !Differ; ++I)
    if (Train.Images[I] != Test.Images[I])
      Differ = true;
  EXPECT_TRUE(Differ);
  std::filesystem::remove_all("/tmp/genprove_zoo_test_a");
}

TEST(ModelZoo, VaeIsCachedAcrossInstances) {
  const char *Dir = "/tmp/genprove_zoo_test_b";
  std::filesystem::remove_all(Dir);
  Tensor FirstEncoding;
  {
    ModelZoo Zoo(tinyConfig(Dir));
    Vae &Model = Zoo.vae(DatasetId::Digits);
    FirstEncoding = Model.encode(Zoo.train(DatasetId::Digits).image(0));
  }
  {
    // Second instance must load from disk and produce identical output.
    ModelZoo Zoo(tinyConfig(Dir));
    Timer Clock;
    Vae &Model = Zoo.vae(DatasetId::Digits);
    const Tensor Second =
        Model.encode(Zoo.train(DatasetId::Digits).image(0));
    EXPECT_LT(Clock.seconds(), 5.0); // loading, not training
    for (int64_t J = 0; J < FirstEncoding.numel(); ++J)
      EXPECT_DOUBLE_EQ(FirstEncoding[J], Second[J]);
  }
  std::filesystem::remove_all(Dir);
}

TEST(ModelZoo, ClassifierCachedAndAccurateEnough) {
  const char *Dir = "/tmp/genprove_zoo_test_c";
  std::filesystem::remove_all(Dir);
  ModelZoo Zoo(tinyConfig(Dir));
  Sequential &Net = Zoo.shoesClassifier("ConvSmall");
  const Dataset &Set = Zoo.train(DatasetId::Shoes);
  // One epoch on 60 images: not accurate, but better than chance.
  int64_t Correct = 0;
  for (int64_t I = 0; I < Set.numImages(); ++I) {
    const Tensor Logits = Net.predict(Set.image(I));
    int64_t Best = 0;
    for (int64_t J = 1; J < Logits.numel(); ++J)
      if (Logits[J] > Logits[Best])
        Best = J;
    Correct += Best == Set.Labels[static_cast<size_t>(I)];
  }
  EXPECT_GT(Correct, Set.numImages() / 10);
  std::filesystem::remove_all(Dir);
}

TEST(ModelZoo, DisplayNamesMarkSubstitutes) {
  EXPECT_STREQ(datasetDisplayName(DatasetId::Faces), "CelebA*");
  EXPECT_STREQ(datasetDisplayName(DatasetId::Shoes), "Zappos50k*");
  EXPECT_STREQ(datasetDisplayName(DatasetId::Digits), "MNIST*");
}

} // namespace
} // namespace genprove
