//===- nn/init.h - Weight initialization -----------------------*- C++ -*-===//

#ifndef GENPROVE_NN_INIT_H
#define GENPROVE_NN_INIT_H

#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// Kaiming-He (fan-in) normal initialization for all Linear / Conv2d /
/// ConvTranspose2d weights in the network; biases are zeroed.
void kaimingInit(Sequential &Network, Rng &Generator);

} // namespace genprove

#endif // GENPROVE_NN_INIT_H
