//===- nn/sequential.cpp --------------------------------------*- C++ -*-===//

#include "src/nn/sequential.h"

#include <sstream>

namespace genprove {

Sequential &Sequential::add(LayerPtr NewLayer) {
  Layers.push_back(std::move(NewLayer));
  return *this;
}

Tensor Sequential::forward(const Tensor &Input) {
  Tensor Activation = Input;
  for (auto &L : Layers)
    Activation = L->forward(Activation);
  return Activation;
}

Tensor Sequential::backward(const Tensor &GradOutput) {
  Tensor Grad = GradOutput;
  for (auto It = Layers.rbegin(); It != Layers.rend(); ++It)
    Grad = (*It)->backward(Grad);
  return Grad;
}

std::vector<Param> Sequential::params() {
  std::vector<Param> All;
  for (auto &L : Layers)
    for (auto &P : L->params())
      All.push_back(P);
  return All;
}

void Sequential::zeroGrads() {
  for (auto &P : params())
    P.Grad->zero();
}

std::vector<const Layer *> Sequential::view() const {
  std::vector<const Layer *> V;
  V.reserve(Layers.size());
  for (const auto &L : Layers)
    V.push_back(L.get());
  return V;
}

int64_t Sequential::countNeurons(const Shape &SampleShape) const {
  check(SampleShape.dim(0) == 1, "countNeurons expects batch size 1");
  Shape Current = SampleShape;
  int64_t Total = 0;
  for (const auto &L : Layers) {
    Current = L->outputShape(Current);
    // Count units produced by parameterized layers only; ReLU / reshaping
    // layers reuse the same activations (matches the paper's convention).
    switch (L->kind()) {
    case Layer::Kind::Linear:
    case Layer::Kind::Conv2d:
    case Layer::Kind::ConvTranspose2d:
      Total += Current.numel();
      break;
    default:
      break;
    }
  }
  return Total;
}

Shape Sequential::outputShape(const Shape &InputShape) const {
  Shape Current = InputShape;
  for (const auto &L : Layers)
    Current = L->outputShape(Current);
  return Current;
}

std::string Sequential::describe() const {
  std::ostringstream Out;
  for (size_t I = 0; I < Layers.size(); ++I)
    Out << "  [" << I << "] " << Layers[I]->describe() << '\n';
  return Out.str();
}

std::vector<const Layer *> concatViews(const std::vector<const Layer *> &A,
                                       const std::vector<const Layer *> &B) {
  std::vector<const Layer *> Out = A;
  Out.insert(Out.end(), B.begin(), B.end());
  return Out;
}

} // namespace genprove
