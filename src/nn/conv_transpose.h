//===- nn/conv_transpose.h - Transposed convolution layer ------*- C++ -*-===//

#ifndef GENPROVE_NN_CONV_TRANSPOSE_H
#define GENPROVE_NN_CONV_TRANSPOSE_H

#include "src/nn/abs_cache.h"
#include "src/nn/layer.h"
#include "src/tensor/ops.h"

namespace genprove {

/// Transposed 2-D convolution (a.k.a. fractionally strided convolution) as
/// used by the paper's decoders; weight layout [IC, OC, KH, KW].
class ConvTranspose2d : public Layer {
public:
  ConvTranspose2d(int64_t InChannels, int64_t OutChannels, int64_t Kernel,
                  int64_t Stride, int64_t Padding, int64_t OutputPadding);

  Tensor forward(const Tensor &Input) override;
  Tensor backward(const Tensor &GradOutput) override;
  Tensor applyAffine(const Tensor &Points) const override;
  Tensor applyLinear(const Tensor &Points) const override;
  void applyToBox(Tensor &Center, Tensor &Radius) const override;
  int64_t accumulationDepth() const override {
    // Each output pixel gathers at most InChannels * KH * KW scattered
    // contributions, plus the bias.
    return Geom.InChannels * Geom.KernelH * Geom.KernelW + 1;
  }
  std::vector<Param> params() override;
  Shape outputShape(const Shape &InputShape) const override;
  std::string describe() const override;
  uint64_t fingerprint() const override {
    return AbsCache.paramFingerprint(Layer::fingerprint(), {&Weight, &Bias});
  }

  const ConvGeometry &geometry() const { return Geom; }
  // Mutable parameter access invalidates the memoized |W| (see
  // nn/abs_cache.h for the contract).
  Tensor &weight() {
    AbsCache.invalidate();
    return Weight;
  }
  Tensor &bias() {
    AbsCache.invalidate();
    return Bias;
  }
  const Tensor &weight() const { return Weight; }
  const Tensor &bias() const { return Bias; }

private:
  ConvGeometry Geom;
  Tensor Weight;     // [IC, OC, KH, KW]
  Tensor Bias;       // [OC]
  Tensor GradWeight;
  Tensor GradBias;
  Tensor CachedInput;
  AbsWeightCache AbsCache;
};

} // namespace genprove

#endif // GENPROVE_NN_CONV_TRANSPOSE_H
