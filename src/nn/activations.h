//===- nn/activations.h - ReLU layer ---------------------------*- C++ -*-===//

#ifndef GENPROVE_NN_ACTIVATIONS_H
#define GENPROVE_NN_ACTIVATIONS_H

#include "src/nn/layer.h"

namespace genprove {

/// ReLU activation. The only nonlinearity in the paper's architectures;
/// abstract domains handle it symbolically (segment splitting, interval
/// clamping, zonotope relaxation), so the affine interface is unavailable.
class ReLU : public Layer {
public:
  ReLU() : Layer(Kind::ReLU) {}

  Tensor forward(const Tensor &Input) override;
  Tensor backward(const Tensor &GradOutput) override;
  Shape outputShape(const Shape &InputShape) const override {
    return InputShape;
  }
  std::string describe() const override { return "ReLU"; }

private:
  Tensor CachedMask;
};

} // namespace genprove

#endif // GENPROVE_NN_ACTIVATIONS_H
