//===- nn/serialize.h - Network (de)serialization --------------*- C++ -*-===//
///
/// \file
/// A tiny binary format for trained networks so the benchmark harnesses can
/// cache models under models/ and reload them deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_SERIALIZE_H
#define GENPROVE_NN_SERIALIZE_H

#include "src/nn/sequential.h"

#include <optional>
#include <string>

namespace genprove {

/// Write the architecture and all parameters to \p Path. Returns false on
/// I/O failure.
bool saveNetwork(const Sequential &Network, const std::string &Path);

/// Read a network previously written by saveNetwork. Returns nullopt on
/// missing file or format mismatch.
std::optional<Sequential> loadNetwork(const std::string &Path);

} // namespace genprove

#endif // GENPROVE_NN_SERIALIZE_H
