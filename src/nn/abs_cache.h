//===- nn/abs_cache.h - Cached absolute-weight tensor ----------*- C++ -*-===//
///
/// \file
/// Memoized elementwise |W| for interval (box) propagation. Every
/// applyToBox used to clone + fabs the weight tensor per call, which on
/// deep decoders re-did the same O(|W|) work thousands of times per
/// certification run; the cache builds |W| once and rebuilds only after
/// an invalidate().
///
/// Invalidation contract: the owning layer bumps the cache from every
/// path that can hand out mutable parameter access (the non-const
/// weight()/bias() accessors and params()). Training loops re-fetch
/// params() each step, so a stale |W| cannot survive into a subsequent
/// verification pass.
///
/// Thread safety: get() is safe for concurrent readers — parallel bench
/// grid cells share Layer objects — via a double-purpose mutex that also
/// serializes the one-time rebuild. Mutating weights while a
/// verification is in flight is not supported (that is a data race on
/// the weight tensor itself, independent of this cache).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_ABS_CACHE_H
#define GENPROVE_NN_ABS_CACHE_H

#include "src/tensor/tensor.h"
#include "src/util/hash.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <mutex>

namespace genprove {

class AbsWeightCache {
public:
  /// Mark the cached |W| stale; cheap, called from parameter accessors.
  void invalidate() { Version.fetch_add(1, std::memory_order_relaxed); }

  /// Explicit generation counter: advances on every invalidate(), so any
  /// derived artifact (the memoized |W|, a parameter fingerprint, a
  /// propagation-cache key) can detect that the weights were mutated
  /// since it was built. Never 0 — derived caches can use 0 as "never
  /// built".
  uint64_t generation() const {
    return Version.load(std::memory_order_acquire);
  }

  /// |W| for the given weight tensor, rebuilt only when stale. The
  /// reference stays valid until the next invalidate()+get() pair.
  const Tensor &get(const Tensor &W) const {
    std::lock_guard<std::mutex> Lock(Mu);
    // Snapshot the version before cloning: an invalidate() racing with
    // the rebuild leaves BuiltVersion behind, forcing the next get() to
    // rebuild again rather than serving a half-stale |W|.
    const uint64_t V = Version.load(std::memory_order_acquire);
    if (BuiltVersion != V) {
      Abs = W.clone();
      double *D = Abs.data();
      for (int64_t I = 0; I < Abs.numel(); ++I)
        D[I] = std::fabs(D[I]);
      BuiltVersion = V;
    }
    return Abs;
  }

  /// W^T ([In, Out] from the layer's [Out, In] weight), memoized under the
  /// same staleness contract as get(). The fused affine->ReLU kernels
  /// consume the transposed layout: with W^T the output dimension is the
  /// contiguous inner axis, so the per-output ascending-k accumulator
  /// chains vectorize across outputs (the [Out, In] dot-product form
  /// defeats the vectorizer under strict FP semantics).
  const Tensor &getTrans(const Tensor &W) const {
    std::lock_guard<std::mutex> Lock(Mu);
    const uint64_t V = Version.load(std::memory_order_acquire);
    if (TransVersion != V) {
      const int64_t N = W.dim(0), K = W.dim(1);
      Trans = Tensor({K, N});
      const double *Wd = W.data();
      double *Td = Trans.data();
      for (int64_t I = 0; I < N; ++I)
        for (int64_t J = 0; J < K; ++J)
          Td[J * N + I] = Wd[I * K + J];
      TransVersion = V;
    }
    return Trans;
  }

  /// Memoized FNV-1a fingerprint over the bit patterns of the given
  /// parameter tensors, seeded with \p Seed (the layer's structural
  /// hash). Rebuilt only when the generation has advanced — the same
  /// staleness contract as get(), so a weight mutation through any
  /// mutable accessor is guaranteed to change the fingerprint the
  /// propagation cache keys on.
  uint64_t paramFingerprint(uint64_t Seed,
                            std::initializer_list<const Tensor *> Ts) const {
    std::lock_guard<std::mutex> Lock(Mu);
    const uint64_t V = Version.load(std::memory_order_acquire);
    if (FpVersion != V || FpSeed != Seed) {
      uint64_t H = hashing::hashU64(hashing::FnvOffset, Seed);
      for (const Tensor *T : Ts) {
        H = hashing::hashU64(H, static_cast<uint64_t>(T->numel()));
        H = hashing::hashBytes(H, T->data(),
                               static_cast<size_t>(T->numel()) *
                                   sizeof(double));
      }
      Fp = H;
      FpVersion = V;
      FpSeed = Seed;
    }
    return Fp;
  }

private:
  std::atomic<uint64_t> Version{1};
  mutable std::mutex Mu;
  mutable Tensor Abs;
  mutable uint64_t BuiltVersion = 0;
  mutable Tensor Trans;
  mutable uint64_t TransVersion = 0;
  mutable uint64_t Fp = 0;
  mutable uint64_t FpVersion = 0;
  mutable uint64_t FpSeed = 0;
};

} // namespace genprove

#endif // GENPROVE_NN_ABS_CACHE_H
