//===- nn/abs_cache.h - Cached absolute-weight tensor ----------*- C++ -*-===//
///
/// \file
/// Memoized elementwise |W| for interval (box) propagation. Every
/// applyToBox used to clone + fabs the weight tensor per call, which on
/// deep decoders re-did the same O(|W|) work thousands of times per
/// certification run; the cache builds |W| once and rebuilds only after
/// an invalidate().
///
/// Invalidation contract: the owning layer bumps the cache from every
/// path that can hand out mutable parameter access (the non-const
/// weight()/bias() accessors and params()). Training loops re-fetch
/// params() each step, so a stale |W| cannot survive into a subsequent
/// verification pass.
///
/// Thread safety: get() is safe for concurrent readers — parallel bench
/// grid cells share Layer objects — via a double-purpose mutex that also
/// serializes the one-time rebuild. Mutating weights while a
/// verification is in flight is not supported (that is a data race on
/// the weight tensor itself, independent of this cache).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_ABS_CACHE_H
#define GENPROVE_NN_ABS_CACHE_H

#include "src/tensor/tensor.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>

namespace genprove {

class AbsWeightCache {
public:
  /// Mark the cached |W| stale; cheap, called from parameter accessors.
  void invalidate() { Version.fetch_add(1, std::memory_order_relaxed); }

  /// |W| for the given weight tensor, rebuilt only when stale. The
  /// reference stays valid until the next invalidate()+get() pair.
  const Tensor &get(const Tensor &W) const {
    std::lock_guard<std::mutex> Lock(Mu);
    // Snapshot the version before cloning: an invalidate() racing with
    // the rebuild leaves BuiltVersion behind, forcing the next get() to
    // rebuild again rather than serving a half-stale |W|.
    const uint64_t V = Version.load(std::memory_order_acquire);
    if (BuiltVersion != V) {
      Abs = W.clone();
      double *D = Abs.data();
      for (int64_t I = 0; I < Abs.numel(); ++I)
        D[I] = std::fabs(D[I]);
      BuiltVersion = V;
    }
    return Abs;
  }

private:
  std::atomic<uint64_t> Version{1};
  mutable std::mutex Mu;
  mutable Tensor Abs;
  mutable uint64_t BuiltVersion = 0;
};

} // namespace genprove

#endif // GENPROVE_NN_ABS_CACHE_H
