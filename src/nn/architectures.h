//===- nn/architectures.h - The paper's architecture zoo -------*- C++ -*-===//
///
/// \file
/// Builders for the Appendix B architectures, parameterized by image size
/// so the same families run at CPU-friendly resolutions (the reproduction
/// default is 16x16). Layer sequences mirror the paper:
///
///   EncoderSmall: Conv_2 16x4x4 - Conv_2 32x4x4 - FC 100 - FC out
///   Encoder:      Conv_1 32x3x3 - Conv_2 32x4x4 - Conv_1 64x3x3 -
///                 Conv_2 64x4x4 - FC 512 - FC 512 - FC out
///   Decoder:      FC 400 - FC (32*(S/2)^2) - ConvT_{2,1} 16x3x3 -
///                 ConvT_{1,0} Cx3x3
///   DecoderSmall: FC 200 - FC (32*(S/2)^2) - ConvT_{2,1} 8x3x3 -
///                 ConvT_{1,0} Cx3x3
///   ConvSmall:    Conv_2 16x4x4 - Conv_2 32x4x4 - FC 100 - FC out
///   ConvMed:      Conv_1 12x4x4 - Conv_2 16x4x4 - FC 500 - FC 200 -
///                 FC 100 - FC out
///   ConvLarge:    Conv_1 16x3x3 - Conv_2 16x4x4 - Conv_1 32x3x3 -
///                 Conv_2 32x4x4 - FC 200 - FC 100 - FC out
///   ConvBiggest:  Conv_1 16x3x3 - Conv_1 16x3x3 - Conv_2 32x3x3 -
///                 Conv_1 32x3x3 - Conv_1 32x3x3 - FC 200 - FC out
///                 (channel widths scaled from the paper's 64/128 for CPU;
///                 it stays the largest network in the zoo)
///
/// ReLU follows every layer except the output. VAE encoders emit 2*Latent
/// units (mean and log-variance).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_ARCHITECTURES_H
#define GENPROVE_NN_ARCHITECTURES_H

#include "src/nn/sequential.h"

namespace genprove {

/// EncoderSmall with OutDim output units (use 2*latent for a VAE encoder,
/// 1 for a GAN discriminator).
Sequential makeEncoderSmall(int64_t ImgChannels, int64_t ImgSize,
                            int64_t OutDim);

/// The large CelebA encoder.
Sequential makeEncoder(int64_t ImgChannels, int64_t ImgSize, int64_t OutDim);

/// The standard decoder/generator (74k neurons at 64x64 in the paper).
Sequential makeDecoder(int64_t Latent, int64_t ImgChannels, int64_t ImgSize);

/// The small decoder used for GenProveCurve experiments.
Sequential makeDecoderSmall(int64_t Latent, int64_t ImgChannels,
                            int64_t ImgSize);

/// Classifiers / attribute detectors of increasing size.
Sequential makeConvSmall(int64_t ImgChannels, int64_t ImgSize, int64_t NumOut);
Sequential makeConvMed(int64_t ImgChannels, int64_t ImgSize, int64_t NumOut);
Sequential makeConvLarge(int64_t ImgChannels, int64_t ImgSize, int64_t NumOut);
Sequential makeConvBiggest(int64_t ImgChannels, int64_t ImgSize,
                           int64_t NumOut);

/// Plain MLP with ReLU between layers (FactorVAE critic etc.).
/// Dims = {in, hidden..., out}.
Sequential makeMlp(const std::vector<int64_t> &Dims);

/// Build one of the classifier architectures by name
/// ("ConvSmall" | "ConvMed" | "ConvLarge" | "ConvBiggest").
Sequential makeClassifier(const std::string &Name, int64_t ImgChannels,
                          int64_t ImgSize, int64_t NumOut);

} // namespace genprove

#endif // GENPROVE_NN_ARCHITECTURES_H
