//===- nn/activations.cpp -------------------------------------*- C++ -*-===//

#include "src/nn/activations.h"

#include "src/tensor/ops.h"

namespace genprove {

Tensor ReLU::forward(const Tensor &Input) {
  CachedMask = reluMask(Input);
  return relu(Input);
}

Tensor ReLU::backward(const Tensor &GradOutput) {
  Tensor Grad = GradOutput.clone();
  for (int64_t I = 0; I < Grad.numel(); ++I)
    Grad[I] *= CachedMask[I];
  return Grad;
}

} // namespace genprove
