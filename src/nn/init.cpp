//===- nn/init.cpp --------------------------------------------*- C++ -*-===//

#include "src/nn/init.h"

#include "src/nn/conv.h"
#include "src/nn/conv_transpose.h"
#include "src/nn/linear.h"

#include <cmath>

namespace genprove {

void kaimingInit(Sequential &Network, Rng &Generator) {
  for (size_t I = 0; I < Network.size(); ++I) {
    Layer &L = Network.layer(I);
    switch (L.kind()) {
    case Layer::Kind::Linear: {
      auto &Lin = static_cast<Linear &>(L);
      const double Std = std::sqrt(2.0 / static_cast<double>(Lin.inFeatures()));
      for (int64_t J = 0; J < Lin.weight().numel(); ++J)
        Lin.weight()[J] = Generator.normal(0.0, Std);
      Lin.bias().zero();
      break;
    }
    case Layer::Kind::Conv2d: {
      auto &Conv = static_cast<Conv2d &>(L);
      const auto &G = Conv.geometry();
      const double FanIn =
          static_cast<double>(G.InChannels * G.KernelH * G.KernelW);
      const double Std = std::sqrt(2.0 / FanIn);
      for (int64_t J = 0; J < Conv.weight().numel(); ++J)
        Conv.weight()[J] = Generator.normal(0.0, Std);
      Conv.bias().zero();
      break;
    }
    case Layer::Kind::ConvTranspose2d: {
      auto &Conv = static_cast<ConvTranspose2d &>(L);
      const auto &G = Conv.geometry();
      // Fan-in of a transposed conv is InChannels * k^2 / stride^2 on
      // average; the simple InChannels*k^2 form is fine at this scale.
      const double FanIn =
          static_cast<double>(G.InChannels * G.KernelH * G.KernelW);
      const double Std = std::sqrt(2.0 / FanIn);
      for (int64_t J = 0; J < Conv.weight().numel(); ++J)
        Conv.weight()[J] = Generator.normal(0.0, Std);
      Conv.bias().zero();
      break;
    }
    default:
      break;
    }
  }
}

} // namespace genprove
