//===- nn/reshape.cpp -----------------------------------------*- C++ -*-===//

#include "src/nn/reshape.h"

#include <sstream>

namespace genprove {

Tensor Flatten::forward(const Tensor &Input) {
  CachedInputShape = Input.shape();
  return applyAffine(Input);
}

Tensor Flatten::backward(const Tensor &GradOutput) {
  return GradOutput.reshaped(CachedInputShape);
}

Tensor Flatten::applyAffine(const Tensor &Points) const {
  const int64_t B = Points.dim(0);
  return Points.reshaped({B, Points.numel() / B});
}

Tensor Flatten::applyLinear(const Tensor &Points) const {
  return applyAffine(Points);
}

void Flatten::applyToBox(Tensor &Center, Tensor &Radius) const {
  Center = applyAffine(Center);
  Radius = applyAffine(Radius);
}

Shape Flatten::outputShape(const Shape &InputShape) const {
  int64_t Features = 1;
  for (size_t I = 1; I < InputShape.rank(); ++I)
    Features *= InputShape.dim(static_cast<int>(I));
  return Shape({InputShape.dim(0), Features});
}

Reshape::Reshape(int64_t Channels, int64_t Height, int64_t Width)
    : Layer(Kind::Reshape), Channels(Channels), Height(Height), Width(Width) {}

Tensor Reshape::forward(const Tensor &Input) { return applyAffine(Input); }

Tensor Reshape::backward(const Tensor &GradOutput) {
  const int64_t B = GradOutput.dim(0);
  return GradOutput.reshaped({B, Channels * Height * Width});
}

Tensor Reshape::applyAffine(const Tensor &Points) const {
  const int64_t B = Points.dim(0);
  check(Points.numel() / B == Channels * Height * Width,
        "Reshape feature count mismatch");
  return Points.reshaped({B, Channels, Height, Width});
}

Tensor Reshape::applyLinear(const Tensor &Points) const {
  return applyAffine(Points);
}

void Reshape::applyToBox(Tensor &Center, Tensor &Radius) const {
  Center = applyAffine(Center);
  Radius = applyAffine(Radius);
}

Shape Reshape::outputShape(const Shape &InputShape) const {
  check(InputShape.rank() == 2 &&
            InputShape.dim(1) == Channels * Height * Width,
        "Reshape input shape mismatch");
  return Shape({InputShape.dim(0), Channels, Height, Width});
}

std::string Reshape::describe() const {
  std::ostringstream Out;
  Out << "Reshape(" << Channels << "x" << Height << "x" << Width << ")";
  return Out.str();
}

} // namespace genprove
