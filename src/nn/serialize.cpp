//===- nn/serialize.cpp ---------------------------------------*- C++ -*-===//

#include "src/nn/serialize.h"

#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/conv_transpose.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"

#include <cstdio>
#include <memory>

namespace genprove {

namespace {

constexpr uint64_t Magic = 0x47454e50524f5645ull; // "GENPROVE"
constexpr uint32_t Version = 1;

void writeU64(std::FILE *F, uint64_t V) { std::fwrite(&V, sizeof(V), 1, F); }
void writeI64(std::FILE *F, int64_t V) { std::fwrite(&V, sizeof(V), 1, F); }
void writeU32(std::FILE *F, uint32_t V) { std::fwrite(&V, sizeof(V), 1, F); }

bool readU64(std::FILE *F, uint64_t &V) {
  return std::fread(&V, sizeof(V), 1, F) == 1;
}
bool readI64(std::FILE *F, int64_t &V) {
  return std::fread(&V, sizeof(V), 1, F) == 1;
}
bool readU32(std::FILE *F, uint32_t &V) {
  return std::fread(&V, sizeof(V), 1, F) == 1;
}

void writeTensor(std::FILE *F, const Tensor &T) {
  writeU64(F, T.rank());
  for (size_t I = 0; I < T.rank(); ++I)
    writeI64(F, T.shape().dim(static_cast<int>(I)));
  std::fwrite(T.data(), sizeof(double), static_cast<size_t>(T.numel()), F);
}

bool readTensor(std::FILE *F, Tensor &T) {
  uint64_t Rank = 0;
  if (!readU64(F, Rank) || Rank > 8)
    return false;
  std::vector<int64_t> Dims(Rank);
  for (auto &D : Dims)
    if (!readI64(F, D))
      return false;
  Tensor Out{Shape(Dims)};
  const size_t N = static_cast<size_t>(Out.numel());
  if (std::fread(Out.data(), sizeof(double), N, F) != N)
    return false;
  T = std::move(Out);
  return true;
}

} // namespace

bool saveNetwork(const Sequential &Network, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  writeU64(F, Magic);
  writeU32(F, Version);
  writeU64(F, Network.size());
  for (size_t I = 0; I < Network.size(); ++I) {
    const Layer &L = Network.layer(I);
    writeU32(F, static_cast<uint32_t>(L.kind()));
    switch (L.kind()) {
    case Layer::Kind::Linear: {
      const auto &Lin = static_cast<const Linear &>(L);
      writeI64(F, Lin.inFeatures());
      writeI64(F, Lin.outFeatures());
      writeTensor(F, Lin.weight());
      writeTensor(F, Lin.bias());
      break;
    }
    case Layer::Kind::Conv2d: {
      const auto &Conv = static_cast<const Conv2d &>(L);
      const auto &G = Conv.geometry();
      writeI64(F, G.InChannels);
      writeI64(F, G.OutChannels);
      writeI64(F, G.KernelH);
      writeI64(F, G.Stride);
      writeI64(F, G.Padding);
      writeTensor(F, Conv.weight());
      writeTensor(F, Conv.bias());
      break;
    }
    case Layer::Kind::ConvTranspose2d: {
      const auto &Conv = static_cast<const ConvTranspose2d &>(L);
      const auto &G = Conv.geometry();
      writeI64(F, G.InChannels);
      writeI64(F, G.OutChannels);
      writeI64(F, G.KernelH);
      writeI64(F, G.Stride);
      writeI64(F, G.Padding);
      writeI64(F, G.OutputPadding);
      writeTensor(F, Conv.weight());
      writeTensor(F, Conv.bias());
      break;
    }
    case Layer::Kind::ReLU:
    case Layer::Kind::Flatten:
      break;
    case Layer::Kind::Reshape: {
      const auto &R = static_cast<const Reshape &>(L);
      writeI64(F, R.channels());
      writeI64(F, R.height());
      writeI64(F, R.width());
      break;
    }
    }
  }
  std::fclose(F);
  return true;
}

std::optional<Sequential> loadNetwork(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return std::nullopt;
  auto Fail = [&]() -> std::optional<Sequential> {
    std::fclose(F);
    return std::nullopt;
  };
  uint64_t Mg = 0;
  uint32_t Ver = 0;
  uint64_t NumLayers = 0;
  if (!readU64(F, Mg) || Mg != Magic || !readU32(F, Ver) || Ver != Version ||
      !readU64(F, NumLayers) || NumLayers > 1024)
    return Fail();

  Sequential Net;
  for (uint64_t I = 0; I < NumLayers; ++I) {
    uint32_t KindRaw = 0;
    if (!readU32(F, KindRaw))
      return Fail();
    switch (static_cast<Layer::Kind>(KindRaw)) {
    case Layer::Kind::Linear: {
      int64_t In = 0, Out = 0;
      if (!readI64(F, In) || !readI64(F, Out))
        return Fail();
      auto L = std::make_unique<Linear>(In, Out);
      if (!readTensor(F, L->weight()) || !readTensor(F, L->bias()))
        return Fail();
      Net.add(std::move(L));
      break;
    }
    case Layer::Kind::Conv2d: {
      int64_t Ic = 0, Oc = 0, K = 0, S = 0, P = 0;
      if (!readI64(F, Ic) || !readI64(F, Oc) || !readI64(F, K) ||
          !readI64(F, S) || !readI64(F, P))
        return Fail();
      auto L = std::make_unique<Conv2d>(Ic, Oc, K, S, P);
      if (!readTensor(F, L->weight()) || !readTensor(F, L->bias()))
        return Fail();
      Net.add(std::move(L));
      break;
    }
    case Layer::Kind::ConvTranspose2d: {
      int64_t Ic = 0, Oc = 0, K = 0, S = 0, P = 0, Op = 0;
      if (!readI64(F, Ic) || !readI64(F, Oc) || !readI64(F, K) ||
          !readI64(F, S) || !readI64(F, P) || !readI64(F, Op))
        return Fail();
      auto L = std::make_unique<ConvTranspose2d>(Ic, Oc, K, S, P, Op);
      if (!readTensor(F, L->weight()) || !readTensor(F, L->bias()))
        return Fail();
      Net.add(std::move(L));
      break;
    }
    case Layer::Kind::ReLU:
      Net.add(std::make_unique<ReLU>());
      break;
    case Layer::Kind::Flatten:
      Net.add(std::make_unique<Flatten>());
      break;
    case Layer::Kind::Reshape: {
      int64_t C = 0, H = 0, W = 0;
      if (!readI64(F, C) || !readI64(F, H) || !readI64(F, W))
        return Fail();
      Net.add(std::make_unique<Reshape>(C, H, W));
      break;
    }
    default:
      return Fail();
    }
  }
  std::fclose(F);
  return Net;
}

} // namespace genprove
