//===- nn/conv.cpp --------------------------------------------*- C++ -*-===//

#include "src/nn/conv.h"

#include <sstream>

namespace genprove {

Conv2d::Conv2d(int64_t InChannels, int64_t OutChannels, int64_t Kernel,
               int64_t Stride, int64_t Padding)
    : Layer(Kind::Conv2d),
      Weight({OutChannels, InChannels, Kernel, Kernel}), Bias({OutChannels}),
      GradWeight({OutChannels, InChannels, Kernel, Kernel}),
      GradBias({OutChannels}) {
  Geom.InChannels = InChannels;
  Geom.OutChannels = OutChannels;
  Geom.KernelH = Kernel;
  Geom.KernelW = Kernel;
  Geom.Stride = Stride;
  Geom.Padding = Padding;
}

Tensor Conv2d::forward(const Tensor &Input) {
  CachedInput = Input;
  return conv2d(Input, Weight, Bias, Geom);
}

Tensor Conv2d::backward(const Tensor &GradOutput) {
  return conv2dBackward(CachedInput, Weight, GradOutput, Geom, GradWeight,
                        GradBias);
}

Tensor Conv2d::applyAffine(const Tensor &Points) const {
  return conv2d(Points, Weight, Bias, Geom);
}

Tensor Conv2d::applyLinear(const Tensor &Points) const {
  return conv2d(Points, Weight, Tensor(), Geom);
}

void Conv2d::applyToBox(Tensor &Center, Tensor &Radius) const {
  Center = conv2d(Center, Weight, Bias, Geom);
  // |W| conv with no bias == conv2dAbs, minus the per-call clone+fabs.
  Radius = conv2d(Radius, AbsCache.get(Weight), Tensor(), Geom);
}

std::vector<Param> Conv2d::params() {
  AbsCache.invalidate(); // optimizers mutate through the returned pointers
  return {{&Weight, &GradWeight, "weight"}, {&Bias, &GradBias, "bias"}};
}

Shape Conv2d::outputShape(const Shape &InputShape) const {
  check(InputShape.rank() == 4 && InputShape.dim(1) == Geom.InChannels,
        "Conv2d input shape mismatch");
  const auto [OH, OW] = Geom.convOutput(InputShape.dim(2), InputShape.dim(3));
  return Shape({InputShape.dim(0), Geom.OutChannels, OH, OW});
}

std::string Conv2d::describe() const {
  std::ostringstream Out;
  Out << "Conv2d(" << Geom.InChannels << "->" << Geom.OutChannels << ", k"
      << Geom.KernelH << ", s" << Geom.Stride << ", p" << Geom.Padding << ")";
  return Out.str();
}

} // namespace genprove
