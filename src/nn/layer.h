//===- nn/layer.h - Neural network layer interface -------------*- C++ -*-===//
///
/// \file
/// Layer is the common interface of all network layers. It serves two
/// clients:
///
///  * the trainers, through forward()/backward()/params(); and
///  * the verifier, through the affine interface. Every layer except ReLU
///    is an affine map f(x) = A x + b. The analyzer propagates batches of
///    points (segment/curve coefficient vectors) with applyAffine() and
///    applyLinear() (no bias, for direction vectors and zonotope
///    generators), and interval boxes with applyToBox() (center via the
///    affine map, radius via |A|). ReLU is handled symbolically by the
///    abstract domains, never through this interface.
///
/// Dynamic dispatch uses an LLVM-style Kind tag instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_LAYER_H
#define GENPROVE_NN_LAYER_H

#include "src/tensor/tensor.h"

#include <memory>
#include <string>
#include <vector>

namespace genprove {

/// A named parameter tensor paired with its gradient accumulator.
struct Param {
  Tensor *Value = nullptr;
  Tensor *Grad = nullptr;
  std::string Name;
};

/// Base class for all layers.
class Layer {
public:
  enum class Kind : uint8_t {
    Linear,
    Conv2d,
    ConvTranspose2d,
    ReLU,
    Flatten,
    Reshape,
  };

  explicit Layer(Kind LayerKind) : LayerKind(LayerKind) {}
  virtual ~Layer() = default;

  Kind kind() const { return LayerKind; }

  /// True for every layer except ReLU.
  bool isAffine() const { return LayerKind != Kind::ReLU; }

  /// Training-mode forward pass on a batch (first dim is the batch).
  /// Caches whatever backward() needs.
  virtual Tensor forward(const Tensor &Input) = 0;

  /// Backward pass; accumulates parameter gradients, returns grad of input.
  virtual Tensor backward(const Tensor &GradOutput) = 0;

  /// Affine application with bias to a batch of points. Only valid when
  /// isAffine().
  virtual Tensor applyAffine(const Tensor &Points) const {
    (void)Points;
    fatalError("applyAffine called on a non-affine layer");
  }

  /// Linear part only (no bias); used for direction vectors, curve
  /// coefficients and zonotope generators. Only valid when isAffine().
  virtual Tensor applyLinear(const Tensor &Points) const {
    (void)Points;
    fatalError("applyLinear called on a non-affine layer");
  }

  /// Interval propagation: Center' = A*Center + b, Radius' = |A|*Radius.
  /// Center and Radius are single-sample batches. Only valid when
  /// isAffine().
  virtual void applyToBox(Tensor &Center, Tensor &Radius) const {
    (void)Center;
    (void)Radius;
    fatalError("applyToBox called on a non-affine layer");
  }

  /// Number of round-to-nearest accumulation terms behind one output value
  /// of the affine map (dot-product length plus the bias add). Zero means
  /// the layer is exact in floating point (pure data movement), so
  /// applyToBoxSound() needs no radius inflation.
  virtual int64_t accumulationDepth() const { return 0; }

  /// Sound variant of applyToBox(): same round-to-nearest kernels, but the
  /// output radius is inflated by a rigorous bound on the accumulated
  /// rounding error so [Center' +- Radius'] contains the exact interval
  /// image — and any round-to-nearest forward pass through this layer of a
  /// point in the input box. Implemented once on the base class in terms
  /// of applyToBox()/accumulationDepth().
  void applyToBoxSound(Tensor &Center, Tensor &Radius) const;

  /// Learnable parameters (empty for shape/activation layers).
  virtual std::vector<Param> params() { return {}; }

  /// Stable fingerprint of the layer's transfer function: structure plus
  /// the bit patterns of every learnable parameter. Two layers with equal
  /// fingerprints produce bit-identical abstract transformers, which is
  /// what the propagation cache keys on. Parameterless layers hash their
  /// kind and description; parameterized layers memoize the hash against
  /// their AbsWeightCache generation, so any weight mutation through a
  /// mutable accessor is guaranteed to change the fingerprint.
  virtual uint64_t fingerprint() const;

  /// Output activation shape (including batch dim) for a given input shape.
  virtual Shape outputShape(const Shape &InputShape) const = 0;

  /// Human-readable description, e.g. "Conv2d(3->16, k4, s2, p1)".
  virtual std::string describe() const = 0;

private:
  const Kind LayerKind;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace genprove

#endif // GENPROVE_NN_LAYER_H
