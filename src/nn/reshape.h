//===- nn/reshape.h - Flatten / Reshape layers -----------------*- C++ -*-===//

#ifndef GENPROVE_NN_RESHAPE_H
#define GENPROVE_NN_RESHAPE_H

#include "src/nn/layer.h"

namespace genprove {

/// Flattens NCHW activations to [N, C*H*W]. A linear (identity) map, so the
/// affine interface reshapes without touching data.
class Flatten : public Layer {
public:
  Flatten() : Layer(Kind::Flatten) {}

  Tensor forward(const Tensor &Input) override;
  Tensor backward(const Tensor &GradOutput) override;
  Tensor applyAffine(const Tensor &Points) const override;
  Tensor applyLinear(const Tensor &Points) const override;
  void applyToBox(Tensor &Center, Tensor &Radius) const override;
  Shape outputShape(const Shape &InputShape) const override;
  std::string describe() const override { return "Flatten"; }

private:
  Shape CachedInputShape;
};

/// Reshapes [N, C*H*W] activations to NCHW with the given channel/size.
class Reshape : public Layer {
public:
  Reshape(int64_t Channels, int64_t Height, int64_t Width);

  Tensor forward(const Tensor &Input) override;
  Tensor backward(const Tensor &GradOutput) override;
  Tensor applyAffine(const Tensor &Points) const override;
  Tensor applyLinear(const Tensor &Points) const override;
  void applyToBox(Tensor &Center, Tensor &Radius) const override;
  Shape outputShape(const Shape &InputShape) const override;
  std::string describe() const override;

  int64_t channels() const { return Channels; }
  int64_t height() const { return Height; }
  int64_t width() const { return Width; }

private:
  int64_t Channels;
  int64_t Height;
  int64_t Width;
};

} // namespace genprove

#endif // GENPROVE_NN_RESHAPE_H
