//===- nn/linear.h - Fully connected layer ---------------------*- C++ -*-===//

#ifndef GENPROVE_NN_LINEAR_H
#define GENPROVE_NN_LINEAR_H

#include "src/nn/abs_cache.h"
#include "src/nn/layer.h"

namespace genprove {

/// Fully connected layer: y = x W^T + b with W of shape [Out, In].
class Linear : public Layer {
public:
  Linear(int64_t InFeatures, int64_t OutFeatures);

  Tensor forward(const Tensor &Input) override;
  Tensor backward(const Tensor &GradOutput) override;
  Tensor applyAffine(const Tensor &Points) const override;
  Tensor applyLinear(const Tensor &Points) const override;
  void applyToBox(Tensor &Center, Tensor &Radius) const override;
  int64_t accumulationDepth() const override { return InFeatures + 1; }
  std::vector<Param> params() override;
  Shape outputShape(const Shape &InputShape) const override;
  std::string describe() const override;
  uint64_t fingerprint() const override {
    // Structural seed from the base hash (kind + description), parameter
    // bits memoized against the AbsWeightCache generation.
    return AbsCache.paramFingerprint(Layer::fingerprint(), {&Weight, &Bias});
  }

  int64_t inFeatures() const { return InFeatures; }
  int64_t outFeatures() const { return OutFeatures; }
  // Mutable parameter access invalidates the memoized |W| (see
  // nn/abs_cache.h for the contract).
  Tensor &weight() {
    AbsCache.invalidate();
    return Weight;
  }
  Tensor &bias() {
    AbsCache.invalidate();
    return Bias;
  }
  const Tensor &weight() const { return Weight; }
  const Tensor &bias() const { return Bias; }
  /// Memoized W^T for the fused affine->ReLU kernels (see
  /// AbsWeightCache::getTrans for why they want the transposed layout).
  const Tensor &transposedWeight() const { return AbsCache.getTrans(Weight); }

private:
  int64_t InFeatures;
  int64_t OutFeatures;
  Tensor Weight;     // [Out, In]
  Tensor Bias;       // [Out]
  Tensor GradWeight; // [Out, In]
  Tensor GradBias;   // [Out]
  Tensor CachedInput;
  AbsWeightCache AbsCache;
};

} // namespace genprove

#endif // GENPROVE_NN_LINEAR_H
