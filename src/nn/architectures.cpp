//===- nn/architectures.cpp -----------------------------------*- C++ -*-===//

#include "src/nn/architectures.h"

#include "src/nn/activations.h"
#include "src/nn/conv.h"
#include "src/nn/conv_transpose.h"
#include "src/nn/linear.h"
#include "src/nn/reshape.h"
#include "src/util/error.h"

namespace genprove {

namespace {

/// Track the spatial size while stacking conv layers.
struct Builder {
  Sequential Net;
  int64_t Channels;
  int64_t Size;

  Builder(int64_t ImgChannels, int64_t ImgSize)
      : Channels(ImgChannels), Size(ImgSize) {}

  Builder &conv(int64_t OutC, int64_t Kernel, int64_t Stride) {
    Net.add(std::make_unique<Conv2d>(Channels, OutC, Kernel, Stride,
                                     /*Padding=*/1));
    Size = (Size + 2 - Kernel) / Stride + 1;
    Channels = OutC;
    Net.add(std::make_unique<ReLU>());
    return *this;
  }

  Builder &flatten() {
    Net.add(std::make_unique<Flatten>());
    return *this;
  }

  int64_t features() const { return Channels * Size * Size; }
};

void addFc(Sequential &Net, int64_t In, int64_t Out, bool WithRelu) {
  Net.add(std::make_unique<Linear>(In, Out));
  if (WithRelu)
    Net.add(std::make_unique<ReLU>());
}

} // namespace

Sequential makeEncoderSmall(int64_t ImgChannels, int64_t ImgSize,
                            int64_t OutDim) {
  Builder B(ImgChannels, ImgSize);
  B.conv(16, 4, 2).conv(32, 4, 2).flatten();
  addFc(B.Net, B.features(), 100, /*WithRelu=*/true);
  addFc(B.Net, 100, OutDim, /*WithRelu=*/false);
  return std::move(B.Net);
}

Sequential makeEncoder(int64_t ImgChannels, int64_t ImgSize, int64_t OutDim) {
  Builder B(ImgChannels, ImgSize);
  B.conv(32, 3, 1).conv(32, 4, 2).conv(64, 3, 1).conv(64, 4, 2).flatten();
  addFc(B.Net, B.features(), 512, /*WithRelu=*/true);
  addFc(B.Net, 512, 512, /*WithRelu=*/true);
  addFc(B.Net, 512, OutDim, /*WithRelu=*/false);
  return std::move(B.Net);
}

namespace {

Sequential makeDecoderImpl(int64_t Latent, int64_t ImgChannels,
                           int64_t ImgSize, int64_t FirstFc,
                           int64_t MidChannels) {
  check(ImgSize % 2 == 0, "decoder image size must be even");
  const int64_t Base = ImgSize / 2;
  const int64_t MidFeatures = 32 * Base * Base;
  Sequential Net;
  addFc(Net, Latent, FirstFc, /*WithRelu=*/true);
  addFc(Net, FirstFc, MidFeatures, /*WithRelu=*/true);
  Net.add(std::make_unique<Reshape>(32, Base, Base));
  // ConvT stride 2, pad 1, outpad 1: Base -> 2*Base = ImgSize.
  Net.add(std::make_unique<ConvTranspose2d>(32, MidChannels, 3, 2, 1, 1));
  Net.add(std::make_unique<ReLU>());
  // ConvT stride 1, pad 1: keeps ImgSize.
  Net.add(
      std::make_unique<ConvTranspose2d>(MidChannels, ImgChannels, 3, 1, 1, 0));
  return Net;
}

} // namespace

Sequential makeDecoder(int64_t Latent, int64_t ImgChannels, int64_t ImgSize) {
  return makeDecoderImpl(Latent, ImgChannels, ImgSize, /*FirstFc=*/400,
                         /*MidChannels=*/16);
}

Sequential makeDecoderSmall(int64_t Latent, int64_t ImgChannels,
                            int64_t ImgSize) {
  return makeDecoderImpl(Latent, ImgChannels, ImgSize, /*FirstFc=*/200,
                         /*MidChannels=*/8);
}

Sequential makeConvSmall(int64_t ImgChannels, int64_t ImgSize,
                         int64_t NumOut) {
  Builder B(ImgChannels, ImgSize);
  B.conv(16, 4, 2).conv(32, 4, 2).flatten();
  addFc(B.Net, B.features(), 100, /*WithRelu=*/true);
  addFc(B.Net, 100, NumOut, /*WithRelu=*/false);
  return std::move(B.Net);
}

Sequential makeConvMed(int64_t ImgChannels, int64_t ImgSize, int64_t NumOut) {
  Builder B(ImgChannels, ImgSize);
  B.conv(12, 4, 1).conv(16, 4, 2).flatten();
  addFc(B.Net, B.features(), 500, /*WithRelu=*/true);
  addFc(B.Net, 500, 200, /*WithRelu=*/true);
  addFc(B.Net, 200, 100, /*WithRelu=*/true);
  addFc(B.Net, 100, NumOut, /*WithRelu=*/false);
  return std::move(B.Net);
}

Sequential makeConvLarge(int64_t ImgChannels, int64_t ImgSize,
                         int64_t NumOut) {
  Builder B(ImgChannels, ImgSize);
  B.conv(16, 3, 1).conv(16, 4, 2).conv(32, 3, 1).conv(32, 4, 2).flatten();
  addFc(B.Net, B.features(), 200, /*WithRelu=*/true);
  addFc(B.Net, 200, 100, /*WithRelu=*/true);
  addFc(B.Net, 100, NumOut, /*WithRelu=*/false);
  return std::move(B.Net);
}

Sequential makeConvBiggest(int64_t ImgChannels, int64_t ImgSize,
                           int64_t NumOut) {
  Builder B(ImgChannels, ImgSize);
  B.conv(16, 3, 1).conv(16, 3, 1).conv(32, 3, 2).conv(32, 3, 1).conv(32, 3, 1);
  B.flatten();
  addFc(B.Net, B.features(), 200, /*WithRelu=*/true);
  addFc(B.Net, 200, NumOut, /*WithRelu=*/false);
  return std::move(B.Net);
}

Sequential makeMlp(const std::vector<int64_t> &Dims) {
  check(Dims.size() >= 2, "MLP needs at least input and output dims");
  Sequential Net;
  for (size_t I = 0; I + 1 < Dims.size(); ++I)
    addFc(Net, Dims[I], Dims[I + 1], /*WithRelu=*/I + 2 < Dims.size());
  return Net;
}

Sequential makeClassifier(const std::string &Name, int64_t ImgChannels,
                          int64_t ImgSize, int64_t NumOut) {
  if (Name == "ConvSmall")
    return makeConvSmall(ImgChannels, ImgSize, NumOut);
  if (Name == "ConvMed")
    return makeConvMed(ImgChannels, ImgSize, NumOut);
  if (Name == "ConvLarge")
    return makeConvLarge(ImgChannels, ImgSize, NumOut);
  if (Name == "ConvBiggest")
    return makeConvBiggest(ImgChannels, ImgSize, NumOut);
  fatalError("unknown classifier architecture: " + Name);
}

} // namespace genprove
