//===- nn/sequential.h - Layer sequences -----------------------*- C++ -*-===//
///
/// \file
/// Sequential owns an ordered list of layers and provides the forward /
/// backward plumbing for training plus utilities for the verifier (flat
/// layer views, neuron counting per Appendix B's reporting).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_NN_SEQUENTIAL_H
#define GENPROVE_NN_SEQUENTIAL_H

#include "src/nn/layer.h"

namespace genprove {

/// An ordered sequence of layers; the unit of training and serialization.
class Sequential {
public:
  Sequential() = default;
  Sequential(Sequential &&) = default;
  Sequential &operator=(Sequential &&) = default;

  /// Append a layer (builder style).
  Sequential &add(LayerPtr NewLayer);

  /// Training forward pass (caches activations inside the layers).
  Tensor forward(const Tensor &Input);

  /// Backward pass; must follow a forward() on the same batch.
  Tensor backward(const Tensor &GradOutput);

  /// Inference pass; identical math, provided for readability at call sites.
  Tensor predict(const Tensor &Input) { return forward(Input); }

  /// All learnable parameters, layer by layer.
  std::vector<Param> params();

  /// Zero every gradient accumulator.
  void zeroGrads();

  size_t size() const { return Layers.size(); }
  Layer &layer(size_t I) { return *Layers[I]; }
  const Layer &layer(size_t I) const { return *Layers[I]; }

  /// Borrowed pointers to the layers in order; the verifier consumes
  /// concatenations of these views (e.g. decoder followed by classifier).
  std::vector<const Layer *> view() const;

  /// Total activation count over all layer outputs for one sample with the
  /// given input shape (batch dim must be 1). This is the paper's "number
  /// of neurons".
  int64_t countNeurons(const Shape &SampleShape) const;

  /// Output shape for the given input shape.
  Shape outputShape(const Shape &InputShape) const;

  /// Multi-line architecture description.
  std::string describe() const;

private:
  std::vector<LayerPtr> Layers;
};

/// Concatenate layer views (e.g. decoder + classifier pipelines).
std::vector<const Layer *> concatViews(const std::vector<const Layer *> &A,
                                       const std::vector<const Layer *> &B);

} // namespace genprove

#endif // GENPROVE_NN_SEQUENTIAL_H
