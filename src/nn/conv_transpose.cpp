//===- nn/conv_transpose.cpp ----------------------------------*- C++ -*-===//

#include "src/nn/conv_transpose.h"

#include <sstream>

namespace genprove {

ConvTranspose2d::ConvTranspose2d(int64_t InChannels, int64_t OutChannels,
                                 int64_t Kernel, int64_t Stride,
                                 int64_t Padding, int64_t OutputPadding)
    : Layer(Kind::ConvTranspose2d),
      Weight({InChannels, OutChannels, Kernel, Kernel}), Bias({OutChannels}),
      GradWeight({InChannels, OutChannels, Kernel, Kernel}),
      GradBias({OutChannels}) {
  Geom.InChannels = InChannels;
  Geom.OutChannels = OutChannels;
  Geom.KernelH = Kernel;
  Geom.KernelW = Kernel;
  Geom.Stride = Stride;
  Geom.Padding = Padding;
  Geom.OutputPadding = OutputPadding;
}

Tensor ConvTranspose2d::forward(const Tensor &Input) {
  CachedInput = Input;
  return convTranspose2d(Input, Weight, Bias, Geom);
}

Tensor ConvTranspose2d::backward(const Tensor &GradOutput) {
  return convTranspose2dBackward(CachedInput, Weight, GradOutput, Geom,
                                 GradWeight, GradBias);
}

Tensor ConvTranspose2d::applyAffine(const Tensor &Points) const {
  return convTranspose2d(Points, Weight, Bias, Geom);
}

Tensor ConvTranspose2d::applyLinear(const Tensor &Points) const {
  return convTranspose2d(Points, Weight, Tensor(), Geom);
}

void ConvTranspose2d::applyToBox(Tensor &Center, Tensor &Radius) const {
  Center = convTranspose2d(Center, Weight, Bias, Geom);
  // |W| scatter with no bias == convTranspose2dAbs, minus the per-call
  // elementwise fabs of every weight use.
  Radius = convTranspose2d(Radius, AbsCache.get(Weight), Tensor(), Geom);
}

std::vector<Param> ConvTranspose2d::params() {
  AbsCache.invalidate(); // optimizers mutate through the returned pointers
  return {{&Weight, &GradWeight, "weight"}, {&Bias, &GradBias, "bias"}};
}

Shape ConvTranspose2d::outputShape(const Shape &InputShape) const {
  check(InputShape.rank() == 4 && InputShape.dim(1) == Geom.InChannels,
        "ConvTranspose2d input shape mismatch");
  const auto [OH, OW] =
      Geom.convTransposeOutput(InputShape.dim(2), InputShape.dim(3));
  return Shape({InputShape.dim(0), Geom.OutChannels, OH, OW});
}

std::string ConvTranspose2d::describe() const {
  std::ostringstream Out;
  Out << "ConvTranspose2d(" << Geom.InChannels << "->" << Geom.OutChannels
      << ", k" << Geom.KernelH << ", s" << Geom.Stride << ", p" << Geom.Padding
      << ", op" << Geom.OutputPadding << ")";
  return Out.str();
}

} // namespace genprove
