//===- nn/layer.cpp -------------------------------------------*- C++ -*-===//

#include "src/nn/layer.h"

#include "src/util/fp.h"
#include "src/util/hash.h"

#include <cmath>

namespace genprove {

uint64_t Layer::fingerprint() const {
  // Parameterless layers (ReLU/Flatten/Reshape) are fully described by
  // their kind and shape description.
  uint64_t H = hashing::hashU64(hashing::FnvOffset,
                                static_cast<uint64_t>(LayerKind));
  return hashing::hashString(H, describe());
}

void Layer::applyToBoxSound(Tensor &Center, Tensor &Radius) const {
  const int64_t Depth = accumulationDepth();
  if (Depth <= 0) {
    // Pure data movement (Flatten/Reshape): exact in floating point.
    applyToBox(Center, Radius);
    return;
  }

  // Every point x of the input box satisfies |x| <= |c| + r elementwise,
  // so gamma_K * (|A|(|c| + r) + |b|) bounds the rounding error of the
  // round-to-nearest affine kernels on the center AND of a concrete
  // forward pass of any boxed point, for any summation order the tiled
  // kernels pick (standard dot-product error analysis). Running the box
  // transformer on (0, |c|+r) recovers both ingredients at once: the
  // center output of a zero input is the bias image b, the radius output
  // is |A| * (|c| + r).
  const int64_t InN = Center.numel();
  Tensor Mag(Center.shape());
  for (int64_t I = 0; I < InN; ++I)
    Mag[I] = fp::addUp(std::fabs(Center[I]), Radius[I]);
  Tensor BiasImage(Center.shape());
  applyToBox(BiasImage, Mag);

  applyToBox(Center, Radius);

  const double Gamma = fp::accumulationBound(Depth);
  const int64_t OutN = Radius.numel();
  for (int64_t I = 0; I < OutN; ++I)
    Radius[I] = fp::addUp(
        Radius[I],
        fp::mulUp(Gamma, fp::addUp(Mag[I], std::fabs(BiasImage[I]))));
}

} // namespace genprove
