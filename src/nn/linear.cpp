//===- nn/linear.cpp ------------------------------------------*- C++ -*-===//

#include "src/nn/linear.h"

#include "src/tensor/ops.h"

#include <cmath>
#include <sstream>

namespace genprove {

Linear::Linear(int64_t InFeatures, int64_t OutFeatures)
    : Layer(Kind::Linear), InFeatures(InFeatures), OutFeatures(OutFeatures),
      Weight({OutFeatures, InFeatures}), Bias({OutFeatures}),
      GradWeight({OutFeatures, InFeatures}), GradBias({OutFeatures}) {}

Tensor Linear::forward(const Tensor &Input) {
  CachedInput = Input;
  return applyAffine(Input);
}

Tensor Linear::backward(const Tensor &GradOutput) {
  // dW += dY^T X ; db += column sums of dY ; dX = dY W.
  Tensor Dw = matmulTransA(GradOutput, CachedInput); // [Out, In]
  GradWeight.addInPlace(Dw);
  const int64_t B = GradOutput.dim(0);
  for (int64_t I = 0; I < B; ++I)
    for (int64_t J = 0; J < OutFeatures; ++J)
      GradBias[J] += GradOutput.at(I, J);
  return matmul(GradOutput, Weight); // [B, In]
}

Tensor Linear::applyAffine(const Tensor &Points) const {
  Tensor Out = matmulTransB(Points, Weight); // [B, Out]
  const int64_t B = Out.dim(0);
  for (int64_t I = 0; I < B; ++I)
    for (int64_t J = 0; J < OutFeatures; ++J)
      Out.at(I, J) += Bias[J];
  return Out;
}

Tensor Linear::applyLinear(const Tensor &Points) const {
  return matmulTransB(Points, Weight);
}

void Linear::applyToBox(Tensor &Center, Tensor &Radius) const {
  Center = applyAffine(Center);
  Radius = matmulTransB(Radius, AbsCache.get(Weight));
}

std::vector<Param> Linear::params() {
  AbsCache.invalidate(); // optimizers mutate through the returned pointers
  return {{&Weight, &GradWeight, "weight"}, {&Bias, &GradBias, "bias"}};
}

Shape Linear::outputShape(const Shape &InputShape) const {
  check(InputShape.rank() == 2 && InputShape.dim(1) == InFeatures,
        "Linear input shape mismatch");
  return Shape({InputShape.dim(0), OutFeatures});
}

std::string Linear::describe() const {
  std::ostringstream Out;
  Out << "Linear(" << InFeatures << "->" << OutFeatures << ")";
  return Out.str();
}

} // namespace genprove
