//===- parallel/thread_pool.cpp - Shared parallel runtime ----------------===//

#include "src/parallel/thread_pool.h"

#include "src/obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

namespace genprove {

namespace {

thread_local bool InParallelChunk = false;

/// RAII flag so nested parallelFor calls from inside a chunk body run
/// inline instead of re-entering the pool.
struct ChunkScope {
  ChunkScope() { InParallelChunk = true; }
  ~ChunkScope() { InParallelChunk = false; }
};

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

/// One in-flight parallelFor. Lives on the submitting thread's stack;
/// workers only touch it between registering in ActiveWorkers and
/// deregistering, and the submitter waits for ActiveWorkers to drain
/// before returning, so the stack storage never escapes its lifetime.
struct ThreadPool::Job {
  const ChunkFn *Fn = nullptr;
  int64_t N = 0;
  int64_t Grain = 0;
  int64_t NumChunks = 0;
  int64_t NumSlots = 0;

  /// Per-slot claim cursors over that slot's contiguous chunk slice
  /// [SliceBegin[s], SliceEnd[s]); Next[s] advances by fetch_add from the
  /// owner and from thieves alike.
  std::vector<std::atomic<int64_t>> Next;
  std::vector<int64_t> SliceEnd;

  std::atomic<int64_t> Completed{0};
  std::atomic<bool> HasError{false};
  std::exception_ptr Error; ///< first chunk exception; guarded by ErrMu
  std::mutex ErrMu;

  Job(const ChunkFn &F, int64_t N, int64_t Grain, int64_t NumSlots)
      : Fn(&F), N(N), Grain(Grain), NumChunks((N + Grain - 1) / Grain),
        NumSlots(NumSlots), Next(static_cast<size_t>(NumSlots)),
        SliceEnd(static_cast<size_t>(NumSlots)) {
    for (int64_t Slot = 0; Slot < NumSlots; ++Slot) {
      Next[static_cast<size_t>(Slot)].store(Slot * NumChunks / NumSlots,
                                            std::memory_order_relaxed);
      SliceEnd[static_cast<size_t>(Slot)] = (Slot + 1) * NumChunks / NumSlots;
    }
  }
};

struct ThreadPool::Worker {
  std::thread Thread;
};

struct ThreadPool::Sync {
  /// Serializes top-level submitters: one parallelFor in flight at a time.
  std::mutex SubmitMu;

  std::mutex Mu;
  std::condition_variable WorkAvailable; ///< workers wait for a new job
  std::condition_variable WorkersDone;   ///< submitter waits for drain
  Job *CurrentJob = nullptr;             ///< non-null while a job is posted
  uint64_t Generation = 0;               ///< bumped per posted job
  int64_t ActiveWorkers = 0;             ///< workers inside the current job
  bool Stop = false;
  bool Spawned = false; ///< lazy worker start happened
};

ThreadPool &ThreadPool::global() {
  static ThreadPool Pool(envThreads());
  return Pool;
}

int64_t ThreadPool::envThreads() {
  if (const char *Env = std::getenv("GENPROVE_THREADS")) {
    char *End = nullptr;
    long V = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && V > 0)
      return static_cast<int64_t>(V);
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? static_cast<int64_t>(HW) : 1;
}

bool ThreadPool::inParallelRegion() { return InParallelChunk; }

int64_t ThreadPool::defaultGrain(int64_t N) {
  // A pure function of N: split into at most 64 chunks so even the
  // largest pool has steal targets, but never below 1 iteration.
  return std::max<int64_t>(1, (N + 63) / 64);
}

ThreadPool::ThreadPool(int64_t Threads) : S(std::make_unique<Sync>()) {
  NumThreads = std::max<int64_t>(1, std::min<int64_t>(Threads, 256));
}

ThreadPool::~ThreadPool() { joinWorkers(); }

void ThreadPool::setThreads(int64_t Threads) {
  Threads = std::max<int64_t>(1, std::min<int64_t>(Threads, 256));
  std::lock_guard<std::mutex> SubmitLock(S->SubmitMu);
  if (Threads == NumThreads)
    return;
  joinWorkers();
  NumThreads = Threads;
}

void ThreadPool::ensureWorkers() {
  // Called with SubmitMu held; workers are spawned once, on the first
  // parallelFor that can actually use them.
  std::lock_guard<std::mutex> Lock(S->Mu);
  if (S->Spawned)
    return;
  S->Stop = false;
  Workers.resize(static_cast<size_t>(NumThreads - 1));
  for (int64_t I = 0; I < NumThreads - 1; ++I)
    Workers[static_cast<size_t>(I)].Thread =
        std::thread([this, I] { workerLoop(I + 1); });
  S->Spawned = true;
}

void ThreadPool::joinWorkers() {
  {
    std::lock_guard<std::mutex> Lock(S->Mu);
    if (!S->Spawned)
      return;
    S->Stop = true;
  }
  S->WorkAvailable.notify_all();
  for (Worker &W : Workers)
    if (W.Thread.joinable())
      W.Thread.join();
  Workers.clear();
  std::lock_guard<std::mutex> Lock(S->Mu);
  S->Spawned = false;
  S->Stop = false;
}

void ThreadPool::runChunk(Job &J, int64_t Chunk) {
  const int64_t Begin = Chunk * J.Grain;
  const int64_t End = std::min(J.N, Begin + J.Grain);
  try {
    ChunkScope Scope;
    (*J.Fn)(Begin, End);
  } catch (...) {
    std::lock_guard<std::mutex> Lock(J.ErrMu);
    if (!J.HasError.exchange(true))
      J.Error = std::current_exception();
  }
  J.Completed.fetch_add(1, std::memory_order_acq_rel);
}

void ThreadPool::runSlot(Job &J, int64_t Slot) {
  static Counter &TasksCtr = MetricsRegistry::global().counter("pool.tasks");
  static Counter &StealsCtr = MetricsRegistry::global().counter("pool.steals");
  static Gauge &BusyGauge = MetricsRegistry::global().gauge("pool.busy_seconds");
  static Gauge &IdleGauge = MetricsRegistry::global().gauge("pool.idle_seconds");

  const auto SlotStart = std::chrono::steady_clock::now();
  double BusySeconds = 0.0;
  int64_t Ran = 0, Stolen = 0;

  // Drain our own slice first.
  const size_t Me = static_cast<size_t>(Slot);
  for (;;) {
    int64_t Chunk = J.Next[Me].fetch_add(1, std::memory_order_relaxed);
    if (Chunk >= J.SliceEnd[Me])
      break;
    const auto T0 = std::chrono::steady_clock::now();
    runChunk(J, Chunk);
    BusySeconds += secondsSince(T0);
    ++Ran;
  }

  // Then steal single chunks from the other slices until all are dry.
  for (int64_t Off = 1; Off < J.NumSlots; ++Off) {
    const size_t Victim = static_cast<size_t>((Slot + Off) % J.NumSlots);
    for (;;) {
      int64_t Chunk = J.Next[Victim].fetch_add(1, std::memory_order_relaxed);
      if (Chunk >= J.SliceEnd[Victim])
        break;
      const auto T0 = std::chrono::steady_clock::now();
      runChunk(J, Chunk);
      BusySeconds += secondsSince(T0);
      ++Ran;
      ++Stolen;
    }
  }

  if (metricsEnabled()) {
    TasksCtr.add(Ran);
    StealsCtr.add(Stolen);
    BusyGauge.add(BusySeconds);
    IdleGauge.add(std::max(0.0, secondsSince(SlotStart) - BusySeconds));
  }
}

void ThreadPool::workerLoop(int64_t Slot) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    Job *J = nullptr;
    {
      std::unique_lock<std::mutex> Lock(S->Mu);
      S->WorkAvailable.wait(Lock, [&] {
        return S->Stop || (S->CurrentJob && S->Generation != SeenGeneration);
      });
      if (S->Stop)
        return;
      SeenGeneration = S->Generation;
      J = S->CurrentJob;
      ++S->ActiveWorkers;
    }
    runSlot(*J, Slot);
    {
      std::lock_guard<std::mutex> Lock(S->Mu);
      --S->ActiveWorkers;
    }
    S->WorkersDone.notify_one();
  }
}

void ThreadPool::parallelFor(int64_t N, int64_t Grain, const ChunkFn &Fn) {
  if (N <= 0)
    return;
  if (Grain <= 0)
    Grain = defaultGrain(N);

  // Serial paths: size-1 pool, nested call, or a single chunk — run inline
  // in ascending chunk order, exactly the pre-parallel iteration order.
  // The in-parallel flag is deliberately NOT set here so that a
  // single-chunk outer loop (e.g. a conv over one sample) still lets its
  // inner kernels fan out.
  const int64_t NumChunks = (N + Grain - 1) / Grain;
  if (NumThreads == 1 || InParallelChunk || NumChunks == 1) {
    for (int64_t Begin = 0; Begin < N; Begin += Grain)
      Fn(Begin, std::min(N, Begin + Grain));
    return;
  }

  std::lock_guard<std::mutex> SubmitLock(S->SubmitMu);
  ensureWorkers();

  Job J(Fn, N, Grain, NumThreads);
  {
    std::lock_guard<std::mutex> Lock(S->Mu);
    S->CurrentJob = &J;
    ++S->Generation;
  }
  S->WorkAvailable.notify_all();

  // The caller participates as slot 0.
  runSlot(J, 0);

  // Wait for every chunk to finish AND every worker to leave the job
  // before J (stack storage) goes away.
  {
    std::unique_lock<std::mutex> Lock(S->Mu);
    S->WorkersDone.wait(Lock, [&] {
      return J.Completed.load(std::memory_order_acquire) == J.NumChunks &&
             S->ActiveWorkers == 0;
    });
    S->CurrentJob = nullptr;
  }

  if (J.HasError.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(J.ErrMu);
    std::rethrow_exception(J.Error);
  }
}

} // namespace genprove
