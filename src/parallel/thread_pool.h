//===- parallel/thread_pool.h - Shared parallel runtime --------*- C++ -*-===//
///
/// \file
/// The verifier's shared parallel execution engine: one lazily-initialized
/// work-stealing thread pool behind a parallelFor / parallelReduce API.
/// Three layers of the system run on it — the tiled GEMM/conv kernels
/// (src/tensor/ops.cpp), the per-region loops of the propagation engine
/// (src/domains/propagate.cpp), and the bench / CLI harnesses (independent
/// grid cells and spec endpoints).
///
/// Sizing: GENPROVE_THREADS environment variable (or the --threads CLI
/// flag via setThreads()); unset/0 means std::thread::hardware_concurrency.
/// A pool of size 1 never spawns a worker and executes every chunk inline
/// on the caller, which is exactly the pre-parallel serial code path.
///
/// Determinism contract (relied on by the config-fingerprinted grid cache
/// and the resilience soundness oracle): results are bit-identical for any
/// thread count.
///
///  * Chunk boundaries are a pure function of the iteration count and the
///    grain — never of the pool size. defaultGrain(N) depends on N only.
///  * Chunks may execute in any order on any worker, so a parallelFor body
///    must write disjoint state per chunk (all in-tree callers do).
///  * parallelReduce combines the per-chunk partials on the caller in
///    ascending chunk order, so floating-point reduction grouping is fixed.
///
/// Scheduling is work-stealing over chunk indices: every participant
/// (caller plus workers) owns a contiguous slice of the chunk range and
/// claims from it with a relaxed fetch-add; a participant whose slice is
/// exhausted steals single chunks from the other slices. Nested calls
/// (a parallelFor issued from inside a chunk) run inline and serial on the
/// calling worker, so kernels can sit under the propagation loops without
/// deadlock or oversubscription.
///
/// Observability (metrics off by default, see docs/OBSERVABILITY.md):
///   pool.tasks         chunks executed
///   pool.steals        chunks claimed from another participant's slice
///   pool.busy_seconds  summed per-participant time spent running chunks
///   pool.idle_seconds  summed participation time not spent in chunks
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_PARALLEL_THREAD_POOL_H
#define GENPROVE_PARALLEL_THREAD_POOL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace genprove {

/// Work item of a parallelFor: the half-open index range [Begin, End).
using ChunkFn = std::function<void(int64_t Begin, int64_t End)>;

class ThreadPool {
public:
  /// The process-global pool, created on first use with envThreads()
  /// workers. All engine code paths share this instance.
  static ThreadPool &global();

  /// GENPROVE_THREADS if set to a positive integer, otherwise
  /// hardware_concurrency (at least 1).
  static int64_t envThreads();

  /// True while the calling thread is executing a parallelFor chunk;
  /// nested parallel calls run inline and serial.
  static bool inParallelRegion();

  /// Grain used when a caller passes Grain <= 0: a function of N alone
  /// (never of the pool size), so reduction grouping is reproducible.
  static int64_t defaultGrain(int64_t N);

  explicit ThreadPool(int64_t Threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int64_t threads() const { return NumThreads; }

  /// Resize the pool (clamped to [1, 256]); joins existing workers. Must
  /// not be called while a parallelFor is in flight.
  void setThreads(int64_t Threads);

  /// Run Fn over [0, N) split into fixed chunks of Grain indices (last
  /// chunk may be short). Grain <= 0 uses defaultGrain(N). Blocks until
  /// every chunk has run; rethrows the first chunk exception. Chunks of a
  /// nested or size-1-pool call run inline in ascending order.
  void parallelFor(int64_t N, int64_t Grain, const ChunkFn &Fn);
  void parallelFor(int64_t N, const ChunkFn &Fn) { parallelFor(N, 0, Fn); }

  /// Map each chunk to a partial with Map(Begin, End), then fold the
  /// partials into Init on the caller in ascending chunk order:
  /// ((Init op P0) op P1) ... — a fixed grouping for any thread count.
  template <typename T, typename MapFn, typename CombineFn>
  T parallelReduce(int64_t N, int64_t Grain, T Init, const MapFn &Map,
                   const CombineFn &Combine) {
    if (N <= 0)
      return Init;
    if (Grain <= 0)
      Grain = defaultGrain(N);
    const int64_t NumChunks = (N + Grain - 1) / Grain;
    std::vector<T> Partials(static_cast<size_t>(NumChunks));
    parallelFor(N, Grain, [&](int64_t Begin, int64_t End) {
      Partials[static_cast<size_t>(Begin / Grain)] = Map(Begin, End);
    });
    T Acc = std::move(Init);
    for (T &Partial : Partials)
      Acc = Combine(std::move(Acc), std::move(Partial));
    return Acc;
  }

private:
  struct Job;
  struct Worker;

  void ensureWorkers();
  void joinWorkers();
  void workerLoop(int64_t Slot);
  /// Claim-and-run loop of one participant (slot 0 = the caller).
  void runSlot(Job &J, int64_t Slot);
  void runChunk(Job &J, int64_t Chunk);

  int64_t NumThreads = 1;
  std::vector<Worker> Workers; ///< NumThreads - 1 background threads

  // Job hand-off: SubmitMu serializes top-level parallelFor callers; Mu
  // guards CurrentJob/Generation/Stop and pairs with the two condvars.
  struct Sync;
  std::unique_ptr<Sync> S;
};

/// Shorthands on the global pool.
inline void parallelFor(int64_t N, int64_t Grain, const ChunkFn &Fn) {
  ThreadPool::global().parallelFor(N, Grain, Fn);
}
inline void parallelFor(int64_t N, const ChunkFn &Fn) {
  ThreadPool::global().parallelFor(N, Fn);
}

} // namespace genprove

#endif // GENPROVE_PARALLEL_THREAD_POOL_H
