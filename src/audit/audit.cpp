//===- audit/audit.cpp ----------------------------------------*- C++ -*-===//

#include "src/audit/audit.h"

#include "src/core/genprove.h"
#include "src/domains/hybrid_zonotope.h"
#include "src/domains/screen.h"
#include "src/domains/zonotope.h"
#include "src/interval/interval.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/util/error.h"
#include "src/util/fp.h"
#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <functional>

namespace genprove {

namespace {

Tensor reshapeActs(const Tensor &Flat, const Shape &SampleShape) {
  return Flat.reshaped(SampleShape);
}

Tensor flattenActs(const Tensor &Acts) {
  return Acts.reshaped({1, Acts.numel()});
}

/// Interval ReLU on a center/radius box, honouring the current rounding
/// mode (mirrors the engine's reluBox).
void reluBoxInPlace(Tensor &Center, Tensor &Radius) {
  const int64_t N = Center.numel();
  if (soundRoundingEnabled()) {
    for (int64_t J = 0; J < N; ++J) {
      const Interval Clamped =
          Interval{fp::subDown(Center[J], Radius[J]),
                   fp::addUp(Center[J], Radius[J])}
              .relu();
      Clamped.toCenterRadius(Center[J], Radius[J]);
    }
    return;
  }
  for (int64_t J = 0; J < N; ++J) {
    const double Lo = std::max(Center[J] - Radius[J], 0.0);
    const double Hi = std::max(Center[J] + Radius[J], 0.0);
    Center[J] = 0.5 * (Lo + Hi);
    Radius[J] = 0.5 * (Hi - Lo);
  }
}

/// Initial center/radius box of the segment, honouring the rounding mode
/// (mirrors the box domain's initial set).
void initialBox(const Tensor &Start, const Tensor &End, Tensor &Center,
                Tensor &Radius) {
  const int64_t N = Start.numel();
  Center = Tensor({1, N});
  Radius = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    if (soundRoundingEnabled()) {
      const Interval Hull{std::min(Start[J], End[J]),
                          std::max(Start[J], End[J])};
      Hull.toCenterRadius(Center[J], Radius[J]);
      const double Pad = fp::mulUp(
          8.0 * DBL_EPSILON,
          fp::addUp(std::fabs(Start[J]), std::fabs(End[J])));
      Radius[J] = fp::addUp(Radius[J], Pad);
    } else {
      Center[J] = 0.5 * (Start[J] + End[J]);
      Radius[J] = 0.5 * std::fabs(End[J] - Start[J]);
    }
  }
}

/// Box propagation in lockstep: the sound directed run next to the
/// round-to-nearest run, recording per-layer radius dilation. Returns the
/// sound output bounds.
void propagateBoxAudit(const std::vector<const Layer *> &Layers,
                       const Shape &InputShape, const Tensor &Start,
                       const Tensor &End,
                       std::vector<LayerDilation> &Dilations, Tensor &OutLo,
                       Tensor &OutHi) {
  static Histogram &DilationHist =
      MetricsRegistry::global().histogram("audit.layer_dilation_rel");
  static Gauge &MaxDilation =
      MetricsRegistry::global().gauge("audit.max_dilation_rel");

  Tensor Cs, Rs, Cr, Rr;
  {
    SoundRoundingScope On(true);
    initialBox(Start, End, Cs, Rs);
  }
  {
    SoundRoundingScope Off(false);
    initialBox(Start, End, Cr, Rr);
  }

  Shape CurShape = InputShape;
  int64_t Index = 0;
  for (const Layer *L : Layers) {
    if (L->isAffine()) {
      {
        SoundRoundingScope On(true);
        Tensor CenterActs = reshapeActs(Cs, CurShape);
        Tensor RadiusActs = reshapeActs(Rs, CurShape);
        L->applyToBoxSound(CenterActs, RadiusActs);
        Cs = flattenActs(CenterActs);
        Rs = flattenActs(RadiusActs);
      }
      {
        SoundRoundingScope Off(false);
        Tensor CenterActs = reshapeActs(Cr, CurShape);
        Tensor RadiusActs = reshapeActs(Rr, CurShape);
        L->applyToBox(CenterActs, RadiusActs);
        Cr = flattenActs(CenterActs);
        Rr = flattenActs(RadiusActs);
      }
      CurShape = L->outputShape(CurShape);
    } else {
      {
        SoundRoundingScope On(true);
        reluBoxInPlace(Cs, Rs);
      }
      {
        SoundRoundingScope Off(false);
        reluBoxInPlace(Cr, Rr);
      }
    }

    LayerDilation Dil;
    Dil.Index = Index++;
    Dil.Kind = layerKindName(L->kind());
    double Sum = 0.0;
    int64_t Counted = 0;
    for (int64_t J = 0; J < Rs.numel(); ++J) {
      if (Rr[J] <= 0.0)
        continue; // zero-width round-to-nearest dims have no relative scale
      const double Rel = (Rs[J] - Rr[J]) / Rr[J];
      Sum += Rel;
      Dil.MaxRel = std::max(Dil.MaxRel, Rel);
      ++Counted;
    }
    Dil.MeanRel = Counted > 0 ? Sum / static_cast<double>(Counted) : 0.0;
    DilationHist.record(Dil.MaxRel);
    MaxDilation.setMax(Dil.MaxRel);
    Dilations.push_back(Dil);
  }

  const int64_t N = Cs.numel();
  OutLo = Tensor({1, N});
  OutHi = Tensor({1, N});
  for (int64_t J = 0; J < N; ++J) {
    OutLo[J] = fp::subDown(Cs[J], Rs[J]);
    OutHi[J] = fp::addUp(Cs[J], Rs[J]);
  }
}

/// Concrete outputs [K, M] against sound bounds [1, M]; zero tolerance.
int64_t countViolations(const Tensor &Outputs, const Tensor &Lo,
                        const Tensor &Hi) {
  int64_t Violations = 0;
  const int64_t K = Outputs.dim(0);
  const int64_t M = Outputs.dim(1);
  for (int64_t I = 0; I < K; ++I)
    for (int64_t J = 0; J < M; ++J) {
      const double Y = Outputs.at(I, J);
      if (!(Y >= Lo[J] && Y <= Hi[J]))
        ++Violations;
    }
  return Violations;
}

/// Exact-segment bounds must nest inside coarser ones (strict ULP nesting
/// between independently rounded analyses is not guaranteed, hence the
/// small tolerance).
constexpr double DifferentialTol = 1e-9;

bool nests(const ProbBounds &Inner, const ProbBounds &Outer) {
  if (Outer.OutOfMemory)
    return true;
  return Outer.Lower <= Inner.Lower + DifferentialTol &&
         Inner.Upper <= Outer.Upper + DifferentialTol;
}

/// Two sound intervals for the same probability must overlap.
bool overlaps(const ProbBounds &A, const ProbBounds &B) {
  return A.Lower <= B.Upper + DifferentialTol &&
         B.Lower <= A.Upper + DifferentialTol;
}

/// Bitwise equality of two output hulls (the --fuse contract).
bool hullsBitEqual(const ZonotopeOutputBounds &A,
                   const ZonotopeOutputBounds &B) {
  if (A.OutOfMemory != B.OutOfMemory)
    return false;
  if (A.OutOfMemory)
    return true;
  if (A.Lo.numel() != B.Lo.numel())
    return false;
  for (int64_t J = 0; J < A.Lo.numel(); ++J)
    if (A.Lo[J] != B.Lo[J] || A.Hi[J] != B.Hi[J])
      return false;
  return true;
}

/// Directed enclosure of one halfspace functional at a concrete output
/// row: [FnLo, FnUp] contains the exact real g . y + c. Used to make the
/// screened consistency check non-flaky: only a *certain* concrete
/// contradiction counts as a violation.
void concreteFunctionalBounds(const OutputSpec::Halfspace &H,
                              const Tensor &Outputs, int64_t Row,
                              double &FnLo, double &FnUp) {
  FnLo = H.Offset;
  FnUp = H.Offset;
  for (int64_t J = 0; J < Outputs.dim(1); ++J) {
    FnLo = fp::addDown(FnLo, fp::mulDown(H.Normal[J], Outputs.at(Row, J)));
    FnUp = fp::addUp(FnUp, fp::mulUp(H.Normal[J], Outputs.at(Row, J)));
  }
}

} // namespace

ModelAudit auditSegment(const std::string &Name,
                        const std::vector<const Layer *> &Layers,
                        const Shape &InputShape, const Tensor &Start,
                        const Tensor &End, const AuditConfig &Config) {
  static Counter &SamplesCtr =
      MetricsRegistry::global().counter("audit.samples");
  static Counter &ViolationsCtr =
      MetricsRegistry::global().counter("audit.violations");

  check(Start.numel() == End.numel(), "audit segment endpoint dim mismatch");
  ModelAudit Audit;
  Audit.Model = Name;

  // Concrete oracle: round-to-nearest points on the segment (endpoints
  // always included) pushed through the round-to-nearest forward pass.
  const int64_t K = std::max<int64_t>(Config.SamplesPerModel, 2);
  const int64_t N = Start.numel();
  Rng Gen(Config.Seed ^
          std::hash<std::string>{}(Name)); // deterministic per model
  Tensor Points({K, N});
  std::vector<double> Ts(static_cast<size_t>(K));
  for (int64_t I = 0; I < K; ++I) {
    const double T = I == 0 ? 0.0 : (I == 1 ? 1.0 : Gen.uniform());
    Ts[static_cast<size_t>(I)] = T;
    for (int64_t J = 0; J < N; ++J)
      Points.at(I, J) = Start[J] + T * (End[J] - Start[J]);
  }
  Tensor Outputs;
  {
    SoundRoundingScope Off(false);
    Outputs = forwardConcretePoints(Layers, InputShape, Points);
  }

  // Box bounds (with per-layer dilation against the round-to-nearest run).
  {
    Tensor Lo, Hi;
    propagateBoxAudit(Layers, InputShape, Start, End, Audit.Layers, Lo, Hi);
    DomainAudit Dom;
    Dom.Domain = "box";
    Dom.Samples = K * Outputs.dim(1);
    Dom.Violations = countViolations(Outputs, Lo, Hi);
    Audit.Domains.push_back(Dom);
  }

  // Zonotope family bounds, all computed with directed rounding. With
  // Config.Fused, each domain additionally runs through the fused
  // affine->ReLU kernel chains: the fused hull must contain the oracle
  // (its own DomainAudit) AND be bit-identical to the unfused hull.
  {
    SoundRoundingScope On(true);
    auto auditHull = [&](const char *DomName,
                         const std::function<ZonotopeOutputBounds(bool)>
                             &Run) {
      const ZonotopeOutputBounds Bounds = Run(false);
      DomainAudit Dom;
      Dom.Domain = DomName;
      Dom.OutOfMemory = Bounds.OutOfMemory;
      if (!Bounds.OutOfMemory) {
        Dom.Samples = K * Outputs.dim(1);
        Dom.Violations = countViolations(Outputs, Bounds.Lo, Bounds.Hi);
      }
      Audit.Domains.push_back(Dom);
      if (!Config.Fused)
        return;
      const ZonotopeOutputBounds Fused = Run(true);
      DomainAudit FusedDom;
      FusedDom.Domain = std::string(DomName) + "_fused";
      FusedDom.OutOfMemory = Fused.OutOfMemory;
      if (!Fused.OutOfMemory) {
        FusedDom.Samples = K * Outputs.dim(1);
        FusedDom.Violations = countViolations(Outputs, Fused.Lo, Fused.Hi);
      }
      Audit.Domains.push_back(FusedDom);
      if (!hullsBitEqual(Bounds, Fused)) {
        Audit.DifferentialOk = false;
        Audit.DifferentialNote = std::string(DomName) +
                                 " fused hull not bit-identical to unfused";
      }
    };
    auditHull("zonotope", [&](bool Fuse) {
      DeviceMemoryModel Memory(0);
      return zonotopeOutputBounds(Layers, InputShape, Start, End,
                                  ZonotopeKind::Zonotope, Memory, Fuse);
    });
    auditHull("deepzono", [&](bool Fuse) {
      DeviceMemoryModel Memory(0);
      return zonotopeOutputBounds(Layers, InputShape, Start, End,
                                  ZonotopeKind::DeepZono, Memory, Fuse);
    });
    auditHull("hybrid", [&](bool Fuse) {
      DeviceMemoryModel Memory(0);
      return hybridZonotopeOutputBounds(Layers, InputShape, Start, End,
                                        Memory, Fuse);
    });
  }

  // Differential mode: the exact-segment probability bounds must nest
  // inside the relaxed analysis' bounds (both with directed rounding).
  if (Config.Differential) {
    SoundRoundingScope On(true);
    const OutputSpec Spec =
        OutputSpec::attributeSign(0, /*Positive=*/true, Outputs.dim(1));

    GenProveConfig ExactCfg;
    ExactCfg.Mode = AnalysisMode::Probabilistic;
    ExactCfg.RelaxPercent = 0.0;
    const GenProve Exact(ExactCfg);
    const ProbBounds ExactBounds =
        Exact.analyzeSegment(Layers, InputShape, Start, End, Spec).Bounds;

    GenProveConfig RelaxCfg = ExactCfg;
    RelaxCfg.RelaxPercent = 0.5;
    const GenProve Relaxed(RelaxCfg);
    const ProbBounds RelaxedBounds =
        Relaxed.analyzeSegment(Layers, InputShape, Start, End, Spec).Bounds;

    if (!nests(ExactBounds, RelaxedBounds)) {
      Audit.DifferentialOk = false;
      Audit.DifferentialNote =
          "exact bounds [" + std::to_string(ExactBounds.Lower) + ", " +
          std::to_string(ExactBounds.Upper) +
          "] not nested in relaxed bounds [" +
          std::to_string(RelaxedBounds.Lower) + ", " +
          std::to_string(RelaxedBounds.Upper) + "]";
    }

    // The engine-level fused path (union/box domain through
    // propagateRegions) must be bit-identical to the unfused one.
    if (Config.Fused) {
      GenProveConfig FusedCfg = ExactCfg;
      FusedCfg.FuseRelu = true;
      const ProbBounds FusedBounds =
          GenProve(FusedCfg)
              .analyzeSegment(Layers, InputShape, Start, End, Spec)
              .Bounds;
      if (FusedBounds.Lower != ExactBounds.Lower ||
          FusedBounds.Upper != ExactBounds.Upper) {
        Audit.DifferentialOk = false;
        Audit.DifferentialNote =
            "fused engine bounds not bit-identical to unfused";
      }
    }
  }

  // Two-tier screened audit: end-to-end analyzeSegmentScreened against a
  // borderline-heavy adversarial spec — the halfspace boundary is placed
  // at the median of the observed output functional, so roughly half the
  // concrete samples sit on each side and the screen cannot trivially
  // certify the whole range.
  if (Config.Screened) {
    const int64_t M = Outputs.dim(1);
    std::vector<double> F0(static_cast<size_t>(K));
    for (int64_t I = 0; I < K; ++I)
      F0[static_cast<size_t>(I)] = Outputs.at(I, 0);
    std::nth_element(F0.begin(), F0.begin() + K / 2, F0.end());
    const double Median = F0[static_cast<size_t>(K / 2)];
    Tensor Normal({1, M});
    Normal[0] = 1.0;
    const OutputSpec Adversarial = OutputSpec::halfspace(Normal, -Median);

    GenProveConfig ScreenCfg;
    ScreenCfg.FastScreen = true;
    AnalysisResult Screened;
    ProbBounds FullBounds;
    {
      SoundRoundingScope On(true);
      Screened = GenProve(ScreenCfg).analyzeSegment(Layers, InputShape, Start,
                                                    End, Adversarial);
      FullBounds = GenProve(GenProveConfig{})
                       .analyzeSegment(Layers, InputShape, Start, End,
                                       Adversarial)
                       .Bounds;
    }
    Audit.ScreenedInside = Screened.ScreenedInside;
    Audit.ScreenedOutside = Screened.ScreenedOutside;
    Audit.ScreenedBorderline = Screened.ScreenedBorderline;
    // Both intervals are sound for the same probability: they must
    // overlap (the screened one typically nests, but nesting is not part
    // of the contract when the tiers split the range differently).
    if (!overlaps(Screened.Bounds, FullBounds)) {
      Audit.DifferentialOk = false;
      Audit.DifferentialNote =
          "screened bounds [" + std::to_string(Screened.Bounds.Lower) + ", " +
          std::to_string(Screened.Bounds.Upper) +
          "] disjoint from full sound bounds [" +
          std::to_string(FullBounds.Lower) + ", " +
          std::to_string(FullBounds.Upper) + "]";
    }

    // Per-piece classification consistency against the concrete oracle:
    // an Inside piece must contain no sample that *certainly* violates
    // the spec, an Outside piece none that certainly satisfies it
    // (certainty via a directed enclosure of the concrete functional, so
    // borderline concrete evaluations can never flake the audit).
    DomainAudit Dom;
    Dom.Domain = "screened";
    Dom.Samples = K;
    const ScreenPlan Plan = buildScreenPlan(Layers);
    const int64_t Splits = std::max<int64_t>(ScreenCfg.ScreenSplits, 1);
    std::vector<ScreenVerdict> Verdicts(
        static_cast<size_t>(Splits), ScreenVerdict::Borderline);
    Tensor PieceStart({1, N}), PieceEnd({1, N});
    for (int64_t P = 0; P < Splits; ++P) {
      const double P0 = static_cast<double>(P) / static_cast<double>(Splits);
      const double P1 =
          static_cast<double>(P + 1) / static_cast<double>(Splits);
      for (int64_t J = 0; J < N; ++J) {
        PieceStart[J] = Start[J] + P0 * (End[J] - Start[J]);
        PieceEnd[J] = Start[J] + P1 * (End[J] - Start[J]);
      }
      Verdicts[static_cast<size_t>(P)] =
          screenClassify(Plan, PieceStart, PieceEnd, Adversarial);
    }
    for (int64_t I = 0; I < K; ++I) {
      const double T = Ts[static_cast<size_t>(I)];
      const int64_t P = std::min<int64_t>(
          static_cast<int64_t>(T * static_cast<double>(Splits)), Splits - 1);
      const ScreenVerdict V = Verdicts[static_cast<size_t>(P)];
      if (V == ScreenVerdict::Borderline)
        continue;
      bool CertainlySat = true, CertainlyViol = false;
      for (const auto &H : Adversarial.halfspaces()) {
        double FnLo = 0.0, FnUp = 0.0;
        concreteFunctionalBounds(H, Outputs, I, FnLo, FnUp);
        CertainlySat = CertainlySat && FnLo > 0.0;
        CertainlyViol = CertainlyViol || FnUp <= 0.0;
      }
      if (V == ScreenVerdict::Inside && CertainlyViol)
        ++Dom.Violations;
      if (V == ScreenVerdict::Outside && CertainlySat)
        ++Dom.Violations;
    }
    Audit.Domains.push_back(Dom);
  }

  for (const DomainAudit &Dom : Audit.Domains) {
    SamplesCtr.add(Dom.Samples);
    ViolationsCtr.add(Dom.Violations);
  }
  return Audit;
}

AuditReport auditBuiltinZoo(const AuditConfig &Config) {
  AuditReport Report;

  Rng MlpInit(Config.Seed ^ 0x101);
  Sequential Mlp = makeMlp({6, 24, 24, 4});
  kaimingInit(Mlp, MlpInit);

  Rng DecInit(Config.Seed ^ 0x202);
  Sequential Decoder = makeDecoderSmall(/*Latent=*/4, /*ImgChannels=*/1,
                                        /*ImgSize=*/8);
  kaimingInit(Decoder, DecInit);

  Rng ClsInit(Config.Seed ^ 0x303);
  Sequential Classifier = makeConvSmall(/*ImgChannels=*/1, /*ImgSize=*/8,
                                        /*NumOut=*/3);
  kaimingInit(Classifier, ClsInit);

  Rng SegRng(Config.Seed ^ 0x404);
  auto sampleSegment = [&](int64_t Latent, Tensor &Start, Tensor &End) {
    Start = Tensor({1, Latent});
    End = Tensor({1, Latent});
    for (int64_t J = 0; J < Latent; ++J) {
      Start[J] = SegRng.normal();
      End[J] = SegRng.normal();
    }
  };

  {
    Tensor Start, End;
    sampleSegment(6, Start, End);
    Report.Models.push_back(auditSegment("mlp", Mlp.view(), Shape({1, 6}),
                                         Start, End, Config));
  }
  {
    Tensor Start, End;
    sampleSegment(4, Start, End);
    Report.Models.push_back(auditSegment("decoder_small", Decoder.view(),
                                         Shape({1, 4}), Start, End, Config));
  }
  {
    Tensor Start, End;
    sampleSegment(4, Start, End);
    Report.Models.push_back(
        auditSegment("decoder_classifier",
                     concatViews(Decoder.view(), Classifier.view()),
                     Shape({1, 4}), Start, End, Config));
  }

  for (const ModelAudit &M : Report.Models) {
    for (const DomainAudit &Dom : M.Domains) {
      Report.TotalSamples += Dom.Samples;
      Report.TotalViolations += Dom.Violations;
    }
    for (const LayerDilation &Dil : M.Layers)
      Report.MaxDilationRel = std::max(Report.MaxDilationRel, Dil.MaxRel);
  }
  return Report;
}

std::string auditReportJson(const AuditReport &Report) {
  JsonWriter W;
  W.beginObject();
  W.key("ok").value(Report.ok());
  W.key("total_samples").value(Report.TotalSamples);
  W.key("total_violations").value(Report.TotalViolations);
  W.key("max_dilation_rel").value(Report.MaxDilationRel);
  W.key("models").beginArray();
  for (const ModelAudit &M : Report.Models) {
    W.beginObject();
    W.key("model").value(M.Model);
    W.key("differential_ok").value(M.DifferentialOk);
    if (!M.DifferentialNote.empty())
      W.key("differential_note").value(M.DifferentialNote);
    W.key("screened_inside").value(M.ScreenedInside);
    W.key("screened_outside").value(M.ScreenedOutside);
    W.key("screened_borderline").value(M.ScreenedBorderline);
    W.key("domains").beginArray();
    for (const DomainAudit &Dom : M.Domains) {
      W.beginObject();
      W.key("domain").value(Dom.Domain);
      W.key("samples").value(Dom.Samples);
      W.key("violations").value(Dom.Violations);
      W.key("oom").value(Dom.OutOfMemory);
      W.endObject();
    }
    W.endArray();
    W.key("layers").beginArray();
    for (const LayerDilation &Dil : M.Layers) {
      W.beginObject();
      W.key("index").value(Dil.Index);
      W.key("kind").value(Dil.Kind);
      W.key("mean_rel").value(Dil.MeanRel);
      W.key("max_rel").value(Dil.MaxRel);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

} // namespace genprove
