//===- audit/audit.h - Soundness containment audit -------------*- C++ -*-===//
///
/// \file
/// The empirical half of the sound-rounding story (docs/SOUNDNESS.md): a
/// Monte-Carlo containment oracle that samples latent parameters, runs the
/// concrete round-to-nearest forward pass, and asserts that every concrete
/// output lies inside the abstract output bounds produced with
/// SoundRounding enabled — for the box, zonotope, DeepZono and hybrid
/// zonotope domains over a small zoo of untrained fixed-seed networks.
///
/// The audit also measures the *cost* of soundness: per-layer dilation of
/// the directed box radii relative to the round-to-nearest radii (exported
/// through the obs metrics registry as audit.layer_dilation_rel /
/// audit.max_dilation_rel, so it lands in run_report.json), and a
/// differential mode that checks exact-segment probability bounds nest
/// inside relaxed ones.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_AUDIT_AUDIT_H
#define GENPROVE_AUDIT_AUDIT_H

#include "src/nn/sequential.h"

#include <string>
#include <vector>

namespace genprove {

struct AuditConfig {
  int64_t SamplesPerModel = 1000; ///< concrete latent points per model.
  uint64_t Seed = 0x5eed5eedull;  ///< deterministic across runs and threads.
  bool Differential = true;       ///< run the exact-vs-relaxed nesting check.
  /// Audit the fused affine->ReLU kernel path: containment of the concrete
  /// oracle in the fused zonotope-family bounds, plus bit-equality of the
  /// fused and unfused bounds (any mismatch fails DifferentialOk).
  bool Fused = true;
  /// Audit the two-tier screened path end-to-end: run
  /// analyzeSegmentScreened against a borderline-heavy adversarial spec
  /// (the halfspace boundary slices through the middle of the observed
  /// output range), check per-piece classification consistency against the
  /// concrete oracle, and check the screened interval overlaps the full
  /// sound tier's.
  bool Screened = true;
};

/// Dilation of the sound box radii over the round-to-nearest radii after
/// one layer: relative width increase, averaged / maximized over output
/// dimensions.
struct LayerDilation {
  int64_t Index = 0;
  const char *Kind = "";
  double MeanRel = 0.0;
  double MaxRel = 0.0;
};

/// Containment tally for one abstract domain on one model.
struct DomainAudit {
  std::string Domain; ///< "box" | "zonotope" | "deepzono" | "hybrid"
  int64_t Samples = 0;
  int64_t Violations = 0; ///< concrete values outside the sound bounds.
  bool OutOfMemory = false;
};

struct ModelAudit {
  std::string Model;
  std::vector<DomainAudit> Domains;
  std::vector<LayerDilation> Layers;
  bool DifferentialOk = true;
  std::string DifferentialNote;
  /// Two-tier screen telemetry for the adversarial-spec audit (pieces
  /// classified by the float32 screen; all-borderline when the pipeline
  /// contains layers the screen cannot compile).
  int64_t ScreenedInside = 0;
  int64_t ScreenedOutside = 0;
  int64_t ScreenedBorderline = 0;
};

struct AuditReport {
  std::vector<ModelAudit> Models;
  int64_t TotalSamples = 0;
  int64_t TotalViolations = 0;
  double MaxDilationRel = 0.0;

  bool ok() const {
    if (TotalViolations != 0)
      return false;
    for (const ModelAudit &M : Models)
      if (!M.DifferentialOk)
        return false;
    return true;
  }
};

/// Audit one pipeline on one latent segment. \p Layers must start from the
/// flat latent shape \p InputShape ({1, Latent}); Start/End are flat [1, N]
/// endpoints. SoundRounding is toggled internally (enabled for the abstract
/// runs, disabled for the concrete oracle) and restored on return.
ModelAudit auditSegment(const std::string &Name,
                        const std::vector<const Layer *> &Layers,
                        const Shape &InputShape, const Tensor &Start,
                        const Tensor &End, const AuditConfig &Config);

/// Audit the built-in zoo (untrained, fixed-seed kaiming-initialized
/// networks: an MLP, the small decoder, and decoder + classifier); the
/// soundness of the rounding does not depend on trained weights.
AuditReport auditBuiltinZoo(const AuditConfig &Config);

/// Render a report as a JSON document (validated by the audit tool before
/// writing).
std::string auditReportJson(const AuditReport &Report);

} // namespace genprove

#endif // GENPROVE_AUDIT_AUDIT_H
