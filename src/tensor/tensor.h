//===- tensor/tensor.h - Dense CPU tensors ---------------------*- C++ -*-===//
///
/// \file
/// Tensor is a dense, contiguous, row-major, double-precision array. It is
/// deliberately minimal: the verifier only needs affine layer application to
/// batches of points and interval bounds, and the trainers need elementwise
/// math plus matmul/conv, all of which live in tensor/ops.h.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TENSOR_TENSOR_H
#define GENPROVE_TENSOR_TENSOR_H

#include "src/tensor/shape.h"
#include "src/util/error.h"

#include <vector>

namespace genprove {

class Rng;

/// Dense row-major double tensor.
class Tensor {
public:
  Tensor() = default;

  /// Uninitialized-to-zero tensor of the given shape.
  explicit Tensor(Shape TensorShape);

  /// Tensor wrapping existing data (copied); numel must match.
  Tensor(Shape TensorShape, std::vector<double> Values);

  /// All-zero tensor.
  static Tensor zeros(Shape TensorShape);

  /// Constant-filled tensor.
  static Tensor full(Shape TensorShape, double Value);

  /// i.i.d. N(0, Stddev^2) entries.
  static Tensor randn(Shape TensorShape, Rng &Generator, double Stddev = 1.0);

  /// i.i.d. U(Lo, Hi) entries.
  static Tensor rand(Shape TensorShape, Rng &Generator, double Lo = 0.0,
                     double Hi = 1.0);

  const Shape &shape() const { return Dims; }
  int64_t numel() const { return static_cast<int64_t>(Data.size()); }
  size_t rank() const { return Dims.rank(); }
  int64_t dim(int I) const { return Dims.dim(I); }

  double *data() { return Data.data(); }
  const double *data() const { return Data.data(); }

  double &operator[](int64_t I) { return Data[static_cast<size_t>(I)]; }
  double operator[](int64_t I) const { return Data[static_cast<size_t>(I)]; }

  /// 2-D access (matrix view); requires rank 2.
  double &at(int64_t I, int64_t J) {
    return Data[static_cast<size_t>(I * Dims.dim(1) + J)];
  }
  double at(int64_t I, int64_t J) const {
    return Data[static_cast<size_t>(I * Dims.dim(1) + J)];
  }

  /// 4-D access (NCHW view); requires rank 4.
  double &at(int64_t N, int64_t C, int64_t H, int64_t W) {
    const int64_t Ch = Dims.dim(1), Hh = Dims.dim(2), Wh = Dims.dim(3);
    return Data[static_cast<size_t>(((N * Ch + C) * Hh + H) * Wh + W)];
  }
  double at(int64_t N, int64_t C, int64_t H, int64_t W) const {
    const int64_t Ch = Dims.dim(1), Hh = Dims.dim(2), Wh = Dims.dim(3);
    return Data[static_cast<size_t>(((N * Ch + C) * Hh + H) * Wh + W)];
  }

  /// Same data, different shape; numel must be preserved.
  Tensor reshaped(Shape NewShape) const;

  /// Deep copy.
  Tensor clone() const { return *this; }

  /// Fill with a constant.
  void fill(double Value);

  /// Set all entries to zero.
  void zero() { fill(0.0); }

  /// In-place: this += Other (same shape).
  void addInPlace(const Tensor &Other);

  /// In-place: this += Alpha * Other (same shape).
  void axpy(double Alpha, const Tensor &Other);

  /// In-place: this *= Alpha.
  void scaleInPlace(double Alpha);

  const std::vector<double> &values() const { return Data; }

private:
  Shape Dims;
  std::vector<double> Data;
};

} // namespace genprove

#endif // GENPROVE_TENSOR_TENSOR_H
