//===- tensor/shape.cpp ---------------------------------------*- C++ -*-===//

#include "src/tensor/shape.h"

#include "src/util/error.h"

#include <sstream>

namespace genprove {

Shape::Shape(std::initializer_list<int64_t> InitDims) : Dims(InitDims) {}

Shape::Shape(std::vector<int64_t> InitDims) : Dims(std::move(InitDims)) {}

int64_t Shape::dim(int I) const {
  const int R = static_cast<int>(Dims.size());
  if (I < 0)
    I += R;
  check(I >= 0 && I < R, "shape dimension index out of range");
  return Dims[static_cast<size_t>(I)];
}

int64_t Shape::numel() const {
  int64_t N = 1;
  for (int64_t D : Dims)
    N *= D;
  return N;
}

std::string Shape::toString() const {
  std::ostringstream Out;
  Out << '[';
  for (size_t I = 0; I < Dims.size(); ++I) {
    if (I)
      Out << ", ";
    Out << Dims[I];
  }
  Out << ']';
  return Out.str();
}

} // namespace genprove
