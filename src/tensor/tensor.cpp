//===- tensor/tensor.cpp --------------------------------------*- C++ -*-===//

#include "src/tensor/tensor.h"

#include "src/util/rng.h"

namespace genprove {

Tensor::Tensor(Shape TensorShape)
    : Dims(std::move(TensorShape)),
      Data(static_cast<size_t>(Dims.numel()), 0.0) {}

Tensor::Tensor(Shape TensorShape, std::vector<double> Values)
    : Dims(std::move(TensorShape)), Data(std::move(Values)) {
  check(static_cast<int64_t>(Data.size()) == Dims.numel(),
        "tensor data size does not match shape");
}

Tensor Tensor::zeros(Shape TensorShape) { return Tensor(std::move(TensorShape)); }

Tensor Tensor::full(Shape TensorShape, double Value) {
  Tensor T(std::move(TensorShape));
  T.fill(Value);
  return T;
}

Tensor Tensor::randn(Shape TensorShape, Rng &Generator, double Stddev) {
  Tensor T(std::move(TensorShape));
  for (int64_t I = 0; I < T.numel(); ++I)
    T[I] = Generator.normal(0.0, Stddev);
  return T;
}

Tensor Tensor::rand(Shape TensorShape, Rng &Generator, double Lo, double Hi) {
  Tensor T(std::move(TensorShape));
  for (int64_t I = 0; I < T.numel(); ++I)
    T[I] = Generator.uniform(Lo, Hi);
  return T;
}

Tensor Tensor::reshaped(Shape NewShape) const {
  check(NewShape.numel() == Dims.numel(), "reshape changes element count");
  Tensor T = *this;
  T.Dims = std::move(NewShape);
  return T;
}

void Tensor::fill(double Value) {
  for (double &V : Data)
    V = Value;
}

void Tensor::addInPlace(const Tensor &Other) {
  check(Other.numel() == numel(), "addInPlace shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += Other.Data[I];
}

void Tensor::axpy(double Alpha, const Tensor &Other) {
  check(Other.numel() == numel(), "axpy shape mismatch");
  for (size_t I = 0; I < Data.size(); ++I)
    Data[I] += Alpha * Other.Data[I];
}

void Tensor::scaleInPlace(double Alpha) {
  for (double &V : Data)
    V *= Alpha;
}

} // namespace genprove
