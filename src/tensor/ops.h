//===- tensor/ops.h - Tensor kernels ---------------------------*- C++ -*-===//
///
/// \file
/// The numeric kernels: matmul (plus transposed variants used by backprop),
/// im2col-based 2-D convolution, transposed convolution, and the
/// absolute-weight variants required by interval arithmetic (a box with
/// center c and radius r maps through an affine layer as c' = W c + b,
/// r' = |W| r).
///
/// Convolution weight layout follows PyTorch:
///   Conv2d:          [OutC, InC, KH, KW]
///   ConvTranspose2d: [InC, OutC, KH, KW]
/// Activations are NCHW.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TENSOR_OPS_H
#define GENPROVE_TENSOR_OPS_H

#include "src/tensor/tensor.h"

namespace genprove {

/// C = A(MxK) * B(KxN).
Tensor matmul(const Tensor &A, const Tensor &B);

/// C = A^T(KxM -> MxK as given) * B. A is (KxM), result (MxN): C = Aᵀ B.
Tensor matmulTransA(const Tensor &A, const Tensor &B);

/// C = A * Bᵀ where A is (MxK) and B is (NxK); result (MxN).
Tensor matmulTransB(const Tensor &A, const Tensor &B);

/// C = A * Bᵀ + Bias broadcast over rows (Bias is [N]). Bit-identical to
/// matmulTransB followed by a separate += Bias[j] pass — the dot product
/// accumulates in the same ascending-k order and the bias add is the same
/// double-precision operation, just performed at the store instead of
/// after a memory round-trip.
Tensor matmulTransBBias(const Tensor &A, const Tensor &B, const Tensor &Bias);

/// Fused interval affine map through a Linear weight W [N, K] (transB
/// layout): one streaming pass over W computes, per row i of the [M, K]
/// inputs,
///   OutC[i]   = Centers[i] * Wᵀ + Bias        (center image)
///   OutR[i]   = Radii[i]   * |W|ᵀ             (radius image)
///   OutMags[i]= Mags[i]    * |W|ᵀ             (optional magnitude image)
/// |W| is taken elementwise with std::fabs on the fly, which is bitwise
/// equal to the memoized AbsWeightCache tensor, so every output element is
/// bit-identical to the three (or two) separate matmulTransB calls of the
/// unfused path — W is simply streamed once instead of two to four times.
/// Mags/OutMags may be null to skip the magnitude plane (round-nearest
/// mode). Out tensors are (re)allocated to [M, N].
void fusedBoxAffineTransB(const Tensor &Centers, const Tensor &Radii,
                          const Tensor *Mags, const Tensor &W,
                          const Tensor &Bias, Tensor &OutC, Tensor &OutR,
                          Tensor *OutMags);

/// fusedBoxAffineTransB with the weight supplied pre-transposed: Wt is
/// W^T [K, N] (Linear::transposedWeight()). Bit-identical to the transB
/// form — each output element accumulates the same ascending-k chain —
/// but with the output dimension contiguous the chains vectorize across
/// outputs, which the strict-FP dot-product form cannot. This is the
/// kernel the fused affine->ReLU path actually runs.
void fusedBoxAffineTransT(const Tensor &Centers, const Tensor &Radii,
                          const Tensor *Mags, const Tensor &Wt,
                          const Tensor &Bias, Tensor &OutC, Tensor &OutR,
                          Tensor *OutMags);

/// C = A * Wt + Bias broadcast over rows, with Wt = W^T [K, N].
/// Bit-identical to matmulTransBBias(A, W, Bias) (same ascending-k chain
/// per output, bias added after the full dot), in the vectorizable
/// transposed layout. Used for the curve planes of the fused path.
Tensor matmulTransTBias(const Tensor &A, const Tensor &Wt,
                        const Tensor &Bias);

/// Geometry of a 2-D convolution.
struct ConvGeometry {
  int64_t InChannels = 0;
  int64_t OutChannels = 0;
  int64_t KernelH = 0;
  int64_t KernelW = 0;
  int64_t Stride = 1;
  int64_t Padding = 0;
  int64_t OutputPadding = 0; // transposed conv only

  /// Spatial output size of a forward convolution on (H, W).
  std::pair<int64_t, int64_t> convOutput(int64_t H, int64_t W) const;

  /// Spatial output size of a transposed convolution on (H, W).
  std::pair<int64_t, int64_t> convTransposeOutput(int64_t H, int64_t W) const;
};

/// Forward 2-D convolution of NCHW input with weight [OC, IC, KH, KW] and
/// bias [OC] (pass an empty tensor to skip bias). Uses im2col + matmul.
Tensor conv2d(const Tensor &Input, const Tensor &Weight, const Tensor &Bias,
              const ConvGeometry &Geom);

/// conv2d with |Weight| and no bias: propagates interval radii.
Tensor conv2dAbs(const Tensor &Input, const Tensor &Weight,
                 const ConvGeometry &Geom);

/// Gradients of conv2d. GradOutput is NCHW with the conv output shape.
/// Returns gradient w.r.t. input; accumulates into GradWeight/GradBias.
Tensor conv2dBackward(const Tensor &Input, const Tensor &Weight,
                      const Tensor &GradOutput, const ConvGeometry &Geom,
                      Tensor &GradWeight, Tensor &GradBias);

/// Forward transposed convolution; weight [IC, OC, KH, KW], bias [OC].
Tensor convTranspose2d(const Tensor &Input, const Tensor &Weight,
                       const Tensor &Bias, const ConvGeometry &Geom);

/// convTranspose2d with |Weight| and no bias.
Tensor convTranspose2dAbs(const Tensor &Input, const Tensor &Weight,
                          const ConvGeometry &Geom);

/// Gradients of convTranspose2d.
Tensor convTranspose2dBackward(const Tensor &Input, const Tensor &Weight,
                               const Tensor &GradOutput,
                               const ConvGeometry &Geom, Tensor &GradWeight,
                               Tensor &GradBias);

/// Elementwise max(x, 0).
Tensor relu(const Tensor &Input);

/// Elementwise derivative mask: 1 where Input > 0 else 0.
Tensor reluMask(const Tensor &Input);

/// Row-wise argmax of a rank-2 tensor.
std::vector<int64_t> argmaxRows(const Tensor &Logits);

/// Numerically stable row-wise softmax of a rank-2 tensor.
Tensor softmaxRows(const Tensor &Logits);

} // namespace genprove

#endif // GENPROVE_TENSOR_OPS_H
