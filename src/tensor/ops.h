//===- tensor/ops.h - Tensor kernels ---------------------------*- C++ -*-===//
///
/// \file
/// The numeric kernels: matmul (plus transposed variants used by backprop),
/// im2col-based 2-D convolution, transposed convolution, and the
/// absolute-weight variants required by interval arithmetic (a box with
/// center c and radius r maps through an affine layer as c' = W c + b,
/// r' = |W| r).
///
/// Convolution weight layout follows PyTorch:
///   Conv2d:          [OutC, InC, KH, KW]
///   ConvTranspose2d: [InC, OutC, KH, KW]
/// Activations are NCHW.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TENSOR_OPS_H
#define GENPROVE_TENSOR_OPS_H

#include "src/tensor/tensor.h"

namespace genprove {

/// C = A(MxK) * B(KxN).
Tensor matmul(const Tensor &A, const Tensor &B);

/// C = A^T(KxM -> MxK as given) * B. A is (KxM), result (MxN): C = Aᵀ B.
Tensor matmulTransA(const Tensor &A, const Tensor &B);

/// C = A * Bᵀ where A is (MxK) and B is (NxK); result (MxN).
Tensor matmulTransB(const Tensor &A, const Tensor &B);

/// Geometry of a 2-D convolution.
struct ConvGeometry {
  int64_t InChannels = 0;
  int64_t OutChannels = 0;
  int64_t KernelH = 0;
  int64_t KernelW = 0;
  int64_t Stride = 1;
  int64_t Padding = 0;
  int64_t OutputPadding = 0; // transposed conv only

  /// Spatial output size of a forward convolution on (H, W).
  std::pair<int64_t, int64_t> convOutput(int64_t H, int64_t W) const;

  /// Spatial output size of a transposed convolution on (H, W).
  std::pair<int64_t, int64_t> convTransposeOutput(int64_t H, int64_t W) const;
};

/// Forward 2-D convolution of NCHW input with weight [OC, IC, KH, KW] and
/// bias [OC] (pass an empty tensor to skip bias). Uses im2col + matmul.
Tensor conv2d(const Tensor &Input, const Tensor &Weight, const Tensor &Bias,
              const ConvGeometry &Geom);

/// conv2d with |Weight| and no bias: propagates interval radii.
Tensor conv2dAbs(const Tensor &Input, const Tensor &Weight,
                 const ConvGeometry &Geom);

/// Gradients of conv2d. GradOutput is NCHW with the conv output shape.
/// Returns gradient w.r.t. input; accumulates into GradWeight/GradBias.
Tensor conv2dBackward(const Tensor &Input, const Tensor &Weight,
                      const Tensor &GradOutput, const ConvGeometry &Geom,
                      Tensor &GradWeight, Tensor &GradBias);

/// Forward transposed convolution; weight [IC, OC, KH, KW], bias [OC].
Tensor convTranspose2d(const Tensor &Input, const Tensor &Weight,
                       const Tensor &Bias, const ConvGeometry &Geom);

/// convTranspose2d with |Weight| and no bias.
Tensor convTranspose2dAbs(const Tensor &Input, const Tensor &Weight,
                          const ConvGeometry &Geom);

/// Gradients of convTranspose2d.
Tensor convTranspose2dBackward(const Tensor &Input, const Tensor &Weight,
                               const Tensor &GradOutput,
                               const ConvGeometry &Geom, Tensor &GradWeight,
                               Tensor &GradBias);

/// Elementwise max(x, 0).
Tensor relu(const Tensor &Input);

/// Elementwise derivative mask: 1 where Input > 0 else 0.
Tensor reluMask(const Tensor &Input);

/// Row-wise argmax of a rank-2 tensor.
std::vector<int64_t> argmaxRows(const Tensor &Logits);

/// Numerically stable row-wise softmax of a rank-2 tensor.
Tensor softmaxRows(const Tensor &Logits);

} // namespace genprove

#endif // GENPROVE_TENSOR_OPS_H
