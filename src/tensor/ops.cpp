//===- tensor/ops.cpp -----------------------------------------*- C++ -*-===//

#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

namespace genprove {

Tensor matmul(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmul requires rank-2 tensors");
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  check(B.dim(0) == K, "matmul inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  for (int64_t I = 0; I < M; ++I) {
    const double *Arow = Ad + I * K;
    double *Crow = Cd + I * N;
    for (int64_t Kk = 0; Kk < K; ++Kk) {
      const double Aik = Arow[Kk];
      if (Aik == 0.0)
        continue;
      const double *Brow = Bd + Kk * N;
      for (int64_t J = 0; J < N; ++J)
        Crow[J] += Aik * Brow[J];
    }
  }
  return C;
}

Tensor matmulTransA(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmulTransA requires rank-2");
  const int64_t K = A.dim(0), M = A.dim(1), N = B.dim(1);
  check(B.dim(0) == K, "matmulTransA inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  for (int64_t Kk = 0; Kk < K; ++Kk) {
    const double *Arow = Ad + Kk * M;
    const double *Brow = Bd + Kk * N;
    for (int64_t I = 0; I < M; ++I) {
      const double Aki = Arow[I];
      if (Aki == 0.0)
        continue;
      double *Crow = Cd + I * N;
      for (int64_t J = 0; J < N; ++J)
        Crow[J] += Aki * Brow[J];
    }
  }
  return C;
}

Tensor matmulTransB(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmulTransB requires rank-2");
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(0);
  check(B.dim(1) == K, "matmulTransB inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  for (int64_t I = 0; I < M; ++I) {
    const double *Arow = Ad + I * K;
    double *Crow = Cd + I * N;
    for (int64_t J = 0; J < N; ++J) {
      const double *Brow = Bd + J * K;
      double Acc = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        Acc += Arow[Kk] * Brow[Kk];
      Crow[J] = Acc;
    }
  }
  return C;
}

std::pair<int64_t, int64_t> ConvGeometry::convOutput(int64_t H,
                                                     int64_t W) const {
  const int64_t OH = (H + 2 * Padding - KernelH) / Stride + 1;
  const int64_t OW = (W + 2 * Padding - KernelW) / Stride + 1;
  return {OH, OW};
}

std::pair<int64_t, int64_t>
ConvGeometry::convTransposeOutput(int64_t H, int64_t W) const {
  const int64_t OH = (H - 1) * Stride - 2 * Padding + KernelH + OutputPadding;
  const int64_t OW = (W - 1) * Stride - 2 * Padding + KernelW + OutputPadding;
  return {OH, OW};
}

namespace {

/// Unfold one sample [C, H, W] into a [C*KH*KW, OH*OW] column matrix.
void im2col(const double *Input, int64_t C, int64_t H, int64_t W,
            const ConvGeometry &G, double *Col) {
  const auto [OH, OW] = G.convOutput(H, W);
  for (int64_t Ch = 0; Ch < C; ++Ch) {
    for (int64_t Kh = 0; Kh < G.KernelH; ++Kh) {
      for (int64_t Kw = 0; Kw < G.KernelW; ++Kw) {
        const int64_t Row = (Ch * G.KernelH + Kh) * G.KernelW + Kw;
        double *ColRow = Col + Row * OH * OW;
        for (int64_t Oh = 0; Oh < OH; ++Oh) {
          const int64_t Ih = Oh * G.Stride - G.Padding + Kh;
          for (int64_t Ow = 0; Ow < OW; ++Ow) {
            const int64_t Iw = Ow * G.Stride - G.Padding + Kw;
            double V = 0.0;
            if (Ih >= 0 && Ih < H && Iw >= 0 && Iw < W)
              V = Input[(Ch * H + Ih) * W + Iw];
            ColRow[Oh * OW + Ow] = V;
          }
        }
      }
    }
  }
}

/// Fold a column matrix back into a [C, H, W] sample, accumulating overlaps.
void col2im(const double *Col, int64_t C, int64_t H, int64_t W,
            const ConvGeometry &G, double *Output) {
  const auto [OH, OW] = G.convOutput(H, W);
  std::fill(Output, Output + C * H * W, 0.0);
  for (int64_t Ch = 0; Ch < C; ++Ch) {
    for (int64_t Kh = 0; Kh < G.KernelH; ++Kh) {
      for (int64_t Kw = 0; Kw < G.KernelW; ++Kw) {
        const int64_t Row = (Ch * G.KernelH + Kh) * G.KernelW + Kw;
        const double *ColRow = Col + Row * OH * OW;
        for (int64_t Oh = 0; Oh < OH; ++Oh) {
          const int64_t Ih = Oh * G.Stride - G.Padding + Kh;
          if (Ih < 0 || Ih >= H)
            continue;
          for (int64_t Ow = 0; Ow < OW; ++Ow) {
            const int64_t Iw = Ow * G.Stride - G.Padding + Kw;
            if (Iw < 0 || Iw >= W)
              continue;
            Output[(Ch * H + Ih) * W + Iw] += ColRow[Oh * OW + Ow];
          }
        }
      }
    }
  }
}

Tensor conv2dImpl(const Tensor &Input, const Tensor &Weight,
                  const Tensor &Bias, const ConvGeometry &Geom, bool UseAbs) {
  check(Input.rank() == 4, "conv2d expects NCHW input");
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  check(C == Geom.InChannels, "conv2d channel mismatch");
  const auto [OH, OW] = Geom.convOutput(H, W);
  const int64_t OC = Geom.OutChannels;
  const int64_t KSize = C * Geom.KernelH * Geom.KernelW;

  Tensor WeightMat = Weight.reshaped({OC, KSize});
  if (UseAbs) {
    Tensor AbsW = WeightMat.clone();
    for (int64_t I = 0; I < AbsW.numel(); ++I)
      AbsW[I] = std::fabs(AbsW[I]);
    WeightMat = AbsW;
  }

  Tensor Output({N, OC, OH, OW});
  Tensor Col({KSize, OH * OW});
  for (int64_t Sample = 0; Sample < N; ++Sample) {
    im2col(Input.data() + Sample * C * H * W, C, H, W, Geom, Col.data());
    Tensor Out = matmul(WeightMat, Col); // [OC, OH*OW]
    double *Dst = Output.data() + Sample * OC * OH * OW;
    const double *Src = Out.data();
    if (Bias.numel() == OC && !UseAbs) {
      for (int64_t Oc = 0; Oc < OC; ++Oc) {
        const double B = Bias[Oc];
        for (int64_t P = 0; P < OH * OW; ++P)
          Dst[Oc * OH * OW + P] = Src[Oc * OH * OW + P] + B;
      }
    } else {
      std::copy(Src, Src + OC * OH * OW, Dst);
    }
  }
  return Output;
}

} // namespace

Tensor conv2d(const Tensor &Input, const Tensor &Weight, const Tensor &Bias,
              const ConvGeometry &Geom) {
  return conv2dImpl(Input, Weight, Bias, Geom, /*UseAbs=*/false);
}

Tensor conv2dAbs(const Tensor &Input, const Tensor &Weight,
                 const ConvGeometry &Geom) {
  return conv2dImpl(Input, Weight, Tensor(), Geom, /*UseAbs=*/true);
}

Tensor conv2dBackward(const Tensor &Input, const Tensor &Weight,
                      const Tensor &GradOutput, const ConvGeometry &Geom,
                      Tensor &GradWeight, Tensor &GradBias) {
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  const auto [OH, OW] = Geom.convOutput(H, W);
  const int64_t OC = Geom.OutChannels;
  const int64_t KSize = C * Geom.KernelH * Geom.KernelW;

  const Tensor WeightMat = Weight.reshaped({OC, KSize});
  Tensor GradInput({N, C, H, W});
  Tensor Col({KSize, OH * OW});

  for (int64_t Sample = 0; Sample < N; ++Sample) {
    const Tensor GradOutMat =
        Tensor({OC, OH * OW},
               std::vector<double>(GradOutput.data() + Sample * OC * OH * OW,
                                   GradOutput.data() +
                                       (Sample + 1) * OC * OH * OW));
    // Grad wrt weight: dW += dOut * Col^T.
    im2col(Input.data() + Sample * C * H * W, C, H, W, Geom, Col.data());
    Tensor Dw = matmulTransB(GradOutMat, Col); // [OC, KSize]
    GradWeight.addInPlace(Dw.reshaped(Weight.shape()));
    // Grad wrt bias: row sums of dOut.
    for (int64_t Oc = 0; Oc < OC; ++Oc) {
      double Acc = 0.0;
      for (int64_t P = 0; P < OH * OW; ++P)
        Acc += GradOutMat.at(Oc, P);
      GradBias[Oc] += Acc;
    }
    // Grad wrt input: col grad = W^T * dOut, then col2im.
    Tensor ColGrad = matmulTransA(WeightMat, GradOutMat); // [KSize, OH*OW]
    col2im(ColGrad.data(), C, H, W, Geom,
           GradInput.data() + Sample * C * H * W);
  }
  return GradInput;
}

namespace {

Tensor convTranspose2dImpl(const Tensor &Input, const Tensor &Weight,
                           const Tensor &Bias, const ConvGeometry &Geom,
                           bool UseAbs) {
  check(Input.rank() == 4, "convTranspose2d expects NCHW input");
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  check(C == Geom.InChannels, "convTranspose2d channel mismatch");
  const auto [OH, OW] = Geom.convTransposeOutput(H, W);
  const int64_t OC = Geom.OutChannels;

  Tensor Output({N, OC, OH, OW});
  if (Bias.numel() == OC && !UseAbs) {
    for (int64_t Sample = 0; Sample < N; ++Sample)
      for (int64_t Oc = 0; Oc < OC; ++Oc)
        for (int64_t P = 0; P < OH * OW; ++P)
          Output.data()[(Sample * OC + Oc) * OH * OW + P] = Bias[Oc];
  }

  const double *Wd = Weight.data();
  for (int64_t Sample = 0; Sample < N; ++Sample) {
    const double *In = Input.data() + Sample * C * H * W;
    double *Out = Output.data() + Sample * OC * OH * OW;
    for (int64_t Ic = 0; Ic < C; ++Ic) {
      for (int64_t Ih = 0; Ih < H; ++Ih) {
        for (int64_t Iw = 0; Iw < W; ++Iw) {
          const double V = In[(Ic * H + Ih) * W + Iw];
          if (V == 0.0)
            continue;
          for (int64_t Oc = 0; Oc < OC; ++Oc) {
            const double *Kslice =
                Wd + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            for (int64_t Kh = 0; Kh < Geom.KernelH; ++Kh) {
              const int64_t Oh = Ih * Geom.Stride - Geom.Padding + Kh;
              if (Oh < 0 || Oh >= OH)
                continue;
              for (int64_t Kw = 0; Kw < Geom.KernelW; ++Kw) {
                const int64_t Ow = Iw * Geom.Stride - Geom.Padding + Kw;
                if (Ow < 0 || Ow >= OW)
                  continue;
                double Wv = Kslice[Kh * Geom.KernelW + Kw];
                if (UseAbs)
                  Wv = std::fabs(Wv);
                Out[(Oc * OH + Oh) * OW + Ow] += V * Wv;
              }
            }
          }
        }
      }
    }
  }
  return Output;
}

} // namespace

Tensor convTranspose2d(const Tensor &Input, const Tensor &Weight,
                       const Tensor &Bias, const ConvGeometry &Geom) {
  return convTranspose2dImpl(Input, Weight, Bias, Geom, /*UseAbs=*/false);
}

Tensor convTranspose2dAbs(const Tensor &Input, const Tensor &Weight,
                          const ConvGeometry &Geom) {
  return convTranspose2dImpl(Input, Weight, Tensor(), Geom, /*UseAbs=*/true);
}

Tensor convTranspose2dBackward(const Tensor &Input, const Tensor &Weight,
                               const Tensor &GradOutput,
                               const ConvGeometry &Geom, Tensor &GradWeight,
                               Tensor &GradBias) {
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  const auto [OH, OW] = Geom.convTransposeOutput(H, W);
  const int64_t OC = Geom.OutChannels;

  Tensor GradInput({N, C, H, W});
  const double *Wd = Weight.data();
  double *Gw = GradWeight.data();

  for (int64_t Sample = 0; Sample < N; ++Sample) {
    const double *In = Input.data() + Sample * C * H * W;
    const double *Go = GradOutput.data() + Sample * OC * OH * OW;
    double *Gi = GradInput.data() + Sample * C * H * W;
    // Bias gradient: sum over spatial positions.
    for (int64_t Oc = 0; Oc < OC; ++Oc) {
      double Acc = 0.0;
      for (int64_t P = 0; P < OH * OW; ++P)
        Acc += Go[Oc * OH * OW + P];
      GradBias[Oc] += Acc;
    }
    for (int64_t Ic = 0; Ic < C; ++Ic) {
      for (int64_t Ih = 0; Ih < H; ++Ih) {
        for (int64_t Iw = 0; Iw < W; ++Iw) {
          const double V = In[(Ic * H + Ih) * W + Iw];
          double GiAcc = 0.0;
          for (int64_t Oc = 0; Oc < OC; ++Oc) {
            const double *Kslice =
                Wd + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            double *GwSlice =
                Gw + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            for (int64_t Kh = 0; Kh < Geom.KernelH; ++Kh) {
              const int64_t Oh = Ih * Geom.Stride - Geom.Padding + Kh;
              if (Oh < 0 || Oh >= OH)
                continue;
              for (int64_t Kw = 0; Kw < Geom.KernelW; ++Kw) {
                const int64_t Ow = Iw * Geom.Stride - Geom.Padding + Kw;
                if (Ow < 0 || Ow >= OW)
                  continue;
                const double G = Go[(Oc * OH + Oh) * OW + Ow];
                GiAcc += G * Kslice[Kh * Geom.KernelW + Kw];
                GwSlice[Kh * Geom.KernelW + Kw] += G * V;
              }
            }
          }
          Gi[(Ic * H + Ih) * W + Iw] = GiAcc;
        }
      }
    }
  }
  return GradInput;
}

Tensor relu(const Tensor &Input) {
  Tensor Out = Input.clone();
  for (int64_t I = 0; I < Out.numel(); ++I)
    Out[I] = std::max(0.0, Out[I]);
  return Out;
}

Tensor reluMask(const Tensor &Input) {
  Tensor Out(Input.shape());
  for (int64_t I = 0; I < Input.numel(); ++I)
    Out[I] = Input[I] > 0.0 ? 1.0 : 0.0;
  return Out;
}

std::vector<int64_t> argmaxRows(const Tensor &Logits) {
  check(Logits.rank() == 2, "argmaxRows requires rank-2");
  const int64_t Rows = Logits.dim(0), Cols = Logits.dim(1);
  std::vector<int64_t> Result(static_cast<size_t>(Rows), 0);
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Best = 0;
    for (int64_t J = 1; J < Cols; ++J)
      if (Logits.at(I, J) > Logits.at(I, Best))
        Best = J;
    Result[static_cast<size_t>(I)] = Best;
  }
  return Result;
}

Tensor softmaxRows(const Tensor &Logits) {
  check(Logits.rank() == 2, "softmaxRows requires rank-2");
  const int64_t Rows = Logits.dim(0), Cols = Logits.dim(1);
  Tensor Out(Logits.shape());
  for (int64_t I = 0; I < Rows; ++I) {
    double Max = Logits.at(I, 0);
    for (int64_t J = 1; J < Cols; ++J)
      Max = std::max(Max, Logits.at(I, J));
    double Sum = 0.0;
    for (int64_t J = 0; J < Cols; ++J) {
      const double E = std::exp(Logits.at(I, J) - Max);
      Out.at(I, J) = E;
      Sum += E;
    }
    for (int64_t J = 0; J < Cols; ++J)
      Out.at(I, J) /= Sum;
  }
  return Out;
}

} // namespace genprove
