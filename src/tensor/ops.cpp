//===- tensor/ops.cpp -----------------------------------------*- C++ -*-===//

#include "src/tensor/ops.h"

#include "src/parallel/thread_pool.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace genprove {

namespace {

/// k-block size of the tiled GEMM kernels: a [TileK, N] slab of B stays
/// hot in cache while a block of C rows accumulates against it. Purely a
/// cache parameter — every C element still accumulates in ascending-k
/// order, so tiling never changes the floating-point result.
constexpr int64_t GemmTileK = 256;

/// C[IBegin..IEnd) += A[IBegin..IEnd) * B for row-major A [M,K], B [K,N].
///
/// Structure: 4 C-row streams against 4 consecutive B rows per step. The
/// k-unroll-by-4 keeps each C element in a register across 4 multiply-adds
/// (one C load + store per 4 k-steps instead of per k-step), and the 4
/// A-broadcast x B-row streams saturate the vector units without asking
/// the compiler to register-promote accumulator arrays (which GCC 12
/// declines to do — measured slower than the naive loop). Dense inner
/// loop — no zero-skip branch (see ISSUE 4: the branch was a
/// misprediction pessimization on dense data).
///
/// Determinism: every C element accumulates in ascending-k order and the
/// dispatch wrappers below pin fp-contract=off, so the result is
/// bit-identical to the naive i-k-j loop on every ISA path.
__attribute__((always_inline)) inline void
gemmRows4Body(const double *__restrict__ Ad, const double *__restrict__ Bd,
              double *__restrict__ Cd, int64_t IBegin, int64_t IEnd,
              int64_t K, int64_t N) {
  for (int64_t Kk = 0; Kk < K; Kk += GemmTileK) {
    const int64_t KEnd = std::min(K, Kk + GemmTileK);
    int64_t I = IBegin;
    for (; I + 4 <= IEnd; I += 4) {
      const double *__restrict__ Ar[4];
      double *__restrict__ Cr[4];
      for (int R = 0; R < 4; ++R) {
        Ar[R] = Ad + (I + R) * K;
        Cr[R] = Cd + (I + R) * N;
      }
      int64_t Kc = Kk;
      for (; Kc + 4 <= KEnd; Kc += 4) {
        double Av[4][4];
        for (int R = 0; R < 4; ++R)
          for (int U = 0; U < 4; ++U)
            Av[R][U] = Ar[R][Kc + U];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          double Bv[4];
          for (int U = 0; U < 4; ++U)
            Bv[U] = Br[U * N + J];
          for (int R = 0; R < 4; ++R) {
            double Acc = Cr[R][J];
            for (int U = 0; U < 4; ++U)
              Acc += Av[R][U] * Bv[U];
            Cr[R][J] = Acc;
          }
        }
      }
      for (; Kc < KEnd; ++Kc) {
        double Av[4];
        for (int R = 0; R < 4; ++R)
          Av[R] = Ar[R][Kc];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          const double Bv = Br[J];
          for (int R = 0; R < 4; ++R)
            Cr[R][J] += Av[R] * Bv;
        }
      }
    }
    // Leftover rows (M % 4, and the small-M matmuls propagation issues for
    // region coefficient blocks): still k-unrolled by 4 so each C element
    // is loaded and stored once per 4 k-steps.
    for (; I < IEnd; ++I) {
      const double *__restrict__ Arow = Ad + I * K;
      double *__restrict__ Crow = Cd + I * N;
      int64_t Kc = Kk;
      for (; Kc + 4 <= KEnd; Kc += 4) {
        const double Av0 = Arow[Kc], Av1 = Arow[Kc + 1], Av2 = Arow[Kc + 2],
                     Av3 = Arow[Kc + 3];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          double Acc = Crow[J];
          Acc += Av0 * Br[J];
          Acc += Av1 * Br[N + J];
          Acc += Av2 * Br[2 * N + J];
          Acc += Av3 * Br[3 * N + J];
          Crow[J] = Acc;
        }
      }
      for (; Kc < KEnd; ++Kc) {
        const double Av = Arow[Kc];
        const double *__restrict__ Brow = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J)
          Crow[J] += Av * Brow[J];
      }
    }
  }
}

/// Same streaming structure for C[IBegin..IEnd) += A^T * B with A [K,M]:
/// the A operand is read column-wise (stride M) instead of row-wise.
/// Reorganized from the old k-outer form (which a row-parallel split
/// would race on) to i-block-parallel; per C element the accumulation is
/// still ascending-k.
__attribute__((always_inline)) inline void
gemmRows4TransABody(const double *__restrict__ Ad,
                    const double *__restrict__ Bd, double *__restrict__ Cd,
                    int64_t IBegin, int64_t IEnd, int64_t K, int64_t M,
                    int64_t N) {
  for (int64_t Kk = 0; Kk < K; Kk += GemmTileK) {
    const int64_t KEnd = std::min(K, Kk + GemmTileK);
    int64_t I = IBegin;
    for (; I + 4 <= IEnd; I += 4) {
      double *__restrict__ Cr[4];
      for (int R = 0; R < 4; ++R)
        Cr[R] = Cd + (I + R) * N;
      int64_t Kc = Kk;
      for (; Kc + 4 <= KEnd; Kc += 4) {
        double Av[4][4];
        for (int U = 0; U < 4; ++U)
          for (int R = 0; R < 4; ++R)
            Av[R][U] = Ad[(Kc + U) * M + I + R];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          double Bv[4];
          for (int U = 0; U < 4; ++U)
            Bv[U] = Br[U * N + J];
          for (int R = 0; R < 4; ++R) {
            double Acc = Cr[R][J];
            for (int U = 0; U < 4; ++U)
              Acc += Av[R][U] * Bv[U];
            Cr[R][J] = Acc;
          }
        }
      }
      for (; Kc < KEnd; ++Kc) {
        const double *__restrict__ Acol = Ad + Kc * M + I;
        double Av[4];
        for (int R = 0; R < 4; ++R)
          Av[R] = Acol[R];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          const double Bv = Br[J];
          for (int R = 0; R < 4; ++R)
            Cr[R][J] += Av[R] * Bv;
        }
      }
    }
    for (; I < IEnd; ++I) {
      double *__restrict__ Crow = Cd + I * N;
      int64_t Kc = Kk;
      for (; Kc + 4 <= KEnd; Kc += 4) {
        const double Av0 = Ad[Kc * M + I], Av1 = Ad[(Kc + 1) * M + I],
                     Av2 = Ad[(Kc + 2) * M + I], Av3 = Ad[(Kc + 3) * M + I];
        const double *__restrict__ Br = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J) {
          double Acc = Crow[J];
          Acc += Av0 * Br[J];
          Acc += Av1 * Br[N + J];
          Acc += Av2 * Br[2 * N + J];
          Acc += Av3 * Br[3 * N + J];
          Crow[J] = Acc;
        }
      }
      for (; Kc < KEnd; ++Kc) {
        const double Av = Ad[Kc * M + I];
        const double *__restrict__ Brow = Bd + Kc * N;
        for (int64_t J = 0; J < N; ++J)
          Crow[J] += Av * Brow[J];
      }
    }
  }
}

// The GEMM body is compiled twice — once for the build's baseline ISA and
// once for AVX-512 — and dispatched per-call on cpuid. Both variants pin
// fp-contract=off: FMA contraction (GCC's default at -O3 when the ISA has
// fused multiply-add) would drop the intermediate rounding and break the
// bit-for-bit match with the scalar reference, which the determinism
// contract (ISSUE 4) requires across thread counts AND ISA paths.
#if defined(__GNUC__) && defined(__x86_64__) && !defined(__clang__)
#define GENPROVE_GEMM_MULTIVERSION 1
#else
#define GENPROVE_GEMM_MULTIVERSION 0
#endif

__attribute__((optimize("fp-contract=off"))) void
gemmRowBlockPlain(const double *Ad, const double *Bd, double *Cd,
                  int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  gemmRows4Body(Ad, Bd, Cd, IBegin, IEnd, K, N);
}

__attribute__((optimize("fp-contract=off"))) void
gemmTransARowBlockPlain(const double *Ad, const double *Bd, double *Cd,
                        int64_t IBegin, int64_t IEnd, int64_t K, int64_t M,
                        int64_t N) {
  gemmRows4TransABody(Ad, Bd, Cd, IBegin, IEnd, K, M, N);
}

#if GENPROVE_GEMM_MULTIVERSION

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
gemmRowBlockAvx512(const double *Ad, const double *Bd, double *Cd,
                   int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  gemmRows4Body(Ad, Bd, Cd, IBegin, IEnd, K, N);
}

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
gemmTransARowBlockAvx512(const double *Ad, const double *Bd, double *Cd,
                         int64_t IBegin, int64_t IEnd, int64_t K, int64_t M,
                         int64_t N) {
  gemmRows4TransABody(Ad, Bd, Cd, IBegin, IEnd, K, M, N);
}

#endif // GENPROVE_GEMM_MULTIVERSION

/// True when the AVX-512 clones should run: checked once, overridable with
/// GENPROVE_NO_AVX512=1 so the portable path stays testable on wide
/// machines (CI exercises both).
bool useAvx512() {
#if GENPROVE_GEMM_MULTIVERSION
  static const bool Use = __builtin_cpu_supports("avx512f") &&
                          std::getenv("GENPROVE_NO_AVX512") == nullptr;
  return Use;
#else
  return false;
#endif
}

void gemmRowBlock(const double *Ad, const double *Bd, double *Cd,
                  int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
#if GENPROVE_GEMM_MULTIVERSION
  if (useAvx512())
    return gemmRowBlockAvx512(Ad, Bd, Cd, IBegin, IEnd, K, N);
#endif
  gemmRowBlockPlain(Ad, Bd, Cd, IBegin, IEnd, K, N);
}

void gemmTransARowBlock(const double *Ad, const double *Bd, double *Cd,
                        int64_t IBegin, int64_t IEnd, int64_t K, int64_t M,
                        int64_t N) {
#if GENPROVE_GEMM_MULTIVERSION
  if (useAvx512())
    return gemmTransARowBlockAvx512(Ad, Bd, Cd, IBegin, IEnd, K, M, N);
#endif
  gemmTransARowBlockPlain(Ad, Bd, Cd, IBegin, IEnd, K, M, N);
}

/// Chunk grain for the 4-row-blocked GEMMs: the default grain would hand
/// out 1-2 row chunks for small M and starve the 4-row fast path (row
/// partitioning can't change FP results — every C element lives in
/// exactly one row — so the grain is a pure perf knob here, still a pure
/// function of M for reproducible chunking).
int64_t gemmGrain(int64_t M) {
  const int64_t Grain = (ThreadPool::defaultGrain(M) + 3) / 4 * 4;
  return std::max<int64_t>(4, Grain);
}

/// C[IBegin..IEnd) = A * B^T rows for A [M,K], B [N,K]: dot products,
/// 4-way unrolled over j so each A row pass feeds four accumulators.
void gemmTransBRowBlock(const double *Ad, const double *Bd, double *Cd,
                        int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  for (int64_t I = IBegin; I < IEnd; ++I) {
    const double *Arow = Ad + I * K;
    double *Crow = Cd + I * N;
    int64_t J = 0;
    for (; J + 4 <= N; J += 4) {
      const double *B0 = Bd + J * K, *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
      double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk) {
        const double Av = Arow[Kk];
        S0 += Av * B0[Kk];
        S1 += Av * B1[Kk];
        S2 += Av * B2[Kk];
        S3 += Av * B3[Kk];
      }
      Crow[J] = S0;
      Crow[J + 1] = S1;
      Crow[J + 2] = S2;
      Crow[J + 3] = S3;
    }
    for (; J < N; ++J) {
      const double *Brow = Bd + J * K;
      double Acc = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        Acc += Arow[Kk] * Brow[Kk];
      Crow[J] = Acc;
    }
  }
}

/// gemmTransBRowBlock with the bias folded into the store: Crow[J] =
/// dot + Biasd[J]. The dot accumulates in the identical ascending-k
/// order and the bias add is the same double operation the unfused
/// separate pass performs after a store/load round-trip (which is exact),
/// so the result is bit-identical while touching C once instead of twice.
__attribute__((always_inline)) inline void
gemmTransBBiasBody(const double *__restrict__ Ad,
                   const double *__restrict__ Bd,
                   const double *__restrict__ Biasd, double *__restrict__ Cd,
                   int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  for (int64_t I = IBegin; I < IEnd; ++I) {
    const double *Arow = Ad + I * K;
    double *Crow = Cd + I * N;
    int64_t J = 0;
    for (; J + 4 <= N; J += 4) {
      const double *B0 = Bd + J * K, *B1 = B0 + K, *B2 = B1 + K, *B3 = B2 + K;
      double S0 = 0.0, S1 = 0.0, S2 = 0.0, S3 = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk) {
        const double Av = Arow[Kk];
        S0 += Av * B0[Kk];
        S1 += Av * B1[Kk];
        S2 += Av * B2[Kk];
        S3 += Av * B3[Kk];
      }
      Crow[J] = S0 + Biasd[J];
      Crow[J + 1] = S1 + Biasd[J + 1];
      Crow[J + 2] = S2 + Biasd[J + 2];
      Crow[J + 3] = S3 + Biasd[J + 3];
    }
    for (; J < N; ++J) {
      const double *Brow = Bd + J * K;
      double Acc = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk)
        Acc += Arow[Kk] * Brow[Kk];
      Crow[J] = Acc + Biasd[J];
    }
  }
}

/// The fused box/zonotope affine kernel: one pass over the weight rows
/// produces the center dot (against W), the radius dot (against |W|) and
/// optionally the magnitude dot (against |W|) per output element, with
/// |W| taken by std::fabs in registers. Each accumulator is a plain
/// ascending-k chain, so every output is bit-identical to the separate
/// matmulTransB calls that stream W two to four times.
template <bool WithMag>
__attribute__((always_inline)) inline void
fusedBoxAffineBody(const double *__restrict__ Cen,
                   const double *__restrict__ Rad,
                   const double *__restrict__ Mag,
                   const double *__restrict__ Wd,
                   const double *__restrict__ Biasd, double *__restrict__ OutC,
                   double *__restrict__ OutR, double *__restrict__ OutM,
                   int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  for (int64_t I = IBegin; I < IEnd; ++I) {
    const double *__restrict__ Crow = Cen + I * K;
    const double *__restrict__ Rrow = Rad + I * K;
    const double *__restrict__ Mrow = WithMag ? Mag + I * K : nullptr;
    double *__restrict__ OC = OutC + I * N;
    double *__restrict__ OR = OutR + I * N;
    double *__restrict__ OM = WithMag ? OutM + I * N : nullptr;
    int64_t J = 0;
    // Two weight-row streams per step: six (or four) live accumulator
    // chains saturate the FP ports without spilling.
    for (; J + 2 <= N; J += 2) {
      const double *__restrict__ W0 = Wd + J * K;
      const double *__restrict__ W1 = W0 + K;
      double Sc0 = 0.0, Sc1 = 0.0, Sr0 = 0.0, Sr1 = 0.0;
      double Sm0 = 0.0, Sm1 = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk) {
        const double Cv = Crow[Kk], Rv = Rrow[Kk];
        const double W0v = W0[Kk], W1v = W1[Kk];
        const double A0v = std::fabs(W0v), A1v = std::fabs(W1v);
        Sc0 += Cv * W0v;
        Sc1 += Cv * W1v;
        Sr0 += Rv * A0v;
        Sr1 += Rv * A1v;
        if (WithMag) {
          const double Mv = Mrow[Kk];
          Sm0 += Mv * A0v;
          Sm1 += Mv * A1v;
        }
      }
      OC[J] = Sc0 + Biasd[J];
      OC[J + 1] = Sc1 + Biasd[J + 1];
      OR[J] = Sr0;
      OR[J + 1] = Sr1;
      if (WithMag) {
        OM[J] = Sm0;
        OM[J + 1] = Sm1;
      }
    }
    for (; J < N; ++J) {
      const double *__restrict__ Wrow = Wd + J * K;
      double Sc = 0.0, Sr = 0.0, Sm = 0.0;
      for (int64_t Kk = 0; Kk < K; ++Kk) {
        const double Wv = Wrow[Kk];
        const double Absv = std::fabs(Wv);
        Sc += Crow[Kk] * Wv;
        Sr += Rrow[Kk] * Absv;
        if (WithMag)
          Sm += Mrow[Kk] * Absv;
      }
      OC[J] = Sc + Biasd[J];
      OR[J] = Sr;
      if (WithMag)
        OM[J] = Sm;
    }
  }
}

/// The transposed-weight fused body: Wt is W^T [K, N], so for each input
/// element k the three accumulator rows advance over the contiguous
/// output axis — independent per-output ascending-k chains that the
/// vectorizer can run in lanes (the dot-product form above keeps the
/// chain in one scalar register and cannot be vectorized under strict FP
/// semantics). The bias lands after the complete dot, exactly like the
/// `S + Bias[j]` store of the transB form, so the two kernels are
/// bit-identical.
template <bool WithMag>
__attribute__((always_inline)) inline void
fusedBoxAffineTBody(const double *__restrict__ Cen,
                    const double *__restrict__ Rad,
                    const double *__restrict__ Mag,
                    const double *__restrict__ Wtd,
                    const double *__restrict__ Biasd,
                    double *__restrict__ OutC, double *__restrict__ OutR,
                    double *__restrict__ OutM, int64_t IBegin, int64_t IEnd,
                    int64_t K, int64_t N) {
  for (int64_t I = IBegin; I < IEnd; ++I) {
    const double *__restrict__ Crow = Cen + I * K;
    const double *__restrict__ Rrow = Rad + I * K;
    const double *__restrict__ Mrow = WithMag ? Mag + I * K : nullptr;
    double *__restrict__ OC = OutC + I * N;
    double *__restrict__ OR = OutR + I * N;
    double *__restrict__ OM = WithMag ? OutM + I * N : nullptr;
    for (int64_t J = 0; J < N; ++J) {
      OC[J] = 0.0;
      OR[J] = 0.0;
      if (WithMag)
        OM[J] = 0.0;
    }
    for (int64_t Kk = 0; Kk < K; ++Kk) {
      const double Cv = Crow[Kk];
      const double Rv = Rrow[Kk];
      const double Mv = WithMag ? Mrow[Kk] : 0.0;
      const double *__restrict__ Wt = Wtd + Kk * N;
      for (int64_t J = 0; J < N; ++J) {
        const double Wv = Wt[J];
        const double Av = std::fabs(Wv);
        OC[J] += Cv * Wv;
        OR[J] += Rv * Av;
        if (WithMag)
          OM[J] += Mv * Av;
      }
    }
    for (int64_t J = 0; J < N; ++J)
      OC[J] += Biasd[J];
  }
}

/// gemmRows-style transposed GEMM with the bias folded in after the full
/// dot: C[i,:] = sum_k A[i,k] * Wt[k,:], then += Bias. Bit-identical to
/// matmulTransBBias / matmulTransB + bias pass.
__attribute__((always_inline)) inline void
gemmTransTBiasBody(const double *__restrict__ Ad,
                   const double *__restrict__ Wtd,
                   const double *__restrict__ Biasd, double *__restrict__ Cd,
                   int64_t IBegin, int64_t IEnd, int64_t K, int64_t N) {
  for (int64_t I = IBegin; I < IEnd; ++I) {
    const double *__restrict__ Arow = Ad + I * K;
    double *__restrict__ Crow = Cd + I * N;
    for (int64_t J = 0; J < N; ++J)
      Crow[J] = 0.0;
    for (int64_t Kk = 0; Kk < K; ++Kk) {
      const double Av = Arow[Kk];
      const double *__restrict__ Wt = Wtd + Kk * N;
      for (int64_t J = 0; J < N; ++J)
        Crow[J] += Av * Wt[J];
    }
    for (int64_t J = 0; J < N; ++J)
      Crow[J] += Biasd[J];
  }
}

// Like the GEMM bodies above, the fused kernels compile once for the
// baseline ISA and once for AVX-512, both with fp-contract=off: an FMA
// contraction would single-round the multiply-add and break the bitwise
// match with the unfused matmulTransB reference.
__attribute__((optimize("fp-contract=off"))) void
gemmTransBBiasBlockPlain(const double *Ad, const double *Bd,
                         const double *Biasd, double *Cd, int64_t IBegin,
                         int64_t IEnd, int64_t K, int64_t N) {
  gemmTransBBiasBody(Ad, Bd, Biasd, Cd, IBegin, IEnd, K, N);
}

__attribute__((optimize("fp-contract=off"))) void
fusedBoxRowBlockPlain(const double *Cen, const double *Rad, const double *Mag,
                      const double *Wd, const double *Biasd, double *OutC,
                      double *OutR, double *OutM, int64_t IBegin, int64_t IEnd,
                      int64_t K, int64_t N) {
  if (Mag)
    fusedBoxAffineBody<true>(Cen, Rad, Mag, Wd, Biasd, OutC, OutR, OutM,
                             IBegin, IEnd, K, N);
  else
    fusedBoxAffineBody<false>(Cen, Rad, nullptr, Wd, Biasd, OutC, OutR,
                              nullptr, IBegin, IEnd, K, N);
}

__attribute__((optimize("fp-contract=off"))) void
fusedBoxTRowBlockPlain(const double *Cen, const double *Rad,
                       const double *Mag, const double *Wtd,
                       const double *Biasd, double *OutC, double *OutR,
                       double *OutM, int64_t IBegin, int64_t IEnd, int64_t K,
                       int64_t N) {
  if (Mag)
    fusedBoxAffineTBody<true>(Cen, Rad, Mag, Wtd, Biasd, OutC, OutR, OutM,
                              IBegin, IEnd, K, N);
  else
    fusedBoxAffineTBody<false>(Cen, Rad, nullptr, Wtd, Biasd, OutC, OutR,
                               nullptr, IBegin, IEnd, K, N);
}

__attribute__((optimize("fp-contract=off"))) void
gemmTransTBiasBlockPlain(const double *Ad, const double *Wtd,
                         const double *Biasd, double *Cd, int64_t IBegin,
                         int64_t IEnd, int64_t K, int64_t N) {
  gemmTransTBiasBody(Ad, Wtd, Biasd, Cd, IBegin, IEnd, K, N);
}

#if GENPROVE_GEMM_MULTIVERSION

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
fusedBoxTRowBlockAvx512(const double *Cen, const double *Rad,
                        const double *Mag, const double *Wtd,
                        const double *Biasd, double *OutC, double *OutR,
                        double *OutM, int64_t IBegin, int64_t IEnd, int64_t K,
                        int64_t N) {
  if (Mag)
    fusedBoxAffineTBody<true>(Cen, Rad, Mag, Wtd, Biasd, OutC, OutR, OutM,
                              IBegin, IEnd, K, N);
  else
    fusedBoxAffineTBody<false>(Cen, Rad, nullptr, Wtd, Biasd, OutC, OutR,
                               nullptr, IBegin, IEnd, K, N);
}

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
gemmTransTBiasBlockAvx512(const double *Ad, const double *Wtd,
                          const double *Biasd, double *Cd, int64_t IBegin,
                          int64_t IEnd, int64_t K, int64_t N) {
  gemmTransTBiasBody(Ad, Wtd, Biasd, Cd, IBegin, IEnd, K, N);
}

#endif // GENPROVE_GEMM_MULTIVERSION

// The dot-product-form kernels (transB layout) deliberately have no
// AVX-512 clones: their scalar accumulator chains gain nothing from the
// wider ISA (measured slower — the clone trades the tuned baseline
// codegen for vector setup it can never use), matching the plain-only
// gemmTransBRowBlock.
void gemmTransBBiasBlock(const double *Ad, const double *Bd,
                         const double *Biasd, double *Cd, int64_t IBegin,
                         int64_t IEnd, int64_t K, int64_t N) {
  gemmTransBBiasBlockPlain(Ad, Bd, Biasd, Cd, IBegin, IEnd, K, N);
}

void fusedBoxRowBlock(const double *Cen, const double *Rad, const double *Mag,
                      const double *Wd, const double *Biasd, double *OutC,
                      double *OutR, double *OutM, int64_t IBegin, int64_t IEnd,
                      int64_t K, int64_t N) {
  fusedBoxRowBlockPlain(Cen, Rad, Mag, Wd, Biasd, OutC, OutR, OutM, IBegin,
                        IEnd, K, N);
}

void fusedBoxTRowBlock(const double *Cen, const double *Rad,
                       const double *Mag, const double *Wtd,
                       const double *Biasd, double *OutC, double *OutR,
                       double *OutM, int64_t IBegin, int64_t IEnd, int64_t K,
                       int64_t N) {
#if GENPROVE_GEMM_MULTIVERSION
  if (useAvx512())
    return fusedBoxTRowBlockAvx512(Cen, Rad, Mag, Wtd, Biasd, OutC, OutR,
                                   OutM, IBegin, IEnd, K, N);
#endif
  fusedBoxTRowBlockPlain(Cen, Rad, Mag, Wtd, Biasd, OutC, OutR, OutM, IBegin,
                         IEnd, K, N);
}

void gemmTransTBiasBlock(const double *Ad, const double *Wtd,
                         const double *Biasd, double *Cd, int64_t IBegin,
                         int64_t IEnd, int64_t K, int64_t N) {
#if GENPROVE_GEMM_MULTIVERSION
  if (useAvx512())
    return gemmTransTBiasBlockAvx512(Ad, Wtd, Biasd, Cd, IBegin, IEnd, K, N);
#endif
  gemmTransTBiasBlockPlain(Ad, Wtd, Biasd, Cd, IBegin, IEnd, K, N);
}

} // namespace

Tensor matmul(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmul requires rank-2 tensors");
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(1);
  check(B.dim(0) == K, "matmul inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  parallelFor(M, gemmGrain(M), [&](int64_t IBegin, int64_t IEnd) {
    gemmRowBlock(Ad, Bd, Cd, IBegin, IEnd, K, N);
  });
  return C;
}

Tensor matmulTransA(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmulTransA requires rank-2");
  const int64_t K = A.dim(0), M = A.dim(1), N = B.dim(1);
  check(B.dim(0) == K, "matmulTransA inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  parallelFor(M, gemmGrain(M), [&](int64_t IBegin, int64_t IEnd) {
    gemmTransARowBlock(Ad, Bd, Cd, IBegin, IEnd, K, M, N);
  });
  return C;
}

Tensor matmulTransB(const Tensor &A, const Tensor &B) {
  check(A.rank() == 2 && B.rank() == 2, "matmulTransB requires rank-2");
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(0);
  check(B.dim(1) == K, "matmulTransB inner dimension mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  double *Cd = C.data();
  parallelFor(M, [&](int64_t IBegin, int64_t IEnd) {
    gemmTransBRowBlock(Ad, Bd, Cd, IBegin, IEnd, K, N);
  });
  return C;
}

Tensor matmulTransBBias(const Tensor &A, const Tensor &B, const Tensor &Bias) {
  check(A.rank() == 2 && B.rank() == 2, "matmulTransBBias requires rank-2");
  const int64_t M = A.dim(0), K = A.dim(1), N = B.dim(0);
  check(B.dim(1) == K, "matmulTransBBias inner dimension mismatch");
  check(Bias.numel() == N, "matmulTransBBias bias length mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Bd = B.data();
  const double *Biasd = Bias.data();
  double *Cd = C.data();
  parallelFor(M, [&](int64_t IBegin, int64_t IEnd) {
    gemmTransBBiasBlock(Ad, Bd, Biasd, Cd, IBegin, IEnd, K, N);
  });
  return C;
}

void fusedBoxAffineTransB(const Tensor &Centers, const Tensor &Radii,
                          const Tensor *Mags, const Tensor &W,
                          const Tensor &Bias, Tensor &OutC, Tensor &OutR,
                          Tensor *OutMags) {
  check(Centers.rank() == 2 && Radii.rank() == 2 && W.rank() == 2,
        "fusedBoxAffineTransB requires rank-2");
  const int64_t M = Centers.dim(0), K = Centers.dim(1), N = W.dim(0);
  check(W.dim(1) == K, "fusedBoxAffineTransB weight dimension mismatch");
  check(Radii.dim(0) == M && Radii.dim(1) == K,
        "fusedBoxAffineTransB radius shape mismatch");
  check(Bias.numel() == N, "fusedBoxAffineTransB bias length mismatch");
  check(!Mags || (Mags->dim(0) == M && Mags->dim(1) == K),
        "fusedBoxAffineTransB magnitude shape mismatch");
  check(!Mags == !OutMags, "fusedBoxAffineTransB needs OutMags iff Mags");
  OutC = Tensor({M, N});
  OutR = Tensor({M, N});
  if (OutMags)
    *OutMags = Tensor({M, N});
  const double *Cen = Centers.data();
  const double *Rad = Radii.data();
  const double *Mag = Mags ? Mags->data() : nullptr;
  const double *Wd = W.data();
  const double *Biasd = Bias.data();
  double *OC = OutC.data();
  double *OR = OutR.data();
  double *OM = OutMags ? OutMags->data() : nullptr;
  parallelFor(M, [&](int64_t IBegin, int64_t IEnd) {
    fusedBoxRowBlock(Cen, Rad, Mag, Wd, Biasd, OC, OR, OM, IBegin, IEnd, K,
                     N);
  });
}

void fusedBoxAffineTransT(const Tensor &Centers, const Tensor &Radii,
                          const Tensor *Mags, const Tensor &Wt,
                          const Tensor &Bias, Tensor &OutC, Tensor &OutR,
                          Tensor *OutMags) {
  check(Centers.rank() == 2 && Radii.rank() == 2 && Wt.rank() == 2,
        "fusedBoxAffineTransT requires rank-2");
  const int64_t M = Centers.dim(0), K = Centers.dim(1), N = Wt.dim(1);
  check(Wt.dim(0) == K, "fusedBoxAffineTransT weight dimension mismatch");
  check(Radii.dim(0) == M && Radii.dim(1) == K,
        "fusedBoxAffineTransT radius shape mismatch");
  check(Bias.numel() == N, "fusedBoxAffineTransT bias length mismatch");
  check(!Mags || (Mags->dim(0) == M && Mags->dim(1) == K),
        "fusedBoxAffineTransT magnitude shape mismatch");
  check(!Mags == !OutMags, "fusedBoxAffineTransT needs OutMags iff Mags");
  OutC = Tensor({M, N});
  OutR = Tensor({M, N});
  if (OutMags)
    *OutMags = Tensor({M, N});
  const double *Cen = Centers.data();
  const double *Rad = Radii.data();
  const double *Mag = Mags ? Mags->data() : nullptr;
  const double *Wtd = Wt.data();
  const double *Biasd = Bias.data();
  double *OC = OutC.data();
  double *OR = OutR.data();
  double *OM = OutMags ? OutMags->data() : nullptr;
  parallelFor(M, [&](int64_t IBegin, int64_t IEnd) {
    fusedBoxTRowBlock(Cen, Rad, Mag, Wtd, Biasd, OC, OR, OM, IBegin, IEnd, K,
                      N);
  });
}

Tensor matmulTransTBias(const Tensor &A, const Tensor &Wt,
                        const Tensor &Bias) {
  check(A.rank() == 2 && Wt.rank() == 2, "matmulTransTBias requires rank-2");
  const int64_t M = A.dim(0), K = A.dim(1), N = Wt.dim(1);
  check(Wt.dim(0) == K, "matmulTransTBias inner dimension mismatch");
  check(Bias.numel() == N, "matmulTransTBias bias length mismatch");
  Tensor C({M, N});
  const double *Ad = A.data();
  const double *Wtd = Wt.data();
  const double *Biasd = Bias.data();
  double *Cd = C.data();
  parallelFor(M, [&](int64_t IBegin, int64_t IEnd) {
    gemmTransTBiasBlock(Ad, Wtd, Biasd, Cd, IBegin, IEnd, K, N);
  });
  return C;
}

std::pair<int64_t, int64_t> ConvGeometry::convOutput(int64_t H,
                                                     int64_t W) const {
  const int64_t OH = (H + 2 * Padding - KernelH) / Stride + 1;
  const int64_t OW = (W + 2 * Padding - KernelW) / Stride + 1;
  return {OH, OW};
}

std::pair<int64_t, int64_t>
ConvGeometry::convTransposeOutput(int64_t H, int64_t W) const {
  const int64_t OH = (H - 1) * Stride - 2 * Padding + KernelH + OutputPadding;
  const int64_t OW = (W - 1) * Stride - 2 * Padding + KernelW + OutputPadding;
  return {OH, OW};
}

namespace {

/// Unfold one sample [C, H, W] into a [C*KH*KW, OH*OW] column matrix.
void im2col(const double *Input, int64_t C, int64_t H, int64_t W,
            const ConvGeometry &G, double *Col) {
  const auto [OH, OW] = G.convOutput(H, W);
  for (int64_t Ch = 0; Ch < C; ++Ch) {
    for (int64_t Kh = 0; Kh < G.KernelH; ++Kh) {
      for (int64_t Kw = 0; Kw < G.KernelW; ++Kw) {
        const int64_t Row = (Ch * G.KernelH + Kh) * G.KernelW + Kw;
        double *ColRow = Col + Row * OH * OW;
        for (int64_t Oh = 0; Oh < OH; ++Oh) {
          const int64_t Ih = Oh * G.Stride - G.Padding + Kh;
          for (int64_t Ow = 0; Ow < OW; ++Ow) {
            const int64_t Iw = Ow * G.Stride - G.Padding + Kw;
            double V = 0.0;
            if (Ih >= 0 && Ih < H && Iw >= 0 && Iw < W)
              V = Input[(Ch * H + Ih) * W + Iw];
            ColRow[Oh * OW + Ow] = V;
          }
        }
      }
    }
  }
}

/// Fold a column matrix back into a [C, H, W] sample, accumulating overlaps.
void col2im(const double *Col, int64_t C, int64_t H, int64_t W,
            const ConvGeometry &G, double *Output) {
  const auto [OH, OW] = G.convOutput(H, W);
  std::fill(Output, Output + C * H * W, 0.0);
  for (int64_t Ch = 0; Ch < C; ++Ch) {
    for (int64_t Kh = 0; Kh < G.KernelH; ++Kh) {
      for (int64_t Kw = 0; Kw < G.KernelW; ++Kw) {
        const int64_t Row = (Ch * G.KernelH + Kh) * G.KernelW + Kw;
        const double *ColRow = Col + Row * OH * OW;
        for (int64_t Oh = 0; Oh < OH; ++Oh) {
          const int64_t Ih = Oh * G.Stride - G.Padding + Kh;
          if (Ih < 0 || Ih >= H)
            continue;
          for (int64_t Ow = 0; Ow < OW; ++Ow) {
            const int64_t Iw = Ow * G.Stride - G.Padding + Kw;
            if (Iw < 0 || Iw >= W)
              continue;
            Output[(Ch * H + Ih) * W + Iw] += ColRow[Oh * OW + Ow];
          }
        }
      }
    }
  }
}

Tensor conv2dImpl(const Tensor &Input, const Tensor &Weight,
                  const Tensor &Bias, const ConvGeometry &Geom, bool UseAbs) {
  check(Input.rank() == 4, "conv2d expects NCHW input");
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  check(C == Geom.InChannels, "conv2d channel mismatch");
  const auto [OH, OW] = Geom.convOutput(H, W);
  const int64_t OC = Geom.OutChannels;
  const int64_t KSize = C * Geom.KernelH * Geom.KernelW;

  Tensor WeightMat = Weight.reshaped({OC, KSize});
  if (UseAbs) {
    Tensor AbsW = WeightMat.clone();
    for (int64_t I = 0; I < AbsW.numel(); ++I)
      AbsW[I] = std::fabs(AbsW[I]);
    WeightMat = AbsW;
  }

  // Samples are independent: parallelize over the batch with one im2col
  // scratch buffer per chunk. For a single sample the per-sample GEMM
  // fans out over its output-channel rows instead.
  Tensor Output({N, OC, OH, OW});
  parallelFor(N, 1, [&](int64_t SBegin, int64_t SEnd) {
    Tensor Col({KSize, OH * OW});
    for (int64_t Sample = SBegin; Sample < SEnd; ++Sample) {
      im2col(Input.data() + Sample * C * H * W, C, H, W, Geom, Col.data());
      Tensor Out = matmul(WeightMat, Col); // [OC, OH*OW]
      double *Dst = Output.data() + Sample * OC * OH * OW;
      const double *Src = Out.data();
      if (Bias.numel() == OC && !UseAbs) {
        for (int64_t Oc = 0; Oc < OC; ++Oc) {
          const double B = Bias[Oc];
          for (int64_t P = 0; P < OH * OW; ++P)
            Dst[Oc * OH * OW + P] = Src[Oc * OH * OW + P] + B;
        }
      } else {
        std::copy(Src, Src + OC * OH * OW, Dst);
      }
    }
  });
  return Output;
}

} // namespace

Tensor conv2d(const Tensor &Input, const Tensor &Weight, const Tensor &Bias,
              const ConvGeometry &Geom) {
  return conv2dImpl(Input, Weight, Bias, Geom, /*UseAbs=*/false);
}

Tensor conv2dAbs(const Tensor &Input, const Tensor &Weight,
                 const ConvGeometry &Geom) {
  return conv2dImpl(Input, Weight, Tensor(), Geom, /*UseAbs=*/true);
}

Tensor conv2dBackward(const Tensor &Input, const Tensor &Weight,
                      const Tensor &GradOutput, const ConvGeometry &Geom,
                      Tensor &GradWeight, Tensor &GradBias) {
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  const auto [OH, OW] = Geom.convOutput(H, W);
  const int64_t OC = Geom.OutChannels;
  const int64_t KSize = C * Geom.KernelH * Geom.KernelW;

  const Tensor WeightMat = Weight.reshaped({OC, KSize});
  Tensor GradInput({N, C, H, W});
  Tensor Col({KSize, OH * OW});

  for (int64_t Sample = 0; Sample < N; ++Sample) {
    const Tensor GradOutMat =
        Tensor({OC, OH * OW},
               std::vector<double>(GradOutput.data() + Sample * OC * OH * OW,
                                   GradOutput.data() +
                                       (Sample + 1) * OC * OH * OW));
    // Grad wrt weight: dW += dOut * Col^T.
    im2col(Input.data() + Sample * C * H * W, C, H, W, Geom, Col.data());
    Tensor Dw = matmulTransB(GradOutMat, Col); // [OC, KSize]
    GradWeight.addInPlace(Dw.reshaped(Weight.shape()));
    // Grad wrt bias: row sums of dOut.
    for (int64_t Oc = 0; Oc < OC; ++Oc) {
      double Acc = 0.0;
      for (int64_t P = 0; P < OH * OW; ++P)
        Acc += GradOutMat.at(Oc, P);
      GradBias[Oc] += Acc;
    }
    // Grad wrt input: col grad = W^T * dOut, then col2im.
    Tensor ColGrad = matmulTransA(WeightMat, GradOutMat); // [KSize, OH*OW]
    col2im(ColGrad.data(), C, H, W, Geom,
           GradInput.data() + Sample * C * H * W);
  }
  return GradInput;
}

namespace {

Tensor convTranspose2dImpl(const Tensor &Input, const Tensor &Weight,
                           const Tensor &Bias, const ConvGeometry &Geom,
                           bool UseAbs) {
  check(Input.rank() == 4, "convTranspose2d expects NCHW input");
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  check(C == Geom.InChannels, "convTranspose2d channel mismatch");
  const auto [OH, OW] = Geom.convTransposeOutput(H, W);
  const int64_t OC = Geom.OutChannels;

  Tensor Output({N, OC, OH, OW});
  if (Bias.numel() == OC && !UseAbs) {
    for (int64_t Sample = 0; Sample < N; ++Sample)
      for (int64_t Oc = 0; Oc < OC; ++Oc)
        for (int64_t P = 0; P < OH * OW; ++P)
          Output.data()[(Sample * OC + Oc) * OH * OW + P] = Bias[Oc];
  }

  // Scatter per sample into disjoint output slices; samples parallelize.
  // The zero-input skip stays: conv-transpose inputs are post-ReLU
  // activations, which are genuinely sparse (unlike the dense GEMM paths,
  // whose zero-skip branch was removed).
  const double *Wd = Weight.data();
  parallelFor(N, 1, [&](int64_t SBegin, int64_t SEnd) {
  for (int64_t Sample = SBegin; Sample < SEnd; ++Sample) {
    const double *In = Input.data() + Sample * C * H * W;
    double *Out = Output.data() + Sample * OC * OH * OW;
    for (int64_t Ic = 0; Ic < C; ++Ic) {
      for (int64_t Ih = 0; Ih < H; ++Ih) {
        for (int64_t Iw = 0; Iw < W; ++Iw) {
          const double V = In[(Ic * H + Ih) * W + Iw];
          if (V == 0.0)
            continue;
          for (int64_t Oc = 0; Oc < OC; ++Oc) {
            const double *Kslice =
                Wd + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            for (int64_t Kh = 0; Kh < Geom.KernelH; ++Kh) {
              const int64_t Oh = Ih * Geom.Stride - Geom.Padding + Kh;
              if (Oh < 0 || Oh >= OH)
                continue;
              for (int64_t Kw = 0; Kw < Geom.KernelW; ++Kw) {
                const int64_t Ow = Iw * Geom.Stride - Geom.Padding + Kw;
                if (Ow < 0 || Ow >= OW)
                  continue;
                double Wv = Kslice[Kh * Geom.KernelW + Kw];
                if (UseAbs)
                  Wv = std::fabs(Wv);
                Out[(Oc * OH + Oh) * OW + Ow] += V * Wv;
              }
            }
          }
        }
      }
    }
  }
  });
  return Output;
}

} // namespace

Tensor convTranspose2d(const Tensor &Input, const Tensor &Weight,
                       const Tensor &Bias, const ConvGeometry &Geom) {
  return convTranspose2dImpl(Input, Weight, Bias, Geom, /*UseAbs=*/false);
}

Tensor convTranspose2dAbs(const Tensor &Input, const Tensor &Weight,
                          const ConvGeometry &Geom) {
  return convTranspose2dImpl(Input, Weight, Tensor(), Geom, /*UseAbs=*/true);
}

Tensor convTranspose2dBackward(const Tensor &Input, const Tensor &Weight,
                               const Tensor &GradOutput,
                               const ConvGeometry &Geom, Tensor &GradWeight,
                               Tensor &GradBias) {
  const int64_t N = Input.dim(0), C = Input.dim(1), H = Input.dim(2),
                W = Input.dim(3);
  const auto [OH, OW] = Geom.convTransposeOutput(H, W);
  const int64_t OC = Geom.OutChannels;

  Tensor GradInput({N, C, H, W});
  const double *Wd = Weight.data();
  double *Gw = GradWeight.data();

  for (int64_t Sample = 0; Sample < N; ++Sample) {
    const double *In = Input.data() + Sample * C * H * W;
    const double *Go = GradOutput.data() + Sample * OC * OH * OW;
    double *Gi = GradInput.data() + Sample * C * H * W;
    // Bias gradient: sum over spatial positions.
    for (int64_t Oc = 0; Oc < OC; ++Oc) {
      double Acc = 0.0;
      for (int64_t P = 0; P < OH * OW; ++P)
        Acc += Go[Oc * OH * OW + P];
      GradBias[Oc] += Acc;
    }
    for (int64_t Ic = 0; Ic < C; ++Ic) {
      for (int64_t Ih = 0; Ih < H; ++Ih) {
        for (int64_t Iw = 0; Iw < W; ++Iw) {
          const double V = In[(Ic * H + Ih) * W + Iw];
          double GiAcc = 0.0;
          for (int64_t Oc = 0; Oc < OC; ++Oc) {
            const double *Kslice =
                Wd + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            double *GwSlice =
                Gw + ((Ic * OC + Oc) * Geom.KernelH) * Geom.KernelW;
            for (int64_t Kh = 0; Kh < Geom.KernelH; ++Kh) {
              const int64_t Oh = Ih * Geom.Stride - Geom.Padding + Kh;
              if (Oh < 0 || Oh >= OH)
                continue;
              for (int64_t Kw = 0; Kw < Geom.KernelW; ++Kw) {
                const int64_t Ow = Iw * Geom.Stride - Geom.Padding + Kw;
                if (Ow < 0 || Ow >= OW)
                  continue;
                const double G = Go[(Oc * OH + Oh) * OW + Ow];
                GiAcc += G * Kslice[Kh * Geom.KernelW + Kw];
                GwSlice[Kh * Geom.KernelW + Kw] += G * V;
              }
            }
          }
          Gi[(Ic * H + Ih) * W + Iw] = GiAcc;
        }
      }
    }
  }
  return GradInput;
}

Tensor relu(const Tensor &Input) {
  Tensor Out = Input.clone();
  double *D = Out.data();
  parallelFor(Out.numel(), [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      D[I] = std::max(0.0, D[I]);
  });
  return Out;
}

Tensor reluMask(const Tensor &Input) {
  Tensor Out(Input.shape());
  const double *In = Input.data();
  double *D = Out.data();
  parallelFor(Input.numel(), [&](int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I < End; ++I)
      D[I] = In[I] > 0.0 ? 1.0 : 0.0;
  });
  return Out;
}

std::vector<int64_t> argmaxRows(const Tensor &Logits) {
  check(Logits.rank() == 2, "argmaxRows requires rank-2");
  const int64_t Rows = Logits.dim(0), Cols = Logits.dim(1);
  std::vector<int64_t> Result(static_cast<size_t>(Rows), 0);
  for (int64_t I = 0; I < Rows; ++I) {
    int64_t Best = 0;
    for (int64_t J = 1; J < Cols; ++J)
      if (Logits.at(I, J) > Logits.at(I, Best))
        Best = J;
    Result[static_cast<size_t>(I)] = Best;
  }
  return Result;
}

Tensor softmaxRows(const Tensor &Logits) {
  check(Logits.rank() == 2, "softmaxRows requires rank-2");
  const int64_t Rows = Logits.dim(0), Cols = Logits.dim(1);
  Tensor Out(Logits.shape());
  for (int64_t I = 0; I < Rows; ++I) {
    double Max = Logits.at(I, 0);
    for (int64_t J = 1; J < Cols; ++J)
      Max = std::max(Max, Logits.at(I, J));
    double Sum = 0.0;
    for (int64_t J = 0; J < Cols; ++J) {
      const double E = std::exp(Logits.at(I, J) - Max);
      Out.at(I, J) = E;
      Sum += E;
    }
    for (int64_t J = 0; J < Cols; ++J)
      Out.at(I, J) /= Sum;
  }
  return Out;
}

} // namespace genprove
