//===- tensor/shape.h - Tensor shapes --------------------------*- C++ -*-===//
///
/// \file
/// Shape describes the dimensions of a Tensor. Tensors in this library are
/// always contiguous row-major; a Shape is just the dimension list plus a
/// few helpers (element count, flattened index computation, printing).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TENSOR_SHAPE_H
#define GENPROVE_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace genprove {

/// Dimension list of a row-major contiguous tensor.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> Dims);
  explicit Shape(std::vector<int64_t> Dims);

  /// Number of dimensions.
  size_t rank() const { return Dims.size(); }

  /// Size of dimension \p I (supports negative indices from the end).
  int64_t dim(int I) const;

  /// Total number of elements.
  int64_t numel() const;

  /// All dimensions.
  const std::vector<int64_t> &dims() const { return Dims; }

  bool operator==(const Shape &Other) const { return Dims == Other.Dims; }
  bool operator!=(const Shape &Other) const { return Dims != Other.Dims; }

  /// e.g. "[2, 3, 16, 16]".
  std::string toString() const;

private:
  std::vector<int64_t> Dims;
};

} // namespace genprove

#endif // GENPROVE_TENSOR_SHAPE_H
