//===- util/fp.h - Directed floating-point rounding ------------*- C++ -*-===//
///
/// \file
/// Outward-rounded arithmetic for sound bound computations. The verifier's
/// guarantees only hold if every lower bound is rounded toward -inf and
/// every upper bound (and probability mass) toward +inf; plain
/// round-to-nearest can under-approximate by ULPs that compound across a
/// deep decoder+classifier pipeline.
///
/// Rather than flipping the FPU rounding mode (thread-unsafe with the
/// shared pool, and silently undone by vectorized code), every operation
/// here computes the round-to-nearest result and nudges it one ULP outward
/// with std::nextafter. Since round-to-nearest is within half an ULP of
/// the exact value, nextafter(RN(a op b), +-inf) always brackets the real
/// result: up(x) >= exact and down(x) <= exact, unconditionally.
///
/// The helpers are unconditional; call sites branch on
/// soundRoundingEnabled() and keep the original round-to-nearest code when
/// the toggle is off, preserving the bit-identity guarantees of the
/// deterministic kernels.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_FP_H
#define GENPROVE_UTIL_FP_H

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace genprove {

/// Global toggle for sound outward rounding. Off by default: the default
/// pipeline keeps the historical round-to-nearest semantics (and the PR 4
/// bit-identity contract). Reads are relaxed-atomic in fp.cpp; flip it at
/// configuration time, not mid-propagation.
bool soundRoundingEnabled();
void setSoundRounding(bool On);

/// RAII toggle for tests and the audit harness.
class SoundRoundingScope {
public:
  explicit SoundRoundingScope(bool On) : Previous(soundRoundingEnabled()) {
    setSoundRounding(On);
  }
  ~SoundRoundingScope() { setSoundRounding(Previous); }
  SoundRoundingScope(const SoundRoundingScope &) = delete;
  SoundRoundingScope &operator=(const SoundRoundingScope &) = delete;

private:
  const bool Previous;
};

namespace fp {

/// One ULP toward +inf. NaN propagates; +inf stays +inf.
inline double up(double X) {
  return std::nextafter(X, std::numeric_limits<double>::infinity());
}

/// One ULP toward -inf.
inline double down(double X) {
  return std::nextafter(X, -std::numeric_limits<double>::infinity());
}

inline double addUp(double A, double B) { return up(A + B); }
inline double addDown(double A, double B) { return down(A + B); }
inline double subUp(double A, double B) { return up(A - B); }
inline double subDown(double A, double B) { return down(A - B); }
inline double mulUp(double A, double B) { return up(A * B); }
inline double mulDown(double A, double B) { return down(A * B); }
inline double divUp(double A, double B) { return up(A / B); }
inline double divDown(double A, double B) { return down(A / B); }

/// Upper bound on the relative error of a K-term round-to-nearest
/// accumulation (dot product, convolution window, bias add), valid for any
/// summation order (the tiled/AVX kernels reassociate). The textbook bound
/// is gamma_K = K*u/(1 - K*u) with u = DBL_EPSILON/2; this returns a
/// several-fold cushion so it also covers the round-to-nearest evaluation
/// of the magnitude term it multiplies and the concrete forward pass the
/// audit compares against.
inline double accumulationBound(int64_t Terms) {
  return 4.0 * static_cast<double>(Terms + 4) * DBL_EPSILON;
}

/// Neumaier-compensated sum rounded toward +inf. The compensated sum
/// s + c equals the exact sum up to the (directed-rounded) accumulation of
/// the compensation term itself, so the result is a true upper bound while
/// staying exact to ~1 ULP for thousands of tiny masses.
double sumUp(const double *Values, int64_t Count);
/// Neumaier-compensated sum rounded toward -inf.
double sumDown(const double *Values, int64_t Count);

inline double sumUp(const std::vector<double> &Values) {
  return sumUp(Values.data(), static_cast<int64_t>(Values.size()));
}
inline double sumDown(const std::vector<double> &Values) {
  return sumDown(Values.data(), static_cast<int64_t>(Values.size()));
}

} // namespace fp

} // namespace genprove

#endif // GENPROVE_UTIL_FP_H
