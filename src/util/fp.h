//===- util/fp.h - Directed floating-point rounding ------------*- C++ -*-===//
///
/// \file
/// Outward-rounded arithmetic for sound bound computations. The verifier's
/// guarantees only hold if every lower bound is rounded toward -inf and
/// every upper bound (and probability mass) toward +inf; plain
/// round-to-nearest can under-approximate by ULPs that compound across a
/// deep decoder+classifier pipeline.
///
/// Rather than flipping the FPU rounding mode (thread-unsafe with the
/// shared pool, and silently undone by vectorized code), every operation
/// here computes the round-to-nearest result and nudges it one ULP outward
/// with std::nextafter. Since round-to-nearest is within half an ULP of
/// the exact value, nextafter(RN(a op b), +-inf) always brackets the real
/// result: up(x) >= exact and down(x) <= exact, unconditionally.
///
/// The helpers are unconditional; call sites branch on
/// soundRoundingEnabled() and keep the original round-to-nearest code when
/// the toggle is off, preserving the bit-identity guarantees of the
/// deterministic kernels.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_FP_H
#define GENPROVE_UTIL_FP_H

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

namespace genprove {

/// Global toggle for sound outward rounding. Off by default: the default
/// pipeline keeps the historical round-to-nearest semantics (and the PR 4
/// bit-identity contract). Reads are relaxed-atomic in fp.cpp; flip it at
/// configuration time, not mid-propagation.
bool soundRoundingEnabled();
void setSoundRounding(bool On);

/// RAII toggle for tests and the audit harness.
class SoundRoundingScope {
public:
  explicit SoundRoundingScope(bool On) : Previous(soundRoundingEnabled()) {
    setSoundRounding(On);
  }
  ~SoundRoundingScope() { setSoundRounding(Previous); }
  SoundRoundingScope(const SoundRoundingScope &) = delete;
  SoundRoundingScope &operator=(const SoundRoundingScope &) = delete;

private:
  const bool Previous;
};

namespace fp {

/// One ULP toward +inf. NaN propagates; +inf stays +inf.
inline double up(double X) {
  return std::nextafter(X, std::numeric_limits<double>::infinity());
}

/// One ULP toward -inf.
inline double down(double X) {
  return std::nextafter(X, -std::numeric_limits<double>::infinity());
}

inline double addUp(double A, double B) { return up(A + B); }
inline double addDown(double A, double B) { return down(A + B); }
inline double subUp(double A, double B) { return up(A - B); }
inline double subDown(double A, double B) { return down(A - B); }
inline double mulUp(double A, double B) { return up(A * B); }
inline double mulDown(double A, double B) { return down(A * B); }
inline double divUp(double A, double B) { return up(A / B); }
inline double divDown(double A, double B) { return down(A / B); }

/// Upper bound on the relative error of a K-term round-to-nearest
/// accumulation (dot product, convolution window, bias add), valid for any
/// summation order (the tiled/AVX kernels reassociate). The textbook bound
/// is gamma_K = K*u/(1 - K*u) with u = DBL_EPSILON/2; this returns a
/// several-fold cushion so it also covers the round-to-nearest evaluation
/// of the magnitude term it multiplies and the concrete forward pass the
/// audit compares against.
inline double accumulationBound(int64_t Terms) {
  return 4.0 * static_cast<double>(Terms + 4) * DBL_EPSILON;
}

//===--------------------------------------------------------------------===//
// Single-precision directed helpers for the two-tier screening pass
// (core/genprove.h FastScreen). The screen runs float32 round-to-nearest
// kernels and widens with a sound cushion; these helpers build that
// cushion and the float input enclosure with the same nextafter idiom as
// the double helpers above.
//===--------------------------------------------------------------------===//

/// One float ULP toward +inf. Bitwise equal to nextafterf(X, +inf) for
/// every input (NaN propagates, +inf is a fixed point, +-0 steps to the
/// smallest positive subnormal, -inf steps to -FLT_MAX), but inlined as a
/// sign-magnitude integer step: the screen nudges every cushion term, and
/// the libm call is a measurable fraction of an entire piece
/// classification.
inline float upF(float X) {
  if (std::isnan(X) || X == std::numeric_limits<float>::infinity())
    return X;
  uint32_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  if ((Bits << 1) == 0) // +0.0f or -0.0f
    Bits = 1;           // smallest positive subnormal
  else if (Bits >> 31)
    --Bits; // negative: toward zero is toward +inf
  else
    ++Bits; // positive: away from zero
  std::memcpy(&X, &Bits, sizeof(Bits));
  return X;
}

/// One float ULP toward -inf; the mirror of upF (bitwise equal to
/// nextafterf(X, -inf)).
inline float downF(float X) {
  if (std::isnan(X) || X == -std::numeric_limits<float>::infinity())
    return X;
  uint32_t Bits;
  std::memcpy(&Bits, &X, sizeof(Bits));
  if ((Bits << 1) == 0)    // +0.0f or -0.0f
    Bits = 0x80000001u;    // smallest negative subnormal
  else if (Bits >> 31)
    ++Bits; // negative: away from zero is toward -inf
  else
    --Bits; // positive: toward zero
  std::memcpy(&X, &Bits, sizeof(Bits));
  return X;
}

inline float addUpF(float A, float B) { return upF(A + B); }
inline float addDownF(float A, float B) { return downF(A + B); }
inline float subUpF(float A, float B) { return upF(A - B); }
inline float subDownF(float A, float B) { return downF(A - B); }
inline float mulUpF(float A, float B) { return upF(A * B); }
inline float mulDownF(float A, float B) { return downF(A * B); }

/// Directed double->float conversion: the smallest float >= X. The cast
/// rounds to nearest; one nudge covers the half-ULP it can undershoot by
/// (including into/out of the subnormal range, where nextafterf steps by
/// the subnormal spacing).
inline float floatUp(double X) {
  const float F = static_cast<float>(X);
  return static_cast<double>(F) >= X ? F : upF(F);
}

/// Directed double->float conversion: the largest float <= X.
inline float floatDown(double X) {
  const float F = static_cast<float>(X);
  return static_cast<double>(F) <= X ? F : downF(F);
}

/// Float analogue of accumulationBound: relative-error cushion for a
/// K-term float32 round-to-nearest accumulation, with extra headroom for
/// the round-to-nearest weight/input conversions (each a half-ULP
/// relative error in the normal range) and the float evaluation of the
/// magnitude term the cushion multiplies. The absolute error of
/// subnormal-range conversions is NOT covered here — the screen adds a
/// separate absolute floor for those.
inline float accumulationBoundF(int64_t Terms) {
  return 4.0f * static_cast<float>(Terms + 8) * FLT_EPSILON;
}

/// Neumaier-compensated sum rounded toward +inf. The compensated sum
/// s + c equals the exact sum up to the (directed-rounded) accumulation of
/// the compensation term itself, so the result is a true upper bound while
/// staying exact to ~1 ULP for thousands of tiny masses.
double sumUp(const double *Values, int64_t Count);
/// Neumaier-compensated sum rounded toward -inf.
double sumDown(const double *Values, int64_t Count);

inline double sumUp(const std::vector<double> &Values) {
  return sumUp(Values.data(), static_cast<int64_t>(Values.size()));
}
inline double sumDown(const std::vector<double> &Values) {
  return sumDown(Values.data(), static_cast<int64_t>(Values.size()));
}

} // namespace fp

} // namespace genprove

#endif // GENPROVE_UTIL_FP_H
