//===- util/io.cpp - EINTR/EAGAIN-safe fd I/O helpers ---------------------===//

#include "src/util/io.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

namespace genprove {

void ignoreSigPipe() { ::signal(SIGPIPE, SIG_IGN); }

bool setNonBlocking(int Fd, bool NonBlocking) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0)
    return false;
  int Want = NonBlocking ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  if (Want == Flags)
    return true;
  return ::fcntl(Fd, F_SETFL, Want) == 0;
}

ssize_t readChunk(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N >= 0 || errno != EINTR)
      return N;
  }
}

static bool pollFor(int Fd, short Events, int TimeoutMs) {
  struct pollfd P;
  P.fd = Fd;
  P.events = Events;
  P.revents = 0;
  for (;;) {
    int R = ::poll(&P, 1, TimeoutMs);
    if (R >= 0)
      return R > 0;
    if (errno != EINTR)
      return false;
  }
}

ssize_t readFull(int Fd, void *Buf, size_t Len) {
  char *P = static_cast<char *>(Buf);
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = readChunk(Fd, P + Done, Len - Done);
    if (N == 0)
      break; // EOF.
    if (N < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollFor(Fd, POLLIN, -1);
        continue;
      }
      return -1;
    }
    Done += static_cast<size_t>(N);
  }
  return static_cast<ssize_t>(Done);
}

bool writeFull(int Fd, const void *Buf, size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::write(Fd, P + Done, Len - Done);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollFor(Fd, POLLOUT, -1);
        continue;
      }
      return false;
    }
    Done += static_cast<size_t>(N);
  }
  return true;
}

bool writeFullDeadline(int Fd, const void *Buf, size_t Len,
                       double TimeoutSeconds) {
  if (TimeoutSeconds <= 0)
    return writeFull(Fd, Buf, Len);

  // Force non-blocking for the duration so a full socket buffer returns
  // EAGAIN instead of blocking past the budget; restore on exit.
  int OrigFlags = ::fcntl(Fd, F_GETFL, 0);
  bool WasBlocking = OrigFlags >= 0 && !(OrigFlags & O_NONBLOCK);
  if (WasBlocking)
    setNonBlocking(Fd, true);

  using Clock = std::chrono::steady_clock;
  auto Start = Clock::now();
  auto remainingMs = [&]() -> long {
    double Elapsed = std::chrono::duration<double>(Clock::now() - Start).count();
    double Left = TimeoutSeconds - Elapsed;
    return Left > 0 ? static_cast<long>(Left * 1000.0) + 1 : 0;
  };

  const char *P = static_cast<const char *>(Buf);
  size_t Done = 0;
  bool Ok = true;
  while (Done < Len) {
    ssize_t N = ::write(Fd, P + Done, Len - Done);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      long Left = remainingMs();
      if (Left <= 0 || !pollFor(Fd, POLLOUT, static_cast<int>(Left))) {
        Ok = false; // Deadline exhausted with bytes still unqueued.
        break;
      }
      continue;
    }
    Ok = false; // Real error (EPIPE, ECONNRESET, ...).
    break;
  }

  if (WasBlocking)
    setNonBlocking(Fd, false);
  return Ok;
}

} // namespace genprove
