//===- util/rng.h - Deterministic random number generation -----*- C++ -*-===//
///
/// \file
/// A small, fast, reproducible RNG (xoshiro256++). Every stochastic piece of
/// the system (weight init, dataset synthesis, sampling baselines, attacks)
/// takes an explicit Rng so experiments are deterministic given a seed.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_RNG_H
#define GENPROVE_UTIL_RNG_H

#include <cstdint>

namespace genprove {

/// xoshiro256++ pseudo random generator with convenience samplers.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double Mean, double Stddev);

  /// Uniform integer in [0, N).
  uint64_t below(uint64_t N);

  /// Bernoulli trial with probability P of true.
  bool bernoulli(double P);

  /// Arcsine-distributed sample on [0, 1] (density 1/(pi*sqrt(t(1-t)))).
  double arcsine();

  /// Split off an independent stream (useful for parallel workloads).
  Rng split();

private:
  uint64_t State[4];
  bool HasSpare = false;
  double Spare = 0.0;
};

} // namespace genprove

#endif // GENPROVE_UTIL_RNG_H
