//===- util/stats.cpp -----------------------------------------*- C++ -*-===//

#include "src/util/stats.h"

#include <algorithm>
#include <cmath>

namespace genprove {

double sum(const std::vector<double> &Values) {
  double Total = 0.0;
  for (double V : Values)
    Total += V;
  return Total;
}

double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  return sum(Values) / static_cast<double>(Values.size());
}

double stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0.0;
  const double M = mean(Values);
  double Acc = 0.0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double percentile(std::vector<double> Values, double Q) {
  if (Values.empty())
    return 0.0;
  std::sort(Values.begin(), Values.end());
  Q = std::clamp(Q, 0.0, 1.0);
  const double Pos = Q * static_cast<double>(Values.size() - 1);
  const size_t Lo = static_cast<size_t>(std::floor(Pos));
  const size_t Hi = static_cast<size_t>(std::ceil(Pos));
  const double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

namespace {

/// Log of the gamma function (Lanczos approximation).
double logGamma(double X) {
  static const double Coef[6] = {76.18009172947146,  -86.50532032941677,
                                 24.01409824083091,  -1.231739572450155,
                                 0.1208650973866179e-2, -0.5395239384953e-5};
  double Y = X;
  double Tmp = X + 5.5;
  Tmp -= (X + 0.5) * std::log(Tmp);
  double Ser = 1.000000000190015;
  for (double C : Coef)
    Ser += C / ++Y;
  return -Tmp + std::log(2.5066282746310005 * Ser / X);
}

/// Continued-fraction evaluation for the regularized incomplete beta.
double betaContinuedFraction(double A, double B, double X) {
  const int MaxIter = 300;
  const double Eps = 3e-14;
  const double FpMin = 1e-300;
  const double Qab = A + B;
  const double Qap = A + 1.0;
  const double Qam = A - 1.0;
  double C = 1.0;
  double D = 1.0 - Qab * X / Qap;
  if (std::fabs(D) < FpMin)
    D = FpMin;
  D = 1.0 / D;
  double H = D;
  for (int M = 1; M <= MaxIter; ++M) {
    const int M2 = 2 * M;
    double Aa = M * (B - M) * X / ((Qam + M2) * (A + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    H *= D * C;
    Aa = -(A + M) * (Qab + M) * X / ((A + M2) * (Qap + M2));
    D = 1.0 + Aa * D;
    if (std::fabs(D) < FpMin)
      D = FpMin;
    C = 1.0 + Aa / C;
    if (std::fabs(C) < FpMin)
      C = FpMin;
    D = 1.0 / D;
    const double Del = D * C;
    H *= Del;
    if (std::fabs(Del - 1.0) < Eps)
      break;
  }
  return H;
}

} // namespace

double regularizedBeta(double A, double B, double X) {
  if (X <= 0.0)
    return 0.0;
  if (X >= 1.0)
    return 1.0;
  const double LogBt = logGamma(A + B) - logGamma(A) - logGamma(B) +
                       A * std::log(X) + B * std::log(1.0 - X);
  const double Bt = std::exp(LogBt);
  if (X < (A + 1.0) / (A + B + 2.0))
    return Bt * betaContinuedFraction(A, B, X) / A;
  return 1.0 - Bt * betaContinuedFraction(B, A, 1.0 - X) / B;
}

namespace {

/// Inverse of the regularized incomplete beta via bisection; monotone in X.
/// The loop maintains I(Lo) < P <= I(Hi), so the true quantile lies in
/// [Lo, Hi]. Returning the midpoint (as this used to) can land on either
/// side of the quantile, silently un-conservative for confidence bounds;
/// instead the caller picks the endpoint that errs outward: Lo for a lower
/// confidence bound, Hi for an upper one.
double betaQuantile(double P, double A, double B, bool RoundDown) {
  double Lo = 0.0;
  double Hi = 1.0;
  for (int Iter = 0; Iter < 200; ++Iter) {
    const double Mid = 0.5 * (Lo + Hi);
    if (regularizedBeta(A, B, Mid) < P)
      Lo = Mid;
    else
      Hi = Mid;
  }
  return RoundDown ? Lo : Hi;
}

} // namespace

std::pair<double, double> clopperPearson(size_t K, size_t N, double Alpha) {
  if (N == 0)
    return {0.0, 1.0};
  const double Kd = static_cast<double>(K);
  const double Nd = static_cast<double>(N);
  double Lower = 0.0;
  double Upper = 1.0;
  if (K > 0)
    Lower = betaQuantile(Alpha / 2.0, Kd, Nd - Kd + 1.0, /*RoundDown=*/true);
  if (K < N)
    Upper = betaQuantile(1.0 - Alpha / 2.0, Kd + 1.0, Nd - Kd,
                         /*RoundDown=*/false);
  Lower = std::clamp(Lower, 0.0, 1.0);
  Upper = std::clamp(Upper, Lower, 1.0);
  return {Lower, Upper};
}

} // namespace genprove
