//===- util/table.h - ASCII table rendering for benches -------*- C++ -*-===//
///
/// \file
/// The benchmark binaries print their results in the same row structure as
/// the paper's tables. TablePrinter renders aligned ASCII tables and can
/// also emit CSV for downstream plotting.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_TABLE_H
#define GENPROVE_UTIL_TABLE_H

#include <string>
#include <vector>

namespace genprove {

/// Collects rows of strings and renders them as an aligned ASCII table.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Append one data row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Render as an aligned ASCII table with a separator under the header.
  std::string render() const;

  /// Render as CSV (quoted only when necessary).
  std::string renderCsv() const;

  /// Convenience: render() to stdout.
  void print() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Format a double in a compact scientific/fixed hybrid, matching the way
/// the paper reports bound widths (e.g. "5.7e-05" or "0.9703").
std::string formatBound(double Value);

/// Format seconds with 4 significant digits.
std::string formatSeconds(double Seconds);

/// Format a byte count as MB/GB with 2 decimals.
std::string formatBytes(size_t Bytes);

/// Format a ratio as a percentage string like "92.5%".
std::string formatPercent(double Fraction);

} // namespace genprove

#endif // GENPROVE_UTIL_TABLE_H
