//===- util/error.cpp -----------------------------------------*- C++ -*-===//

#include "src/util/error.h"

#include <cstdio>
#include <cstdlib>

namespace genprove {

void fatalError(const std::string &Message) {
  std::fprintf(stderr, "genprove fatal error: %s\n", Message.c_str());
  std::abort();
}

} // namespace genprove
