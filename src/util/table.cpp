//===- util/table.cpp -----------------------------------------*- C++ -*-===//

#include "src/util/table.h"

#include "src/util/error.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace genprove {

TablePrinter::TablePrinter(std::vector<std::string> Header)
    : Header(std::move(Header)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  check(Row.size() == Header.size(), "table row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string TablePrinter::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const auto &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());

  std::ostringstream Out;
  auto EmitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      Out << Row[I];
      if (I + 1 < Row.size())
        Out << std::string(Widths[I] - Row[I].size() + 2, ' ');
    }
    Out << '\n';
  };
  EmitRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  Out << std::string(Total > 2 ? Total - 2 : Total, '-') << '\n';
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out.str();
}

std::string TablePrinter::renderCsv() const {
  std::ostringstream Out;
  auto EmitRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      const bool NeedsQuote = Row[I].find_first_of(",\"\n") != std::string::npos;
      if (NeedsQuote) {
        Out << '"';
        for (char C : Row[I]) {
          if (C == '"')
            Out << '"';
          Out << C;
        }
        Out << '"';
      } else {
        Out << Row[I];
      }
      if (I + 1 < Row.size())
        Out << ',';
    }
    Out << '\n';
  };
  EmitRow(Header);
  for (const auto &Row : Rows)
    EmitRow(Row);
  return Out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string formatBound(double Value) {
  char Buf[64];
  const double Abs = std::fabs(Value);
  if (Value != 0.0 && (Abs < 1e-3 || Abs >= 1e5))
    std::snprintf(Buf, sizeof(Buf), "%.2e", Value);
  else
    std::snprintf(Buf, sizeof(Buf), "%.4f", Value);
  return Buf;
}

std::string formatSeconds(double Seconds) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Seconds);
  return Buf;
}

std::string formatBytes(size_t Bytes) {
  char Buf[64];
  const double Mb = static_cast<double>(Bytes) / (1024.0 * 1024.0);
  if (Mb >= 1024.0)
    std::snprintf(Buf, sizeof(Buf), "%.2f GB", Mb / 1024.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f MB", Mb);
  return Buf;
}

std::string formatPercent(double Fraction) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}

} // namespace genprove
