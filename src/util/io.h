//===- util/io.h - EINTR/EAGAIN-safe fd I/O helpers ------------*- C++ -*-===//
///
/// \file
/// The process-boundary code paths — the shard worker pipe drain, the
/// process launcher, and the genprove_serve sockets — all need the same
/// three primitives: a read that retries EINTR, a write that never loses
/// bytes to a short write, and a bounded write that gives up on a stuck
/// peer instead of wedging the caller. Before this header each call site
/// hand-rolled its own loop and not all of them retried EINTR; they now
/// share one audited implementation.
///
/// All functions operate on raw POSIX fds and are safe for both blocking
/// and O_NONBLOCK descriptors (semantics per function below). None of them
/// allocate, so they are usable on near-signal paths.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_IO_H
#define GENPROVE_UTIL_IO_H

#include <cstddef>

#include <sys/types.h>

namespace genprove {

/// Ignore SIGPIPE process-wide (idempotent). A peer that disappears mid
/// write must surface as an EPIPE error return, never as a fatal signal —
/// one dead client would otherwise kill the whole server.
void ignoreSigPipe();

/// Set or clear O_NONBLOCK; returns false on fcntl failure.
bool setNonBlocking(int Fd, bool NonBlocking);

/// One ::read that retries EINTR. Returns exactly what ::read would
/// otherwise: >0 bytes, 0 at EOF, or -1 with errno set (EAGAIN/EWOULDBLOCK
/// on a drained non-blocking fd).
ssize_t readChunk(int Fd, void *Buf, size_t Len);

/// Read until \p Len bytes, EOF, or a real error, retrying EINTR and —
/// on a non-blocking fd — polling for readability. Returns the number of
/// bytes read (< Len only at EOF), or -1 on error.
ssize_t readFull(int Fd, void *Buf, size_t Len);

/// Write all \p Len bytes, retrying EINTR and short writes; on a
/// non-blocking fd, polls for writability. False on any real error
/// (including EPIPE from a vanished peer).
bool writeFull(int Fd, const void *Buf, size_t Len);

/// writeFull with a wall-clock budget: polls for writability between
/// attempts and gives up once \p TimeoutSeconds elapse without the kernel
/// accepting every byte. The slow-client containment primitive: one stuck
/// socket must cost the server at most the timeout, never the accept loop.
/// TimeoutSeconds <= 0 means no bound (plain writeFull). Works on both
/// blocking and non-blocking fds (the fd is temporarily switched to
/// non-blocking so a full socket buffer cannot block past the budget).
bool writeFullDeadline(int Fd, const void *Buf, size_t Len,
                       double TimeoutSeconds);

} // namespace genprove

#endif // GENPROVE_UTIL_IO_H
