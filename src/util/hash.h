//===- util/hash.h - FNV-1a fingerprint helpers ----------------*- C++ -*-===//
///
/// \file
/// Small 64-bit FNV-1a combinators used for configuration and state
/// fingerprints (the propagation cache's key chain, layer parameter
/// fingerprints). Doubles hash by bit pattern, so two states hash equal
/// exactly when they are bit-identical — the same equivalence the
/// determinism contract guarantees for recomputation.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_HASH_H
#define GENPROVE_UTIL_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace genprove {
namespace hashing {

constexpr uint64_t FnvOffset = 1469598103934665603ull;
constexpr uint64_t FnvPrime = 1099511628211ull;

inline uint64_t hashBytes(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

inline uint64_t hashU64(uint64_t H, uint64_t V) {
  return hashBytes(H, &V, sizeof(V));
}

inline uint64_t hashDouble(uint64_t H, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return hashU64(H, Bits);
}

inline uint64_t hashString(uint64_t H, const std::string &S) {
  H = hashU64(H, S.size());
  return hashBytes(H, S.data(), S.size());
}

} // namespace hashing
} // namespace genprove

#endif // GENPROVE_UTIL_HASH_H
