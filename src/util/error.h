//===- util/error.h - Fatal error reporting and assertions -----*- C++ -*-===//
//
// GenProve-cpp: robustness certification with generative models.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error reporting helpers. The library avoids exceptions (per the LLVM
/// coding standard); unrecoverable conditions print a message and abort,
/// recoverable analysis failures (e.g. simulated out-of-memory) are plain
/// status values on the result types.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_ERROR_H
#define GENPROVE_UTIL_ERROR_H

#include <string>

namespace genprove {

/// Print \p Message to stderr and abort. Used for programmer errors and
/// broken invariants that cannot be recovered from.
[[noreturn]] void fatalError(const std::string &Message);

/// Like assert(), but always compiled in and with a message. Use for
/// conditions that guard against silent numerical corruption.
inline void check(bool Condition, const char *Message) {
  if (!Condition)
    fatalError(Message);
}

} // namespace genprove

#endif // GENPROVE_UTIL_ERROR_H
