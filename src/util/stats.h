//===- util/stats.h - Small statistics helpers ----------------*- C++ -*-===//
///
/// \file
/// Mean / percentile / min / max helpers shared by the relaxation heuristic
/// (which needs segment-length percentiles) and the benchmark reporting.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_STATS_H
#define GENPROVE_UTIL_STATS_H

#include <cstddef>
#include <vector>

namespace genprove {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double> &Values);

/// Sample standard deviation; 0 for fewer than two values.
double stddev(const std::vector<double> &Values);

/// The q-th percentile (q in [0,1]) using linear interpolation between order
/// statistics. Sorts a copy; 0 for an empty range.
double percentile(std::vector<double> Values, double Q);

/// Sum of the values.
double sum(const std::vector<double> &Values);

/// Regularized incomplete beta function I_x(a, b). Exposed so tests can
/// check the conservative-endpoint invariant of clopperPearson.
double regularizedBeta(double A, double B, double X);

/// Clopper-Pearson exact binomial confidence interval for K successes out of
/// N trials at confidence level (1 - Alpha). Returns {lower, upper}, clamped
/// to [0, 1]. The quantile bisection returns the endpoint that errs outward
/// (smaller lower bound, larger upper bound), so the interval is
/// conservative rather than merely approximate.
std::pair<double, double> clopperPearson(size_t K, size_t N, double Alpha);

} // namespace genprove

#endif // GENPROVE_UTIL_STATS_H
