//===- util/rng.cpp -------------------------------------------*- C++ -*-===//

#include "src/util/rng.h"

#include <cmath>

namespace genprove {

namespace {
uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ull;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }
} // namespace

Rng::Rng(uint64_t Seed) {
  uint64_t S = Seed;
  for (auto &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  const uint64_t Result = rotl(State[0] + State[3], 23) + State[0];
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) { return Lo + (Hi - Lo) * uniform(); }

double Rng::normal() {
  if (HasSpare) {
    HasSpare = false;
    return Spare;
  }
  double U1 = 0.0;
  do {
    U1 = uniform();
  } while (U1 <= 1e-300);
  const double U2 = uniform();
  const double R = std::sqrt(-2.0 * std::log(U1));
  const double Theta = 2.0 * M_PI * U2;
  Spare = R * std::sin(Theta);
  HasSpare = true;
  return R * std::cos(Theta);
}

double Rng::normal(double Mean, double Stddev) {
  return Mean + Stddev * normal();
}

uint64_t Rng::below(uint64_t N) {
  if (N == 0)
    return 0;
  // Rejection-free Lemire-style mapping is fine for benchmark purposes.
  return next() % N;
}

bool Rng::bernoulli(double P) { return uniform() < P; }

double Rng::arcsine() {
  // Inverse CDF of the arcsine distribution: F^-1(u) = sin^2(pi*u/2).
  const double S = std::sin(M_PI * uniform() / 2.0);
  return S * S;
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ull); }

} // namespace genprove
