//===- util/timer.h - Wall-clock timing -----------------------*- C++ -*-===//
///
/// \file
/// Minimal wall-clock stopwatch used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_TIMER_H
#define GENPROVE_UTIL_TIMER_H

#include <chrono>

namespace genprove {

/// Wall-clock stopwatch; starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Restart the stopwatch.
  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace genprove

#endif // GENPROVE_UTIL_TIMER_H
