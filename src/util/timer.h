//===- util/timer.h - Wall-clock timing -----------------------*- C++ -*-===//
///
/// \file
/// Minimal wall-clock stopwatch used by the benchmark harnesses, plus an
/// accumulating pause/resume stopwatch used by the tracing layer to measure
/// a span's self time (total time minus time spent in child spans).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_UTIL_TIMER_H
#define GENPROVE_UTIL_TIMER_H

#include <chrono>

namespace genprove {

/// Wall-clock stopwatch; starts on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Restart the stopwatch.
  void reset() { Start = Clock::now(); }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Accumulating stopwatch with pause/resume. Unlike Timer it starts
/// stopped, and seconds() only counts the intervals between start()/resume()
/// and the matching pause(). ScopedSpan pauses its own accumulator while a
/// child span runs, which yields exclusive (self) time.
class AccumTimer {
public:
  /// Begin (or resume) accumulating; no-op when already running.
  void start() {
    if (Running)
      return;
    SegmentStart = Clock::now();
    Running = true;
  }

  /// Synonym for start(), for call sites that read better as a resume.
  void resume() { start(); }

  /// Stop accumulating, keeping the total; no-op when already paused.
  void pause() {
    if (!Running)
      return;
    Accumulated +=
        std::chrono::duration<double>(Clock::now() - SegmentStart).count();
    Running = false;
  }

  /// Accumulated seconds, including the currently running segment.
  double seconds() const {
    double Total = Accumulated;
    if (Running)
      Total +=
          std::chrono::duration<double>(Clock::now() - SegmentStart).count();
    return Total;
  }

  bool running() const { return Running; }

  /// Back to zero, stopped.
  void reset() {
    Accumulated = 0.0;
    Running = false;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point SegmentStart{};
  double Accumulated = 0.0;
  bool Running = false;
};

} // namespace genprove

#endif // GENPROVE_UTIL_TIMER_H
