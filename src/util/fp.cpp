//===- util/fp.cpp --------------------------------------------*- C++ -*-===//

#include "src/util/fp.h"

#include <atomic>

namespace genprove {

namespace {
std::atomic<bool> SoundRounding{false};
} // namespace

bool soundRoundingEnabled() {
  return SoundRounding.load(std::memory_order_relaxed);
}

void setSoundRounding(bool On) {
  SoundRounding.store(On, std::memory_order_relaxed);
}

namespace fp {

// Neumaier's variant of Kahan summation: the magnitude-ordered Fast2Sum
// makes each per-step error term exact, so Exact = S + sum(E_i) holds as a
// real-number identity. Bounding sum(E_i) with directed additions then
// turns the compensated result into a true one-sided bound.

double sumUp(const double *Values, int64_t Count) {
  if (Count == 0)
    return 0.0;
  double S = 0.0;
  double C = 0.0; // directed upper bound on the accumulated error terms
  for (int64_t I = 0; I < Count; ++I) {
    const double V = Values[I];
    const double T = S + V;
    const double E =
        std::fabs(S) >= std::fabs(V) ? (S - T) + V : (V - T) + S;
    C = addUp(C, E);
    S = T;
  }
  return addUp(S, C);
}

double sumDown(const double *Values, int64_t Count) {
  if (Count == 0)
    return 0.0;
  double S = 0.0;
  double C = 0.0; // directed lower bound on the accumulated error terms
  for (int64_t I = 0; I < Count; ++I) {
    const double V = Values[I];
    const double T = S + V;
    const double E =
        std::fabs(S) >= std::fabs(V) ? (S - T) + V : (V - T) + S;
    C = addDown(C, E);
    S = T;
  }
  return addDown(S, C);
}

} // namespace fp

} // namespace genprove
