//===- obs/snapshot.cpp ---------------------------------------*- C++ -*-===//

#include "src/obs/snapshot.h"

#include "src/obs/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace genprove {

namespace {

/// Doubles travel as %.17g strings so strtod reproduces them bit-exactly;
/// unlike JsonWriter::value(double), this keeps "inf"/"-inf"/"nan" (as
/// strings) instead of collapsing non-finite values to null — an empty
/// histogram's Min/Max sentinels must survive the round trip.
std::string encodeDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

bool decodeDouble(const JsonValue &V, double &Out) {
  if (V.K != JsonValue::Kind::String)
    return false;
  const char *Text = V.Str.c_str();
  char *End = nullptr;
  Out = std::strtod(Text, &End);
  return End != Text && *End == '\0';
}

bool fail(std::string *Error, const char *Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// HistogramSnapshot
//===----------------------------------------------------------------------===//

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  Count += Other.Count;
  Sum += Other.Sum;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
  for (size_t I = 0; I < Buckets.size(); ++I)
    Buckets[I] += Other.Buckets[I];
}

void HistogramSnapshot::record(double V) {
  Buckets[static_cast<size_t>(Histogram::bucketIndex(V))] += 1;
  Count += 1;
  if (V == V) {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  if (std::isfinite(V))
    Sum += V;
}

double histogramPercentile(const HistogramSnapshot &H, double Q) {
  return quantileFromBuckets(H.Buckets.data(), Histogram::NumBuckets, H.Count,
                             H.Min, H.Max, Q);
}

//===----------------------------------------------------------------------===//
// Gauge merge policy and labeling
//===----------------------------------------------------------------------===//

GaugeMerge gaugeMergePolicy(const std::string &Name) {
  const size_t Brace = Name.find('{');
  const std::string Base =
      Brace == std::string::npos ? Name : Name.substr(0, Brace);
  if (Base.find("peak") != std::string::npos)
    return GaugeMerge::Max;
  if (Base.size() >= 8 && Base.compare(Base.size() - 8, 8, "_seconds") == 0)
    return GaugeMerge::Sum;
  return GaugeMerge::Last;
}

std::string labeledMetricName(const std::string &Name, const std::string &Key,
                              const std::string &Value) {
  const std::string Label = Key + "=\"" + Value + "\"";
  if (!Name.empty() && Name.back() == '}') {
    std::string Out = Name;
    Out.insert(Out.size() - 1, "," + Label);
    return Out;
  }
  return Name + "{" + Label + "}";
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

MetricsSnapshot MetricsSnapshot::capture(const MetricsRegistry &Registry) {
  MetricsSnapshot S;
  for (const Counter *C : Registry.counterList())
    S.Counters[C->name()] = C->value();
  for (const Gauge *G : Registry.gaugeList())
    S.Gauges[G->name()] = G->value();
  for (const Histogram *H : Registry.histogramList()) {
    HistogramSnapshot &HS = S.Histograms[H->name()];
    HS.Count = H->count();
    HS.Sum = H->total();
    HS.Min = H->minSample();
    HS.Max = H->maxSample();
    for (int I = 0; I < Histogram::NumBuckets; ++I)
      HS.Buckets[static_cast<size_t>(I)] = H->bucketCount(I);
  }
  return S;
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (const auto &[Name, V] : Other.Counters)
    Counters[Name] += V;
  for (const auto &[Name, V] : Other.Gauges) {
    auto It = Gauges.find(Name);
    if (It == Gauges.end()) {
      Gauges.emplace(Name, V);
      continue;
    }
    switch (gaugeMergePolicy(Name)) {
    case GaugeMerge::Last:
      It->second = V;
      break;
    case GaugeMerge::Max:
      It->second = std::max(It->second, V);
      break;
    case GaugeMerge::Sum:
      It->second += V;
      break;
    }
  }
  for (const auto &[Name, V] : Other.Histograms)
    Histograms[Name].merge(V);
}

MetricsSnapshot MetricsSnapshot::withLabel(const std::string &Key,
                                           const std::string &Value) const {
  MetricsSnapshot Out;
  for (const auto &[Name, V] : Counters)
    Out.Counters[labeledMetricName(Name, Key, Value)] = V;
  for (const auto &[Name, V] : Gauges)
    Out.Gauges[labeledMetricName(Name, Key, Value)] = V;
  for (const auto &[Name, V] : Histograms)
    Out.Histograms[labeledMetricName(Name, Key, Value)] = V;
  return Out;
}

std::string MetricsSnapshot::toJson() const {
  JsonWriter W;
  W.beginObject();

  W.key("counters").beginObject();
  for (const auto &[Name, V] : Counters)
    W.key(Name).value(V);
  W.endObject();

  W.key("gauges").beginObject();
  for (const auto &[Name, V] : Gauges)
    W.key(Name).value(encodeDouble(V));
  W.endObject();

  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H.Count);
    W.key("sum").value(encodeDouble(H.Sum));
    W.key("min").value(encodeDouble(H.Min));
    W.key("max").value(encodeDouble(H.Max));
    W.key("buckets").beginArray();
    for (int I = 0; I < Histogram::NumBuckets; ++I) {
      const int64_t C = H.Buckets[static_cast<size_t>(I)];
      if (C == 0)
        continue;
      W.beginArray().value(int64_t(I)).value(C).endArray();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return W.str();
}

bool MetricsSnapshot::fromJson(const JsonValue &V, MetricsSnapshot &Out,
                               std::string *Error) {
  Out = MetricsSnapshot();
  if (V.K != JsonValue::Kind::Object)
    return fail(Error, "snapshot: not an object");

  if (const JsonValue *C = V.find("counters")) {
    if (C->K != JsonValue::Kind::Object)
      return fail(Error, "snapshot: counters is not an object");
    for (const auto &[Name, Val] : C->Members) {
      if (Val.K != JsonValue::Kind::Number)
        return fail(Error, "snapshot: counter value is not a number");
      Out.Counters[Name] = Val.intOr(0);
    }
  }

  if (const JsonValue *G = V.find("gauges")) {
    if (G->K != JsonValue::Kind::Object)
      return fail(Error, "snapshot: gauges is not an object");
    for (const auto &[Name, Val] : G->Members) {
      double D = 0.0;
      if (!decodeDouble(Val, D))
        return fail(Error, "snapshot: gauge value is not a numeric string");
      Out.Gauges[Name] = D;
    }
  }

  if (const JsonValue *Hs = V.find("histograms")) {
    if (Hs->K != JsonValue::Kind::Object)
      return fail(Error, "snapshot: histograms is not an object");
    for (const auto &[Name, Val] : Hs->Members) {
      if (Val.K != JsonValue::Kind::Object)
        return fail(Error, "snapshot: histogram is not an object");
      HistogramSnapshot H;
      const JsonValue *Count = Val.find("count");
      H.Count = Count ? Count->intOr(0) : 0;
      const JsonValue *Sum = Val.find("sum");
      const JsonValue *Min = Val.find("min");
      const JsonValue *Max = Val.find("max");
      if (!Sum || !decodeDouble(*Sum, H.Sum) || !Min ||
          !decodeDouble(*Min, H.Min) || !Max || !decodeDouble(*Max, H.Max))
        return fail(Error, "snapshot: histogram stats are malformed");
      if (const JsonValue *Buckets = Val.find("buckets")) {
        if (Buckets->K != JsonValue::Kind::Array)
          return fail(Error, "snapshot: histogram buckets is not an array");
        for (const JsonValue &Pair : Buckets->Items) {
          if (Pair.K != JsonValue::Kind::Array || Pair.Items.size() != 2)
            return fail(Error, "snapshot: bucket entry is not [index,count]");
          const int64_t Index = Pair.Items[0].intOr(-1);
          if (Index < 0 || Index >= Histogram::NumBuckets)
            return fail(Error, "snapshot: bucket index out of range");
          H.Buckets[static_cast<size_t>(Index)] = Pair.Items[1].intOr(0);
        }
      }
      Out.Histograms.emplace(Name, H);
    }
  }
  return true;
}

bool MetricsSnapshot::fromJsonText(const std::string &Text,
                                   MetricsSnapshot &Out, std::string *Error) {
  JsonValue V;
  if (!parseJson(Text, V, Error))
    return false;
  return fromJson(V, Out, Error);
}

//===----------------------------------------------------------------------===//
// Registry fold
//===----------------------------------------------------------------------===//

void foldIntoRegistry(MetricsRegistry &Registry,
                      const MetricsSnapshot &Snapshot) {
  for (const auto &[Name, V] : Snapshot.Counters)
    Registry.counter(Name).absorb(V);
  for (const auto &[Name, V] : Snapshot.Gauges) {
    Gauge &G = Registry.gauge(Name);
    switch (gaugeMergePolicy(Name)) {
    case GaugeMerge::Last:
      G.absorbSet(V);
      break;
    case GaugeMerge::Max:
      G.absorbMax(V);
      break;
    case GaugeMerge::Sum:
      G.absorbAdd(V);
      break;
    }
  }
  for (const auto &[Name, H] : Snapshot.Histograms) {
    Histogram &Dst = Registry.histogram(Name);
    for (int I = 0; I < Histogram::NumBuckets; ++I)
      if (H.Buckets[static_cast<size_t>(I)] != 0)
        Dst.absorbBucket(I, H.Buckets[static_cast<size_t>(I)]);
    Dst.absorbStats(H.Count, H.Sum, H.Min, H.Max);
  }
}

} // namespace genprove
