//===- obs/snapshot.h - Serializable metrics snapshots ----------*- C++ -*-===//
///
/// \file
/// The cross-process half of the metrics layer: a value-type snapshot of a
/// MetricsRegistry that can be serialized to JSON, shipped over the shard
/// protocol, merged with other snapshots and folded back into a registry.
///
/// Merge semantics (documented in docs/OBSERVABILITY.md):
///   - counters merge by summation;
///   - gauges merge by a per-name reduction policy (gaugeMergePolicy):
///     peaks take the max, cumulative `*_seconds` gauges sum, everything
///     else is last-write-wins (the right-hand operand);
///   - histograms merge bucket-wise (counts add per bucket; count/sum add,
///     min/max reduce), which is associative and commutative, so shard
///     merge order never changes the result.
///
/// The JSON wire format encodes every double as a %.17g string (strtod
/// round-trips that bit-exactly, including "inf"/"-inf" for the min/max
/// sentinels of an empty histogram) and counters/bucket counts as plain
/// integers, so encode(decode(x)) == x bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_SNAPSHOT_H
#define GENPROVE_OBS_SNAPSHOT_H

#include "src/obs/metrics.h"

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>

namespace genprove {

struct JsonValue;

/// Full-bucket snapshot of one histogram. Buckets is dense (all
/// Histogram::NumBuckets entries) in memory but serialized sparsely as
/// [index, count] pairs.
struct HistogramSnapshot {
  int64_t Count = 0;
  double Sum = 0.0;
  double Min = std::numeric_limits<double>::infinity();
  double Max = -std::numeric_limits<double>::infinity();
  std::array<int64_t, Histogram::NumBuckets> Buckets{};

  void merge(const HistogramSnapshot &Other);
  void record(double V); ///< test/offline helper mirroring Histogram::record
};

/// How two values of one gauge combine when snapshots merge.
enum class GaugeMerge : uint8_t {
  Last, ///< right-hand operand wins (configs, instantaneous readings)
  Max,  ///< high-water marks ("peak" in the name)
  Sum,  ///< cumulative totals (`*_seconds` busy/idle style)
};

/// Merge policy for a gauge name; any `{...}` label suffix is ignored.
GaugeMerge gaugeMergePolicy(const std::string &Name);

/// `name` + `{key="value"}`, appending into an existing label block when
/// the name already carries one: `a{x="1"}` + (shard, 0) = `a{x="1",shard="0"}`.
std::string labeledMetricName(const std::string &Name, const std::string &Key,
                              const std::string &Value);

/// A serializable copy of a registry's metrics.
struct MetricsSnapshot {
  std::map<std::string, int64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;

  /// Copy every registered metric out of a registry.
  static MetricsSnapshot capture(const MetricsRegistry &Registry);

  /// Fold Other into this snapshot under the semantics above.
  void merge(const MetricsSnapshot &Other);

  /// Copy with every metric renamed via labeledMetricName — the
  /// `shard=<id>` dimension the supervisor folds worker snapshots under.
  MetricsSnapshot withLabel(const std::string &Key,
                            const std::string &Value) const;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Bit-exact JSON wire encoding (see file comment).
  std::string toJson() const;

  /// Decode; false (with *Error set) on malformed input.
  static bool fromJson(const JsonValue &V, MetricsSnapshot &Out,
                       std::string *Error = nullptr);
  static bool fromJsonText(const std::string &Text, MetricsSnapshot &Out,
                           std::string *Error = nullptr);
};

/// Quantile estimate (Q in [0,1]) from a histogram snapshot; NaN when empty.
double histogramPercentile(const HistogramSnapshot &H, double Q);

/// Fold a snapshot into a live registry using the merge-plane (absorb)
/// mutators, which work even while the metrics switch is off. Counters
/// add, gauges apply their merge policy, histograms fold bucket-wise.
void foldIntoRegistry(MetricsRegistry &Registry,
                      const MetricsSnapshot &Snapshot);

} // namespace genprove

#endif // GENPROVE_OBS_SNAPSHOT_H
