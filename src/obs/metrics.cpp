//===- obs/metrics.cpp ----------------------------------------*- C++ -*-===//

#include "src/obs/metrics.h"

#include "src/obs/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

namespace genprove {

namespace obs_detail {
std::atomic<bool> MetricsEnabledFlag{false};
} // namespace obs_detail

//===----------------------------------------------------------------------===//
// Quantile extraction
//===----------------------------------------------------------------------===//

double quantileFromBuckets(const int64_t *Buckets, int NumBuckets,
                           int64_t Count, double MinSample, double MaxSample,
                           double Q) {
  if (Count <= 0)
    return std::numeric_limits<double>::quiet_NaN();
  Q = std::clamp(Q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based, in [1, Count].
  const int64_t Rank =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(Q * double(Count))));
  int64_t Before = 0;
  for (int I = 0; I < NumBuckets; ++I) {
    const int64_t C = Buckets[I];
    if (C <= 0)
      continue;
    if (Before + C < Rank) {
      Before += C;
      continue;
    }
    Histogram::Bucket B = Histogram::bucketBounds(I);
    // Clamp the bucket to the observed sample range so the estimate
    // never leaves the data; this also makes the edge buckets
    // (-inf, 0] and (2^MaxExp, +inf] produce finite answers whenever
    // the samples themselves were finite.
    double Lo = B.Lo;
    double Hi = B.Hi;
    if (std::isfinite(MinSample))
      Lo = std::max(Lo, MinSample);
    if (std::isfinite(MaxSample))
      Hi = std::min(Hi, MaxSample);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    // The rank falls among non-finite samples (e.g. all mass in the +inf
    // overflow bucket, or a -inf underflow): the honest quantile is the
    // infinity itself. Fabricating a finite edge here would let
    // run_report.json percentiles and merged worker snapshots disagree
    // about the same histogram.
    if (!std::isfinite(Hi))
      return Hi;
    // Mixed bucket whose lower clamp stayed at -inf (finite samples also
    // landed here): collapse to the finite upper edge — the documented
    // "bucket upper edge" answer.
    if (!std::isfinite(Lo))
      Lo = Hi;
    const double Frac = double(Rank - Before) / double(C);
    return Lo + (Hi - Lo) * Frac;
  }
  // Bucket totals were short of Count (torn concurrent snapshot);
  // answer with the largest observed sample rather than failing.
  return std::isfinite(MaxSample) ? MaxSample
                                  : std::numeric_limits<double>::quiet_NaN();
}

double histogramQuantile(const Histogram &H, double Q) {
  std::array<int64_t, Histogram::NumBuckets> Buckets;
  for (int I = 0; I < Histogram::NumBuckets; ++I)
    Buckets[static_cast<size_t>(I)] = H.bucketCount(I);
  return quantileFromBuckets(Buckets.data(), Histogram::NumBuckets, H.count(),
                             H.minSample(), H.maxSample(), Q);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int Histogram::bucketIndex(double V) {
  if (!(V > 0.0)) // covers 0, negatives and NaN
    return 0;
  if (std::isinf(V))
    return NumBuckets - 1;
  int Exp = 0;
  const double Mantissa = std::frexp(V, &Exp); // V = Mantissa * 2^Exp
  // frexp puts Mantissa in [0.5, 1): V lies in (2^(Exp-1), 2^Exp] except
  // when Mantissa == 0.5 exactly, where V == 2^(Exp-1).
  int E = Mantissa == 0.5 ? Exp - 1 : Exp;
  if (E > MaxExp)
    return NumBuckets - 1;
  if (E < MinExp)
    E = MinExp; // the lowest positive bucket absorbs the tail
  return E - MinExp + 1;
}

Histogram::Bucket Histogram::bucketBounds(int Index) {
  constexpr double Inf = std::numeric_limits<double>::infinity();
  Bucket B;
  if (Index <= 0) {
    B.Lo = -Inf;
    B.Hi = 0.0;
  } else if (Index >= NumBuckets - 1) {
    B.Lo = std::ldexp(1.0, MaxExp);
    B.Hi = Inf;
  } else {
    const int E = MinExp + Index - 1;
    B.Lo = Index == 1 ? 0.0 : std::ldexp(1.0, E - 1);
    B.Hi = std::ldexp(1.0, E);
  }
  return B;
}

std::vector<Histogram::Bucket> Histogram::nonEmptyBuckets() const {
  std::vector<Bucket> Out;
  for (int I = 0; I < NumBuckets; ++I) {
    const int64_t C = bucketCount(I);
    if (C == 0)
      continue;
    Bucket B = bucketBounds(I);
    B.Count = C;
    Out.push_back(B);
  }
  return Out;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  NumSamples.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  MinSample.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  MaxSample.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::unique_ptr<Counter>(new Counter(Name)))
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(Name, std::unique_ptr<Gauge>(new Gauge(Name))).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(Name, std::unique_ptr<Histogram>(new Histogram(Name)))
             .first;
  return *It->second;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : It->second.get();
}

const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : It->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}

std::vector<const Counter *> MetricsRegistry::counterList() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const Counter *> Out;
  Out.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    Out.push_back(C.get());
  return Out;
}

std::vector<const Gauge *> MetricsRegistry::gaugeList() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const Gauge *> Out;
  Out.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    Out.push_back(G.get());
  return Out;
}

std::vector<const Histogram *> MetricsRegistry::histogramList() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<const Histogram *> Out;
  Out.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms)
    Out.push_back(H.get());
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  JsonWriter W;
  W.beginObject();

  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    W.key(Name).value(C->value());
  W.endObject();

  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.key(Name).value(G->value());
  W.endObject();

  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H->count());
    W.key("sum").value(H->total());
    // Non-finite min/max (empty histogram, or inf samples) render as null.
    W.key("min").value(H->minSample());
    W.key("max").value(H->maxSample());
    // NaN percentiles (empty histogram) render as null too.
    W.key("p50").value(histogramQuantile(*H, 0.50));
    W.key("p90").value(histogramQuantile(*H, 0.90));
    W.key("p99").value(histogramQuantile(*H, 0.99));
    W.key("buckets").beginArray();
    for (const Histogram::Bucket &B : H->nonEmptyBuckets()) {
      W.beginObject();
      W.key("lo").value(B.Lo);
      W.key("hi").value(B.Hi);
      W.key("count").value(B.Count);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return W.str();
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toJson() << '\n';
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition
//===----------------------------------------------------------------------===//

namespace {

/// Split a registry name of the form `base{key="value",...}` into the
/// Prometheus-sanitized base name and the raw label body (without the
/// braces; empty when the name carries no labels).
void splitPromName(const std::string &Name, std::string &Base,
                   std::string &Labels) {
  const size_t Brace = Name.find('{');
  const std::string Raw =
      Brace == std::string::npos ? Name : Name.substr(0, Brace);
  Labels.clear();
  if (Brace != std::string::npos && Name.back() == '}')
    Labels = Name.substr(Brace + 1, Name.size() - Brace - 2);
  Base = "genprove_";
  for (char C : Raw) {
    const bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                    (C >= '0' && C <= '9') || C == '_' || C == ':';
    Base.push_back(Ok ? C : '_');
  }
}

std::string promDouble(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "+Inf" : "-Inf";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

/// `name{labels}` or `name{labels,extra}` with empty parts elided.
std::string promSeries(const std::string &Base, const std::string &Labels,
                       const std::string &Extra = "") {
  std::string S = Base;
  if (!Labels.empty() || !Extra.empty()) {
    S += '{';
    S += Labels;
    if (!Labels.empty() && !Extra.empty())
      S += ',';
    S += Extra;
    S += '}';
  }
  return S;
}

void promTypeLine(std::string &Out, std::set<std::string> &Seen,
                  const std::string &Base, const char *Type) {
  if (!Seen.insert(Base).second)
    return;
  Out += "# TYPE ";
  Out += Base;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

} // namespace

std::string MetricsRegistry::toPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  std::set<std::string> Seen;
  // The maps are name-ordered, so `a` and its labeled series `a{...}`
  // are adjacent and share one TYPE line via the Seen set.
  for (const auto &[Name, C] : Counters) {
    std::string Base, Labels;
    splitPromName(Name, Base, Labels);
    promTypeLine(Out, Seen, Base, "counter");
    Out += promSeries(Base, Labels) + ' ' + std::to_string(C->value()) + '\n';
  }
  for (const auto &[Name, G] : Gauges) {
    std::string Base, Labels;
    splitPromName(Name, Base, Labels);
    promTypeLine(Out, Seen, Base, "gauge");
    Out += promSeries(Base, Labels) + ' ' + promDouble(G->value()) + '\n';
  }
  for (const auto &[Name, H] : Histograms) {
    std::string Base, Labels;
    splitPromName(Name, Base, Labels);
    promTypeLine(Out, Seen, Base, "histogram");
    int64_t Cum = 0;
    for (const Histogram::Bucket &B : H->nonEmptyBuckets()) {
      Cum += B.Count;
      Out += promSeries(Base + "_bucket", Labels,
                        "le=\"" + promDouble(B.Hi) + "\"") +
             ' ' + std::to_string(Cum) + '\n';
    }
    // Prometheus requires the +Inf bucket even when empty.
    if (Cum == 0 || H->bucketCount(Histogram::NumBuckets - 1) == 0)
      Out += promSeries(Base + "_bucket", Labels, "le=\"+Inf\"") + ' ' +
             std::to_string(Cum) + '\n';
    Out += promSeries(Base + "_sum", Labels) + ' ' + promDouble(H->total()) +
           '\n';
    Out += promSeries(Base + "_count", Labels) + ' ' +
           std::to_string(H->count()) + '\n';
  }
  return Out;
}

bool MetricsRegistry::writePrometheus(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toPrometheus();
  return static_cast<bool>(Out);
}

} // namespace genprove
