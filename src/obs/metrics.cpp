//===- obs/metrics.cpp ----------------------------------------*- C++ -*-===//

#include "src/obs/metrics.h"

#include "src/obs/json.h"

#include <cmath>
#include <fstream>

namespace genprove {

namespace obs_detail {
std::atomic<bool> MetricsEnabledFlag{false};
} // namespace obs_detail

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

int Histogram::bucketIndex(double V) {
  if (!(V > 0.0)) // covers 0, negatives and NaN
    return 0;
  if (std::isinf(V))
    return NumBuckets - 1;
  int Exp = 0;
  const double Mantissa = std::frexp(V, &Exp); // V = Mantissa * 2^Exp
  // frexp puts Mantissa in [0.5, 1): V lies in (2^(Exp-1), 2^Exp] except
  // when Mantissa == 0.5 exactly, where V == 2^(Exp-1).
  int E = Mantissa == 0.5 ? Exp - 1 : Exp;
  if (E > MaxExp)
    return NumBuckets - 1;
  if (E < MinExp)
    E = MinExp; // the lowest positive bucket absorbs the tail
  return E - MinExp + 1;
}

Histogram::Bucket Histogram::bucketBounds(int Index) {
  constexpr double Inf = std::numeric_limits<double>::infinity();
  Bucket B;
  if (Index <= 0) {
    B.Lo = -Inf;
    B.Hi = 0.0;
  } else if (Index >= NumBuckets - 1) {
    B.Lo = std::ldexp(1.0, MaxExp);
    B.Hi = Inf;
  } else {
    const int E = MinExp + Index - 1;
    B.Lo = Index == 1 ? 0.0 : std::ldexp(1.0, E - 1);
    B.Hi = std::ldexp(1.0, E);
  }
  return B;
}

std::vector<Histogram::Bucket> Histogram::nonEmptyBuckets() const {
  std::vector<Bucket> Out;
  for (int I = 0; I < NumBuckets; ++I) {
    const int64_t C = bucketCount(I);
    if (C == 0)
      continue;
    Bucket B = bucketBounds(I);
    B.Count = C;
    Out.push_back(B);
  }
  return Out;
}

void Histogram::reset() {
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
  NumSamples.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  MinSample.store(std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
  MaxSample.store(-std::numeric_limits<double>::infinity(),
                  std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry Registry;
  return Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::unique_ptr<Counter>(new Counter(Name)))
             .first;
  return *It->second;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(Name, std::unique_ptr<Gauge>(new Gauge(Name))).first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms
             .emplace(Name, std::unique_ptr<Histogram>(new Histogram(Name)))
             .first;
  return *It->second;
}

const Counter *MetricsRegistry::findCounter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : It->second.get();
}

const Gauge *MetricsRegistry::findGauge(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : It->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  JsonWriter W;
  W.beginObject();

  W.key("counters").beginObject();
  for (const auto &[Name, C] : Counters)
    W.key(Name).value(C->value());
  W.endObject();

  W.key("gauges").beginObject();
  for (const auto &[Name, G] : Gauges)
    W.key(Name).value(G->value());
  W.endObject();

  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.key("count").value(H->count());
    W.key("sum").value(H->total());
    // Non-finite min/max (empty histogram, or inf samples) render as null.
    W.key("min").value(H->minSample());
    W.key("max").value(H->maxSample());
    W.key("buckets").beginArray();
    for (const Histogram::Bucket &B : H->nonEmptyBuckets()) {
      W.beginObject();
      W.key("lo").value(B.Lo);
      W.key("hi").value(B.Hi);
      W.key("count").value(B.Count);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return W.str();
}

bool MetricsRegistry::writeJson(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toJson() << '\n';
  return static_cast<bool>(Out);
}

} // namespace genprove
