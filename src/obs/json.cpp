//===- obs/json.cpp -------------------------------------------*- C++ -*-===//

#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace genprove {

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (AfterKey)
    return; // the key already emitted ':'; the value follows directly.
  if (!HasValue.empty() && HasValue.back())
    Out += ',';
}

void JsonWriter::closeValue() {
  if (!HasValue.empty())
    HasValue.back() = true;
  AfterKey = false;
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += '{';
  HasValue.push_back(false);
  AfterKey = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  if (!HasValue.empty())
    HasValue.pop_back();
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += '[';
  HasValue.push_back(false);
  AfterKey = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  if (!HasValue.empty())
    HasValue.pop_back();
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  separate();
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  AfterKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  separate();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V ? V : ""));
}

JsonWriter &JsonWriter::value(double V) {
  if (!std::isfinite(V))
    return nullValue();
  separate();
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  separate();
  Out += std::to_string(V);
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  Out += V ? "true" : "false";
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::nullValue() {
  separate();
  Out += "null";
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Json) {
  separate();
  Out += Json;
  closeValue();
  return *this;
}

std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// validateJson — a minimal recursive-descent checker.
//===----------------------------------------------------------------------===//

namespace {

struct JsonParser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;
  static constexpr int MaxDepth = 512;

  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    for (const char *P = Word; *P; ++P, ++Pos)
      if (Pos >= Text.size() || Text[Pos] != *P)
        return fail(std::string("bad literal (expected ") + Word + ")");
    return true;
  }

  bool string() {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("dangling escape");
        const char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return fail("bad \\u escape");
          }
        } else if (std::string_view("\"\\/bfnrt").find(E) ==
                   std::string_view::npos) {
          return fail("bad escape");
        }
        ++Pos;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return fail("unescaped control character");
      } else {
        ++Pos;
      }
    }
    return fail("unterminated string");
  }

  bool number() {
    const size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("bad number");
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad fraction");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{': {
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        if (!string())
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        if (!value(Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        if (!value(Depth + 1))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

} // namespace

bool validateJson(const std::string &Text, std::string *Error) {
  JsonParser P(Text);
  bool Ok = P.value(0);
  if (Ok) {
    P.skipWs();
    if (P.Pos != Text.size()) {
      P.fail("trailing garbage");
      Ok = false;
    }
  }
  if (!Ok && Error)
    *Error = P.Error;
  return Ok;
}

} // namespace genprove
