//===- obs/json.cpp -------------------------------------------*- C++ -*-===//

#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace genprove {

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::separate() {
  if (AfterKey)
    return; // the key already emitted ':'; the value follows directly.
  if (!HasValue.empty() && HasValue.back())
    Out += ',';
}

void JsonWriter::closeValue() {
  if (!HasValue.empty())
    HasValue.back() = true;
  AfterKey = false;
}

JsonWriter &JsonWriter::beginObject() {
  separate();
  Out += '{';
  HasValue.push_back(false);
  AfterKey = false;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  Out += '}';
  if (!HasValue.empty())
    HasValue.pop_back();
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  separate();
  Out += '[';
  HasValue.push_back(false);
  AfterKey = false;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  Out += ']';
  if (!HasValue.empty())
    HasValue.pop_back();
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::key(const std::string &K) {
  separate();
  Out += '"';
  Out += jsonEscape(K);
  Out += "\":";
  AfterKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(const std::string &V) {
  separate();
  Out += '"';
  Out += jsonEscape(V);
  Out += '"';
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(const char *V) {
  return value(std::string(V ? V : ""));
}

JsonWriter &JsonWriter::value(double V) {
  if (!std::isfinite(V))
    return nullValue();
  separate();
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(int64_t V) {
  separate();
  Out += std::to_string(V);
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::value(bool V) {
  separate();
  Out += V ? "true" : "false";
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::nullValue() {
  separate();
  Out += "null";
  closeValue();
  return *this;
}

JsonWriter &JsonWriter::raw(const std::string &Json) {
  separate();
  Out += Json;
  closeValue();
  return *this;
}

std::string jsonEscape(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (unsigned char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// validateJson — a minimal recursive-descent checker.
//===----------------------------------------------------------------------===//

namespace {

struct JsonParser {
  const std::string &Text;
  size_t Pos = 0;
  std::string Error;
  static constexpr int MaxDepth = 512;

  explicit JsonParser(const std::string &Text) : Text(Text) {}

  bool fail(const std::string &Message) {
    if (Error.empty())
      Error = Message + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    for (const char *P = Word; *P; ++P, ++Pos)
      if (Pos >= Text.size() || Text[Pos] != *P)
        return fail(std::string("bad literal (expected ") + Word + ")");
    return true;
  }

  /// Append codepoint \p Cp to \p Out as UTF-8 (enough for the \uXXXX
  /// escapes JsonWriter emits; surrogate pairs are not recombined).
  static void appendUtf8(std::string *Out, unsigned Cp) {
    if (!Out)
      return;
    if (Cp < 0x80) {
      Out->push_back(static_cast<char>(Cp));
    } else if (Cp < 0x800) {
      Out->push_back(static_cast<char>(0xc0 | (Cp >> 6)));
      Out->push_back(static_cast<char>(0x80 | (Cp & 0x3f)));
    } else {
      Out->push_back(static_cast<char>(0xe0 | (Cp >> 12)));
      Out->push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3f)));
      Out->push_back(static_cast<char>(0x80 | (Cp & 0x3f)));
    }
  }

  bool string(std::string *Out = nullptr) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected '\"'");
    ++Pos;
    while (Pos < Text.size()) {
      const char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("dangling escape");
        const char E = Text[Pos];
        if (E == 'u') {
          unsigned Cp = 0;
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (Pos >= Text.size() ||
                !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return fail("bad \\u escape");
            const char H = Text[Pos];
            Cp = Cp * 16 +
                 static_cast<unsigned>(H <= '9'   ? H - '0'
                                       : H <= 'F' ? H - 'A' + 10
                                                  : H - 'a' + 10);
          }
          appendUtf8(Out, Cp);
        } else if (std::string_view("\"\\/bfnrt").find(E) ==
                   std::string_view::npos) {
          return fail("bad escape");
        } else if (Out) {
          switch (E) {
          case 'b':
            Out->push_back('\b');
            break;
          case 'f':
            Out->push_back('\f');
            break;
          case 'n':
            Out->push_back('\n');
            break;
          case 'r':
            Out->push_back('\r');
            break;
          case 't':
            Out->push_back('\t');
            break;
          default:
            Out->push_back(E); // '"', '\\', '/'
          }
        }
        ++Pos;
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return fail("unescaped control character");
      } else {
        if (Out)
          Out->push_back(C);
        ++Pos;
      }
    }
    return fail("unterminated string");
  }

  bool number(double *Out = nullptr) {
    const size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || !std::isdigit(static_cast<unsigned char>(Text[Pos])))
      return fail("bad number");
    if (Text[Pos] == '0') {
      ++Pos;
    } else {
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad fraction");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() ||
          !std::isdigit(static_cast<unsigned char>(Text[Pos])))
        return fail("bad exponent");
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
    }
    if (Pos <= Start)
      return false;
    if (Out)
      *Out = std::strtod(Text.c_str() + Start, nullptr);
    return true;
  }

  /// Validate (Out == nullptr) or parse-and-build one value.
  bool value(int Depth, JsonValue *Out = nullptr) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{': {
      if (Out)
        Out->K = JsonValue::Kind::Object;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!string(Out ? &Key : nullptr))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue *Slot = nullptr;
        if (Out) {
          Out->Members.emplace_back(std::move(Key), JsonValue{});
          Slot = &Out->Members.back().second;
        }
        if (!value(Depth + 1, Slot))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      if (Out)
        Out->K = JsonValue::Kind::Array;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue *Slot = nullptr;
        if (Out) {
          Out->Items.emplace_back();
          Slot = &Out->Items.back();
        }
        if (!value(Depth + 1, Slot))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      if (Out)
        Out->K = JsonValue::Kind::String;
      return string(Out ? &Out->Str : nullptr);
    case 't':
      if (Out) {
        Out->K = JsonValue::Kind::Bool;
        Out->B = true;
      }
      return literal("true");
    case 'f':
      if (Out) {
        Out->K = JsonValue::Kind::Bool;
        Out->B = false;
      }
      return literal("false");
    case 'n':
      if (Out)
        Out->K = JsonValue::Kind::Null;
      return literal("null");
    default:
      if (Out)
        Out->K = JsonValue::Kind::Number;
      return number(Out ? &Out->Num : nullptr);
    }
  }
};

/// Run the parser over the whole input, tree-building when Out != nullptr.
bool parseWhole(const std::string &Text, JsonValue *Out, std::string *Error) {
  JsonParser P(Text);
  bool Ok = P.value(0, Out);
  if (Ok) {
    P.skipWs();
    if (P.Pos != Text.size()) {
      P.fail("trailing garbage");
      Ok = false;
    }
  }
  if (!Ok && Error)
    *Error = P.Error;
  return Ok;
}

} // namespace

bool validateJson(const std::string &Text, std::string *Error) {
  return parseWhole(Text, nullptr, Error);
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

bool parseJson(const std::string &Text, JsonValue &Out, std::string *Error) {
  Out = JsonValue{};
  return parseWhole(Text, &Out, Error);
}

} // namespace genprove
