//===- obs/metrics.h - Process-global metrics registry ---------*- C++ -*-===//
///
/// \file
/// A low-overhead metrics layer for the verifier: named monotonic counters,
/// gauges and log-scale histograms, registered in one process-global
/// MetricsRegistry. Mutation is a relaxed atomic op; when metrics are
/// disabled (the default) every mutator is a single flag test and no state
/// changes, so hot loops pay essentially nothing.
///
/// Registration (the name -> metric lookup) takes a mutex, so call sites
/// should hoist it out of loops:
///
///   static Counter &Splits =
///       MetricsRegistry::global().counter("propagate.splits");
///   ...
///   Splits.add(N);   // relaxed atomic add; no-op while metrics are off
///
/// The metric name catalogue lives in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_METRICS_H
#define GENPROVE_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace genprove {

namespace obs_detail {
extern std::atomic<bool> MetricsEnabledFlag;

inline void atomicAddDouble(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Cur, Cur + V, std::memory_order_relaxed)) {
  }
}

inline void atomicMinDouble(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

inline void atomicMaxDouble(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}
} // namespace obs_detail

/// Global metrics switch; default off so benchmarks measure pure kernels.
inline bool metricsEnabled() {
  return obs_detail::MetricsEnabledFlag.load(std::memory_order_relaxed);
}
inline void setMetricsEnabled(bool On) {
  obs_detail::MetricsEnabledFlag.store(On, std::memory_order_relaxed);
}

/// Monotonic counter (e.g. "propagate.splits").
class Counter {
public:
  void add(int64_t Delta = 1) {
    if (metricsEnabled())
      Value.fetch_add(Delta, std::memory_order_relaxed);
  }

  int64_t value() const { return Value.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

  /// Merge-plane mutator: fold a value recorded elsewhere (another
  /// process's snapshot) into this counter. Deliberately ignores the
  /// metrics switch — the delta was already paid for where it was
  /// recorded, and a fold must never silently drop shipped data.
  void absorb(int64_t Delta) {
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }

private:
  friend class MetricsRegistry;
  explicit Counter(std::string Name) : Name(std::move(Name)) {}
  void reset() { Value.store(0, std::memory_order_relaxed); }

  std::string Name;
  std::atomic<int64_t> Value{0};
};

/// Last-write-wins gauge (e.g. "device.peak_bytes").
class Gauge {
public:
  void set(double V) {
    if (metricsEnabled())
      Value.store(V, std::memory_order_relaxed);
  }

  /// Keep the maximum of all set values (monotone high-water mark).
  void setMax(double V) {
    if (metricsEnabled())
      obs_detail::atomicMaxDouble(Value, V);
  }

  /// Accumulate into the gauge (e.g. summed busy/idle seconds across
  /// pool participants).
  void add(double V) {
    if (metricsEnabled())
      obs_detail::atomicAddDouble(Value, V);
  }

  double value() const { return Value.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

  /// Merge-plane mutators: fold a snapshot value from another process.
  /// They ignore the metrics switch (see Counter::absorb).
  void absorbSet(double V) { Value.store(V, std::memory_order_relaxed); }
  void absorbMax(double V) { obs_detail::atomicMaxDouble(Value, V); }
  void absorbAdd(double V) { obs_detail::atomicAddDouble(Value, V); }

private:
  friend class MetricsRegistry;
  explicit Gauge(std::string Name) : Name(std::move(Name)) {}
  void reset() { Value.store(0.0, std::memory_order_relaxed); }

  std::string Name;
  std::atomic<double> Value{0.0};
};

/// Log-scale (base-2) histogram of positive doubles, covering 2^-40 ..
/// 2^40 (~1e-12 s .. ~1e12). Non-positive and NaN samples land in the
/// dedicated low edge bucket; +inf and overflows in the high edge bucket,
/// so no sample is ever dropped. The running sum only accumulates finite
/// samples (a single +inf would otherwise poison it).
class Histogram {
public:
  static constexpr int MinExp = -40;
  static constexpr int MaxExp = 40;
  /// nonpositive + one bucket per exponent + overflow.
  static constexpr int NumBuckets = MaxExp - MinExp + 3;

  struct Bucket {
    double Lo = 0.0; ///< exclusive lower bound
    double Hi = 0.0; ///< inclusive upper bound
    int64_t Count = 0;
  };

  void record(double V) {
    if (!metricsEnabled())
      return;
    Buckets[static_cast<size_t>(bucketIndex(V))].fetch_add(
        1, std::memory_order_relaxed);
    NumSamples.fetch_add(1, std::memory_order_relaxed);
    if (V == V) { // skip NaN for the order statistics
      obs_detail::atomicMinDouble(MinSample, V);
      obs_detail::atomicMaxDouble(MaxSample, V);
    }
    if (std::isfinite(V))
      obs_detail::atomicAddDouble(Sum, V);
  }

  int64_t count() const { return NumSamples.load(std::memory_order_relaxed); }
  double total() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest/largest recorded sample; +inf/-inf when empty.
  double minSample() const { return MinSample.load(std::memory_order_relaxed); }
  double maxSample() const { return MaxSample.load(std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

  int64_t bucketCount(int Index) const {
    return Buckets[static_cast<size_t>(Index)].load(std::memory_order_relaxed);
  }

  /// Snapshot of the occupied buckets, in increasing bound order.
  std::vector<Bucket> nonEmptyBuckets() const;

  /// Bucket index for a sample: 0 for v <= 0 or NaN, NumBuckets-1 for
  /// overflow/+inf, otherwise the bucket whose range (2^(e-1), 2^e]
  /// contains v (clamped to the covered exponent range at the low end).
  static int bucketIndex(double V);

  /// (exclusive lower, inclusive upper) bounds of a bucket; edge buckets
  /// use -inf / +inf.
  static Bucket bucketBounds(int Index);

  /// Merge-plane mutators: fold a histogram snapshot from another
  /// process bucket-by-bucket. They ignore the metrics switch (see
  /// Counter::absorb). absorbStats folds the order statistics and the
  /// finite-sample sum; the caller folds buckets separately so sparse
  /// snapshots only touch occupied buckets.
  void absorbBucket(int Index, int64_t Count) {
    Buckets[static_cast<size_t>(Index)].fetch_add(Count,
                                                  std::memory_order_relaxed);
  }
  void absorbStats(int64_t Count, double SumV, double MinV, double MaxV) {
    NumSamples.fetch_add(Count, std::memory_order_relaxed);
    obs_detail::atomicAddDouble(Sum, SumV);
    obs_detail::atomicMinDouble(MinSample, MinV);
    obs_detail::atomicMaxDouble(MaxSample, MaxV);
  }

private:
  friend class MetricsRegistry;
  explicit Histogram(std::string Name) : Name(std::move(Name)) {}
  void reset();

  std::string Name;
  std::array<std::atomic<int64_t>, NumBuckets> Buckets{};
  std::atomic<int64_t> NumSamples{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> MinSample{std::numeric_limits<double>::infinity()};
  std::atomic<double> MaxSample{-std::numeric_limits<double>::infinity()};
};

/// The process-global registry. Metric objects live for the whole process;
/// references returned by counter()/gauge()/histogram() never dangle.
class MetricsRegistry {
public:
  static MetricsRegistry &global();

  /// Look up or create; thread-safe (mutex on the registration path only).
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Lookup without creation; nullptr when the metric was never touched.
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Histogram *findHistogram(const std::string &Name) const;

  /// Enumerate registered metrics in name order. The pointers never
  /// dangle (metric objects live for the whole process), but the lists
  /// are snapshots: metrics registered after the call are not included.
  std::vector<const Counter *> counterList() const;
  std::vector<const Gauge *> gaugeList() const;
  std::vector<const Histogram *> histogramList() const;

  /// Zero every registered metric (fresh run / test isolation).
  void reset();

  /// Snapshot as a JSON object {"counters":{...},"gauges":{...},
  /// "histograms":{...}}. Histograms include p50/p90/p99 estimates
  /// extracted from the log-scale buckets.
  std::string toJson() const;

  /// Write toJson() to a file; false on I/O error.
  bool writeJson(const std::string &Path) const;

  /// Prometheus text exposition (version 0.0.4). Metric names gain a
  /// `genprove_` prefix and dots become underscores; a `{key="value"}`
  /// suffix on the registry name (see labeledMetricName in snapshot.h)
  /// is re-emitted as Prometheus labels. Histograms use cumulative
  /// `le`-labeled buckets plus `_sum`/`_count` series.
  std::string toPrometheus() const;

  /// Write toPrometheus() to a file; false on I/O error.
  bool writePrometheus(const std::string &Path) const;

private:
  MetricsRegistry() = default;

  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Quantile estimate (Q in [0,1]) from log-scale histogram buckets.
/// Walks the cumulative counts to the bucket holding rank ceil(Q*Count)
/// and interpolates linearly inside it, clamping the bucket bounds to
/// the recorded [min, max] sample range so the estimate never leaves the
/// observed data. Edge contract (pinned by tests; snapshot merges and
/// run_report.json percentiles both route through this function so they
/// cannot diverge):
///   * Count <= 0 (empty histogram)          -> NaN
///   * rank lands among non-finite samples
///     (e.g. all mass in the +inf overflow
///     bucket, or a recorded -inf)           -> that infinity, verbatim
///   * mixed edge bucket whose clamped lower
///     bound stays non-finite                -> the bucket's finite upper
///                                              edge (no interpolation)
///   * single occupied bucket with Lo == Hi  -> that value exactly
///   * bucket totals short of Count (torn
///     concurrent snapshot)                  -> max sample (NaN if none)
double quantileFromBuckets(const int64_t *Buckets, int NumBuckets,
                           int64_t Count, double MinSample, double MaxSample,
                           double Q);

/// Convenience overload reading a live histogram.
double histogramQuantile(const Histogram &H, double Q);

} // namespace genprove

#endif // GENPROVE_OBS_METRICS_H
