//===- obs/json.h - Tiny JSON writer and validator -------------*- C++ -*-===//
///
/// \file
/// The observability exporters (Chrome trace events, metrics snapshots, the
/// bench run report) all emit JSON. JsonWriter is a streaming writer that
/// handles escaping, comma placement and non-finite doubles (emitted as
/// null, since JSON has no Infinity/NaN); validateJson is a minimal
/// recursive-descent checker used by the tests and the CI smoke run to
/// assert the emitted files actually parse.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_JSON_H
#define GENPROVE_OBS_JSON_H

#include <cstdint>
#include <string>
#include <vector>

namespace genprove {

/// Streaming JSON writer. Usage:
///   JsonWriter W;
///   W.beginObject().key("a").value(int64_t(1)).endObject();
///   W.str() == R"({"a":1})"
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  /// Non-finite doubles become null (JSON has no Infinity/NaN literal).
  JsonWriter &value(double V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(bool V);
  JsonWriter &nullValue();

  /// Splice a pre-rendered JSON value verbatim (e.g. a nested snapshot).
  JsonWriter &raw(const std::string &Json);

  const std::string &str() const { return Out; }

private:
  void separate();
  void closeValue();

  std::string Out;
  std::vector<bool> HasValue; ///< per open container: need a comma?
  bool AfterKey = false;
};

/// Escape a string for embedding in a JSON document (without quotes).
std::string jsonEscape(const std::string &Text);

/// True when \p Text is one complete, well-formed JSON value. On failure,
/// \p Error (if non-null) receives a short description with an offset.
bool validateJson(const std::string &Text, std::string *Error = nullptr);

} // namespace genprove

#endif // GENPROVE_OBS_JSON_H
