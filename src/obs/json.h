//===- obs/json.h - Tiny JSON writer and validator -------------*- C++ -*-===//
///
/// \file
/// The observability exporters (Chrome trace events, metrics snapshots, the
/// bench run report) all emit JSON. JsonWriter is a streaming writer that
/// handles escaping, comma placement and non-finite doubles (emitted as
/// null, since JSON has no Infinity/NaN); validateJson is a minimal
/// recursive-descent checker used by the tests and the CI smoke run to
/// assert the emitted files actually parse.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_JSON_H
#define GENPROVE_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace genprove {

/// Streaming JSON writer. Usage:
///   JsonWriter W;
///   W.beginObject().key("a").value(int64_t(1)).endObject();
///   W.str() == R"({"a":1})"
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter &key(const std::string &K);

  JsonWriter &value(const std::string &V);
  JsonWriter &value(const char *V);
  /// Non-finite doubles become null (JSON has no Infinity/NaN literal).
  JsonWriter &value(double V);
  JsonWriter &value(int64_t V);
  JsonWriter &value(bool V);
  JsonWriter &nullValue();

  /// Splice a pre-rendered JSON value verbatim (e.g. a nested snapshot).
  JsonWriter &raw(const std::string &Json);

  const std::string &str() const { return Out; }

private:
  void separate();
  void closeValue();

  std::string Out;
  std::vector<bool> HasValue; ///< per open container: need a comma?
  bool AfterKey = false;
};

/// Escape a string for embedding in a JSON document (without quotes).
std::string jsonEscape(const std::string &Text);

/// True when \p Text is one complete, well-formed JSON value. On failure,
/// \p Error (if non-null) receives a short description with an offset.
bool validateJson(const std::string &Text, std::string *Error = nullptr);

/// A parsed JSON value. The shard worker protocol (and later the serve
/// protocol) needs to *read* the messages JsonWriter emits, not just
/// validate them; this is the minimal tree the same recursive-descent
/// grammar produces. Numbers are parsed with strtod, so doubles written
/// with JsonWriter's %.17g round-trip bit-exactly — the property the
/// cross-process sound-bound merge relies on.
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  std::string Str;
  std::vector<JsonValue> Items;                          ///< Array
  std::vector<std::pair<std::string, JsonValue>> Members; ///< Object

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *find(const std::string &Key) const;

  // Tolerant typed accessors: the fallback is returned on any kind
  // mismatch, so protocol readers can state defaults in one place.
  double numberOr(double Fallback) const {
    return K == Kind::Number ? Num : Fallback;
  }
  int64_t intOr(int64_t Fallback) const {
    return K == Kind::Number ? static_cast<int64_t>(Num) : Fallback;
  }
  bool boolOr(bool Fallback) const { return K == Kind::Bool ? B : Fallback; }
  const std::string &stringOr(const std::string &Fallback) const {
    return K == Kind::String ? Str : Fallback;
  }
};

/// Parse one complete JSON value (same grammar as validateJson, including
/// the trailing-garbage check). False on malformed input, with \p Error
/// describing the first problem.
bool parseJson(const std::string &Text, JsonValue &Out,
               std::string *Error = nullptr);

} // namespace genprove

#endif // GENPROVE_OBS_JSON_H
