//===- obs/trace.h - Hierarchical scoped spans ------------------*- C++ -*-===//
///
/// \file
/// RAII tracing spans with a Chrome-trace-event JSON exporter. Wrap a scope
/// in GENPROVE_SPAN("name") and, when tracing is enabled, a complete event
/// ("ph":"X") is recorded with its wall-clock duration, its self time
/// (excluding child spans, via AccumTimer pause/resume) and its nesting
/// depth. The resulting file loads directly in chrome://tracing and in
/// Perfetto (ui.perfetto.dev).
///
/// Tracing is off by default; a disabled span costs one relaxed atomic
/// load and a branch, so spans may sit on warm paths. Span names should be
/// string literals (or otherwise outlive the span) — the recorder copies
/// the name only when the span closes.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_TRACE_H
#define GENPROVE_OBS_TRACE_H

#include "src/util/timer.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace genprove {

namespace obs_detail {
extern std::atomic<bool> TraceEnabledFlag;
} // namespace obs_detail

/// Global tracing switch; default off.
inline bool traceEnabled() {
  return obs_detail::TraceEnabledFlag.load(std::memory_order_relaxed);
}
void setTraceEnabled(bool On);

/// One closed span.
struct TraceEvent {
  std::string Name;
  uint64_t StartUs = 0; ///< microseconds since the session epoch
  uint64_t DurUs = 0;   ///< total wall-clock duration
  uint64_t SelfUs = 0;  ///< duration excluding child spans
  uint32_t Tid = 0;     ///< small per-thread id (not the OS tid)
  uint32_t Depth = 0;   ///< nesting depth within its thread
  /// Chrome-trace process lane. Spans recorded in this process use 0
  /// (the coordinator lane); the shard supervisor re-stamps spliced
  /// worker events with shard id + 1 so every worker gets its own lane.
  int64_t Pid = 0;
};

/// Collects closed spans; one global instance per process.
class TraceSession {
public:
  static TraceSession &global();

  /// Drop every recorded event and restart the time epoch.
  void clear();

  std::vector<TraceEvent> events() const;
  size_t eventCount() const;

  /// Name a process lane; emitted as a Chrome "process_name" metadata
  /// event so the shard lanes read "coordinator" / "shard 2" instead of
  /// bare pids.
  void setProcessLabel(int64_t Pid, std::string Name);

  /// Chrome trace-event format: a JSON array of complete ("ph":"X")
  /// events plus process_name metadata, loadable in chrome://tracing and
  /// Perfetto.
  std::string toChromeJson() const;

  /// Write toChromeJson() to a file; false on I/O error.
  bool writeChromeTrace(const std::string &Path) const;

  /// Microseconds since the session epoch (internal, used by ScopedSpan).
  uint64_t nowUs() const;
  void record(TraceEvent Event);

private:
  TraceSession();

  mutable std::mutex Mu;
  std::vector<TraceEvent> Events;
  std::vector<std::pair<int64_t, std::string>> ProcessLabels;
  std::chrono::steady_clock::time_point Epoch;
};

/// RAII span; use through GENPROVE_SPAN. Must be closed on the thread that
/// opened it (automatic for stack objects).
class ScopedSpan {
public:
  explicit ScopedSpan(const char *SpanName) {
    if (traceEnabled())
      open(SpanName);
  }

  ~ScopedSpan() {
    if (Live)
      close();
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  void open(const char *SpanName);
  void close();

  const char *Name = nullptr;
  ScopedSpan *Parent = nullptr;
  AccumTimer Self;
  uint64_t StartUs = 0;
  uint32_t Depth = 0;
  bool Live = false;
};

#define GENPROVE_OBS_CONCAT_(A, B) A##B
#define GENPROVE_OBS_CONCAT(A, B) GENPROVE_OBS_CONCAT_(A, B)

/// Trace the enclosing scope as a span named NAME (a string literal or any
/// pointer that outlives the scope). Near-zero cost while tracing is off.
#define GENPROVE_SPAN(NAME)                                                    \
  ::genprove::ScopedSpan GENPROVE_OBS_CONCAT(ObsSpan_, __COUNTER__)(NAME)

} // namespace genprove

#endif // GENPROVE_OBS_TRACE_H
