//===- obs/log.h - Structured JSONL event log -------------------*- C++ -*-===//
///
/// \file
/// A process-global structured event log replacing ad-hoc stderr prints
/// for supervision and degradation events (retries, kills, quarantines,
/// rung changes). Records carry a monotonic timestamp, a level, the run
/// id and the shard id; `writeJsonl` emits one JSON object per line
/// (schema in docs/OBSERVABILITY.md). Worker processes ship their record
/// buffer to the coordinator inside the shard result message, where it is
/// spliced into the coordinator's log.
///
/// Like metrics and tracing, the log is off by default; call sites must
/// guard with `if (logEnabled())` so a disabled site costs exactly one
/// relaxed atomic load (emit's arguments would otherwise still be
/// materialized).
///
/// This header also hosts:
///   - RunLiveness, the lock-free digest (current layer, charged state
///     bytes) the propagation engine refreshes at layer boundaries and
///     the worker heartbeat thread samples;
///   - ObsFlushGuard, the RAII single flush point for every telemetry
///     artifact (trace, metrics JSON, Prometheus text, JSONL log) so all
///     exit paths — normal return, DEGRADED exit, fatal signal — write
///     the same files the same way.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_OBS_LOG_H
#define GENPROVE_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace genprove {

namespace obs_detail {
extern std::atomic<bool> LogEnabledFlag;
} // namespace obs_detail

/// Global event-log switch; default off.
inline bool logEnabled() {
  return obs_detail::LogEnabledFlag.load(std::memory_order_relaxed);
}
inline void setLogEnabled(bool On) {
  obs_detail::LogEnabledFlag.store(On, std::memory_order_relaxed);
}

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error };

/// Lowercase level name ("info", ...).
const char *logLevelName(LogLevel Level);

/// Tagged scalar value for a structured field.
struct LogValue {
  enum class Kind : uint8_t { Int, Real, Text, Flag };

  Kind K = Kind::Int;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  bool B = false;

  LogValue(int64_t V) : K(Kind::Int), I(V) {}
  LogValue(int V) : K(Kind::Int), I(V) {}
  LogValue(uint64_t V) : K(Kind::Int), I(static_cast<int64_t>(V)) {}
  LogValue(double V) : K(Kind::Real), D(V) {}
  LogValue(const char *V) : K(Kind::Text), S(V) {}
  LogValue(std::string V) : K(Kind::Text), S(std::move(V)) {}
  LogValue(bool V) : K(Kind::Flag), B(V) {}
};

using LogField = std::pair<std::string, LogValue>;

/// One structured event.
struct LogRecord {
  uint64_t TsUs = 0; ///< monotonic microseconds since the log epoch
  LogLevel Level = LogLevel::Info;
  int64_t Shard = -1; ///< -1 = coordinator / single-process run
  std::string Event;  ///< dotted event name, e.g. "shard.retry"
  std::vector<LogField> Fields;
};

/// The process-global event log.
class EventLog {
public:
  static EventLog &global();

  /// Run identity stamped on every emitted line.
  void setRunId(std::string Id);
  std::string runId() const;

  /// Shard id stamped on records emitted by this process (-1 =
  /// coordinator). Records spliced from workers keep their own id.
  void setShard(int64_t Shard);

  /// Append an event stamped now. Callers must pre-check logEnabled().
  void emit(LogLevel Level, const char *Event,
            std::initializer_list<LogField> Fields = {});

  /// Append a pre-stamped record verbatim (cross-process splice).
  void splice(LogRecord R);

  /// Bound the in-memory buffer for long-lived processes: once more than
  /// \p N records are held, the oldest are dropped (and counted in
  /// droppedRecords()). 0 = unbounded, the CLI default — a one-shot run
  /// flushes everything at exit, a daemon must not grow without bound.
  void setCapacity(size_t N);

  /// Records evicted by the capacity ring before they could be flushed.
  uint64_t droppedRecords() const;

  std::vector<LogRecord> records() const;
  void clear(); ///< drop records and restart the timestamp epoch

  /// Monotonic microseconds since the epoch set at construction/clear().
  uint64_t nowUs() const;

  /// One JSON object per record, one record per line.
  std::string toJsonl() const;
  bool writeJsonl(const std::string &Path) const;

  /// Idempotent incremental flush for long-lived processes: appends only
  /// the records not yet written to \p Path by a previous appendJsonl
  /// call, so repeated /stats-driven flushes and the final exit flush
  /// emit every record exactly once even while the capacity ring evicts
  /// old records from memory. The cursor is keyed to the path — the
  /// first call on a new path truncates and starts over.
  bool appendJsonl(const std::string &Path);

  /// Render one record as a single JSON line (no trailing newline).
  static std::string recordToJson(const LogRecord &R, const std::string &RunId);

private:
  EventLog();

  mutable std::mutex Mu;
  std::deque<LogRecord> Records;
  std::string RunId;
  int64_t Shard = -1;
  uint64_t EpochNs = 0;
  size_t Capacity = 0;        ///< 0 = unbounded
  uint64_t Dropped = 0;       ///< ring evictions
  uint64_t NextSeq = 0;       ///< seq of the next record appended
  uint64_t FrontSeq = 0;      ///< seq of Records.front()
  uint64_t AppendCursor = 0;  ///< first seq not yet written by appendJsonl
  std::string AppendPath;     ///< path the cursor belongs to
};

/// Lock-free liveness digest: the propagation engine stores the current
/// layer index and charged state bytes at every layer boundary (two
/// relaxed stores, unconditional — cheaper than a branch on a flag), and
/// the worker heartbeat thread samples them into heartbeat messages so
/// the supervisor can tell a hung-but-heartbeating worker from a healthy
/// one. -1 means "no propagation underway".
struct RunLiveness {
  std::atomic<int64_t> CurrentLayer{-1};
  std::atomic<int64_t> StateBytes{-1};

  static RunLiveness &global();
};

/// Single flush point for every telemetry artifact. Configure the output
/// paths once (empty path = skip that artifact), put one guard at main
/// scope, and every exit path — normal return, error return, and the
/// fatal-signal handler via the async-signal-tolerant flushNow() — writes
/// the same files.
class ObsFlushGuard {
public:
  struct Paths {
    std::string Trace;   ///< Chrome trace JSON
    std::string Metrics; ///< metrics registry JSON
    std::string Prom;    ///< Prometheus text exposition
    std::string Log;     ///< JSONL event log
    /// Append-mode log flush (daemon): each flush appends only records
    /// not yet written, pairing with EventLog::setCapacity so repeated
    /// mid-run flushes plus the exit flush emit every record once. The
    /// default rewrite mode suits one-shot CLI runs.
    bool AppendLog = false;
  };

  static void configure(Paths P);

  /// Write every configured artifact; safe to call repeatedly (later
  /// calls rewrite the files with fresher state, so the last flush wins).
  static void flushNow();

  ObsFlushGuard() = default;
  ObsFlushGuard(const ObsFlushGuard &) = delete;
  ObsFlushGuard &operator=(const ObsFlushGuard &) = delete;
  ~ObsFlushGuard() { flushNow(); }
};

} // namespace genprove

#endif // GENPROVE_OBS_LOG_H
