//===- obs/log.cpp --------------------------------------------*- C++ -*-===//

#include "src/obs/log.h"

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>

namespace genprove {

namespace obs_detail {
std::atomic<bool> LogEnabledFlag{false};
} // namespace obs_detail

const char *logLevelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  }
  return "info";
}

//===----------------------------------------------------------------------===//
// EventLog
//===----------------------------------------------------------------------===//

namespace {
uint64_t steadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

EventLog::EventLog() : EpochNs(steadyNowNs()) {}

EventLog &EventLog::global() {
  static EventLog Log;
  return Log;
}

void EventLog::setRunId(std::string Id) {
  std::lock_guard<std::mutex> Lock(Mu);
  RunId = std::move(Id);
}

std::string EventLog::runId() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return RunId;
}

void EventLog::setShard(int64_t S) {
  std::lock_guard<std::mutex> Lock(Mu);
  Shard = S;
}

uint64_t EventLog::nowUs() const {
  uint64_t Epoch;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Epoch = EpochNs;
  }
  return (steadyNowNs() - Epoch) / 1000;
}

void EventLog::emit(LogLevel Level, const char *Event,
                    std::initializer_list<LogField> Fields) {
  LogRecord R;
  R.Level = Level;
  R.Event = Event;
  R.Fields.assign(Fields.begin(), Fields.end());
  std::lock_guard<std::mutex> Lock(Mu);
  R.TsUs = (steadyNowNs() - EpochNs) / 1000;
  R.Shard = Shard;
  Records.push_back(std::move(R));
  ++NextSeq;
  while (Capacity && Records.size() > Capacity) {
    Records.pop_front();
    ++FrontSeq;
    ++Dropped;
  }
}

void EventLog::splice(LogRecord R) {
  std::lock_guard<std::mutex> Lock(Mu);
  Records.push_back(std::move(R));
  ++NextSeq;
  while (Capacity && Records.size() > Capacity) {
    Records.pop_front();
    ++FrontSeq;
    ++Dropped;
  }
}

void EventLog::setCapacity(size_t N) {
  std::lock_guard<std::mutex> Lock(Mu);
  Capacity = N;
  while (Capacity && Records.size() > Capacity) {
    Records.pop_front();
    ++FrontSeq;
    ++Dropped;
  }
}

uint64_t EventLog::droppedRecords() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Dropped;
}

std::vector<LogRecord> EventLog::records() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return std::vector<LogRecord>(Records.begin(), Records.end());
}

void EventLog::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Records.clear();
  EpochNs = steadyNowNs();
  Dropped = 0;
  NextSeq = 0;
  FrontSeq = 0;
  AppendCursor = 0;
  AppendPath.clear();
}

std::string EventLog::recordToJson(const LogRecord &R,
                                   const std::string &RunId) {
  JsonWriter W;
  W.beginObject();
  W.key("ts_us").value(int64_t(R.TsUs));
  W.key("level").value(logLevelName(R.Level));
  if (!RunId.empty())
    W.key("run").value(RunId);
  W.key("shard").value(R.Shard);
  W.key("event").value(R.Event);
  for (const LogField &F : R.Fields) {
    W.key(F.first);
    switch (F.second.K) {
    case LogValue::Kind::Int:
      W.value(F.second.I);
      break;
    case LogValue::Kind::Real:
      W.value(F.second.D);
      break;
    case LogValue::Kind::Text:
      W.value(F.second.S);
      break;
    case LogValue::Kind::Flag:
      W.value(F.second.B);
      break;
    }
  }
  W.endObject();
  return W.str();
}

std::string EventLog::toJsonl() const {
  std::vector<LogRecord> Copy;
  std::string Id;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Copy.assign(Records.begin(), Records.end());
    Id = RunId;
  }
  std::string Out;
  for (const LogRecord &R : Copy) {
    Out += recordToJson(R, Id);
    Out += '\n';
  }
  return Out;
}

bool EventLog::writeJsonl(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toJsonl();
  return static_cast<bool>(Out);
}

bool EventLog::appendJsonl(const std::string &Path) {
  std::vector<LogRecord> Fresh;
  std::string Id;
  bool Restart = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Path != AppendPath) {
      AppendPath = Path;
      AppendCursor = FrontSeq;
      Restart = true;
    }
    // Records evicted before this flush are gone; the cursor can only
    // point inside (or at the end of) the live window.
    if (AppendCursor < FrontSeq)
      AppendCursor = FrontSeq;
    const size_t First = static_cast<size_t>(AppendCursor - FrontSeq);
    Fresh.assign(Records.begin() + static_cast<ptrdiff_t>(First),
                 Records.end());
    AppendCursor = NextSeq;
    Id = RunId;
  }
  std::ofstream Out(Path, Restart ? std::ios::trunc : std::ios::app);
  if (!Out)
    return false;
  for (const LogRecord &R : Fresh)
    Out << recordToJson(R, Id) << '\n';
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// RunLiveness
//===----------------------------------------------------------------------===//

RunLiveness &RunLiveness::global() {
  static RunLiveness Liveness;
  return Liveness;
}

//===----------------------------------------------------------------------===//
// ObsFlushGuard
//===----------------------------------------------------------------------===//

namespace {
// Written once by configure() before any worker threads or signals are
// live, then only read; no lock so flushNow() stays callable from the
// fatal-signal path.
ObsFlushGuard::Paths FlushPaths;
} // namespace

void ObsFlushGuard::configure(Paths P) { FlushPaths = std::move(P); }

void ObsFlushGuard::flushNow() {
  if (!FlushPaths.Trace.empty() &&
      !TraceSession::global().writeChromeTrace(FlushPaths.Trace))
    std::fprintf(stderr, "genprove_cli: failed to write trace to '%s'\n",
                 FlushPaths.Trace.c_str());
  if (!FlushPaths.Metrics.empty() &&
      !MetricsRegistry::global().writeJson(FlushPaths.Metrics))
    std::fprintf(stderr, "genprove_cli: failed to write metrics to '%s'\n",
                 FlushPaths.Metrics.c_str());
  if (!FlushPaths.Prom.empty() &&
      !MetricsRegistry::global().writePrometheus(FlushPaths.Prom))
    std::fprintf(stderr, "genprove_cli: failed to write prometheus to '%s'\n",
                 FlushPaths.Prom.c_str());
  if (!FlushPaths.Log.empty()) {
    const bool Ok = FlushPaths.AppendLog
                        ? EventLog::global().appendJsonl(FlushPaths.Log)
                        : EventLog::global().writeJsonl(FlushPaths.Log);
    if (!Ok)
      std::fprintf(stderr, "genprove_cli: failed to write log to '%s'\n",
                   FlushPaths.Log.c_str());
  }
}

} // namespace genprove
