//===- obs/trace.cpp ------------------------------------------*- C++ -*-===//

#include "src/obs/trace.h"

#include "src/obs/json.h"

#include <fstream>

namespace genprove {

namespace obs_detail {
std::atomic<bool> TraceEnabledFlag{false};
} // namespace obs_detail

void setTraceEnabled(bool On) {
  obs_detail::TraceEnabledFlag.store(On, std::memory_order_relaxed);
}

namespace {

/// The innermost open span of the current thread (the nesting stack).
thread_local ScopedSpan *CurrentSpan = nullptr;

/// Small stable per-thread ids so traces stay readable.
uint32_t currentTid() {
  static std::atomic<uint32_t> NextTid{0};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceSession
//===----------------------------------------------------------------------===//

TraceSession::TraceSession() : Epoch(std::chrono::steady_clock::now()) {}

TraceSession &TraceSession::global() {
  static TraceSession Session;
  return Session;
}

uint64_t TraceSession::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void TraceSession::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.clear();
  ProcessLabels.clear();
  Epoch = std::chrono::steady_clock::now();
}

void TraceSession::setProcessLabel(int64_t Pid, std::string Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[P, N] : ProcessLabels)
    if (P == Pid) {
      N = std::move(Name);
      return;
    }
  ProcessLabels.emplace_back(Pid, std::move(Name));
}

void TraceSession::record(TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Mu);
  Events.push_back(std::move(Event));
}

std::vector<TraceEvent> TraceSession::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events;
}

size_t TraceSession::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Events.size();
}

std::string TraceSession::toChromeJson() const {
  std::vector<TraceEvent> Snapshot;
  std::vector<std::pair<int64_t, std::string>> Labels;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Snapshot = Events;
    Labels = ProcessLabels;
  }
  JsonWriter W;
  W.beginArray();
  for (const auto &[Pid, Name] : Labels) {
    W.beginObject();
    W.key("name").value("process_name");
    W.key("ph").value("M");
    W.key("ts").value(int64_t(0));
    W.key("pid").value(Pid);
    W.key("tid").value(int64_t(0));
    W.key("args").beginObject();
    W.key("name").value(Name);
    W.endObject();
    W.endObject();
  }
  for (const TraceEvent &E : Snapshot) {
    W.beginObject();
    W.key("name").value(E.Name);
    W.key("cat").value("genprove");
    W.key("ph").value("X");
    W.key("ts").value(static_cast<int64_t>(E.StartUs));
    W.key("dur").value(static_cast<int64_t>(E.DurUs));
    W.key("pid").value(E.Pid);
    W.key("tid").value(static_cast<int64_t>(E.Tid));
    W.key("args").beginObject();
    W.key("self_us").value(static_cast<int64_t>(E.SelfUs));
    W.key("depth").value(static_cast<int64_t>(E.Depth));
    W.endObject();
    W.endObject();
  }
  W.endArray();
  return W.str();
}

bool TraceSession::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << toChromeJson() << '\n';
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// ScopedSpan
//===----------------------------------------------------------------------===//

void ScopedSpan::open(const char *SpanName) {
  Name = SpanName;
  Parent = CurrentSpan;
  Depth = Parent ? Parent->Depth + 1 : 0;
  StartUs = TraceSession::global().nowUs();
  if (Parent)
    Parent->Self.pause(); // child time is excluded from the parent's self
  Self.start();
  CurrentSpan = this;
  Live = true;
}

void ScopedSpan::close() {
  Self.pause();
  const uint64_t EndUs = TraceSession::global().nowUs();
  TraceEvent Event;
  Event.Name = Name;
  Event.StartUs = StartUs;
  Event.DurUs = EndUs >= StartUs ? EndUs - StartUs : 0;
  Event.SelfUs = static_cast<uint64_t>(Self.seconds() * 1e6);
  Event.Tid = currentTid();
  Event.Depth = Depth;
  TraceSession::global().record(std::move(Event));
  CurrentSpan = Parent;
  if (Parent)
    Parent->Self.resume();
  Live = false;
}

} // namespace genprove
