//===- shard/shard.cpp ----------------------------------------*- C++ -*-===//

#include "src/shard/shard.h"

#include "src/util/fp.h"

#include <algorithm>
#include <cmath>

namespace genprove {

std::vector<ShardRange> planShards(int64_t NumShards) {
  const int64_t N = std::max<int64_t>(NumShards, 1);
  std::vector<ShardRange> Plan;
  Plan.reserve(static_cast<size_t>(N));
  for (int64_t I = 0; I < N; ++I) {
    ShardRange R;
    R.Index = I;
    // Shared boundaries are computed once per cut point (k/N evaluated
    // identically for shard k-1's T1 and shard k's T0), so the partition
    // is exactly disjoint and covering in floating point.
    R.T0 = static_cast<double>(I) / static_cast<double>(N);
    R.T1 = I + 1 == N ? 1.0 : static_cast<double>(I + 1) / static_cast<double>(N);
    Plan.push_back(R);
  }
  return Plan;
}

MergedCertificate mergeShardResults(const std::vector<ShardResult> &Results,
                                    int64_t NumSpecs) {
  MergedCertificate Merged;
  Merged.Specs.resize(static_cast<size_t>(std::max<int64_t>(NumSpecs, 0)));

  // One column of partial masses per spec. Under --sound the columns are
  // summed with the directed Neumaier accumulators — the lower bound can
  // only round down, the upper only up, so the merge cannot flip an
  // inequality. Otherwise a plain compensated sum, matching
  // computeProbBounds' own gating: the directed variant pads by a ULP
  // even on exact sums, which would break verdict equality with the
  // single-process path (an exact upper of 0.0 must stay 0.0).
  const bool Sound = soundRoundingEnabled();
  const auto PlainSum = [](const std::vector<double> &Values) {
    double S = 0.0, C = 0.0;
    for (double V : Values) {
      const double T = S + V;
      C += std::fabs(S) >= std::fabs(V) ? (S - T) + V : (V - T) + S;
      S = T;
    }
    return S + C;
  };
  std::vector<double> Lowers, Uppers;
  Lowers.reserve(Results.size());
  Uppers.reserve(Results.size());
  for (int64_t S = 0; S < NumSpecs; ++S) {
    Lowers.clear();
    Uppers.clear();
    bool SpecDegraded = false;
    for (const ShardResult &R : Results) {
      if (S < static_cast<int64_t>(R.Specs.size())) {
        const ShardSpecBounds &B = R.Specs[static_cast<size_t>(S)];
        Lowers.push_back(B.Lower);
        Uppers.push_back(B.Upper);
        SpecDegraded = SpecDegraded || B.Degraded;
      } else {
        // A validated-but-truncated result: this shard's mass is unknown
        // for the spec. Contribute nothing below and everything above —
        // the conservative extreme, same as quarantined mass.
        Uppers.push_back(1.0);
        SpecDegraded = true;
      }
    }
    ProbBounds &Out = Merged.Specs[static_cast<size_t>(S)];
    Out.Lower =
        std::clamp(Sound ? fp::sumDown(Lowers) : PlainSum(Lowers), 0.0, 1.0);
    Out.Upper =
        std::clamp(Sound ? fp::sumUp(Uppers) : PlainSum(Uppers), 0.0, 1.0);
    Out.Degraded = SpecDegraded;
    Merged.Degraded = Merged.Degraded || SpecDegraded;
  }

  for (const ShardResult &R : Results) {
    Merged.Seconds = std::max(Merged.Seconds, R.Seconds);
    Merged.TotalShardSeconds += R.Seconds;
    Merged.PeakBytes += static_cast<size_t>(std::max<int64_t>(R.PeakBytes, 0));
    Merged.MaxRegions += R.MaxRegions;
    Merged.MaxNodes += R.MaxNodes;
    Merged.Retries = std::max(Merged.Retries, R.Retries);
    Merged.Rollbacks += R.Rollbacks;
    Merged.FallbackBoxLayers += R.FallbackBoxLayers;
    Merged.QuarantinedMass += R.QuarantinedMass;
    Merged.DeadlineHit = Merged.DeadlineHit || R.DeadlineHit;
    Merged.Degraded = Merged.Degraded || R.Degraded;
    if (R.FromFallback)
      ++Merged.FallbackShards;
    // Map the supervision rung onto the in-process ladder for display: a
    // shard that ran (or fell back) at the interval-box rung reached
    // FullBox; a resilient retry reached at least LocalBox only if its
    // own stats say so, which R.Rung does not imply.
    if (R.Rung >= 2 || R.FromFallback)
      Merged.Rung = DegradeRung::FullBox;
  }
  // Fold in the worst in-process rung reported by any shard.
  for (const ShardResult &R : Results) {
    if (R.FallbackBoxLayers > 0 &&
        static_cast<uint8_t>(Merged.Rung) <
            static_cast<uint8_t>(DegradeRung::FullBox))
      Merged.Rung = DegradeRung::FullBox;
    else if (R.Rollbacks > 0 && Merged.Rung == DegradeRung::None)
      Merged.Rung = DegradeRung::LocalBox;
  }
  if (Merged.Degraded)
    for (ProbBounds &B : Merged.Specs)
      B.Degraded = true;
  return Merged;
}

} // namespace genprove
