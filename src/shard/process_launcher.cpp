//===- shard/process_launcher.cpp -----------------------------*- C++ -*-===//

#include "src/shard/process_launcher.h"

#include "src/shard/protocol.h"
#include "src/util/io.h"

#include <atomic>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace genprove {

namespace {

/// Async-signal-safe mirror of the live worker pids. A fixed array of
/// atomics: the signal handler may only loop and ::kill, never allocate.
constexpr size_t MaxTrackedChildren = 256;
std::atomic<pid_t> TrackedChildren[MaxTrackedChildren];

void trackChild(pid_t Pid) {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    pid_t Expected = 0;
    if (TrackedChildren[I].compare_exchange_strong(Expected, Pid))
      return;
  }
}

void untrackChild(pid_t Pid) {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    pid_t Expected = Pid;
    if (TrackedChildren[I].compare_exchange_strong(Expected, 0))
      return;
  }
}

} // namespace

void killAllShardChildren(int Signal) {
  for (size_t I = 0; I < MaxTrackedChildren; ++I) {
    const pid_t Pid = TrackedChildren[I].load(std::memory_order_relaxed);
    if (Pid > 0)
      ::kill(Pid, Signal);
  }
}

ProcessShardLauncher::ProcessShardLauncher(std::string ExePath,
                                           std::vector<std::string> BaseArgs)
    : ExePath(std::move(ExePath)), BaseArgs(std::move(BaseArgs)) {}

ProcessShardLauncher::~ProcessShardLauncher() {
  for (auto &Entry : Children) {
    Child &C = Entry.second;
    if (C.Pid > 0) {
      ::kill(C.Pid, SIGKILL);
      int Status = 0;
      (void)waitpid(C.Pid, &Status, 0);
      untrackChild(C.Pid);
    }
    if (C.PipeFd >= 0)
      ::close(C.PipeFd);
  }
}

bool ProcessShardLauncher::launch(const AttemptPlan &Plan) {
  int Fds[2];
  if (::pipe(Fds) != 0)
    return false;

  std::vector<std::string> Args = BaseArgs;
  Args.push_back("--shard-worker");
  Args.push_back(std::to_string(Plan.Shard));
  Args.push_back("--shard-attempt");
  Args.push_back(std::to_string(Plan.Attempt));
  Args.push_back("--shard-rung");
  Args.push_back(std::to_string(static_cast<int64_t>(Plan.Rung)));

  std::vector<char *> Argv;
  Argv.reserve(Args.size() + 2);
  Argv.push_back(const_cast<char *>(ExePath.c_str()));
  for (std::string &A : Args)
    Argv.push_back(A.data());
  Argv.push_back(nullptr);

  const pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(Fds[0]);
    ::close(Fds[1]);
    return false;
  }
  if (Pid == 0) {
    // Child: protocol messages go to the pipe, human noise stays on the
    // inherited stderr. Default signal dispositions so the supervisor's
    // SIGKILL/SIGTERM semantics are undisturbed by coordinator handlers.
    ::close(Fds[0]);
    if (::dup2(Fds[1], STDOUT_FILENO) < 0)
      _exit(127);
    ::close(Fds[1]);
    signal(SIGINT, SIG_DFL);
    signal(SIGTERM, SIG_DFL);
    ::execv(ExePath.c_str(), Argv.data());
    _exit(127); // exec failed; classified as Crash by the parent
  }

  ::close(Fds[1]);
  const int Flags = ::fcntl(Fds[0], F_GETFL, 0);
  ::fcntl(Fds[0], F_SETFL, Flags | O_NONBLOCK);

  Child C;
  C.Pid = Pid;
  C.PipeFd = Fds[0];
  trackChild(Pid);
  Children[Plan.Shard] = std::move(C);
  return true;
}

bool ProcessShardLauncher::drainPipe(Child &C) {
  bool Heartbeat = false;
  if (C.PipeFd < 0)
    return false;
  char Buf[4096];
  while (true) {
    const ssize_t N = readChunk(C.PipeFd, Buf, sizeof(Buf));
    if (N > 0) {
      C.Framer.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    break; // EOF or EAGAIN
  }
  std::string Line;
  while (true) {
    const LineFramer::Frame F = C.Framer.next(Line);
    if (F == LineFramer::Frame::None)
      break;
    if (F == LineFramer::Frame::Oversized) {
      ++C.WireErrors; // typed: a discarded over-cap line, not silence
      continue;
    }
    switch (classifyShardMessage(Line)) {
    case ShardMessageKind::Heartbeat: {
      Heartbeat = true;
      ShardHeartbeat Beat;
      if (decodeShardHeartbeat(Line, Beat)) {
        if (Beat.StateBytes >= 0)
          C.BeatStateBytes = Beat.StateBytes;
        if (Beat.Layer >= 0)
          C.BeatLayer = Beat.Layer;
      }
      break;
    }
    case ShardMessageKind::Result:
      C.ResultLine = Line;
      break;
    case ShardMessageKind::Invalid:
      ++C.WireErrors;
      break; // stray stdout noise; counted, the result must still parse
    }
  }
  C.SawHeartbeat = C.SawHeartbeat || Heartbeat;
  return Heartbeat;
}

WorkerPoll ProcessShardLauncher::classifyExit(Child &C, int Status) {
  WorkerPoll P;
  P.Finished = true;
  if (WIFSIGNALED(Status)) {
    P.Outcome = WTERMSIG(Status) == SIGKILL ? AttemptOutcome::OomKill
                                            : AttemptOutcome::Crash;
    return P;
  }
  const int Code = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  if (Code == 3) {
    P.Outcome = AttemptOutcome::Oom;
    return P;
  }
  if (Code == 2) {
    P.Outcome = AttemptOutcome::Fatal;
    return P;
  }
  if (Code != 0 && Code != 4) {
    P.Outcome = AttemptOutcome::Crash;
    return P;
  }
  if (!C.ResultLine.empty() &&
      decodeShardResult(C.ResultLine, P.Result, nullptr, &P.Telemetry)) {
    P.Outcome = AttemptOutcome::Ok;
    return P;
  }
  P.Outcome = AttemptOutcome::Protocol;
  return P;
}

WorkerPoll ProcessShardLauncher::poll(int64_t Shard) {
  WorkerPoll P;
  auto It = Children.find(Shard);
  if (It == Children.end()) {
    P.Finished = true;
    P.Outcome = AttemptOutcome::Crash;
    return P;
  }
  Child &C = It->second;
  P.HeartbeatSeen = drainPipe(C);
  P.BeatStateBytes = C.BeatStateBytes;
  P.BeatLayer = C.BeatLayer;

  int Status = 0;
  const pid_t R = ::waitpid(C.Pid, &Status, WNOHANG);
  if (R == 0)
    return P; // still running
  // Exited (or waitpid failed, treated as gone): drain the tail of the
  // pipe — the result line usually lands in the same quantum as the exit.
  const bool TailBeat = drainPipe(C);
  const bool Beat = P.HeartbeatSeen || TailBeat;
  untrackChild(C.Pid);
  if (C.PipeFd >= 0)
    ::close(C.PipeFd);
  P = classifyExit(C, R == C.Pid ? Status : 0);
  if (R != C.Pid && P.Outcome == AttemptOutcome::Ok) {
    // waitpid error with a decodable result: accept it, it is sound.
  } else if (R != C.Pid && P.Outcome != AttemptOutcome::Ok) {
    P.Outcome = AttemptOutcome::Crash;
  }
  P.HeartbeatSeen = Beat;
  Children.erase(It);
  return P;
}

void ProcessShardLauncher::kill(int64_t Shard) {
  auto It = Children.find(Shard);
  if (It == Children.end())
    return;
  Child &C = It->second;
  if (C.Pid > 0) {
    ::kill(C.Pid, SIGKILL);
    int Status = 0;
    (void)waitpid(C.Pid, &Status, 0);
    untrackChild(C.Pid);
  }
  if (C.PipeFd >= 0)
    ::close(C.PipeFd);
  Children.erase(It);
}

} // namespace genprove
