//===- shard/shard.h - Region-set sharding and sound merge -----*- C++ -*-===//
///
/// \file
/// Shard partitioning and cross-shard result merging for the supervised
/// scale-out path (ROADMAP item 4). The exact domain's region lists are
/// embarrassingly partitionable: the input-parameter interval [0, 1] is cut
/// into disjoint sub-ranges, each shard propagates its sub-range completely
/// independently (the same Section 5.2 partition the in-process
/// `--splits` path uses), and the paper's probability bounds are sums of
/// per-region masses — so the merged lower/upper bound is just the sum of
/// the per-shard partial bounds, aggregated with the directed
/// `sumUp`/`sumDown` accumulators so the merge itself can never flip an
/// inequality (docs/SOUNDNESS.md).
///
/// Nothing here knows about processes; the supervision machinery lives in
/// shard/supervisor.h and shard/process_launcher.h.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SHARD_SHARD_H
#define GENPROVE_SHARD_SHARD_H

#include "src/core/spec.h"
#include "src/domains/propagate.h"

#include <cstdint>
#include <vector>

namespace genprove {

/// One shard's slice of the input-parameter interval.
struct ShardRange {
  int64_t Index = 0;
  double T0 = 0.0;
  double T1 = 1.0;
};

/// Cut [0, 1] into \p NumShards equal, disjoint, covering sub-ranges
/// (shard k owns [k/N, (k+1)/N]; the boundaries are exact at the shared
/// endpoints, so no parameter mass is dropped or double-counted).
std::vector<ShardRange> planShards(int64_t NumShards);

/// Per-spec partial bounds contributed by one shard: the probability mass
/// of the shard's sub-range that certainly / possibly satisfies the spec.
/// Summing these over a disjoint partition yields the full bounds.
struct ShardSpecBounds {
  double Lower = 0.0;
  double Upper = 0.0;
  bool Degraded = false;
};

/// Everything one worker attempt reports back: partial bounds for every
/// spec plus the engine telemetry the coordinator folds into its own
/// stats line. Mirrors PropagatedState minus the regions themselves —
/// regions never cross the process boundary, only their mass projections.
struct ShardResult {
  int64_t Shard = -1;
  int64_t Attempt = 0;
  int64_t Rung = 0; ///< supervision rung the attempt ran at (ShardRung)
  std::vector<ShardSpecBounds> Specs;
  double Seconds = 0.0;
  int64_t PeakBytes = 0;
  int64_t MaxRegions = 0;
  int64_t MaxNodes = 0;
  int64_t Retries = 0;   ///< in-process Appendix C retries
  int64_t Rollbacks = 0; ///< checkpoint rollbacks (PR 3 ladder)
  int64_t FallbackBoxLayers = 0;
  double QuarantinedMass = 0.0;
  bool Degraded = false;
  bool DeadlineHit = false;
  bool OutOfMemory = false;
  /// Set by the coordinator when this result came from its in-process
  /// interval-box fallback rather than a worker.
  bool FromFallback = false;
};

/// The coordinator's view of a completed sharded certification.
struct MergedCertificate {
  /// Per-spec merged bounds. Lower is the downward-rounded sum of the
  /// shard lowers, Upper the upward-rounded sum of the shard uppers, both
  /// clamped to [0, 1] — sound regardless of rounding mode because the
  /// shards partition the input mass.
  std::vector<ProbBounds> Specs;
  /// Any shard degraded, fell back, or needed a restart.
  bool Degraded = false;
  DegradeRung Rung = DegradeRung::None; ///< worst in-process rung
  double Seconds = 0.0;       ///< max shard wall time (shards run concurrently)
  double TotalShardSeconds = 0.0; ///< summed shard wall time (cpu cost)
  size_t PeakBytes = 0;       ///< summed per-shard peaks (concurrent residency)
  int64_t MaxRegions = 0;     ///< summed per-shard maxima (upper bound)
  int64_t MaxNodes = 0;
  int64_t Retries = 0;        ///< max in-process retries over shards
  int64_t Rollbacks = 0;
  int64_t FallbackBoxLayers = 0;
  bool DeadlineHit = false;
  double QuarantinedMass = 0.0;
  int64_t FallbackShards = 0; ///< shards bounded by the coordinator fallback
};

/// Merge per-shard results (one per shard, any order) into the final
/// certificate. \p NumSpecs fixes the spec count for shards whose result
/// arrived malformed-but-validated; missing spec slots are treated as the
/// whole shard mass being unknown ([0, shard weight] — sound).
MergedCertificate mergeShardResults(const std::vector<ShardResult> &Results,
                                    int64_t NumSpecs);

} // namespace genprove

#endif // GENPROVE_SHARD_SHARD_H
