//===- shard/supervisor.cpp -----------------------------------*- C++ -*-===//

#include "src/shard/supervisor.h"

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/shard/protocol.h"
#include "src/util/timer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

namespace genprove {

ShardRung rungForAttempt(int64_t Attempt) {
  if (Attempt <= 0)
    return ShardRung::Configured;
  if (Attempt == 1)
    return ShardRung::Resilient;
  return ShardRung::IntervalBox;
}

const char *shardRungName(ShardRung R) {
  switch (R) {
  case ShardRung::Screening:
    return "screening";
  case ShardRung::Configured:
    return "configured";
  case ShardRung::Resilient:
    return "resilient";
  case ShardRung::IntervalBox:
    return "interval-box";
  }
  return "?";
}

const char *attemptOutcomeName(AttemptOutcome O) {
  switch (O) {
  case AttemptOutcome::Ok:
    return "ok";
  case AttemptOutcome::Crash:
    return "crash";
  case AttemptOutcome::Hang:
    return "hang";
  case AttemptOutcome::OomKill:
    return "oom-kill";
  case AttemptOutcome::Oom:
    return "oom";
  case AttemptOutcome::Protocol:
    return "protocol";
  case AttemptOutcome::Fatal:
    return "fatal";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// ShardScheduler
//===----------------------------------------------------------------------===//

ShardScheduler::ShardScheduler(const ShardPolicy &Policy) : Policy(Policy) {
  Slots.resize(static_cast<size_t>(std::max<int64_t>(Policy.NumShards, 1)));
}

double ShardScheduler::backoffDelay(int64_t Attempt) const {
  if (Attempt <= 0)
    return 0.0;
  double Delay = Policy.BackoffInitialSeconds;
  for (int64_t I = 1; I < Attempt; ++I)
    Delay *= Policy.BackoffMultiplier;
  return std::min(Delay, Policy.BackoffMaxSeconds);
}

ShardRung ShardScheduler::rungFor(const Slot &Sl) const {
  const ShardRung R = rungForAttempt(Sl.Attempt);
  return static_cast<uint8_t>(R) >= static_cast<uint8_t>(Sl.RungFloor)
             ? R
             : Sl.RungFloor;
}

bool ShardScheduler::nextReady(double Now, AttemptPlan &Plan) {
  for (size_t I = 0; I < Slots.size(); ++I) {
    Slot &Sl = Slots[I];
    if (Sl.S != State::Pending || Sl.NotBefore > Now)
      continue;
    Sl.S = State::Running;
    Plan.Shard = static_cast<int64_t>(I);
    Plan.Attempt = Sl.Attempt;
    Plan.Rung = rungFor(Sl);
    Plan.NotBeforeSeconds = Sl.NotBefore;
    return true;
  }
  return false;
}

void ShardScheduler::recordSuccess(int64_t Shard) {
  Slots[static_cast<size_t>(Shard)].S = State::Done;
}

void ShardScheduler::recordFailure(int64_t Shard, AttemptOutcome Outcome,
                                   double Now) {
  Slot &Sl = Slots[static_cast<size_t>(Shard)];
  const int64_t NextAttempt = Sl.Attempt + 1;
  if (Outcome == AttemptOutcome::Fatal || NextAttempt > Policy.MaxRetries) {
    Sl.S = State::Exhausted;
    return;
  }
  Sl.Attempt = NextAttempt;
  Sl.NotBefore = Now + backoffDelay(NextAttempt);
  Sl.S = State::Pending;
  ++Retries;
}

void ShardScheduler::escalate(int64_t Shard) {
  Slot &Sl = Slots[static_cast<size_t>(Shard)];
  if (Sl.RungFloor != ShardRung::IntervalBox)
    Sl.RungFloor = static_cast<ShardRung>(static_cast<uint8_t>(Sl.RungFloor) + 1);
  // The popped attempt was never launched; hand the shard straight back.
  Sl.S = State::Pending;
}

bool ShardScheduler::pendingWork() const {
  for (const Slot &Sl : Slots)
    if (Sl.S == State::Pending)
      return true;
  return false;
}

bool ShardScheduler::allResolved() const {
  for (const Slot &Sl : Slots)
    if (Sl.S != State::Done && Sl.S != State::Exhausted)
      return false;
  return true;
}

double ShardScheduler::nextReadyTime() const {
  double Earliest = std::numeric_limits<double>::infinity();
  for (const Slot &Sl : Slots)
    if (Sl.S == State::Pending)
      Earliest = std::min(Earliest, Sl.NotBefore);
  return Earliest;
}

std::vector<int64_t> ShardScheduler::exhaustedShards() const {
  std::vector<int64_t> Out;
  for (size_t I = 0; I < Slots.size(); ++I)
    if (Slots[I].S == State::Exhausted)
      Out.push_back(static_cast<int64_t>(I));
  return Out;
}

//===----------------------------------------------------------------------===//
// ShardSupervisor
//===----------------------------------------------------------------------===//

ShardSupervisor::ShardSupervisor(ShardPolicy Policy,
                                 ShardWorkerLauncher &Launcher,
                                 FallbackFn Fallback, AdmitFn Admit)
    : Policy(std::move(Policy)), Launcher(Launcher),
      Fallback(std::move(Fallback)), Admit(std::move(Admit)) {}

ShardRunSummary ShardSupervisor::run() {
  static Counter &SpawnCtr =
      MetricsRegistry::global().counter("shard.workers_spawned");
  static Counter &RestartCtr =
      MetricsRegistry::global().counter("shard.restarts");
  static Counter &RetryCtr = MetricsRegistry::global().counter("shard.retries");
  static Counter &HbMissCtr =
      MetricsRegistry::global().counter("shard.heartbeat_misses");
  static Counter &HangCtr = MetricsRegistry::global().counter("shard.hangs");
  static Counter &CrashCtr = MetricsRegistry::global().counter("shard.crashes");
  static Counter &OomKillCtr =
      MetricsRegistry::global().counter("shard.oom_kills");
  static Counter &FallbackCtr =
      MetricsRegistry::global().counter("shard.fallbacks");
  static Counter &AdmitRejectCtr =
      MetricsRegistry::global().counter("shard.admission_rejects");
  static Histogram &AttemptSecondsHist =
      MetricsRegistry::global().histogram("shard.attempt_seconds");
  static Gauge &HbAgeGauge =
      MetricsRegistry::global().gauge("shard.heartbeat_age_ms");

  // Per-shard liveness gauges, registered lazily so a run only creates
  // the series it actually observes (registration takes the mutex).
  std::map<int64_t, std::pair<Gauge *, Gauge *>> LivenessGauges;
  const auto RecordLiveness = [&](int64_t Shard, int64_t StateBytes,
                                  int64_t Layer) {
    if (StateBytes < 0 && Layer < 0)
      return;
    auto &Pair = LivenessGauges[Shard];
    if (!Pair.first) {
      const std::string Id = std::to_string(Shard);
      Pair.first = &MetricsRegistry::global().gauge(
          labeledMetricName("shard.state_bytes", "shard", Id));
      Pair.second = &MetricsRegistry::global().gauge(
          labeledMetricName("shard.current_layer", "shard", Id));
    }
    if (StateBytes >= 0)
      Pair.first->set(static_cast<double>(StateBytes));
    if (Layer >= 0)
      Pair.second->set(static_cast<double>(Layer));
  };

  const auto LogEv = [](LogLevel Level, const char *Event,
                        std::initializer_list<LogField> Fields) {
    if (logEnabled())
      EventLog::global().emit(Level, Event, Fields);
  };

  Timer Wall;
  const double Clock0 = Policy.Clock ? Policy.Clock() : 0.0;
  const auto Now = [&] {
    return Policy.Clock ? Policy.Clock() - Clock0 : Wall.seconds();
  };
  const auto Sleep = [&](double Seconds) {
    if (Seconds <= 0.0)
      return;
    if (Policy.Sleep)
      Policy.Sleep(Seconds);
    else
      std::this_thread::sleep_for(std::chrono::duration<double>(Seconds));
  };

  ShardScheduler Sched(Policy);

  // One failure narration point, mirroring recordFailure's retry-vs-
  // exhausted decision so the log tells the same story the scheduler acts
  // out.
  const auto LogFailure = [&](int64_t Shard, int64_t Attempt,
                              AttemptOutcome Outcome) {
    LogEv(LogLevel::Warn, "shard.exit",
          {{"shard", Shard},
           {"attempt", Attempt},
           {"outcome", attemptOutcomeName(Outcome)}});
    const int64_t NextAttempt = Attempt + 1;
    if (Outcome == AttemptOutcome::Fatal || NextAttempt > Policy.MaxRetries)
      LogEv(LogLevel::Error, "shard.exhausted",
            {{"shard", Shard}, {"attempts", NextAttempt}});
    else
      LogEv(LogLevel::Info, "shard.retry",
            {{"shard", Shard},
             {"next_attempt", NextAttempt},
             {"rung", shardRungName(rungForAttempt(NextAttempt))},
             {"backoff_s", Sched.backoffDelay(NextAttempt)}});
  };

  ShardRunSummary Summary;
  const int64_t N = std::max<int64_t>(Policy.NumShards, 1);
  Summary.Results.resize(static_cast<size_t>(N));
  std::map<int64_t, LiveWorker> Live;

  while (true) {
    double T = Now();

    AttemptPlan Plan;
    while (Sched.nextReady(T, Plan)) {
      if (Admit && Plan.Rung == ShardRung::Configured && !Admit(Plan)) {
        // The coordinator's own budget says a Configured-rung worker is
        // doomed; skip straight to the resilient rung without paying for
        // the spawn.
        ++Summary.AdmissionRejects;
        AdmitRejectCtr.add(1);
        LogEv(LogLevel::Warn, "shard.admission_reject",
              {{"shard", Plan.Shard}, {"attempt", Plan.Attempt}});
        Sched.escalate(Plan.Shard);
        continue;
      }
      if (!Launcher.launch(Plan)) {
        ++Summary.Crashes;
        CrashCtr.add(1);
        LogEv(LogLevel::Error, "shard.spawn_failed",
              {{"shard", Plan.Shard}, {"attempt", Plan.Attempt}});
        Sched.recordFailure(Plan.Shard, AttemptOutcome::Crash, T);
        continue;
      }
      SpawnCtr.add(1);
      if (Plan.Attempt > 0) {
        ++Summary.Restarts;
        RestartCtr.add(1);
      }
      LogEv(LogLevel::Info, "shard.spawn",
            {{"shard", Plan.Shard},
             {"attempt", Plan.Attempt},
             {"rung", shardRungName(Plan.Rung)}});
      LiveWorker W;
      W.Plan = Plan;
      W.LaunchedAt = T;
      W.LastBeat = T;
      W.LaunchEpochUs = TraceSession::global().nowUs();
      Live[Plan.Shard] = W;
    }

    for (auto It = Live.begin(); It != Live.end();) {
      const int64_t Shard = It->first;
      LiveWorker &W = It->second;
      WorkerPoll P = Launcher.poll(Shard);
      T = Now();
      if (P.HeartbeatSeen)
        W.LastBeat = T;
      RecordLiveness(Shard, P.BeatStateBytes, P.BeatLayer);
      if (P.Finished) {
        AttemptSecondsHist.record(T - W.LaunchedAt);
        if (P.Outcome == AttemptOutcome::Ok) {
          P.Result.Shard = Shard;
          P.Result.Attempt = W.Plan.Attempt;
          // Fold the worker's shipped telemetry into the coordinator's
          // registries: metrics twice (once under the base names so
          // totals equal coordinator + sum of workers, once under the
          // shard=<id> dimension), trace events re-stamped onto the
          // shard's process lane and shifted onto the coordinator clock,
          // log records spliced verbatim.
          if (P.Telemetry.HasMetrics && metricsEnabled()) {
            foldIntoRegistry(MetricsRegistry::global(), P.Telemetry.Metrics);
            foldIntoRegistry(MetricsRegistry::global(),
                             P.Telemetry.Metrics.withLabel(
                                 "shard", std::to_string(Shard)));
          }
          if (traceEnabled() && !P.Telemetry.Trace.empty()) {
            TraceSession &TS = TraceSession::global();
            TS.setProcessLabel(0, "coordinator");
            TS.setProcessLabel(Shard + 1, "shard " + std::to_string(Shard));
            for (TraceEvent E : P.Telemetry.Trace) {
              E.Pid = Shard + 1;
              E.StartUs += W.LaunchEpochUs;
              TS.record(std::move(E));
            }
          }
          if (logEnabled())
            for (LogRecord R : P.Telemetry.Log)
              EventLog::global().splice(std::move(R));
          LogEv(LogLevel::Info, "shard.exit",
                {{"shard", Shard},
                 {"attempt", W.Plan.Attempt},
                 {"outcome", "ok"},
                 {"seconds", T - W.LaunchedAt}});
          Summary.Results[static_cast<size_t>(Shard)] = std::move(P.Result);
          Sched.recordSuccess(Shard);
        } else {
          switch (P.Outcome) {
          case AttemptOutcome::Crash:
            ++Summary.Crashes;
            CrashCtr.add(1);
            break;
          case AttemptOutcome::OomKill:
            ++Summary.OomKills;
            OomKillCtr.add(1);
            break;
          case AttemptOutcome::Oom:
            ++Summary.Ooms;
            break;
          case AttemptOutcome::Protocol:
            ++Summary.ProtocolErrors;
            break;
          default:
            break;
          }
          LogFailure(Shard, W.Plan.Attempt, P.Outcome);
          Sched.recordFailure(Shard, P.Outcome, T);
        }
        It = Live.erase(It);
        continue;
      }
      const bool HeartbeatLate =
          Policy.HeartbeatTimeoutSeconds > 0.0 &&
          T - W.LastBeat >= Policy.HeartbeatTimeoutSeconds;
      const bool DeadlineBlown = Policy.ShardDeadlineSeconds > 0.0 &&
                                 T - W.LaunchedAt >= Policy.ShardDeadlineSeconds;
      if (HeartbeatLate || DeadlineBlown) {
        if (HeartbeatLate) {
          ++Summary.HeartbeatMisses;
          HbMissCtr.add(1);
        }
        LogEv(LogLevel::Warn, "shard.kill",
              {{"shard", Shard},
               {"attempt", W.Plan.Attempt},
               {"reason", HeartbeatLate ? "heartbeat" : "deadline"},
               {"beat_age_s", T - W.LastBeat},
               {"run_s", T - W.LaunchedAt}});
        Launcher.kill(Shard);
        ++Summary.Hangs;
        HangCtr.add(1);
        AttemptSecondsHist.record(T - W.LaunchedAt);
        LogFailure(Shard, W.Plan.Attempt, AttemptOutcome::Hang);
        Sched.recordFailure(Shard, AttemptOutcome::Hang, T);
        It = Live.erase(It);
        continue;
      }
      ++It;
    }

    // A hung-but-heartbeating worker looks healthy on the counters; the
    // age of the stalest live heartbeat is what distinguishes it.
    if (!Live.empty()) {
      double MaxAge = 0.0;
      for (const auto &[Shard, W] : Live)
        MaxAge = std::max(MaxAge, T - W.LastBeat);
      HbAgeGauge.set(MaxAge * 1000.0);
    }

    if (Live.empty() && !Sched.pendingWork())
      break;
    if (!Live.empty()) {
      Sleep(Policy.PollIntervalSeconds);
      continue;
    }
    // Nothing live: wait out the earliest backoff. The floor keeps a
    // zero-delay retry from busy-spinning against a coarse clock.
    const double Wait = Sched.nextReadyTime() - Now();
    Sleep(std::max(Wait, 1e-4));
  }

  for (int64_t Shard : Sched.exhaustedShards()) {
    ShardResult R;
    if (Fallback)
      R = Fallback(Shard);
    // With no fallback the result keeps empty Specs; mergeShardResults
    // treats every missing spec slot as [0, 1] mass-unknown, still sound.
    R.Shard = Shard;
    R.FromFallback = true;
    R.Degraded = true;
    R.Rung = static_cast<int64_t>(ShardRung::IntervalBox);
    Summary.Results[static_cast<size_t>(Shard)] = std::move(R);
    ++Summary.Fallbacks;
    FallbackCtr.add(1);
    LogEv(LogLevel::Warn, "shard.fallback", {{"shard", Shard}});
  }

  RetryCtr.add(Sched.totalRetries());
  Summary.Degraded = Summary.Restarts > 0 || Summary.Fallbacks > 0 ||
                     Summary.AdmissionRejects > 0;
  for (const ShardResult &R : Summary.Results)
    Summary.Degraded = Summary.Degraded || R.Degraded;
  Summary.Seconds = Now();
  return Summary;
}

//===----------------------------------------------------------------------===//
// runShardAttempt — the worker's actual job
//===----------------------------------------------------------------------===//

ShardResult runShardAttempt(const ShardWorkContext &Ctx,
                            const AttemptPlan &Plan) {
  GenProveConfig Cfg = Ctx.Config;
  // Partial masses must stay partial: the deterministic collapse only
  // makes sense on the merged bounds, so workers always run probabilistic
  // and the coordinator collapses after mergeShardResults.
  Cfg.Mode = AnalysisMode::Probabilistic;
  Cfg.InputSplits = 1;
  // Screening is not scheduled as a plan rung (rungForAttempt never
  // returns it); normalize a defensive arrival to Configured and let the
  // FastScreen config decide below.
  ShardRung Rung = Plan.Rung == ShardRung::Screening ? ShardRung::Configured
                                                     : Plan.Rung;
  if (Rung != ShardRung::Configured)
    Cfg.Resilience.Enabled = true;
  Cfg.Resilience.StartAtFullBox = Rung == ShardRung::IntervalBox;
  // The two-tier screen applies only to the first, un-escalated attempt:
  // a retry or an escalated rung means the fast path already failed this
  // request once, so it runs the full sound tier directly.
  const bool Screen =
      Cfg.FastScreen && Rung == ShardRung::Configured && !Ctx.Specs.empty();
  if (!Screen)
    Cfg.FastScreen = false;

  const std::vector<ShardRange> Ranges = planShards(Ctx.NumShards);
  const size_t Index =
      static_cast<size_t>(std::clamp<int64_t>(Plan.Shard, 0,
                                              static_cast<int64_t>(Ranges.size()) - 1));
  const ShardRange Range = Ranges[Index];

  const Tensor A = Ctx.Start.reshaped({1, Ctx.Start.numel()});
  const Tensor B = Ctx.End.reshaped({1, Ctx.End.numel()});

  if (Screen) {
    // Two-tier path: per spec, the float32 screen classifies the shard's
    // parameter range piecewise and only borderline pieces re-run under
    // the sound double tier (GenProve::analyzeSegmentScreened). Every
    // reported bound comes from the sound tier; the screen only decides
    // which pieces need it.
    const GenProve GP(Cfg);
    ShardResult Out;
    Out.Shard = Plan.Shard;
    Out.Attempt = Plan.Attempt;
    Out.Rung = static_cast<int64_t>(ShardRung::Screening);
    Out.Specs.reserve(Ctx.Specs.size());
    for (const OutputSpec &Spec : Ctx.Specs) {
      const AnalysisResult R = GP.analyzeSegmentScreened(
          Ctx.Pipeline, Ctx.InputShape, A, B, Spec, Range.T0, Range.T1);
      Out.Seconds += R.Seconds;
      Out.PeakBytes = std::max(Out.PeakBytes,
                               static_cast<int64_t>(R.PeakBytes));
      Out.MaxRegions = std::max(Out.MaxRegions, R.MaxRegions);
      Out.MaxNodes = std::max(Out.MaxNodes, R.MaxNodes);
      Out.Retries += R.Retries;
      Out.Rollbacks += R.Rollbacks;
      Out.FallbackBoxLayers += R.FallbackBoxLayers;
      Out.QuarantinedMass += R.QuarantinedMass;
      Out.Degraded = Out.Degraded || R.Degraded;
      Out.DeadlineHit = Out.DeadlineHit || R.DeadlineHit;
      Out.OutOfMemory = Out.OutOfMemory || R.OutOfMemory;
      ShardSpecBounds SB;
      SB.Lower = R.Bounds.Lower;
      SB.Upper = R.Bounds.Upper;
      SB.Degraded = R.Bounds.Degraded;
      Out.Specs.push_back(SB);
    }
    return Out;
  }
  Tensor PartStart({1, A.numel()});
  Tensor PartEnd({1, A.numel()});
  for (int64_t J = 0; J < A.numel(); ++J) {
    PartStart[J] = A[J] + Range.T0 * (B[J] - A[J]);
    PartEnd[J] = A[J] + Range.T1 * (B[J] - A[J]);
  }
  const ParamCdf Cdf = makeCdf(Cfg.Distribution);
  const double Weight = Cdf(Range.T1) - Cdf(Range.T0);

  std::vector<Region> Initial;
  Initial.push_back(
      makeSegmentRegion(PartStart, PartEnd, Weight, Range.T0, Range.T1));

  const GenProve GP(Cfg);
  const PropagatedState State =
      GP.propagateRegionsFrom(Ctx.Pipeline, Ctx.InputShape, std::move(Initial));

  ShardResult Out;
  Out.Shard = Plan.Shard;
  Out.Attempt = Plan.Attempt;
  Out.Rung = static_cast<int64_t>(Rung);
  Out.Seconds = State.Seconds;
  Out.PeakBytes = static_cast<int64_t>(State.PeakBytes);
  Out.MaxRegions = State.Stats.MaxRegions;
  Out.MaxNodes = State.Stats.MaxNodes;
  Out.Retries = State.Retries;
  Out.Rollbacks = State.Stats.Rollbacks;
  Out.FallbackBoxLayers = State.Stats.FallbackBoxLayers;
  Out.QuarantinedMass = State.Stats.QuarantinedMass;
  Out.Degraded = State.Degraded;
  Out.DeadlineHit = State.Stats.DeadlineHit;
  Out.OutOfMemory = State.OutOfMemory;
  Out.Specs.reserve(Ctx.Specs.size());
  for (const OutputSpec &Spec : Ctx.Specs) {
    const ProbBounds Pb = GP.boundsFor(State, Spec);
    ShardSpecBounds SB;
    SB.Lower = Pb.Lower;
    SB.Upper = Pb.Upper;
    SB.Degraded = Pb.Degraded;
    Out.Specs.push_back(SB);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// InProcessShardLauncher
//===----------------------------------------------------------------------===//

InProcessShardLauncher::InProcessShardLauncher(const ShardWorkContext &Ctx,
                                               FaultHook Hook)
    : Ctx(Ctx), Hook(std::move(Hook)) {}

InProcessShardLauncher::~InProcessShardLauncher() {
  for (auto &Entry : Slots)
    if (Entry.second->Worker.joinable())
      Entry.second->Worker.join();
}

bool InProcessShardLauncher::launch(const AttemptPlan &Plan) {
  auto Sl = std::make_unique<Slot>();
  AttemptOutcome Outcome = AttemptOutcome::Crash;
  if (Hook && Hook(Plan, Outcome)) {
    Sl->Faulted = true;
    Sl->Outcome = Outcome;
    // A Hang never finishes (and never heartbeats) until the supervisor
    // kills it; every other injected outcome fails instantly.
    Sl->Done.store(Outcome != AttemptOutcome::Hang,
                   std::memory_order_release);
  } else {
    Slot *Raw = Sl.get();
    Raw->Worker = std::thread([this, Plan, Raw] {
      ShardResult R = runShardAttempt(Ctx, Plan);
      if (R.OutOfMemory) {
        // Mirror the process worker, which exits 3 without a result line.
        Raw->Faulted = true;
        Raw->Outcome = AttemptOutcome::Oom;
      } else {
        Raw->ResultLine = encodeShardResult(R);
      }
      Raw->Done.store(true, std::memory_order_release);
    });
  }
  std::lock_guard<std::mutex> Lock(Mu);
  Slots[Plan.Shard] = std::move(Sl);
  return true;
}

WorkerPoll InProcessShardLauncher::poll(int64_t Shard) {
  std::unique_ptr<Slot> Finished;
  WorkerPoll P;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Slots.find(Shard);
    if (It == Slots.end()) {
      P.Finished = true;
      P.Outcome = AttemptOutcome::Crash;
      return P;
    }
    Slot &Sl = *It->second;
    if (!Sl.Done.load(std::memory_order_acquire)) {
      // A live worker thread is by definition making progress; a hung
      // fault is the one thing that goes silent.
      P.HeartbeatSeen = !Sl.Faulted;
      return P;
    }
    Finished = std::move(It->second);
    Slots.erase(It);
  }
  P.Finished = true;
  P.HeartbeatSeen = !Finished->Faulted;
  if (Finished->Faulted) {
    P.Outcome = Finished->Outcome;
  } else if (classifyShardMessage(Finished->ResultLine) ==
                 ShardMessageKind::Result &&
             decodeShardResult(Finished->ResultLine, P.Result)) {
    P.Outcome = AttemptOutcome::Ok;
  } else {
    P.Outcome = AttemptOutcome::Protocol;
  }
  if (Finished->Worker.joinable())
    Finished->Worker.join();
  return P;
}

void InProcessShardLauncher::kill(int64_t Shard) {
  std::unique_ptr<Slot> Sl;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Slots.find(Shard);
    if (It == Slots.end())
      return;
    Sl = std::move(It->second);
    Slots.erase(It);
  }
  // A std::thread cannot be killed; let it run to completion and drop the
  // result, which is what discarding a killed process's pipe does.
  if (Sl->Worker.joinable())
    Sl->Worker.join();
}

} // namespace genprove
