//===- shard/supervisor.h - Shard supervision and retry ladder -*- C++ -*-===//
///
/// \file
/// The supervision layer of the sharded certification path (ROADMAP item
/// 4): a coordinator partitions the input-parameter range with planShards,
/// hands each shard to a worker through an abstract ShardWorkerLauncher,
/// and babysits the workers with heartbeats, per-shard deadlines and
/// exit-status classification. A failed attempt is retried with
/// exponential backoff, each retry escalating the *supervision rung*:
///
///   attempt 0  Configured   — the user's exact configuration;
///   attempt 1  Resilient    — the PR-3 degradation ladder switched on, so
///                             in-process OOM/NaN degrade instead of dying;
///   attempt 2+ IntervalBox  — ResilienceConfig::StartAtFullBox: the whole
///                             pipeline runs budget-exempt interval
///                             arithmetic, the cheapest sound analysis.
///
/// A shard that exhausts its retry budget is bounded by the coordinator's
/// own in-process interval-box fallback, so the merged certificate is
/// always sound — just DEGRADED. The scheduler is a pure state machine
/// over an injected clock, so every retry/backoff/escalation decision is
/// unit-testable without processes or real time (tests/shard_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SHARD_SUPERVISOR_H
#define GENPROVE_SHARD_SUPERVISOR_H

#include "src/core/genprove.h"
#include "src/shard/protocol.h"
#include "src/shard/shard.h"

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace genprove {

/// The supervision rung a worker attempt runs at (distinct from the
/// in-process DegradeRung, which can still climb *within* an attempt).
/// Ordered by increasing coarseness: Screening sits ABOVE Configured in
/// the QoS ladder (a float32 screen decides clear regions, only the
/// borderline set pays the sound double tier) and therefore BELOW it
/// numerically, so the scheduler's rung-floor maximum and the escalation
/// increment abandon the screen before anything else.
enum class ShardRung : uint8_t {
  Screening = 0,
  Configured = 1,
  Resilient = 2,
  IntervalBox = 3,
};

/// Rung for the Nth attempt at a shard (0-based): 0 → Configured,
/// 1 → Resilient, 2+ → IntervalBox. Screening is never scheduled by
/// attempt number — it is a QoS opt-in applied inside the first
/// Configured attempt (runShardAttempt), so retries always escape it.
ShardRung rungForAttempt(int64_t Attempt);

/// Display name ("screening", "configured", "resilient", "interval-box").
const char *shardRungName(ShardRung R);

/// How a worker attempt ended, as classified by the launcher.
enum class AttemptOutcome : uint8_t {
  Ok,       ///< clean exit with a valid result message
  Crash,    ///< killed by a signal other than SIGKILL / abnormal exit
  Hang,     ///< no heartbeat (or deadline blown) — killed by the supervisor
  OomKill,  ///< SIGKILL, the kernel OOM killer's signature
  Oom,      ///< worker reported simulated-device OOM (exit 3) — retryable
  Protocol, ///< exited cleanly but the result line did not parse
  Fatal,    ///< usage/config error (exit 2) — retrying cannot help
};

const char *attemptOutcomeName(AttemptOutcome O);

/// Everything the scheduler needs to decide retry/backoff/escalation.
struct ShardPolicy {
  int64_t NumShards = 1;
  /// Retries allowed per shard after the first attempt; a shard that
  /// fails MaxRetries + 1 times falls back to the interval-box bound.
  int64_t MaxRetries = 3;
  /// Per-attempt wall-clock budget; 0 = none. A worker that outlives it
  /// is killed and the attempt counts as a Hang.
  double ShardDeadlineSeconds = 0.0;
  /// Kill a worker whose last heartbeat is older than this; 0 disables.
  double HeartbeatTimeoutSeconds = 2.0;
  /// Exponential backoff between retries of one shard:
  /// delay(k) = min(Initial * Multiplier^(k-1), Max) before attempt k.
  double BackoffInitialSeconds = 0.05;
  double BackoffMultiplier = 2.0;
  double BackoffMaxSeconds = 2.0;
  /// Supervisor poll cadence while workers are live.
  double PollIntervalSeconds = 0.01;
  /// Injected clock/sleep for deterministic tests; empty = steady wall
  /// clock and std::this_thread::sleep_for.
  std::function<double()> Clock;
  std::function<void(double)> Sleep;
};

/// One scheduled worker attempt.
struct AttemptPlan {
  int64_t Shard = 0;
  int64_t Attempt = 0; ///< 0-based
  ShardRung Rung = ShardRung::Configured;
  double NotBeforeSeconds = 0.0; ///< earliest launch time (scheduler clock)
};

/// Pure retry/backoff/escalation state machine. All times are seconds on
/// the supervisor's clock (0 = supervision start). Not thread-safe; the
/// supervisor drives it from one thread.
class ShardScheduler {
public:
  explicit ShardScheduler(const ShardPolicy &Policy);

  /// Pop one attempt whose backoff has elapsed at time \p Now; false when
  /// nothing is ready. The popped shard is considered running until
  /// recordSuccess/recordFailure.
  bool nextReady(double Now, AttemptPlan &Plan);

  void recordSuccess(int64_t Shard);

  /// Record a failed attempt: schedules the retry (backoff from \p Now,
  /// escalated rung), or marks the shard exhausted when the retry budget
  /// is spent — immediately for Fatal outcomes, which retrying cannot fix.
  void recordFailure(int64_t Shard, AttemptOutcome Outcome, double Now);

  /// Raise the shard's rung floor without consuming an attempt (used when
  /// coordinator-side admission rejects a Configured-rung launch).
  void escalate(int64_t Shard);

  /// Shards still waiting to launch (not running, not resolved).
  bool pendingWork() const;

  /// Every shard either succeeded or exhausted its budget.
  bool allResolved() const;

  /// Earliest NotBefore among pending shards; +inf when none pending.
  double nextReadyTime() const;

  std::vector<int64_t> exhaustedShards() const;

  int64_t totalRetries() const { return Retries; }

  /// Backoff before retry attempt \p Attempt (1-based); exposed for the
  /// deterministic scheduling tests.
  double backoffDelay(int64_t Attempt) const;

private:
  enum class State : uint8_t { Pending, Running, Done, Exhausted };

  struct Slot {
    State S = State::Pending;
    int64_t Attempt = 0;
    double NotBefore = 0.0;
    ShardRung RungFloor = ShardRung::Configured;
  };

  ShardRung rungFor(const Slot &Sl) const;

  ShardPolicy Policy;
  std::vector<Slot> Slots;
  int64_t Retries = 0;
};

/// What a launcher reports for one live worker on each poll.
struct WorkerPoll {
  bool Finished = false;
  AttemptOutcome Outcome = AttemptOutcome::Crash;
  ShardResult Result;        ///< valid only when Outcome == Ok
  bool HeartbeatSeen = false; ///< any heartbeat since the previous poll
  /// Telemetry attached to the worker's result message (empty unless
  /// Outcome == Ok and the worker was asked to ship telemetry).
  ShardTelemetry Telemetry;
  /// Latest heartbeat liveness digest; -1 = not reported.
  int64_t BeatStateBytes = -1;
  int64_t BeatLayer = -1;
};

/// Abstraction over "run one shard attempt somewhere". The production
/// implementation forks a genprove_cli --shard-worker process
/// (shard/process_launcher.h); tests use scripted or in-thread launchers.
/// At most one live attempt per shard at a time, keyed by shard index.
class ShardWorkerLauncher {
public:
  virtual ~ShardWorkerLauncher() = default;

  /// Start an attempt; false when the worker could not even be spawned
  /// (counted as a Crash of that attempt).
  virtual bool launch(const AttemptPlan &Plan) = 0;

  /// Non-blocking status check of the shard's live attempt.
  virtual WorkerPoll poll(int64_t Shard) = 0;

  /// Forcibly end the shard's live attempt (heartbeat/deadline kill).
  virtual void kill(int64_t Shard) = 0;
};

/// Outcome of a supervised run: one result per shard (worker-produced or
/// fallback) plus the supervision telemetry the CLI prints and exports.
struct ShardRunSummary {
  std::vector<ShardResult> Results; ///< indexed by shard
  int64_t Restarts = 0;        ///< launches beyond each shard's first
  int64_t Fallbacks = 0;       ///< shards bounded by the fallback
  int64_t HeartbeatMisses = 0; ///< heartbeat-timeout kills
  int64_t Hangs = 0;           ///< heartbeat + deadline kills
  int64_t Crashes = 0;
  int64_t OomKills = 0;
  int64_t Ooms = 0;            ///< worker-reported simulated OOM (exit 3)
  int64_t ProtocolErrors = 0;
  int64_t AdmissionRejects = 0;
  /// Any shard degraded, fell back, or needed a restart. Supervision
  /// events degrade the certificate even when the retry eventually
  /// succeeded: the operator must know the run was not clean.
  bool Degraded = false;
  double Seconds = 0.0;
};

/// The supervision loop: launches ready attempts, polls live workers,
/// enforces heartbeat/deadline kills, retries with backoff, and bounds
/// exhausted shards with the fallback.
class ShardSupervisor {
public:
  /// Sound last-resort bound for one shard (run in the coordinator).
  using FallbackFn = std::function<ShardResult(int64_t Shard)>;
  /// Coordinator-side admission control for Configured-rung launches
  /// (DeviceMemoryModel::tryCharge against the coordinator's budget);
  /// returning false escalates the shard without spawning a doomed worker.
  using AdmitFn = std::function<bool(const AttemptPlan &)>;

  ShardSupervisor(ShardPolicy Policy, ShardWorkerLauncher &Launcher,
                  FallbackFn Fallback, AdmitFn Admit = {});

  ShardRunSummary run();

private:
  struct LiveWorker {
    AttemptPlan Plan;
    double LaunchedAt = 0.0;
    double LastBeat = 0.0;
    /// Coordinator trace clock at launch; spliced worker trace events
    /// (whose timestamps are relative to the worker's own epoch) are
    /// shifted by this so retries and backoff gaps line up on the
    /// coordinator timeline.
    uint64_t LaunchEpochUs = 0;
  };

  ShardPolicy Policy;
  ShardWorkerLauncher &Launcher;
  FallbackFn Fallback;
  AdmitFn Admit;
};

//===----------------------------------------------------------------------===//
// The work a shard attempt actually performs (shared by the CLI worker
// mode, the in-process launcher and the coordinator fallback).
//===----------------------------------------------------------------------===//

/// Everything needed to certify one shard: the pipeline, the latent
/// segment, the specs, and a GenProveConfig whose memory budget is already
/// the per-shard slice.
struct ShardWorkContext {
  std::vector<const Layer *> Pipeline;
  Shape InputShape;
  Tensor Start; ///< flat latent endpoints [1, Latent] (or [Latent])
  Tensor End;
  std::vector<OutputSpec> Specs;
  GenProveConfig Config;
  int64_t NumShards = 1;
};

/// Run one attempt: restrict the segment to the shard's parameter
/// sub-range (same Section 5.2 partition as GenProveConfig::InputSplits),
/// apply the supervision rung, propagate, and project per-spec partial
/// bounds. Always probabilistic — the deterministic collapse is only
/// meaningful on the *merged* bounds, so the coordinator applies it after
/// mergeShardResults. Result.OutOfMemory set (with [0,1]-style
/// conservative spec bounds) when the Configured rung hit the budget.
ShardResult runShardAttempt(const ShardWorkContext &Ctx,
                            const AttemptPlan &Plan);

/// A launcher that runs runShardAttempt on a std::thread and round-trips
/// the result through the wire protocol (encode + decode), exercising the
/// supervisor and protocol layers without fork/exec. FaultHook lets tests
/// fail an attempt deterministically: return true and set the outcome —
/// Hang produces a worker that never finishes and never heartbeats (the
/// supervisor must kill it), anything else an instant failure.
class InProcessShardLauncher : public ShardWorkerLauncher {
public:
  using FaultHook =
      std::function<bool(const AttemptPlan &Plan, AttemptOutcome &Outcome)>;

  explicit InProcessShardLauncher(const ShardWorkContext &Ctx,
                                  FaultHook Hook = {});
  ~InProcessShardLauncher() override;

  bool launch(const AttemptPlan &Plan) override;
  WorkerPoll poll(int64_t Shard) override;
  void kill(int64_t Shard) override;

private:
  struct Slot {
    std::thread Worker;
    std::atomic<bool> Done{false};
    bool Faulted = false; ///< hook-failed; Outcome below is the verdict
    AttemptOutcome Outcome = AttemptOutcome::Crash;
    std::string ResultLine; ///< encoded protocol line (valid when Done)
  };

  const ShardWorkContext &Ctx;
  FaultHook Hook;
  std::mutex Mu;
  std::map<int64_t, std::unique_ptr<Slot>> Slots;
};

} // namespace genprove

#endif // GENPROVE_SHARD_SUPERVISOR_H
