//===- shard/protocol.cpp -------------------------------------*- C++ -*-===//

#include "src/shard/protocol.h"

#include "src/obs/json.h"

#include <cmath>
#include <cstring>

namespace genprove {

//===----------------------------------------------------------------------===//
// LineFramer
//===----------------------------------------------------------------------===//

const char *wireErrorName(WireError E) {
  switch (E) {
  case WireError::None:
    return "none";
  case WireError::Oversized:
    return "oversized";
  case WireError::Truncated:
    return "truncated";
  }
  return "none";
}

LineFramer::LineFramer(size_t MaxLineBytes)
    : MaxLine(MaxLineBytes ? MaxLineBytes : 1) {}

void LineFramer::feed(const char *Data, size_t Len) {
  size_t I = 0;
  while (I < Len) {
    if (Dropping) {
      // Discard up to and including the newline that ends the over-cap
      // line; the Oversized marker was queued when the cap was crossed.
      const void *Nl = memchr(Data + I, '\n', Len - I);
      if (!Nl)
        return; // still inside the discarded line
      I = static_cast<size_t>(static_cast<const char *>(Nl) - Data) + 1;
      Dropping = false;
      continue;
    }
    const void *Nl = memchr(Data + I, '\n', Len - I);
    const size_t Stop =
        Nl ? static_cast<size_t>(static_cast<const char *>(Nl) - Data) : Len;
    const size_t Take = Stop - I;
    if (Partial.size() + Take > MaxLine) {
      // Cap crossed: forget what we buffered, queue one typed marker in
      // order, and discard the rest of this line as it streams in.
      Partial.clear();
      Dropping = true;
      ++OversizedCount;
      Ready.push_back(Pending{true, std::string()});
      if (Nl) {
        I = Stop + 1;
        Dropping = false;
      } else {
        return;
      }
      continue;
    }
    Partial.append(Data + I, Take);
    if (!Nl)
      return;
    Ready.push_back(Pending{false, std::move(Partial)});
    Partial.clear();
    I = Stop + 1;
  }
}

LineFramer::Frame LineFramer::next(std::string &Line) {
  if (Ready.empty()) {
    Line.clear();
    return Frame::None;
  }
  Pending P = std::move(Ready.front());
  Ready.pop_front();
  if (P.Oversized) {
    Line.clear();
    return Frame::Oversized;
  }
  Line = std::move(P.Text);
  return Frame::Line;
}

WireError LineFramer::finish() const {
  if (Dropping)
    return WireError::Oversized;
  if (!Partial.empty())
    return WireError::Truncated;
  return WireError::None;
}

std::string encodeShardHeartbeat(int64_t Shard, int64_t Seq,
                                 int64_t StateBytes, int64_t Layer) {
  JsonWriter W;
  W.beginObject()
      .key("type")
      .value("heartbeat")
      .key("shard")
      .value(Shard)
      .key("seq")
      .value(Seq)
      .key("state_bytes")
      .value(StateBytes)
      .key("layer")
      .value(Layer)
      .endObject();
  return W.str();
}

bool decodeShardHeartbeat(const std::string &Line, ShardHeartbeat &Out) {
  JsonValue V;
  if (!parseJson(Line, V))
    return false;
  const JsonValue *Type = V.find("type");
  if (!Type || Type->stringOr("") != "heartbeat")
    return false;
  Out = ShardHeartbeat{};
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  Out.Shard = Int("shard", -1);
  Out.Seq = Int("seq", 0);
  Out.StateBytes = Int("state_bytes", -1);
  Out.Layer = Int("layer", -1);
  return true;
}

namespace {

void encodeTraceEvent(JsonWriter &W, const TraceEvent &E) {
  W.beginObject();
  W.key("n").value(E.Name);
  W.key("ts").value(int64_t(E.StartUs));
  W.key("dur").value(int64_t(E.DurUs));
  W.key("self").value(int64_t(E.SelfUs));
  W.key("tid").value(int64_t(E.Tid));
  W.key("depth").value(int64_t(E.Depth));
  W.endObject();
}

void encodeLogRecord(JsonWriter &W, const LogRecord &R) {
  W.beginObject();
  W.key("ts").value(int64_t(R.TsUs));
  W.key("level").value(int64_t(R.Level));
  W.key("shard").value(R.Shard);
  W.key("event").value(R.Event);
  W.key("fields").beginObject();
  for (const LogField &F : R.Fields) {
    W.key(F.first);
    switch (F.second.K) {
    case LogValue::Kind::Int:
      W.value(F.second.I);
      break;
    case LogValue::Kind::Real:
      W.value(F.second.D);
      break;
    case LogValue::Kind::Text:
      W.value(F.second.S);
      break;
    case LogValue::Kind::Flag:
      W.value(F.second.B);
      break;
    }
  }
  W.endObject();
  W.endObject();
}

bool decodeTraceEvent(const JsonValue &V, TraceEvent &Out) {
  if (V.K != JsonValue::Kind::Object)
    return false;
  const JsonValue *Name = V.find("n");
  if (!Name || Name->K != JsonValue::Kind::String)
    return false;
  Out = TraceEvent{};
  Out.Name = Name->Str;
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  Out.StartUs = uint64_t(Int("ts", 0));
  Out.DurUs = uint64_t(Int("dur", 0));
  Out.SelfUs = uint64_t(Int("self", 0));
  Out.Tid = uint32_t(Int("tid", 0));
  Out.Depth = uint32_t(Int("depth", 0));
  return true;
}

bool decodeLogRecord(const JsonValue &V, LogRecord &Out) {
  if (V.K != JsonValue::Kind::Object)
    return false;
  const JsonValue *Event = V.find("event");
  if (!Event || Event->K != JsonValue::Kind::String)
    return false;
  Out = LogRecord{};
  Out.Event = Event->Str;
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  Out.TsUs = uint64_t(Int("ts", 0));
  const int64_t Level = Int("level", int64_t(LogLevel::Info));
  Out.Level = Level >= 0 && Level <= int64_t(LogLevel::Error)
                  ? LogLevel(Level)
                  : LogLevel::Info;
  Out.Shard = Int("shard", -1);
  if (const JsonValue *Fields = V.find("fields");
      Fields && Fields->K == JsonValue::Kind::Object) {
    for (const auto &[Key, Val] : Fields->Members) {
      switch (Val.K) {
      case JsonValue::Kind::Number: {
        // Integral numbers in the exactly-representable range come back
        // as ints; everything else stays a double.
        const double D = Val.Num;
        if (D == std::floor(D) && std::abs(D) < 9.007199254740992e15)
          Out.Fields.emplace_back(Key, LogValue(int64_t(D)));
        else
          Out.Fields.emplace_back(Key, LogValue(D));
        break;
      }
      case JsonValue::Kind::String:
        Out.Fields.emplace_back(Key, LogValue(Val.Str));
        break;
      case JsonValue::Kind::Bool:
        Out.Fields.emplace_back(Key, LogValue(Val.B));
        break;
      default:
        break; // null/array/object fields are dropped
      }
    }
  }
  return true;
}

} // namespace

std::string encodeShardResult(const ShardResult &R,
                              const ShardTelemetry *Telemetry) {
  JsonWriter W;
  W.beginObject();
  W.key("type").value("result");
  W.key("shard").value(R.Shard);
  W.key("attempt").value(R.Attempt);
  W.key("rung").value(R.Rung);
  W.key("seconds").value(R.Seconds);
  W.key("peak_bytes").value(R.PeakBytes);
  W.key("max_regions").value(R.MaxRegions);
  W.key("max_nodes").value(R.MaxNodes);
  W.key("retries").value(R.Retries);
  W.key("rollbacks").value(R.Rollbacks);
  W.key("fallback_box_layers").value(R.FallbackBoxLayers);
  W.key("quarantined_mass").value(R.QuarantinedMass);
  W.key("degraded").value(R.Degraded);
  W.key("deadline_hit").value(R.DeadlineHit);
  W.key("oom").value(R.OutOfMemory);
  W.key("specs").beginArray();
  for (const ShardSpecBounds &B : R.Specs) {
    W.beginObject()
        .key("lower")
        .value(B.Lower)
        .key("upper")
        .value(B.Upper)
        .key("degraded")
        .value(B.Degraded)
        .endObject();
  }
  W.endArray();
  if (Telemetry && !Telemetry->empty()) {
    W.key("telemetry").beginObject();
    if (Telemetry->HasMetrics)
      W.key("metrics").raw(Telemetry->Metrics.toJson());
    if (!Telemetry->Trace.empty()) {
      W.key("trace").beginArray();
      for (const TraceEvent &E : Telemetry->Trace)
        encodeTraceEvent(W, E);
      W.endArray();
    }
    if (!Telemetry->Log.empty()) {
      W.key("log").beginArray();
      for (const LogRecord &L : Telemetry->Log)
        encodeLogRecord(W, L);
      W.endArray();
    }
    W.endObject();
  }
  W.endObject();
  return W.str();
}

ShardMessageKind classifyShardMessage(const std::string &Line) {
  JsonValue V;
  if (!parseJson(Line, V))
    return ShardMessageKind::Invalid;
  const JsonValue *Type = V.find("type");
  if (!Type)
    return ShardMessageKind::Invalid;
  const std::string &Kind = Type->stringOr("");
  if (Kind == "heartbeat")
    return ShardMessageKind::Heartbeat;
  if (Kind == "result")
    return ShardMessageKind::Result;
  return ShardMessageKind::Invalid;
}

bool decodeShardResult(const std::string &Line, ShardResult &Out,
                       std::string *Error, ShardTelemetry *Telemetry) {
  if (Telemetry)
    *Telemetry = ShardTelemetry{};
  JsonValue V;
  if (!parseJson(Line, V, Error))
    return false;
  const JsonValue *Type = V.find("type");
  if (!Type || Type->stringOr("") != "result") {
    if (Error)
      *Error = "not a result message";
    return false;
  }
  Out = ShardResult{};
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  auto Num = [&](const char *Key, double Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->numberOr(Fallback) : Fallback;
  };
  auto Flag = [&](const char *Key, bool Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->boolOr(Fallback) : Fallback;
  };
  Out.Shard = Int("shard", -1);
  Out.Attempt = Int("attempt", 0);
  Out.Rung = Int("rung", 0);
  Out.Seconds = Num("seconds", 0.0);
  Out.PeakBytes = Int("peak_bytes", 0);
  Out.MaxRegions = Int("max_regions", 0);
  Out.MaxNodes = Int("max_nodes", 0);
  Out.Retries = Int("retries", 0);
  Out.Rollbacks = Int("rollbacks", 0);
  Out.FallbackBoxLayers = Int("fallback_box_layers", 0);
  Out.QuarantinedMass = Num("quarantined_mass", 0.0);
  Out.Degraded = Flag("degraded", false);
  Out.DeadlineHit = Flag("deadline_hit", false);
  Out.OutOfMemory = Flag("oom", false);
  if (const JsonValue *Specs = V.find("specs");
      Specs && Specs->K == JsonValue::Kind::Array) {
    Out.Specs.reserve(Specs->Items.size());
    for (const JsonValue &S : Specs->Items) {
      ShardSpecBounds B;
      // A missing bound decodes to the conservative extreme, never to a
      // tighter-than-reported interval.
      const JsonValue *Lo = S.find("lower");
      const JsonValue *Hi = S.find("upper");
      B.Lower = Lo ? Lo->numberOr(0.0) : 0.0;
      B.Upper = Hi ? Hi->numberOr(1.0) : 1.0;
      const JsonValue *Deg = S.find("degraded");
      B.Degraded = Deg ? Deg->boolOr(false) : false;
      Out.Specs.push_back(B);
    }
  }
  if (Out.Shard < 0) {
    if (Error)
      *Error = "result message missing shard index";
    return false;
  }
  if (Telemetry) {
    if (const JsonValue *Tel = V.find("telemetry");
        Tel && Tel->K == JsonValue::Kind::Object) {
      if (const JsonValue *Metrics = Tel->find("metrics"))
        Telemetry->HasMetrics =
            MetricsSnapshot::fromJson(*Metrics, Telemetry->Metrics);
      if (const JsonValue *Trace = Tel->find("trace");
          Trace && Trace->K == JsonValue::Kind::Array)
        for (const JsonValue &E : Trace->Items) {
          TraceEvent Event;
          if (decodeTraceEvent(E, Event))
            Telemetry->Trace.push_back(std::move(Event));
        }
      if (const JsonValue *Log = Tel->find("log");
          Log && Log->K == JsonValue::Kind::Array)
        for (const JsonValue &R : Log->Items) {
          LogRecord Record;
          if (decodeLogRecord(R, Record))
            Telemetry->Log.push_back(std::move(Record));
        }
    }
  }
  return true;
}

} // namespace genprove
