//===- shard/protocol.cpp -------------------------------------*- C++ -*-===//

#include "src/shard/protocol.h"

#include "src/obs/json.h"

namespace genprove {

std::string encodeShardHeartbeat(int64_t Shard, int64_t Seq) {
  JsonWriter W;
  W.beginObject()
      .key("type")
      .value("heartbeat")
      .key("shard")
      .value(Shard)
      .key("seq")
      .value(Seq)
      .endObject();
  return W.str();
}

std::string encodeShardResult(const ShardResult &R) {
  JsonWriter W;
  W.beginObject();
  W.key("type").value("result");
  W.key("shard").value(R.Shard);
  W.key("attempt").value(R.Attempt);
  W.key("rung").value(R.Rung);
  W.key("seconds").value(R.Seconds);
  W.key("peak_bytes").value(R.PeakBytes);
  W.key("max_regions").value(R.MaxRegions);
  W.key("max_nodes").value(R.MaxNodes);
  W.key("retries").value(R.Retries);
  W.key("rollbacks").value(R.Rollbacks);
  W.key("fallback_box_layers").value(R.FallbackBoxLayers);
  W.key("quarantined_mass").value(R.QuarantinedMass);
  W.key("degraded").value(R.Degraded);
  W.key("deadline_hit").value(R.DeadlineHit);
  W.key("oom").value(R.OutOfMemory);
  W.key("specs").beginArray();
  for (const ShardSpecBounds &B : R.Specs) {
    W.beginObject()
        .key("lower")
        .value(B.Lower)
        .key("upper")
        .value(B.Upper)
        .key("degraded")
        .value(B.Degraded)
        .endObject();
  }
  W.endArray();
  W.endObject();
  return W.str();
}

ShardMessageKind classifyShardMessage(const std::string &Line) {
  JsonValue V;
  if (!parseJson(Line, V))
    return ShardMessageKind::Invalid;
  const JsonValue *Type = V.find("type");
  if (!Type)
    return ShardMessageKind::Invalid;
  const std::string &Kind = Type->stringOr("");
  if (Kind == "heartbeat")
    return ShardMessageKind::Heartbeat;
  if (Kind == "result")
    return ShardMessageKind::Result;
  return ShardMessageKind::Invalid;
}

bool decodeShardResult(const std::string &Line, ShardResult &Out,
                       std::string *Error) {
  JsonValue V;
  if (!parseJson(Line, V, Error))
    return false;
  const JsonValue *Type = V.find("type");
  if (!Type || Type->stringOr("") != "result") {
    if (Error)
      *Error = "not a result message";
    return false;
  }
  Out = ShardResult{};
  auto Int = [&](const char *Key, int64_t Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->intOr(Fallback) : Fallback;
  };
  auto Num = [&](const char *Key, double Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->numberOr(Fallback) : Fallback;
  };
  auto Flag = [&](const char *Key, bool Fallback) {
    const JsonValue *F = V.find(Key);
    return F ? F->boolOr(Fallback) : Fallback;
  };
  Out.Shard = Int("shard", -1);
  Out.Attempt = Int("attempt", 0);
  Out.Rung = Int("rung", 0);
  Out.Seconds = Num("seconds", 0.0);
  Out.PeakBytes = Int("peak_bytes", 0);
  Out.MaxRegions = Int("max_regions", 0);
  Out.MaxNodes = Int("max_nodes", 0);
  Out.Retries = Int("retries", 0);
  Out.Rollbacks = Int("rollbacks", 0);
  Out.FallbackBoxLayers = Int("fallback_box_layers", 0);
  Out.QuarantinedMass = Num("quarantined_mass", 0.0);
  Out.Degraded = Flag("degraded", false);
  Out.DeadlineHit = Flag("deadline_hit", false);
  Out.OutOfMemory = Flag("oom", false);
  if (const JsonValue *Specs = V.find("specs");
      Specs && Specs->K == JsonValue::Kind::Array) {
    Out.Specs.reserve(Specs->Items.size());
    for (const JsonValue &S : Specs->Items) {
      ShardSpecBounds B;
      // A missing bound decodes to the conservative extreme, never to a
      // tighter-than-reported interval.
      const JsonValue *Lo = S.find("lower");
      const JsonValue *Hi = S.find("upper");
      B.Lower = Lo ? Lo->numberOr(0.0) : 0.0;
      B.Upper = Hi ? Hi->numberOr(1.0) : 1.0;
      const JsonValue *Deg = S.find("degraded");
      B.Degraded = Deg ? Deg->boolOr(false) : false;
      Out.Specs.push_back(B);
    }
  }
  if (Out.Shard < 0) {
    if (Error)
      *Error = "result message missing shard index";
    return false;
  }
  return true;
}

} // namespace genprove
