//===- shard/protocol.h - Coordinator/worker wire protocol -----*- C++ -*-===//
///
/// \file
/// The pipe protocol between the shard coordinator and its worker
/// processes: newline-delimited JSON messages on the worker's stdout,
/// written with the src/obs/json JsonWriter and read back with its
/// parser. Two message types:
///
///  * heartbeat — `{"type":"heartbeat","shard":K,"seq":N,
///    "state_bytes":B,"layer":L}`, emitted periodically by a live worker
///    so the supervisor can distinguish a slow shard from a wedged one;
///    the liveness digest (charged state bytes, current layer, -1 when
///    unknown) distinguishes a hung-but-heartbeating worker from one
///    still making layer progress;
///  * result — `{"type":"result",...}`, the worker's ShardResult, emitted
///    exactly once right before a clean exit, optionally carrying a
///    `telemetry` section: the worker's final MetricsSnapshot, its trace
///    event buffer and its structured log records, which the supervisor
///    folds/splices into the coordinator's registries.
///
/// Doubles are serialized with %.17g and parsed with strtod, which
/// round-trips every finite IEEE-754 double bit-exactly — the merged
/// bounds are therefore exactly the bounds the workers computed, and the
/// directed-rounding soundness argument survives the process boundary.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SHARD_PROTOCOL_H
#define GENPROVE_SHARD_PROTOCOL_H

#include "src/obs/log.h"
#include "src/obs/snapshot.h"
#include "src/obs/trace.h"
#include "src/shard/shard.h"

#include <deque>
#include <string>
#include <vector>

namespace genprove {

/// Typed wire-level failure for the newline-JSON framing shared by the
/// shard pipe and the genprove_serve sockets. Distinct from message-level
/// problems (a well-framed line that is not valid JSON classifies as
/// ShardMessageKind::Invalid / a serve "malformed" error).
enum class WireError : uint8_t {
  None = 0,
  Oversized,  ///< a line exceeded the frame cap and was discarded
  Truncated,  ///< the stream ended mid-line (partial frame at EOF)
};

/// Stable lowercase name ("none", "oversized", "truncated").
const char *wireErrorName(WireError E);

/// Incremental newline framer with an oversized-line cap.
///
/// Feed raw bytes as they arrive from read(); pull complete frames with
/// next(). A line longer than the cap is discarded byte-for-byte (the
/// framer never buffers more than the cap) and surfaces as exactly one
/// Frame::Oversized marker in sequence order, so a hostile or corrupted
/// peer can neither exhaust memory nor silently lose its framing: the
/// reader sees a typed error where the line would have been. At EOF,
/// finish() reports a partial trailing frame as Truncated.
class LineFramer {
public:
  enum class Frame : uint8_t {
    None,      ///< no complete frame buffered; feed more bytes
    Line,      ///< a complete line (without its newline) was produced
    Oversized, ///< an over-cap line was discarded at this position
  };

  explicit LineFramer(size_t MaxLineBytes = DefaultMaxLineBytes);

  /// Absorb \p Len raw bytes from the stream.
  void feed(const char *Data, size_t Len);

  /// Pop the next frame. On Frame::Line, \p Line holds the payload; on
  /// Oversized/None it is cleared.
  Frame next(std::string &Line);

  /// Classify the stream tail after EOF: Oversized if EOF landed inside
  /// a discarded over-cap line, Truncated if a partial ordinary line
  /// remains unterminated, None for a clean boundary.
  WireError finish() const;

  /// Total over-cap lines discarded so far.
  uint64_t oversizedLines() const { return OversizedCount; }

  static constexpr size_t DefaultMaxLineBytes = 1u << 20;

private:
  struct Pending {
    bool Oversized = false;
    std::string Text;
  };

  size_t MaxLine;
  std::string Partial;       ///< bytes of the current unterminated line
  bool Dropping = false;     ///< inside an over-cap line, discarding
  uint64_t OversizedCount = 0;
  std::deque<Pending> Ready;
};

/// Message classification for one protocol line.
enum class ShardMessageKind : uint8_t { Heartbeat, Result, Invalid };

/// Decoded heartbeat. StateBytes/Layer are -1 when the worker predates
/// the digest or no propagation is underway.
struct ShardHeartbeat {
  int64_t Shard = -1;
  int64_t Seq = 0;
  int64_t StateBytes = -1;
  int64_t Layer = -1;
};

/// Worker-side telemetry attached to a result message. HasMetrics marks
/// an actually-captured snapshot (an empty snapshot is a valid capture);
/// trace/log sections are simply empty when not collected.
struct ShardTelemetry {
  bool HasMetrics = false;
  MetricsSnapshot Metrics;
  std::vector<TraceEvent> Trace;
  std::vector<LogRecord> Log;

  bool empty() const { return !HasMetrics && Trace.empty() && Log.empty(); }
};

/// One heartbeat line (no trailing newline). StateBytes/Layer form the
/// liveness digest; pass -1 for "unknown".
std::string encodeShardHeartbeat(int64_t Shard, int64_t Seq,
                                 int64_t StateBytes = -1, int64_t Layer = -1);

/// Decode a heartbeat line; false when the line is not a heartbeat.
bool decodeShardHeartbeat(const std::string &Line, ShardHeartbeat &Out);

/// One result line (no trailing newline); attaches \p Telemetry when
/// non-null and non-empty.
std::string encodeShardResult(const ShardResult &Result,
                              const ShardTelemetry *Telemetry = nullptr);

/// Classify a protocol line without fully decoding it.
ShardMessageKind classifyShardMessage(const std::string &Line);

/// Decode a result line. False (with \p Error set when non-null) on
/// malformed JSON or a message that is not a result; fields the message
/// omits keep their (conservative) defaults. When \p Telemetry is
/// non-null, any attached telemetry section is decoded into it (left
/// empty when the message carries none — a malformed telemetry section
/// is dropped rather than failing the result, so observability problems
/// never turn a sound answer into a retry).
bool decodeShardResult(const std::string &Line, ShardResult &Out,
                       std::string *Error = nullptr,
                       ShardTelemetry *Telemetry = nullptr);

} // namespace genprove

#endif // GENPROVE_SHARD_PROTOCOL_H
