//===- shard/protocol.h - Coordinator/worker wire protocol -----*- C++ -*-===//
///
/// \file
/// The pipe protocol between the shard coordinator and its worker
/// processes: newline-delimited JSON messages on the worker's stdout,
/// written with the src/obs/json JsonWriter and read back with its
/// parser. Two message types:
///
///  * heartbeat — `{"type":"heartbeat","shard":K,"seq":N}`, emitted
///    periodically by a live worker so the supervisor can distinguish a
///    slow shard from a wedged one;
///  * result — `{"type":"result",...}`, the worker's ShardResult, emitted
///    exactly once right before a clean exit.
///
/// Doubles are serialized with %.17g and parsed with strtod, which
/// round-trips every finite IEEE-754 double bit-exactly — the merged
/// bounds are therefore exactly the bounds the workers computed, and the
/// directed-rounding soundness argument survives the process boundary.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SHARD_PROTOCOL_H
#define GENPROVE_SHARD_PROTOCOL_H

#include "src/shard/shard.h"

#include <string>

namespace genprove {

/// Message classification for one protocol line.
enum class ShardMessageKind : uint8_t { Heartbeat, Result, Invalid };

/// One heartbeat line (no trailing newline).
std::string encodeShardHeartbeat(int64_t Shard, int64_t Seq);

/// One result line (no trailing newline).
std::string encodeShardResult(const ShardResult &Result);

/// Classify a protocol line without fully decoding it.
ShardMessageKind classifyShardMessage(const std::string &Line);

/// Decode a result line. False (with \p Error set when non-null) on
/// malformed JSON or a message that is not a result; fields the message
/// omits keep their (conservative) defaults.
bool decodeShardResult(const std::string &Line, ShardResult &Out,
                       std::string *Error = nullptr);

} // namespace genprove

#endif // GENPROVE_SHARD_PROTOCOL_H
