//===- shard/process_launcher.h - fork/exec worker launcher ----*- C++ -*-===//
///
/// \file
/// The production ShardWorkerLauncher: each attempt forks and re-execs
/// this binary (`/proc/self/exe`) with `--shard-worker K` plus the
/// attempt's rung/attempt flags, captures the worker's stdout through a
/// non-blocking pipe, and classifies the exit status:
///
///   exit 0/4 + a valid result line  → Ok
///   exit 3 (simulated-device OOM)   → Oom       (retryable)
///   exit 2 (usage/config error)     → Fatal     (retrying cannot help)
///   SIGKILL                         → OomKill   (the kernel OOM killer)
///   any other signal                → Crash
///   clean exit, unparseable result  → Protocol
///
/// fork-without-exec is deliberately avoided: the coordinator may hold a
/// live thread pool, and a forked child inheriting its locked state would
/// deadlock in malloc. Re-exec gives every worker a pristine process.
///
/// Live worker pids are mirrored into an async-signal-safe registry so the
/// CLI's SIGINT/SIGTERM handler can kill the whole brood before exiting.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_SHARD_PROCESS_LAUNCHER_H
#define GENPROVE_SHARD_PROCESS_LAUNCHER_H

#include "src/shard/protocol.h"
#include "src/shard/supervisor.h"

#include <map>
#include <string>
#include <vector>

#include <sys/types.h>

namespace genprove {

/// Kill every live shard worker with \p Signal. Async-signal-safe: callable
/// from the coordinator's SIGINT/SIGTERM handler.
void killAllShardChildren(int Signal);

/// Fork/exec launcher over this very binary.
class ProcessShardLauncher : public ShardWorkerLauncher {
public:
  /// \p BaseArgs is the worker argv *without* argv[0] and without the
  /// shard-attempt flags (the coordinator's own args minus the
  /// coordinator-only ones); launch() appends
  /// `--shard-worker K --shard-attempt A --shard-rung R`.
  /// \p ExePath is the binary to exec (normally /proc/self/exe).
  ProcessShardLauncher(std::string ExePath, std::vector<std::string> BaseArgs);
  ~ProcessShardLauncher() override;

  bool launch(const AttemptPlan &Plan) override;
  WorkerPoll poll(int64_t Shard) override;
  void kill(int64_t Shard) override;

private:
  struct Child {
    pid_t Pid = -1;
    int PipeFd = -1; ///< non-blocking read end of the worker's stdout
    /// Shared newline framer: partial lines carry across polls, and an
    /// over-cap line (a wedged worker spraying garbage) is discarded with
    /// a typed marker instead of growing the buffer without bound. The
    /// cap is generous — result lines carry full telemetry snapshots.
    LineFramer Framer{1u << 28};
    std::string ResultLine; ///< last complete result message seen
    bool SawHeartbeat = false;
    int64_t BeatStateBytes = -1; ///< latest heartbeat liveness digest
    int64_t BeatLayer = -1;
    uint64_t WireErrors = 0; ///< oversized/garbage lines from this worker
  };

  /// Drain available pipe bytes into the child's buffer and consume
  /// complete lines; returns true when any heartbeat arrived.
  bool drainPipe(Child &C);

  /// Reap an exited child and classify the attempt.
  WorkerPoll classifyExit(Child &C, int Status);

  std::string ExePath;
  std::vector<std::string> BaseArgs;
  std::map<int64_t, Child> Children;
};

} // namespace genprove

#endif // GENPROVE_SHARD_PROCESS_LAUNCHER_H
