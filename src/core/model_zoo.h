//===- core/model_zoo.h - Trained-model cache for the harness --*- C++ -*-===//
///
/// \file
/// Every benchmark and example needs the same trained substrate: VAEs on
/// the three datasets, attribute detectors / classifiers in three sizes,
/// the robustly-trained digit classifiers, the GAN discriminator, and the
/// FactorVAE / ACAI generators. ModelZoo trains each model once with
/// deterministic seeds and caches the weights under models/, so re-running
/// any binary is cheap and reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_MODEL_ZOO_H
#define GENPROVE_CORE_MODEL_ZOO_H

#include "src/data/dataset.h"
#include "src/train/acai.h"
#include "src/train/adversarial.h"
#include "src/train/factor_vae.h"
#include "src/train/gan.h"
#include "src/train/vae.h"

#include <map>
#include <memory>

namespace genprove {

/// Shared sizing / training knobs of the reproduction.
struct ZooConfig {
  int64_t ImgSize = 16;
  int64_t Latent = 8;
  /// MNIST* uses a larger code (the paper uses 50 for MNIST vs 64
  /// elsewhere): digit identity does not survive an 8-dim bottleneck well
  /// enough for the Table 6 classifier to recognize reconstructions.
  int64_t DigitsLatent = 16;
  int64_t TrainSize = 800;
  int64_t TestSize = 200;
  int64_t VaeEpochs = 5;
  int64_t ClassifierEpochs = 5;
  int64_t RobustEpochs = 6;    ///< standard / FGSM schemes.
  int64_t DiffAiEpochs = 40;   ///< certified training needs a long ramp.
  int64_t GenerativeEpochs = 4;
  /// L-inf radius for the Table 6 experiments. The paper uses 0.1 on
  /// 28x28 MNIST; at 16x16 each pixel covers ~3x the area and certified
  /// training gets minutes of CPU rather than hours of GPU, so the
  /// certified radius is scaled down accordingly.
  double AdvEpsilon = 0.01;
  /// Attack radius for the PGD column and FGSM training (the paper uses
  /// one radius for everything; at our scale the certified radius is
  /// necessarily smaller than a radius that meaningfully attacks).
  double AttackEpsilon = 0.05;
  /// Radius of the adversarial tube around decoded interpolations; the
  /// decoded (reconstructed) images carry smaller classifier margins
  /// than crisp test digits.
  double TubeEpsilon = 0.002;
  uint64_t Seed = 20210620;
  std::string CacheDir = "models";
  bool Verbose = false;
};

/// The three datasets of the evaluation.
enum class DatasetId : uint8_t { Faces, Shoes, Digits };

/// Lazily-trained, disk-cached model collection.
class ModelZoo {
public:
  explicit ModelZoo(ZooConfig Config = {});

  const ZooConfig &config() const { return Config; }

  /// Training split of a dataset (deterministic per seed).
  const Dataset &train(DatasetId Id);

  /// Held-out split.
  const Dataset &test(DatasetId Id);

  /// The standard VAE of a dataset (Encoder for faces, EncoderSmall for
  /// shoes/digits; Decoder for all — Appendix B).
  Vae &vae(DatasetId Id);

  /// A faces VAE whose decoder is DecoderSmall (the GenProveCurve setup).
  Vae &smallDecoderVae();

  /// CelebA-style attribute detector ("ConvSmall"/"ConvMed"/"ConvLarge").
  Sequential &facesDetector(const std::string &Arch);

  /// Zappos-style classifier of the same three sizes.
  Sequential &shoesClassifier(const std::string &Arch);

  /// ConvBiggest digit classifier under a training scheme (Table 6).
  Sequential &digitsClassifier(TrainScheme Scheme);

  /// LSGAN discriminator on faces (the Table 7 OOD detector).
  Sequential &ganDiscriminator();

  /// FactorVAE generator on faces (Table 7).
  FactorVae &facesFactorVae();

  /// ACAI generator on faces (Table 7).
  Acai &facesAcai();

private:
  std::string cachePath(const std::string &Name) const;
  bool loadPair(const std::string &Name, Sequential &First,
                Sequential &Second) const;
  void savePair(const std::string &Name, const Sequential &First,
                const Sequential &Second) const;

  ZooConfig Config;
  std::map<std::string, Dataset> Datasets;
  std::map<std::string, std::unique_ptr<Vae>> Vaes;
  std::map<std::string, std::unique_ptr<Sequential>> Networks;
  std::unique_ptr<FactorVae> FactorVaeModel;
  std::unique_ptr<Acai> AcaiModel;
};

/// Canonical dataset display names ("CelebA*", "Zappos*", "MNIST*"): the
/// synthetic substitutes keep the paper's table labels with a marker.
const char *datasetDisplayName(DatasetId Id);

} // namespace genprove

#endif // GENPROVE_CORE_MODEL_ZOO_H
