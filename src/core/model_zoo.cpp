//===- core/model_zoo.cpp -------------------------------------*- C++ -*-===//

#include "src/core/model_zoo.h"

#include "src/data/synth_digits.h"
#include "src/data/synth_faces.h"
#include "src/data/synth_shoes.h"
#include "src/nn/architectures.h"
#include "src/nn/init.h"
#include "src/nn/serialize.h"
#include "src/train/trainer.h"
#include "src/util/error.h"

#include <cstdio>
#include <filesystem>

namespace genprove {

const char *datasetDisplayName(DatasetId Id) {
  switch (Id) {
  case DatasetId::Faces:
    return "CelebA*";
  case DatasetId::Shoes:
    return "Zappos50k*";
  case DatasetId::Digits:
    return "MNIST*";
  }
  return "?";
}

namespace {

const char *datasetKey(DatasetId Id) {
  switch (Id) {
  case DatasetId::Faces:
    return "faces";
  case DatasetId::Shoes:
    return "shoes";
  case DatasetId::Digits:
    return "digits";
  }
  return "?";
}

} // namespace

ModelZoo::ModelZoo(ZooConfig InitConfig) : Config(std::move(InitConfig)) {
  std::error_code Ec;
  std::filesystem::create_directories(Config.CacheDir, Ec);
}

std::string ModelZoo::cachePath(const std::string &Name) const {
  return Config.CacheDir + "/" + Name + ".bin";
}

bool ModelZoo::loadPair(const std::string &Name, Sequential &First,
                        Sequential &Second) const {
  auto A = loadNetwork(cachePath(Name + "-a"));
  auto B = loadNetwork(cachePath(Name + "-b"));
  if (!A || !B)
    return false;
  First = std::move(*A);
  Second = std::move(*B);
  return true;
}

void ModelZoo::savePair(const std::string &Name, const Sequential &First,
                        const Sequential &Second) const {
  saveNetwork(First, cachePath(Name + "-a"));
  saveNetwork(Second, cachePath(Name + "-b"));
}

const Dataset &ModelZoo::train(DatasetId Id) {
  const std::string Key = std::string(datasetKey(Id)) + "-train";
  auto It = Datasets.find(Key);
  if (It != Datasets.end())
    return It->second;
  Dataset Set;
  switch (Id) {
  case DatasetId::Faces:
    Set = makeSynthFaces(Config.TrainSize, Config.ImgSize, Config.Seed + 1);
    break;
  case DatasetId::Shoes:
    Set = makeSynthShoes(Config.TrainSize, Config.ImgSize, Config.Seed + 2);
    break;
  case DatasetId::Digits:
    Set = makeSynthDigits(Config.TrainSize, Config.ImgSize, Config.Seed + 3);
    break;
  }
  return Datasets.emplace(Key, std::move(Set)).first->second;
}

const Dataset &ModelZoo::test(DatasetId Id) {
  const std::string Key = std::string(datasetKey(Id)) + "-test";
  auto It = Datasets.find(Key);
  if (It != Datasets.end())
    return It->second;
  Dataset Set;
  switch (Id) {
  case DatasetId::Faces:
    Set = makeSynthFaces(Config.TestSize, Config.ImgSize, Config.Seed + 11);
    break;
  case DatasetId::Shoes:
    Set = makeSynthShoes(Config.TestSize, Config.ImgSize, Config.Seed + 12);
    break;
  case DatasetId::Digits:
    Set = makeSynthDigits(Config.TestSize, Config.ImgSize, Config.Seed + 13);
    break;
  }
  return Datasets.emplace(Key, std::move(Set)).first->second;
}

Vae &ModelZoo::vae(DatasetId Id) {
  const std::string Name = std::string("vae-") + datasetKey(Id);
  auto It = Vaes.find(Name);
  if (It != Vaes.end())
    return *It->second;

  const Dataset &Set = train(Id);
  const int64_t Latent =
      Id == DatasetId::Digits ? Config.DigitsLatent : Config.Latent;
  Sequential Encoder =
      Id == DatasetId::Faces
          ? makeEncoder(Set.Channels, Set.Size, 2 * Latent)
          : makeEncoderSmall(Set.Channels, Set.Size, 2 * Latent);
  Sequential Decoder = makeDecoder(Latent, Set.Channels, Set.Size);

  if (!loadPair(Name, Encoder, Decoder)) {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 101 + static_cast<uint64_t>(Id));
    kaimingInit(Encoder, Generator);
    kaimingInit(Decoder, Generator);
    Vae Model(std::move(Encoder), std::move(Decoder), Latent);
    Vae::Config TrainConfig;
    TrainConfig.Epochs =
        Id == DatasetId::Digits ? 2 * Config.VaeEpochs : Config.VaeEpochs;
    TrainConfig.Verbose = Config.Verbose;
    Model.train(Set, TrainConfig, Generator);
    savePair(Name, Model.encoder(), Model.decoder());
    auto Ptr = std::make_unique<Vae>(std::move(Model));
    return *Vaes.emplace(Name, std::move(Ptr)).first->second;
  }
  auto Ptr =
      std::make_unique<Vae>(std::move(Encoder), std::move(Decoder), Latent);
  return *Vaes.emplace(Name, std::move(Ptr)).first->second;
}

Vae &ModelZoo::smallDecoderVae() {
  const std::string Name = "vae-faces-smalldec";
  auto It = Vaes.find(Name);
  if (It != Vaes.end())
    return *It->second;

  const Dataset &Set = train(DatasetId::Faces);
  Sequential Encoder =
      makeEncoderSmall(Set.Channels, Set.Size, 2 * Config.Latent);
  Sequential Decoder = makeDecoderSmall(Config.Latent, Set.Channels, Set.Size);

  if (!loadPair(Name, Encoder, Decoder)) {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 151);
    kaimingInit(Encoder, Generator);
    kaimingInit(Decoder, Generator);
    Vae Model(std::move(Encoder), std::move(Decoder), Config.Latent);
    Vae::Config TrainConfig;
    TrainConfig.Epochs = Config.VaeEpochs;
    TrainConfig.Verbose = Config.Verbose;
    Model.train(Set, TrainConfig, Generator);
    savePair(Name, Model.encoder(), Model.decoder());
    auto Ptr = std::make_unique<Vae>(std::move(Model));
    return *Vaes.emplace(Name, std::move(Ptr)).first->second;
  }
  auto Ptr = std::make_unique<Vae>(std::move(Encoder), std::move(Decoder),
                                   Config.Latent);
  return *Vaes.emplace(Name, std::move(Ptr)).first->second;
}

Sequential &ModelZoo::facesDetector(const std::string &Arch) {
  const std::string Name = "detector-faces-" + Arch;
  auto It = Networks.find(Name);
  if (It != Networks.end())
    return *It->second;

  const Dataset &Set = train(DatasetId::Faces);
  Sequential Net =
      makeClassifier(Arch, Set.Channels, Set.Size, Set.numAttributes());
  if (auto Loaded = loadNetwork(cachePath(Name))) {
    Net = std::move(*Loaded);
  } else {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 201 + std::hash<std::string>{}(Arch) % 1000);
    kaimingInit(Net, Generator);
    TrainConfig TC;
    TC.Epochs = Config.ClassifierEpochs;
    TC.Verbose = Config.Verbose;
    trainAttributeDetector(Net, Set, TC, Generator);
    saveNetwork(Net, cachePath(Name));
  }
  auto Ptr = std::make_unique<Sequential>(std::move(Net));
  return *Networks.emplace(Name, std::move(Ptr)).first->second;
}

Sequential &ModelZoo::shoesClassifier(const std::string &Arch) {
  const std::string Name = "classifier-shoes-" + Arch;
  auto It = Networks.find(Name);
  if (It != Networks.end())
    return *It->second;

  const Dataset &Set = train(DatasetId::Shoes);
  Sequential Net =
      makeClassifier(Arch, Set.Channels, Set.Size, Set.numClasses());
  if (auto Loaded = loadNetwork(cachePath(Name))) {
    Net = std::move(*Loaded);
  } else {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 301 + std::hash<std::string>{}(Arch) % 1000);
    kaimingInit(Net, Generator);
    TrainConfig TC;
    TC.Epochs = Config.ClassifierEpochs;
    TC.Verbose = Config.Verbose;
    trainClassifier(Net, Set, TC, Generator);
    saveNetwork(Net, cachePath(Name));
  }
  auto Ptr = std::make_unique<Sequential>(std::move(Net));
  return *Networks.emplace(Name, std::move(Ptr)).first->second;
}

Sequential &ModelZoo::digitsClassifier(TrainScheme Scheme) {
  const char *SchemeName = Scheme == TrainScheme::Standard  ? "standard"
                           : Scheme == TrainScheme::Fgsm    ? "fgsm"
                                                            : "diffai";
  const std::string Name = std::string("classifier-digits-") + SchemeName;
  auto It = Networks.find(Name);
  if (It != Networks.end())
    return *It->second;

  const Dataset &Set = train(DatasetId::Digits);
  Sequential Net = makeConvBiggest(Set.Channels, Set.Size, Set.numClasses());
  if (auto Loaded = loadNetwork(cachePath(Name))) {
    Net = std::move(*Loaded);
  } else {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 401 + static_cast<uint64_t>(Scheme));
    kaimingInit(Net, Generator);
    RobustTrainConfig RC;
    RC.Epochs = Scheme == TrainScheme::DiffAiBox ? Config.DiffAiEpochs
                                                 : Config.RobustEpochs;
    RC.BatchSize = 32;
    RC.Epsilon = Scheme == TrainScheme::Fgsm ? Config.AttackEpsilon
                                             : Config.AdvEpsilon;
    RC.LearningRate = Scheme == TrainScheme::DiffAiBox ? 3e-4 : 1e-3;
    RC.IbpGradRatio = 1.0; // deep nets collapse at larger ratios
    RC.Verbose = Config.Verbose;
    trainRobustClassifier(Net, Set, Scheme, RC, Generator);
    saveNetwork(Net, cachePath(Name));
  }
  auto Ptr = std::make_unique<Sequential>(std::move(Net));
  return *Networks.emplace(Name, std::move(Ptr)).first->second;
}

Sequential &ModelZoo::ganDiscriminator() {
  const std::string Name = "gan-discriminator-faces";
  auto It = Networks.find(Name);
  if (It != Networks.end())
    return *It->second;

  const Dataset &Set = train(DatasetId::Faces);
  Sequential Disc = makeEncoderSmall(Set.Channels, Set.Size, 1);
  if (auto Loaded = loadNetwork(cachePath(Name))) {
    Disc = std::move(*Loaded);
  } else {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 501);
    // The paper's GAN uses twice the autoencoder latent width.
    Sequential Gen = makeDecoder(2 * Config.Latent, Set.Channels, Set.Size);
    kaimingInit(Gen, Generator);
    kaimingInit(Disc, Generator);
    Gan Model(std::move(Gen), std::move(Disc), 2 * Config.Latent);
    Gan::Config GC;
    GC.Epochs = Config.GenerativeEpochs;
    GC.Verbose = Config.Verbose;
    Model.train(Set, GC, Generator);
    saveNetwork(Model.discriminator(), cachePath(Name));
    Disc = std::move(Model.discriminator());
  }
  auto Ptr = std::make_unique<Sequential>(std::move(Disc));
  return *Networks.emplace(Name, std::move(Ptr)).first->second;
}

FactorVae &ModelZoo::facesFactorVae() {
  if (FactorVaeModel)
    return *FactorVaeModel;
  const std::string Name = "factorvae-faces";
  const Dataset &Set = train(DatasetId::Faces);
  Sequential Encoder =
      makeEncoder(Set.Channels, Set.Size, 2 * Config.Latent);
  Sequential Decoder = makeDecoder(Config.Latent, Set.Channels, Set.Size);
  Sequential Critic =
      makeMlp({Config.Latent, 100, 100, 100, 100, 2}); // 5 layers deep

  if (!loadPair(Name, Encoder, Decoder)) {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 601);
    kaimingInit(Encoder, Generator);
    kaimingInit(Decoder, Generator);
    kaimingInit(Critic, Generator);
    FactorVae Model(std::move(Encoder), std::move(Decoder), std::move(Critic),
                    Config.Latent);
    FactorVae::Config FC;
    FC.Epochs = Config.GenerativeEpochs;
    FC.Verbose = Config.Verbose;
    Model.train(Set, FC, Generator);
    savePair(Name, Model.encoder(), Model.decoder());
    FactorVaeModel = std::make_unique<FactorVae>(std::move(Model));
    return *FactorVaeModel;
  }
  FactorVaeModel = std::make_unique<FactorVae>(
      std::move(Encoder), std::move(Decoder), std::move(Critic),
      Config.Latent);
  return *FactorVaeModel;
}

Acai &ModelZoo::facesAcai() {
  if (AcaiModel)
    return *AcaiModel;
  const std::string Name = "acai-faces";
  const Dataset &Set = train(DatasetId::Faces);
  Sequential Encoder = makeEncoder(Set.Channels, Set.Size, Config.Latent);
  Sequential Decoder = makeDecoder(Config.Latent, Set.Channels, Set.Size);
  // The ACAI critic shares the Encoder architecture (Appendix B).
  Sequential Critic = makeEncoder(Set.Channels, Set.Size, 1);

  if (!loadPair(Name, Encoder, Decoder)) {
    if (Config.Verbose)
      std::printf("[zoo] training %s\n", Name.c_str());
    Rng Generator(Config.Seed + 701);
    kaimingInit(Encoder, Generator);
    kaimingInit(Decoder, Generator);
    kaimingInit(Critic, Generator);
    Acai Model(std::move(Encoder), std::move(Decoder), std::move(Critic),
               Config.Latent);
    Acai::Config AC;
    AC.Epochs = Config.GenerativeEpochs;
    AC.Verbose = Config.Verbose;
    Model.train(Set, AC, Generator);
    savePair(Name, Model.encoder(), Model.decoder());
    AcaiModel = std::make_unique<Acai>(std::move(Model));
    return *AcaiModel;
  }
  AcaiModel = std::make_unique<Acai>(std::move(Encoder), std::move(Decoder),
                                     std::move(Critic), Config.Latent);
  return *AcaiModel;
}

} // namespace genprove
