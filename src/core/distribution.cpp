//===- core/distribution.cpp ----------------------------------*- C++ -*-===//

#include "src/core/distribution.h"

#include <algorithm>
#include <cmath>

namespace genprove {

double paramCdf(ParamDistribution Dist, double T) {
  T = std::clamp(T, 0.0, 1.0);
  switch (Dist) {
  case ParamDistribution::Uniform:
    return T;
  case ParamDistribution::Arcsine:
    return 2.0 / M_PI * std::asin(std::sqrt(T));
  }
  return T;
}

std::function<double(double)> makeCdf(ParamDistribution Dist) {
  return [Dist](double T) { return paramCdf(Dist, T); };
}

double sampleParam(ParamDistribution Dist, Rng &Generator) {
  switch (Dist) {
  case ParamDistribution::Uniform:
    return Generator.uniform();
  case ParamDistribution::Arcsine:
    return Generator.arcsine();
  }
  return Generator.uniform();
}

const char *paramDistributionName(ParamDistribution Dist) {
  return Dist == ParamDistribution::Uniform ? "uniform" : "arcsine";
}

} // namespace genprove
