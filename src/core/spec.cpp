//===- core/spec.cpp ------------------------------------------*- C++ -*-===//

#include "src/core/spec.h"

#include "src/util/error.h"

#include <algorithm>
#include <cmath>

namespace genprove {

OutputSpec OutputSpec::argmaxWins(int64_t Target, int64_t NumClasses) {
  OutputSpec Spec;
  for (int64_t J = 0; J < NumClasses; ++J) {
    if (J == Target)
      continue;
    Tensor Normal({1, NumClasses});
    Normal[Target] = 1.0;
    Normal[J] = -1.0;
    Spec.addHalfspace(std::move(Normal), 0.0);
  }
  return Spec;
}

OutputSpec OutputSpec::attributeSign(int64_t Attr, bool Positive,
                                     int64_t NumOutputs) {
  Tensor Normal({1, NumOutputs});
  Normal[Attr] = Positive ? 1.0 : -1.0;
  return halfspace(std::move(Normal), 0.0);
}

OutputSpec OutputSpec::halfspace(Tensor Normal, double Offset) {
  OutputSpec Spec;
  Spec.addHalfspace(std::move(Normal), Offset);
  return Spec;
}

void OutputSpec::addHalfspace(Tensor Normal, double Offset) {
  check(Constraints.empty() ||
            Constraints.front().Normal.numel() == Normal.numel(),
        "halfspace dimension mismatch");
  Constraints.push_back({Normal.reshaped({1, Normal.numel()}), Offset});
}

bool OutputSpec::satisfied(const Tensor &Y) const {
  for (const auto &H : Constraints) {
    double Value = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J)
      Value += H.Normal[J] * Y[J];
    if (Value <= 0.0)
      return false;
  }
  return true;
}

bool OutputSpec::boxContained(const Tensor &Center,
                              const Tensor &Radius) const {
  for (const auto &H : Constraints) {
    double Min = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J)
      Min += H.Normal[J] * Center[J] - std::fabs(H.Normal[J]) * Radius[J];
    if (Min <= 0.0)
      return false;
  }
  return true;
}

bool OutputSpec::boxIntersects(const Tensor &Center,
                               const Tensor &Radius) const {
  for (const auto &H : Constraints) {
    double Max = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J)
      Max += H.Normal[J] * Center[J] + std::fabs(H.Normal[J]) * Radius[J];
    if (Max <= 0.0)
      return false;
  }
  return true;
}

double curveMassInside(const Region &Curve, const OutputSpec &Spec,
                       const std::function<double(double)> &Cdf) {
  check(Curve.Kind == RegionKind::Curve, "curveMassInside on a box");
  auto Eval = [&](double T) { return Cdf ? Cdf(T) : T; };
  const double TotalMass = Eval(Curve.T1) - Eval(Curve.T0);
  if (TotalMass <= 0.0)
    return 0.0;

  // Split at every constraint boundary; between cuts, satisfaction of each
  // halfspace is constant (degree <= 2 polynomials change sign only at
  // their roots).
  std::vector<double> Cuts{Curve.T0, Curve.T1};
  for (const auto &H : Spec.halfspaces())
    curveFunctionalRoots(Curve, H.Normal, H.Offset, Cuts);
  std::sort(Cuts.begin(), Cuts.end());

  double Inside = 0.0;
  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    const double T0 = Cuts[I], T1 = Cuts[I + 1];
    if (T1 <= T0)
      continue;
    const Tensor Mid = evalCurve(Curve, 0.5 * (T0 + T1));
    if (Spec.satisfied(Mid))
      Inside += Eval(T1) - Eval(T0);
  }
  return Curve.Weight * Inside / TotalMass;
}

ProbBounds computeProbBounds(const std::vector<Region> &Regions,
                             const OutputSpec &Spec,
                             const std::function<double(double)> &Cdf) {
  ProbBounds Bounds;
  Bounds.Lower = 0.0;
  Bounds.Upper = 0.0;
  for (const auto &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      const double E = curveMassInside(R, Spec, Cdf);
      Bounds.Lower += E;
      Bounds.Upper += E;
    } else {
      if (Spec.boxContained(R.Center, R.Radius))
        Bounds.Lower += R.Weight;
      if (Spec.boxIntersects(R.Center, R.Radius))
        Bounds.Upper += R.Weight;
    }
  }
  Bounds.Lower = std::clamp(Bounds.Lower, 0.0, 1.0);
  Bounds.Upper = std::clamp(Bounds.Upper, 0.0, 1.0);
  return Bounds;
}

} // namespace genprove
