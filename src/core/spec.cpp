//===- core/spec.cpp ------------------------------------------*- C++ -*-===//

#include "src/core/spec.h"

#include "src/util/error.h"
#include "src/util/fp.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace genprove {

OutputSpec OutputSpec::argmaxWins(int64_t Target, int64_t NumClasses) {
  OutputSpec Spec;
  for (int64_t J = 0; J < NumClasses; ++J) {
    if (J == Target)
      continue;
    Tensor Normal({1, NumClasses});
    Normal[Target] = 1.0;
    Normal[J] = -1.0;
    Spec.addHalfspace(std::move(Normal), 0.0);
  }
  return Spec;
}

OutputSpec OutputSpec::attributeSign(int64_t Attr, bool Positive,
                                     int64_t NumOutputs) {
  Tensor Normal({1, NumOutputs});
  Normal[Attr] = Positive ? 1.0 : -1.0;
  return halfspace(std::move(Normal), 0.0);
}

OutputSpec OutputSpec::halfspace(Tensor Normal, double Offset) {
  OutputSpec Spec;
  Spec.addHalfspace(std::move(Normal), Offset);
  return Spec;
}

void OutputSpec::addHalfspace(Tensor Normal, double Offset) {
  check(Constraints.empty() ||
            Constraints.front().Normal.numel() == Normal.numel(),
        "halfspace dimension mismatch");
  Constraints.push_back({Normal.reshaped({1, Normal.numel()}), Offset});
}

bool OutputSpec::satisfied(const Tensor &Y) const {
  for (const auto &H : Constraints) {
    double Value = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J)
      Value += H.Normal[J] * Y[J];
    if (Value <= 0.0)
      return false;
  }
  return true;
}

bool OutputSpec::boxContained(const Tensor &Center,
                              const Tensor &Radius) const {
  const bool Sound = soundRoundingEnabled();
  for (const auto &H : Constraints) {
    double Min = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J) {
      if (Sound)
        Min = fp::addDown(
            Min, fp::subDown(fp::mulDown(H.Normal[J], Center[J]),
                             fp::mulUp(std::fabs(H.Normal[J]), Radius[J])));
      else
        Min += H.Normal[J] * Center[J] - std::fabs(H.Normal[J]) * Radius[J];
    }
    if (Min <= 0.0)
      return false;
  }
  return true;
}

bool OutputSpec::boxIntersects(const Tensor &Center,
                               const Tensor &Radius) const {
  const bool Sound = soundRoundingEnabled();
  for (const auto &H : Constraints) {
    double Max = H.Offset;
    for (int64_t J = 0; J < H.Normal.numel(); ++J) {
      if (Sound)
        Max = fp::addUp(
            Max, fp::addUp(fp::mulUp(H.Normal[J], Center[J]),
                           fp::mulUp(std::fabs(H.Normal[J]), Radius[J])));
      else
        Max += H.Normal[J] * Center[J] + std::fabs(H.Normal[J]) * Radius[J];
    }
    if (Max <= 0.0)
      return false;
  }
  return true;
}

namespace {

/// Directed enclosure [Lo, Hi] of H(t) = Offset + N . gamma(t) at one
/// parameter value, covering the round-to-nearest evaluation error of the
/// degree <= 2 curve components and the dot product.
void halfspaceEnclosure(const Region &Curve, const OutputSpec::Halfspace &H,
                        double T, double &Lo, double &Hi) {
  const double M =
      std::max({1.0, std::fabs(Curve.T0), std::fabs(Curve.T1)});
  double Value = H.Offset;
  double Mag = std::fabs(H.Offset);
  for (int64_t J = 0; J < H.Normal.numel(); ++J) {
    if (H.Normal[J] == 0.0)
      continue;
    Value += H.Normal[J] * evalCurveComponent(Curve, T, J);
    double CompMag = 0.0;
    double Mp = 1.0;
    for (int64_t D = 0; D <= Curve.degree(); ++D) {
      CompMag =
          fp::addUp(CompMag, fp::mulUp(std::fabs(Curve.Coeffs.at(D, J)), Mp));
      Mp = fp::mulUp(Mp, M);
    }
    Mag = fp::addUp(Mag, fp::mulUp(std::fabs(H.Normal[J]), CompMag));
  }
  const double E = fp::mulUp(
      fp::accumulationBound(4 * (H.Normal.numel() + Curve.degree() + 1)),
      Mag);
  Lo = fp::subDown(Value, E);
  Hi = fp::addUp(Value, E);
}

/// All halfspaces provably strictly positive at T.
bool provablyInside(const Region &Curve, const OutputSpec &Spec, double T) {
  for (const auto &H : Spec.halfspaces()) {
    double Lo, Hi;
    halfspaceEnclosure(Curve, H, T, Lo, Hi);
    if (Lo <= 0.0)
      return false;
  }
  return true;
}

/// Some halfspace provably non-positive at T.
bool provablyOutside(const Region &Curve, const OutputSpec &Spec, double T) {
  for (const auto &H : Spec.halfspaces()) {
    double Lo, Hi;
    halfspaceEnclosure(Curve, H, T, Lo, Hi);
    if (Hi <= 0.0)
      return true;
  }
  return false;
}

} // namespace

void curveMassInsideBounds(const Region &Curve, const OutputSpec &Spec,
                           const std::function<double(double)> &Cdf,
                           double &MassLo, double &MassHi) {
  check(Curve.Kind == RegionKind::Curve, "curveMassInsideBounds on a box");
  // Absolute padding on every CDF evaluation (asin/sqrt based CDFs are
  // accurate to a few ULPs but not directed); the uniform CDF is the
  // identity and needs none.
  const double CdfPad = Cdf ? 4.0 * DBL_EPSILON : 0.0;
  auto Eval = [&](double T) { return Cdf ? Cdf(T) : T; };
  auto EvalLo = [&](double T) { return fp::subDown(Eval(T), CdfPad); };
  auto EvalHi = [&](double T) { return fp::addUp(Eval(T), CdfPad); };

  MassLo = 0.0;
  MassHi = 0.0;
  const double TotalLo =
      std::max(0.0, fp::subDown(EvalLo(Curve.T1), EvalHi(Curve.T0)));
  const double TotalHi =
      std::max(0.0, fp::subUp(EvalHi(Curve.T1), EvalLo(Curve.T0)));
  if (TotalHi <= 0.0)
    return;

  std::vector<double> Cuts{Curve.T0, Curve.T1};
  for (const auto &H : Spec.halfspaces())
    curveFunctionalRoots(Curve, H.Normal, H.Offset, Cuts);
  std::sort(Cuts.begin(), Cuts.end());

  // Shrink each piece by Delta before classifying: the computed cuts sit
  // within a few ULPs of the exact sign-change points, so the shrunk piece
  // lies strictly inside the exact sign-constant span whose membership we
  // certify pointwise below.
  const double Delta = fp::mulUp(
      32.0 * DBL_EPSILON,
      std::max({1.0, std::fabs(Curve.T0), std::fabs(Curve.T1)}));

  double InsideLo = 0.0;
  double OutsideLo = 0.0;
  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    const double S0 = fp::addUp(Cuts[I], Delta);
    const double S1 = fp::subDown(Cuts[I + 1], Delta);
    if (S1 <= S0)
      continue;
    const double Mid = 0.5 * (S0 + S1);
    const double PieceLo =
        std::max(0.0, fp::subDown(EvalLo(S1), EvalHi(S0)));
    if (provablyInside(Curve, Spec, S0) &&
        provablyInside(Curve, Spec, Mid) &&
        provablyInside(Curve, Spec, S1))
      InsideLo = fp::addDown(InsideLo, PieceLo);
    else if (provablyOutside(Curve, Spec, S0) &&
             provablyOutside(Curve, Spec, Mid) &&
             provablyOutside(Curve, Spec, S1))
      OutsideLo = fp::addDown(OutsideLo, PieceLo);
  }
  const double InsideHi = std::max(0.0, fp::subUp(TotalHi, OutsideLo));

  const double RatioLo =
      std::clamp(fp::divDown(InsideLo, TotalHi), 0.0, 1.0);
  const double RatioHi =
      TotalLo > 0.0 ? std::clamp(fp::divUp(InsideHi, TotalLo), 0.0, 1.0)
                    : 1.0;
  MassLo = fp::mulDown(Curve.Weight, RatioLo);
  MassHi = fp::mulUp(Curve.Weight, RatioHi);
}

double curveMassInside(const Region &Curve, const OutputSpec &Spec,
                       const std::function<double(double)> &Cdf) {
  check(Curve.Kind == RegionKind::Curve, "curveMassInside on a box");
  auto Eval = [&](double T) { return Cdf ? Cdf(T) : T; };
  const double TotalMass = Eval(Curve.T1) - Eval(Curve.T0);
  if (TotalMass <= 0.0)
    return 0.0;

  // Split at every constraint boundary; between cuts, satisfaction of each
  // halfspace is constant (degree <= 2 polynomials change sign only at
  // their roots).
  std::vector<double> Cuts{Curve.T0, Curve.T1};
  for (const auto &H : Spec.halfspaces())
    curveFunctionalRoots(Curve, H.Normal, H.Offset, Cuts);
  std::sort(Cuts.begin(), Cuts.end());

  double Inside = 0.0;
  for (size_t I = 0; I + 1 < Cuts.size(); ++I) {
    const double T0 = Cuts[I], T1 = Cuts[I + 1];
    if (T1 <= T0)
      continue;
    const Tensor Mid = evalCurve(Curve, 0.5 * (T0 + T1));
    if (Spec.satisfied(Mid))
      Inside += Eval(T1) - Eval(T0);
  }
  return Curve.Weight * Inside / TotalMass;
}

ProbBounds computeProbBounds(const std::vector<Region> &Regions,
                             const OutputSpec &Spec,
                             const std::function<double(double)> &Cdf) {
  ProbBounds Bounds;
  Bounds.Lower = 0.0;
  Bounds.Upper = 0.0;
  if (soundRoundingEnabled()) {
    // Directed per-region terms, aggregated with compensated directed
    // summation so the accumulation itself cannot flip an inequality.
    std::vector<double> LoTerms, HiTerms;
    LoTerms.reserve(Regions.size());
    HiTerms.reserve(Regions.size());
    for (const auto &R : Regions) {
      if (R.Kind == RegionKind::Curve) {
        double MassLo, MassHi;
        curveMassInsideBounds(R, Spec, Cdf, MassLo, MassHi);
        LoTerms.push_back(MassLo);
        HiTerms.push_back(MassHi);
      } else {
        if (Spec.boxContained(R.Center, R.Radius))
          LoTerms.push_back(R.Weight);
        if (Spec.boxIntersects(R.Center, R.Radius))
          HiTerms.push_back(R.Weight);
      }
    }
    Bounds.Lower = std::clamp(fp::sumDown(LoTerms), 0.0, 1.0);
    Bounds.Upper = std::clamp(fp::sumUp(HiTerms), 0.0, 1.0);
    return Bounds;
  }
  for (const auto &R : Regions) {
    if (R.Kind == RegionKind::Curve) {
      const double E = curveMassInside(R, Spec, Cdf);
      Bounds.Lower += E;
      Bounds.Upper += E;
    } else {
      if (Spec.boxContained(R.Center, R.Radius))
        Bounds.Lower += R.Weight;
      if (Spec.boxIntersects(R.Center, R.Radius))
        Bounds.Upper += R.Weight;
    }
  }
  Bounds.Lower = std::clamp(Bounds.Lower, 0.0, 1.0);
  Bounds.Upper = std::clamp(Bounds.Upper, 0.0, 1.0);
  return Bounds;
}

namespace {

/// strtoll/strtod with full-token validation; false on anything but a
/// complete numeric token.
bool parseInt(const std::string &Text, int64_t &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  const long long V = std::strtoll(Text.c_str(), &End, 10);
  if (End != Text.c_str() + Text.size() || errno == ERANGE)
    return false;
  Out = V;
  return true;
}

bool parseReal(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  const double V = std::strtod(Text.c_str(), &End);
  if (End != Text.c_str() + Text.size() || !std::isfinite(V))
    return false;
  Out = V;
  return true;
}

bool specError(std::string *Err, const char *Message) {
  if (Err)
    *Err = Message;
  return false;
}

} // namespace

bool parseOutputSpecText(const std::string &Text, OutputSpec &Out,
                         std::string *Err) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    const size_t Colon = Text.find(':', Pos);
    if (Colon == std::string::npos) {
      Parts.push_back(Text.substr(Pos));
      break;
    }
    Parts.push_back(Text.substr(Pos, Colon - Pos));
    Pos = Colon + 1;
  }
  const std::string &Kind = Parts[0];
  if (Kind == "argmax") {
    int64_t Target = 0, Classes = 0;
    if (Parts.size() != 3 || !parseInt(Parts[1], Target) ||
        !parseInt(Parts[2], Classes))
      return specError(Err, "argmax spec wants argmax:T:N");
    if (Classes < 2 || Target < 0 || Target >= Classes)
      return specError(Err, "argmax spec target out of range");
    Out = OutputSpec::argmaxWins(Target, Classes);
    return true;
  }
  if (Kind == "sign") {
    int64_t Attr = 0, Outputs = 0;
    if (Parts.size() != 4 || !parseInt(Parts[1], Attr) ||
        (Parts[2] != "+" && Parts[2] != "-") || !parseInt(Parts[3], Outputs))
      return specError(Err, "sign spec wants sign:I:+|-:N");
    if (Outputs < 1 || Attr < 0 || Attr >= Outputs)
      return specError(Err, "sign spec attribute out of range");
    Out = OutputSpec::attributeSign(Attr, Parts[2] == "+", Outputs);
    return true;
  }
  if (Kind == "halfspace") {
    double Offset = 0.0;
    if (Parts.size() != 3 || !parseReal(Parts[1], Offset))
      return specError(Err, "halfspace spec wants halfspace:C:g0,g1,...");
    std::vector<double> G;
    size_t P = 0;
    const std::string &Coeffs = Parts[2];
    while (true) {
      const size_t Comma = Coeffs.find(',', P);
      const std::string Token = Comma == std::string::npos
                                    ? Coeffs.substr(P)
                                    : Coeffs.substr(P, Comma - P);
      double V = 0.0;
      if (!parseReal(Token, V))
        return specError(Err, "halfspace spec has a non-numeric coefficient");
      G.push_back(V);
      if (Comma == std::string::npos)
        break;
      P = Comma + 1;
    }
    Tensor Normal({1, static_cast<int64_t>(G.size())}, std::move(G));
    Out = OutputSpec::halfspace(std::move(Normal), Offset);
    return true;
  }
  return specError(Err, "unknown spec kind (use argmax / sign / halfspace)");
}

} // namespace genprove
