//===- core/adversarial_spec.h - L-inf tubes around generations -*- C++ -*-===//
///
/// \file
/// The higher-dimensional specification of Section 5.3 / Table 6:
/// adversarial consistency
///
///   Pr_{e ~ U(e1e2)} [ forall a in B_inf_eps(n_D(e)):
///                      argmax_i n_A(a)_i = t ].
///
/// Following the paper: the segment is propagated through the decoder with
/// GenProve, every resulting piece is boxed, each box is enlarged by eps in
/// every dimension, and the boxes are propagated through the classifier
/// with interval arithmetic. A box whose output certainly satisfies the
/// spec certifies its latent mass (lower bound); a box that certainly
/// violates some constraint everywhere removes its mass from the upper
/// bound.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_ADVERSARIAL_SPEC_H
#define GENPROVE_CORE_ADVERSARIAL_SPEC_H

#include "src/core/genprove.h"

namespace genprove {

/// Bounds on the adversarial consistency of a decoder/classifier pipeline.
AnalysisResult analyzeAdversarialTube(
    const GenProve &Analyzer, const std::vector<const Layer *> &DecoderLayers,
    const std::vector<const Layer *> &ClassifierLayers,
    const Shape &LatentShape, const Shape &ImageShape, const Tensor &Start,
    const Tensor &End, double Epsilon, const OutputSpec &Spec);

} // namespace genprove

#endif // GENPROVE_CORE_ADVERSARIAL_SPEC_H
