//===- core/genprove.h - The GenProve verifier -----------------*- C++ -*-===//
///
/// \file
/// GenProve: sound deterministic and probabilistic certification of
/// neural-network properties under generative-model transformations
/// (Mirman et al., PLDI 2021).
///
/// The analyzer propagates a latent line segment (or quadratic curve)
/// through a layer pipeline — typically decoder followed by classifier —
/// using the union / convex-combination domain of weighted curve pieces
/// and boxes, then evaluates probabilistic bounds against an OutputSpec.
///
/// Config maps onto the paper's notation: GenProve^p_k with relaxation
/// percentage p (0 = exact, reproducing Sotoudeh & Thakur's BASELINE when
/// combined with deterministic mode) and clustering parameter k. On
/// simulated-device OOM, the Appendix C refinement schedules retry with
/// p <- min(1.5p, 1) (A) or p <- min(3p, 1) (B) and k <- max(0.95k, 5).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_GENPROVE_H
#define GENPROVE_CORE_GENPROVE_H

#include "src/core/distribution.h"
#include "src/core/spec.h"
#include "src/domains/propagate.h"

#include <utility>

namespace genprove {

/// Deterministic analyses collapse bounds to {[0,0],[1,1],[0,1]}.
enum class AnalysisMode : uint8_t { Deterministic, Probabilistic };

/// Appendix C refinement schedules.
enum class RefinementSchedule : uint8_t { None, A, B };

/// Analyzer configuration (GenProve^p_k).
struct GenProveConfig {
  AnalysisMode Mode = AnalysisMode::Probabilistic;
  double RelaxPercent = 0.0; ///< p; 0 disables relaxation (exact analysis).
  double ClusterK = 100.0;   ///< k; per-step endpoint budget is t/k.
  int64_t NodeThreshold = 1000;
  ParamDistribution Distribution = ParamDistribution::Uniform;
  size_t MemoryBudgetBytes = 0; ///< simulated device budget; 0 = unlimited.
  RefinementSchedule Schedule = RefinementSchedule::None;
  int64_t MaxRetries = 10;
  /// Section 5.2's memory/runtime tradeoff: partition the input parameter
  /// range into this many pieces that are verified sequentially and
  /// merged. Each piece gets the full memory budget to itself.
  int64_t InputSplits = 1;
  /// Checkpointed degradation, deadlines and the interval fallback; when
  /// Resilience.Enabled every propagation terminates with a sound
  /// (possibly widened) state instead of OOM + empty regions, and the
  /// Appendix C schedule above becomes a dead letter (coarsening happens
  /// locally at the failing layer, not by restarting from layer 0).
  ResilienceConfig Resilience;
  /// Consult the process-wide PropagationCache (domains/prop_cache.h) for
  /// mid-network warm starts. A no-op until the cache is given a byte
  /// budget via PropagationCache::global().configure(), and never active
  /// on resilient or fault-injected runs; warm-started bounds are
  /// bit-identical to cold ones.
  bool UseCache = true;
  /// Stream each affine->ReLU layer pair through one fused cache-resident
  /// kernel instead of round-tripping the abstract state through memory
  /// between the layers. Results are bit-identical to the unfused path at
  /// any thread count in both rounding modes (the fused kernels keep the
  /// exact per-element ascending-k accumulation order); fused and unfused
  /// runs use distinct propagation-cache salts so mid-chain states are
  /// never shared across the flag.
  bool FuseRelu = false;
  /// Two-tier precision fast path for analyzeSegment: a float32 screening
  /// propagation classifies each parameter-range piece as clearly-inside /
  /// clearly-outside / borderline using a sound error-margin cushion
  /// (fp::accumulationBound's float analogue); only borderline pieces
  /// re-run under the double-precision directed-rounding tier, so every
  /// reported bound comes from the sound tier.
  bool FastScreen = false;
  /// Pieces the screen splits the parameter range into.
  int64_t ScreenSplits = 32;
};

/// The final abstract state plus telemetry; bounds for any number of
/// OutputSpecs can be computed from one propagation.
struct PropagatedState {
  std::vector<Region> Regions;
  PropagateStats Stats;
  size_t PeakBytes = 0;
  double Seconds = 0.0;
  bool OutOfMemory = false;
  int64_t Retries = 0;
  double UsedRelaxPercent = 0.0;
  double UsedClusterK = 0.0;
  ParamCdf Cdf;

  /// Sound-but-widened marker (any resilience rung, deadline or
  /// quarantine); projection of Stats.Degraded kept stable across merges.
  bool Degraded = false;
};

/// A single-spec analysis outcome. Layers is the per-layer telemetry
/// timeline of the final propagation attempt (see LayerRecord).
struct AnalysisResult {
  ProbBounds Bounds;
  size_t PeakBytes = 0;
  double Seconds = 0.0;
  bool OutOfMemory = false;
  int64_t MaxRegions = 0;
  int64_t MaxNodes = 0;
  int64_t Retries = 0;
  double UsedRelaxPercent = 0.0;
  double UsedClusterK = 0.0;
  // Resilience telemetry (see PropagateStats).
  bool Degraded = false;
  DegradeRung Rung = DegradeRung::None;
  int64_t Rollbacks = 0;
  int64_t FallbackBoxLayers = 0;
  bool DeadlineHit = false;
  double QuarantinedMass = 0.0;
  std::vector<LayerRecord> Layers;
  // Two-tier screening telemetry (analyzeSegmentScreened); Screened is
  // false on the full-tier path.
  bool Screened = false;
  int64_t ScreenedInside = 0;     ///< pieces decided inside by the screen
  int64_t ScreenedOutside = 0;    ///< pieces decided outside by the screen
  int64_t ScreenedBorderline = 0; ///< pieces escalated to the sound tier
};

/// The verifier.
class GenProve {
public:
  explicit GenProve(GenProveConfig Config) : Config(Config) {}

  const GenProveConfig &config() const { return Config; }

  /// Propagate the line segment between flat latent points Start and End
  /// ([1, Latent]) through \p Layers (input shape \p InputShape, batch 1).
  PropagatedState propagateSegment(const std::vector<const Layer *> &Layers,
                                   const Shape &InputShape,
                                   const Tensor &Start,
                                   const Tensor &End) const;

  /// Propagate many latent segments through the same pipeline as ONE
  /// batched abstract state: each query's initial region is tagged with
  /// its index, affine layers see all queries' rows stacked into single
  /// production-sized GEMM calls, and the final state is split back per
  /// query. Because the affine kernels are row-independent (fixed
  /// ascending-k accumulation per output element, fp-contract off), ReLU
  /// splitting is per-region, and relaxation groups by query, the
  /// returned regions — and therefore any bounds computed from them —
  /// are bit-identical to propagateSegment() run per query, at any
  /// thread count, in both rounding modes.
  ///
  /// Falls back to sequential per-query propagation whenever batching
  /// could couple queries: input splitting, resilience, or a refinement
  /// schedule is configured, or the joint state blows the device budget
  /// (each query then gets the budget to itself, like a sequential run).
  /// Per-query telemetry (Seconds, PeakBytes, Stats) on the batched path
  /// describes the shared batched run, not a per-query share.
  std::vector<PropagatedState>
  propagateSegmentsBatch(const std::vector<const Layer *> &Layers,
                         const Shape &InputShape,
                         const std::vector<std::pair<Tensor, Tensor>>
                             &Segments) const;

  /// Propagate a polygonal chain through the given waypoints (the input
  /// shape of Figure 2): waypoint i sits at parameter i/(n-1), and each
  /// leg is a segment region weighted by the input CDF. Useful for
  /// multi-waypoint latent edits (e.g. add a hat, then smile).
  PropagatedState propagateChain(const std::vector<const Layer *> &Layers,
                                 const Shape &InputShape,
                                 const std::vector<Tensor> &Waypoints) const;

  /// Propagate the quadratic curve gamma(t) = A0 + A1 t + A2 t^2
  /// (GenProveCurve, Section 4.2).
  PropagatedState propagateQuadratic(const std::vector<const Layer *> &Layers,
                                     const Shape &InputShape, const Tensor &A0,
                                     const Tensor &A1, const Tensor &A2) const;

  /// Propagate arbitrary initial regions (used by the toy examples and by
  /// the adversarial-tube specification).
  PropagatedState propagateRegionsFrom(
      const std::vector<const Layer *> &Layers, const Shape &InputShape,
      std::vector<Region> Initial) const;

  /// Bounds of a propagated state against one specification; respects the
  /// configured analysis mode (deterministic collapse or probabilistic).
  ProbBounds boundsFor(const PropagatedState &State,
                       const OutputSpec &Spec) const;

  /// One-shot convenience: propagate a segment and bound one spec. When
  /// Config.FastScreen is set this routes through the two-tier screened
  /// path below (over the full range [0, 1]).
  AnalysisResult analyzeSegment(const std::vector<const Layer *> &Layers,
                                const Shape &InputShape, const Tensor &Start,
                                const Tensor &End,
                                const OutputSpec &Spec) const;

  /// Two-tier candidate-then-certify analysis of the parameter sub-range
  /// [T0, T1] of the segment Start->End: split it into Config.ScreenSplits
  /// pieces, classify each with a float32 screening propagation carrying
  /// a sound error cushion, take the inside pieces' probability mass from
  /// the input CDF directly, and re-run only the borderline pieces under
  /// the sound double tier. The reported bounds therefore come exclusively
  /// from sound arithmetic: the CDF mass of pieces the screen *proved*
  /// inside (the float interval enclosure plus cushion encloses the true
  /// double enclosure) and the sound bounds of the borderline set. Pieces
  /// the screen cannot handle (unsupported layer kinds) are classified
  /// borderline, collapsing to the full sound path.
  AnalysisResult
  analyzeSegmentScreened(const std::vector<const Layer *> &Layers,
                         const Shape &InputShape, const Tensor &Start,
                         const Tensor &End, const OutputSpec &Spec,
                         double T0, double T1) const;

  /// One-shot convenience for quadratic curves.
  AnalysisResult analyzeQuadratic(const std::vector<const Layer *> &Layers,
                                  const Shape &InputShape, const Tensor &A0,
                                  const Tensor &A1, const Tensor &A2,
                                  const OutputSpec &Spec) const;

private:
  PropagatedState
  propagateWithSchedule(const std::vector<const Layer *> &Layers,
                        const Shape &InputShape,
                        const std::vector<Region> &Initial) const;

  /// Engine configuration of one propagation attempt at relaxation
  /// parameters (p, k); shared by the scheduled and the batched paths so
  /// the propagation-cache salt can never drift between them.
  PropagateConfig basePropConfig(double P, double K) const;

  GenProveConfig Config;
};

/// Concrete forward pass through a layer view (affine layers via
/// applyAffine, ReLU elementwise); used by the sampling baseline and the
/// consistency ground-truth checks.
Tensor forwardConcretePoints(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &Points);

} // namespace genprove

#endif // GENPROVE_CORE_GENPROVE_H
