//===- core/genprove.cpp --------------------------------------*- C++ -*-===//

#include "src/core/genprove.h"

#include "src/domains/prop_cache.h"
#include "src/domains/screen.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"
#include "src/util/fp.h"
#include "src/util/hash.h"
#include "src/util/timer.h"

#include <algorithm>

namespace genprove {

PropagateConfig GenProve::basePropConfig(double P, double K) const {
  PropagateConfig PropConfig;
  PropConfig.Relax.RelaxPercent = P;
  PropConfig.Relax.ClusterK = K;
  PropConfig.Relax.NodeThreshold = Config.NodeThreshold;
  PropConfig.EnableRelax = P > 0.0;
  PropConfig.Cdf = makeCdf(Config.Distribution);
  PropConfig.Resilience = Config.Resilience;
  PropConfig.FuseRelu = Config.FuseRelu;
  if (Config.UseCache) {
    PropConfig.Cache = &PropagationCache::global();
    // Caller tag: the abstract-domain identity plus the distribution
    // behind the (unhashable) Cdf closure.
    uint64_t Tag = hashing::hashString(hashing::FnvOffset, "genprove.union");
    Tag = hashing::hashU64(Tag, static_cast<uint64_t>(Config.Distribution));
    PropConfig.CacheSalt = cacheSaltForConfig(PropConfig, Tag);
  }
  return PropConfig;
}

PropagatedState GenProve::propagateWithSchedule(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<Region> &Initial) const {
  GENPROVE_SPAN("propagate_with_schedule");
  static Counter &RetriesCtr =
      MetricsRegistry::global().counter("refine.retries");
  Timer Clock;
  double P = Config.RelaxPercent;
  double K = Config.ClusterK;

  PropagatedState State;
  for (int64_t Attempt = 0;; ++Attempt) {
    GENPROVE_SPAN("attempt");
    DeviceMemoryModel Memory(Config.MemoryBudgetBytes);
    const PropagateConfig PropConfig = basePropConfig(P, K);

    PropagateStats Stats;
    std::vector<Region> Final = propagateRegions(
        Layers, InputShape, Initial, PropConfig, Memory, Stats);

    State.Stats = Stats;
    State.PeakBytes = std::max(State.PeakBytes, Memory.peakBytes());
    State.OutOfMemory = Stats.OutOfMemory;
    State.Degraded = Stats.Degraded;
    State.Retries = Attempt;
    State.UsedRelaxPercent = P;
    State.UsedClusterK = K;
    State.Cdf = PropConfig.Cdf;
    if (!Stats.OutOfMemory) {
      State.Regions = std::move(Final);
      break;
    }
    if (Config.Schedule == RefinementSchedule::None ||
        Attempt >= Config.MaxRetries)
      break;
    // Appendix C: try a less precise approximation.
    const double Factor = Config.Schedule == RefinementSchedule::A ? 1.5 : 3.0;
    P = P <= 0.0 ? 0.005 : std::min(Factor * P, 1.0);
    K = std::max(0.95 * K, 5.0);
  }
  RetriesCtr.add(State.Retries);
  State.Seconds = Clock.seconds();
  return State;
}

PropagatedState
GenProve::propagateSegment(const std::vector<const Layer *> &Layers,
                           const Shape &InputShape, const Tensor &Start,
                           const Tensor &End) const {
  const Tensor A = Start.reshaped({1, Start.numel()});
  const Tensor B = End.reshaped({1, End.numel()});
  const int64_t Splits = std::max<int64_t>(Config.InputSplits, 1);
  if (Splits == 1) {
    std::vector<Region> Initial;
    Initial.push_back(makeSegmentRegion(A, B));
    return propagateWithSchedule(Layers, InputShape, Initial);
  }

  // Section 5.2: verify parameter sub-ranges sequentially and merge. The
  // peak memory of the merged analysis is the max over the parts (each
  // part releases its working set before the next starts); the runtime is
  // the sum.
  PropagatedState Merged;
  const ParamCdf Cdf = makeCdf(Config.Distribution);
  Merged.Cdf = Cdf;
  for (int64_t I = 0; I < Splits; ++I) {
    const double T0 = static_cast<double>(I) / static_cast<double>(Splits);
    const double T1 =
        static_cast<double>(I + 1) / static_cast<double>(Splits);
    Tensor PartStart({1, A.numel()});
    Tensor PartEnd({1, A.numel()});
    for (int64_t J = 0; J < A.numel(); ++J) {
      PartStart[J] = A[J] + T0 * (B[J] - A[J]);
      PartEnd[J] = A[J] + T1 * (B[J] - A[J]);
    }
    std::vector<Region> Initial;
    Initial.push_back(makeSegmentRegion(PartStart, PartEnd,
                                        Cdf(T1) - Cdf(T0), T0, T1));
    PropagatedState Part = propagateWithSchedule(Layers, InputShape, Initial);
    Merged.Seconds += Part.Seconds;
    Merged.PeakBytes = std::max(Merged.PeakBytes, Part.PeakBytes);
    Merged.Retries = std::max(Merged.Retries, Part.Retries);
    Merged.Stats.MaxRegions =
        std::max(Merged.Stats.MaxRegions, Part.Stats.MaxRegions);
    Merged.Stats.MaxNodes =
        std::max(Merged.Stats.MaxNodes, Part.Stats.MaxNodes);
    Merged.Stats.NumSplits += Part.Stats.NumSplits;
    Merged.Stats.NumBoxed += Part.Stats.NumBoxed;
    // Degradation of any part degrades (but does not fail) the merge.
    Merged.Degraded |= Part.Degraded;
    Merged.Stats.Degraded |= Part.Stats.Degraded;
    Merged.Stats.DeadlineHit |= Part.Stats.DeadlineHit;
    if (static_cast<uint8_t>(Part.Stats.Rung) >
        static_cast<uint8_t>(Merged.Stats.Rung))
      Merged.Stats.Rung = Part.Stats.Rung;
    Merged.Stats.Rollbacks += Part.Stats.Rollbacks;
    Merged.Stats.FallbackBoxLayers += Part.Stats.FallbackBoxLayers;
    Merged.Stats.QuarantinedRegions += Part.Stats.QuarantinedRegions;
    Merged.Stats.QuarantinedMass += Part.Stats.QuarantinedMass;
    // Merge the per-layer timelines: the parts run the same pipeline, so
    // add the flows, sum the times, and keep the per-layer charge maxima
    // (each part releases its state before the next starts).
    if (Merged.Stats.Layers.empty()) {
      Merged.Stats.Layers = Part.Stats.Layers;
    } else {
      const size_t Common =
          std::min(Merged.Stats.Layers.size(), Part.Stats.Layers.size());
      for (size_t L = 0; L < Common; ++L) {
        LayerRecord &Into = Merged.Stats.Layers[L];
        const LayerRecord &From = Part.Stats.Layers[L];
        Into.RegionsIn += From.RegionsIn;
        Into.RegionsOut += From.RegionsOut;
        Into.NodesIn += From.NodesIn;
        Into.NodesOut += From.NodesOut;
        Into.Splits += From.Splits;
        Into.Boxed += From.Boxed;
        Into.ChargedBytes = std::max(Into.ChargedBytes, From.ChargedBytes);
        Into.Seconds += From.Seconds;
      }
    }
    if (Part.Stats.OomLayer >= 0)
      Merged.Stats.OomLayer = Part.Stats.OomLayer;
    Merged.UsedRelaxPercent = Part.UsedRelaxPercent;
    Merged.UsedClusterK = Part.UsedClusterK;
    if (Part.OutOfMemory) {
      Merged.OutOfMemory = true;
      Merged.Regions.clear();
      return Merged;
    }
    for (auto &R : Part.Regions)
      Merged.Regions.push_back(std::move(R));
  }
  return Merged;
}

std::vector<PropagatedState> GenProve::propagateSegmentsBatch(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const std::vector<std::pair<Tensor, Tensor>> &Segments) const {
  GENPROVE_SPAN("propagate_batch");
  static Counter &BatchedCtr =
      MetricsRegistry::global().counter("batch.propagations");
  static Counter &BatchedQueriesCtr =
      MetricsRegistry::global().counter("batch.queries");
  static Counter &BatchFallbackCtr =
      MetricsRegistry::global().counter("batch.sequential_fallbacks");

  const size_t K = Segments.size();
  std::vector<PropagatedState> Out(K);
  const auto Sequential = [&] {
    for (size_t I = 0; I < K; ++I)
      Out[I] = propagateSegment(Layers, InputShape, Segments[I].first,
                                Segments[I].second);
  };

  // Batching is only sound-and-identical when nothing couples queries:
  // input splitting re-parameterizes, resilient degradation merges boxes
  // across the whole state, and the refinement schedule reacts to the
  // *joint* OOM. Any of those => per-query propagation.
  const bool Batchable = K > 1 && Config.InputSplits <= 1 &&
                         !Config.Resilience.Enabled &&
                         Config.Schedule == RefinementSchedule::None;
  if (!Batchable) {
    Sequential();
    return Out;
  }

  // Per-query cache routing: a member whose solo key chain has a
  // full-depth entry skips the joint run entirely — its propagateSegment
  // call warm-starts past the whole pipeline, bit-identical by the cache
  // contract. The cold members form the (smaller) joint batch, whose
  // final state the engine stores back per query, so repeats hit no
  // matter how the batches around them were composed.
  static Counter &BatchWarmCtr =
      MetricsRegistry::global().counter("batch.cache_warm_queries");
  std::vector<char> WarmHit(K, 0);
  PropagationCache &Cache = PropagationCache::global();
  if (Config.UseCache && Cache.enabled()) {
    const PropagateConfig PC =
        basePropConfig(Config.RelaxPercent, Config.ClusterK);
    int64_t NumWarm = 0;
    for (size_t I = 0; I < K; ++I) {
      std::vector<Region> SoloInit;
      SoloInit.push_back(makeSegmentRegion(
          Segments[I].first.reshaped({1, Segments[I].first.numel()}),
          Segments[I].second.reshaped({1, Segments[I].second.numel()})));
      const std::vector<uint64_t> SoloChain = PropagationCache::chainKeys(
          PC.CacheSalt, InputShape, SoloInit, Layers);
      if (Cache.peekDepth(SoloChain) == Layers.size()) {
        WarmHit[I] = 1;
        ++NumWarm;
      }
    }
    if (NumWarm > 0)
      BatchWarmCtr.add(NumWarm);
  }

  std::vector<Region> Initial;
  std::vector<size_t> ColdIdx;
  Initial.reserve(K);
  for (size_t I = 0; I < K; ++I) {
    if (WarmHit[I]) {
      Out[I] = propagateSegment(Layers, InputShape, Segments[I].first,
                                Segments[I].second);
      continue;
    }
    const Tensor A = Segments[I].first.reshaped(
        {1, Segments[I].first.numel()});
    const Tensor B = Segments[I].second.reshaped(
        {1, Segments[I].second.numel()});
    Region R = makeSegmentRegion(A, B);
    R.Query = static_cast<int32_t>(I);
    Initial.push_back(std::move(R));
    ColdIdx.push_back(I);
  }
  if (ColdIdx.empty())
    return Out;
  if (ColdIdx.size() == 1) {
    const size_t I = ColdIdx.front();
    Out[I] = propagateSegment(Layers, InputShape, Segments[I].first,
                              Segments[I].second);
    return Out;
  }

  PropagatedState Joint = propagateWithSchedule(Layers, InputShape, Initial);
  if (Joint.OutOfMemory) {
    // The joint state blew the device budget. A sequential run gives each
    // query the budget to itself, so fall back — the per-query bounds are
    // then the unbatched path's by construction.
    BatchFallbackCtr.add(1);
    Sequential();
    return Out;
  }
  BatchedCtr.add(1);
  BatchedQueriesCtr.add(static_cast<int64_t>(ColdIdx.size()));

  // Split the joint state per query (warm-routed members already hold
  // their solo results). Region order within a query is the order a
  // sequential run produces; the tag is reset so the split states are
  // byte-identical to single-query ones.
  for (const size_t I : ColdIdx) {
    Out[I].Stats = Joint.Stats; // incl. the joint run's layer timeline
    Out[I].PeakBytes = Joint.PeakBytes;
    Out[I].Seconds = Joint.Seconds;
    Out[I].Retries = Joint.Retries;
    Out[I].UsedRelaxPercent = Joint.UsedRelaxPercent;
    Out[I].UsedClusterK = Joint.UsedClusterK;
    Out[I].Cdf = Joint.Cdf;
    Out[I].Degraded = Joint.Degraded;
  }
  for (Region &R : Joint.Regions) {
    const size_t I = static_cast<size_t>(R.Query);
    check(I < K, "batched propagation produced an unknown query tag");
    R.Query = 0;
    Out[I].Regions.push_back(std::move(R));
  }
  return Out;
}

PropagatedState
GenProve::propagateChain(const std::vector<const Layer *> &Layers,
                         const Shape &InputShape,
                         const std::vector<Tensor> &Waypoints) const {
  check(Waypoints.size() >= 2, "a chain needs at least two waypoints");
  const ParamCdf Cdf = makeCdf(Config.Distribution);
  const int64_t Legs = static_cast<int64_t>(Waypoints.size()) - 1;
  std::vector<Region> Initial;
  Initial.reserve(static_cast<size_t>(Legs));
  for (int64_t I = 0; I < Legs; ++I) {
    const double T0 = static_cast<double>(I) / static_cast<double>(Legs);
    const double T1 = static_cast<double>(I + 1) / static_cast<double>(Legs);
    const Tensor &A = Waypoints[static_cast<size_t>(I)];
    const Tensor &B = Waypoints[static_cast<size_t>(I + 1)];
    Initial.push_back(makeSegmentRegion(A.reshaped({1, A.numel()}),
                                        B.reshaped({1, B.numel()}),
                                        Cdf(T1) - Cdf(T0), T0, T1));
  }
  return propagateWithSchedule(Layers, InputShape, Initial);
}

PropagatedState
GenProve::propagateQuadratic(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &A0,
                             const Tensor &A1, const Tensor &A2) const {
  std::vector<Region> Initial;
  Initial.push_back(makeQuadraticRegion(A0.reshaped({1, A0.numel()}),
                                        A1.reshaped({1, A1.numel()}),
                                        A2.reshaped({1, A2.numel()})));
  return propagateWithSchedule(Layers, InputShape, Initial);
}

PropagatedState GenProve::propagateRegionsFrom(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    std::vector<Region> Initial) const {
  return propagateWithSchedule(Layers, InputShape, Initial);
}

ProbBounds GenProve::boundsFor(const PropagatedState &State,
                               const OutputSpec &Spec) const {
  if (State.OutOfMemory)
    return {0.0, 1.0, true, State.Degraded};
  ProbBounds Bounds = computeProbBounds(State.Regions, Spec, State.Cdf);
  // Quarantined (non-finite) regions could have landed anywhere, so their
  // mass must be added to the upper bound; the lower bound, computed from
  // the surviving mass only, is already sound.
  if (State.Stats.QuarantinedMass > 0.0) {
    const double Raised =
        soundRoundingEnabled()
            ? fp::addUp(Bounds.Upper, State.Stats.QuarantinedMass)
            : Bounds.Upper + State.Stats.QuarantinedMass;
    Bounds.Upper = std::min(1.0, Raised);
  }
  Bounds.Degraded = State.Degraded;
  if (Config.Mode == AnalysisMode::Deterministic)
    Bounds = Bounds.deterministic();
  return Bounds;
}

namespace {

/// Project a propagated state (minus its regions) onto a result.
AnalysisResult resultFromState(const PropagatedState &State,
                               ProbBounds Bounds) {
  AnalysisResult Result;
  Result.Bounds = Bounds;
  Result.PeakBytes = State.PeakBytes;
  Result.Seconds = State.Seconds;
  Result.OutOfMemory = State.OutOfMemory;
  Result.MaxRegions = State.Stats.MaxRegions;
  Result.MaxNodes = State.Stats.MaxNodes;
  Result.Retries = State.Retries;
  Result.UsedRelaxPercent = State.UsedRelaxPercent;
  Result.UsedClusterK = State.UsedClusterK;
  Result.Degraded = State.Degraded;
  Result.Rung = State.Stats.Rung;
  Result.Rollbacks = State.Stats.Rollbacks;
  Result.FallbackBoxLayers = State.Stats.FallbackBoxLayers;
  Result.DeadlineHit = State.Stats.DeadlineHit;
  Result.QuarantinedMass = State.Stats.QuarantinedMass;
  Result.Layers = State.Stats.Layers;
  return Result;
}

} // namespace

AnalysisResult
GenProve::analyzeSegment(const std::vector<const Layer *> &Layers,
                         const Shape &InputShape, const Tensor &Start,
                         const Tensor &End, const OutputSpec &Spec) const {
  if (Config.FastScreen)
    return analyzeSegmentScreened(Layers, InputShape, Start, End, Spec, 0.0,
                                  1.0);
  const PropagatedState State =
      propagateSegment(Layers, InputShape, Start, End);
  return resultFromState(State, boundsFor(State, Spec));
}

AnalysisResult GenProve::analyzeSegmentScreened(
    const std::vector<const Layer *> &Layers, const Shape &InputShape,
    const Tensor &Start, const Tensor &End, const OutputSpec &Spec,
    double T0, double T1) const {
  GENPROVE_SPAN("analyze_screened");
  static Counter &InsideCtr =
      MetricsRegistry::global().counter("screen.inside_pieces");
  static Counter &OutsideCtr =
      MetricsRegistry::global().counter("screen.outside_pieces");
  static Counter &BorderCtr =
      MetricsRegistry::global().counter("screen.borderline_pieces");
  Timer Clock;

  const Tensor A = Start.reshaped({1, Start.numel()});
  const Tensor B = End.reshaped({1, End.numel()});
  const ParamCdf Cdf = makeCdf(Config.Distribution);
  const int64_t Splits = std::max<int64_t>(Config.ScreenSplits, 1);
  const ScreenPlan Plan = buildScreenPlan(Layers);
  const bool Sound = soundRoundingEnabled();

  AnalysisResult Result;
  Result.Screened = true;

  // Screening tier: classify each piece of [T0, T1]. Inside pieces donate
  // their CDF mass to both bounds directly (directed accumulation when
  // sound rounding is on); outside pieces donate nothing to either;
  // borderline pieces collect into ONE batched sound propagation, whose
  // regions keep their global parameter sub-ranges so the double tier's
  // exact curve-mass machinery applies unchanged.
  double InsideDown = 0.0, InsideUp = 0.0;
  double BorderMassUp = 0.0;
  std::vector<Region> Border;
  for (int64_t I = 0; I < Splits; ++I) {
    const double P0 =
        T0 + (T1 - T0) * (static_cast<double>(I) /
                          static_cast<double>(Splits));
    const double P1 =
        T0 + (T1 - T0) * (static_cast<double>(I + 1) /
                          static_cast<double>(Splits));
    Tensor PartStart({1, A.numel()});
    Tensor PartEnd({1, A.numel()});
    for (int64_t J = 0; J < A.numel(); ++J) {
      PartStart[J] = A[J] + P0 * (B[J] - A[J]);
      PartEnd[J] = A[J] + P1 * (B[J] - A[J]);
    }
    const double Weight =
        Sound ? fp::subUp(Cdf(P1), Cdf(P0)) : Cdf(P1) - Cdf(P0);
    const ScreenVerdict V =
        screenClassify(Plan, PartStart, PartEnd, Spec);
    switch (V) {
    case ScreenVerdict::Inside:
      ++Result.ScreenedInside;
      // The inside mass enters the lower bound, so its weight must be
      // rounded *down* for the lower accumulation; Weight above rounds up
      // (safe for the upper bound), so recompute downward here.
      InsideDown = Sound ? fp::addDown(InsideDown,
                                       fp::subDown(Cdf(P1), Cdf(P0)))
                         : InsideDown + Weight;
      InsideUp = Sound ? fp::addUp(InsideUp, Weight) : InsideUp + Weight;
      break;
    case ScreenVerdict::Outside:
      ++Result.ScreenedOutside;
      break;
    case ScreenVerdict::Borderline:
      ++Result.ScreenedBorderline;
      BorderMassUp =
          Sound ? fp::addUp(BorderMassUp, Weight) : BorderMassUp + Weight;
      Border.push_back(makeSegmentRegion(PartStart, PartEnd, Weight, P0,
                                         P1));
      break;
    }
  }
  InsideCtr.add(Result.ScreenedInside);
  OutsideCtr.add(Result.ScreenedOutside);
  BorderCtr.add(Result.ScreenedBorderline);

  // Sound tier: one batched propagation of every borderline piece.
  ProbBounds Bounds;
  double BorderLower = 0.0, BorderUpper = 0.0;
  if (!Border.empty()) {
    PropagatedState State =
        propagateWithSchedule(Layers, InputShape, Border);
    Result.PeakBytes = State.PeakBytes;
    Result.OutOfMemory = State.OutOfMemory;
    Result.MaxRegions = State.Stats.MaxRegions;
    Result.MaxNodes = State.Stats.MaxNodes;
    Result.Retries = State.Retries;
    Result.UsedRelaxPercent = State.UsedRelaxPercent;
    Result.UsedClusterK = State.UsedClusterK;
    Result.Degraded = State.Degraded;
    Result.Rung = State.Stats.Rung;
    Result.Rollbacks = State.Stats.Rollbacks;
    Result.FallbackBoxLayers = State.Stats.FallbackBoxLayers;
    Result.DeadlineHit = State.Stats.DeadlineHit;
    Result.QuarantinedMass = State.Stats.QuarantinedMass;
    Result.Layers = State.Stats.Layers;
    if (State.OutOfMemory) {
      // The borderline set could not be analyzed: its mass stays fully
      // uncertain, but the screened inside mass is still a sound floor.
      BorderLower = 0.0;
      BorderUpper = BorderMassUp;
      Bounds.Degraded = true;
    } else {
      ProbBounds BB = computeProbBounds(State.Regions, Spec, State.Cdf);
      if (State.Stats.QuarantinedMass > 0.0) {
        const double Raised =
            Sound ? fp::addUp(BB.Upper, State.Stats.QuarantinedMass)
                  : BB.Upper + State.Stats.QuarantinedMass;
        BB.Upper = std::min(1.0, Raised);
      }
      BorderLower = BB.Lower;
      BorderUpper = BB.Upper;
      Bounds.Degraded = State.Degraded;
    }
  }

  Bounds.Lower = Sound ? fp::addDown(InsideDown, BorderLower)
                       : InsideDown + BorderLower;
  Bounds.Upper =
      Sound ? fp::addUp(InsideUp, BorderUpper) : InsideUp + BorderUpper;
  Bounds.Lower = std::min(std::max(Bounds.Lower, 0.0), 1.0);
  Bounds.Upper = std::min(std::max(Bounds.Upper, Bounds.Lower), 1.0);
  Bounds.OutOfMemory = false; // the assembled interval is always sound
  if (Config.Mode == AnalysisMode::Deterministic)
    Bounds = Bounds.deterministic();

  Result.Bounds = Bounds;
  Result.Degraded |= Bounds.Degraded;
  Result.Seconds = Clock.seconds();
  return Result;
}

AnalysisResult
GenProve::analyzeQuadratic(const std::vector<const Layer *> &Layers,
                           const Shape &InputShape, const Tensor &A0,
                           const Tensor &A1, const Tensor &A2,
                           const OutputSpec &Spec) const {
  const PropagatedState State =
      propagateQuadratic(Layers, InputShape, A0, A1, A2);
  return resultFromState(State, boundsFor(State, Spec));
}

Tensor forwardConcretePoints(const std::vector<const Layer *> &Layers,
                             const Shape &InputShape, const Tensor &Points) {
  std::vector<int64_t> Dims = InputShape.dims();
  Dims[0] = Points.dim(0);
  Tensor Acts = Points.reshaped(Shape(Dims));
  for (const Layer *L : Layers) {
    if (L->isAffine()) {
      Acts = L->applyAffine(Acts);
    } else {
      Acts = relu(Acts);
    }
  }
  const int64_t B = Acts.dim(0);
  return Acts.reshaped({B, Acts.numel() / std::max<int64_t>(B, 1)});
}

} // namespace genprove
