//===- core/adversarial_spec.cpp ------------------------------*- C++ -*-===//

#include "src/core/adversarial_spec.h"

#include "src/util/timer.h"

#include <algorithm>
#include <cmath>

namespace genprove {

AnalysisResult analyzeAdversarialTube(
    const GenProve &Analyzer, const std::vector<const Layer *> &DecoderLayers,
    const std::vector<const Layer *> &ClassifierLayers,
    const Shape &LatentShape, const Shape &ImageShape, const Tensor &Start,
    const Tensor &End, double Epsilon, const OutputSpec &Spec) {
  Timer Clock;
  AnalysisResult Result;

  // Stage 1: GenProve through the decoder.
  const PropagatedState Decoded =
      Analyzer.propagateSegment(DecoderLayers, LatentShape, Start, End);
  Result.MaxRegions = Decoded.Stats.MaxRegions;
  Result.MaxNodes = Decoded.Stats.MaxNodes;
  Result.PeakBytes = Decoded.PeakBytes;
  Result.Retries = Decoded.Retries;
  if (Decoded.OutOfMemory) {
    Result.Bounds = {0.0, 1.0, true};
    Result.OutOfMemory = true;
    Result.Seconds = Clock.seconds();
    return Result;
  }

  // Stage 2: box every piece and inflate by eps.
  std::vector<Region> Tubes;
  Tubes.reserve(Decoded.Regions.size());
  for (const Region &R : Decoded.Regions) {
    Region Box = boundingBox(R);
    for (int64_t J = 0; J < Box.dim(); ++J)
      Box.Radius[J] += Epsilon;
    Tubes.push_back(std::move(Box));
  }

  // Stage 3: interval propagation through the classifier.
  const PropagatedState Classified = Analyzer.propagateRegionsFrom(
      ClassifierLayers, ImageShape, std::move(Tubes));
  Result.PeakBytes = std::max(Result.PeakBytes, Classified.PeakBytes);
  if (Classified.OutOfMemory) {
    Result.Bounds = {0.0, 1.0, true};
    Result.OutOfMemory = true;
    Result.Seconds = Clock.seconds();
    return Result;
  }

  // Stage 4: per-box universal property.
  double Lower = 0.0;
  double CertainlyViolating = 0.0;
  for (const Region &R : Classified.Regions) {
    if (Spec.boxContained(R.Center, R.Radius)) {
      Lower += R.Weight;
    } else {
      // If some halfspace is violated by *every* point of the box, every
      // latent point in this group has a misclassified perturbation.
      for (const auto &H : Spec.halfspaces()) {
        double Max = H.Offset;
        for (int64_t J = 0; J < H.Normal.numel(); ++J)
          Max += H.Normal[J] * R.Center[J] +
                 std::fabs(H.Normal[J]) * R.Radius[J];
        if (Max <= 0.0) {
          CertainlyViolating += R.Weight;
          break;
        }
      }
    }
  }
  Result.Bounds.Lower = std::clamp(Lower, 0.0, 1.0);
  Result.Bounds.Upper = std::clamp(1.0 - CertainlyViolating, 0.0, 1.0);
  Result.Bounds.OutOfMemory = false;
  Result.Seconds = Clock.seconds();
  return Result;
}

} // namespace genprove
