//===- core/consistency.cpp -----------------------------------*- C++ -*-===//

#include "src/core/consistency.h"

#include "src/util/error.h"

#include <algorithm>
#include <map>

namespace genprove {

std::vector<SpecPair> sameClassPairs(const Dataset &Set, int64_t NumPairs,
                                     Rng &Generator) {
  std::map<int64_t, std::vector<int64_t>> ByClass;
  for (int64_t I = 0; I < Set.numImages(); ++I)
    ByClass[Set.Labels[static_cast<size_t>(I)]].push_back(I);
  std::vector<int64_t> Usable;
  for (const auto &[Label, Members] : ByClass)
    if (Members.size() >= 2)
      Usable.push_back(Label);
  // A degenerate dataset (every class a singleton) would silently yield an
  // empty pair list and downstream consistency rates over zero pairs; fail
  // loudly instead.
  if (NumPairs > 0 && Usable.empty())
    fatalError("sameClassPairs: no class has two or more images; cannot "
               "sample same-class pairs from this dataset");
  std::vector<SpecPair> Pairs;
  while (static_cast<int64_t>(Pairs.size()) < NumPairs && !Usable.empty()) {
    const int64_t Label = Usable[Generator.below(Usable.size())];
    const auto &Members = ByClass[Label];
    const int64_t A =
        Members[Generator.below(static_cast<uint64_t>(Members.size()))];
    int64_t B = A;
    while (B == A)
      B = Members[Generator.below(static_cast<uint64_t>(Members.size()))];
    Pairs.push_back({A, B});
  }
  return Pairs;
}

std::vector<SpecPair> sameAttributePairs(const Dataset &Set, int64_t NumPairs,
                                         Rng &Generator) {
  // Bucket images by their full attribute signature.
  std::map<std::vector<int>, std::vector<int64_t>> Buckets;
  const int64_t A = Set.numAttributes();
  for (int64_t I = 0; I < Set.numImages(); ++I) {
    std::vector<int> Key(static_cast<size_t>(A));
    for (int64_t J = 0; J < A; ++J)
      Key[static_cast<size_t>(J)] = Set.Attributes.at(I, J) > 0.5 ? 1 : 0;
    Buckets[Key].push_back(I);
  }
  std::vector<const std::vector<int64_t> *> Usable;
  for (const auto &[Key, Members] : Buckets)
    if (Members.size() >= 2)
      Usable.push_back(&Members);
  if (NumPairs > 0 && Usable.empty())
    fatalError("sameAttributePairs: every attribute signature is unique; "
               "cannot sample same-attribute pairs from this dataset");
  std::vector<SpecPair> Pairs;
  while (static_cast<int64_t>(Pairs.size()) < NumPairs && !Usable.empty()) {
    const auto &Members = *Usable[Generator.below(Usable.size())];
    const int64_t X =
        Members[Generator.below(static_cast<uint64_t>(Members.size()))];
    int64_t Y = X;
    while (Y == X)
      Y = Members[Generator.below(static_cast<uint64_t>(Members.size()))];
    Pairs.push_back({X, Y});
  }
  return Pairs;
}

std::vector<SpecPair> flipPairs(int64_t NumImages, int64_t NumPairs,
                                Rng &Generator) {
  std::vector<SpecPair> Pairs;
  for (int64_t I = 0; I < NumPairs; ++I) {
    const int64_t Index =
        static_cast<int64_t>(Generator.below(static_cast<uint64_t>(NumImages)));
    Pairs.push_back({Index, Index});
  }
  return Pairs;
}

ConsistencyReport evaluateConsistency(const GenProve &Analyzer, Vae &Model,
                                      Sequential &Classifier,
                                      const Dataset &Set,
                                      const std::vector<SpecPair> &Pairs,
                                      SpecTarget Target, bool FlipSecond) {
  const std::vector<const Layer *> Pipeline =
      concatViews(Model.decoder().view(), Classifier.view());
  const Shape LatentShape({1, Model.latentDim()});
  const Shape ImgShape({1, Set.Channels, Set.Size, Set.Size});
  const int64_t NumOutputs = Classifier.outputShape(ImgShape).dim(1);

  ConsistencyReport Report;
  double SumWidth = 0.0, SumLower = 0.0, SumUpper = 0.0, SumSeconds = 0.0;
  int64_t NumNonTrivial = 0, NumOom = 0, NumBounds = 0;

  for (const SpecPair &Pair : Pairs) {
    const Tensor Img1 = Set.image(Pair.First);
    const Tensor Img2 =
        FlipSecond ? Set.flippedImage(Pair.First) : Set.image(Pair.Second);
    const Tensor E1 = Model.encode(Img1);
    const Tensor E2 = Model.encode(Img2);

    const PropagatedState State =
        Analyzer.propagateSegment(Pipeline, LatentShape, E1, E2);
    SumSeconds += State.Seconds;
    Report.PeakBytes = std::max(Report.PeakBytes, State.PeakBytes);
    if (State.OutOfMemory)
      ++NumOom;

    std::vector<OutputSpec> Specs;
    if (Target == SpecTarget::ClassLabel) {
      Specs.push_back(OutputSpec::argmaxWins(
          Set.Labels[static_cast<size_t>(Pair.First)], NumOutputs));
    } else {
      for (int64_t J = 0; J < NumOutputs; ++J)
        Specs.push_back(OutputSpec::attributeSign(
            J, Set.Attributes.at(Pair.First, J) > 0.5, NumOutputs));
    }
    for (const OutputSpec &Spec : Specs) {
      const ProbBounds Bounds = Analyzer.boundsFor(State, Spec);
      SumWidth += Bounds.width();
      SumLower += Bounds.Lower;
      SumUpper += Bounds.Upper;
      if (Bounds.nonTrivial())
        ++NumNonTrivial;
      ++NumBounds;
    }
  }

  if (NumBounds > 0) {
    Report.MeanWidth = SumWidth / static_cast<double>(NumBounds);
    Report.MeanLower = SumLower / static_cast<double>(NumBounds);
    Report.MeanUpper = SumUpper / static_cast<double>(NumBounds);
    Report.FractionNonTrivial =
        static_cast<double>(NumNonTrivial) / static_cast<double>(NumBounds);
  }
  if (!Pairs.empty()) {
    Report.FractionOom =
        static_cast<double>(NumOom) / static_cast<double>(Pairs.size());
    Report.MeanSeconds = SumSeconds / static_cast<double>(Pairs.size());
  }
  Report.NumBounds = NumBounds;
  return Report;
}

} // namespace genprove
