//===- core/distribution.h - Input parameter distributions -----*- C++ -*-===//
///
/// \file
/// Distributions over the specification's curve parameter t in [0, 1].
/// The consistency experiments use the uniform distribution; Table 7 uses
/// the arcsine distribution ("to demonstrate non-uniform distributions").
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_DISTRIBUTION_H
#define GENPROVE_CORE_DISTRIBUTION_H

#include "src/util/rng.h"

#include <functional>

namespace genprove {

/// Supported input-parameter distributions.
enum class ParamDistribution : uint8_t { Uniform, Arcsine };

/// CDF value F(T) of the given distribution at T in [0, 1].
double paramCdf(ParamDistribution Dist, double T);

/// A callable CDF for the propagation engine.
std::function<double(double)> makeCdf(ParamDistribution Dist);

/// Draw one sample of the distribution (for the sampling baseline).
double sampleParam(ParamDistribution Dist, Rng &Generator);

/// Human-readable name ("uniform" / "arcsine").
const char *paramDistributionName(ParamDistribution Dist);

} // namespace genprove

#endif // GENPROVE_CORE_DISTRIBUTION_H
