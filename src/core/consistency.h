//===- core/consistency.h - Consistency metric evaluation ------*- C++ -*-===//
///
/// \file
/// The paper's evaluation metric (Section 5): *consistency* — for a point
/// picked from the segment between the encodings of two ground-truth
/// inputs, the probability that its decoding keeps the same attribute /
/// class prediction. This module selects matched pairs, builds the latent
/// specifications, runs a verifier over decoder-then-classifier, and
/// aggregates the average-consistency bound widths of Tables 1, 2, 4, 8.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_CONSISTENCY_H
#define GENPROVE_CORE_CONSISTENCY_H

#include "src/core/genprove.h"
#include "src/data/dataset.h"
#include "src/train/vae.h"

namespace genprove {

/// A matched pair of dataset indices (same class, or identical attribute
/// vector).
struct SpecPair {
  int64_t First = 0;
  int64_t Second = 0;
};

/// Pairs with the same class label.
std::vector<SpecPair> sameClassPairs(const Dataset &Set, int64_t NumPairs,
                                     Rng &Generator);

/// Pairs whose full attribute vectors agree (the paper's CelebA setting:
/// "sign a_i = sign b_i for every attribute").
std::vector<SpecPair> sameAttributePairs(const Dataset &Set, int64_t NumPairs,
                                         Rng &Generator);

/// Pairs of an image with its own horizontal flip (the head-orientation
/// specification of Table 5a).
std::vector<SpecPair> flipPairs(int64_t NumImages, int64_t NumPairs,
                                Rng &Generator);

/// Aggregated evaluation of one verifier over a set of pairs.
struct ConsistencyReport {
  double MeanWidth = 0.0;       ///< average of (u - l) over all bounds.
  double MeanLower = 0.0;
  double MeanUpper = 0.0;
  double FractionNonTrivial = 0.0; ///< Table 1's metric.
  double FractionOom = 0.0;
  double MeanSeconds = 0.0;
  size_t PeakBytes = 0;         ///< max over pairs.
  int64_t NumBounds = 0;
};

/// How the per-pair specification is generated.
enum class SpecTarget : uint8_t {
  ClassLabel,     ///< argmax must equal the shared class label.
  AllAttributes,  ///< one sign spec per attribute (CelebA style).
};

/// Evaluate GenProve (any configuration) over pairs. Images are encoded
/// with \p Model's encoder; FlipSecond replaces the second image with the
/// horizontal flip of the first (head orientation).
ConsistencyReport evaluateConsistency(
    const GenProve &Analyzer, Vae &Model, Sequential &Classifier,
    const Dataset &Set, const std::vector<SpecPair> &Pairs, SpecTarget Target,
    bool FlipSecond = false);

} // namespace genprove

#endif // GENPROVE_CORE_CONSISTENCY_H
