//===- core/spec.h - Output specifications and bounds ----------*- C++ -*-===//
///
/// \file
/// OutputSpec is the set D of desirable outputs, expressed as a conjunction
/// of open halfspaces g . y + c > 0 — enough for every specification in
/// the paper: "class t wins the argmax" (n-1 pairwise constraints),
/// "attribute i has sign s" (one constraint), and "the discriminator says
/// real" (one constraint).
///
/// computeProbBounds turns the final abstract state (weighted curve pieces
/// and boxes) into the paper's probabilistic bounds [l, u] on
/// Pr[y in D] (Section 4.1, "Computing bounds"):
///
///   l = e + sum of weights of boxes contained in D,
///   u = e + sum of weights of boxes intersecting D,
///
/// where e is the exactly-computed mass of curve pieces inside D (pieces
/// are split at the constraint boundaries, which is exact because each
/// g . gamma(t) + c is a polynomial of degree <= 2 in t).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_CORE_SPEC_H
#define GENPROVE_CORE_SPEC_H

#include "src/domains/region.h"

#include <functional>
#include <string>
#include <vector>

namespace genprove {

/// Conjunction of open halfspaces g . y + c > 0 over flat outputs.
class OutputSpec {
public:
  /// One halfspace: Normal . y + Offset > 0.
  struct Halfspace {
    Tensor Normal; ///< [1, N]
    double Offset = 0.0;
  };

  /// D = { y : argmax_i y_i = Target } (pairwise margins).
  static OutputSpec argmaxWins(int64_t Target, int64_t NumClasses);

  /// D = { y : y_Attr > 0 } or { y : y_Attr < 0 }.
  static OutputSpec attributeSign(int64_t Attr, bool Positive,
                                  int64_t NumOutputs);

  /// D = { y : Normal . y + Offset > 0 } for a custom functional.
  static OutputSpec halfspace(Tensor Normal, double Offset);

  /// Add one more conjunct.
  void addHalfspace(Tensor Normal, double Offset);

  const std::vector<Halfspace> &halfspaces() const { return Constraints; }
  int64_t dim() const {
    return Constraints.empty() ? 0 : Constraints.front().Normal.numel();
  }

  /// Concrete membership test for a flat output vector.
  bool satisfied(const Tensor &Y) const;

  /// Does the box (Center, Radius) lie entirely inside D?
  bool boxContained(const Tensor &Center, const Tensor &Radius) const;

  /// Could the box intersect D? (Exact for argmax/sign specs; an
  /// overapproximation — hence sound for upper bounds — in general.)
  bool boxIntersects(const Tensor &Center, const Tensor &Radius) const;

private:
  std::vector<Halfspace> Constraints;
};

/// A probabilistic bound [Lower, Upper] plus analysis status.
struct ProbBounds {
  double Lower = 0.0;
  double Upper = 1.0;
  bool OutOfMemory = false;
  /// The interval is sound but was widened by the resilience layer
  /// (checkpointed boxing, interval fallback, deadline expiry or
  /// quarantined mass); see docs/ROBUSTNESS.md.
  bool Degraded = false;

  double width() const { return Upper - Lower; }

  /// Collapse to the deterministic three-way output {[0,0],[1,1],[0,1]}
  /// (what BASELINE and GenProve-Det report in Table 1).
  ProbBounds deterministic() const {
    if (OutOfMemory)
      return {0.0, 1.0, true, Degraded};
    if (Lower >= 1.0)
      return {1.0, 1.0, false, Degraded};
    if (Upper <= 0.0)
      return {0.0, 0.0, false, Degraded};
    return {0.0, 1.0, false, Degraded};
  }

  /// "Non-trivial" in the sense of Table 1: strictly tighter than [0, 1].
  bool nonTrivial() const { return Lower > 0.0 || Upper < 1.0; }
};

/// The Section 4.1 bound computation over a final abstract state. \p Cdf
/// is the input-parameter CDF (empty = uniform), used to split curve mass
/// exactly at the constraint boundaries.
ProbBounds computeProbBounds(const std::vector<Region> &Regions,
                             const OutputSpec &Spec,
                             const std::function<double(double)> &Cdf = {});

/// The mass e of one curve piece that lies inside D (exact); exposed for
/// tests. Proportional to the piece's weight.
double curveMassInside(const Region &Curve, const OutputSpec &Spec,
                       const std::function<double(double)> &Cdf = {});

/// Directed enclosure [MassLo, MassHi] of the curve mass inside D, used in
/// place of curveMassInside when SoundRounding is enabled: pieces are
/// shrunk by a few ULPs before pointwise sign certification, CDF values
/// are padded outward, and ratios are rounded directionally (see
/// docs/SOUNDNESS.md).
void curveMassInsideBounds(const Region &Curve, const OutputSpec &Spec,
                           const std::function<double(double)> &Cdf,
                           double &MassLo, double &MassHi);

/// Parse the textual spec grammar shared by genprove_cli, genprove_serve
/// and genprove_loadgen:
///
///   argmax:T:N            class T wins the argmax over N classes
///   sign:I:+|-:N          attribute I has the given sign (N outputs)
///   halfspace:C:g0,g1,... custom functional g . y + C > 0
///
/// Returns false (with a human-readable message in \p Err when non-null)
/// on any malformed input — never exits, so a hostile network request
/// cannot take the daemon down through its spec string.
bool parseOutputSpecText(const std::string &Text, OutputSpec &Out,
                         std::string *Err = nullptr);

} // namespace genprove

#endif // GENPROVE_CORE_SPEC_H
