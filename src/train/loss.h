//===- train/loss.h - Loss functions ---------------------------*- C++ -*-===//
///
/// \file
/// Losses return the scalar value and write the gradient with respect to
/// the prediction into an output tensor, ready to feed Sequential::backward.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_LOSS_H
#define GENPROVE_TRAIN_LOSS_H

#include "src/tensor/tensor.h"

namespace genprove {

/// Mean squared error over the whole batch tensor. The paper's generative
/// models all use MSE reconstruction losses ("modified to use MSE ... to
/// avoid sigmoids").
double mseLoss(const Tensor &Pred, const Tensor &Target, Tensor &GradPred);

/// Binary cross-entropy with logits, one logit per attribute
/// (multi-label). Targets are 0/1 per entry.
double bceWithLogitsLoss(const Tensor &Logits, const Tensor &Targets,
                         Tensor &GradLogits);

/// Softmax cross-entropy over rank-2 logits with integer class labels.
double softmaxCrossEntropyLoss(const Tensor &Logits,
                               const std::vector<int64_t> &Labels,
                               Tensor &GradLogits);

/// KL(q(z|x) || N(0, I)) for a diagonal Gaussian with the given mean and
/// log-variance rows; adds gradients into GradMu / GradLogVar. Returns the
/// mean KL per sample.
double gaussianKlLoss(const Tensor &Mu, const Tensor &LogVar, Tensor &GradMu,
                      Tensor &GradLogVar);

} // namespace genprove

#endif // GENPROVE_TRAIN_LOSS_H
