//===- train/loss.cpp -----------------------------------------*- C++ -*-===//

#include "src/train/loss.h"

#include "src/util/error.h"

#include <cmath>

namespace genprove {

double mseLoss(const Tensor &Pred, const Tensor &Target, Tensor &GradPred) {
  check(Pred.numel() == Target.numel(), "mseLoss shape mismatch");
  GradPred = Tensor(Pred.shape());
  const double Scale = 1.0 / static_cast<double>(Pred.numel());
  double Loss = 0.0;
  for (int64_t I = 0; I < Pred.numel(); ++I) {
    const double Diff = Pred[I] - Target[I];
    Loss += Diff * Diff;
    GradPred[I] = 2.0 * Diff * Scale;
  }
  return Loss * Scale;
}

double bceWithLogitsLoss(const Tensor &Logits, const Tensor &Targets,
                         Tensor &GradLogits) {
  check(Logits.numel() == Targets.numel(), "bce shape mismatch");
  GradLogits = Tensor(Logits.shape());
  const double Scale = 1.0 / static_cast<double>(Logits.numel());
  double Loss = 0.0;
  for (int64_t I = 0; I < Logits.numel(); ++I) {
    const double X = Logits[I];
    const double T = Targets[I];
    // Numerically stable: max(x,0) - x*t + log(1 + exp(-|x|)).
    Loss += std::max(X, 0.0) - X * T + std::log1p(std::exp(-std::fabs(X)));
    const double Sigmoid = 1.0 / (1.0 + std::exp(-X));
    GradLogits[I] = (Sigmoid - T) * Scale;
  }
  return Loss * Scale;
}

double softmaxCrossEntropyLoss(const Tensor &Logits,
                               const std::vector<int64_t> &Labels,
                               Tensor &GradLogits) {
  check(Logits.rank() == 2, "cross entropy needs rank-2 logits");
  const int64_t B = Logits.dim(0), C = Logits.dim(1);
  check(static_cast<int64_t>(Labels.size()) == B, "label count mismatch");
  GradLogits = Tensor(Logits.shape());
  double Loss = 0.0;
  for (int64_t I = 0; I < B; ++I) {
    double Max = Logits.at(I, 0);
    for (int64_t J = 1; J < C; ++J)
      Max = std::max(Max, Logits.at(I, J));
    double Sum = 0.0;
    for (int64_t J = 0; J < C; ++J)
      Sum += std::exp(Logits.at(I, J) - Max);
    const double LogSum = std::log(Sum) + Max;
    const int64_t Label = Labels[static_cast<size_t>(I)];
    Loss += LogSum - Logits.at(I, Label);
    for (int64_t J = 0; J < C; ++J) {
      const double P = std::exp(Logits.at(I, J) - LogSum);
      GradLogits.at(I, J) =
          (P - (J == Label ? 1.0 : 0.0)) / static_cast<double>(B);
    }
  }
  return Loss / static_cast<double>(B);
}

double gaussianKlLoss(const Tensor &Mu, const Tensor &LogVar, Tensor &GradMu,
                      Tensor &GradLogVar) {
  check(Mu.numel() == LogVar.numel(), "KL shape mismatch");
  const int64_t B = Mu.dim(0);
  GradMu = Tensor(Mu.shape());
  GradLogVar = Tensor(LogVar.shape());
  double Loss = 0.0;
  const double Scale = 1.0 / static_cast<double>(B);
  for (int64_t I = 0; I < Mu.numel(); ++I) {
    const double M = Mu[I];
    const double Lv = LogVar[I];
    Loss += 0.5 * (std::exp(Lv) + M * M - 1.0 - Lv);
    GradMu[I] = M * Scale;
    GradLogVar[I] = 0.5 * (std::exp(Lv) - 1.0) * Scale;
  }
  return Loss * Scale;
}

} // namespace genprove
