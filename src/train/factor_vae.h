//===- train/factor_vae.h - FactorVAE training ------------------*- C++ -*-===//
///
/// \file
/// FactorVAE (Kim & Mnih, 2018): a VAE with an additional total-correlation
/// penalty estimated by a small MLP critic that discriminates joint latent
/// codes from dimension-permuted ones. The paper uses it as one of the
/// three CelebA generators compared in Table 7 (with a "5 layers deep,
/// 100 neurons each" factorization critic).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_FACTOR_VAE_H
#define GENPROVE_TRAIN_FACTOR_VAE_H

#include "src/train/vae.h"

namespace genprove {

/// FactorVAE training on top of an existing encoder/decoder pair.
class FactorVae {
public:
  /// Critic must be an MLP from Latent to 2 logits (joint vs permuted).
  FactorVae(Sequential EncoderNet, Sequential DecoderNet,
            Sequential CriticNet, int64_t Latent);

  Tensor encode(const Tensor &Images) { return Base.encode(Images); }
  Tensor decode(const Tensor &Latents) { return Base.decode(Latents); }
  Sequential &encoder() { return Base.encoder(); }
  Sequential &decoder() { return Base.decoder(); }
  Sequential &critic() { return Critic; }
  int64_t latentDim() const { return Base.latentDim(); }

  struct Config {
    int64_t Epochs = 10;
    int64_t BatchSize = 64;
    double LearningRate = 1e-3;
    double KlWeight = 1e-3;
    double Gamma = 2.0; ///< total-correlation weight.
    bool Verbose = false;
  };

  /// Alternates VAE updates (ELBO + gamma * TC estimate) with critic
  /// updates (cross-entropy joint-vs-permuted).
  void train(const Dataset &Set, const Config &TrainConfig, Rng &Generator);

private:
  Vae Base;
  Sequential Critic;
};

} // namespace genprove

#endif // GENPROVE_TRAIN_FACTOR_VAE_H
