//===- train/acai.cpp -----------------------------------------*- C++ -*-===//

#include "src/train/acai.h"

#include "src/train/loss.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"

#include <cmath>
#include <cstdio>
#include <numeric>

namespace genprove {

Acai::Acai(Sequential EncoderNet, Sequential DecoderNet, Sequential CriticNet,
           int64_t Latent)
    : Encoder(std::move(EncoderNet)), Decoder(std::move(DecoderNet)),
      Critic(std::move(CriticNet)), Latent(Latent) {}

void Acai::train(const Dataset &Set, const Config &TrainConfig, Rng &Rand) {
  std::vector<Param> AeParams = Encoder.params();
  for (auto &P : Decoder.params())
    AeParams.push_back(P);
  Adam OptAe(AeParams, TrainConfig.LearningRate);
  Adam OptCritic(Critic.params(), TrainConfig.LearningRate);

  const int64_t N = Set.numImages();
  for (int64_t Epoch = 0; Epoch < TrainConfig.Epochs; ++Epoch) {
    std::vector<int64_t> Order(static_cast<size_t>(N));
    std::iota(Order.begin(), Order.end(), 0);
    for (int64_t I = N - 1; I > 0; --I)
      std::swap(Order[static_cast<size_t>(I)],
                Order[Rand.below(static_cast<uint64_t>(I + 1))]);

    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += TrainConfig.BatchSize) {
      const int64_t End = std::min(N, Start + TrainConfig.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      const int64_t B = static_cast<int64_t>(Idx.size());
      Tensor Batch = gatherImages(Set, Idx);

      // --- AE reconstruction pass. ---
      Encoder.zeroGrads();
      Decoder.zeroGrads();
      const Tensor Z = Encoder.forward(Batch);
      const Tensor Recon = Decoder.forward(Z);
      Tensor GradRecon;
      const double ReconLoss = mseLoss(Recon, Batch, GradRecon);
      const Tensor GradZ = Decoder.backward(GradRecon);
      Encoder.backward(GradZ);

      // --- Adversarial pass: decode a latent mixture, fool the critic. ---
      // Mix each sample with a shuffled partner at a random alpha in
      // [0, 0.5] (ACAI convention).
      Tensor Zmix({B, Latent});
      std::vector<double> Alphas(static_cast<size_t>(B));
      std::vector<int64_t> Partner(static_cast<size_t>(B));
      for (int64_t I = 0; I < B; ++I) {
        Partner[static_cast<size_t>(I)] =
            static_cast<int64_t>(Rand.below(static_cast<uint64_t>(B)));
        Alphas[static_cast<size_t>(I)] = Rand.uniform(0.0, 0.5);
      }
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          const double A = Alphas[static_cast<size_t>(I)];
          Zmix.at(I, J) = (1.0 - A) * Z.at(I, J) +
                          A * Z.at(Partner[static_cast<size_t>(I)], J);
        }
      const Tensor Xmix = Decoder.forward(Zmix);
      const Tensor AlphaHat = Critic.forward(Xmix); // [B, 1]
      // AE wants critic(x_mix) -> 0.
      Tensor GradAlphaHat({B, 1});
      double AdvLoss = 0.0;
      for (int64_t I = 0; I < B; ++I) {
        AdvLoss += AlphaHat.at(I, 0) * AlphaHat.at(I, 0);
        GradAlphaHat.at(I, 0) = TrainConfig.Lambda * 2.0 * AlphaHat.at(I, 0) /
                                static_cast<double>(B);
      }
      AdvLoss /= static_cast<double>(B);
      Critic.zeroGrads();
      const Tensor GradXmix = Critic.backward(GradAlphaHat);
      Critic.zeroGrads();
      const Tensor GradZmix = Decoder.backward(GradXmix);
      // Mixture gradients flow into the encoder through both endpoints;
      // dropping the (detached) partner path matches the reference ACAI.
      Tensor GradZFromMix({B, Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J)
          GradZFromMix.at(I, J) =
              (1.0 - Alphas[static_cast<size_t>(I)]) * GradZmix.at(I, J);
      // Re-run the encoder forward to restore its caches for this input.
      Encoder.forward(Batch);
      Encoder.backward(GradZFromMix);
      OptAe.step();
      EpochLoss += ReconLoss + TrainConfig.Lambda * AdvLoss;
      ++NumBatches;

      // --- Critic pass: predict alpha on mixtures, 0 on real data. ---
      Critic.zeroGrads();
      {
        const Tensor AlphaPred = Critic.forward(Xmix);
        Tensor Grad({B, 1});
        for (int64_t I = 0; I < B; ++I)
          Grad.at(I, 0) = 2.0 *
                          (AlphaPred.at(I, 0) -
                           Alphas[static_cast<size_t>(I)]) /
                          static_cast<double>(B);
        Critic.backward(Grad);
      }
      {
        const Tensor AlphaReal = Critic.forward(Batch);
        Tensor Grad({B, 1});
        for (int64_t I = 0; I < B; ++I)
          Grad.at(I, 0) = 2.0 * AlphaReal.at(I, 0) / static_cast<double>(B);
        Critic.backward(Grad);
      }
      OptCritic.step();
    }
    if (TrainConfig.Verbose)
      std::printf("  acai epoch %lld loss %.5f\n",
                  static_cast<long long>(Epoch),
                  EpochLoss / static_cast<double>(NumBatches));
  }
}

} // namespace genprove
