//===- train/gan.cpp ------------------------------------------*- C++ -*-===//

#include "src/train/gan.h"

#include "src/train/loss.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"

#include <cstdio>
#include <numeric>

namespace genprove {

Gan::Gan(Sequential GeneratorNet, Sequential DiscriminatorNet, int64_t Latent)
    : Generator(std::move(GeneratorNet)),
      Discriminator(std::move(DiscriminatorNet)), Latent(Latent) {}

void Gan::train(const Dataset &Set, const Config &TrainConfig, Rng &Rand) {
  Adam OptG(Generator.params(), TrainConfig.LearningRate);
  Adam OptD(Discriminator.params(), TrainConfig.LearningRate);
  const int64_t N = Set.numImages();

  for (int64_t Epoch = 0; Epoch < TrainConfig.Epochs; ++Epoch) {
    std::vector<int64_t> Order(static_cast<size_t>(N));
    std::iota(Order.begin(), Order.end(), 0);
    for (int64_t I = N - 1; I > 0; --I)
      std::swap(Order[static_cast<size_t>(I)],
                Order[Rand.below(static_cast<uint64_t>(I + 1))]);

    double Dloss = 0.0, Gloss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += TrainConfig.BatchSize) {
      const int64_t End = std::min(N, Start + TrainConfig.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      const int64_t B = static_cast<int64_t>(Idx.size());
      Tensor Real = gatherImages(Set, Idx);
      Tensor Noise = Tensor::randn({B, Latent}, Rand);

      // --- Discriminator step: real -> 1. ---
      Discriminator.zeroGrads();
      {
        const Tensor ScoreReal = Discriminator.forward(Real);
        Tensor GradReal;
        Dloss += mseLoss(ScoreReal, Tensor::full(ScoreReal.shape(), 1.0),
                         GradReal);
        Discriminator.backward(GradReal);
      }
      // Fake -> 0 (generator detached: its grads are not stepped here).
      const Tensor Fake = Generator.forward(Noise);
      {
        const Tensor ScoreFake = Discriminator.forward(Fake);
        Tensor GradFake;
        Dloss += mseLoss(ScoreFake, Tensor::zeros(ScoreFake.shape()),
                         GradFake);
        Discriminator.backward(GradFake);
      }
      OptD.step();

      // --- Generator step: D(G(z)) -> 1. ---
      Generator.zeroGrads();
      const Tensor Fake2 = Generator.forward(Noise);
      const Tensor ScoreFake2 = Discriminator.forward(Fake2);
      Tensor GradScore;
      Gloss += mseLoss(ScoreFake2, Tensor::full(ScoreFake2.shape(), 1.0),
                       GradScore);
      Discriminator.zeroGrads(); // discard D grads from the G pass
      const Tensor GradImages = Discriminator.backward(GradScore);
      Discriminator.zeroGrads();
      Generator.backward(GradImages);
      OptG.step();
      ++NumBatches;
    }
    if (TrainConfig.Verbose)
      std::printf("  gan epoch %lld D %.4f G %.4f\n",
                  static_cast<long long>(Epoch),
                  Dloss / static_cast<double>(NumBatches),
                  Gloss / static_cast<double>(NumBatches));
  }
}

} // namespace genprove
