//===- train/vae.h - Variational autoencoder -------------------*- C++ -*-===//
///
/// \file
/// The VAE (Kingma & Welling) used by every generative specification in the
/// paper. The encoder emits [mu, logvar]; encode() returns the mean, which
/// is the deterministic embedding the specifications interpolate between.
/// Reconstruction uses MSE (the paper modifies all models "to use MSE as
/// their reconstruction loss to avoid sigmoids").
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_VAE_H
#define GENPROVE_TRAIN_VAE_H

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// Encoder/decoder pair with the VAE training loop.
class Vae {
public:
  /// Takes ownership of the two networks. Encoder output dim must be
  /// 2 * Latent.
  Vae(Sequential EncoderNet, Sequential DecoderNet, int64_t Latent);

  /// Deterministic embedding: the mean head of the encoder. [B, Latent].
  Tensor encode(const Tensor &Images);

  /// Decode latents [B, Latent] to images.
  Tensor decode(const Tensor &Latents);

  Sequential &encoder() { return Encoder; }
  Sequential &decoder() { return Decoder; }
  const Sequential &decoder() const { return Decoder; }
  int64_t latentDim() const { return Latent; }

  /// VAE training configuration.
  struct Config {
    int64_t Epochs = 10;
    int64_t BatchSize = 64;
    double LearningRate = 1e-3;
    double KlWeight = 1e-3; ///< beta on the KL term (small: crisp recons).
    bool Verbose = false;
  };

  /// Train with Adam on the ELBO (MSE reconstruction + beta * KL).
  /// Returns the final epoch's mean loss.
  double train(const Dataset &Set, const Config &TrainConfig, Rng &Generator);

private:
  Sequential Encoder;
  Sequential Decoder;
  int64_t Latent;
};

} // namespace genprove

#endif // GENPROVE_TRAIN_VAE_H
