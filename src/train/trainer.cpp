//===- train/trainer.cpp --------------------------------------*- C++ -*-===//

#include "src/train/trainer.h"

#include "src/tensor/ops.h"
#include "src/train/loss.h"
#include "src/train/optimizer.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace genprove {

Tensor gatherImages(const Dataset &Set, const std::vector<int64_t> &Indices) {
  const int64_t Numel = Set.Channels * Set.Size * Set.Size;
  Tensor Batch({static_cast<int64_t>(Indices.size()), Set.Channels, Set.Size,
                Set.Size});
  for (size_t I = 0; I < Indices.size(); ++I)
    std::copy(Set.Images.data() + Indices[I] * Numel,
              Set.Images.data() + (Indices[I] + 1) * Numel,
              Batch.data() + static_cast<int64_t>(I) * Numel);
  return Batch;
}

namespace {

std::vector<int64_t> shuffledIndices(int64_t N, Rng &Generator) {
  std::vector<int64_t> Idx(static_cast<size_t>(N));
  std::iota(Idx.begin(), Idx.end(), 0);
  for (int64_t I = N - 1; I > 0; --I)
    std::swap(Idx[static_cast<size_t>(I)],
              Idx[Generator.below(static_cast<uint64_t>(I + 1))]);
  return Idx;
}

} // namespace

void trainClassifier(Sequential &Network, const Dataset &Set,
                     const TrainConfig &Config, Rng &Generator) {
  Adam Opt(Network.params(), Config.LearningRate);
  const int64_t N = Set.numImages();
  for (int64_t Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    const auto Order = shuffledIndices(N, Generator);
    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += Config.BatchSize) {
      const int64_t End = std::min(N, Start + Config.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      Tensor Batch = gatherImages(Set, Idx);
      std::vector<int64_t> Labels(Idx.size());
      for (size_t I = 0; I < Idx.size(); ++I)
        Labels[I] = Set.Labels[static_cast<size_t>(Idx[I])];
      const Tensor Logits = Network.forward(Batch);
      Tensor Grad;
      EpochLoss += softmaxCrossEntropyLoss(Logits, Labels, Grad);
      ++NumBatches;
      Network.backward(Grad);
      Opt.step();
    }
    if (Config.Verbose)
      std::printf("  classifier epoch %lld loss %.4f\n",
                  static_cast<long long>(Epoch),
                  EpochLoss / static_cast<double>(NumBatches));
  }
}

void trainAttributeDetector(Sequential &Network, const Dataset &Set,
                            const TrainConfig &Config, Rng &Generator) {
  Adam Opt(Network.params(), Config.LearningRate);
  const int64_t N = Set.numImages();
  const int64_t A = Set.numAttributes();
  for (int64_t Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    const auto Order = shuffledIndices(N, Generator);
    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += Config.BatchSize) {
      const int64_t End = std::min(N, Start + Config.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      Tensor Batch = gatherImages(Set, Idx);
      Tensor Targets({static_cast<int64_t>(Idx.size()), A});
      for (size_t I = 0; I < Idx.size(); ++I)
        for (int64_t J = 0; J < A; ++J)
          Targets.at(static_cast<int64_t>(I), J) =
              Set.Attributes.at(Idx[I], J);
      const Tensor Logits = Network.forward(Batch);
      Tensor Grad;
      EpochLoss += bceWithLogitsLoss(Logits, Targets, Grad);
      ++NumBatches;
      Network.backward(Grad);
      Opt.step();
    }
    if (Config.Verbose)
      std::printf("  detector epoch %lld loss %.4f\n",
                  static_cast<long long>(Epoch),
                  EpochLoss / static_cast<double>(NumBatches));
  }
}

double classifierAccuracy(Sequential &Network, const Dataset &Set) {
  const int64_t N = Set.numImages();
  int64_t Correct = 0;
  const int64_t Chunk = 128;
  for (int64_t Start = 0; Start < N; Start += Chunk) {
    const int64_t End = std::min(N, Start + Chunk);
    std::vector<int64_t> Idx;
    for (int64_t I = Start; I < End; ++I)
      Idx.push_back(I);
    const Tensor Logits = Network.predict(gatherImages(Set, Idx));
    const auto Pred = argmaxRows(Logits);
    for (size_t I = 0; I < Idx.size(); ++I)
      if (Pred[I] == Set.Labels[static_cast<size_t>(Idx[I])])
        ++Correct;
  }
  return static_cast<double>(Correct) / static_cast<double>(N);
}

double attributeAccuracy(Sequential &Network, const Dataset &Set) {
  const int64_t N = Set.numImages();
  const int64_t A = Set.numAttributes();
  int64_t Correct = 0;
  const int64_t Chunk = 128;
  for (int64_t Start = 0; Start < N; Start += Chunk) {
    const int64_t End = std::min(N, Start + Chunk);
    std::vector<int64_t> Idx;
    for (int64_t I = Start; I < End; ++I)
      Idx.push_back(I);
    const Tensor Logits = Network.predict(gatherImages(Set, Idx));
    for (size_t I = 0; I < Idx.size(); ++I)
      for (int64_t J = 0; J < A; ++J) {
        const bool Predicted = Logits.at(static_cast<int64_t>(I), J) > 0.0;
        const bool Actual = Set.Attributes.at(Idx[I], J) > 0.5;
        if (Predicted == Actual)
          ++Correct;
      }
  }
  return static_cast<double>(Correct) / static_cast<double>(N * A);
}

} // namespace genprove
