//===- train/factor_vae.cpp -----------------------------------*- C++ -*-===//

#include "src/train/factor_vae.h"

#include "src/train/loss.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace genprove {

FactorVae::FactorVae(Sequential EncoderNet, Sequential DecoderNet,
                     Sequential CriticNet, int64_t Latent)
    : Base(std::move(EncoderNet), std::move(DecoderNet), Latent),
      Critic(std::move(CriticNet)) {}

void FactorVae::train(const Dataset &Set, const Config &TrainConfig,
                      Rng &Rand) {
  Sequential &Encoder = Base.encoder();
  Sequential &Decoder = Base.decoder();
  const int64_t Latent = Base.latentDim();

  std::vector<Param> VaeParams = Encoder.params();
  for (auto &P : Decoder.params())
    VaeParams.push_back(P);
  Adam OptVae(VaeParams, TrainConfig.LearningRate);
  Adam OptCritic(Critic.params(), TrainConfig.LearningRate);

  const int64_t N = Set.numImages();
  for (int64_t Epoch = 0; Epoch < TrainConfig.Epochs; ++Epoch) {
    std::vector<int64_t> Order(static_cast<size_t>(N));
    std::iota(Order.begin(), Order.end(), 0);
    for (int64_t I = N - 1; I > 0; --I)
      std::swap(Order[static_cast<size_t>(I)],
                Order[Rand.below(static_cast<uint64_t>(I + 1))]);

    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += TrainConfig.BatchSize) {
      const int64_t End = std::min(N, Start + TrainConfig.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      const int64_t B = static_cast<int64_t>(Idx.size());
      Tensor Batch = gatherImages(Set, Idx);

      // --- VAE pass with the extra TC term. ---
      const Tensor MuLogVar = Encoder.forward(Batch);
      Tensor Mu({B, Latent}), LogVar({B, Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          Mu.at(I, J) = MuLogVar.at(I, J);
          LogVar.at(I, J) = std::clamp(MuLogVar.at(I, Latent + J), -8.0, 8.0);
        }
      Tensor Eps({B, Latent}), Z({B, Latent});
      for (int64_t I = 0; I < Z.numel(); ++I) {
        Eps[I] = Rand.normal();
        Z[I] = Mu[I] + std::exp(0.5 * LogVar[I]) * Eps[I];
      }

      const Tensor Recon = Decoder.forward(Z);
      Tensor GradRecon;
      const double ReconLoss = mseLoss(Recon, Batch, GradRecon);
      Tensor GradZ = Decoder.backward(GradRecon);

      // TC estimate: mean over the batch of (logit_joint - logit_perm).
      const Tensor TcLogits = Critic.forward(Z);
      double TcLoss = 0.0;
      Tensor GradTcLogits({B, 2});
      for (int64_t I = 0; I < B; ++I) {
        TcLoss += TcLogits.at(I, 0) - TcLogits.at(I, 1);
        GradTcLogits.at(I, 0) = TrainConfig.Gamma / static_cast<double>(B);
        GradTcLogits.at(I, 1) = -TrainConfig.Gamma / static_cast<double>(B);
      }
      TcLoss /= static_cast<double>(B);
      Critic.zeroGrads();
      const Tensor GradZTc = Critic.backward(GradTcLogits);
      Critic.zeroGrads(); // the critic is frozen during the VAE update
      GradZ.addInPlace(GradZTc);

      Tensor GradMu, GradLogVar;
      const double KlLoss = gaussianKlLoss(Mu, LogVar, GradMu, GradLogVar);
      Tensor GradMuLogVar({B, 2 * Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          const double Dz = GradZ.at(I, J);
          const double Sigma = std::exp(0.5 * LogVar.at(I, J));
          GradMuLogVar.at(I, J) = Dz + TrainConfig.KlWeight * GradMu.at(I, J);
          GradMuLogVar.at(I, Latent + J) =
              Dz * Eps.at(I, J) * 0.5 * Sigma +
              TrainConfig.KlWeight * GradLogVar.at(I, J);
        }
      Encoder.backward(GradMuLogVar);
      OptVae.step();
      EpochLoss +=
          ReconLoss + TrainConfig.KlWeight * KlLoss + TrainConfig.Gamma * TcLoss;
      ++NumBatches;

      // --- Critic pass: joint codes class 0, permuted codes class 1. ---
      Tensor Zperm = Z.clone();
      for (int64_t J = 0; J < Latent; ++J) {
        // Independent shuffle of each latent dimension across the batch.
        for (int64_t I = B - 1; I > 0; --I) {
          const int64_t K =
              static_cast<int64_t>(Rand.below(static_cast<uint64_t>(I + 1)));
          std::swap(Zperm.at(I, J), Zperm.at(K, J));
        }
      }
      Tensor Both({2 * B, Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          Both.at(I, J) = Z.at(I, J);
          Both.at(B + I, J) = Zperm.at(I, J);
        }
      std::vector<int64_t> Labels(static_cast<size_t>(2 * B), 0);
      for (int64_t I = 0; I < B; ++I)
        Labels[static_cast<size_t>(B + I)] = 1;
      const Tensor Logits = Critic.forward(Both);
      Tensor GradLogits;
      softmaxCrossEntropyLoss(Logits, Labels, GradLogits);
      Critic.backward(GradLogits);
      OptCritic.step();
    }
    if (TrainConfig.Verbose)
      std::printf("  factorvae epoch %lld loss %.5f\n",
                  static_cast<long long>(Epoch),
                  EpochLoss / static_cast<double>(NumBatches));
  }
}

} // namespace genprove
