//===- train/optimizer.cpp ------------------------------------*- C++ -*-===//

#include "src/train/optimizer.h"

#include <cmath>

namespace genprove {

Sgd::Sgd(std::vector<Param> InitParams, double Lr, double Momentum)
    : Optimizer(std::move(InitParams), Lr), Momentum(Momentum) {
  Velocity.reserve(Params.size());
  for (const auto &P : Params)
    Velocity.emplace_back(P.Value->shape());
}

void Sgd::step() {
  for (size_t I = 0; I < Params.size(); ++I) {
    Tensor &W = *Params[I].Value;
    Tensor &G = *Params[I].Grad;
    Tensor &Vel = Velocity[I];
    for (int64_t J = 0; J < W.numel(); ++J) {
      Vel[J] = Momentum * Vel[J] + G[J];
      W[J] -= Lr * Vel[J];
    }
    G.zero();
  }
}

Adam::Adam(std::vector<Param> InitParams, double Lr, double Beta1,
           double Beta2, double Eps)
    : Optimizer(std::move(InitParams), Lr), Beta1(Beta1), Beta2(Beta2),
      Eps(Eps) {
  M.reserve(Params.size());
  V.reserve(Params.size());
  for (const auto &P : Params) {
    M.emplace_back(P.Value->shape());
    V.emplace_back(P.Value->shape());
  }
}

void Adam::step() {
  ++T;
  const double BiasCorr1 = 1.0 - std::pow(Beta1, static_cast<double>(T));
  const double BiasCorr2 = 1.0 - std::pow(Beta2, static_cast<double>(T));
  for (size_t I = 0; I < Params.size(); ++I) {
    Tensor &W = *Params[I].Value;
    Tensor &G = *Params[I].Grad;
    Tensor &Mi = M[I];
    Tensor &Vi = V[I];
    for (int64_t J = 0; J < W.numel(); ++J) {
      Mi[J] = Beta1 * Mi[J] + (1.0 - Beta1) * G[J];
      Vi[J] = Beta2 * Vi[J] + (1.0 - Beta2) * G[J] * G[J];
      const double Mhat = Mi[J] / BiasCorr1;
      const double Vhat = Vi[J] / BiasCorr2;
      W[J] -= Lr * Mhat / (std::sqrt(Vhat) + Eps);
    }
    G.zero();
  }
}

double clipGradientNorm(const std::vector<Param> &Params, double MaxNorm) {
  double SqNorm = 0.0;
  for (const auto &P : Params)
    for (int64_t I = 0; I < P.Grad->numel(); ++I)
      SqNorm += (*P.Grad)[I] * (*P.Grad)[I];
  const double Norm = std::sqrt(SqNorm);
  if (Norm > MaxNorm && Norm > 0.0) {
    const double Scale = MaxNorm / Norm;
    for (const auto &P : Params)
      P.Grad->scaleInPlace(Scale);
  }
  return Norm;
}

} // namespace genprove
