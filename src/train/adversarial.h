//===- train/adversarial.h - Attacks and certified training ----*- C++ -*-===//
///
/// \file
/// The Table 6 toolbox: FGSM and PGD attacks, interval-bound-propagation
/// (IBP) forward/backward — the Box domain of DiffAI made differentiable —
/// plus the three training schemes the paper compares (standard, FGSM
/// adversarial, DiffAI/Box certified) and the Box-provable accuracy check.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_ADVERSARIAL_H
#define GENPROVE_TRAIN_ADVERSARIAL_H

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// One-step fast gradient sign attack (Goodfellow et al.).
/// Returns perturbed images clamped to [0, 1].
Tensor fgsmAttack(Sequential &Network, const Tensor &Images,
                  const std::vector<int64_t> &Labels, double Epsilon);

/// Projected gradient descent attack (Madry et al.).
Tensor pgdAttack(Sequential &Network, const Tensor &Images,
                 const std::vector<int64_t> &Labels, double Epsilon,
                 int64_t Steps, double StepSize, Rng &Generator);

/// Accuracy under a PGD adversary with the paper's setting (5 iterations).
double pgdAccuracy(Sequential &Network, const Dataset &Set, double Epsilon,
                   int64_t Steps, Rng &Generator);

/// Interval bounds on the network output for inputs in
/// [Images - Epsilon, Images + Epsilon] (clamped to [0, 1]).
struct IbpBounds {
  Tensor Lo;
  Tensor Hi;
};

/// Forward IBP through a network of Linear/Conv2d/ReLU/Flatten layers.
IbpBounds ibpForward(Sequential &Network, const Tensor &LoIn,
                     const Tensor &HiIn);

/// Per-layer cache of incoming bounds, for the differentiable IBP pass.
struct IbpCache {
  Tensor LoIn;
  Tensor HiIn;
};

/// Forward IBP that records per-layer caches for ibpBackward.
IbpBounds ibpForwardCached(Sequential &Network, const Tensor &LoIn,
                           const Tensor &HiIn, std::vector<IbpCache> &Caches);

/// Backward through the IBP computation: accumulates parameter gradients
/// from the given output-bound gradients (dL/dLo, dL/dHi).
void ibpBackward(Sequential &Network, const std::vector<IbpCache> &Caches,
                 Tensor DLo, Tensor DHi);

/// Fraction of test images whose epsilon-ball is certified by the Box
/// domain (lower bound of the true logit beats every other upper bound).
double boxProvableAccuracy(Sequential &Network, const Dataset &Set,
                           double Epsilon);

/// Training schemes of Table 6.
enum class TrainScheme {
  Standard,   ///< plain cross-entropy.
  Fgsm,       ///< 50/50 clean + FGSM adversarial examples.
  DiffAiBox,  ///< IBP certified training with an epsilon ramp.
};

struct RobustTrainConfig {
  int64_t Epochs = 6;
  int64_t BatchSize = 64;
  double LearningRate = 1e-3;
  double Epsilon = 0.1;
  /// DiffAI only: if true, skip the warmup/ramp and train at the full
  /// epsilon with kappa = 0.5 from the first step (used as the final
  /// stage of a curriculum).
  bool ConstantEpsilon = false;
  /// DiffAI only: cap on the certified-term gradient norm relative to the
  /// clean-term gradient norm. Deeper networks need smaller ratios to
  /// avoid collapsing to a constant classifier.
  double IbpGradRatio = 2.0;
  bool Verbose = false;
};

/// Train a classifier under the given scheme.
void trainRobustClassifier(Sequential &Network, const Dataset &Set,
                           TrainScheme Scheme, const RobustTrainConfig &Config,
                           Rng &Generator);

} // namespace genprove

#endif // GENPROVE_TRAIN_ADVERSARIAL_H
