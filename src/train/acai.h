//===- train/acai.h - ACAI interpolation training ---------------*- C++ -*-===//
///
/// \file
/// ACAI (Berthelot et al., 2018): an autoencoder trained with an
/// adversarial critic that predicts the interpolation coefficient alpha
/// from a decoded latent mixture. The regularizer pushes decoded
/// interpolations toward the data manifold, which is why ACAI achieves the
/// lowest discriminator upper bound in the paper's Table 7.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_ACAI_H
#define GENPROVE_TRAIN_ACAI_H

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// Deterministic autoencoder with the ACAI adversarial regularizer.
class Acai {
public:
  /// Encoder emits Latent units (deterministic AE, no logvar head);
  /// the critic maps images to a single alpha estimate.
  Acai(Sequential EncoderNet, Sequential DecoderNet, Sequential CriticNet,
       int64_t Latent);

  Tensor encode(const Tensor &Images) { return Encoder.predict(Images); }
  Tensor decode(const Tensor &Latents) { return Decoder.predict(Latents); }
  Sequential &encoder() { return Encoder; }
  Sequential &decoder() { return Decoder; }
  Sequential &critic() { return Critic; }
  int64_t latentDim() const { return Latent; }

  struct Config {
    int64_t Epochs = 10;
    int64_t BatchSize = 64;
    double LearningRate = 1e-3;
    double Lambda = 0.5; ///< weight of the adversarial term for the AE.
    bool Verbose = false;
  };

  /// Alternates AE updates (MSE + lambda * critic(x_alpha)^2) with critic
  /// updates ((critic(x_alpha) - alpha)^2 + critic(real)^2).
  void train(const Dataset &Set, const Config &TrainConfig, Rng &Generator);

private:
  Sequential Encoder;
  Sequential Decoder;
  Sequential Critic;
  int64_t Latent;
};

} // namespace genprove

#endif // GENPROVE_TRAIN_ACAI_H
