//===- train/optimizer.h - SGD and Adam ------------------------*- C++ -*-===//
///
/// \file
/// First-order optimizers over a parameter list. The paper trains all its
/// models with Adam (Appendix B); SGD is provided for the ablations and
/// tests.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_OPTIMIZER_H
#define GENPROVE_TRAIN_OPTIMIZER_H

#include "src/nn/layer.h"

namespace genprove {

/// Common optimizer interface; step() consumes accumulated gradients.
class Optimizer {
public:
  virtual ~Optimizer() = default;

  /// Apply one update using each parameter's accumulated gradient, then
  /// zero the gradients.
  virtual void step() = 0;

  /// Current learning rate.
  double learningRate() const { return Lr; }

  /// Adjust the learning rate (for schedules).
  void setLearningRate(double NewLr) { Lr = NewLr; }

protected:
  explicit Optimizer(std::vector<Param> Params, double Lr)
      : Params(std::move(Params)), Lr(Lr) {}

  std::vector<Param> Params;
  double Lr;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
public:
  Sgd(std::vector<Param> Params, double Lr, double Momentum = 0.0);
  void step() override;

private:
  double Momentum;
  std::vector<Tensor> Velocity;
};

/// Adam (Kingma & Ba), the paper's optimizer.
class Adam : public Optimizer {
public:
  Adam(std::vector<Param> Params, double Lr, double Beta1 = 0.9,
       double Beta2 = 0.999, double Eps = 1e-8);
  void step() override;

private:
  double Beta1;
  double Beta2;
  double Eps;
  int64_t T = 0;
  std::vector<Tensor> M;
  std::vector<Tensor> V;
};

/// Scale all accumulated gradients down so their global L2 norm is at most
/// MaxNorm (no-op when already below). Returns the pre-clip norm.
double clipGradientNorm(const std::vector<Param> &Params, double MaxNorm);

} // namespace genprove

#endif // GENPROVE_TRAIN_OPTIMIZER_H
