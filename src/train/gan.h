//===- train/gan.h - LSGAN discriminator/generator -------------*- C++ -*-===//
///
/// \file
/// A least-squares GAN (the paper's "vanilla GAN ... modified to use MSE
/// ... to avoid sigmoids"). The Table 7 experiment uses the trained
/// discriminator as a naive out-of-distribution detector: output > 0.5
/// reads as "real".
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_GAN_H
#define GENPROVE_TRAIN_GAN_H

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// Generator + discriminator pair with LSGAN training.
class Gan {
public:
  /// Generator maps [B, Latent] noise to images; discriminator maps images
  /// to a single real-ness score.
  Gan(Sequential GeneratorNet, Sequential DiscriminatorNet, int64_t Latent);

  Sequential &generator() { return Generator; }
  Sequential &discriminator() { return Discriminator; }
  int64_t latentDim() const { return Latent; }

  struct Config {
    int64_t Epochs = 10;
    int64_t BatchSize = 64;
    double LearningRate = 2e-4;
    bool Verbose = false;
  };

  /// LSGAN training: D minimizes (D(x)-1)^2 + D(G(z))^2, G minimizes
  /// (D(G(z))-1)^2.
  void train(const Dataset &Set, const Config &TrainConfig, Rng &Generator);

private:
  Sequential Generator;
  Sequential Discriminator;
  int64_t Latent;
};

} // namespace genprove

#endif // GENPROVE_TRAIN_GAN_H
