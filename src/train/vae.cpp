//===- train/vae.cpp ------------------------------------------*- C++ -*-===//

#include "src/train/vae.h"

#include "src/train/loss.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"
#include "src/util/error.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace genprove {

Vae::Vae(Sequential EncoderNet, Sequential DecoderNet, int64_t Latent)
    : Encoder(std::move(EncoderNet)), Decoder(std::move(DecoderNet)),
      Latent(Latent) {}

Tensor Vae::encode(const Tensor &Images) {
  const Tensor MuLogVar = Encoder.predict(Images);
  check(MuLogVar.dim(1) == 2 * Latent, "encoder must emit 2*latent units");
  const int64_t B = MuLogVar.dim(0);
  Tensor Mu({B, Latent});
  for (int64_t I = 0; I < B; ++I)
    for (int64_t J = 0; J < Latent; ++J)
      Mu.at(I, J) = MuLogVar.at(I, J);
  return Mu;
}

Tensor Vae::decode(const Tensor &Latents) { return Decoder.predict(Latents); }

double Vae::train(const Dataset &Set, const Config &TrainConfig,
                  Rng &Generator) {
  std::vector<Param> AllParams = Encoder.params();
  for (auto &P : Decoder.params())
    AllParams.push_back(P);
  Adam Opt(AllParams, TrainConfig.LearningRate);

  const int64_t N = Set.numImages();
  double LastEpochLoss = 0.0;
  for (int64_t Epoch = 0; Epoch < TrainConfig.Epochs; ++Epoch) {
    std::vector<int64_t> Order(static_cast<size_t>(N));
    std::iota(Order.begin(), Order.end(), 0);
    for (int64_t I = N - 1; I > 0; --I)
      std::swap(Order[static_cast<size_t>(I)],
                Order[Generator.below(static_cast<uint64_t>(I + 1))]);

    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += TrainConfig.BatchSize) {
      const int64_t End = std::min(N, Start + TrainConfig.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      const int64_t B = static_cast<int64_t>(Idx.size());
      Tensor Batch = gatherImages(Set, Idx);

      // Encoder forward; split into mu / logvar views.
      const Tensor MuLogVar = Encoder.forward(Batch);
      Tensor Mu({B, Latent});
      Tensor LogVar({B, Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          Mu.at(I, J) = MuLogVar.at(I, J);
          LogVar.at(I, J) = std::clamp(MuLogVar.at(I, Latent + J), -8.0, 8.0);
        }

      // Reparameterize: z = mu + exp(logvar/2) * eps.
      Tensor Eps({B, Latent});
      Tensor Z({B, Latent});
      for (int64_t I = 0; I < Z.numel(); ++I) {
        Eps[I] = Generator.normal();
        Z[I] = Mu[I] + std::exp(0.5 * LogVar[I]) * Eps[I];
      }

      // Decode + reconstruction loss.
      const Tensor Recon = Decoder.forward(Z);
      Tensor GradRecon;
      const double ReconLoss = mseLoss(Recon, Batch, GradRecon);
      const Tensor GradZFlat = Decoder.backward(GradRecon); // [B, Latent]

      // KL term.
      Tensor GradMu, GradLogVar;
      const double KlLoss = gaussianKlLoss(Mu, LogVar, GradMu, GradLogVar);

      // Assemble encoder output gradient.
      Tensor GradMuLogVar({B, 2 * Latent});
      for (int64_t I = 0; I < B; ++I)
        for (int64_t J = 0; J < Latent; ++J) {
          const double Dz = GradZFlat.at(I, J);
          const double Sigma = std::exp(0.5 * LogVar.at(I, J));
          GradMuLogVar.at(I, J) =
              Dz + TrainConfig.KlWeight * GradMu.at(I, J);
          GradMuLogVar.at(I, Latent + J) =
              Dz * Eps.at(I, J) * 0.5 * Sigma +
              TrainConfig.KlWeight * GradLogVar.at(I, J);
        }
      Encoder.backward(GradMuLogVar);
      Opt.step();

      EpochLoss += ReconLoss + TrainConfig.KlWeight * KlLoss;
      ++NumBatches;
    }
    LastEpochLoss = EpochLoss / static_cast<double>(NumBatches);
    if (TrainConfig.Verbose)
      std::printf("  vae epoch %lld loss %.5f\n",
                  static_cast<long long>(Epoch), LastEpochLoss);
  }
  return LastEpochLoss;
}

} // namespace genprove
