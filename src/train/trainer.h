//===- train/trainer.h - Supervised training loops -------------*- C++ -*-===//
///
/// \file
/// Training loops for the paper's target networks: multi-class classifiers
/// (softmax cross-entropy, Zappos50k/MNIST) and multi-label attribute
/// detectors (BCE with logits, CelebA; "an attribute is detected if the
/// i-th output is strictly positive").
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_TRAIN_TRAINER_H
#define GENPROVE_TRAIN_TRAINER_H

#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/util/rng.h"

namespace genprove {

/// Knobs shared by the supervised loops.
struct TrainConfig {
  int64_t Epochs = 10;
  int64_t BatchSize = 64;
  double LearningRate = 1e-3;
  bool Verbose = false;
};

/// Extract a [B, C, H, W] mini-batch by index list.
Tensor gatherImages(const Dataset &Set, const std::vector<int64_t> &Indices);

/// Train a multi-class classifier with Adam + softmax cross-entropy.
void trainClassifier(Sequential &Network, const Dataset &Set,
                     const TrainConfig &Config, Rng &Generator);

/// Train a multi-label attribute detector with Adam + BCE-with-logits.
void trainAttributeDetector(Sequential &Network, const Dataset &Set,
                            const TrainConfig &Config, Rng &Generator);

/// Top-1 accuracy of a classifier on a labeled dataset.
double classifierAccuracy(Sequential &Network, const Dataset &Set);

/// Mean per-attribute sign accuracy of an attribute detector.
double attributeAccuracy(Sequential &Network, const Dataset &Set);

} // namespace genprove

#endif // GENPROVE_TRAIN_TRAINER_H
