//===- train/adversarial.cpp ----------------------------------*- C++ -*-===//

#include "src/train/adversarial.h"

#include "src/nn/conv.h"
#include "src/nn/linear.h"
#include "src/tensor/ops.h"
#include "src/train/loss.h"
#include "src/train/optimizer.h"
#include "src/train/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace genprove {

namespace {

Tensor inputGradient(Sequential &Network, const Tensor &Images,
                     const std::vector<int64_t> &Labels) {
  Network.zeroGrads();
  const Tensor Logits = Network.forward(Images);
  Tensor Grad;
  softmaxCrossEntropyLoss(Logits, Labels, Grad);
  Tensor GradInput = Network.backward(Grad);
  Network.zeroGrads(); // attacks must not leak into parameter updates
  return GradInput;
}

Tensor clamp01(Tensor T) {
  for (int64_t I = 0; I < T.numel(); ++I)
    T[I] = std::clamp(T[I], 0.0, 1.0);
  return T;
}

} // namespace

Tensor fgsmAttack(Sequential &Network, const Tensor &Images,
                  const std::vector<int64_t> &Labels, double Epsilon) {
  const Tensor Grad = inputGradient(Network, Images, Labels);
  Tensor Adv = Images.clone();
  for (int64_t I = 0; I < Adv.numel(); ++I)
    Adv[I] += Epsilon * (Grad[I] > 0.0 ? 1.0 : (Grad[I] < 0.0 ? -1.0 : 0.0));
  return clamp01(std::move(Adv));
}

Tensor pgdAttack(Sequential &Network, const Tensor &Images,
                 const std::vector<int64_t> &Labels, double Epsilon,
                 int64_t Steps, double StepSize, Rng &Generator) {
  Tensor Adv = Images.clone();
  for (int64_t I = 0; I < Adv.numel(); ++I)
    Adv[I] += Generator.uniform(-Epsilon, Epsilon);
  Adv = clamp01(std::move(Adv));
  for (int64_t Step = 0; Step < Steps; ++Step) {
    const Tensor Grad = inputGradient(Network, Adv, Labels);
    for (int64_t I = 0; I < Adv.numel(); ++I) {
      Adv[I] += StepSize *
                (Grad[I] > 0.0 ? 1.0 : (Grad[I] < 0.0 ? -1.0 : 0.0));
      // Project back into the epsilon ball.
      Adv[I] = std::clamp(Adv[I], Images[I] - Epsilon, Images[I] + Epsilon);
      Adv[I] = std::clamp(Adv[I], 0.0, 1.0);
    }
  }
  return Adv;
}

double pgdAccuracy(Sequential &Network, const Dataset &Set, double Epsilon,
                   int64_t Steps, Rng &Generator) {
  const int64_t N = Set.numImages();
  int64_t Correct = 0;
  const int64_t Chunk = 64;
  for (int64_t Start = 0; Start < N; Start += Chunk) {
    const int64_t End = std::min(N, Start + Chunk);
    std::vector<int64_t> Idx;
    std::vector<int64_t> Labels;
    for (int64_t I = Start; I < End; ++I) {
      Idx.push_back(I);
      Labels.push_back(Set.Labels[static_cast<size_t>(I)]);
    }
    const Tensor Batch = gatherImages(Set, Idx);
    const Tensor Adv = pgdAttack(Network, Batch, Labels, Epsilon, Steps,
                                 Epsilon / 2.0, Generator);
    const auto Pred = argmaxRows(Network.predict(Adv));
    for (size_t I = 0; I < Labels.size(); ++I)
      if (Pred[I] == Labels[I])
        ++Correct;
  }
  return static_cast<double>(Correct) / static_cast<double>(N);
}

//===----------------------------------------------------------------------===//
// Differentiable interval bound propagation.
//===----------------------------------------------------------------------===//

namespace {

/// Split a weight tensor into positive and negative parts.
void splitWeight(const Tensor &W, Tensor &Pos, Tensor &Neg) {
  Pos = Tensor(W.shape());
  Neg = Tensor(W.shape());
  for (int64_t I = 0; I < W.numel(); ++I) {
    Pos[I] = std::max(W[I], 0.0);
    Neg[I] = std::min(W[I], 0.0);
  }
}

IbpBounds ibpForwardImpl(Sequential &Network, const Tensor &LoIn,
                         const Tensor &HiIn, std::vector<IbpCache> *Caches) {
  Tensor Lo = LoIn;
  Tensor Hi = HiIn;
  for (size_t LayerIdx = 0; LayerIdx < Network.size(); ++LayerIdx) {
    Layer &L = Network.layer(LayerIdx);
    if (Caches)
      (*Caches)[LayerIdx] = {Lo, Hi};
    switch (L.kind()) {
    case Layer::Kind::Linear: {
      auto &Lin = static_cast<Linear &>(L);
      Tensor Pos, Neg;
      splitWeight(Lin.weight(), Pos, Neg);
      Tensor NewLo = matmulTransB(Lo, Pos);
      NewLo.addInPlace(matmulTransB(Hi, Neg));
      Tensor NewHi = matmulTransB(Hi, Pos);
      NewHi.addInPlace(matmulTransB(Lo, Neg));
      for (int64_t I = 0; I < NewLo.dim(0); ++I)
        for (int64_t J = 0; J < NewLo.dim(1); ++J) {
          NewLo.at(I, J) += Lin.bias()[J];
          NewHi.at(I, J) += Lin.bias()[J];
        }
      Lo = std::move(NewLo);
      Hi = std::move(NewHi);
      break;
    }
    case Layer::Kind::Conv2d: {
      auto &Conv = static_cast<Conv2d &>(L);
      Tensor Pos, Neg;
      splitWeight(Conv.weight(), Pos, Neg);
      Tensor NewLo = conv2d(Lo, Pos, Conv.bias(), Conv.geometry());
      NewLo.addInPlace(conv2d(Hi, Neg, Tensor(), Conv.geometry()));
      Tensor NewHi = conv2d(Hi, Pos, Conv.bias(), Conv.geometry());
      NewHi.addInPlace(conv2d(Lo, Neg, Tensor(), Conv.geometry()));
      Lo = std::move(NewLo);
      Hi = std::move(NewHi);
      break;
    }
    case Layer::Kind::ReLU:
      Lo = relu(Lo);
      Hi = relu(Hi);
      break;
    case Layer::Kind::Flatten: {
      Lo = L.applyAffine(Lo);
      Hi = L.applyAffine(Hi);
      break;
    }
    default:
      fatalError("IBP does not support layer: " + L.describe());
    }
  }
  return {std::move(Lo), std::move(Hi)};
}

} // namespace

void ibpBackward(Sequential &Network, const std::vector<IbpCache> &Caches,
                 Tensor DLo, Tensor DHi) {
  for (size_t Rev = Network.size(); Rev-- > 0;) {
    Layer &L = Network.layer(Rev);
    const IbpCache &Cache = Caches[Rev];
    switch (L.kind()) {
    case Layer::Kind::Linear: {
      auto &Lin = static_cast<Linear &>(L);
      Tensor Pos, Neg;
      splitWeight(Lin.weight(), Pos, Neg);
      auto Params = Lin.params();
      Tensor &GradW = *Params[0].Grad;
      Tensor &GradB = *Params[1].Grad;
      // dW accumulates through whichever branch (pos/neg) the entry uses.
      Tensor GwPos = matmulTransA(DLo, Cache.LoIn); // lo' <- pos * lo
      GwPos.addInPlace(matmulTransA(DHi, Cache.HiIn));
      Tensor GwNeg = matmulTransA(DLo, Cache.HiIn);
      GwNeg.addInPlace(matmulTransA(DHi, Cache.LoIn));
      for (int64_t I = 0; I < GradW.numel(); ++I)
        GradW[I] += Lin.weight()[I] >= 0.0 ? GwPos[I] : GwNeg[I];
      for (int64_t I = 0; I < DLo.dim(0); ++I)
        for (int64_t J = 0; J < DLo.dim(1); ++J)
          GradB[J] += DLo.at(I, J) + DHi.at(I, J);
      Tensor NewDLo = matmul(DLo, Pos);
      NewDLo.addInPlace(matmul(DHi, Neg));
      Tensor NewDHi = matmul(DHi, Pos);
      NewDHi.addInPlace(matmul(DLo, Neg));
      DLo = std::move(NewDLo);
      DHi = std::move(NewDHi);
      break;
    }
    case Layer::Kind::Conv2d: {
      auto &Conv = static_cast<Conv2d &>(L);
      Tensor Pos, Neg;
      splitWeight(Conv.weight(), Pos, Neg);
      auto Params = Conv.params();
      Tensor &GradW = *Params[0].Grad;
      Tensor &GradB = *Params[1].Grad;
      Tensor GwPos(Conv.weight().shape());
      Tensor GwNeg(Conv.weight().shape());
      Tensor GbScratch(GradB.shape());
      // Four data paths: (lo,Pos)->lo', (hi,Neg)->lo', (hi,Pos)->hi',
      // (lo,Neg)->hi'.
      Tensor NewDLo = conv2dBackward(Cache.LoIn, Pos, DLo, Conv.geometry(),
                                     GwPos, GbScratch);
      NewDLo.addInPlace(conv2dBackward(Cache.LoIn, Neg, DHi, Conv.geometry(),
                                       GwNeg, GbScratch));
      Tensor NewDHi = conv2dBackward(Cache.HiIn, Pos, DHi, Conv.geometry(),
                                     GwPos, GbScratch);
      NewDHi.addInPlace(conv2dBackward(Cache.HiIn, Neg, DLo, Conv.geometry(),
                                       GwNeg, GbScratch));
      for (int64_t I = 0; I < GradW.numel(); ++I)
        GradW[I] += Conv.weight()[I] >= 0.0 ? GwPos[I] : GwNeg[I];
      // Bias contributes to both bounds once each (GbScratch counted both
      // DLo and DHi exactly once across the four calls above... but each
      // was added twice, once per weight sign split), so halve it.
      for (int64_t I = 0; I < GradB.numel(); ++I)
        GradB[I] += 0.5 * GbScratch[I];
      DLo = std::move(NewDLo);
      DHi = std::move(NewDHi);
      break;
    }
    case Layer::Kind::ReLU: {
      for (int64_t I = 0; I < DLo.numel(); ++I) {
        DLo[I] *= Cache.LoIn[I] > 0.0 ? 1.0 : 0.0;
        DHi[I] *= Cache.HiIn[I] > 0.0 ? 1.0 : 0.0;
      }
      break;
    }
    case Layer::Kind::Flatten: {
      DLo = DLo.reshaped(Cache.LoIn.shape());
      DHi = DHi.reshaped(Cache.HiIn.shape());
      break;
    }
    default:
      fatalError("IBP backward does not support layer: " + L.describe());
    }
  }
}

namespace {

/// Worst-case logits: lower bound for the true class, upper elsewhere.
Tensor worstCaseLogits(const IbpBounds &Bounds,
                       const std::vector<int64_t> &Labels) {
  Tensor Z = Bounds.Hi.clone();
  for (int64_t I = 0; I < Z.dim(0); ++I)
    Z.at(I, Labels[static_cast<size_t>(I)]) =
        Bounds.Lo.at(I, Labels[static_cast<size_t>(I)]);
  return Z;
}

} // namespace

IbpBounds ibpForward(Sequential &Network, const Tensor &LoIn,
                     const Tensor &HiIn) {
  return ibpForwardImpl(Network, LoIn, HiIn, nullptr);
}

IbpBounds ibpForwardCached(Sequential &Network, const Tensor &LoIn,
                           const Tensor &HiIn, std::vector<IbpCache> &Caches) {
  Caches.resize(Network.size());
  return ibpForwardImpl(Network, LoIn, HiIn, &Caches);
}

double boxProvableAccuracy(Sequential &Network, const Dataset &Set,
                           double Epsilon) {
  const int64_t N = Set.numImages();
  int64_t Certified = 0;
  const int64_t Chunk = 64;
  for (int64_t Start = 0; Start < N; Start += Chunk) {
    const int64_t End = std::min(N, Start + Chunk);
    std::vector<int64_t> Idx;
    for (int64_t I = Start; I < End; ++I)
      Idx.push_back(I);
    const Tensor Batch = gatherImages(Set, Idx);
    Tensor Lo = Batch.clone(), Hi = Batch.clone();
    for (int64_t I = 0; I < Lo.numel(); ++I) {
      Lo[I] = std::clamp(Lo[I] - Epsilon, 0.0, 1.0);
      Hi[I] = std::clamp(Hi[I] + Epsilon, 0.0, 1.0);
    }
    const IbpBounds Bounds = ibpForward(Network, Lo, Hi);
    for (size_t I = 0; I < Idx.size(); ++I) {
      const int64_t Label = Set.Labels[static_cast<size_t>(Idx[I])];
      bool Ok = true;
      for (int64_t J = 0; J < Bounds.Lo.dim(1); ++J)
        if (J != Label && Bounds.Hi.at(static_cast<int64_t>(I), J) >=
                              Bounds.Lo.at(static_cast<int64_t>(I), Label))
          Ok = false;
      if (Ok)
        ++Certified;
    }
  }
  return static_cast<double>(Certified) / static_cast<double>(N);
}

void trainRobustClassifier(Sequential &Network, const Dataset &Set,
                           TrainScheme Scheme, const RobustTrainConfig &Config,
                           Rng &Generator) {
  Adam Opt(Network.params(), Config.LearningRate);
  const int64_t N = Set.numImages();
  const int64_t TotalSteps =
      Config.Epochs * ((N + Config.BatchSize - 1) / Config.BatchSize);
  int64_t Step = 0;

  for (int64_t Epoch = 0; Epoch < Config.Epochs; ++Epoch) {
    std::vector<int64_t> Order(static_cast<size_t>(N));
    std::iota(Order.begin(), Order.end(), 0);
    for (int64_t I = N - 1; I > 0; --I)
      std::swap(Order[static_cast<size_t>(I)],
                Order[Generator.below(static_cast<uint64_t>(I + 1))]);

    double EpochLoss = 0.0;
    int64_t NumBatches = 0;
    for (int64_t Start = 0; Start < N; Start += Config.BatchSize) {
      const int64_t End = std::min(N, Start + Config.BatchSize);
      const std::vector<int64_t> Idx(Order.begin() + Start,
                                     Order.begin() + End);
      Tensor Batch = gatherImages(Set, Idx);
      std::vector<int64_t> Labels(Idx.size());
      for (size_t I = 0; I < Idx.size(); ++I)
        Labels[I] = Set.Labels[static_cast<size_t>(Idx[I])];

      switch (Scheme) {
      case TrainScheme::Standard: {
        const Tensor Logits = Network.forward(Batch);
        Tensor Grad;
        EpochLoss += softmaxCrossEntropyLoss(Logits, Labels, Grad);
        Network.backward(Grad);
        break;
      }
      case TrainScheme::Fgsm: {
        // 50/50 mixture of clean and FGSM examples (Goodfellow et al.).
        const Tensor Adv =
            fgsmAttack(Network, Batch, Labels, Config.Epsilon);
        {
          const Tensor Logits = Network.forward(Batch);
          Tensor Grad;
          EpochLoss += 0.5 * softmaxCrossEntropyLoss(Logits, Labels, Grad);
          Grad.scaleInPlace(0.5);
          Network.backward(Grad);
        }
        {
          const Tensor Logits = Network.forward(Adv);
          Tensor Grad;
          EpochLoss += 0.5 * softmaxCrossEntropyLoss(Logits, Labels, Grad);
          Grad.scaleInPlace(0.5);
          Network.backward(Grad);
        }
        break;
      }
      case TrainScheme::DiffAiBox: {
        // Gowal et al. schedule as used by DiffAI: a clean warmup for the
        // first 15% of steps, then a slow linear epsilon ramp until 90%,
        // with kappa annealed from 1 to 0.5 alongside it.
        const double Progress =
            static_cast<double>(Step) / std::max<double>(TotalSteps, 1);
        const double Ramp =
            Config.ConstantEpsilon
                ? 1.0
                : std::clamp((Progress - 0.15) / 0.75, 0.0, 1.0);
        const double Eps = Config.Epsilon * Ramp;
        const double Kappa = 1.0 - 0.5 * Ramp; // final mix: 50/50
        // Clean term.
        double CleanNorm = 0.0;
        std::vector<Tensor> CleanGrads;
        {
          const Tensor Logits = Network.forward(Batch);
          Tensor Grad;
          EpochLoss += Kappa * softmaxCrossEntropyLoss(Logits, Labels, Grad);
          Grad.scaleInPlace(Kappa);
          Network.backward(Grad);
          // Stash the clean gradient so the (potentially enormous) IBP
          // gradient can be rescaled relative to it before mixing. Without
          // this the worst-case term dominates every update as soon as the
          // bounds get loose and training collapses to a constant net.
          for (auto &P : Network.params()) {
            CleanGrads.push_back(P.Grad->clone());
            for (int64_t I = 0; I < P.Grad->numel(); ++I)
              CleanNorm += (*P.Grad)[I] * (*P.Grad)[I];
            P.Grad->zero();
          }
          CleanNorm = std::sqrt(CleanNorm);
        }
        // Worst-case interval term.
        if (Eps > 0.0) {
          Tensor Lo = Batch.clone(), Hi = Batch.clone();
          for (int64_t I = 0; I < Lo.numel(); ++I) {
            Lo[I] = std::clamp(Lo[I] - Eps, 0.0, 1.0);
            Hi[I] = std::clamp(Hi[I] + Eps, 0.0, 1.0);
          }
          std::vector<IbpCache> Caches;
          const IbpBounds Bounds = ibpForwardCached(Network, Lo, Hi, Caches);
          const Tensor WorstZ = worstCaseLogits(Bounds, Labels);
          Tensor GradZ;
          EpochLoss +=
              (1.0 - Kappa) * softmaxCrossEntropyLoss(WorstZ, Labels, GradZ);
          GradZ.scaleInPlace(1.0 - Kappa);
          // Split dZ back into dLo (true class) and dHi (others).
          Tensor DLo(GradZ.shape());
          Tensor DHi(GradZ.shape());
          for (int64_t I = 0; I < GradZ.dim(0); ++I)
            for (int64_t J = 0; J < GradZ.dim(1); ++J) {
              if (J == Labels[static_cast<size_t>(I)])
                DLo.at(I, J) = GradZ.at(I, J);
              else
                DHi.at(I, J) = GradZ.at(I, J);
            }
          ibpBackward(Network, Caches, std::move(DLo), std::move(DHi));
          // Keep the certified term comparable to the clean term, with a
          // floor so it keeps tightening bounds once the clean loss is
          // small.
          clipGradientNorm(Network.params(),
                           std::max(Config.IbpGradRatio * CleanNorm, 0.25));
        }
        // Mix the stashed clean gradient back in.
        {
          size_t Idx = 0;
          for (auto &P : Network.params())
            P.Grad->addInPlace(CleanGrads[Idx++]);
        }
        break;
      }
      }
      // IBP losses flow gradients through the (potentially huge) bound
      // magnitudes; clip globally to keep certified training stable.
      if (Scheme == TrainScheme::DiffAiBox)
        clipGradientNorm(Network.params(), 1.0);
      Opt.step();
      ++Step;
      ++NumBatches;
    }
    if (Config.Verbose)
      std::printf("  robust(%d) epoch %lld loss %.4f\n",
                  static_cast<int>(Scheme), static_cast<long long>(Epoch),
                  EpochLoss / static_cast<double>(NumBatches));
  }
}

} // namespace genprove
