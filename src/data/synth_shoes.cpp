//===- data/synth_shoes.cpp -----------------------------------*- C++ -*-===//

#include "src/data/synth_shoes.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

const char *ShoeClassNames[NumShoeClasses] = {
    "Sneaker", "Boot",    "Sandal", "Heel",
    "Loafer",  "Slipper", "Oxford", "FlipFlop",
};

void blend(Tensor &Img, int64_t Size, int64_t X, int64_t Y, double R, double G,
           double B, double Alpha = 1.0) {
  if (X < 0 || X >= Size || Y < 0 || Y >= Size)
    return;
  Img.at(0, 0, Y, X) = (1 - Alpha) * Img.at(0, 0, Y, X) + Alpha * R;
  Img.at(0, 1, Y, X) = (1 - Alpha) * Img.at(0, 1, Y, X) + Alpha * G;
  Img.at(0, 2, Y, X) = (1 - Alpha) * Img.at(0, 2, Y, X) + Alpha * B;
}

} // namespace

Tensor renderShoe(SynthShoeClass Class, int64_t Size, Rng &Generator) {
  Tensor Img({1, 3, Size, Size});
  const double S = static_cast<double>(Size);

  // Neutral studio background (Zappos images are on white).
  for (int64_t I = 0; I < Img.numel(); ++I)
    Img[I] = 0.92;

  // Base body color; jitter per item.
  const double Hue = Generator.uniform();
  const double R = 0.25 + 0.5 * Hue;
  const double G = 0.2 + 0.4 * (1.0 - Hue);
  const double B = 0.2 + 0.4 * std::fabs(Hue - 0.5);
  const double Jx = Generator.uniform(-1.0, 1.0); // horizontal jitter
  const double SoleY = S * 0.78 + Generator.uniform(-0.5, 0.5);

  auto Body = [&](double X0, double X1, double Y0, double Y1, double Alpha) {
    for (int64_t Y = static_cast<int64_t>(Y0); Y <= static_cast<int64_t>(Y1);
         ++Y)
      for (int64_t X = static_cast<int64_t>(X0 + Jx);
           X <= static_cast<int64_t>(X1 + Jx); ++X)
        blend(Img, Size, X, Y, R, G, B, Alpha);
  };
  auto Sole = [&](double X0, double X1, double Thickness) {
    for (int64_t Y = static_cast<int64_t>(SoleY);
         Y <= static_cast<int64_t>(SoleY + Thickness); ++Y)
      for (int64_t X = static_cast<int64_t>(X0 + Jx);
           X <= static_cast<int64_t>(X1 + Jx); ++X)
        blend(Img, Size, X, Y, 0.15, 0.13, 0.12);
  };

  switch (Class) {
  case ShoeSneaker: // low rounded body, thick pale sole, laces
    Body(S * 0.15, S * 0.85, SoleY - S * 0.25, SoleY, 1.0);
    for (int64_t X = static_cast<int64_t>(S * 0.35);
         X <= static_cast<int64_t>(S * 0.6); X += 2)
      blend(Img, Size, X, static_cast<int64_t>(SoleY - S * 0.2), 0.95, 0.95,
            0.95);
    Sole(S * 0.12, S * 0.88, S * 0.1);
    break;
  case ShoeBoot: // tall shaft
    Body(S * 0.3, S * 0.62, S * 0.18, SoleY, 1.0);
    Body(S * 0.3, S * 0.88, SoleY - S * 0.2, SoleY, 1.0);
    Sole(S * 0.28, S * 0.9, S * 0.08);
    break;
  case ShoeSandal: // open straps
    Body(S * 0.15, S * 0.85, SoleY - S * 0.08, SoleY, 1.0);
    for (int64_t X = static_cast<int64_t>(S * 0.25);
         X <= static_cast<int64_t>(S * 0.75); X += 3)
      for (int64_t Y = static_cast<int64_t>(SoleY - S * 0.3);
           Y < static_cast<int64_t>(SoleY); ++Y)
        blend(Img, Size, X, Y, R, G, B, 0.9);
    Sole(S * 0.12, S * 0.88, S * 0.05);
    break;
  case ShoeHeel: // wedge with a thin spike at the back
    Body(S * 0.2, S * 0.8, SoleY - S * 0.18, SoleY - S * 0.06, 1.0);
    for (int64_t Y = static_cast<int64_t>(SoleY - S * 0.06);
         Y <= static_cast<int64_t>(SoleY + S * 0.12); ++Y)
      blend(Img, Size, static_cast<int64_t>(S * 0.25 + Jx), Y, 0.15, 0.12,
            0.12);
    Sole(S * 0.6, S * 0.85, S * 0.03);
    break;
  case ShoeLoafer: // low profile, no laces, strap accent
    Body(S * 0.18, S * 0.82, SoleY - S * 0.18, SoleY, 1.0);
    for (int64_t X = static_cast<int64_t>(S * 0.4);
         X <= static_cast<int64_t>(S * 0.55); ++X)
      blend(Img, Size, X, static_cast<int64_t>(SoleY - S * 0.16), 0.1, 0.1,
            0.1);
    Sole(S * 0.16, S * 0.84, S * 0.04);
    break;
  case ShoeSlipper: // soft rounded body, fuzzy texture dots
    Body(S * 0.2, S * 0.8, SoleY - S * 0.22, SoleY, 0.9);
    for (int64_t I = 0; I < 12; ++I)
      blend(Img, Size,
            static_cast<int64_t>(Generator.uniform(S * 0.25, S * 0.75)),
            static_cast<int64_t>(
                Generator.uniform(SoleY - S * 0.2, SoleY - S * 0.05)),
            0.98, 0.98, 0.98, 0.7);
    break;
  case ShoeOxford: // formal: dark body, toe cap line
    Body(S * 0.15, S * 0.85, SoleY - S * 0.2, SoleY, 1.0);
    for (int64_t Y = static_cast<int64_t>(SoleY - S * 0.2);
         Y < static_cast<int64_t>(SoleY); ++Y)
      blend(Img, Size, static_cast<int64_t>(S * 0.65 + Jx), Y, 0.05, 0.05,
            0.05);
    Sole(S * 0.13, S * 0.87, S * 0.06);
    break;
  case ShoeFlipFlop: // flat sole with a V strap
    Sole(S * 0.15, S * 0.85, S * 0.06);
    for (int64_t K = 0; K < static_cast<int64_t>(S * 0.25); ++K) {
      blend(Img, Size, static_cast<int64_t>(S * 0.5 + Jx - K),
            static_cast<int64_t>(SoleY - K), R, G, B);
      blend(Img, Size, static_cast<int64_t>(S * 0.5 + Jx + K),
            static_cast<int64_t>(SoleY - K), R, G, B);
    }
    break;
  default:
    break;
  }

  for (int64_t I = 0; I < Img.numel(); ++I)
    Img[I] = std::clamp(Img[I] + Generator.normal(0.0, 0.015), 0.0, 1.0);
  return Img;
}

Dataset makeSynthShoes(int64_t N, int64_t Size, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Set;
  Set.Channels = 3;
  Set.Size = Size;
  Set.Images = Tensor({N, 3, Size, Size});
  Set.Labels.resize(static_cast<size_t>(N));
  Set.ClassNames.assign(ShoeClassNames, ShoeClassNames + NumShoeClasses);
  for (int64_t I = 0; I < N; ++I) {
    const auto Class =
        static_cast<SynthShoeClass>(Generator.below(NumShoeClasses));
    const Tensor Img = renderShoe(Class, Size, Generator);
    std::copy(Img.data(), Img.data() + Img.numel(),
              Set.Images.data() + I * Img.numel());
    Set.Labels[static_cast<size_t>(I)] = Class;
  }
  return Set;
}

} // namespace genprove
