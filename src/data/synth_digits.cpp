//===- data/synth_digits.cpp ----------------------------------*- C++ -*-===//

#include "src/data/synth_digits.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

// Classic 5x7 font bitmaps, one row string per scanline.
const char *DigitGlyphs[10][7] = {
    {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}, // 0
    {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}, // 1
    {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}, // 2
    {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}, // 3
    {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}, // 4
    {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}, // 5
    {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}, // 6
    {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "}, // 7
    {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}, // 8
    {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}, // 9
};

const char *DigitNames[10] = {"0", "1", "2", "3", "4", "5", "6", "7", "8", "9"};

} // namespace

Tensor renderDigit(int64_t Digit, int64_t Size, Rng &Generator) {
  Tensor Img({1, 1, Size, Size});
  const double Scale = Generator.uniform(1.4, 1.9);
  const double Ox = Generator.uniform(-1.5, 1.5) +
                    (static_cast<double>(Size) - 5.0 * Scale) / 2.0;
  const double Oy = Generator.uniform(-1.5, 1.5) +
                    (static_cast<double>(Size) - 7.0 * Scale) / 2.0;
  const double Ink = Generator.uniform(0.8, 1.0);

  for (int64_t Y = 0; Y < Size; ++Y)
    for (int64_t X = 0; X < Size; ++X) {
      const double Gx = (static_cast<double>(X) - Ox) / Scale;
      const double Gy = (static_cast<double>(Y) - Oy) / Scale;
      const int64_t Cx = static_cast<int64_t>(std::floor(Gx));
      const int64_t Cy = static_cast<int64_t>(std::floor(Gy));
      if (Cx >= 0 && Cx < 5 && Cy >= 0 && Cy < 7 &&
          DigitGlyphs[Digit][Cy][Cx] == '#')
        Img.at(0, 0, Y, X) = Ink;
    }

  for (int64_t I = 0; I < Img.numel(); ++I)
    Img[I] = std::clamp(Img[I] + Generator.normal(0.0, 0.02), 0.0, 1.0);
  return Img;
}

Dataset makeSynthDigits(int64_t N, int64_t Size, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Set;
  Set.Channels = 1;
  Set.Size = Size;
  Set.Images = Tensor({N, 1, Size, Size});
  Set.Labels.resize(static_cast<size_t>(N));
  Set.ClassNames.assign(DigitNames, DigitNames + 10);
  for (int64_t I = 0; I < N; ++I) {
    const int64_t Digit = static_cast<int64_t>(Generator.below(10));
    const Tensor Img = renderDigit(Digit, Size, Generator);
    std::copy(Img.data(), Img.data() + Img.numel(),
              Set.Images.data() + I * Img.numel());
    Set.Labels[static_cast<size_t>(I)] = Digit;
  }
  return Set;
}

} // namespace genprove
