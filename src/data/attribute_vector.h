//===- data/attribute_vector.h - Latent attribute directions ---*- C++ -*-===//
///
/// \file
/// Attribute vectors in the manner of Larsen et al. (2016): the latent
/// direction for attribute i is the difference between the mean encoding of
/// images with the attribute and without it. The paper uses these to build
/// the attribute-independence (Table 5b) and curved (Table 5c)
/// specifications ("BrownHair" addition, "Moustache" perturbation).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DATA_ATTRIBUTE_VECTOR_H
#define GENPROVE_DATA_ATTRIBUTE_VECTOR_H

#include "src/data/dataset.h"
#include "src/train/vae.h"

namespace genprove {

/// Mean latent of images with attribute \p AttrIndex minus the mean latent
/// of images without it. Returns a [1, Latent] tensor.
Tensor attributeVector(Vae &Model, const Dataset &Set, int64_t AttrIndex);

} // namespace genprove

#endif // GENPROVE_DATA_ATTRIBUTE_VECTOR_H
