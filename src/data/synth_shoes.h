//===- data/synth_shoes.h - Procedural Zappos50k substitute ----*- C++ -*-===//
///
/// \file
/// SynthShoes renders 16x16x3 shoe silhouettes in 8 subcategories (the
/// paper's Zappos50k has 21; the structure of the consistency specification
/// — interpolating between two same-class items — is identical).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DATA_SYNTH_SHOES_H
#define GENPROVE_DATA_SYNTH_SHOES_H

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace genprove {

/// Shoe subcategories.
enum SynthShoeClass : int64_t {
  ShoeSneaker = 0,
  ShoeBoot,
  ShoeSandal,
  ShoeHeel,
  ShoeLoafer,
  ShoeSlipper,
  ShoeOxford,
  ShoeFlipFlop,
  NumShoeClasses,
};

/// Render one shoe of the given class into a [1, 3, Size, Size] tensor.
Tensor renderShoe(SynthShoeClass Class, int64_t Size, Rng &Generator);

/// Generate N labeled shoes (classes drawn uniformly).
Dataset makeSynthShoes(int64_t N, int64_t Size, uint64_t Seed);

} // namespace genprove

#endif // GENPROVE_DATA_SYNTH_SHOES_H
