//===- data/synth_faces.cpp -----------------------------------*- C++ -*-===//

#include "src/data/synth_faces.h"

#include <algorithm>
#include <cmath>

namespace genprove {

namespace {

/// dataset.h's shared image extraction helpers live here (single TU).
const char *FaceAttrNames[NumFaceAttrs] = {
    "Bald",      "Bangs",   "BlondHair",  "BrownHair", "Eyeglasses",
    "Moustache", "Smiling", "WearingHat", "PaleSkin",  "Young",
};

struct Rgb {
  double R, G, B;
};

void putPixel(Tensor &Img, int64_t Size, int64_t X, int64_t Y, Rgb Color,
              double Alpha = 1.0) {
  if (X < 0 || X >= Size || Y < 0 || Y >= Size)
    return;
  const double *Src[3] = {&Color.R, &Color.G, &Color.B};
  for (int64_t C = 0; C < 3; ++C) {
    double &Dst = Img.at(0, C, Y, X);
    Dst = (1.0 - Alpha) * Dst + Alpha * *Src[C];
  }
}

} // namespace

FaceFactors sampleFaceFactors(Rng &Generator) {
  FaceFactors F;
  F.Pose = Generator.uniform(-1.0, 1.0);
  F.Skin = Generator.uniform(0.35, 0.75);
  F.Attr[FaceBald] = Generator.bernoulli(0.25);
  if (!F.Attr[FaceBald]) {
    // Hair color: blond, brown or dark (neither flag set).
    const double U = Generator.uniform();
    F.Attr[FaceBlondHair] = U < 0.35;
    F.Attr[FaceBrownHair] = U >= 0.35 && U < 0.7;
    F.Attr[FaceBangs] = Generator.bernoulli(0.3);
  }
  F.Attr[FaceEyeglasses] = Generator.bernoulli(0.3);
  F.Attr[FaceMoustache] = Generator.bernoulli(0.25);
  F.Attr[FaceSmiling] = Generator.bernoulli(0.5);
  F.Attr[FaceWearingHat] = Generator.bernoulli(0.2);
  F.Attr[FacePaleSkin] = Generator.bernoulli(0.3);
  if (F.Attr[FacePaleSkin])
    F.Skin = Generator.uniform(0.75, 0.92);
  F.Attr[FaceYoung] = Generator.bernoulli(0.6);
  return F;
}

Tensor renderFace(const FaceFactors &F, int64_t Size, Rng &Generator) {
  Tensor Img({1, 3, Size, Size});
  const double S = static_cast<double>(Size);

  // Background: soft vertical gradient in a cool tone.
  for (int64_t Y = 0; Y < Size; ++Y)
    for (int64_t X = 0; X < Size; ++X) {
      const double G = 0.15 + 0.1 * static_cast<double>(Y) / S;
      putPixel(Img, Size, X, Y, {G * 0.8, G, G * 1.2});
    }

  const double Cx = S / 2.0 + F.Pose * S * 0.14; // pose shifts the head
  const double Cy = S * 0.56;
  const double Rx = S * 0.30;
  const double Ry = S * 0.36;
  const Rgb Skin = {F.Skin, F.Skin * 0.82, F.Skin * 0.66};
  const Rgb Dark = {0.08, 0.07, 0.06};

  // Head ellipse.
  for (int64_t Y = 0; Y < Size; ++Y)
    for (int64_t X = 0; X < Size; ++X) {
      const double Dx = (static_cast<double>(X) - Cx) / Rx;
      const double Dy = (static_cast<double>(Y) - Cy) / Ry;
      if (Dx * Dx + Dy * Dy <= 1.0)
        putPixel(Img, Size, X, Y, Skin);
    }

  // Hair: a cap over the top of the head unless bald.
  if (!F.Attr[FaceBald]) {
    Rgb Hair = {0.12, 0.1, 0.08}; // dark default
    if (F.Attr[FaceBlondHair])
      Hair = {0.85, 0.72, 0.3};
    else if (F.Attr[FaceBrownHair])
      Hair = {0.45, 0.27, 0.12};
    const double HairBottom = Cy - Ry * (F.Attr[FaceBangs] ? 0.25 : 0.55);
    for (int64_t Y = 0; Y < Size; ++Y)
      for (int64_t X = 0; X < Size; ++X) {
        const double Dx = (static_cast<double>(X) - Cx) / (Rx * 1.12);
        const double Dy = (static_cast<double>(Y) - Cy) / (Ry * 1.12);
        if (Dx * Dx + Dy * Dy <= 1.0 && static_cast<double>(Y) < HairBottom)
          putPixel(Img, Size, X, Y, Hair);
      }
  }

  // Hat: a flat band above the forehead, drawn over hair.
  if (F.Attr[FaceWearingHat]) {
    const int64_t HatTop = static_cast<int64_t>(Cy - Ry * 1.15);
    const int64_t HatBottom = static_cast<int64_t>(Cy - Ry * 0.62);
    for (int64_t Y = std::max<int64_t>(HatTop, 0); Y < HatBottom; ++Y)
      for (int64_t X = static_cast<int64_t>(Cx - Rx * 1.2);
           X <= static_cast<int64_t>(Cx + Rx * 1.2); ++X)
        putPixel(Img, Size, X, Y, {0.55, 0.12, 0.12});
  }

  // Eyes (the looking direction tracks pose).
  const int64_t EyeY = static_cast<int64_t>(Cy - Ry * 0.22);
  const int64_t EyeLx = static_cast<int64_t>(Cx - Rx * 0.42 + F.Pose * 1.2);
  const int64_t EyeRx = static_cast<int64_t>(Cx + Rx * 0.42 + F.Pose * 1.2);
  putPixel(Img, Size, EyeLx, EyeY, Dark);
  putPixel(Img, Size, EyeRx, EyeY, Dark);

  // Eyeglasses: darker band across the eye row plus rims.
  if (F.Attr[FaceEyeglasses]) {
    for (int64_t X = EyeLx - 1; X <= EyeRx + 1; ++X)
      putPixel(Img, Size, X, EyeY, {0.2, 0.2, 0.25}, 0.8);
    putPixel(Img, Size, EyeLx, EyeY - 1, {0.2, 0.2, 0.25}, 0.7);
    putPixel(Img, Size, EyeRx, EyeY - 1, {0.2, 0.2, 0.25}, 0.7);
  }

  // Moustache: short dark bar above the mouth.
  const int64_t MouthY = static_cast<int64_t>(Cy + Ry * 0.42);
  if (F.Attr[FaceMoustache])
    for (int64_t X = static_cast<int64_t>(Cx - Rx * 0.35);
         X <= static_cast<int64_t>(Cx + Rx * 0.35); ++X)
      putPixel(Img, Size, X, MouthY - 1, {0.15, 0.1, 0.08});

  // Mouth: bright if smiling, thin neutral line otherwise.
  const Rgb Mouth = F.Attr[FaceSmiling] ? Rgb{0.85, 0.25, 0.3}
                                        : Rgb{0.4, 0.2, 0.2};
  const int64_t MouthHalf =
      F.Attr[FaceSmiling] ? static_cast<int64_t>(Rx * 0.45)
                          : static_cast<int64_t>(Rx * 0.25);
  for (int64_t X = static_cast<int64_t>(Cx) - MouthHalf;
       X <= static_cast<int64_t>(Cx) + MouthHalf; ++X) {
    putPixel(Img, Size, X, MouthY, Mouth);
    if (F.Attr[FaceSmiling] &&
        std::llabs(X - static_cast<int64_t>(Cx)) == MouthHalf)
      putPixel(Img, Size, X, MouthY - 1, Mouth, 0.8);
  }

  // Age cue: "young" adds a subtle cheek highlight.
  if (F.Attr[FaceYoung]) {
    putPixel(Img, Size, static_cast<int64_t>(Cx - Rx * 0.5),
             static_cast<int64_t>(Cy + Ry * 0.1), {0.95, 0.6, 0.55}, 0.5);
    putPixel(Img, Size, static_cast<int64_t>(Cx + Rx * 0.5),
             static_cast<int64_t>(Cy + Ry * 0.1), {0.95, 0.6, 0.55}, 0.5);
  }

  // Sensor noise.
  for (int64_t I = 0; I < Img.numel(); ++I)
    Img[I] = std::clamp(Img[I] + Generator.normal(0.0, 0.015), 0.0, 1.0);
  return Img;
}

Dataset makeSynthFaces(int64_t N, int64_t Size, uint64_t Seed) {
  Rng Generator(Seed);
  Dataset Set;
  Set.Channels = 3;
  Set.Size = Size;
  Set.Images = Tensor({N, 3, Size, Size});
  Set.Attributes = Tensor({N, static_cast<int64_t>(NumFaceAttrs)});
  Set.AttributeNames.assign(FaceAttrNames, FaceAttrNames + NumFaceAttrs);
  for (int64_t I = 0; I < N; ++I) {
    const FaceFactors F = sampleFaceFactors(Generator);
    const Tensor Img = renderFace(F, Size, Generator);
    std::copy(Img.data(), Img.data() + Img.numel(),
              Set.Images.data() + I * Img.numel());
    for (int64_t A = 0; A < NumFaceAttrs; ++A)
      Set.Attributes.at(I, A) = F.Attr[A] ? 1.0 : 0.0;
  }
  return Set;
}

Tensor Dataset::image(int64_t Index) const {
  const int64_t Numel = Channels * Size * Size;
  Tensor Img({1, Channels, Size, Size});
  std::copy(Images.data() + Index * Numel, Images.data() + (Index + 1) * Numel,
            Img.data());
  return Img;
}

Tensor Dataset::flippedImage(int64_t Index) const {
  Tensor Img = image(Index);
  Tensor Out({1, Channels, Size, Size});
  for (int64_t C = 0; C < Channels; ++C)
    for (int64_t Y = 0; Y < Size; ++Y)
      for (int64_t X = 0; X < Size; ++X)
        Out.at(0, C, Y, X) = Img.at(0, C, Y, Size - 1 - X);
  return Out;
}

} // namespace genprove
