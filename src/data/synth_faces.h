//===- data/synth_faces.h - Procedural CelebA substitute -------*- C++ -*-===//
///
/// \file
/// SynthFaces renders small face-like images with ground-truth binary
/// attributes (bald, blond/brown hair, eyeglasses, moustache, smiling, hat,
/// pale skin, bangs, young) plus a continuous pose factor. Flipping an
/// image horizontally mirrors the pose, which is what the paper's
/// head-orientation specification interpolates over.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DATA_SYNTH_FACES_H
#define GENPROVE_DATA_SYNTH_FACES_H

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace genprove {

/// Attribute indices of the SynthFaces dataset.
enum SynthFaceAttr : int64_t {
  FaceBald = 0,
  FaceBangs,
  FaceBlondHair,
  FaceBrownHair,
  FaceEyeglasses,
  FaceMoustache,
  FaceSmiling,
  FaceWearingHat,
  FacePaleSkin,
  FaceYoung,
  NumFaceAttrs,
};

/// Continuous generative factors behind one rendered face.
struct FaceFactors {
  double Pose = 0.0; ///< [-1, 1]; horizontal head orientation.
  double Skin = 0.5; ///< skin tone in [0, 1].
  bool Attr[NumFaceAttrs] = {};
};

/// Sample random factors (with consistent attribute co-occurrence: blond
/// and brown hair are mutually exclusive; bald implies neither).
FaceFactors sampleFaceFactors(Rng &Generator);

/// Render one face into a [1, 3, Size, Size] tensor.
Tensor renderFace(const FaceFactors &Factors, int64_t Size, Rng &Generator);

/// Generate a full dataset of N faces at the given resolution.
Dataset makeSynthFaces(int64_t N, int64_t Size, uint64_t Seed);

} // namespace genprove

#endif // GENPROVE_DATA_SYNTH_FACES_H
