//===- data/synth_digits.h - Procedural MNIST substitute -------*- C++ -*-===//
///
/// \file
/// SynthDigits renders jittered 5x7 glyph bitmaps of the digits 0-9 onto a
/// grayscale canvas, standing in for MNIST in the Table 6 experiments
/// (standard / FGSM / DiffAI training comparison).
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DATA_SYNTH_DIGITS_H
#define GENPROVE_DATA_SYNTH_DIGITS_H

#include "src/data/dataset.h"
#include "src/util/rng.h"

namespace genprove {

/// Render one digit (0-9) into a [1, 1, Size, Size] tensor with random
/// shift, scale and noise.
Tensor renderDigit(int64_t Digit, int64_t Size, Rng &Generator);

/// Generate N labeled digits (uniform over 0-9).
Dataset makeSynthDigits(int64_t N, int64_t Size, uint64_t Seed);

} // namespace genprove

#endif // GENPROVE_DATA_SYNTH_DIGITS_H
