//===- data/dataset.h - Labeled image datasets -----------------*- C++ -*-===//
///
/// \file
/// In-memory labeled image datasets. The paper evaluates on CelebA (40
/// binary attributes), Zappos50k (21 shoe subcategories) and MNIST; those
/// corpora are not available offline, so src/data synthesizes procedural
/// substitutes with ground-truth attributes/classes by construction (see
/// DESIGN.md, "Substitutions").
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DATA_DATASET_H
#define GENPROVE_DATA_DATASET_H

#include "src/tensor/tensor.h"

#include <string>
#include <vector>

namespace genprove {

/// A dataset of NCHW images with class labels and/or binary attributes.
struct Dataset {
  Tensor Images;                ///< [N, C, H, W], values in [0, 1].
  std::vector<int64_t> Labels;  ///< class per image (classification sets).
  Tensor Attributes;            ///< [N, A] entries in {0, 1} (attribute sets).
  std::vector<std::string> AttributeNames;
  std::vector<std::string> ClassNames;
  int64_t Channels = 0;
  int64_t Size = 0;

  int64_t numImages() const { return Images.rank() ? Images.dim(0) : 0; }
  int64_t numAttributes() const {
    return Attributes.rank() == 2 ? Attributes.dim(1) : 0;
  }
  int64_t numClasses() const {
    return static_cast<int64_t>(ClassNames.size());
  }

  /// One image as a [1, C, H, W] tensor.
  Tensor image(int64_t Index) const;

  /// The horizontal mirror of image \p Index as [1, C, H, W]; used by the
  /// head-orientation specification.
  Tensor flippedImage(int64_t Index) const;
};

} // namespace genprove

#endif // GENPROVE_DATA_DATASET_H
