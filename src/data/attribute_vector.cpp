//===- data/attribute_vector.cpp ------------------------------*- C++ -*-===//

#include "src/data/attribute_vector.h"

#include "src/train/trainer.h"

#include <algorithm>

namespace genprove {

Tensor attributeVector(Vae &Model, const Dataset &Set, int64_t AttrIndex) {
  const int64_t Latent = Model.latentDim();
  Tensor With({1, Latent}), Without({1, Latent});
  int64_t NumWith = 0, NumWithout = 0;
  const int64_t N = Set.numImages();
  const int64_t Chunk = 128;
  for (int64_t Start = 0; Start < N; Start += Chunk) {
    const int64_t End = std::min(N, Start + Chunk);
    std::vector<int64_t> Idx;
    for (int64_t I = Start; I < End; ++I)
      Idx.push_back(I);
    const Tensor Z = Model.encode(gatherImages(Set, Idx));
    for (size_t I = 0; I < Idx.size(); ++I) {
      const bool Has = Set.Attributes.at(Idx[I], AttrIndex) > 0.5;
      for (int64_t J = 0; J < Latent; ++J) {
        if (Has)
          With.at(0, J) += Z.at(static_cast<int64_t>(I), J);
        else
          Without.at(0, J) += Z.at(static_cast<int64_t>(I), J);
      }
      (Has ? NumWith : NumWithout) += 1;
    }
  }
  check(NumWith > 0 && NumWithout > 0,
        "attributeVector needs both positive and negative examples");
  Tensor Direction({1, Latent});
  for (int64_t J = 0; J < Latent; ++J)
    Direction.at(0, J) = With.at(0, J) / static_cast<double>(NumWith) -
                         Without.at(0, J) / static_cast<double>(NumWithout);
  return Direction;
}

} // namespace genprove
