//===- domains/memory_model.h - Simulated device memory --------*- C++ -*-===//
///
/// \file
/// The paper's scalability results are framed by a 24 GB Titan RTX: exact
/// analyses run out of GPU memory once the number of tracked points
/// explodes, while the relaxed analysis fits. This reproduction runs on
/// CPU, so DeviceMemoryModel charges each abstract state the bytes a GPU
/// resident copy would need (nodes x activation-dim x sizeof(double)) and
/// reports OOM when the peak exceeds a configurable budget. The *relative*
/// growth — the thing the paper's Tables 3 and 8 measure — is preserved
/// exactly.
///
//===----------------------------------------------------------------------===//

#ifndef GENPROVE_DOMAINS_MEMORY_MODEL_H
#define GENPROVE_DOMAINS_MEMORY_MODEL_H

#include <cstddef>
#include <cstdint>

namespace genprove {

/// Byte accounting with a budget; analyses poll ok() after each charge.
class DeviceMemoryModel {
public:
  /// Budget of 0 means unlimited.
  explicit DeviceMemoryModel(size_t BudgetBytes = 0)
      : BudgetBytes(BudgetBytes) {}

  /// Charge the current abstract state size; returns false once the peak
  /// exceeds the budget (the analysis should abort with OOM).
  bool charge(size_t Bytes) {
    PeakBytes = Bytes > PeakBytes ? Bytes : PeakBytes;
    return BudgetBytes == 0 || PeakBytes <= BudgetBytes;
  }

  /// Charge a state of Nodes representation points of Dim doubles each.
  bool chargeState(int64_t Nodes, int64_t Dim) {
    return charge(static_cast<size_t>(Nodes) * static_cast<size_t>(Dim) *
                  sizeof(double));
  }

  size_t peakBytes() const { return PeakBytes; }
  size_t budgetBytes() const { return BudgetBytes; }
  bool exhausted() const {
    return BudgetBytes != 0 && PeakBytes > BudgetBytes;
  }

  void reset() { PeakBytes = 0; }

private:
  size_t BudgetBytes;
  size_t PeakBytes = 0;
};

} // namespace genprove

#endif // GENPROVE_DOMAINS_MEMORY_MODEL_H
